package memsim

import (
	"bytes"
	"errors"
	"testing"
)

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	m := New(6)
	for i := 0; i < m.Size(); i++ {
		m.Poke(i, uint64(i)*0x9e3779b97f4a7c15+1)
	}
	snap := m.Snapshot()
	b, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Len() != snap.Len() {
		t.Fatalf("decoded %d words, want %d", got.Len(), snap.Len())
	}

	// Restoring the decoded snapshot into a scrambled memory reproduces the
	// original contents exactly.
	m2 := New(6)
	for i := 0; i < m2.Size(); i++ {
		m2.Poke(i, ^uint64(i))
	}
	if err := m2.Restore(got); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < m.Size(); i++ {
		if m2.Peek(i) != m.Peek(i) {
			t.Fatalf("word %d: %#x != %#x", i, m2.Peek(i), m.Peek(i))
		}
	}

	// Deterministic bytes.
	b2, _ := snap.Encode()
	if !bytes.Equal(b, b2) {
		t.Fatal("two encodings of one snapshot differ")
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	m := New(3)
	m.Poke(0, 0xdead)
	m.Poke(2, 0xbeef)
	snap := m.Snapshot()
	b, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Any single bit flip anywhere — count, words, digest — must be refused.
	for pos := range b {
		mut := append([]byte(nil), b...)
		mut[pos] ^= 0x20
		if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCheckpointCorrupt", pos, err)
		}
	}
	// Truncations and ragged lengths too.
	for _, n := range []int{0, 7, 8, len(b) - 8, len(b) - 1} {
		mut := make([]byte, n)
		copy(mut, b)
		if _, err := DecodeSnapshot(mut); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("len %d: err = %v, want ErrCheckpointCorrupt", n, err)
		}
	}
}

func TestEncodeUnsealedSnapshotFails(t *testing.T) {
	var s Snapshot
	if _, err := s.Encode(); err == nil {
		t.Fatal("Encode of zero Snapshot succeeded")
	}
}
