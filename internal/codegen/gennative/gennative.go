// Package gennative holds the committed output of the source backend: every
// Table 2 benchmark, in all three variants, rendered by cmd/genkernels into
// Go functions over the codegen runtime and built with the module. This is
// the "per-kernel binary" form of the native backend — the Go compiler, not
// the interpreter or a closure tree, executes the kernel — and the form
// cmd/overhead's -backend native measures.
//
// Regenerate with: go run ./cmd/genkernels
// Verify freshness: go run ./cmd/genkernels -check (CI gates on this).
package gennative

import "defuse/internal/codegen"

// Kernel is one generated benchmark variant.
type Kernel struct {
	// Bench is the bench.Benchmark name (e.g. "ADI").
	Bench string
	// Variant is the bench.Variant string (e.g. "Resilient").
	Variant string
	// Anchored reports whether the program has a top-level for loop to
	// partition into epochs.
	Anchored bool
	// Fn is the generated native entry point.
	Fn codegen.Fn
}

// Kernels returns every generated kernel (bench-major, variant-minor order).
func Kernels() []Kernel { return kernels }

// Lookup finds a kernel by benchmark name and variant.
func Lookup(bench, variant string) (Kernel, bool) {
	for _, k := range kernels {
		if k.Bench == bench && k.Variant == variant {
			return k, true
		}
	}
	return Kernel{}, false
}
