package chaos

// The soak's client side: every request is audited against locally computed
// truth (the live-fault sampler and the reference digest are pure functions
// the client recomputes), refusals are retried honoring Retry-After, and a
// running XOR-of-IDs ledger of every acknowledged request is kept for the
// end-of-soak conservation check against the journal. The adversarial
// volleys — stalled bodies, mid-flight disconnects, duplicates, malformed
// payloads, bursts — live here too: they are requests, just hostile ones.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"defuse/internal/faults"
	"defuse/internal/recovery"
	"defuse/internal/server"
)

// loader drives audited traffic at one child incarnation after another (the
// target moves across restarts; the ledger does not).
type loader struct {
	client  *http.Client
	sampler *faults.LiveSampler
	words   int
	epochs  int
	seed    uint64
	kernel  bool
	backoff recovery.Policy

	mu     sync.Mutex
	target string
	nextID uint64
	lastOK uint64 // newest acknowledged ID (the duplicate adversary replays it)

	// The ledger: every 200-acknowledged request, by count and XOR of IDs.
	acked     int
	xorIDs    uint64
	injected  int
	detected  int
	recovered int
	kernelN   int

	// Final refusals and observed journal faults.
	shed        int
	rejected    int
	retries     int
	retriedOK   int
	writeFaults int

	// Zero-tolerance tallies. anomalies counts every fail() call (the
	// failures list is bounded; the counter is not) — client-side findings
	// with no dedicated column of their own.
	silent     int
	undetected int
	anomalies  int
	failures   []string
}

func newLoader(target string, cfg Config) *loader {
	return &loader{
		client:  &http.Client{Timeout: 10 * time.Second},
		sampler: faults.NewLiveSampler(cfg.FaultRate, cfg.FaultSeed),
		words:   cfg.Words,
		epochs:  cfg.Epochs,
		seed:    cfg.WorkSeed,
		kernel:  cfg.Kernel != "",
		backoff: recovery.Policy{Backoff: 20 * time.Millisecond, BackoffFactor: 2},
		target:  target,
	}
}

// retarget points the loader at a restarted child.
func (ld *loader) retarget(target string) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.target = target
}

func (ld *loader) url(path string) string {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.target + path
}

// fail records one audit violation (bounded detail; the count is what gates).
func (ld *loader) fail(format string, args ...any) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.anomalies++
	if len(ld.failures) < 20 {
		ld.failures = append(ld.failures, fmt.Sprintf(format, args...))
	}
}

// post sends one raw /run request and returns status, decoded response (on
// 200), body text (otherwise), and the Retry-After delay.
func (ld *loader) post(ctx context.Context, req server.Request) (int, server.Response, string, time.Duration, error) {
	raw, _ := json.Marshal(req)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ld.url("/run"), bytes.NewReader(raw))
	if err != nil {
		return 0, server.Response{}, "", 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := ld.client.Do(hreq)
	if err != nil {
		return 0, server.Response{}, "", 0, err
	}
	defer hresp.Body.Close()
	var retryAfter time.Duration
	if ra := hresp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	if hresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return hresp.StatusCode, server.Response{}, string(body), retryAfter, nil
	}
	var resp server.Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return hresp.StatusCode, server.Response{}, "", retryAfter, err
	}
	return hresp.StatusCode, resp, "", retryAfter, nil
}

// claimID dispenses the next request ID. IDs are never reused across
// incarnations, so any 409 outside the duplicate adversary is a finding.
func (ld *loader) claimID() uint64 {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.nextID++
	return ld.nextID
}

// audit grades one 200 response against the locally recomputed truth and
// folds it into the ledger.
func (ld *loader) audit(req server.Request, resp server.Response) {
	expectInjected := req.Kind == server.KindVerify && ld.sampler.Sample(req.ID)
	var ref uint64
	if req.Kind == server.KindVerify {
		ref = server.ReferenceDigest(req.Words, req.Epochs, ld.seed, req.ID)
	} else {
		ref = resp.RefDigest
	}
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.acked++
	ld.xorIDs ^= req.ID
	ld.lastOK = req.ID
	if req.Kind == server.KindKernel {
		ld.kernelN++
	}
	if expectInjected {
		ld.injected++
		if resp.Detected {
			ld.detected++
		}
		if resp.Recovered {
			ld.recovered++
		}
		if !resp.Detected || !resp.Recovered {
			ld.undetected++
			if len(ld.failures) < 20 {
				ld.failures = append(ld.failures,
					fmt.Sprintf("request %d: injected fault detected=%v recovered=%v", req.ID, resp.Detected, resp.Recovered))
			}
		}
	} else if resp.Injected {
		ld.undetected++
		if len(ld.failures) < 20 {
			ld.failures = append(ld.failures,
				fmt.Sprintf("request %d: server claims injection the schedule did not place", req.ID))
		}
	}
	if resp.Digest != ref || resp.Tainted {
		ld.silent++
		if len(ld.failures) < 20 {
			ld.failures = append(ld.failures,
				fmt.Sprintf("request %d: digest %x want %x (tainted=%v)", req.ID, resp.Digest, ref, resp.Tainted))
		}
	}
}

// request runs one audited request to a final outcome, retrying refusals
// with Retry-After-honoring backoff. maxRetries bounds the retry budget.
func (ld *loader) request(ctx context.Context, maxRetries int) {
	id := ld.claimID()
	req := server.Request{ID: id, Kind: server.KindVerify, Words: ld.words, Epochs: ld.epochs}
	if ld.kernel && id%7 == 0 {
		req.Kind = server.KindKernel
		req.Words, req.Epochs = 0, 0
	}
	attempt := 0
	for {
		status, resp, body, retryAfter, err := ld.post(ctx, req)
		switch {
		case err != nil:
			if ctx.Err() == nil {
				ld.fail("request %d: transport: %v", id, err)
			}
			return
		case status == http.StatusOK:
			ld.audit(req, resp)
			if attempt > 0 {
				ld.mu.Lock()
				ld.retriedOK++
				ld.mu.Unlock()
			}
			return
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			if retryAfter == 0 && status == http.StatusTooManyRequests {
				ld.fail("request %d: 429 without Retry-After", id)
			}
			if attempt >= maxRetries || ctx.Err() != nil {
				ld.mu.Lock()
				if status == http.StatusTooManyRequests {
					ld.shed++
				} else {
					ld.rejected++
				}
				ld.mu.Unlock()
				return
			}
			ld.mu.Lock()
			ld.retries++
			ld.mu.Unlock()
			delay := retryAfter
			if delay <= 0 || delay > time.Second {
				delay = ld.backoff.Delay(attempt)
			}
			attempt++
			select {
			case <-ctx.Done():
				return
			case <-time.After(delay):
			}
		case status == http.StatusInternalServerError && strings.Contains(body, "injected"):
			// The armed WAL fault fired under this request: the append was
			// rolled back, the failure declared, and the ID conservatively
			// reserved — a retry of the same ID must be refused with 409.
			ld.mu.Lock()
			ld.writeFaults++
			ld.mu.Unlock()
			st2, _, _, _, err2 := ld.post(ctx, req)
			if err2 == nil && st2 != http.StatusConflict {
				ld.fail("request %d: retry after injected journal fault got %d, want 409 (reservation lost)", id, st2)
			}
			return
		case status == http.StatusConflict:
			ld.fail("request %d: unexpected 409 (ID never reused): %s", id, body)
			return
		default:
			if ctx.Err() == nil {
				ld.fail("request %d: status %d: %s", id, status, body)
			}
			return
		}
	}
}

// round drives n audited requests with conc workers and waits for them all.
func (ld *loader) round(ctx context.Context, n, conc int) {
	if conc <= 0 {
		conc = 2
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			ld.request(ctx, 4)
		}()
	}
	wg.Wait()
}

// burst fires a volley far past the admission queue with a minimal retry
// budget, then reports whether the ladder was seen off the healthy rung.
func (ld *loader) burst(ctx context.Context, volley int) (sawOverload bool) {
	stateCh := make(chan string, 1)
	watchCtx, stopWatch := context.WithCancel(ctx)
	go func() {
		worst := ""
		for watchCtx.Err() == nil {
			if st, err := ld.stats(watchCtx); err == nil {
				if st.State == server.StateDegraded {
					worst = st.State
					break
				}
				if st.State == server.StateShedding && worst == "" {
					worst = st.State
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		stateCh <- worst
	}()
	var wg sync.WaitGroup
	for i := 0; i < volley; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ld.request(ctx, 1)
		}()
	}
	wg.Wait()
	stopWatch()
	worst := <-stateCh
	return worst != ""
}

// stats fetches the child's live counters.
func (ld *loader) stats(ctx context.Context) (server.Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, ld.url("/stats"), nil)
	if err != nil {
		return server.Stats{}, err
	}
	hresp, err := ld.client.Do(hreq)
	if err != nil {
		return server.Stats{}, err
	}
	defer hresp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		return server.Stats{}, err
	}
	return st, nil
}

// stallReader trickles its payload a few bytes at a time — the stalled-body
// adversary. The server must neither hang forever nor corrupt state.
type stallReader struct {
	data  []byte
	pos   int
	chunk int
	pause time.Duration
}

func (r *stallReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	if r.pos > 0 {
		time.Sleep(r.pause)
	}
	n := copy(p, r.data[r.pos:min(r.pos+r.chunk, len(r.data))])
	r.pos += n
	return n, nil
}

// adversaries runs one hostile-client volley. Every sub-attack has an exact
// expected outcome; anything else is an audit failure.
func (ld *loader) adversaries(ctx context.Context) {
	// Stalled body: a valid request dribbled out slowly must still complete
	// and audit clean.
	id := ld.claimID()
	req := server.Request{ID: id, Kind: server.KindVerify, Words: ld.words, Epochs: ld.epochs}
	raw, _ := json.Marshal(req)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, ld.url("/run"),
		&stallReader{data: raw, chunk: 4, pause: 15 * time.Millisecond})
	if err == nil {
		hreq.Header.Set("Content-Type", "application/json")
		if hresp, err := ld.client.Do(hreq); err == nil {
			func() {
				defer hresp.Body.Close()
				if hresp.StatusCode == http.StatusOK {
					var resp server.Response
					if json.NewDecoder(hresp.Body).Decode(&resp) == nil {
						ld.audit(req, resp)
					}
				} else if hresp.StatusCode != http.StatusTooManyRequests &&
					hresp.StatusCode != http.StatusServiceUnavailable {
					ld.fail("stalled-body request %d: status %d", id, hresp.StatusCode)
				}
			}()
		} else if ctx.Err() == nil {
			ld.fail("stalled-body request %d: %v", id, err)
		}
	}

	// Mid-flight disconnect: the client vanishes while the body streams. The
	// ID is burned (the server may or may not have parsed it); nothing is
	// audited — the next requests prove the server survived.
	id = ld.claimID()
	req = server.Request{ID: id, Kind: server.KindVerify, Words: ld.words, Epochs: ld.epochs}
	raw, _ = json.Marshal(req)
	cutCtx, cut := context.WithCancel(ctx)
	hreq, err = http.NewRequestWithContext(cutCtx, http.MethodPost, ld.url("/run"),
		&stallReader{data: raw, chunk: 2, pause: 30 * time.Millisecond})
	if err == nil {
		hreq.Header.Set("Content-Type", "application/json")
		go func() {
			time.Sleep(20 * time.Millisecond)
			cut()
		}()
		if hresp, err := ld.client.Do(hreq); err == nil {
			hresp.Body.Close()
		}
	}
	cut()

	// Duplicate ID: replaying an acknowledged (journaled) ID must be refused
	// with 409 — accepting it would make the journal ambiguous.
	ld.mu.Lock()
	dup := ld.lastOK
	ld.mu.Unlock()
	if dup != 0 {
		req = server.Request{ID: dup, Kind: server.KindVerify, Words: ld.words, Epochs: ld.epochs}
		if status, _, _, _, err := ld.post(ctx, req); err == nil && status != http.StatusConflict {
			if status == http.StatusOK {
				ld.mu.Lock()
				ld.silent++
				ld.mu.Unlock()
			}
			ld.fail("duplicate request %d: status %d, want 409", dup, status)
		}
	}

	// Malformed payload: not JSON. Must be a 400, not a hang or a 500.
	hreq, err = http.NewRequestWithContext(ctx, http.MethodPost, ld.url("/run"),
		strings.NewReader(`{"id": 7, "kind": `))
	if err == nil {
		hreq.Header.Set("Content-Type", "application/json")
		if hresp, err := ld.client.Do(hreq); err == nil {
			hresp.Body.Close()
			if hresp.StatusCode != http.StatusBadRequest {
				ld.fail("malformed payload: status %d, want 400", hresp.StatusCode)
			}
		} else if ctx.Err() == nil {
			ld.fail("malformed payload: %v", err)
		}
	}

	// Oversized dimensions: past the 4x size cap. Must be refused with 400
	// before consuming a slot.
	req = server.Request{ID: ld.claimID(), Kind: server.KindVerify, Words: 100 * ld.words, Epochs: ld.epochs}
	if status, _, _, _, err := ld.post(ctx, req); err == nil && status != http.StatusBadRequest {
		ld.fail("oversized request: status %d, want 400", status)
	}
}
