package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecover checks the scanner's one safety contract: whatever a fault
// does to the bytes of a valid log — truncation, bit flips, overwrites — the
// scanner either recovers payloads that were actually sealed (possibly a
// strictly older record than the newest) or reports ErrCheckpointCorrupt /
// ErrNoCheckpoint. It must never hand back a payload that was not written.
func FuzzWALRecover(f *testing.F) {
	f.Add([]byte{}, 5, uint16(0))
	f.Add([]byte{0xff, 0x00, 0x10}, 200, uint16(3))
	f.Add(bytes.Repeat([]byte{0x01}, 32), 9, uint16(1))
	f.Fuzz(func(t *testing.T, mutations []byte, truncate int, flipSeed uint16) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.wal")
		l, err := Create(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sealed := make(map[string]bool)
		for i := 0; i < 4; i++ {
			p := []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte{byte(0xA0 + i)}, 8+i*5)))
			if err := l.Append(p); err != nil {
				t.Fatal(err)
			}
			sealed[string(p)] = true
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}

		// Mutate: truncate to an arbitrary prefix, then XOR fuzz-chosen bytes
		// at fuzz-chosen offsets.
		if truncate < 0 {
			truncate = -truncate
		}
		if n := truncate % (len(raw) + 1); n < len(raw) {
			raw = raw[:n]
		}
		pos := int(flipSeed)
		for _, m := range mutations {
			if len(raw) == 0 {
				break
			}
			pos = (pos*31 + int(m) + 1) % len(raw)
			raw[pos] ^= m
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		s, err := Recover(path)
		if err != nil {
			if !errors.Is(err, ErrNoCheckpoint) && !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(s.Records) != 0 {
				t.Fatalf("error %v yet %d records returned", err, len(s.Records))
			}
			return
		}
		if len(s.Records) == 0 {
			t.Fatal("nil error with zero records")
		}
		for _, r := range s.Records {
			if !sealed[string(r.Payload)] {
				t.Fatalf("recovered payload was never sealed: %q", r.Payload)
			}
		}
	})
}
