package codegen

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"defuse/internal/checksum"
	"defuse/internal/lang"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// Epoch-scoped native execution: the same supervision contract as interp's
// EpochPlan — verify at every boundary, checkpoint, roll back on detection —
// with the compiled Fn as the epoch body. Checkpoint contents, the durable
// state encoding, and the run fingerprint are byte-compatible with interp's,
// so a WAL written by one backend is a valid resume point for the other when
// the program, parameters, and epoch count agree.

// EpochRun partitions a compiled program's outermost loop into n contiguous
// iteration blocks.
type EpochRun struct {
	m *Machine
	u *Unit
	n int
}

// PlanEpochs builds an n-epoch native run. A program with no top-level loop
// collapses to a single epoch, exactly as interp.PlanEpochs does.
func PlanEpochs(m *Machine, u *Unit, n int) (*EpochRun, error) {
	if n < 1 {
		return nil, fmt.Errorf("codegen: PlanEpochs needs n >= 1, got %d", n)
	}
	if !u.anchored {
		n = 1
	}
	return &EpochRun{m: m, u: u, n: n}, nil
}

// Epochs returns the number of epochs in the plan.
func (p *EpochRun) Epochs() int { return p.n }

// Machine returns the plan's target machine.
func (p *EpochRun) Machine() *Machine { return p.m }

// Reset clears the machine's cached loop bounds so a pooled plan can be
// reused for a fresh request. Pair with Machine.Reset.
func (p *EpochRun) Reset() { p.m.lo, p.m.hi, p.m.haveBounds = 0, 0, false }

// RunEpoch executes epoch k natively. Epochs must be started in order the
// first time, but any epoch may be re-executed after the machine's state is
// restored to that epoch's entry checkpoint.
func (p *EpochRun) RunEpoch(k int) error { return p.u.fn(p.m, k, p.n) }

// epochSnap is the supervisor checkpoint of everything an epoch mutates:
// the simulated memory (digest-sealed), the checksum accumulators with
// their shadows, and the cached loop bounds.
type epochSnap struct {
	mem        memsim.Snapshot
	pair       checksum.Pair
	lo, hi     int64
	haveBounds bool
}

func (p *EpochRun) checkpoint() any {
	return epochSnap{
		mem:  p.m.mem.Snapshot(),
		pair: *p.m.pair,
		lo:   p.m.lo, hi: p.m.hi, haveBounds: p.m.haveBounds,
	}
}

func (p *EpochRun) restore(snap any) error {
	s := snap.(epochSnap)
	if err := p.m.mem.Restore(s.mem); err != nil {
		return err
	}
	*p.m.pair = s.pair
	p.m.lo, p.m.hi, p.m.haveBounds = s.lo, s.hi, s.haveBounds
	return nil
}

func (p *EpochRun) verify(int) error {
	// Scrub first: a diverged accumulator copy means the def/use comparison
	// below cannot be trusted, and the supervisor must treat the failure as
	// a detector fault, not a data fault.
	if err := p.m.pair.Scrub(); err != nil {
		return err
	}
	err := p.m.pair.Verify()
	p.m.emitVerify(err)
	return err
}

// Supervise runs the plan under a checkpoint/rollback recovery supervisor,
// verifying the def/use checksums at every epoch boundary — the native
// counterpart of interp's EpochPlan.Supervise, sharing its soundness
// condition (epoch-balanced instrumentation).
func (p *EpochRun) Supervise(ctx context.Context, pol recovery.Policy) (recovery.Outcome, error) {
	run := p.m.tracer.Start(telemetry.SpanContext{}, "run", telemetry.Int("epochs", p.n))
	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs:     p.n,
		Run:        p.RunEpoch,
		Verify:     p.verify,
		Checkpoint: p.checkpoint,
		Restore:    p.restore,
		Policy:     pol,
		Trace:      p.m.trace,
		Metrics:    p.m.metrics,
		Tracer:     p.m.tracer,
		Span:       run.Context(),
	})
	run.End(telemetry.Bool("detected", out.Detected), telemetry.Bool("tainted", out.Tainted))
	return out, err
}

// encodeState renders the machine state at an epoch boundary in interp's
// exact durable layout: twelve little-endian words (checksum kind, four
// accumulators, four shadows, cached bounds, haveBounds) followed by the
// encoded memory snapshot.
func (p *EpochRun) encodeState() ([]byte, error) {
	snap := p.m.mem.Snapshot()
	mem, err := snap.Encode()
	if err != nil {
		return nil, err
	}
	const header = 12 * 8
	b := make([]byte, header, header+len(mem))
	pair := p.m.pair
	sh := pair.Shadows()
	for i, w := range [...]uint64{
		uint64(pair.Kind()),
		pair.Def, pair.Use, pair.EDef, pair.EUse,
		sh[0], sh[1], sh[2], sh[3],
		uint64(p.m.lo), uint64(p.m.hi), boolWord(p.m.haveBounds),
	} {
		binary.LittleEndian.PutUint64(b[i*8:], w)
	}
	return append(b, mem...), nil
}

// decodeState installs previously encoded state into the machine.
func (p *EpochRun) decodeState(b []byte) error {
	const header = 12 * 8
	if len(b) < header {
		return fmt.Errorf("codegen: durable state of %d bytes: %w", len(b), memsim.ErrCheckpointCorrupt)
	}
	w := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	if kind := w(0); kind != uint64(p.m.pair.Kind()) {
		return fmt.Errorf("codegen: durable state for checksum kind %d, machine uses %d: %w",
			kind, p.m.pair.Kind(), memsim.ErrCheckpointCorrupt)
	}
	snap, err := memsim.DecodeSnapshot(b[header:])
	if err != nil {
		return err
	}
	if err := p.m.mem.Restore(snap); err != nil {
		return err
	}
	p.m.pair.SetState(w(1), w(2), w(3), w(4), [4]uint64{w(5), w(6), w(7), w(8)})
	p.m.lo, p.m.hi = int64(w(9)), int64(w(10))
	p.m.haveBounds = w(11) != 0
	return nil
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Fingerprint identifies the run configuration with interp's exact recipe
// (program text, sorted parameters, checksum operator, epoch count), so a
// durable checkpoint written by either backend resumes under the other.
func (p *EpochRun) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "epochs=%d kind=%d\n", p.n, p.m.pair.Kind())
	h.Write([]byte(lang.Print(p.u.prog)))
	names := make([]string, 0, len(p.m.params))
	for name := range p.m.params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%s=%d\n", name, p.m.params[name])
	}
	return h.Sum64()
}

// SuperviseDurable is Supervise with durable checkpoints: every verified
// epoch is sealed into the write-ahead log at walPath, and a fresh process
// pointed at the same log resumes from the newest valid record.
func (p *EpochRun) SuperviseDurable(ctx context.Context, pol recovery.Policy, walPath string) (recovery.DurableOutcome, error) {
	run := p.m.tracer.Start(telemetry.SpanContext{}, "run",
		telemetry.Int("epochs", p.n), telemetry.Bool("durable", true))
	d := &recovery.DurableSupervisor{
		Config: recovery.Config{
			Epochs:     p.n,
			Run:        p.RunEpoch,
			Verify:     p.verify,
			Checkpoint: p.checkpoint,
			Restore:    p.restore,
			Policy:     pol,
			Trace:      p.m.trace,
			Metrics:    p.m.metrics,
			Tracer:     p.m.tracer,
			Span:       run.Context(),
		},
		Path:        walPath,
		Fingerprint: p.Fingerprint(),
		EncodeState: p.encodeState,
		DecodeState: p.decodeState,
	}
	out, err := d.Run(ctx)
	run.End(telemetry.Bool("detected", out.Detected), telemetry.Bool("resumed", out.Resumed))
	return out, err
}
