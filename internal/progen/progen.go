// Package progen generates random programs in the defuse loop language for
// property-based testing of the instrumentation pipeline. Generated programs
// are well-formed, in-bounds, and numerically safe (no division, no sqrt of
// negatives), so an instrumented run that fails its checksum assertion — or
// diverges from the uninstrumented run — always indicates a bug in the
// analysis or instrumentation rather than in the program.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generator.
type Config struct {
	MaxArrays    int // number of 1-D float arrays (>=1)
	MaxScalars   int // number of float scalars
	MaxStmts     int // top-level constructs
	MaxDepth     int // loop nest depth
	MaxOffset    int // |c| in subscripts i+c
	WithWhile    bool
	WithIndirect bool // indirect subscripts through an int array
}

// DefaultConfig returns a balanced configuration.
func DefaultConfig() Config {
	return Config{MaxArrays: 3, MaxScalars: 2, MaxStmts: 4, MaxDepth: 2, MaxOffset: 2}
}

// Program is a generated program plus everything needed to run it.
type Program struct {
	Source string
	Params map[string]int64
	// FloatArrays lists the float arrays to initialize (all sized n+pad).
	FloatArrays []string
	// IntArrays lists index arrays (values must be in [0, n)).
	IntArrays []string
	// Scalars lists float scalars.
	Scalars []string
	// N is the value of parameter n used for array extents.
	N int64
}

// Generate produces one random program.
func Generate(rng *rand.Rand, cfg Config) *Program {
	g := &gen{rng: rng, cfg: cfg}
	return g.run()
}

type gen struct {
	rng *rand.Rand
	cfg Config
	b   strings.Builder

	arrays  []string
	ints    []string
	scalars []string
	label   int
}

const pad = 8 // arrays sized n + 2*pad; subscripts stay within [0, n+2*pad)

func (g *gen) run() *Program {
	nArr := 1 + g.rng.Intn(g.cfg.MaxArrays)
	for i := 0; i < nArr; i++ {
		g.arrays = append(g.arrays, fmt.Sprintf("A%d", i))
	}
	nSc := g.rng.Intn(g.cfg.MaxScalars + 1)
	for i := 0; i < nSc; i++ {
		g.scalars = append(g.scalars, fmt.Sprintf("s%d", i))
	}
	if g.cfg.WithIndirect {
		g.ints = append(g.ints, "idx0")
	}

	fmt.Fprintf(&g.b, "program fuzz(n)\n")
	for _, a := range g.arrays {
		fmt.Fprintf(&g.b, "float %s[n + %d];\n", a, 2*pad)
	}
	for _, s := range g.scalars {
		fmt.Fprintf(&g.b, "float %s;\n", s)
	}
	for _, ia := range g.ints {
		fmt.Fprintf(&g.b, "int %s[n + %d];\n", ia, 2*pad)
	}
	if g.cfg.WithWhile {
		fmt.Fprintf(&g.b, "int wctr;\nwctr = 0;\n")
	}

	stmts := 1 + g.rng.Intn(g.cfg.MaxStmts)
	for i := 0; i < stmts; i++ {
		g.construct(0, nil)
	}

	n := int64(4 + g.rng.Intn(8))
	return &Program{
		Source:      g.b.String(),
		Params:      map[string]int64{"n": n},
		FloatArrays: g.arrays,
		IntArrays:   g.ints,
		Scalars:     g.scalars,
		N:           n,
	}
}

// construct emits one loop nest or statement at the given depth with the
// in-scope iterators.
func (g *gen) construct(depth int, iters []string) {
	ind := strings.Repeat("  ", depth+boolToInt(g.cfg.WithWhile && depth > 0))
	switch {
	case depth < g.cfg.MaxDepth && g.rng.Intn(3) != 0:
		iter := fmt.Sprintf("i%d", len(iters))
		lo := g.rng.Intn(3)
		// Upper bound keeps subscripts with offsets in [-MaxOffset,
		// +MaxOffset] inside [0, n+2*pad): iterate over [lo, n-1+off] with
		// subscript base shifted by +pad.
		hiOff := g.rng.Intn(3) - 1
		fmt.Fprintf(&g.b, "%sfor %s = %d to n - 1 + %d {\n", ind, iter, lo, hiOff)
		body := 1 + g.rng.Intn(2)
		for k := 0; k < body; k++ {
			g.construct(depth+1, append(iters, iter))
		}
		fmt.Fprintf(&g.b, "%s}\n", ind)
	default:
		g.assign(ind, iters)
	}
}

func (g *gen) assign(ind string, iters []string) {
	g.label++
	lhs := g.lvalue(iters)
	rhs := g.expr(iters, 3)
	op := "="
	if g.rng.Intn(3) == 0 {
		op = "+="
	}
	fmt.Fprintf(&g.b, "%sT%d: %s %s %s;\n", ind, g.label, lhs, op, rhs)
}

// lvalue picks a scalar or an in-bounds array reference.
func (g *gen) lvalue(iters []string) string {
	if len(g.scalars) > 0 && g.rng.Intn(3) == 0 {
		return g.scalars[g.rng.Intn(len(g.scalars))]
	}
	return g.arrayRef(iters)
}

// arrayRef builds A[i + pad + c] (or A[c] at depth 0), always in bounds.
func (g *gen) arrayRef(iters []string) string {
	a := g.arrays[g.rng.Intn(len(g.arrays))]
	return fmt.Sprintf("%s[%s]", a, g.subscript(iters))
}

func (g *gen) subscript(iters []string) string {
	if len(iters) == 0 {
		return fmt.Sprintf("%d", g.rng.Intn(2*pad))
	}
	it := iters[g.rng.Intn(len(iters))]
	off := g.rng.Intn(2*g.cfg.MaxOffset+1) - g.cfg.MaxOffset
	if g.cfg.WithIndirect && len(g.ints) > 0 && g.rng.Intn(4) == 0 {
		// Indirect subscript: idx0[i + pad] holds a value in [0, n).
		return fmt.Sprintf("%s[%s + %d]", g.ints[0], it, pad)
	}
	return fmt.Sprintf("%s + %d", it, pad+off)
}

// expr builds a numerically safe float expression.
func (g *gen) expr(iters []string, budget int) string {
	if budget <= 0 || g.rng.Intn(3) == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d.%d", g.rng.Intn(9), g.rng.Intn(9))
		case 1:
			if len(g.scalars) > 0 {
				return g.scalars[g.rng.Intn(len(g.scalars))]
			}
			return g.arrayRef(iters)
		default:
			return g.arrayRef(iters)
		}
	}
	l := g.expr(iters, budget-1)
	r := g.expr(iters, budget-1)
	op := []string{"+", "-", "*"}[g.rng.Intn(3)]
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
