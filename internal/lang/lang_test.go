package lang

import (
	"strings"
	"testing"
)

const choleskySrc = `
program cholesky(n)
float A[n][n];
# Figure 2 of the paper
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

const irregularSrc = `
program pagerankish(n, maxiter)
float p_new[n];
float temp1, temp2, temp3;
int cols[n];
int iter;
iter = 0;
while (iter < maxiter) {
  for j1 = 0 to n - 1 {
    S1: temp1 += p_new[cols[j1]];
  }
  for j2 = 0 to n - 1 {
    S2: temp2 += p_new[j2];
  }
  for j3 = 0 to n - 1 {
    S3: p_new[j3] = temp3;
  }
  iter = iter + 1;
}
`

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("for j = 0 to n-1 { A[j] += 2.5; } // comment\n# another")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFor, TokIdent, TokAssign, TokInt, TokTo, TokIdent,
		TokMinus, TokInt, TokLBrace, TokIdent, TokLBracket, TokIdent,
		TokRBracket, TokPlusEq, TokFloat, TokSemicolon, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	src := "== != <= >= < > && || ! % *= /= -="
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAndAnd,
		TokOrOr, TokBang, TokPercent, TokStarEq, TokSlashEq, TokMinusEq, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestTokenizeFloats(t *testing.T) {
	toks, err := Tokenize("1.5 2e3 7 1.25e-2 3e")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TokKind{TokFloat, TokFloat, TokInt, TokFloat, TokInt, TokIdent, TokEOF}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d (%q) = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
	// "3e" must lex as Int(3), Ident(e): 'e' without digits is not an exponent.
	if toks[4].Text != "3" || toks[5].Text != "e" {
		t.Errorf("3e lexed as %q %q", toks[4].Text, toks[5].Text)
	}
}

func TestTokenizeIllegalChar(t *testing.T) {
	_, err := Tokenize("a @ b")
	if err == nil {
		t.Fatal("expected error for illegal character")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 1 || se.Pos.Col != 3 {
		t.Errorf("error position %v, want 1:3", se.Pos)
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestParseCholesky(t *testing.T) {
	p, err := Parse(choleskySrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "cholesky" || len(p.Params) != 1 || p.Params[0] != "n" {
		t.Fatalf("header parsed wrong: %v %v", p.Name, p.Params)
	}
	if d := p.Decl("A"); d == nil || !d.IsArray() || len(d.Dims) != 2 || d.Type != TypeFloat {
		t.Fatal("array A parsed wrong")
	}
	if len(p.Body) != 1 {
		t.Fatalf("body has %d statements", len(p.Body))
	}
	outer, ok := p.Body[0].(*For)
	if !ok || outer.Iter != "j" {
		t.Fatalf("outer loop parsed wrong: %T", p.Body[0])
	}
	if len(outer.Body) != 2 {
		t.Fatalf("outer body has %d statements", len(outer.Body))
	}
	s1, ok := outer.Body[0].(*Assign)
	if !ok || s1.Label != "S1" {
		t.Fatalf("S1 parsed wrong")
	}
	if _, ok := s1.RHS.(*Call); !ok {
		t.Error("S1 RHS should be a sqrt call")
	}
	inner, ok := outer.Body[1].(*For)
	if !ok || inner.Iter != "i" {
		t.Fatal("inner loop parsed wrong")
	}
	s2 := inner.Body[0].(*Assign)
	if s2.Label != "S2" || s2.Op != OpSet {
		t.Error("S2 parsed wrong")
	}
	if err := Check(p); err != nil {
		t.Errorf("cholesky should typecheck: %v", err)
	}
}

func TestParseIrregular(t *testing.T) {
	p, err := Parse(irregularSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	w, ok := p.Body[1].(*While)
	if !ok {
		t.Fatalf("statement 1 is %T, want While", p.Body[1])
	}
	cond, ok := w.Cond.(*Bin)
	if !ok || cond.Op != BinLt {
		t.Error("while condition parsed wrong")
	}
	// S1's subscript is the indirect access cols[j1].
	s1 := w.Body[0].(*For).Body[0].(*Assign)
	if s1.Op != OpAdd {
		t.Error("S1 should be +=")
	}
	ref := s1.RHS.(*Ref)
	if ref.Name != "p_new" || len(ref.Indices) != 1 {
		t.Fatal("S1 RHS ref wrong")
	}
	if inner, ok := ref.Indices[0].(*Ref); !ok || inner.Name != "cols" {
		t.Error("indirect subscript parsed wrong")
	}
}

func TestParseChecksumPrimitives(t *testing.T) {
	src := `
program t(n)
float A[n];
for j = 0 to n - 1 {
  add_to_chksm(use_cs, A[j], 1);
  S1: A[j] = A[j] + 1.0;
  add_to_chksm(def_cs, A[j], n - 1 - j);
}
assert_checksums();
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	loop := p.Body[0].(*For)
	use, ok := loop.Body[0].(*AddToChecksum)
	if !ok || use.CS != UseCS {
		t.Fatal("use checksum parsed wrong")
	}
	def := loop.Body[2].(*AddToChecksum)
	if def.CS != DefCS {
		t.Fatal("def checksum parsed wrong")
	}
	if _, ok := p.Body[1].(*AssertChecksums); !ok {
		t.Fatal("assert_checksums parsed wrong")
	}
}

func TestParseIfElse(t *testing.T) {
	src := `
program t(n)
float x;
int c;
if (c > 0) {
  x = 1.0;
} else if (c < 0) {
  x = 2.0;
} else {
  x = 3.0;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	ifs := p.Body[0].(*If)
	if len(ifs.Else) != 1 {
		t.Fatalf("else-if chain parsed wrong")
	}
	if _, ok := ifs.Else[0].(*If); !ok {
		t.Error("else branch should be a nested if")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                   // no program keyword
		"program x",                          // missing parens
		"program x() float A[n]",             // missing semicolon
		"program x() y = ;",                  // missing rhs
		"program x() for j = 0 { }",          // missing 'to'
		"program x() S1: for j = 0 to 1 { }", // label on non-assignment
		"program x() add_to_chksm(bogus_cs, 1, 1);", // unknown checksum
		"program x() float y; y = sqrt(1.0, 2.0);",  // wrong arity
		"program x() if (1 < 2) { ",                 // unterminated block
		"program x() y @ 3;",                        // lex error propagates
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"program x(n) n = 1;", "parameter"},
		{"program x(n) y = 1;", "undeclared"},
		{"program x(n) float A[n]; A = 1.0;", "subscript"},
		{"program x(n) float A[n]; A[0][1] = 1.0;", "subscript"},
		{"program x(n) float y; y[3] = 1.0;", "subscript"},
		{"program x(n) float y; for n = 0 to 5 { y = 1.0; }", "shadows"},
		{"program x(n) float y; for j = 0 to 5 { for j = 0 to 5 { y = 1.0; } }", "shadows"},
		{"program x(n) float y; for j = 0 to 5 { j = 3; }", "iterator"},
		{"program x(n) float A[n]; float f; A[f] = 1.0;", "integer context"},
		{"program x(n) float A[n]; A[1.5] = 1.0;", "integer context"},
		{"program x(n) float y; y = z + 1.0;", "undeclared"},
		{"program x(n, n) float y;", "duplicate"},
		{"program x(n) float y; float y;", "duplicate"},
		{"program x(n) float A[n]; A[1 < 2] = 1.0;", "integer context"},
	}
	for _, c := range cases {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed at parse time: %v", c.src, err)
			continue
		}
		err = Check(p)
		if err == nil {
			t.Errorf("Check(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Check(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestPrintRoundTrip(t *testing.T) {
	for _, src := range []string{choleskySrc, irregularSrc} {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := Print(p1)
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparsing printed output failed: %v\n%s", err, printed)
		}
		if Print(p2) != printed {
			t.Errorf("print is not a fixed point:\n%s\nvs\n%s", printed, Print(p2))
		}
	}
}

func TestPrintParenthesization(t *testing.T) {
	// (a + b) * c must keep its parentheses; a + b * c must not gain any.
	src := "program t() float a, b, c, y; y = (a + b) * c; y = a + b * c; y = a - (b - c); y = a / (b * c);"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(p)
	for _, want := range []string{"(a + b) * c", "a + b * c", "a - (b - c)", "a / (b * c)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
	// Round-trip preserves semantics structurally.
	p2, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if Print(p2) != out {
		t.Error("parenthesized print not stable")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := MustParse(choleskySrc)
	orig := p.Body[0].(*For)
	cl := CloneStmt(orig).(*For)
	cl.Iter = "zz"
	cl.Body[0].(*Assign).Label = "CHANGED"
	if orig.Iter != "j" || orig.Body[0].(*Assign).Label != "S1" {
		t.Error("CloneStmt shares memory with the original")
	}
}

func TestWalkAndRefs(t *testing.T) {
	p := MustParse(choleskySrc)
	var labels []string
	WalkStmts(p.Body, func(s Stmt) bool {
		if a, ok := s.(*Assign); ok {
			labels = append(labels, a.Label)
		}
		return true
	})
	if len(labels) != 2 || labels[0] != "S1" || labels[1] != "S2" {
		t.Errorf("labels = %v", labels)
	}
	s2 := p.Body[0].(*For).Body[1].(*For).Body[0].(*Assign)
	refs := ExprRefs(s2.RHS)
	// A[i][j] / A[j][j]: refs are the two array refs plus i,j,j,j subscripts.
	if len(refs) != 6 {
		t.Errorf("got %d refs, want 6", len(refs))
	}
}

func TestIsAffine(t *testing.T) {
	p := MustParse(`
program t(n)
float A[n];
int idx[n];
for j = 0 to n - 1 {
  A[2 * j + 1] = 1.0;
  A[j * j] = 2.0;
  A[idx[j]] = 3.0;
  A[n - j - 1] = 4.0;
}
`)
	isVar := func(name string) bool { return name == "j" || name == "n" }
	loop := p.Body[0].(*For)
	subs := make([]Expr, 4)
	for i := 0; i < 4; i++ {
		subs[i] = loop.Body[i].(*Assign).LHS.Indices[0]
	}
	wants := []bool{true, false, false, true}
	for i, want := range wants {
		if got := IsAffine(subs[i], isVar); got != want {
			t.Errorf("subscript %d: IsAffine = %v, want %v", i, got, want)
		}
	}
	if !IsAffine(loop.Lo, isVar) || !IsAffine(loop.Hi, isVar) {
		t.Error("loop bounds should be affine")
	}
}

func TestCSNameParse(t *testing.T) {
	for i, name := range []string{"def_cs", "use_cs", "e_def_cs", "e_use_cs"} {
		cs, ok := ParseCSName(name)
		if !ok || int(cs) != i {
			t.Errorf("ParseCSName(%q) = %v, %v", name, cs, ok)
		}
		if cs.String() != name {
			t.Errorf("String() = %q", cs.String())
		}
	}
	if _, ok := ParseCSName("nope"); ok {
		t.Error("bogus name accepted")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("not a program")
}
