package instrument

import (
	"errors"
	"math/rand"
	"testing"

	"defuse/internal/interp"
	"defuse/internal/lang"
)

// TestAddressErrorDetection exercises the second half of the paper's fault
// model (Section 2.2): an error in address generation makes a load observe
// the wrong memory location, which the def-use checksums perceive as a
// multi-bit data error. We redirect one program load to a neighboring
// address mid-run and expect the verifier to fire whenever the observed
// value differs from the intended one.
func TestAddressErrorDetection(t *testing.T) {
	src := `
program axpy(n)
float x[n], y[n], a;
a = 2.5;
for i = 0 to n - 1 {
  S1: y[i] = y[i] + a * x[i];
}
`
	prog := lang.MustParse(src)
	res, err := Instrument(prog, Options{Split: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	setup := func(m *interp.Machine) {
		rng := rand.New(rand.NewSource(77))
		m.FillFloat("x", func(i int64) float64 { return rng.Float64() * 10 })
		m.FillFloat("y", func(i int64) float64 { return rng.Float64() })
	}

	clean, err := interp.New(res.Prog, map[string]int64{"n": n})
	if err != nil {
		t.Fatal(err)
	}
	setup(clean)
	if err := clean.Run(); err != nil {
		t.Fatal(err)
	}

	detected, trials := 0, 40
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < trials; trial++ {
		m, err := interp.New(res.Prog, map[string]int64{"n": n})
		if err != nil {
			t.Fatal(err)
		}
		setup(m)
		base, size, err := m.Region("x")
		if err != nil {
			t.Fatal(err)
		}
		victim := base + rng.Intn(size-1)
		// Redirect the program's load of `victim` to the next cell, once,
		// somewhere past the prologue. The values are random floats, so the
		// observed value virtually always differs from the intended one.
		startStep := uint64(rng.Int63n(int64(clean.Counts.Stmts/2))) + clean.Counts.Stmts/4
		armed := false
		fired := false
		m.SetStepHook(func(step uint64) {
			if step == startStep {
				armed = true
			}
		})
		m.Mem().SetLoadHook(func(addr int, raw uint64) uint64 {
			if armed && !fired && addr == victim {
				fired = true
				return m.Mem().Peek(victim + 1)
			}
			return raw
		})
		err = m.Run()
		var de *interp.DetectionError
		switch {
		case errors.As(err, &de):
			if fired {
				detected++
			} else {
				t.Fatalf("trial %d: detection without an injected address error", trial)
			}
		case err != nil:
			t.Fatalf("trial %d: unexpected error: %v", trial, err)
		}
	}
	// Redirected loads may hit after the cell's last real use (the checksum
	// contribution was already made); most should still be caught.
	if detected*3 < trials {
		t.Errorf("address errors detected in only %d/%d trials", detected, trials)
	}
}

// TestAddressErrorIdenticalValueEscapes documents the inherent limit: if the
// wrong location happens to hold the same bit pattern, no data corruption
// occurred and the checksums (correctly) stay silent.
func TestAddressErrorIdenticalValueEscapes(t *testing.T) {
	src := `
program s(n)
float x[n], acc;
acc = 0.0;
for i = 0 to n - 1 {
  S1: acc += x[i];
}
`
	prog := lang.MustParse(src)
	res, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.New(res.Prog, map[string]int64{"n": 8})
	if err != nil {
		t.Fatal(err)
	}
	m.FillFloat("x", func(i int64) float64 { return 3.25 }) // all identical
	base, _, err := m.Region("x")
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().SetLoadHook(func(addr int, raw uint64) uint64 {
		if addr == base+2 {
			return m.Mem().Peek(base + 5) // same value: benign
		}
		return raw
	})
	if err := m.Run(); err != nil {
		t.Errorf("identical-value address error should be benign: %v", err)
	}
}
