package faults

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"defuse/internal/checksum"
)

// TestMain is the crash campaign's re-exec hook: a child spawned with the
// CrashChildEnv spec runs the durable workload (and dies at its crash step)
// instead of the test suite.
func TestMain(m *testing.M) {
	if IsCrashChild() {
		CrashChildMain() // never returns
	}
	os.Exit(m.Run())
}

// crashCampaign builds a campaign against this test binary.
func crashCampaign(t *testing.T, cells []CrashConfig) *CrashCampaign {
	t.Helper()
	return &CrashCampaign{Cells: cells, Exe: os.Args[0], Dir: t.TempDir(), Workers: 4}
}

func TestRunCrashSpecIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string) crashReport {
		rep, err := runCrashSpec(context.Background(), CrashSpec{
			Words: 12, Epochs: 4, Kind: checksum.ModAdd, Seed: 99,
			WAL: filepath.Join(dir, name), CrashStep: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk("a.wal"), mk("b.wal")
	if !bytes.Equal(a.Final, b.Final) {
		t.Fatal("two uninterrupted runs of the same seed differ")
	}
	if a.Seals != 4 || a.Resumed || a.Detected || a.Tainted {
		t.Errorf("report = %+v, want 4 seals, clean", a)
	}
	// A third run over a completed WAL resumes at the final epoch and runs
	// nothing, ending in the identical state.
	c, err := runCrashSpec(context.Background(), CrashSpec{
		Words: 12, Epochs: 4, Kind: checksum.ModAdd, Seed: 99,
		WAL: filepath.Join(dir, "a.wal"), CrashStep: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Resumed || c.ResumeEpoch != 4 || !bytes.Equal(c.Final, a.Final) {
		t.Errorf("completed-run resume: %+v", c)
	}
}

func TestCrashCampaignKillCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	camp := crashCampaign(t, []CrashConfig{{
		Kind: checksum.ModAdd, Words: 16, Epochs: 5, Trials: 8, Seed: 404, Cell: CrashKill,
	}})
	res, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("gate: %v (cell: %+v)", err, res.Cells[0])
	}
	cell := res.Cells[0]
	if cell.Killed != 8 || cell.Identical != 8 {
		t.Errorf("cell = %+v, want all 8 killed and identical", cell)
	}
	if cell.Resumed == 0 {
		t.Error("no trial resumed from the WAL (all kills landed in epoch 0?)")
	}
}

func TestCrashCampaignTornWriteCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	camp := crashCampaign(t, []CrashConfig{{
		Kind: checksum.ModAdd, Words: 16, Epochs: 5, Trials: 6, Seed: 405, Cell: CrashTornWrite,
	}})
	res, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("gate: %v (cell: %+v)", err, res.Cells[0])
	}
	cell := res.Cells[0]
	if cell.MutationsApplied != 6 || cell.TornReported != 6 {
		t.Errorf("cell = %+v, want every torn write applied and reported", cell)
	}
}

func TestCrashCampaignDiskFlipCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	camp := crashCampaign(t, []CrashConfig{{
		Kind: checksum.ModAdd, Words: 16, Epochs: 5, Trials: 6, Seed: 406, Cell: CrashDiskFlip,
	}})
	res, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("gate: %v (cell: %+v)", err, res.Cells[0])
	}
	cell := res.Cells[0]
	if cell.MutationsApplied != 6 {
		t.Errorf("cell = %+v, want every flip applied", cell)
	}
	if cell.TornReported+cell.CorruptReported == 0 {
		t.Error("no flip was reported as torn or corrupt")
	}
	if cell.SilentAcceptances != 0 {
		t.Errorf("%d corrupt checkpoints accepted silently", cell.SilentAcceptances)
	}
}

func TestCrashGateRejectsBadCells(t *testing.T) {
	base := CrashResult{CrashConfig: CrashConfig{Trials: 4, CellName: "kill"},
		Killed: 4, Identical: 4}
	cases := []struct {
		name   string
		mutate func(*CrashCampaignResult)
		want   string
	}{
		{"incomplete", func(r *CrashCampaignResult) { r.Completed = false }, "incomplete"},
		{"unkilled", func(r *CrashCampaignResult) { r.Cells[0].Killed = 3 }, "not killed"},
		{"mismatch", func(r *CrashCampaignResult) { r.Cells[0].Mismatched = 1 }, "byte-identical"},
		{"silent", func(r *CrashCampaignResult) { r.Cells[0].SilentAcceptances = 2 }, "silently"},
		{"missed", func(r *CrashCampaignResult) { r.Cells[0].ResumeMissed = 1 }, "not resumed"},
		{"short", func(r *CrashCampaignResult) { r.Cells[0].Identical = 3 }, "not accounted"},
	}
	for _, tc := range cases {
		r := &CrashCampaignResult{Schema: CrashSchema, Completed: true,
			Cells: []CrashResult{base}}
		tc.mutate(r)
		err := r.Gate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: gate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	clean := &CrashCampaignResult{Schema: CrashSchema, Completed: true,
		Cells: []CrashResult{base}}
	if err := clean.Gate(); err != nil {
		t.Errorf("clean result gated: %v", err)
	}
}

func TestCrashConfigValidate(t *testing.T) {
	ok := CrashConfig{Words: 8, Epochs: 3, Trials: 1, Cell: CrashKill}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CrashConfig{
		{Words: 8, Epochs: 3, Trials: 0, Cell: CrashKill},
		{Words: 0, Epochs: 3, Trials: 1, Cell: CrashKill},
		{Words: 8, Epochs: 1, Trials: 1, Cell: CrashTornWrite},
		{Words: 8, Epochs: 3, Trials: 1, Cell: CrashCellKind(99)},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestParseCrashCell(t *testing.T) {
	for _, k := range []CrashCellKind{CrashKill, CrashTornWrite, CrashDiskFlip} {
		got, err := ParseCrashCell(k.String())
		if err != nil || got != k {
			t.Errorf("ParseCrashCell(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseCrashCell("meteor"); err == nil {
		t.Error("unknown cell accepted")
	}
}

// TestCheckpointWriteSurvivesKillMidWrite simulates a campaign killed while
// writing its resume checkpoint: the atomic writer's temp file is left
// truncated on disk. The visible checkpoint must be unaffected, the next
// write must replace the leftover, and a resume must load the intact file.
func TestCheckpointWriteSurvivesKillMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "resume.json")
	camp := &Campaign{
		Cells: []CoverageConfig{{
			Kind: checksum.ModAdd, Words: 4, BitFlips: 2, Trials: 6, Seed: 7,
		}},
		CheckpointPath: path,
		ChunkSize:      2,
	}
	key := camp.fingerprint(2)
	done := map[[2]int]chunkTally{{0, 0}: {Start: 0, Count: 2, Detected: 2}}
	if err := camp.writeCheckpoint(key, done); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// The kill: a half-written temp file next to the real checkpoint.
	if err := os.WriteFile(path+".tmp", before[:len(before)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	loaded := map[[2]int]chunkTally{}
	if n, err := loadCheckpoint(path, key, loaded); err != nil || n != 1 {
		t.Fatalf("loadCheckpoint after torn tmp: n=%d err=%v", n, err)
	}
	if loaded[[2]int{0, 0}].Detected != 2 {
		t.Error("checkpoint content damaged by the torn temp file")
	}

	// The next write replaces the leftover and the file stays loadable.
	done[[2]int{0, 2}] = chunkTally{Start: 2, Count: 2, Detected: 2}
	if err := camp.writeCheckpoint(key, done); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file not cleaned up by the rewrite")
	}
	loaded = map[[2]int]chunkTally{}
	if n, err := loadCheckpoint(path, key, loaded); err != nil || n != 2 {
		t.Fatalf("loadCheckpoint after rewrite: n=%d err=%v", n, err)
	}
}
