package codegen_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"defuse/internal/bench"
	"defuse/internal/codegen"
)

// -update rewrites the golden files from the current generator output
// instead of comparing against them: go test ./internal/codegen -update
var updateGolden = flag.Bool("update", false, "rewrite golden files from generator output")

// TestGeneratedSourceGolden locks the exact generated Go text for every
// benchmark's Resilient variant. Any change to the lowering rules shows up
// as a readable source diff here before it shows up as a semantic bug in
// the differential battery.
func TestGeneratedSourceGolden(t *testing.T) {
	for _, b := range bench.Suite() {
		base := strings.ToLower(b.Name)
		t.Run(base, func(t *testing.T) {
			prog, err := b.BuildVariant(bench.Resilient)
			if err != nil {
				t.Fatal(err)
			}
			got, err := codegen.Source(prog, fmt.Sprintf("run_%s_resilient", base))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", base+".go.golden")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("generated source for %s drifted from %s (%d vs %d bytes); "+
					"run: go test ./internal/codegen -run TestGeneratedSourceGolden -update\nfirst divergence:\n%s",
					b.Name, path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// TestGennativeFresh regenerates every committed kernel file in memory and
// compares it byte-for-byte with the gennative package on disk — the in-test
// form of `go run ./cmd/genkernels -check` (which additionally covers the
// registry).
func TestGennativeFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating all variants is slow; covered by cmd/genkernels -check in CI")
	}
	for _, b := range bench.Suite() {
		base := strings.ToLower(b.Name)
		t.Run(base, func(t *testing.T) {
			var funcs []codegen.SourceFunc
			for _, vo := range []struct {
				v      bench.Variant
				suffix string
			}{
				{bench.Original, "original"},
				{bench.Resilient, "resilient"},
				{bench.ResilientOpt, "resilientopt"},
			} {
				prog, err := b.BuildVariant(vo.v)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("run_%s_%s", base, vo.suffix)
				funcs = append(funcs, codegen.SourceFunc{
					FuncName: name,
					Comment: fmt.Sprintf("%s executes the %s variant of the %s benchmark natively.",
						name, vo.v, b.Name),
					Prog: prog,
				})
			}
			got, err := codegen.SourceFile("gennative", funcs)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("gennative", base+".go")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s is stale; run: go run ./cmd/genkernels\nfirst divergence:\n%s",
					path, firstDiff(got, want))
			}
		})
	}
}

// firstDiff renders the first diverging line pair of two texts.
func firstDiff(got, want []byte) string {
	gl := strings.Split(string(got), "\n")
	wl := strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(gl), len(wl))
}
