package bench

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"defuse/internal/hwsim"
	"defuse/internal/interp"
	"defuse/internal/lang"
)

// This file measures the scaling curve of the interpreter's parallel
// executor: the Resilient variant of a parallel-safe kernel run at several
// worker counts, each worker folding checksums into a private shard merged
// before the epilogue's verification. Because the interpreter itself may run
// on a host with any number of cores, each row carries both wall-clock time
// and a deterministic critical-path cost under the software cost model — the
// serial prologue/epilogue ops plus the largest single worker's ops — which
// is what an ideal machine with one core per worker would execute on its
// longest dependence chain. The ops speedup is host-independent; the wall
// speedup converges to it as real cores become available.

// ScalingRow is one (benchmark, worker count) point of the scaling curve.
type ScalingRow struct {
	Bench   string `json:"bench"`
	Workers int    `json:"workers"`
	// Seconds is the wall-clock time of the parallel run on this host.
	Seconds float64 `json:"seconds"`
	// Speedup is rows[0].Seconds / Seconds (host-dependent).
	Speedup float64 `json:"speedup"`
	// CriticalPathOps is the deterministic critical-path cost: software-model
	// cost of the serial remainder plus the largest worker block.
	CriticalPathOps float64 `json:"critical_path_ops"`
	// OpsSpeedup is rows[0].CriticalPathOps / CriticalPathOps — the
	// host-independent scaling the shard decomposition achieves.
	OpsSpeedup float64 `json:"ops_speedup"`
	// Verified reports the checksum verdict of the merged run: true when the
	// epilogue's assert_checksums passed.
	Verified bool `json:"verified"`
}

// RunScaling runs the Resilient variant of a parallel-safe benchmark at each
// worker count and returns one row per count. It enforces the merge-verify
// equivalence along the way: every run must produce the same verification
// verdict, byte-identical checksum accumulators (shadow copies included),
// and identical float outputs as the first worker count — a detected
// divergence is an error, not a row.
func RunScaling(b *Benchmark, scale float64, workerCounts []int, tel Telemetry) ([]ScalingRow, error) {
	if !b.ParallelSafe {
		return nil, fmt.Errorf("bench: %s is not marked parallel-safe", b.Name)
	}
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("bench: RunScaling needs at least one worker count")
	}
	prog, err := b.BuildVariantWith(Resilient, tel)
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	var base *scalingRun
	for _, w := range workerCounts {
		run, err := runScalingOnce(b, prog, scale, w, tel)
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = run
		} else if err := run.sameAs(base); err != nil {
			return nil, fmt.Errorf("bench: %s with %d workers diverged from %d workers: %w",
				b.Name, w, base.row.Workers, err)
		}
		run.row.Speedup = ratio(base.row.Seconds, run.row.Seconds)
		run.row.OpsSpeedup = ratio(base.row.CriticalPathOps, run.row.CriticalPathOps)
		rows = append(rows, run.row)
	}
	return rows, nil
}

// scalingRun carries one run's row plus the state the equivalence check
// compares across worker counts.
type scalingRun struct {
	row     ScalingRow
	def     uint64
	use     uint64
	edef    uint64
	euse    uint64
	shadows [4]uint64
	output  map[string][]float64
}

func runScalingOnce(b *Benchmark, prog *lang.Program, scale float64, workers int, tel Telemetry) (*scalingRun, error) {
	params := b.Params(scale)
	m, err := interp.New(prog, params,
		interp.WithTrace(tel.Trace), interp.WithMetrics(tel.Metrics))
	if err != nil {
		return nil, err
	}
	b.InitDefault(m, params)
	plan, err := m.PlanParallel(workers)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := plan.Run()
	dur := time.Since(start)
	verified := true
	if err != nil {
		var det *interp.DetectionError
		if !errors.As(err, &det) {
			return nil, fmt.Errorf("bench: %s with %d workers: %w", b.Name, workers, err)
		}
		verified = false
		// A detection aborts before the result is assembled; the row then
		// reports only the verdict, which must still be partition-invariant.
		res = &interp.ParallelResult{Workers: workers}
	}
	critical := hwsim.SoftwareCost(res.SerialCounts)
	peak := 0.0
	for _, wc := range res.WorkerCounts {
		if c := hwsim.SoftwareCost(wc); c > peak {
			peak = c
		}
	}
	critical += peak
	run := &scalingRun{
		row: ScalingRow{
			Bench:           b.Name,
			Workers:         res.Workers,
			Seconds:         dur.Seconds(),
			CriticalPathOps: critical,
			Verified:        verified,
		},
	}
	run.def, run.use, run.edef, run.euse = m.Pair().Def, m.Pair().Use, m.Pair().EDef, m.Pair().EUse
	run.shadows = m.Pair().Shadows()
	if verified {
		run.output = map[string][]float64{}
		for _, d := range b.Program().Decls {
			if d.Type == lang.TypeFloat && d.IsArray() {
				snap, err := m.SnapshotFloats(d.Name)
				if err != nil {
					return nil, err
				}
				run.output[d.Name] = snap
			}
		}
	}
	return run, nil
}

// sameAs checks merge-verify equivalence against the baseline run: same
// verdict, byte-identical accumulators and shadow copies, identical outputs.
func (r *scalingRun) sameAs(base *scalingRun) error {
	if r.row.Verified != base.row.Verified {
		return fmt.Errorf("verdict verified=%v vs %v", r.row.Verified, base.row.Verified)
	}
	if r.def != base.def || r.use != base.use || r.edef != base.edef || r.euse != base.euse {
		return fmt.Errorf("accumulators (%#x,%#x,%#x,%#x) vs (%#x,%#x,%#x,%#x)",
			r.def, r.use, r.edef, r.euse, base.def, base.use, base.edef, base.euse)
	}
	if r.shadows != base.shadows {
		return fmt.Errorf("shadow copies %#x vs %#x", r.shadows, base.shadows)
	}
	for name, want := range base.output {
		got := r.output[name]
		if len(got) != len(want) {
			return fmt.Errorf("array %s length %d vs %d", name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
				return fmt.Errorf("%s[%d] = %v vs %v", name, i, got[i], want[i])
			}
		}
	}
	return nil
}

// FormatScaling renders scaling rows as a text table.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %12s %10s %16s %12s %9s\n",
		"Benchmark", "Workers", "Wall(s)", "Speedup", "CritPath(ops)", "OpsSpeedup", "Verified")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %12.4f %10.3f %16.0f %12.3f %9v\n",
			r.Bench, r.Workers, r.Seconds, r.Speedup, r.CriticalPathOps, r.OpsSpeedup, r.Verified)
	}
	return b.String()
}
