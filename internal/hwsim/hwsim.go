// Package hwsim models the hardware checksum functional unit of Section
// 6.2.2: checksum computations move into dedicated units fed by the values
// already flowing through the pipeline, so each software add_to_chksm
// becomes a wide checksum instruction that is fetched and decoded but uses
// no functional-unit resources (the paper evaluates this by replacing the
// checksum code with nop instructions in the optimized assembly).
//
// The model prices dynamic operations from interp.OpCounts:
//
//   - program operations (loads, stores, arithmetic, compares, branches) keep
//     full cost — this includes use-count maintenance, which the paper
//     retains in software;
//   - checksum count-expression arithmetic (CsArith) keeps full cost for the
//     same reason;
//   - the loads that software checksumming adds (CsLoads) disappear: the
//     hardware taps the operands of adjacent instructions;
//   - each checksum operation (CsOps) costs NopCost of a regular operation
//     (fetch/decode only).
package hwsim

import (
	"defuse/internal/interp"
	"defuse/telemetry"
)

// Config parameterizes the cost model. Weights approximate a cached
// superscalar core: memory operations dominate kernel runtime (several
// cycles of average latency even when cache-resident), while the integer
// compares and adds the instrumentation introduces are cheap and largely
// hidden by instruction-level parallelism.
type Config struct {
	// MemWeight prices program loads and stores (and the extra loads
	// software checksumming performs).
	MemWeight float64
	// ArithWeight prices arithmetic, comparisons, and branch evaluations.
	ArithWeight float64
	// CsOpWeight prices one software checksum operation (a scale plus a
	// modular add).
	CsOpWeight float64
	// CsLoadWeight prices the loads the interpreter performs to evaluate
	// add_to_chksm operands. Real instrumented code folds the
	// register-resident value the adjacent program operation already holds
	// (Section 5 requires values to stay register-resident), so the default
	// is 0.
	CsLoadWeight float64
	// NopCost is the fraction of ArithWeight charged per checksum
	// instruction under hardware support (fetch/decode only, the paper's
	// nop-insertion methodology).
	NopCost float64
}

// DefaultConfig returns the configuration used for the Figure 10/11
// reproduction.
func DefaultConfig() Config {
	return Config{MemWeight: 4, ArithWeight: 1, CsOpWeight: 2, NopCost: 0.25}
}

// SoftwareCost prices a run with software checksum computation.
func SoftwareCost(c interp.OpCounts) float64 { return SoftwareCostWith(c, DefaultConfig()) }

// SoftwareCostWith prices a run with software checksum computation under an
// explicit configuration.
func SoftwareCostWith(c interp.OpCounts, cfg Config) float64 {
	return cfg.MemWeight*float64(c.Loads+c.Stores) +
		cfg.CsLoadWeight*float64(c.CsLoads) +
		cfg.ArithWeight*float64(c.Arith+c.Compare+c.Branches+c.CsArith) +
		cfg.CsOpWeight*float64(c.CsOps)
}

// HardwareCost prices the same run under the hardware checksum-unit model of
// Section 6.2.2: checksum loads disappear (the unit taps in-flight values),
// each checksum op costs a fetch/decode slot, and use-count maintenance
// (ordinary program operations plus CsArith) stays in software.
func HardwareCost(c interp.OpCounts, cfg Config) float64 {
	return cfg.MemWeight*float64(c.Loads+c.Stores) +
		cfg.ArithWeight*float64(c.Arith+c.Compare+c.Branches+c.CsArith) +
		cfg.NopCost*cfg.ArithWeight*float64(c.CsOps)
}

// Overhead returns the estimated normalized runtime of an instrumented run
// relative to the original run under the given pricing function.
func Overhead(original interp.OpCounts, instrumented float64) float64 {
	base := SoftwareCost(original) // original has no checksum ops
	if base == 0 {
		return 1
	}
	return instrumented / base
}

// RecordMetrics publishes the modeled software and hardware-assisted cost of
// a run into reg as gauges labeled by run name (nil-registry safe).
func RecordMetrics(reg *telemetry.Registry, run string, c interp.OpCounts, cfg Config) {
	reg.Gauge("defuse_cost_model",
		telemetry.Label{Key: "run", Value: run},
		telemetry.Label{Key: "model", Value: "software"}).Set(SoftwareCostWith(c, cfg))
	reg.Gauge("defuse_cost_model",
		telemetry.Label{Key: "run", Value: run},
		telemetry.Label{Key: "model", Value: "hardware"}).Set(HardwareCost(c, cfg))
}
