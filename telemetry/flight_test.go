package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		f.Emit(Event{Name: "e", Time: time.Now(), Fields: map[string]any{"i": i}})
	}
	if f.Len() != 20 {
		t.Fatalf("Len = %d, want 20", f.Len())
	}
	snap := f.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot holds %d entries, ring size 8", len(snap))
	}
	// The ring keeps the newest 8 (seq 12..19), oldest-first.
	for i, e := range snap {
		if want := uint64(12 + i); e.Seq != want {
			t.Errorf("entry %d: seq %d, want %d", i, e.Seq, want)
		}
		if e.Kind != "event" || e.Event == nil {
			t.Errorf("entry %d: kind %q event %v", i, e.Kind, e.Event)
		}
	}
}

// TestFlightRecorderConcurrent exercises wraparound from many goroutines; the
// interesting assertions run under -race (ci's race job), where any unsynced
// slot access would be reported.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: Snapshot must be wait-free and race-clean
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.Snapshot()
			}
		}
	}()
	var writersDone sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersDone.Add(1)
		go func(w int) {
			defer writersDone.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					f.Emit(Event{Name: "tick", Fields: map[string]any{"w": w, "i": i}})
				} else {
					f.RecordSpan(SpanData{Name: "span", ID: SpanID(w*per + i)})
				}
			}
		}(w)
	}
	writersDone.Wait()
	close(stop)
	wg.Wait()

	if f.Len() != writers*per {
		t.Fatalf("Len = %d, want %d", f.Len(), writers*per)
	}
	snap := f.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("snapshot holds %d entries, ring size 16", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Errorf("snapshot not seq-ordered: %d after %d", snap[i].Seq, snap[i-1].Seq)
		}
	}
}

func TestFlightRecorderAutoDump(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	f := NewFlightRecorder(32)
	f.SetDump(path)

	f.Emit(Event{Name: EvVerifyOK})
	if _, dumped := f.Dumped(); dumped {
		t.Fatal("dump fired on a non-trigger event")
	}
	f.Emit(Event{Name: EvDetection, Fields: map[string]any{"epoch": 3}})
	trigger, dumped := f.Dumped()
	if !dumped || trigger != EvDetection {
		t.Fatalf("Dumped() = %q,%v after detection", trigger, dumped)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Schema != FlightDumpSchema || dump.Trigger != EvDetection {
		t.Errorf("dump header = %q/%q", dump.Schema, dump.Trigger)
	}
	if len(dump.Entries) != 2 {
		t.Errorf("dump holds %d entries, want 2", len(dump.Entries))
	}

	// The first postmortem wins: later triggers must not overwrite it.
	if err := os.WriteFile(path, []byte("sentinel"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.Emit(Event{Name: EvDetectorFault})
	got, _ := os.ReadFile(path)
	if string(got) != "sentinel" {
		t.Error("second trigger overwrote the first postmortem")
	}
	if trigger, _ := f.Dumped(); trigger != EvDetection {
		t.Errorf("Dumped() trigger rewritten to %q", trigger)
	}
}

func TestFlightRecorderCustomTriggers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	f := NewFlightRecorder(4)
	f.SetDump(path, "custom.alarm")
	f.Emit(Event{Name: EvDetection}) // default trigger no longer armed
	if _, dumped := f.Dumped(); dumped {
		t.Fatal("default trigger fired despite custom trigger set")
	}
	f.Emit(Event{Name: "custom.alarm"})
	if trigger, dumped := f.Dumped(); !dumped || trigger != "custom.alarm" {
		t.Fatalf("Dumped() = %q,%v", trigger, dumped)
	}
}

func TestFlightDumpToKeepsRing(t *testing.T) {
	dir := t.TempDir()
	f := NewFlightRecorder(8)
	for i := 0; i < 3; i++ {
		f.Emit(Event{Name: fmt.Sprintf("e%d", i)})
	}
	for _, name := range []string{"a.json", "b.json"} {
		p := filepath.Join(dir, name)
		if err := f.DumpTo(p, "test"); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var dump FlightDump
		if err := json.Unmarshal(raw, &dump); err != nil {
			t.Fatal(err)
		}
		if len(dump.Entries) != 3 {
			t.Errorf("%s: %d entries, want 3", name, len(dump.Entries))
		}
	}
}
