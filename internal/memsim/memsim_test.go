package memsim

import (
	"errors"
	"testing"
)

func TestLoadStore(t *testing.T) {
	m := New(8)
	m.Store(3, 42)
	if got := m.Load(3); got != 42 {
		t.Errorf("Load(3) = %d", got)
	}
	if m.Loads() != 1 || m.Stores() != 1 {
		t.Errorf("counters = %d loads, %d stores", m.Loads(), m.Stores())
	}
	m.ResetCounters()
	if m.Loads() != 0 || m.Stores() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestPeekPokeDoNotCount(t *testing.T) {
	m := New(4)
	m.Poke(0, 7)
	if m.Peek(0) != 7 {
		t.Error("Peek/Poke broken")
	}
	if m.Loads() != 0 || m.Stores() != 0 {
		t.Error("Peek/Poke affected counters")
	}
}

func TestFlipBit(t *testing.T) {
	m := New(1)
	m.Poke(0, 0)
	m.FlipBit(0, 17)
	if m.Peek(0) != 1<<17 {
		t.Errorf("word = %#x", m.Peek(0))
	}
	m.FlipBit(0, 17)
	if m.Peek(0) != 0 {
		t.Error("double flip should restore")
	}
}

func TestFlipBitRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).FlipBit(0, 64)
}

func TestOutOfBoundsPanics(t *testing.T) {
	for _, f := range []func(*Memory){
		func(m *Memory) { m.Load(10) },
		func(m *Memory) { m.Store(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f(New(4))
		}()
	}
}

func TestLoadHook(t *testing.T) {
	m := New(4)
	m.Store(2, 100)
	m.SetLoadHook(func(addr int, raw uint64) uint64 {
		if addr == 2 {
			return raw ^ 1 // corrupt loads of word 2
		}
		return raw
	})
	if got := m.Load(2); got != 101 {
		t.Errorf("hooked load = %d, want 101", got)
	}
	// The stored word itself is unchanged.
	if m.Peek(2) != 100 {
		t.Error("hook should not modify storage")
	}
	m.SetLoadHook(nil)
	if got := m.Load(2); got != 100 {
		t.Errorf("unhooked load = %d", got)
	}
}

func TestAllocator(t *testing.T) {
	m := New(4)
	a := NewAllocator(m)
	r1 := a.Alloc(10) // grows memory
	r2 := a.Alloc(5)
	if r1.Base != 0 || r1.Size != 10 || r2.Base != 10 || r2.Size != 5 {
		t.Errorf("regions = %+v %+v", r1, r2)
	}
	if a.Used() != 15 || m.Size() < 15 {
		t.Errorf("used=%d size=%d", a.Used(), m.Size())
	}
	// Regions are disjoint and usable.
	m.Store(r1.Base+9, 1)
	m.Store(r2.Base, 2)
	if m.Load(r1.Base+9) != 1 || m.Load(r2.Base) != 2 {
		t.Error("region storage broken")
	}
}

func TestAllocatorNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAllocator(New(0)).Alloc(-1)
}

func TestSnapshotRestore(t *testing.T) {
	m := New(8)
	for i := 0; i < 8; i++ {
		m.Store(i, uint64(i)*11)
	}
	snap := m.Snapshot()
	storesAt := m.Stores()

	// Mutate (including a fault) and roll back.
	m.Store(3, 999)
	m.FlipBit(5, 7)
	if err := m.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := m.Peek(i); got != uint64(i)*11 {
			t.Errorf("word %d = %d after restore, want %d", i, got, uint64(i)*11)
		}
	}
	if m.Stores() != storesAt+1 {
		t.Errorf("Restore must not rewind access counters: stores = %d", m.Stores())
	}

	// The snapshot is a copy: later writes must not leak into it.
	m.Store(0, 12345)
	if snap.Word(0) != 0 {
		t.Error("snapshot aliases live memory")
	}
}

func TestRestoreOversizedFails(t *testing.T) {
	big := New(3).Snapshot()
	if err := New(2).Restore(big); err == nil {
		t.Fatal("restore of an oversized snapshot must fail")
	}
}

func TestRestoreRefusesCorruptSnapshot(t *testing.T) {
	m := New(4)
	for i := 0; i < 4; i++ {
		m.Poke(i, uint64(i)+100)
	}
	snap := m.Snapshot()
	if err := snap.Verify(); err != nil {
		t.Fatalf("fresh snapshot failed verification: %v", err)
	}

	// A fault lands on the parked checkpoint.
	snap.FlipBit(2, 33)
	if err := snap.Verify(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("Verify = %v, want ErrCheckpointCorrupt", err)
	}
	m.Store(1, 7)
	if err := m.Restore(snap); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("Restore = %v, want ErrCheckpointCorrupt", err)
	}
	if m.Peek(1) != 7 {
		t.Error("refused restore must leave memory untouched")
	}

	// The unhardened baseline happily resurrects the corrupt data.
	if err := m.RestoreUnchecked(snap); err != nil {
		t.Fatal(err)
	}
	if m.Peek(2) != (102 ^ 1<<33) {
		t.Errorf("word 2 = %#x after unchecked restore", m.Peek(2))
	}
}

func TestRestoreRefusesUnsealedSnapshot(t *testing.T) {
	var zero Snapshot
	if err := New(2).Restore(zero); err == nil {
		t.Fatal("zero-value Snapshot accepted")
	}
}

// FuzzSnapshotDigest drives the checkpoint encode→corrupt→verify round trip:
// a freshly captured snapshot always verifies and restores, and flipping any
// single bit of any captured word is always refused as corrupt.
func FuzzSnapshotDigest(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint8(0), uint8(0))
	f.Add(uint64(0xdeadbeef), uint64(0xcafebabe), uint8(1), uint8(63))
	f.Add(^uint64(0), uint64(0), uint8(7), uint8(31))
	f.Fuzz(func(t *testing.T, w0, w1 uint64, addrSel, bit uint8) {
		m := New(8)
		m.Poke(0, w0)
		m.Poke(1, w1)
		for i := 2; i < 8; i++ {
			m.Poke(i, w0^uint64(i)*0x9e3779b97f4a7c15)
		}
		snap := m.Snapshot()
		if err := snap.Verify(); err != nil {
			t.Fatalf("fresh snapshot: %v", err)
		}
		if err := m.Restore(snap); err != nil {
			t.Fatalf("clean restore: %v", err)
		}

		snap.FlipBit(int(addrSel)%snap.Len(), int(bit)%64)
		if err := snap.Verify(); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("single-bit corruption escaped the digest: %v", err)
		}
		if err := m.Restore(snap); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("corrupt snapshot restored: %v", err)
		}
	})
}
