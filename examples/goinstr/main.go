// Goinstr: source-level instrumentation of real Go code via go/ast. The
// example instruments a small numeric function, prints the rewritten source,
// and then demonstrates the same def-use tracking directly through the
// public defuse/rt runtime — including the Section 4.1 persistent-corruption
// scenario that only the auxiliary e_def/e_use checksums catch.
//
//	go run ./examples/goinstr
package main

import (
	"fmt"
	"log"

	"defuse"
	"defuse/rt"
)

const goSrc = `package main

import "fmt"

func horner(x float64) float64 {
	acc := 0.0
	c3 := 1.5
	c2 := -2.0
	c1 := 3.25
	acc = c3
	acc = acc*x + c2
	acc = acc*x + c1
	return acc
}

func main() {
	fmt.Println(horner(2.0))
}
`

func main() {
	out, rep, err := defuse.InstrumentGo("main.go", goSrc, defuse.GoOptions{Funcs: []string{"horner"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== instrumented Go source ==")
	fmt.Println(out)
	fmt.Printf("tracked in horner: %v\n\n", rep.Tracked["horner"])

	// The same scheme driven by hand through defuse/rt: a value corrupts
	// after its first use and STAYS corrupted. The primary def/use checksums
	// collide (the paper's Section 4.1 pitfall); the auxiliary pair catches
	// it.
	t := rt.NewTracker()
	var cnt rt.Counter
	temp := rt.DefDyn(t, &cnt, 0.0, 30.0)
	_ = rt.Use(t, &cnt, temp) // first use: correct value

	corrupted := rt.CorruptBits(temp, 13) // transient flip that persists
	_ = rt.Use(t, &cnt, corrupted)        // second use sees the corruption
	rt.Final(t, &cnt, corrupted)          // epilogue also sees it

	def, use, edef, euse := t.Checksums()
	fmt.Println("== Section 4.1 persistent-corruption scenario ==")
	fmt.Printf("def_checksum   = %#x\nuse_checksum   = %#x  (collide: corruption entered both)\n", def, use)
	fmt.Printf("e_def_checksum = %#x\ne_use_checksum = %#x  (mismatch: error caught)\n", edef, euse)
	if err := t.Verify(); err != nil {
		fmt.Printf("verifier: %v\n", err)
	} else {
		fmt.Println("verifier: UNEXPECTEDLY CLEAN")
	}
}
