package codegen

import (
	"fmt"
	"math"

	"defuse/internal/checksum"
	"defuse/internal/lang"
)

// The closure compiler: lowers a checked program to a tree of small typed Go
// closures — the "plugin-style compiled closure" form of the native backend.
// It removes the interpreter's dynamic dispatch, value boxing, and name
// resolution (all done once here, at compile time) while executing the exact
// same operation sequence: evaluation is left-to-right, operands round
// through float64 at every step (the explicit conversions below also forbid
// the compiler from fusing a multiply-add across statements, which would
// change results on fused-multiply-add hardware), and every memory access
// goes through the Machine so memsim hooks, counters, and fault injection
// behave identically to interpreted execution.

// iop evaluates an integer-typed expression.
type iop func(fr *frame) (int64, error)

// fop evaluates a float-typed expression.
type fop func(fr *frame) (float64, error)

// bop evaluates an expression for truthiness.
type bop func(fr *frame) (bool, error)

// sop executes a statement.
type sop func(fr *frame) error

// aop resolves an lvalue to a word address.
type aop func(fr *frame) (int, error)

// frameVar is a variable's per-machine location, resolved at Fn entry.
type frameVar struct {
	base int
	dims []int64
}

// frame is the per-invocation register file: parameter and variable
// locations resolved against the target machine, plus the loop iterators
// (register-resident, exactly as in the interpreter's fault model).
type frame struct {
	m      *Machine
	params []int64
	vars   []frameVar
	iters  []int64
}

// Unit is a compiled program.
type Unit struct {
	prog     *lang.Program
	anchored bool
	fn       Fn
}

// Program returns the compiled program's AST.
func (u *Unit) Program() *lang.Program { return u.prog }

// Anchored reports whether the program has a top-level for loop to partition
// into epochs; an unanchored program collapses to a single epoch, exactly as
// interp.PlanEpochs does.
func (u *Unit) Anchored() bool { return u.anchored }

// Fn returns the native entry point.
func (u *Unit) Fn() Fn { return u.fn }

// Run executes the whole program in one shot, the native equivalent of
// interp's Machine.Run.
func (u *Unit) Run(m *Machine) error { return u.fn(m, 0, 1) }

// FnUnit wraps a pre-built entry point (typically a generated function from
// the gennative package) as a Unit, so epoch planning and supervision work
// identically over generated source and compiled closures. anchored must
// match the program's structure — generated registries record it.
func FnUnit(prog *lang.Program, anchored bool, fn Fn) *Unit {
	return &Unit{prog: prog, anchored: anchored, fn: fn}
}

// Compile lowers a checked program to a compiled closure. The returned
// Unit's Fn runs any epoch of any partition against any Machine built for
// the same program (layout is resolved per call).
func Compile(prog *lang.Program) (*Unit, error) {
	if err := lang.Check(prog); err != nil {
		return nil, err
	}
	c := &compiler{
		env:       newTypeEnv(prog),
		paramSlot: map[string]int{},
		varSlot:   map[string]int{},
		iterSlot:  map[string]int{},
	}
	for i, p := range prog.Params {
		c.paramSlot[p] = i
		c.paramNames = append(c.paramNames, p)
	}
	for i, d := range prog.Decls {
		c.varSlot[d.Name] = i
		c.varNames = append(c.varNames, d.Name)
	}

	// Split the body at the epoch anchor: the first top-level for loop.
	var pre, post []lang.Stmt
	var loop *lang.For
	for i, s := range prog.Body {
		if f, ok := s.(*lang.For); ok {
			pre = prog.Body[:i]
			loop = f
			post = prog.Body[i+1:]
			break
		}
	}
	if loop == nil {
		pre = prog.Body
	}

	preOp := c.stmts(pre)
	var loOp, hiOp iop
	var bodyOp, postOp sop
	var anchorSlot int
	var anchorLine, anchorCol int
	if loop != nil {
		// Bounds are compiled outside the iterator's scope, as the
		// interpreter evaluates them before the iterator exists.
		loOp = c.intExpr(loop.Lo)
		hiOp = c.intExpr(loop.Hi)
		anchorSlot = c.pushIter(loop.Iter)
		bodyOp = c.stmts(loop.Body)
		c.popIter(loop.Iter)
		postOp = c.stmts(post)
		anchorLine, anchorCol = loop.Pos.Line, loop.Pos.Col
	}

	paramNames := c.paramNames
	varNames := c.varNames
	nIters := c.nIters
	mkFrame := func(m *Machine) *frame {
		fr := &frame{
			m:      m,
			params: make([]int64, len(paramNames)),
			vars:   make([]frameVar, len(varNames)),
			iters:  make([]int64, nIters),
		}
		for i, n := range paramNames {
			fr.params[i] = m.Param(n)
		}
		for i, n := range varNames {
			base, dims := m.Var(n)
			fr.vars[i] = frameVar{base: base, dims: dims}
		}
		return fr
	}

	fn := func(m *Machine, epoch, epochs int) error {
		if err := CheckEpoch(epoch, epochs); err != nil {
			return err
		}
		fr := mkFrame(m)
		if loop == nil {
			if epoch == 0 {
				return preOp(fr)
			}
			return nil
		}
		if epoch == 0 {
			if err := preOp(fr); err != nil {
				return err
			}
			lo, err := loOp(fr)
			if err != nil {
				return err
			}
			hi, err := hiOp(fr)
			if err != nil {
				return err
			}
			m.SetBounds(lo, hi)
		}
		lo, hi, ok := m.Bounds()
		if !ok {
			return ErrNoBounds(epoch)
		}
		start, end := Slice(lo, hi, epoch, epochs)
		for i := start; i <= end; i++ {
			fr.iters[anchorSlot] = i
			if err := m.Tick(anchorLine, anchorCol); err != nil {
				return err
			}
			if err := bodyOp(fr); err != nil {
				return err
			}
		}
		if epoch == epochs-1 {
			return postOp(fr)
		}
		return nil
	}
	return &Unit{prog: prog, anchored: loop != nil, fn: fn}, nil
}

// compiler carries compile-time name resolution: every name becomes a slot
// index, so compiled code never touches a map.
type compiler struct {
	env        *typeEnv
	paramSlot  map[string]int
	paramNames []string
	varSlot    map[string]int
	varNames   []string
	iterSlot   map[string]int // active lexical scope
	nIters     int            // total iterator slots allocated
}

func (c *compiler) pushIter(name string) int {
	slot := c.nIters
	c.nIters++
	c.iterSlot[name] = slot
	c.env.iters[name] = true
	return slot
}

func (c *compiler) popIter(name string) {
	delete(c.iterSlot, name)
	delete(c.env.iters, name)
}

// cexpr is a compiled expression with its static type.
type cexpr struct {
	isInt bool
	i     iop
	f     fop
}

// asFloat adapts to float evaluation (interp's value.toFloat).
func (e cexpr) asFloat() fop {
	if !e.isInt {
		return e.f
	}
	ip := e.i
	return func(fr *frame) (float64, error) {
		v, err := ip(fr)
		return float64(v), err
	}
}

// asInt returns the integer evaluator; the expression must be statically
// integral (callers only use it in contexts Check restricts to integers).
func (e cexpr) asInt() iop {
	if !e.isInt {
		panic("codegen: float expression in integer context")
	}
	return e.i
}

// intExpr compiles an expression Check guarantees to be integral.
func (c *compiler) intExpr(e lang.Expr) iop { return c.expr(e).asInt() }

// truthy compiles an expression to its truth value (non-zero).
func (c *compiler) truthy(e lang.Expr) bop {
	x := c.expr(e)
	if x.isInt {
		ip := x.i
		return func(fr *frame) (bool, error) {
			v, err := ip(fr)
			return v != 0, err
		}
	}
	fp := x.f
	return func(fr *frame) (bool, error) {
		v, err := fp(fr)
		return v != 0, err
	}
}

// addr compiles an array (or scalar) reference to an address resolver with
// interp's bounds semantics: per-dimension check against the concrete size,
// row-major flattening, error text identical to the interpreter's.
func (c *compiler) addr(r *lang.Ref) aop {
	slot, ok := c.varSlot[r.Name]
	if !ok {
		panic(fmt.Sprintf("codegen: %s: unknown variable %q", r.Pos, r.Name))
	}
	if len(r.Indices) == 0 {
		return func(fr *frame) (int, error) {
			return fr.vars[slot].base, nil
		}
	}
	ixOps := make([]iop, len(r.Indices))
	for k, ixExpr := range r.Indices {
		ixOps[k] = c.intExpr(ixExpr)
	}
	name := r.Name
	line, col := r.Pos.Line, r.Pos.Col
	return func(fr *frame) (int, error) {
		vs := &fr.vars[slot]
		addr := int64(0)
		for k, ixOp := range ixOps {
			ix, err := ixOp(fr)
			if err != nil {
				return 0, err
			}
			if ix < 0 || ix >= vs.dims[k] {
				return 0, fr.m.OOB(ix, vs.dims[k], k, name, line, col)
			}
			addr = addr*vs.dims[k] + ix
		}
		return vs.base + int(addr), nil
	}
}

// expr compiles an expression to its statically typed evaluator.
func (c *compiler) expr(e lang.Expr) cexpr {
	switch x := e.(type) {
	case *lang.IntLit:
		v := x.Val
		return cexpr{isInt: true, i: func(*frame) (int64, error) { return v, nil }}
	case *lang.FloatLit:
		v := x.Val
		return cexpr{f: func(*frame) (float64, error) { return v, nil }}
	case *lang.Ref:
		return c.ref(x)
	case *lang.Bin:
		return c.bin(x)
	case *lang.Un:
		return c.un(x)
	case *lang.Call:
		return c.call(x)
	default:
		panic(fmt.Sprintf("codegen: unknown expression %T", e))
	}
}

// ref compiles a name read with interp's resolution order: live iterator,
// then parameter (both register-resident), then memory-resident variable.
func (c *compiler) ref(x *lang.Ref) cexpr {
	if slot, ok := c.iterSlot[x.Name]; ok && len(x.Indices) == 0 {
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) { return fr.iters[slot], nil }}
	}
	if slot, ok := c.paramSlot[x.Name]; ok && len(x.Indices) == 0 {
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) { return fr.params[slot], nil }}
	}
	ap := c.addr(x)
	if c.env.vars[x.Name] { // int variable
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
			a, err := ap(fr)
			if err != nil {
				return 0, err
			}
			return int64(fr.m.Load(a)), nil
		}}
	}
	return cexpr{f: func(fr *frame) (float64, error) {
		a, err := ap(fr)
		if err != nil {
			return 0, err
		}
		return fr.m.LoadF(a), nil
	}}
}

func (c *compiler) un(x *lang.Un) cexpr {
	if x.Op == lang.UnNot {
		tp := c.truthy(x.X)
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
			v, err := tp(fr)
			if err != nil {
				return 0, err
			}
			return B2I(!v), nil
		}}
	}
	op := c.expr(x.X)
	if op.isInt {
		ip := op.i
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
			v, err := ip(fr)
			return -v, err
		}}
	}
	fp := op.f
	return cexpr{f: func(fr *frame) (float64, error) {
		v, err := fp(fr)
		return float64(-v), err
	}}
}

func (c *compiler) bin(x *lang.Bin) cexpr {
	// Short-circuit logical operators: the right operand only evaluates
	// when the left doesn't decide.
	if x.Op == lang.BinAnd || x.Op == lang.BinOr {
		lt := c.truthy(x.L)
		rt := c.truthy(x.R)
		and := x.Op == lang.BinAnd
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
			l, err := lt(fr)
			if err != nil {
				return 0, err
			}
			if and && !l {
				return 0, nil
			}
			if !and && l {
				return 1, nil
			}
			r, err := rt(fr)
			if err != nil {
				return 0, err
			}
			return B2I(r), nil
		}}
	}

	l := c.expr(x.L)
	r := c.expr(x.R)
	bothInt := l.isInt && r.isInt

	if x.Op.IsComparison() {
		if bothInt {
			li, ri := l.i, r.i
			cmp := intCmp(x.Op)
			return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
				a, err := li(fr)
				if err != nil {
					return 0, err
				}
				b, err := ri(fr)
				if err != nil {
					return 0, err
				}
				return B2I(cmp(a, b)), nil
			}}
		}
		lf, rf := l.asFloat(), r.asFloat()
		cmp := floatCmp(x.Op)
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
			a, err := lf(fr)
			if err != nil {
				return 0, err
			}
			b, err := rf(fr)
			if err != nil {
				return 0, err
			}
			return B2I(cmp(a, b)), nil
		}}
	}

	if x.Op == lang.BinMod {
		if bothInt {
			li, ri := l.i, r.i
			line, col := x.Pos.Line, x.Pos.Col
			return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
				a, err := li(fr)
				if err != nil {
					return 0, err
				}
				b, err := ri(fr)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, fr.m.ModZero(line, col)
				}
				return a % b, nil
			}}
		}
		// Float operand: the interpreter evaluates both operands, then
		// rejects the operator. Preserve that order (the operands may fault
		// first, e.g. on a bad subscript).
		lf, rf := l.asFloat(), r.asFloat()
		line, col := x.Pos.Line, x.Pos.Col
		return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
			if _, err := lf(fr); err != nil {
				return 0, err
			}
			if _, err := rf(fr); err != nil {
				return 0, err
			}
			return 0, fr.m.ModFloat(line, col)
		}}
	}

	if bothInt {
		li, ri := l.i, r.i
		switch x.Op {
		case lang.BinAdd:
			return cexpr{isInt: true, i: intBin(li, ri, func(a, b int64) int64 { return a + b })}
		case lang.BinSub:
			return cexpr{isInt: true, i: intBin(li, ri, func(a, b int64) int64 { return a - b })}
		case lang.BinMul:
			return cexpr{isInt: true, i: intBin(li, ri, func(a, b int64) int64 { return a * b })}
		default: // BinDiv
			line, col := x.Pos.Line, x.Pos.Col
			return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
				a, err := li(fr)
				if err != nil {
					return 0, err
				}
				b, err := ri(fr)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, fr.m.DivZero(line, col)
				}
				return a / b, nil
			}}
		}
	}

	lf, rf := l.asFloat(), r.asFloat()
	switch x.Op {
	case lang.BinAdd:
		return cexpr{f: floatBin(lf, rf, func(a, b float64) float64 { return float64(a + b) })}
	case lang.BinSub:
		return cexpr{f: floatBin(lf, rf, func(a, b float64) float64 { return float64(a - b) })}
	case lang.BinMul:
		return cexpr{f: floatBin(lf, rf, func(a, b float64) float64 { return float64(a * b) })}
	default: // BinDiv
		line, col := x.Pos.Line, x.Pos.Col
		return cexpr{f: func(fr *frame) (float64, error) {
			a, err := lf(fr)
			if err != nil {
				return 0, err
			}
			b, err := rf(fr)
			if err != nil {
				return 0, err
			}
			if b == 0 {
				return 0, fr.m.DivZero(line, col)
			}
			return float64(a / b), nil
		}}
	}
}

func (c *compiler) call(x *lang.Call) cexpr {
	args := make([]cexpr, len(x.Args))
	for i, a := range x.Args {
		args[i] = c.expr(a)
	}
	switch x.Name {
	case "sqrt":
		af := args[0].asFloat()
		return cexpr{f: func(fr *frame) (float64, error) {
			v, err := af(fr)
			if err != nil {
				return 0, err
			}
			return float64(math.Sqrt(v)), nil
		}}
	case "abs":
		if args[0].isInt {
			ai := args[0].i
			return cexpr{isInt: true, i: func(fr *frame) (int64, error) {
				v, err := ai(fr)
				return AbsI(v), err
			}}
		}
		af := args[0].f
		return cexpr{f: func(fr *frame) (float64, error) {
			v, err := af(fr)
			return math.Abs(v), err
		}}
	case "min", "max":
		if args[0].isInt && args[1].isInt {
			fi := MinI
			if x.Name == "max" {
				fi = MaxI
			}
			return cexpr{isInt: true, i: intBin(args[0].i, args[1].i, fi)}
		}
		ff := math.Min
		if x.Name == "max" {
			ff = math.Max
		}
		return cexpr{f: floatBin(args[0].asFloat(), args[1].asFloat(),
			func(a, b float64) float64 { return float64(ff(a, b)) })}
	default:
		panic(fmt.Sprintf("codegen: %s: unknown intrinsic %s", x.Pos, x.Name))
	}
}

func intBin(l, r iop, op func(int64, int64) int64) iop {
	return func(fr *frame) (int64, error) {
		a, err := l(fr)
		if err != nil {
			return 0, err
		}
		b, err := r(fr)
		if err != nil {
			return 0, err
		}
		return op(a, b), nil
	}
}

func floatBin(l, r fop, op func(float64, float64) float64) fop {
	return func(fr *frame) (float64, error) {
		a, err := l(fr)
		if err != nil {
			return 0, err
		}
		b, err := r(fr)
		if err != nil {
			return 0, err
		}
		return op(a, b), nil
	}
}

func intCmp(op lang.BinOp) func(a, b int64) bool {
	switch op {
	case lang.BinEq:
		return func(a, b int64) bool { return a == b }
	case lang.BinNe:
		return func(a, b int64) bool { return a != b }
	case lang.BinLt:
		return func(a, b int64) bool { return a < b }
	case lang.BinLe:
		return func(a, b int64) bool { return a <= b }
	case lang.BinGt:
		return func(a, b int64) bool { return a > b }
	default:
		return func(a, b int64) bool { return a >= b }
	}
}

func floatCmp(op lang.BinOp) func(a, b float64) bool {
	switch op {
	case lang.BinEq:
		return func(a, b float64) bool { return a == b }
	case lang.BinNe:
		return func(a, b float64) bool { return a != b }
	case lang.BinLt:
		return func(a, b float64) bool { return a < b }
	case lang.BinLe:
		return func(a, b float64) bool { return a <= b }
	case lang.BinGt:
		return func(a, b float64) bool { return a > b }
	default:
		return func(a, b float64) bool { return a >= b }
	}
}

// stmts compiles a statement list to one sequenced op.
func (c *compiler) stmts(ss []lang.Stmt) sop {
	ops := make([]sop, len(ss))
	for i, s := range ss {
		ops[i] = c.stmt(s)
	}
	return func(fr *frame) error {
		for _, op := range ops {
			if err := op(fr); err != nil {
				return err
			}
		}
		return nil
	}
}

func (c *compiler) stmt(s lang.Stmt) sop {
	switch x := s.(type) {
	case *lang.Assign:
		return c.assign(x)
	case *lang.For:
		lo := c.intExpr(x.Lo)
		hi := c.intExpr(x.Hi)
		slot := c.pushIter(x.Iter)
		body := c.stmts(x.Body)
		c.popIter(x.Iter)
		line, col := x.Pos.Line, x.Pos.Col
		return func(fr *frame) error {
			l, err := lo(fr)
			if err != nil {
				return err
			}
			h, err := hi(fr)
			if err != nil {
				return err
			}
			for i := l; i <= h; i++ {
				fr.iters[slot] = i
				if err := fr.m.Tick(line, col); err != nil {
					return err
				}
				if err := body(fr); err != nil {
					return err
				}
			}
			return nil
		}
	case *lang.While:
		cond := c.truthy(x.Cond)
		body := c.stmts(x.Body)
		line, col := x.Pos.Line, x.Pos.Col
		return func(fr *frame) error {
			for {
				// Tick per condition check: the budget and cancellation
				// polls must fire even for an empty or non-converging body.
				if err := fr.m.Tick(line, col); err != nil {
					return err
				}
				v, err := cond(fr)
				if err != nil {
					return err
				}
				if !v {
					return nil
				}
				if err := body(fr); err != nil {
					return err
				}
			}
		}
	case *lang.If:
		cond := c.truthy(x.Cond)
		then := c.stmts(x.Then)
		els := c.stmts(x.Else)
		return func(fr *frame) error {
			v, err := cond(fr)
			if err != nil {
				return err
			}
			if v {
				return then(fr)
			}
			return els(fr)
		}
	case *lang.AddToChecksum:
		return c.addToChecksum(x)
	case *lang.AssertChecksums:
		line, col := x.Pos.Line, x.Pos.Col
		return func(fr *frame) error { return fr.m.Assert(line, col) }
	default:
		panic(fmt.Sprintf("codegen: unknown statement %T", s))
	}
}

// accOf maps a source checksum name to its Pair accumulator.
func accOf(cs lang.CSName) checksum.Acc {
	switch cs {
	case lang.DefCS:
		return checksum.AccDef
	case lang.UseCS:
		return checksum.AccUse
	case lang.EDefCS:
		return checksum.AccEDef
	default:
		return checksum.AccEUse
	}
}

func (c *compiler) addToChecksum(x *lang.AddToChecksum) sop {
	val := c.expr(x.Value)
	acc := accOf(x.CS)
	cntX := c.expr(x.Count)
	if !cntX.isInt {
		// The interpreter evaluates the value and the count, then rejects
		// the non-integral count at the count's position.
		vf := val.asFloat()
		cf := cntX.f
		pos := x.Count.ExprPos()
		line, col := pos.Line, pos.Col
		return func(fr *frame) error {
			if _, err := vf(fr); err != nil {
				return err
			}
			if _, err := cf(fr); err != nil {
				return err
			}
			return fr.m.IntExpected(line, col)
		}
	}
	cnt := cntX.i
	if val.isInt {
		vi := val.i
		return func(fr *frame) error {
			v, err := vi(fr)
			if err != nil {
				return err
			}
			n, err := cnt(fr)
			if err != nil {
				return err
			}
			fr.m.Fold(acc, uint64(v), n)
			return nil
		}
	}
	vf := val.f
	return func(fr *frame) error {
		v, err := vf(fr)
		if err != nil {
			return err
		}
		n, err := cnt(fr)
		if err != nil {
			return err
		}
		fr.m.Fold(acc, math.Float64bits(v), n)
		return nil
	}
}

// assign compiles "lhs op= rhs" with the interpreter's exact order: RHS
// first, then the LHS address, then (for compound ops) the current value,
// the zero check, the operation, and the store with the variable's type
// conversion.
func (c *compiler) assign(x *lang.Assign) sop {
	rhs := c.expr(x.RHS)
	ap := c.addr(x.LHS)
	varInt := c.env.vars[x.LHS.Name]
	line, col := x.Pos.Line, x.Pos.Col

	if x.Op == lang.OpSet {
		if varInt {
			if rhs.isInt {
				ri := rhs.i
				return func(fr *frame) error {
					v, err := ri(fr)
					if err != nil {
						return err
					}
					a, err := ap(fr)
					if err != nil {
						return err
					}
					fr.m.Store(a, uint64(v))
					return nil
				}
			}
			rf := rhs.f
			return func(fr *frame) error {
				v, err := rf(fr)
				if err != nil {
					return err
				}
				a, err := ap(fr)
				if err != nil {
					return err
				}
				fr.m.Store(a, uint64(int64(v)))
				return nil
			}
		}
		rf := rhs.asFloat()
		return func(fr *frame) error {
			v, err := rf(fr)
			if err != nil {
				return err
			}
			a, err := ap(fr)
			if err != nil {
				return err
			}
			fr.m.StoreF(a, v)
			return nil
		}
	}

	// Compound assignment. The result type follows numOp: integer iff both
	// the current value (the variable's type) and the RHS are integers.
	if varInt && rhs.isInt {
		ri := rhs.i
		var op func(a, b int64) int64
		switch x.Op {
		case lang.OpAdd:
			op = func(a, b int64) int64 { return a + b }
		case lang.OpSub:
			op = func(a, b int64) int64 { return a - b }
		case lang.OpMul:
			op = func(a, b int64) int64 { return a * b }
		}
		isDiv := x.Op == lang.OpDiv
		return func(fr *frame) error {
			v, err := ri(fr)
			if err != nil {
				return err
			}
			a, err := ap(fr)
			if err != nil {
				return err
			}
			cur := int64(fr.m.Load(a))
			var out int64
			if isDiv {
				if v == 0 {
					return fr.m.DivZero(line, col)
				}
				out = cur / v
			} else {
				out = op(cur, v)
			}
			fr.m.Store(a, uint64(out))
			return nil
		}
	}

	// Float result: the current value and RHS promote to float; an integer
	// variable truncates the float result back on store.
	rf := rhs.asFloat()
	var fpOp func(a, b float64) float64
	switch x.Op {
	case lang.OpAdd:
		fpOp = func(a, b float64) float64 { return float64(a + b) }
	case lang.OpSub:
		fpOp = func(a, b float64) float64 { return float64(a - b) }
	case lang.OpMul:
		fpOp = func(a, b float64) float64 { return float64(a * b) }
	}
	isDiv := x.Op == lang.OpDiv
	return func(fr *frame) error {
		v, err := rf(fr)
		if err != nil {
			return err
		}
		a, err := ap(fr)
		if err != nil {
			return err
		}
		var cur float64
		if varInt {
			cur = float64(int64(fr.m.Load(a)))
		} else {
			cur = fr.m.LoadF(a)
		}
		var out float64
		if isDiv {
			if v == 0 {
				return fr.m.DivZero(line, col)
			}
			out = float64(cur / v)
		} else {
			out = fpOp(cur, v)
		}
		if varInt {
			fr.m.Store(a, uint64(int64(out)))
		} else {
			fr.m.StoreF(a, out)
		}
		return nil
	}
}
