package instrument

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"defuse/internal/interp"
	"defuse/internal/lang"
)

const choleskySrc = `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

const cgishSrc = `
program cgish(n, maxiter)
float p_new[n];
float temp1, temp2, temp3;
int cols[n];
int iter;
iter = 0;
while (iter < maxiter) {
  for j1 = 0 to n - 1 {
    S1: temp1 += p_new[cols[j1]];
  }
  for j2 = 0 to n - 1 {
    S2: temp2 += p_new[j2];
  }
  temp3 = temp2 / 1000.0;
  for j3 = 0 to n - 1 {
    S3: p_new[j3] = temp3;
  }
  iter = iter + 1;
}
`

// kernels used by the matrix of option-combination tests.
var kernels = []struct {
	name   string
	src    string
	params map[string]int64
	setup  func(m *interp.Machine)
}{
	{
		name: "cholesky", src: choleskySrc,
		params: map[string]int64{"n": 8},
		setup: func(m *interp.Machine) {
			m.FillFloat("A", func(i int64) float64 { return 0.1*float64(i%13) + 1 })
			for d := int64(0); d < 8; d++ {
				m.SetFloat("A", 50+float64(d), d, d)
			}
		},
	},
	{
		name: "jacobi1d", src: `
program jacobi1d(n, tmax)
float A[n], B[n];
for t = 0 to tmax - 1 {
  for i = 1 to n - 2 {
    S1: B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
  }
  for i = 1 to n - 2 {
    S2: A[i] = B[i];
  }
}
`,
		params: map[string]int64{"n": 12, "tmax": 4},
		setup: func(m *interp.Machine) {
			m.FillFloat("A", func(i int64) float64 { return float64(i * i % 17) })
		},
	},
	{
		name: "trisolv", src: `
program trisolv(n)
float L[n][n], x[n], b[n];
for i = 0 to n - 1 {
  S1: x[i] = b[i];
  for j = 0 to i - 1 {
    S2: x[i] = x[i] - L[i][j] * x[j];
  }
  S3: x[i] = x[i] / L[i][i];
}
`,
		params: map[string]int64{"n": 9},
		setup: func(m *interp.Machine) {
			m.FillFloat("L", func(i int64) float64 { return 0.01 * float64(i%7) })
			for d := int64(0); d < 9; d++ {
				m.SetFloat("L", 2+float64(d), d, d)
			}
			m.FillFloat("b", func(i int64) float64 { return float64(i + 1) })
		},
	},
	{
		name: "cgish", src: cgishSrc,
		params: map[string]int64{"n": 10, "maxiter": 5},
		setup: func(m *interp.Machine) {
			m.FillFloat("p_new", func(i int64) float64 { return float64(i) + 0.5 })
			m.FillInt("cols", func(i int64) int64 { return (i * 3) % 10 })
		},
	},
}

func run(t *testing.T, src string, params map[string]int64, setup func(*interp.Machine)) *interp.Machine {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.New(prog, params)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(m)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return m
}

func instrumented(t *testing.T, src string, opt Options) *Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Instrument(prog, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func optCombos() []Options {
	return []Options{
		{},
		{Split: true},
		{Inspector: true},
		{Split: true, Inspector: true},
	}
}

// TestNoFalsePositivesAndSemanticsPreserved is the central soundness test:
// for every kernel and every option combination, the instrumented program
// must produce bit-identical results to the original and pass its checksum
// assertion when no faults are injected.
func TestNoFalsePositivesAndSemanticsPreserved(t *testing.T) {
	for _, k := range kernels {
		for _, opt := range optCombos() {
			name := k.name
			if opt.Split {
				name += "+split"
			}
			if opt.Inspector {
				name += "+insp"
			}
			t.Run(name, func(t *testing.T) {
				ref := run(t, k.src, k.params, k.setup)
				res := instrumented(t, k.src, opt)
				m, err := interp.New(res.Prog, k.params)
				if err != nil {
					t.Fatalf("instrumented machine: %v\n%s", err, lang.Print(res.Prog))
				}
				k.setup(m)
				if err := m.Run(); err != nil {
					t.Fatalf("false positive or runtime error: %v\n%s", err, lang.Print(res.Prog))
				}
				// Compare every float array bit-exactly.
				for _, d := range lang.MustParse(k.src).Decls {
					if d.Type != lang.TypeFloat {
						continue
					}
					want, err := ref.SnapshotFloats(d.Name)
					if err != nil {
						t.Fatal(err)
					}
					got, err := m.SnapshotFloats(d.Name)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if want[i] != got[i] {
							t.Fatalf("%s[%d] differs: %v vs %v", d.Name, i, want[i], got[i])
						}
					}
				}
			})
		}
	}
}

func TestCholeskyInstrumentationShape(t *testing.T) {
	res := instrumented(t, choleskySrc, Options{})
	src := lang.Print(res.Prog)
	// The def-checksum for S1's write must be scaled by the n-1-j use count
	// (paper Figure 5).
	if !strings.Contains(src, "add_to_chksm(def_cs, A[j][j]") {
		t.Errorf("missing scaled def add:\n%s", src)
	}
	if !strings.Contains(src, "add_to_chksm(use_cs, A[j][j], 1)") {
		t.Errorf("missing use adds:\n%s", src)
	}
	if !strings.Contains(src, "assert_checksums();") {
		t.Errorf("missing verifier:\n%s", src)
	}
	// The guarded version keeps an if for the last-iteration exclusion.
	if !strings.Contains(src, "if (") {
		t.Errorf("expected use-count guard:\n%s", src)
	}
	if res.Report.Plans["A"] != PlanStatic {
		t.Errorf("A plan = %v, want static", res.Report.Plans["A"])
	}
}

func TestCholeskySplitRemovesGuardFromLoop(t *testing.T) {
	res := instrumented(t, choleskySrc, Options{Split: true})
	// After index-set splitting, no If guard may remain inside any compute
	// loop (one containing a labeled statement) around the S1 def add — the
	// j loop is peeled instead (Figure 6). Prologue loops keep their
	// equality guards and are exempt.
	var badIf bool
	lang.WalkStmts(res.Prog.Body, func(s lang.Stmt) bool {
		f, ok := s.(*lang.For)
		if !ok {
			return true
		}
		hasLabeled := false
		lang.WalkStmts(f.Body, func(inner lang.Stmt) bool {
			if a, isAssign := inner.(*lang.Assign); isAssign && a.Label != "" {
				hasLabeled = true
			}
			return true
		})
		if !hasLabeled {
			return true
		}
		lang.WalkStmts(f.Body, func(inner lang.Stmt) bool {
			if ifs, isIf := inner.(*lang.If); isIf {
				lang.WalkStmts(ifs.Then, func(x lang.Stmt) bool {
					if add, isAdd := x.(*lang.AddToChecksum); isAdd && add.CS == lang.DefCS {
						badIf = true
					}
					return true
				})
			}
			return true
		})
		return true
	})
	if badIf {
		t.Errorf("def add still guarded inside a loop after splitting:\n%s", lang.Print(res.Prog))
	}
	if !res.Report.SplitApplied {
		t.Error("report should record split")
	}
}

func TestCGInspectorPlans(t *testing.T) {
	res := instrumented(t, cgishSrc, Options{Inspector: true})
	p := res.Report.Plans
	if p["p_new"] != PlanInspector {
		t.Errorf("p_new plan = %v, want inspector", p["p_new"])
	}
	if p["cols"] != PlanInvariant {
		t.Errorf("cols plan = %v, want invariant", p["cols"])
	}
	if p["temp1"] != PlanDynamic || p["temp2"] != PlanDynamic {
		t.Errorf("temps should be dynamic: %v %v", p["temp1"], p["temp2"])
	}
	if p["iter"] != PlanControl {
		t.Errorf("iter plan = %v, want control", p["iter"])
	}
	if res.Report.InspectorsHoisted != 1 {
		t.Errorf("inspectors hoisted = %d, want 1", res.Report.InspectorsHoisted)
	}
	src := lang.Print(res.Prog)
	// The hoisted inspector counts indirect accesses before the while loop.
	if !strings.Contains(src, "p_new_icnt[cols[j1]]") {
		t.Errorf("missing hoisted inspector:\n%s", src)
	}
}

func TestCGWithoutInspectorUsesCounters(t *testing.T) {
	res := instrumented(t, cgishSrc, Options{})
	p := res.Report.Plans
	if p["p_new"] != PlanDynamic || p["cols"] != PlanDynamic {
		t.Errorf("without inspector both arrays should be dynamic: %v %v", p["p_new"], p["cols"])
	}
	src := lang.Print(res.Prog)
	if !strings.Contains(src, "p_new_cnt") {
		t.Errorf("missing shadow counter:\n%s", src)
	}
}

// TestDetectsInjectedFaults flips one bit of A[7][7] — read only by the very
// last S1 instance, so its def-to-use window spans nearly the whole run — at
// a sweep of steps, and checks that the verifier fires for most of them.
func TestDetectsInjectedFaults(t *testing.T) {
	for _, opt := range optCombos() {
		res := instrumented(t, choleskySrc, opt)
		clean, err := interp.New(res.Prog, map[string]int64{"n": 8})
		if err != nil {
			t.Fatal(err)
		}
		kernels[0].setup(clean)
		if err := clean.Run(); err != nil {
			t.Fatal(err)
		}
		total := clean.Counts.Stmts

		detected, trials := 0, 0
		for step := uint64(1); step < total; step += 7 {
			trials++
			m, err := interp.New(res.Prog, map[string]int64{"n": 8})
			if err != nil {
				t.Fatal(err)
			}
			kernels[0].setup(m)
			base, _, err := m.Region("A")
			if err != nil {
				t.Fatal(err)
			}
			fired := false
			s := step
			m.SetStepHook(func(cur uint64) {
				if !fired && cur == s {
					m.Mem().FlipBit(base+7*8+7, 21) // A[7][7]
					fired = true
				}
			})
			err = m.Run()
			var de *interp.DetectionError
			if errors.As(err, &de) {
				detected++
			} else if err != nil {
				t.Fatalf("opt %+v: unexpected error: %v", opt, err)
			}
		}
		// Flips before the prologue registers the cell (or after its last
		// use) fall outside any def-use window and are legitimately missed;
		// the window for A[7][7] still spans over a third of the run.
		if detected*3 < trials {
			t.Errorf("opt %+v: only %d/%d flip positions detected", opt, detected, trials)
		}
	}
}

// TestFaultInjectionSweep injects random single-bit flips at random steps
// across kernels and option combinations. Clean runs must always verify;
// flips must frequently be detected and never produce a spurious
// *RuntimeError.
func TestFaultInjectionSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range kernels {
		for _, opt := range []Options{{}, {Split: true, Inspector: true}} {
			res := instrumented(t, k.src, opt)
			// Find total steps and data region from a clean run.
			clean, err := interp.New(res.Prog, k.params)
			if err != nil {
				t.Fatal(err)
			}
			k.setup(clean)
			if err := clean.Run(); err != nil {
				t.Fatalf("%s: clean run failed: %v", k.name, err)
			}
			totalSteps := clean.Counts.Stmts

			detected, trials := 0, 25
			for trial := 0; trial < trials; trial++ {
				m, err := interp.New(res.Prog, k.params)
				if err != nil {
					t.Fatal(err)
				}
				k.setup(m)
				// Pick a float data array of the original program.
				decls := lang.MustParse(k.src).Decls
				var name string
				for {
					d := decls[rng.Intn(len(decls))]
					if d.IsArray() && d.Type == lang.TypeFloat {
						name = d.Name
						break
					}
				}
				base, size, err := m.Region(name)
				if err != nil {
					t.Fatal(err)
				}
				step := uint64(rng.Int63n(int64(totalSteps-2))) + 1
				addr := base + rng.Intn(size)
				bit := rng.Intn(64)
				done := false
				m.SetStepHook(func(s uint64) {
					if !done && s == step {
						m.Mem().FlipBit(addr, bit)
						done = true
					}
				})
				err = m.Run()
				var de *interp.DetectionError
				var re *interp.RuntimeError
				switch {
				case errors.As(err, &de):
					detected++
				case errors.As(err, &re):
					t.Fatalf("%s: fault injection caused runtime error: %v", k.name, err)
				}
			}
			// Many flips land on already-dead values; still, a healthy
			// fraction must be detected.
			if detected == 0 {
				t.Errorf("%s opt=%+v: no injected fault detected in %d trials", k.name, opt, trials)
			}
		}
	}
}

func TestInstrumentedProgramsReparse(t *testing.T) {
	for _, k := range kernels {
		for _, opt := range optCombos() {
			res := instrumented(t, k.src, opt)
			printed := lang.Print(res.Prog)
			if _, err := lang.Parse(printed); err != nil {
				t.Errorf("%s: instrumented program does not reparse: %v\n%s", k.name, err, printed)
			}
		}
	}
}

func TestReportString(t *testing.T) {
	res := instrumented(t, choleskySrc, Options{Split: true})
	s := res.Report.String()
	if !strings.Contains(s, "A: static") {
		t.Errorf("report = %q", s)
	}
}

func TestCloneProgramIndependence(t *testing.T) {
	p := lang.MustParse(choleskySrc)
	c := CloneProgram(p)
	c.Decls[0].Name = "ZZ"
	c.Body[0].(*lang.For).Iter = "q"
	if p.Decls[0].Name != "A" || p.Body[0].(*lang.For).Iter != "j" {
		t.Error("CloneProgram shares state")
	}
}

func TestDynamicScalarScheme(t *testing.T) {
	// A purely dynamic program (Figure 7 shape): conditional uses.
	src := `
program fig7(n)
float temp, a, b;
int x[n], z[n];
temp = 30.0;
if (x[5] > 0) {
  a = temp + 1.0;
}
if (z[3] > 0) {
  b = temp + 2.0;
}
`
	res := instrumented(t, src, Options{})
	// x and z appear in conditions: control variables.
	if res.Report.Plans["x"] != PlanControl || res.Report.Plans["z"] != PlanControl {
		t.Errorf("condition arrays should be control: %v", res.Report.Plans)
	}
	if res.Report.Plans["temp"] != PlanDynamic {
		t.Errorf("temp should be dynamic, got %v", res.Report.Plans["temp"])
	}
	for _, zero := range []int64{0, 1} {
		m, err := interp.New(res.Prog, map[string]int64{"n": 8})
		if err != nil {
			t.Fatal(err)
		}
		m.FillInt("x", func(i int64) int64 { return zero })
		m.FillInt("z", func(i int64) int64 { return 1 - zero })
		if err := m.Run(); err != nil {
			t.Errorf("zero=%d: false positive: %v", zero, err)
		}
	}
}

func TestDynamicDetectsPersistentCorruption(t *testing.T) {
	// The Section 4.1 scenario end-to-end: a value corrupts after its first
	// use and stays corrupted; the auxiliary checksums must catch it.
	src := `
program p()
float temp, a, b;
temp = 30.0;
a = temp + 1.0;
b = temp + 2.0;
`
	res := instrumented(t, src, Options{})
	m, err := interp.New(res.Prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := m.Region("temp")
	if err != nil {
		t.Fatal(err)
	}
	// Statement numbering: prologue then body. Flip temp between the two
	// reads: find the step of statement "a = ..." dynamically by counting a
	// clean run, then flip right after.
	clean, _ := interp.New(res.Prog, nil)
	if err := clean.Run(); err != nil {
		t.Fatal(err)
	}
	total := clean.Counts.Stmts
	detectedAny := false
	for step := uint64(1); step <= total; step++ {
		m, _ := interp.New(res.Prog, nil)
		done := false
		s := step
		m.SetStepHook(func(cur uint64) {
			if !done && cur == s {
				m.Mem().FlipBit(base, 17)
				done = true
			}
		})
		err := m.Run()
		var de *interp.DetectionError
		if errors.As(err, &de) {
			detectedAny = true
		}
	}
	if !detectedAny {
		t.Error("no flip position on temp was detected")
	}
}

func TestInstrumentIdempotentStructures(t *testing.T) {
	// Instrumenting a program with existing checksum statements passes them
	// through untouched.
	src := `
program p()
float x;
x = 1.0;
add_to_chksm(def_cs, x, 0);
assert_checksums();
`
	res := instrumented(t, src, Options{})
	count := 0
	lang.WalkStmts(res.Prog.Body, func(s lang.Stmt) bool {
		if _, ok := s.(*lang.AssertChecksums); ok {
			count++
		}
		return true
	})
	if count != 2 { // the original plus the generated one
		t.Errorf("assert count = %d, want 2", count)
	}
}
