package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ModAdd:     "modadd",
		XOR:        "xor",
		OnesComp:   "onescomp",
		Fletcher64: "fletcher64",
		Adler64:    "adler64",
		Kind(99):   "checksum.Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestCommutativeFlag(t *testing.T) {
	for _, k := range []Kind{ModAdd, XOR, OnesComp} {
		if !k.Commutative() {
			t.Errorf("%v should be commutative", k)
		}
	}
	for _, k := range []Kind{Fletcher64, Adler64} {
		if k.Commutative() {
			t.Errorf("%v should not be commutative", k)
		}
	}
}

func commutativeKinds() []Kind { return []Kind{ModAdd, XOR, OnesComp} }

func TestCombineCommutative(t *testing.T) {
	for _, k := range commutativeKinds() {
		f := func(a, b uint64) bool {
			return Combine(k, a, b) == Combine(k, b, a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not commutative: %v", k, err)
		}
	}
}

func TestCombineAssociative(t *testing.T) {
	for _, k := range commutativeKinds() {
		f := func(a, b, c uint64) bool {
			return Combine(k, Combine(k, a, b), c) == Combine(k, a, Combine(k, b, c))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v not associative: %v", k, err)
		}
	}
}

func TestCombineIdentity(t *testing.T) {
	for _, k := range commutativeKinds() {
		f := func(a uint64) bool {
			if k == OnesComp && a == onesCompMod {
				a = 0 // 2^64-1 ≡ 0 in one's-complement arithmetic
			}
			return Combine(k, 0, a) == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: zero is not identity: %v", k, err)
		}
	}
}

func TestScaleCombineMatchesRepeatedCombine(t *testing.T) {
	for _, k := range commutativeKinds() {
		f := func(acc, v uint64, nRaw uint8) bool {
			n := int64(nRaw % 17)
			want := acc
			for i := int64(0); i < n; i++ {
				want = Combine(k, want, v)
			}
			got := ScaleCombine(k, acc, v, n)
			if k == OnesComp {
				// Residues 0 and 2^64-1 coincide mod 2^64-1.
				return onesCompAdd(got, 0) == onesCompAdd(want, 0)
			}
			return got == want
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: ScaleCombine != repeated Combine: %v", k, err)
		}
	}
}

func TestScaleCombineNegativeCancels(t *testing.T) {
	for _, k := range commutativeKinds() {
		f := func(acc, v uint64, nRaw uint8) bool {
			n := int64(nRaw%13) + 1
			folded := ScaleCombine(k, acc, v, n)
			back := ScaleCombine(k, folded, v, -n)
			if k == OnesComp {
				return onesCompAdd(back, 0) == onesCompAdd(acc%onesCompMod, 0)
			}
			return back == acc
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: negative scale does not cancel: %v", k, err)
		}
	}
}

func TestCombinePanicsOnPositional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Combine(Fletcher64, ...) should panic")
		}
	}()
	Combine(Fletcher64, 1, 2)
}

func TestScaleCombinePanicsOnPositional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleCombine(Adler64, ...) should panic")
		}
	}()
	ScaleCombine(Adler64, 1, 2, 3)
}

func TestOnesCompAddKnown(t *testing.T) {
	// 0xffff...ffff acts as zero.
	if got := onesCompAdd(onesCompMod, 5); got != 5 {
		t.Errorf("onesCompAdd(max, 5) = %d, want 5", got)
	}
	// End-around carry: (2^64-2) + 3 = 2^64+1 ≡ 2 mod 2^64-1.
	if got := onesCompAdd(onesCompMod-1, 3); got != 2 {
		t.Errorf("onesCompAdd(max-1, 3) = %d, want 2", got)
	}
}

func TestSumOrderIndependenceCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]uint64, 257)
	for i := range data {
		data[i] = rng.Uint64()
	}
	shuffled := append([]uint64(nil), data...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	for _, k := range commutativeKinds() {
		if Sum(k, data) != Sum(k, shuffled) {
			t.Errorf("%v: Sum depends on element order", k)
		}
	}
}

func TestFletcherPositionDependence(t *testing.T) {
	data := []uint64{1, 2, 3}
	swapped := []uint64{3, 2, 1}
	for _, k := range []Kind{Fletcher64, Adler64} {
		if Sum(k, data) == Sum(k, swapped) {
			t.Errorf("%v: expected position-dependent sums to differ", k)
		}
	}
}

func TestSumEmpty(t *testing.T) {
	for _, k := range []Kind{ModAdd, XOR, OnesComp, Fletcher64, Adler64} {
		if got := Sum(k, nil); got != 0 {
			t.Errorf("%v: Sum(nil) = %d, want 0", k, got)
		}
	}
}

func TestDualSumFirstMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]uint64, 100)
	for i := range data {
		data[i] = rng.Uint64()
	}
	first, second := DualSum(ModAdd, data)
	if first != Sum(ModAdd, data) {
		t.Error("DualSum first component disagrees with Sum")
	}
	if second == first {
		t.Error("rotated second checksum should differ from first on random data")
	}
}

func TestDualSumCatchesAlignedTwoBitFlip(t *testing.T) {
	// The canonical escape for one modadd checksum: flip bit b of element i
	// from 0->1 and bit b of element j from 1->0; the sum is unchanged. The
	// rotated second checksum catches it when the two elements rotate by
	// different amounts.
	data := make([]uint64, 64)
	data[3] = 1 << 17 // bit 17 set
	// data[5] bit 17 clear
	f1, s1 := DualSum(ModAdd, data)
	data[3] &^= 1 << 17
	data[5] |= 1 << 17
	f2, s2 := DualSum(ModAdd, data)
	if f1 != f2 {
		t.Fatal("test setup wrong: single checksum should not change")
	}
	if s1 == s2 {
		t.Error("rotated checksum failed to catch aligned 2-bit flip")
	}
}

func TestRotation(t *testing.T) {
	if got := Rotation(0); got != 0 {
		t.Errorf("Rotation(0) = %d", got)
	}
	if got := Rotation(8); got != 1 {
		t.Errorf("Rotation(8) = %d, want 1", got)
	}
	if got := Rotation(8 * 31); got != 31 {
		t.Errorf("Rotation(8*31) = %d, want 31", got)
	}
	if got := Rotation(8 * 32); got != 0 {
		t.Errorf("Rotation(8*32) = %d, want 0 (wraps mod 32)", got)
	}
	for i := 0; i < 200; i++ {
		if RotateForIndex(i) != Rotation(uintptr(8*i)) {
			t.Fatalf("RotateForIndex(%d) disagrees with Rotation of its address", i)
		}
	}
}

func TestPairNoErrorKnownCounts(t *testing.T) {
	for _, k := range commutativeKinds() {
		p := NewPair(k)
		// def v used 3 times, all reads correct.
		v := uint64(0xdeadbeefcafef00d)
		p.AddDef(v, 3)
		p.AddUse(v)
		p.AddUse(v)
		p.AddUse(v)
		if err := p.Verify(); err != nil {
			t.Errorf("%v: false positive: %v", k, err)
		}
	}
}

func TestPairDetectsCorruptedUse(t *testing.T) {
	p := NewPair(ModAdd)
	v := uint64(42)
	p.AddDef(v, 2)
	p.AddUse(v)
	p.AddUse(v ^ 1<<40) // corrupted second read
	if err := p.Verify(); err == nil {
		t.Error("corrupted use not detected")
	}
}

func TestPairDynamicNoError(t *testing.T) {
	// Unknown-use-count path: def once, 3 uses, adjust with final value.
	p := NewPair(ModAdd)
	v := uint64(7)
	p.AddEDef(v)
	for i := 0; i < 3; i++ {
		p.AddUse(v)
	}
	p.Adjust(v, 3)
	if err := p.Verify(); err != nil {
		t.Errorf("false positive on dynamic path: %v", err)
	}
}

func TestPairDynamicZeroUses(t *testing.T) {
	// n = 0: the adjustment adds v "use_count - 1 = -1" times, cancelling the
	// def-site contribution; e_use gets v to balance e_def (paper Case 2a).
	p := NewPair(ModAdd)
	v := uint64(1234)
	p.AddEDef(v)
	p.Adjust(v, 0)
	if err := p.Verify(); err != nil {
		t.Errorf("false positive when value is never used: %v", err)
	}
}

func TestPairAuxiliaryCatchesPersistentCorruption(t *testing.T) {
	// Paper Section 4.1: value v corrupts to v' after the first of two uses
	// and stays corrupted. The primary pair matches (v + v' on both sides)
	// but the auxiliary pair catches it.
	p := NewPair(ModAdd)
	v := uint64(1000)
	vp := v ^ (1 << 13) // persistently corrupted value
	p.AddEDef(v)
	p.AddUse(v)  // first use correct
	p.AddUse(vp) // second use corrupted
	p.Adjust(vp, 2)
	if p.Def != p.Use {
		t.Fatal("scenario mismatch: primary checksums should collide here")
	}
	err := p.Verify()
	if err == nil {
		t.Fatal("persistent corruption escaped both checksum pairs")
	}
	me, ok := err.(*MismatchError)
	if !ok || me.Which != "e_def/e_use" {
		t.Errorf("expected e_def/e_use mismatch, got %v", err)
	}
}

func TestPairReset(t *testing.T) {
	p := NewPair(XOR)
	p.AddDef(9, 2)
	p.AddUse(9)
	p.AddEDef(3)
	p.Reset()
	if p.Def != 0 || p.Use != 0 || p.EDef != 0 || p.EUse != 0 {
		t.Error("Reset did not zero all checksums")
	}
	if err := p.Verify(); err != nil {
		t.Errorf("zeroed pair should verify: %v", err)
	}
}

func TestNewPairRejectsPositional(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPair(Fletcher64) should panic")
		}
	}()
	NewPair(Fletcher64)
}

func TestMismatchErrorMessage(t *testing.T) {
	e := &MismatchError{Which: "def/use", Expected: 1, Observed: 2}
	if e.Error() == "" {
		t.Error("empty error message")
	}
}

func TestPairRandomizedNoFalsePositives(t *testing.T) {
	// Simulate many variables with random values and random use counts via
	// both the static and dynamic paths; with no injected errors Verify must
	// always pass (Theorem 5.1's no-false-positive direction).
	rng := rand.New(rand.NewSource(3))
	for _, k := range commutativeKinds() {
		for trial := 0; trial < 200; trial++ {
			p := NewPair(k)
			vars := rng.Intn(20) + 1
			for i := 0; i < vars; i++ {
				v := rng.Uint64()
				n := int64(rng.Intn(6))
				if rng.Intn(2) == 0 { // static path
					p.AddDef(v, n)
					for j := int64(0); j < n; j++ {
						p.AddUse(v)
					}
				} else { // dynamic path
					p.AddEDef(v)
					for j := int64(0); j < n; j++ {
						p.AddUse(v)
					}
					p.Adjust(v, n)
				}
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("%v trial %d: false positive: %v", k, trial, err)
			}
		}
	}
}

func TestPairSingleBitFlipAlwaysDetected(t *testing.T) {
	// One-bit errors are always caught by modadd (paper Section 6.1).
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		p := NewPair(ModAdd)
		v := rng.Uint64()
		n := int64(rng.Intn(4) + 1)
		p.AddDef(v, n)
		flipAt := rng.Int63n(n)
		for j := int64(0); j < n; j++ {
			u := v
			if j == flipAt {
				u ^= 1 << uint(rng.Intn(64))
			}
			p.AddUse(u)
		}
		if err := p.Verify(); err == nil {
			t.Fatalf("trial %d: single-bit flip escaped detection", trial)
		}
	}
}

func BenchmarkCombineModAdd(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc = Combine(ModAdd, acc, uint64(i))
	}
	sinkU64 = acc
}

func BenchmarkSumModAdd(b *testing.B) {
	data := make([]uint64, 4096)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = Sum(ModAdd, data)
	}
}

func BenchmarkDualSumModAdd(b *testing.B) {
	data := make([]uint64, 4096)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, s := DualSum(ModAdd, data)
		sinkU64 = f ^ s
	}
}

var sinkU64 uint64
