// Package recovery turns the checksum detector into a dependable system: a
// supervisor runs an epoch-structured computation, checkpoints its protected
// state at every epoch boundary, and on a detected checksum mismatch rolls
// the state back and re-executes just that epoch. Retries are bounded with
// exponential backoff; when they are exhausted the supervisor escalates to a
// full-run restart, and when restarts are exhausted too it degrades
// gracefully — the run continues and completes, but its result is marked
// tainted. This bounds the detection-to-recovery window that the paper's
// program-end verification leaves open (see DESIGN.md).
//
// Failures are classified into three modes, each with its own response:
//
//   - data fault (*checksum.MismatchError): the protected data was corrupted;
//     roll back to the epoch's entry checkpoint and re-execute with backoff.
//   - detector fault (*rt.DetectorFaultError, *checksum.ScrubError): the
//     detector's own state was struck, so its verdict is untrustworthy;
//     rebuild the tracker state from the last sealed epoch (no backoff — the
//     data is presumed fine) and re-run the epoch.
//   - corrupt checkpoint (rt.ErrCheckpointCorrupt, memsim.ErrCheckpointCorrupt):
//     the recovery state itself was hit; restoring it would install silently
//     wrong data, so escalate straight to a full restart from initial state.
package recovery

import (
	"context"
	"errors"
	"fmt"
	"time"

	"defuse/internal/addrsum"
	"defuse/internal/checksum"
	"defuse/internal/memsim"
	"defuse/rt"
	"defuse/telemetry"
)

// FaultClass is the supervisor's classification of a failed epoch attempt.
type FaultClass int

const (
	// ClassNone marks an error that is not a detected fault at all — a
	// terminal execution failure the supervisor must surface, not retry.
	ClassNone FaultClass = iota
	// ClassData marks corruption of the protected data: rollback + re-execute.
	ClassData
	// ClassDetector marks corruption of the detector's own state: rebuild it
	// from the last sealed epoch and re-run without backoff.
	ClassDetector
	// ClassCheckpoint marks corruption of a parked checkpoint: escalate to a
	// full restart; the rollback path itself cannot be trusted.
	ClassCheckpoint
)

// String returns a short label for the class.
func (c FaultClass) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassDetector:
		return "detector"
	case ClassCheckpoint:
		return "checkpoint"
	default:
		return "none"
	}
}

// SelfClassifying lets fault types defined above the runtime core (e.g. the
// dme package's divergence errors, which sit above interp and hence above
// this package) declare their own class without recovery importing them.
// DefaultClassify consults it after the core error types.
type SelfClassifying interface {
	error
	RecoveryClass() FaultClass
}

// DefaultClassify maps the runtime's error types onto the three failure
// modes. Checkpoint sentinels are checked first: a corrupt-checkpoint error
// wrapping a rollback failure must escalate even if other evidence is
// present. Detector faults are checked before data faults because a struck
// detector produces untrustworthy mismatch reports.
func DefaultClassify(err error) FaultClass {
	if err == nil {
		return ClassNone
	}
	if errors.Is(err, rt.ErrCheckpointCorrupt) || errors.Is(err, memsim.ErrCheckpointCorrupt) ||
		errors.Is(err, addrsum.ErrCheckpointCorrupt) {
		return ClassCheckpoint
	}
	var df *rt.DetectorFaultError
	var se *checksum.ScrubError
	var ase *addrsum.ScrubError
	if errors.As(err, &df) || errors.As(err, &se) || errors.As(err, &ase) {
		return ClassDetector
	}
	var mm *checksum.MismatchError
	var am *addrsum.MismatchError
	if errors.As(err, &mm) || errors.As(err, &am) {
		return ClassData
	}
	var sc SelfClassifying
	if errors.As(err, &sc) {
		return sc.RecoveryClass()
	}
	return ClassNone
}

// Policy bounds the supervisor's recovery effort. The zero value performs no
// retries and no restarts: the first unrecovered detection degrades the run.
type Policy struct {
	// MaxRetries is the number of rollback re-executions (or detector
	// rebuilds) allowed per epoch attempt before escalating.
	MaxRetries int
	// MaxRestarts is the number of full-run restarts allowed (across the
	// whole run) before degrading.
	MaxRestarts int
	// Backoff is the pause before the first retry of an epoch; successive
	// retries multiply it by BackoffFactor. Zero means retry immediately.
	Backoff time.Duration
	// BackoffFactor scales Backoff on each successive retry of the same
	// epoch. Values below 1 (including 0) mean 2.
	BackoffFactor float64
	// Sleep, when non-nil, replaces time.Sleep for backoff pauses (test
	// injection point).
	Sleep func(time.Duration)
}

// DefaultPolicy returns the production defaults: three retries per epoch,
// one full restart, 1ms initial backoff doubling per retry.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 3, MaxRestarts: 1, Backoff: time.Millisecond, BackoffFactor: 2}
}

// Delay returns the backoff pause before retry number retry (0-based): Backoff
// scaled by BackoffFactor^retry, with factors below 1 meaning 2. This is the
// single source of the schedule — Supervise uses it for epoch re-executions,
// and the load generator reuses it when a server sheds with no Retry-After.
func (p Policy) Delay(retry int) time.Duration {
	factor := p.BackoffFactor
	if factor < 1 {
		factor = 2
	}
	d := float64(p.Backoff)
	for i := 0; i < retry; i++ {
		d *= factor
	}
	return time.Duration(d)
}

// Config describes one supervised epoch-structured run.
type Config struct {
	// Epochs is the number of epochs the run is divided into (>= 1).
	Epochs int
	// Run executes epoch k against the current (possibly restored) state.
	Run func(k int) error
	// Verify checks integrity at the boundary closing epoch k; nil error
	// means the epoch is clean. A nil Verify trusts Run's own error.
	Verify func(k int) error
	// Checkpoint captures everything Run mutates; Restore reinstates a
	// snapshot it returned, failing (typically with a corrupt-checkpoint
	// error) when the snapshot cannot be trusted. Both are required.
	Checkpoint func() any
	Restore    func(snap any) error
	// RebuildDetector, when non-nil, reinstates the detector's state from a
	// snapshot after a detector fault. Leave it nil unless the system can
	// rebuild detector state consistently with the current data (epochs are
	// re-executed afterwards, so data and detector must agree at the epoch's
	// entry); nil falls back to the full Restore.
	RebuildDetector func(snap any) error
	// IsDetection classifies an error as a detected memory corruption
	// (retryable data fault) rather than a terminal execution failure. It
	// predates Classify and is honored for compatibility: when set and
	// Classify is nil, a true result means ClassData and a false result
	// ClassNone. Nil defers to Classify.
	IsDetection func(error) bool
	// Classify maps a failed attempt's error to a failure mode. Nil (with
	// nil IsDetection) uses DefaultClassify.
	Classify func(error) FaultClass
	// StartEpoch is the first epoch to execute (default 0). A durable
	// supervisor that resumed state sealed at an epoch boundary sets it to
	// the next epoch; the initial checkpoint is then the resumed state, so a
	// full restart rewinds to the resume point, not to a state the process
	// never held. StartEpoch == Epochs is legal and runs nothing (the prior
	// process sealed the final epoch and died before reporting).
	StartEpoch int
	// Commit, when non-nil, is called after each epoch's verification
	// succeeds, with the just-closed epoch index. It is the durability hook:
	// a failure to persist is a terminal error (the run's recovery guarantee
	// can no longer be honored), surfaced from Supervise.
	Commit func(k int) error

	Policy  Policy
	Trace   telemetry.Sink
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records one span per epoch attempt (named
	// "epoch", attributes epoch/attempt/ok) plus spans for each recovery
	// action (rollback, rebuild, restart), all children of Span. A nil
	// tracer is free.
	Tracer *telemetry.Tracer
	// Span is the parent context the supervisor's spans attach to (the
	// caller's "run" span); the zero value roots a fresh trace.
	Span telemetry.SpanContext
}

// Outcome summarizes a supervised run.
type Outcome struct {
	// Epochs is the configured epoch count.
	Epochs int
	// Detected reports whether any epoch verification ever failed.
	Detected bool
	// FirstDetection is the epoch index of the first failed verification,
	// or -1 when the run was clean.
	FirstDetection int
	// Retries counts rollback re-executions across the whole run.
	Retries int
	// Restarts counts full-run restarts.
	Restarts int
	// Rebuilds counts detector-state rebuilds (detector-fault recoveries).
	Rebuilds int
	// DataFaults, DetectorFaults, and CheckpointFaults count failed attempts
	// by classification across the whole run.
	DataFaults       int
	DetectorFaults   int
	CheckpointFaults int
	// Recovered reports that corruption was detected and the run still
	// completed with every epoch verified.
	Recovered bool
	// Tainted reports graceful degradation: the run completed and its
	// result was reported, but at least one epoch could not be verified.
	Tainted bool
}

// Supervise executes cfg.Epochs epochs under checkpoint/rollback recovery.
// It returns a non-nil error only for terminal failures: an invalid config,
// a context cancellation, or a Run error classified as ClassNone. Detected
// faults are handled per their class and reported in the Outcome.
func Supervise(ctx context.Context, cfg Config) (Outcome, error) {
	o := Outcome{Epochs: cfg.Epochs, FirstDetection: -1}
	if cfg.Epochs < 1 {
		return o, fmt.Errorf("recovery: need at least 1 epoch, got %d", cfg.Epochs)
	}
	if cfg.Run == nil || cfg.Checkpoint == nil || cfg.Restore == nil {
		return o, errors.New("recovery: Config needs Run, Checkpoint, and Restore")
	}
	if cfg.StartEpoch < 0 || cfg.StartEpoch > cfg.Epochs {
		return o, fmt.Errorf("recovery: StartEpoch %d out of range [0,%d]", cfg.StartEpoch, cfg.Epochs)
	}
	classify := cfg.Classify
	if classify == nil {
		if is := cfg.IsDetection; is != nil {
			classify = func(err error) FaultClass {
				if is(err) {
					return ClassData
				}
				return ClassNone
			}
		} else {
			classify = DefaultClassify
		}
	}
	rebuild := cfg.RebuildDetector
	if rebuild == nil {
		rebuild = cfg.Restore
	}
	sleep := cfg.Policy.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	verifications := func(result string) *telemetry.Counter {
		return cfg.Metrics.Counter("defuse_epoch_verifications_total",
			telemetry.Label{Key: "result", Value: result})
	}
	backoffHist := cfg.Metrics.Histogram("defuse_recovery_backoff_seconds", telemetry.DefBuckets())
	verifyHist := cfg.Metrics.Histogram("defuse_epoch_verify_seconds", telemetry.DefBuckets())

	// noteDetection records the first failed verification and per-class
	// tallies for one failed attempt.
	noteDetection := func(k int, class FaultClass, err error) {
		if !o.Detected {
			o.Detected = true
			o.FirstDetection = k
		}
		switch class {
		case ClassData:
			o.DataFaults++
		case ClassDetector:
			o.DetectorFaults++
			telemetry.Emit(cfg.Trace, telemetry.EvDetectorFault, map[string]any{
				"epoch": k, "error": err.Error(),
			})
			cfg.Metrics.Counter("defuse_detector_faults_total").Inc()
		case ClassCheckpoint:
			o.CheckpointFaults++
			telemetry.Emit(cfg.Trace, telemetry.EvCheckpointCorrupt, map[string]any{
				"epoch": k, "error": err.Error(),
			})
			cfg.Metrics.Counter("defuse_checkpoint_corrupt_total").Inc()
		}
	}

	initial := cfg.Checkpoint()
	for {
		restart := false
		// escalateRestart restores the initial checkpoint for a full-run
		// restart; if even that restore fails, recovery is out of options
		// and the run degrades.
		escalateRestart := func(k int) {
			if o.Restarts < cfg.Policy.MaxRestarts {
				o.Restarts++
				telemetry.Emit(cfg.Trace, telemetry.EvRecoveryRestart, map[string]any{
					"epoch": k, "restart": o.Restarts,
				})
				cfg.Metrics.Counter("defuse_recovery_restarts_total").Inc()
				rspan := cfg.Tracer.Start(cfg.Span, "recovery.restart",
					telemetry.Int("epoch", k), telemetry.Int("restart", o.Restarts))
				rerr := cfg.Restore(initial)
				rspan.EndErr(rerr)
				if rerr != nil {
					noteDetection(k, classify(rerr), rerr)
				} else {
					restart = true
					return
				}
			}
			o.Tainted = true
			telemetry.Emit(cfg.Trace, telemetry.EvRecoveryDegraded, map[string]any{
				"epoch": k,
			})
			cfg.Metrics.Counter("defuse_recovery_degraded_total").Inc()
		}
		for k := cfg.StartEpoch; k < cfg.Epochs && !restart; k++ {
			if err := ctx.Err(); err != nil {
				return o, err
			}
			snap := cfg.Checkpoint()
			retries := 0
			// dataRetries drives the backoff schedule: detector rebuilds
			// retry immediately and must not advance it.
			dataRetries := 0
			verified := false
			for {
				attempt := cfg.Tracer.Start(cfg.Span, "epoch",
					telemetry.Int("epoch", k), telemetry.Int("attempt", retries))
				err := cfg.Run(k)
				if err == nil && cfg.Verify != nil {
					vspan := cfg.Tracer.Start(attempt.Context(), "verify")
					vstart := time.Now()
					err = cfg.Verify(k)
					verifyHist.Observe(time.Since(vstart).Seconds())
					vspan.EndErr(err)
				}
				attempt.EndErr(err)
				telemetry.Emit(cfg.Trace, telemetry.EvEpochVerify, map[string]any{
					"epoch": k, "attempt": retries, "ok": err == nil,
				})
				if err == nil {
					verifications("ok").Inc()
					verified = true
					break
				}
				verifications("mismatch").Inc()
				class := classify(err)
				if class == ClassNone {
					return o, err
				}
				noteDetection(k, class, err)
				if o.Tainted {
					// Already degraded: report-and-continue, no more
					// recovery effort.
					break
				}
				if cerr := ctx.Err(); cerr != nil {
					return o, cerr
				}
				if class == ClassCheckpoint {
					// The rollback path itself is compromised; retrying
					// through it would restore corrupt state.
					escalateRestart(k)
					break
				}
				if retries < cfg.Policy.MaxRetries {
					retries++
					o.Retries++
					var rerr error
					if class == ClassDetector {
						// The detector was struck, not the data: rebuild its
						// state from the epoch checkpoint and re-run
						// immediately — no backoff, since nothing suggests
						// the data path is under sustained disturbance.
						o.Rebuilds++
						telemetry.Emit(cfg.Trace, telemetry.EvRecoveryRebuild, map[string]any{
							"epoch": k, "attempt": retries,
						})
						cfg.Metrics.Counter("defuse_recovery_rebuilds_total").Inc()
						bspan := cfg.Tracer.Start(cfg.Span, "recovery.rebuild",
							telemetry.Int("epoch", k), telemetry.Int("attempt", retries))
						rerr = rebuild(snap)
						bspan.EndErr(rerr)
					} else {
						backoff := cfg.Policy.Delay(dataRetries)
						dataRetries++
						telemetry.Emit(cfg.Trace, telemetry.EvRecoveryRetry, map[string]any{
							"epoch": k, "attempt": retries, "backoff_seconds": backoff.Seconds(),
						})
						cfg.Metrics.Counter("defuse_recovery_retries_total").Inc()
						backoffHist.Observe(backoff.Seconds())
						if backoff > 0 {
							sleep(backoff)
						}
						rspan := cfg.Tracer.Start(cfg.Span, "recovery.rollback",
							telemetry.Int("epoch", k), telemetry.Int("attempt", retries))
						rerr = cfg.Restore(snap)
						rspan.EndErr(rerr)
					}
					if rerr != nil {
						// The epoch checkpoint cannot be reinstated —
						// typically because it was itself corrupted.
						noteDetection(k, classify(rerr), rerr)
						escalateRestart(k)
						break
					}
					continue
				}
				escalateRestart(k)
				break
			}
			if verified && cfg.Commit != nil {
				if cerr := cfg.Commit(k); cerr != nil {
					return o, fmt.Errorf("recovery: commit of epoch %d: %w", k, cerr)
				}
			}
		}
		if !restart {
			break
		}
	}
	o.Recovered = o.Detected && !o.Tainted
	return o, nil
}
