package rt

import (
	"math"
	"math/rand"
	"testing"

	"defuse/internal/checksum"
)

func TestBitsFloat(t *testing.T) {
	if Bits(1.5) != math.Float64bits(1.5) {
		t.Error("float bits wrong")
	}
	if Bits(int(-1)) != ^uint64(0) {
		t.Error("int bits wrong")
	}
	if Bits(int64(7)) != 7 || Bits(uint64(7)) != 7 {
		t.Error("int64/uint64 bits wrong")
	}
	if Bits(int32(-1)) != 0xffffffff {
		t.Error("int32 bits should zero-extend the 32-bit pattern")
	}
	if Bits(uint32(5)) != 5 {
		t.Error("uint32 bits wrong")
	}
}

func TestStaticPathNoFalsePositive(t *testing.T) {
	tr := NewTracker()
	v := Def(tr, 3.25, 2)
	_ = UseKnown(tr, v)
	_ = UseKnown(tr, v)
	if err := tr.Verify(); err != nil {
		t.Errorf("false positive: %v", err)
	}
}

func TestStaticPathDetectsFlip(t *testing.T) {
	tr := NewTracker()
	v := Def(tr, 3.25, 2)
	_ = UseKnown(tr, v)
	_ = UseKnown(tr, CorruptBits(v, 40))
	if err := tr.Verify(); err == nil {
		t.Error("corrupted use escaped detection")
	}
}

func TestDynamicPathFigure7(t *testing.T) {
	// The Figure 7 shape: def temp, two conditional uses, epilogue.
	tr := NewTracker()
	var cnt Counter
	temp := DefDyn(tr, &cnt, 0.0, 30.0)
	_ = Use(tr, &cnt, temp)
	_ = Use(tr, &cnt, temp)
	Final(tr, &cnt, temp)
	if err := tr.Verify(); err != nil {
		t.Errorf("false positive: %v", err)
	}
}

func TestDynamicPathZeroUses(t *testing.T) {
	tr := NewTracker()
	var cnt Counter
	temp := DefDyn(tr, &cnt, 0.0, 30.0)
	Final(tr, &cnt, temp)
	if err := tr.Verify(); err != nil {
		t.Errorf("false positive with zero uses: %v", err)
	}
}

func TestDynamicPathPersistentCorruption(t *testing.T) {
	// Section 4.1's escape scenario: corruption after the first use persists
	// through the epilogue. The primary checksums collide; e_def/e_use must
	// catch it.
	tr := NewTracker()
	var cnt Counter
	temp := DefDyn(tr, &cnt, 0.0, 30.0)
	_ = Use(tr, &cnt, temp)
	corrupted := CorruptBits(temp, 13)
	_ = Use(tr, &cnt, corrupted)
	Final(tr, &cnt, corrupted)
	def, use, edef, euse := tr.Checksums()
	if def != use {
		t.Fatal("scenario setup: primary checksums should collide")
	}
	if edef == euse {
		t.Fatal("auxiliary checksums should differ")
	}
	if err := tr.Verify(); err == nil {
		t.Error("persistent corruption escaped")
	}
}

func TestRedefinitionAdjustsPrevious(t *testing.T) {
	// x defined, used once, then redefined and used twice: the overwrite
	// must adjust the old value before folding the new one (Algorithm 3).
	tr := NewTracker()
	var cnt Counter
	x := DefDyn(tr, &cnt, 0.0, 1.0)
	_ = Use(tr, &cnt, x)
	old := x
	x = DefDyn(tr, &cnt, old, 2.0)
	_ = Use(tr, &cnt, x)
	_ = Use(tr, &cnt, x)
	Final(tr, &cnt, x)
	if err := tr.Verify(); err != nil {
		t.Errorf("false positive across redefinition: %v", err)
	}
}

func TestRedefinitionDetectsCorruptionOfOldValue(t *testing.T) {
	tr := NewTracker()
	var cnt Counter
	x := DefDyn(tr, &cnt, 0.0, 1.0)
	_ = Use(tr, &cnt, x)
	_ = Use(tr, &cnt, x)
	// Old value corrupts in memory before the redefinition observes it.
	corruptedOld := CorruptBits(x, 3)
	x = DefDyn(tr, &cnt, corruptedOld, 2.0)
	Final(tr, &cnt, x)
	if err := tr.Verify(); err == nil {
		t.Error("corruption of overwritten value escaped")
	}
}

func TestIntTracking(t *testing.T) {
	tr := NewTracker()
	var cnt Counter
	k := DefDyn(tr, &cnt, 0, 12345)
	_ = Use(tr, &cnt, k)
	Final(tr, &cnt, k)
	if err := tr.Verify(); err != nil {
		t.Errorf("int tracking false positive: %v", err)
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	Def(tr, 1.0, 5)
	tr.Reset()
	if err := tr.Verify(); err != nil {
		t.Errorf("reset tracker should verify: %v", err)
	}
}

func TestXORTracker(t *testing.T) {
	tr := NewTrackerWith(checksum.XOR)
	v := Def(tr, 2.5, 1)
	_ = UseKnown(tr, v)
	if err := tr.Verify(); err != nil {
		t.Errorf("xor tracker false positive: %v", err)
	}
}

func TestRandomizedWorkloadNoFalsePositives(t *testing.T) {
	// Property: arbitrary interleavings of defs/uses/redefs with correct
	// values never trip the verifier.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		tr := NewTracker()
		const nvars = 5
		var cnt [nvars]Counter
		var val [nvars]float64
		for step := 0; step < 50; step++ {
			i := rng.Intn(nvars)
			if rng.Intn(3) == 0 || !cnt[i].defined {
				nv := rng.Float64() * 100
				val[i] = DefDyn(tr, &cnt[i], val[i], nv)
			} else {
				_ = Use(tr, &cnt[i], val[i])
			}
		}
		for i := range cnt {
			Final(tr, &cnt[i], val[i])
		}
		if err := tr.Verify(); err != nil {
			t.Fatalf("trial %d: false positive: %v", trial, err)
		}
	}
}

func TestRandomizedSingleFlipAlwaysDetected(t *testing.T) {
	// Property: one bit flip on one use is always detected (1-bit errors are
	// always caught, Section 6.1).
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		tr := NewTracker()
		var cnt Counter
		v := DefDyn(tr, &cnt, 0.0, rng.Float64()*100+1)
		uses := rng.Intn(4) + 1
		flipAt := rng.Intn(uses)
		last := v
		for u := 0; u < uses; u++ {
			x := v
			if u == flipAt {
				x = CorruptBits(v, uint(rng.Intn(52))) // mantissa bits: value changes
				last = x
			}
			_ = Use(tr, &cnt, x)
		}
		// The fault is transient: the final observed value is the last read.
		if flipAt == uses-1 {
			Final(tr, &cnt, last)
		} else {
			Final(tr, &cnt, v)
		}
		if err := tr.Verify(); err == nil {
			t.Fatalf("trial %d: single flip escaped (uses=%d flipAt=%d)", trial, uses, flipAt)
		}
	}
}
