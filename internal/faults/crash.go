package faults

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"

	"defuse/internal/checksum"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/internal/wal"
	"defuse/rt"
	"defuse/telemetry"
)

// This file is the process-level half of the fault campaign: where
// epochtrial.go flips bits inside a live process, the crash campaign kills
// the whole process. Each trial runs a deterministic epoch workload under the
// durable (WAL-checkpointing) supervisor in a child process, SIGKILLs it at a
// seeded epoch/step, optionally corrupts the on-disk log the way a dying
// machine would (a torn write, a flipped bit at rest), restarts the child,
// and requires the resumed run to finish byte-identical — memory words,
// checksum accumulators, shadow copies, operation counters, and verdict — to
// an uninterrupted run of the same seed. A corrupt checkpoint must never be
// accepted silently: the restarted child has to report the torn tail or the
// corrupt record it refused.

// CrashChildEnv is the environment variable that re-routes a process into
// CrashChildMain. Its value is the JSON-encoded CrashSpec for the child run.
// Both the faults test binary (via its TestMain) and cmd/faultcov honor it,
// so either can serve as the campaign's child executable.
const CrashChildEnv = "DEFUSE_CRASH_CHILD"

// CrashSpec tells a child process exactly what to run.
type CrashSpec struct {
	Words  int           `json:"words"`
	Epochs int           `json:"epochs"`
	Kind   checksum.Kind `json:"kind"`
	// Seed drives the workload's data fill; the parent derives it per trial.
	Seed int64 `json:"seed"`
	// WAL is the durable checkpoint log shared by the crashing and the
	// resuming incarnation of the trial.
	WAL string `json:"wal"`
	// Out is where a cleanly finishing child writes its crashReport.
	Out string `json:"out"`
	// CrashStep is the global step (epoch*words + word) before which the
	// child SIGKILLs itself; -1 runs to completion.
	CrashStep int64 `json:"crash_step"`
}

// IsCrashChild reports whether this process was spawned as a crash-campaign
// child and must hand control to CrashChildMain before doing anything else.
func IsCrashChild() bool { return os.Getenv(CrashChildEnv) != "" }

// CrashChildMain runs the child side of a crash trial and never returns: the
// process either dies by its own SIGKILL at the spec's crash step or exits
// after writing its report.
func CrashChildMain() {
	var spec CrashSpec
	if err := json.Unmarshal([]byte(os.Getenv(CrashChildEnv)), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "crash child: bad spec:", err)
		os.Exit(3)
	}
	rep, err := runCrashSpec(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	if spec.CrashStep >= 0 {
		// The crash step was never reached: the spec is inconsistent with the
		// workload size. Surface it rather than report a bogus clean run.
		fmt.Fprintf(os.Stderr, "crash child: survived crash step %d\n", spec.CrashStep)
		os.Exit(4)
	}
	raw, err := json.Marshal(rep)
	if err == nil {
		err = wal.WriteFileAtomic(spec.Out, raw, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

// crashReport is what a cleanly finishing child hands back to the parent.
type crashReport struct {
	// Final is the workload's encoded final state: epoch-state (accumulators,
	// shadows, op counters), shadow use counters, and memory snapshot. Two
	// runs agree exactly when these bytes agree.
	Final          []byte `json:"final"`
	Resumed        bool   `json:"resumed"`
	ResumeEpoch    int    `json:"resume_epoch"`
	Seals          int    `json:"seals"`
	CorruptRecords int    `json:"corrupt_records"`
	TornTail       bool   `json:"torn_tail"`
	Detected       bool   `json:"detected"`
	Tainted        bool   `json:"tainted"`
}

// crashWorkload is the deterministic epoch program a crash trial runs: every
// epoch advances each word through the bijective update under the def/use
// discipline, with boundary finalize/verify/re-register — the same shape as
// an epoch injection trial, minus the injected fault. The only perturbation
// is the crash step.
type crashWorkload struct {
	words, epochs int
	crashAt       int64 // global step to die before; -1 = never
	step          int64
	mem           *memsim.Memory
	tr            *rt.Tracker
	counters      []rt.Counter
}

func newCrashWorkload(spec CrashSpec) *crashWorkload {
	w := &crashWorkload{
		words:    spec.Words,
		epochs:   spec.Epochs,
		crashAt:  spec.CrashStep,
		mem:      memsim.New(spec.Words),
		tr:       rt.NewTrackerWith(spec.Kind),
		counters: make([]rt.Counter, spec.Words),
	}
	init := make([]uint64, spec.Words)
	NewInjector(spec.Seed).Fill(init, Random)
	for i := 0; i < spec.Words; i++ {
		w.mem.Poke(i, init[i])
		rt.DefDyn(w.tr, &w.counters[i], uint64(0), init[i])
	}
	return w
}

// maybeCrash is the kill site: SIGKILL is unblockable and unhandlable, so the
// process dies exactly as if the machine had lost power between two steps.
func (w *crashWorkload) maybeCrash() {
	if w.crashAt >= 0 && w.step == w.crashAt {
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: SIGKILL cannot be caught or ignored
	}
}

func (w *crashWorkload) run(k int) error {
	for i := 0; i < w.words; i++ {
		w.maybeCrash()
		w.step++
		v := rt.Use(w.tr, &w.counters[i], w.mem.Load(i))
		next := update(v)
		w.mem.Store(i, next)
		rt.DefDyn(w.tr, &w.counters[i], v, next)
	}
	return nil
}

func (w *crashWorkload) verify(k int) error {
	for i := 0; i < w.words; i++ {
		rt.Final(w.tr, &w.counters[i], w.mem.Peek(i))
	}
	_, err := w.tr.EndEpoch()
	if err == nil && k != w.epochs-1 {
		for i := 0; i < w.words; i++ {
			rt.DefDyn(w.tr, &w.counters[i], uint64(0), w.mem.Peek(i))
		}
	}
	return err
}

// encodeState renders the complete workload state: the sealed epoch state
// (with its own digest), the shadow use counters verbatim, and the memory
// snapshot (with its own digest). Called at verified epoch boundaries for WAL
// payloads and once more at the end for the trial report, so byte equality of
// two encodings is exactly state equality.
func (w *crashWorkload) encodeState() ([]byte, error) {
	es, err := w.tr.BeginEpoch().Encode()
	if err != nil {
		return nil, err
	}
	snap := w.mem.Snapshot()
	mb, err := snap.Encode()
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, len(es)+8+16*w.words+len(mb))
	b = append(b, es...)
	b = binary.LittleEndian.AppendUint64(b, uint64(w.words))
	for i := range w.counters {
		packed, enc := w.counters[i].State()
		b = binary.LittleEndian.AppendUint64(b, packed)
		b = binary.LittleEndian.AppendUint64(b, enc)
	}
	return append(b, mb...), nil
}

func (w *crashWorkload) decodeState(b []byte) error {
	if len(b) < rt.EncodedEpochStateSize+8 {
		return fmt.Errorf("faults: crash state of %d bytes: %w", len(b), rt.ErrCheckpointCorrupt)
	}
	st, err := rt.DecodeEpochState(b[:rt.EncodedEpochStateSize])
	if err != nil {
		return err
	}
	rest := b[rt.EncodedEpochStateSize:]
	if n := binary.LittleEndian.Uint64(rest); n != uint64(w.words) {
		return fmt.Errorf("faults: crash state for %d words, workload has %d: %w",
			n, w.words, rt.ErrCheckpointCorrupt)
	}
	rest = rest[8:]
	if len(rest) < 16*w.words {
		return fmt.Errorf("faults: crash state truncated counters: %w", rt.ErrCheckpointCorrupt)
	}
	snap, err := memsim.DecodeSnapshot(rest[16*w.words:])
	if err != nil {
		return err
	}
	if err := w.tr.Resume(st); err != nil {
		return err
	}
	for i := range w.counters {
		w.counters[i].SetState(
			binary.LittleEndian.Uint64(rest[16*i:]),
			binary.LittleEndian.Uint64(rest[16*i+8:]))
	}
	return w.mem.Restore(snap)
}

// crashSnap is the in-memory per-epoch checkpoint for rollback retries (the
// crash trial injects no data faults, so it exists for supervisor symmetry).
type crashSnap struct {
	mem      memsim.Snapshot
	state    rt.EpochState
	counters []rt.Counter
}

// crashFingerprint pins a WAL record to one trial's exact workload, so a
// record from another trial (or a stale file) can never resume this one.
func crashFingerprint(spec CrashSpec) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "crash words=%d epochs=%d kind=%d seed=%d", spec.Words, spec.Epochs, spec.Kind, spec.Seed)
	return h.Sum64()
}

// runCrashSpec executes one incarnation of a crash trial: resume from the
// spec's WAL if it holds a usable record, run (possibly dying at the crash
// step), and report the final state. The parent calls it in-process with a
// fresh WAL to compute the uninterrupted reference.
func runCrashSpec(ctx context.Context, spec CrashSpec) (crashReport, error) {
	if spec.Words <= 0 || spec.Epochs <= 0 || spec.WAL == "" {
		return crashReport{}, fmt.Errorf("faults: crash spec needs words, epochs, and a wal path")
	}
	w := newCrashWorkload(spec)
	d := &recovery.DurableSupervisor{
		Config: recovery.Config{
			Epochs: spec.Epochs,
			Run:    w.run,
			Verify: w.verify,
			Checkpoint: func() any {
				return crashSnap{
					mem:      w.mem.Snapshot(),
					state:    w.tr.BeginEpoch(),
					counters: append([]rt.Counter(nil), w.counters...),
				}
			},
			Restore: func(snap any) error {
				s := snap.(crashSnap)
				if err := w.mem.Restore(s.mem); err != nil {
					return err
				}
				if err := w.tr.Rollback(s.state); err != nil {
					return err
				}
				copy(w.counters, s.counters)
				return nil
			},
			Policy: recovery.DefaultPolicy(),
		},
		Path:        spec.WAL,
		Fingerprint: crashFingerprint(spec),
		EncodeState: w.encodeState,
		DecodeState: w.decodeState,
	}
	out, err := d.Run(ctx)
	if err != nil {
		return crashReport{}, err
	}
	final, err := w.encodeState()
	if err != nil {
		return crashReport{}, err
	}
	return crashReport{
		Final:          final,
		Resumed:        out.Resumed,
		ResumeEpoch:    out.ResumeEpoch,
		Seals:          out.Seals,
		CorruptRecords: out.CorruptRecords,
		TornTail:       out.TornTail,
		Detected:       out.Detected,
		Tainted:        out.Tainted,
	}, nil
}

// CrashCellKind selects what a crash cell does to the durable run.
type CrashCellKind int

const (
	// CrashKill SIGKILLs the child at a seeded step and restarts it; the WAL
	// is left exactly as the dying process wrote it.
	CrashKill CrashCellKind = iota
	// CrashTornWrite additionally truncates the WAL mid-frame after the kill,
	// simulating a seal whose write reached the disk only partially.
	CrashTornWrite
	// CrashDiskFlip additionally flips one seeded bit inside the WAL's valid
	// frames, simulating corruption of the checkpoint at rest.
	CrashDiskFlip
)

var crashCellNames = map[CrashCellKind]string{
	CrashKill:      "kill",
	CrashTornWrite: "torn-write",
	CrashDiskFlip:  "disk-flip",
}

// String returns the lower-case name of the cell kind.
func (k CrashCellKind) String() string {
	if s, ok := crashCellNames[k]; ok {
		return s
	}
	return fmt.Sprintf("faults.CrashCellKind(%d)", int(k))
}

// ParseCrashCell resolves a crash-cell name as used by cmd/faultcov.
func ParseCrashCell(s string) (CrashCellKind, error) {
	for k, name := range crashCellNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown crash cell %q (kill, torn-write, disk-flip)", s)
}

// CrashConfig describes one crash-injection cell.
type CrashConfig struct {
	Kind   checksum.Kind `json:"kind"`
	Words  int           `json:"words"`
	Epochs int           `json:"epochs"`
	Trials int           `json:"trials"`
	Seed   int64         `json:"seed"`
	Cell   CrashCellKind `json:"-"`
	// CellName is Cell's name in reports.
	CellName string `json:"cell"`

	Trace   telemetry.Sink      `json:"-"`
	Metrics *telemetry.Registry `json:"-"`
}

// Validate reports configuration errors before any process is spawned.
func (cfg CrashConfig) Validate() error {
	if cfg.Trials <= 0 {
		return fmt.Errorf("faults: crash Trials must be positive, got %d", cfg.Trials)
	}
	if cfg.Words <= 0 || cfg.Epochs <= 0 {
		return fmt.Errorf("faults: crash Words and Epochs must be positive, got %d/%d", cfg.Words, cfg.Epochs)
	}
	if cfg.Epochs < 2 && cfg.Cell != CrashKill {
		return fmt.Errorf("faults: %v cell needs Epochs >= 2 (at least one sealed record to corrupt)", cfg.Cell)
	}
	if _, ok := crashCellNames[cfg.Cell]; !ok {
		return fmt.Errorf("faults: unknown crash cell %d", int(cfg.Cell))
	}
	return nil
}

// CrashResult tallies one cell's trials. All counts are sums of per-trial
// outcomes, so the result is independent of worker count and trial order.
type CrashResult struct {
	CrashConfig
	// Killed counts first incarnations that died by SIGKILL as scheduled.
	Killed int `json:"killed"`
	// Identical counts trials whose resumed final state was byte-identical to
	// the uninterrupted reference with a clean verdict.
	Identical int `json:"identical"`
	// Mismatched counts trials that finished with wrong bytes or a dirty
	// verdict (detected/tainted on a fault-free workload).
	Mismatched int `json:"mismatched"`
	// Resumed and Fresh split the restarted incarnations by whether a durable
	// record was installed.
	Resumed int `json:"resumed"`
	Fresh   int `json:"fresh"`
	// MutationsApplied counts trials whose WAL was torn or bit-flipped.
	MutationsApplied int `json:"mutations_applied"`
	// TornReported and CorruptReported count restarted incarnations that
	// flagged the torn tail / refused records.
	TornReported    int `json:"torn_reported"`
	CorruptReported int `json:"corrupt_reported"`
	// SilentAcceptances counts trials whose WAL was mutated and whose
	// restarted child neither reported a torn tail nor refused a record: a
	// corrupt checkpoint accepted silently. The gate requires zero.
	SilentAcceptances int `json:"silent_acceptances"`
	// ResumeMissed counts trials that sealed at least one epoch, were not
	// mutated, and still failed to resume from the WAL.
	ResumeMissed int `json:"resume_missed"`
}

// CrashSchema identifies the crash campaign result JSON document.
const CrashSchema = "defuse/crashcov/v1"

// CrashCampaignResult aggregates the campaign's cells.
type CrashCampaignResult struct {
	Schema    string        `json:"schema"`
	Completed bool          `json:"completed"`
	Cells     []CrashResult `json:"cells"`
}

// Gate returns a non-nil error unless every trial was killed as scheduled,
// every resumed run finished byte-identical with a clean verdict, every
// intact WAL actually resumed, and no mutated WAL was accepted silently.
func (r *CrashCampaignResult) Gate() error {
	if !r.Completed {
		return errors.New("faults: gate: crash campaign incomplete")
	}
	for i, res := range r.Cells {
		cell := fmt.Sprintf("crash cell %d (%s)", i, res.CellName)
		switch {
		case res.Killed != res.Trials:
			return fmt.Errorf("faults: gate: %s: %d of %d children not killed as scheduled", cell, res.Trials-res.Killed, res.Trials)
		case res.Mismatched > 0:
			return fmt.Errorf("faults: gate: %s: %d resumed runs not byte-identical to uninterrupted runs", cell, res.Mismatched)
		case res.SilentAcceptances > 0:
			return fmt.Errorf("faults: gate: %s: %d corrupt checkpoints accepted silently", cell, res.SilentAcceptances)
		case res.ResumeMissed > 0:
			return fmt.Errorf("faults: gate: %s: %d intact checkpoints not resumed", cell, res.ResumeMissed)
		case res.Identical != res.Trials:
			return fmt.Errorf("faults: gate: %s: %d of %d trials not accounted identical", cell, res.Trials-res.Identical, res.Trials)
		}
	}
	return nil
}

// CrashCampaign drives crash cells against a child executable.
type CrashCampaign struct {
	Cells []CrashConfig
	// Exe is the child binary; empty means the current executable. The binary
	// must route CrashChildEnv to CrashChildMain before doing anything else
	// (cmd/faultcov does; so does the faults test binary via its TestMain).
	Exe string
	// Args are extra arguments passed to every child invocation.
	Args []string
	// Dir is the scratch directory for WALs and reports; empty means a fresh
	// temporary directory, removed when the campaign finishes.
	Dir string
	// Workers is the number of concurrent trials; 0 means GOMAXPROCS.
	Workers int
}

// crashTrialOutcome is one trial's contribution to its cell's tallies.
type crashTrialOutcome struct {
	killed, identical, mismatched   bool
	resumed, mutated, torn, corrupt bool
	silent, resumeMissed            bool
}

// Run executes every cell's trials on a worker pool and aggregates them.
func (c *CrashCampaign) Run(ctx context.Context) (*CrashCampaignResult, error) {
	if len(c.Cells) == 0 {
		return nil, errors.New("faults: crash campaign has no cells")
	}
	for i, cfg := range c.Cells {
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("crash cell %d: %w", i, err)
		}
	}
	exe := c.Exe
	if exe == "" {
		var err error
		if exe, err = os.Executable(); err != nil {
			return nil, err
		}
	}
	dir := c.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "defuse-crash-"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct{ cell, trial int }
	jobs := make(chan job)
	var (
		mu       sync.Mutex
		firstErr error
		results  = make([]CrashResult, len(c.Cells))
	)
	for i, cfg := range c.Cells {
		results[i].CrashConfig = cfg
		results[i].CellName = cfg.Cell.String()
		results[i].Trials = 0 // counts completed trials; compared by Gate
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				out, err := c.runTrial(runCtx, exe, dir, c.Cells[j.cell], j.trial)
				mu.Lock()
				if err != nil {
					if firstErr == nil && runCtx.Err() == nil {
						firstErr = fmt.Errorf("crash cell %d trial %d: %w", j.cell, j.trial, err)
					}
					cancel()
				} else {
					tallyCrash(&results[j.cell], out)
				}
				mu.Unlock()
			}
		}()
	}
loop:
	for ci, cfg := range c.Cells {
		for t := 0; t < cfg.Trials; t++ {
			select {
			case jobs <- job{ci, t}:
			case <-runCtx.Done():
				break loop
			}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}

	res := &CrashCampaignResult{Schema: CrashSchema, Completed: firstErr == nil}
	completedAll := true
	for i := range results {
		if results[i].Trials != c.Cells[i].Trials {
			completedAll = false
		}
		res.Cells = append(res.Cells, results[i])
	}
	res.Completed = res.Completed && completedAll
	return res, firstErr
}

func tallyCrash(r *CrashResult, o crashTrialOutcome) {
	r.Trials++
	if o.killed {
		r.Killed++
	}
	if o.identical {
		r.Identical++
	}
	if o.mismatched {
		r.Mismatched++
	}
	if o.resumed {
		r.Resumed++
	} else {
		r.Fresh++
	}
	if o.mutated {
		r.MutationsApplied++
	}
	if o.torn {
		r.TornReported++
	}
	if o.corrupt {
		r.CorruptReported++
	}
	if o.silent {
		r.SilentAcceptances++
	}
	if o.resumeMissed {
		r.ResumeMissed++
	}
}

// runTrial executes one crash trial end to end.
func (c *CrashCampaign) runTrial(ctx context.Context, exe, dir string, cfg CrashConfig, trial int) (crashTrialOutcome, error) {
	var out crashTrialOutcome
	seed := trialSeed(cfg.Seed, trial)
	in := NewInjector(seed)
	totalSteps := int64(cfg.Words) * int64(cfg.Epochs)
	var crashStep int64
	if cfg.Cell == CrashKill {
		crashStep = int64(in.Intn(int(totalSteps)))
	} else {
		// Mutation cells die no earlier than epoch 1, so at least one sealed
		// record exists for the mutation to strike.
		crashStep = int64(cfg.Words) + int64(in.Intn(int(totalSteps)-cfg.Words))
	}

	base := filepath.Join(dir, fmt.Sprintf("c%s-t%d", cfg.Cell, trial))
	spec := CrashSpec{
		Words: cfg.Words, Epochs: cfg.Epochs, Kind: cfg.Kind, Seed: seed,
		WAL: base + ".wal", Out: base + ".json", CrashStep: crashStep,
	}

	// Incarnation 1: run until the scheduled SIGKILL.
	if err := c.spawn(ctx, exe, spec); err == nil {
		return out, fmt.Errorf("child survived crash step %d", crashStep)
	} else if !killedBySigkill(err) {
		return out, fmt.Errorf("child did not die by SIGKILL: %w", err)
	}
	out.killed = true

	// Post-mortem disk damage for the mutation cells.
	var err error
	switch cfg.Cell {
	case CrashTornWrite:
		out.mutated, err = tornMutate(spec.WAL, in)
	case CrashDiskFlip:
		out.mutated, err = flipMutate(spec.WAL, in)
	}
	if err != nil {
		return out, err
	}
	if cfg.Cell != CrashKill && !out.mutated {
		return out, fmt.Errorf("%v cell found no sealed record to mutate", cfg.Cell)
	}

	// Incarnation 2: restart and run to completion.
	spec.CrashStep = -1
	if err := c.spawn(ctx, exe, spec); err != nil {
		return out, fmt.Errorf("restarted child: %w", err)
	}
	raw, err := os.ReadFile(spec.Out)
	if err != nil {
		return out, err
	}
	var rep crashReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return out, fmt.Errorf("child report: %w", err)
	}

	// The oracle: an uninterrupted in-process run of the same seed.
	refSpec := spec
	refSpec.WAL = base + ".ref.wal"
	ref, err := runCrashSpec(ctx, refSpec)
	if err != nil {
		return out, fmt.Errorf("reference run: %w", err)
	}
	os.Remove(refSpec.WAL)

	out.resumed = rep.Resumed
	out.torn = rep.TornTail
	out.corrupt = rep.CorruptRecords > 0
	if out.mutated && !rep.TornTail && rep.CorruptRecords == 0 {
		out.silent = true
	}
	if cfg.Cell == CrashKill && crashStep >= int64(cfg.Words) && !rep.Resumed {
		// Epoch 0 was sealed and fsynced before the kill and nothing touched
		// the log: the restart must have resumed from it.
		out.resumeMissed = true
	}
	if bytes.Equal(rep.Final, ref.Final) && !rep.Detected && !rep.Tainted &&
		!out.silent && !out.resumeMissed {
		out.identical = true
	} else if !bytes.Equal(rep.Final, ref.Final) || rep.Detected || rep.Tainted {
		out.mismatched = true
	}

	if cfg.Metrics != nil {
		labels := []telemetry.Label{{Key: "cell", Value: cfg.Cell.String()}}
		cfg.Metrics.Counter("defuse_crash_trials_total", labels...).Inc()
		if !out.identical {
			cfg.Metrics.Counter("defuse_crash_failures_total", labels...).Inc()
		}
	}
	telemetry.Emit(cfg.Trace, telemetry.EvCrashTrial, map[string]any{
		"cell": cfg.Cell.String(), "trial": trial, "crash_step": crashStep,
		"resumed": rep.Resumed, "resume_epoch": rep.ResumeEpoch,
		"torn_tail": rep.TornTail, "corrupt_records": rep.CorruptRecords,
		"identical": out.identical,
	})
	os.Remove(spec.WAL)
	os.Remove(spec.Out)
	return out, nil
}

// spawn runs one child incarnation, handing it the spec through the
// environment hook. Child stderr is folded into the returned error.
func (c *CrashCampaign) spawn(ctx context.Context, exe string, spec CrashSpec) error {
	raw, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	cmd := exec.CommandContext(ctx, exe, c.Args...)
	cmd.Env = append(os.Environ(), CrashChildEnv+"="+string(raw))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if msg := bytes.TrimSpace(stderr.Bytes()); len(msg) > 0 {
			return fmt.Errorf("%w: %s", err, msg)
		}
		return err
	}
	return nil
}

// killedBySigkill reports whether a child's exit error means death by SIGKILL.
func killedBySigkill(err error) bool {
	var exit *exec.ExitError
	if !errors.As(err, &exit) {
		return false
	}
	ws, ok := exit.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}

// TearWAL truncates the log at path strictly inside its last valid frame —
// the footprint of a write that only partially reached the platter. It
// reports whether a frame existed to tear. The chaos soak applies it to a
// killed child's active segment between restarts.
func TearWAL(path string, in *Injector) (bool, error) { return tornMutate(path, in) }

// FlipWALBit flips one seeded bit inside the log's valid frames (past the
// file magic) — corruption of the record at rest. It reports whether a frame
// existed to corrupt.
func FlipWALBit(path string, in *Injector) (bool, error) { return flipMutate(path, in) }

// tornMutate truncates the WAL strictly inside its last valid frame — the
// footprint of a seal whose write only partially reached the platter. It
// reports whether a frame existed to tear.
func tornMutate(path string, in *Injector) (bool, error) {
	scan, err := wal.Recover(path)
	if err != nil || len(scan.Records) == 0 {
		return false, nil
	}
	last := scan.Records[len(scan.Records)-1]
	frameLen := int64(16 + len(last.Payload))
	start := scan.ValidSize - frameLen
	cut := start + 1 + int64(in.Intn(int(frameLen-1)))
	return true, os.Truncate(path, cut)
}

// flipMutate flips one seeded bit inside the WAL's valid frames (past the
// file magic) — corruption of the checkpoint at rest. It reports whether a
// frame existed to corrupt.
func flipMutate(path string, in *Injector) (bool, error) {
	scan, err := wal.Recover(path)
	if err != nil || len(scan.Records) == 0 {
		return false, nil
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	const magicLen = 8
	off := magicLen + in.Intn(int(scan.ValidSize)-magicLen)
	raw[off] ^= 1 << uint(in.Intn(8))
	return true, os.WriteFile(path, raw, 0o644)
}

// DefaultCrashCells returns the standard three-cell crash grid (kill,
// torn-write, disk-flip) with trials trials per cell.
func DefaultCrashCells(kind checksum.Kind, words, epochs, trials int, seed int64) []CrashConfig {
	var cells []CrashConfig
	for _, cell := range []CrashCellKind{CrashKill, CrashTornWrite, CrashDiskFlip} {
		cells = append(cells, CrashConfig{
			Kind: kind, Words: words, Epochs: epochs,
			Trials: trials, Seed: seed, Cell: cell,
		})
	}
	return cells
}
