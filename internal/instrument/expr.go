// Package instrument implements Algorithm 3 of the paper: inserting checksum
// computation code into a program so that every memory value is verified
// between its definition and its uses. Statically analyzable (affine)
// references receive compile-time use counts from Algorithm 1; everything
// else is protected by the dynamic scheme of Section 4.1 (shadow use
// counters plus auxiliary e_def/e_use checksums), with the Section 4.2
// inspector optimization for iterative codes.
package instrument

import (
	"fmt"
	"math/big"

	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/poly"
)

// polyToExpr converts a parametric count polynomial into an integer-valued
// lang expression. Rational coefficients are cleared by the least common
// denominator D, producing (<integer polynomial>) / D — exact under integer
// division because counts are integer-valued on their domains.
func polyToExpr(p poly.Polynomial, rename map[string]string) (lang.Expr, error) {
	if c, ok := p.IsConst(); ok && c.IsInt() {
		return &lang.IntLit{Val: c.Num().Int64()}, nil
	}
	// Affine counts (the common case, e.g. n-1-j) render directly.
	if lin, ok := p.AsLin(); ok {
		if rename != nil {
			lin = lin.Rename(rename)
		}
		return pdg.LinToExpr(lin), nil
	}
	// Find the least common denominator of all coefficients.
	den := big.NewInt(1)
	for _, v := range p.Vars() {
		_ = v // vars enumerated below through CoeffsByVar decomposition
	}
	den = denominatorLCM(p)
	scaled := p.ScaleRat(new(big.Rat).SetInt(den))
	numExpr, err := intPolyExpr(scaled, rename)
	if err != nil {
		return nil, err
	}
	if den.Cmp(big.NewInt(1)) == 0 {
		return numExpr, nil
	}
	return &lang.Bin{Op: lang.BinDiv, L: numExpr, R: &lang.IntLit{Val: den.Int64()}}, nil
}

func denominatorLCM(p poly.Polynomial) *big.Int {
	den := big.NewInt(1)
	// Walk coefficients through single-variable decompositions until only
	// the constant remains; simpler: use the polynomial's string-independent
	// structure via CoeffsByVar recursion. To keep it simple we scale
	// iteratively: multiply by each coefficient's denominator via trial.
	for {
		d := firstNonIntDen(p, den)
		if d == nil {
			return den
		}
		den.Mul(den, d)
	}
}

// firstNonIntDen returns a denominator that still fails to clear p when
// scaled by cur, or nil if cur clears all coefficients.
func firstNonIntDen(p poly.Polynomial, cur *big.Int) *big.Int {
	scaled := p.ScaleRat(new(big.Rat).SetInt(cur))
	vars := scaled.Vars()
	var walk func(q poly.Polynomial, vs []string) *big.Int
	walk = func(q poly.Polynomial, vs []string) *big.Int {
		if len(vs) == 0 {
			c, ok := q.IsConst()
			if !ok {
				return nil
			}
			if !c.IsInt() {
				return new(big.Int).Set(c.Denom())
			}
			return nil
		}
		for _, ck := range q.CoeffsByVar(vs[0]) {
			if d := walk(ck, vs[1:]); d != nil {
				return d
			}
		}
		return nil
	}
	return walk(scaled, vars)
}

// intPolyExpr renders a polynomial with integer coefficients as a lang
// expression, renaming variables through rename (nil keeps names).
func intPolyExpr(p poly.Polynomial, rename map[string]string) (lang.Expr, error) {
	if c, ok := p.IsConst(); ok {
		if !c.IsInt() {
			return nil, fmt.Errorf("instrument: non-integer coefficient %s", c)
		}
		return &lang.IntLit{Val: c.Num().Int64()}, nil
	}
	vars := p.Vars()
	v := vars[0]
	name := v
	if rename != nil {
		if nn, ok := rename[v]; ok {
			name = nn
		}
	}
	// Horner in v: p = c0 + v*(c1 + v*(c2 + ...)).
	coeffs := p.CoeffsByVar(v)
	var out lang.Expr
	for k := len(coeffs) - 1; k >= 0; k-- {
		ce, err := intPolyExpr(coeffs[k], rename)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = ce
			continue
		}
		out = &lang.Bin{Op: lang.BinMul, L: &lang.Ref{Name: name}, R: out}
		if lit, ok := ce.(*lang.IntLit); !ok || lit.Val != 0 {
			out = &lang.Bin{Op: lang.BinAdd, L: out, R: ce}
		}
	}
	return out, nil
}

// consToCond renders constraints as a lang boolean condition (conjunction),
// renaming variables through rename. nil means "no constraints" (true).
func consToCond(cons []poly.Constraint, rename map[string]string) lang.Expr {
	var out lang.Expr
	for _, c := range cons {
		e := c.E
		if rename != nil {
			e = e.Rename(rename)
		}
		lhs := pdg.LinToExpr(e)
		op := lang.BinGe
		if c.Equality {
			op = lang.BinEq
		}
		cmp := &lang.Bin{Op: op, L: lhs, R: &lang.IntLit{Val: 0}}
		if out == nil {
			out = cmp
		} else {
			out = &lang.Bin{Op: lang.BinAnd, L: out, R: cmp}
		}
	}
	return out
}

// names tracks identifiers in use so generated helpers stay collision-free.
type names struct {
	used map[string]bool
}

func newNames(prog *lang.Program) *names {
	n := &names{used: map[string]bool{}}
	for _, p := range prog.Params {
		n.used[p] = true
	}
	for _, d := range prog.Decls {
		n.used[d.Name] = true
	}
	lang.WalkStmts(prog.Body, func(s lang.Stmt) bool {
		if f, ok := s.(*lang.For); ok {
			n.used[f.Iter] = true
		}
		return true
	})
	return n
}

// fresh returns base if free, else base2, base3, ...
func (n *names) fresh(base string) string {
	if !n.used[base] {
		n.used[base] = true
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !n.used[cand] {
			n.used[cand] = true
			return cand
		}
	}
}

// addChk builds an add_to_chksm statement.
func addChk(cs lang.CSName, value lang.Expr, count lang.Expr) *lang.AddToChecksum {
	return &lang.AddToChecksum{CS: cs, Value: value, Count: count}
}

func one() lang.Expr           { return &lang.IntLit{Val: 1} }
func intLit(v int64) lang.Expr { return &lang.IntLit{Val: v} }

// refTo builds a Ref with cloned index expressions.
func refClone(r *lang.Ref) *lang.Ref {
	return lang.CloneExpr(r).(*lang.Ref)
}

// incr builds "ref = ref + 1;".
func incr(r *lang.Ref) lang.Stmt {
	return &lang.Assign{LHS: refClone(r), Op: lang.OpSet,
		RHS: &lang.Bin{Op: lang.BinAdd, L: refClone(r), R: one()}}
}

// loopNestOver builds nested for loops over the given iterator names with
// bounds [0, dim-1], wrapping body.
func loopNestOver(iters []string, dims []lang.Expr, body []lang.Stmt) []lang.Stmt {
	out := body
	for k := len(iters) - 1; k >= 0; k-- {
		out = []lang.Stmt{&lang.For{
			Iter: iters[k],
			Lo:   intLit(0),
			Hi:   &lang.Bin{Op: lang.BinSub, L: lang.CloneExpr(dims[k]), R: one()},
			Body: out,
		}}
	}
	return out
}
