package faults

import (
	"context"

	"defuse/internal/checksum"
	"defuse/internal/codegen"
	"defuse/internal/interp"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// This file runs epoch-structured injection trials against real instrumented
// kernels instead of the synthetic rt-protected array the rest of the
// package exercises, through a backend abstraction that admits both the
// interpreter and the native codegen engine. The trial is the execution
// substrate of the codegen differential oracle: two backends fed the same
// program, data, and injector stream must produce identical verdicts,
// latencies, per-epoch state stamps, and final memory.
//
// Instrumented kernels are NOT epoch-balanced — the instrumenter proves its
// def/use identity at the program's post-dominator, not at arbitrary
// interior cuts of the outermost loop — so interior boundaries scrub the
// detector (self-check) but only the final boundary runs the full def/use
// verification. Detection latency for kernels is therefore measured to the
// final boundary, the placement the paper's Figure 4 verification uses.

// KernelBackend is an epoch-structured execution engine over one
// instrumented kernel with its data already initialized. Implementations
// must be deterministic: same program, same initial data, same epoch
// schedule, same state at every observation point.
type KernelBackend interface {
	// Backend names the engine ("interp" or "codegen").
	Backend() string
	// Epochs returns the planned epoch count (after collapse for programs
	// with no top-level loop).
	Epochs() int
	// RunEpoch executes epoch k.
	RunEpoch(k int) error
	// Scrub runs the checksum pair's shadow self-check.
	Scrub() error
	// Verify runs the full def/use verification.
	Verify() error
	// Snapshot captures the words + checksum pair; Restore reinstates them.
	Snapshot() kernelSnap
	Restore(s kernelSnap) error
	// Mem exposes the simulated memory for injection and stamping.
	Mem() *memsim.Memory
	// Pair exposes the live checksum accumulators.
	Pair() *checksum.Pair
	// Region resolves a variable's memory region for fault targeting.
	Region(name string) (base, size int, err error)
}

// kernelSnap is the checkpoint both backends share: the simulated memory
// and the checksum accumulators with their shadows. Cached loop bounds are
// deliberately absent — they only transition unset→set while epoch 0 runs,
// and re-running epoch 0 after a restart recomputes them from restored
// state, so the snapshot stays backend-symmetric.
type kernelSnap struct {
	mem  memsim.Snapshot
	pair checksum.Pair
}

// InterpKernelBackend adapts an interpreter machine + epoch plan.
type InterpKernelBackend struct {
	M *interp.Machine
	P *interp.EpochPlan
}

// NewInterpKernelBackend plans n epochs over an initialized machine.
func NewInterpKernelBackend(m *interp.Machine, n int) (*InterpKernelBackend, error) {
	p, err := m.PlanEpochs(n)
	if err != nil {
		return nil, err
	}
	return &InterpKernelBackend{M: m, P: p}, nil
}

func (b *InterpKernelBackend) Backend() string      { return "interp" }
func (b *InterpKernelBackend) Epochs() int          { return b.P.Epochs() }
func (b *InterpKernelBackend) RunEpoch(k int) error { return b.P.RunEpoch(k) }
func (b *InterpKernelBackend) Scrub() error         { return b.M.Pair().Scrub() }
func (b *InterpKernelBackend) Verify() error        { return b.M.Pair().Verify() }
func (b *InterpKernelBackend) Mem() *memsim.Memory  { return b.M.Mem() }
func (b *InterpKernelBackend) Pair() *checksum.Pair { return b.M.Pair() }
func (b *InterpKernelBackend) Snapshot() kernelSnap {
	return kernelSnap{mem: b.M.Mem().Snapshot(), pair: *b.M.Pair()}
}
func (b *InterpKernelBackend) Restore(s kernelSnap) error {
	if err := b.M.Mem().Restore(s.mem); err != nil {
		return err
	}
	*b.M.Pair() = s.pair
	return nil
}
func (b *InterpKernelBackend) Region(name string) (int, int, error) {
	return b.M.Region(name)
}

// CodegenKernelBackend adapts a native machine + epoch run.
type CodegenKernelBackend struct {
	M *codegen.Machine
	P *codegen.EpochRun
}

// NewCodegenKernelBackend plans n epochs of a compiled unit over an
// initialized machine.
func NewCodegenKernelBackend(m *codegen.Machine, u *codegen.Unit, n int) (*CodegenKernelBackend, error) {
	p, err := codegen.PlanEpochs(m, u, n)
	if err != nil {
		return nil, err
	}
	return &CodegenKernelBackend{M: m, P: p}, nil
}

func (b *CodegenKernelBackend) Backend() string      { return "codegen" }
func (b *CodegenKernelBackend) Epochs() int          { return b.P.Epochs() }
func (b *CodegenKernelBackend) RunEpoch(k int) error { return b.P.RunEpoch(k) }
func (b *CodegenKernelBackend) Scrub() error         { return b.M.Pair().Scrub() }
func (b *CodegenKernelBackend) Verify() error        { return b.M.Pair().Verify() }
func (b *CodegenKernelBackend) Mem() *memsim.Memory  { return b.M.Mem() }
func (b *CodegenKernelBackend) Pair() *checksum.Pair { return b.M.Pair() }
func (b *CodegenKernelBackend) Snapshot() kernelSnap {
	return kernelSnap{mem: b.M.Mem().Snapshot(), pair: *b.M.Pair()}
}
func (b *CodegenKernelBackend) Restore(s kernelSnap) error {
	if err := b.M.Mem().Restore(s.mem); err != nil {
		return err
	}
	*b.M.Pair() = s.pair
	return nil
}
func (b *CodegenKernelBackend) Region(name string) (int, int, error) {
	return b.M.Region(name)
}

// KernelTrialConfig parameterizes one kernel trial.
type KernelTrialConfig struct {
	// Inject enables fault injection; false runs the trial clean (the
	// differential baseline).
	Inject bool
	// Seed keys the injector's deterministic draw stream.
	Seed int64
	// Targets names the float variables eligible for injection, in draw
	// order. Empty with Inject set is an error surfaced by RunKernelTrial.
	Targets []string
	// Policy is the recovery policy (zero value: detect only, no retry).
	Policy recovery.Policy
	// Trace/Metrics/Tracer are optional observability hooks.
	Trace   telemetry.Sink
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer
}

// KernelStamp is the per-epoch observable state fingerprint the
// differential harness compares: captured at every epoch boundary after the
// boundary's checks, before the next epoch begins.
type KernelStamp struct {
	Epoch     int
	MemDigest uint64
	Def, Use  uint64
	EDef      uint64
	EUse      uint64
}

// KernelTrialResult is everything observable about one trial.
type KernelTrialResult struct {
	Backend string
	Outcome recovery.Outcome
	// Stamps has one entry per verified epoch boundary, in order. A boundary
	// that detected (and was retried) contributes one entry per attempt.
	Stamps []KernelStamp
	// FinalWords is the complete simulated memory at trial end.
	FinalWords []uint64
	// Pair is the final accumulator state.
	Pair checksum.Pair
	// Err is the terminal error text with the backend prefix stripped, ""
	// on success — backends must agree on it.
	Err string
	// Injection coordinates actually used (meaningful when Inject).
	InjEpoch, InjWord, InjBit int
}

// stripPrefix removes the backend-identifying error prefix so the two
// backends' otherwise-identical diagnostics compare equal.
func stripPrefix(s string) string {
	for _, p := range []string{"interp: ", "codegen: "} {
		if len(s) >= len(p) && s[:len(p)] == p {
			return s[len(p):]
		}
	}
	return s
}

// RunKernelTrial executes one supervised trial of an initialized backend.
// The injector stream draws, in order: injection epoch, target variable
// slot, word offset within the target, bit. The flip lands at the injected
// epoch's entry, after its checkpoint is parked — the transient-fault model
// (re-execution from the checkpoint does not see the fault again).
func RunKernelTrial(ctx context.Context, be KernelBackend, cfg KernelTrialConfig) (KernelTrialResult, error) {
	epochs := be.Epochs()
	res := KernelTrialResult{Backend: be.Backend(), InjEpoch: -1, InjWord: -1, InjBit: -1}

	injEpoch, injWord, injBit := -1, -1, -1
	if cfg.Inject {
		in := NewInjector(cfg.Seed)
		injEpoch = in.Intn(epochs)
		slot := in.Intn(len(cfg.Targets))
		base, size, err := be.Region(cfg.Targets[slot])
		if err != nil {
			return res, err
		}
		injWord = base + in.Intn(size)
		injBit = in.Intn(64)
		res.InjEpoch, res.InjWord, res.InjBit = injEpoch, injWord, injBit
	}

	injected := false
	run := func(k int) error {
		if cfg.Inject && !injected && k == injEpoch {
			injected = true
			be.Mem().FlipBit(injWord, injBit)
			telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
				"scheme": "kernel", "backend": be.Backend(),
				"epoch": k, "word": injWord, "bit": injBit,
			})
		}
		return be.RunEpoch(k)
	}

	stamp := func(k int) {
		p := be.Pair()
		sn := be.Mem().Snapshot()
		res.Stamps = append(res.Stamps, KernelStamp{
			Epoch: k, MemDigest: sn.Digest(),
			Def: p.Def, Use: p.Use, EDef: p.EDef, EUse: p.EUse,
		})
	}

	verify := func(k int) error {
		// Interior boundaries: detector self-check only — the kernel's
		// def/use identity holds at the program's post-dominator, not at
		// arbitrary interior cuts.
		if err := be.Scrub(); err != nil {
			stamp(k)
			return err
		}
		if k == epochs-1 {
			if err := be.Verify(); err != nil {
				stamp(k)
				return err
			}
		}
		stamp(k)
		return nil
	}

	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs:     epochs,
		Run:        run,
		Verify:     verify,
		Checkpoint: func() any { return be.Snapshot() },
		Restore:    func(snap any) error { return be.Restore(snap.(kernelSnap)) },
		Policy:     cfg.Policy,
		Trace:      cfg.Trace,
		Metrics:    cfg.Metrics,
		Tracer:     cfg.Tracer,
	})
	res.Outcome = out
	if err != nil {
		res.Err = stripPrefix(err.Error())
	}
	res.FinalWords = be.Mem().Words()
	res.Pair = *be.Pair()
	return res, nil
}
