package checksum

// This file implements whole-array checksums used by the fault-coverage
// experiments (Table 1 of the paper): a checksum is computed over an array of
// 64-bit words, bits are flipped, the checksum is recomputed, and a mismatch
// means the error was detected.

// fletcherMod is the modulus for the two 32-bit running sums of Fletcher64.
const fletcherMod = 0xffffffff // 2^32 - 1

// adlerMod is the largest prime below 2^32, the Adler-style modulus.
const adlerMod = 4294967291

// Sum computes the k-checksum of data. For commutative operators this is the
// fold of Combine over the elements; for Fletcher64/Adler64 it is the usual
// two-running-sum construction over the 32-bit halves of each word, packed as
// (sum2 << 32) | sum1.
func Sum(k Kind, data []uint64) uint64 {
	switch k {
	case ModAdd, XOR, OnesComp:
		var acc uint64
		for _, v := range data {
			acc = Combine(k, acc, v)
		}
		return acc
	case Fletcher64:
		return fletcherSum(data, fletcherMod)
	case Adler64:
		return fletcherSum(data, adlerMod)
	}
	panic("checksum: Sum on unknown operator")
}

func fletcherSum(data []uint64, mod uint64) uint64 {
	var s1, s2 uint64
	for _, v := range data {
		s1 = (s1 + (v & 0xffffffff)) % mod
		s2 = (s2 + s1) % mod
		s1 = (s1 + (v >> 32)) % mod
		s2 = (s2 + s1) % mod
	}
	return s2<<32 | s1
}

// DualSum computes the paper's two-checksum scheme over data: the first
// checksum is the plain k-sum; the second folds each element left-rotated by
// an amount derived from its address (RotateForIndex, assuming an 8-byte
// aligned base). Only commutative operators support the dual scheme.
func DualSum(k Kind, data []uint64) (first, second uint64) {
	for i, v := range data {
		first = Combine(k, first, v)
		second = Combine(k, second, Rotl(v, RotateForIndex(i)))
	}
	return first, second
}
