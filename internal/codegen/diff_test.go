package codegen_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"defuse/internal/bench"
	"defuse/internal/checksum"
	"defuse/internal/codegen"
	"defuse/internal/codegen/gennative"
	"defuse/internal/faults"
	"defuse/internal/instrument"
	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/progen"
	"defuse/internal/recovery"
)

// The differential oracle: the interpreter is the reference semantics, and
// both native forms — the compiled-closure backend and the committed
// generated source — must be observationally identical to it. Identical
// means byte-identical: every memory word, every checksum accumulator and
// shadow, every output array bit pattern, every verdict, every detection
// latency, on clean runs and under injected faults alike.

// diffScale keeps kernel problem sizes small enough to run every kernel ×
// variant × seed combination in test time.
const diffScale = 0.002

// host is the initialization surface both machines share.
type host interface {
	SetFloat(name string, v float64, idx ...int64) error
	SetInt(name string, v int64, idx ...int64) error
	FillFloat(name string, gen func(flat int64) float64) error
	FillInt(name string, gen func(flat int64) int64) error
}

// pairState flattens a checksum pair for comparison.
func pairState(p *checksum.Pair) [8]uint64 {
	sh := p.Shadows()
	return [8]uint64{p.Def, p.Use, p.EDef, p.EUse, sh[0], sh[1], sh[2], sh[3]}
}

// normErr strips the backend prefix so otherwise-identical diagnostics
// compare equal.
func normErr(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	for _, p := range []string{"interp: ", "codegen: "} {
		if len(s) >= len(p) && s[:len(p)] == p {
			return s[len(p):]
		}
	}
	return s
}

// diffFullState asserts two machines hold bit-identical observable state.
func diffFullState(t *testing.T, label string, iw, cw []uint64, ip, cp *checksum.Pair) {
	t.Helper()
	if len(iw) != len(cw) {
		t.Fatalf("%s: memory layout diverged: interp %d words, native %d", label, len(iw), len(cw))
	}
	for i := range iw {
		if iw[i] != cw[i] {
			t.Fatalf("%s: word %d: interp %#x, native %#x", label, i, iw[i], cw[i])
		}
	}
	if pairState(ip) != pairState(cp) {
		t.Fatalf("%s: checksum state diverged:\ninterp %v\nnative %v",
			label, pairState(ip), pairState(cp))
	}
}

// kernelSeeds is the differential battery's seed set (>= 8, per the
// acceptance bar). -short trims it.
func kernelSeeds(t *testing.T) []int64 {
	if testing.Short() {
		return []int64{1, 2}
	}
	return []int64{1, 2, 3, 4, 5, 6, 7, 8}
}

var allVariants = []bench.Variant{bench.Original, bench.Resilient, bench.ResilientOpt}

// buildPair constructs an interp machine and a codegen machine over the same
// program with identically seeded data.
func buildPair(t *testing.T, b *bench.Benchmark, prog *lang.Program, seed int64) (*interp.Machine, *codegen.Machine) {
	t.Helper()
	params := b.Params(diffScale)
	im, err := interp.New(prog, params)
	if err != nil {
		t.Fatalf("%s: interp.New: %v", b.Name, err)
	}
	cm, err := codegen.MachineFor(prog, params)
	if err != nil {
		t.Fatalf("%s: codegen.MachineFor: %v", b.Name, err)
	}
	b.Init(im, params, rand.New(rand.NewSource(seed)))
	b.Init(cm, params, rand.New(rand.NewSource(seed)))
	return im, cm
}

// TestDiffCleanKernels runs every kernel × variant × seed clean, through the
// interpreter, the compiled closure, and the committed generated source, and
// asserts all three agree on every word, accumulator, output bit, and error.
func TestDiffCleanKernels(t *testing.T) {
	seeds := kernelSeeds(t)
	for _, b := range bench.Suite() {
		for _, v := range allVariants {
			prog, err := b.BuildVariant(v)
			if err != nil {
				t.Fatal(err)
			}
			unit, err := codegen.Compile(prog)
			if err != nil {
				t.Fatalf("%s/%s: Compile: %v", b.Name, v, err)
			}
			gen, ok := gennative.Lookup(b.Name, string(v))
			if !ok {
				t.Fatalf("%s/%s: no generated kernel in registry", b.Name, v)
			}
			if gen.Anchored != unit.Anchored() {
				t.Fatalf("%s/%s: registry Anchored=%v, Compile says %v",
					b.Name, v, gen.Anchored, unit.Anchored())
			}
			for _, seed := range seeds {
				label := string(b.Name) + "/" + string(v)
				t.Run(label, func(t *testing.T) {
					im, cm := buildPair(t, b, prog, seed)
					ierr := im.Run()
					cerr := unit.Run(cm)
					if normErr(ierr) != normErr(cerr) {
						t.Fatalf("closure error diverged: interp %q, native %q", normErr(ierr), normErr(cerr))
					}
					diffFullState(t, "closure", im.Mem().Words(), cm.Mem().Words(), im.Pair(), cm.Pair())

					_, gm := buildPair(t, b, prog, seed)
					gerr := gen.Fn(gm, 0, 1)
					if normErr(ierr) != normErr(gerr) {
						t.Fatalf("gennative error diverged: interp %q, native %q", normErr(ierr), normErr(gerr))
					}
					diffFullState(t, "gennative", im.Mem().Words(), gm.Mem().Words(), im.Pair(), gm.Pair())

					// Output arrays, compared through the same accessor the
					// bench harness uses.
					for _, d := range b.Program().Decls {
						if d.Type != lang.TypeFloat || !d.IsArray() {
							continue
						}
						want, err := im.SnapshotFloats(d.Name)
						if err != nil {
							t.Fatal(err)
						}
						got, err := cm.SnapshotFloats(d.Name)
						if err != nil {
							t.Fatal(err)
						}
						for i := range want {
							if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
								t.Fatalf("%s[%d] = %v, interp %v", d.Name, i, got[i], want[i])
							}
						}
					}
				})
				// Only the first seed needs every variant; deeper seeds run
				// below in the supervised battery.
				if v != bench.Resilient {
					break
				}
			}
		}
	}
}

// floatTargets lists a benchmark's float arrays, the injection-eligible
// regions (present under both backends with identical layout).
func floatTargets(b *bench.Benchmark) []string {
	var names []string
	for _, d := range b.Program().Decls {
		if d.Type == lang.TypeFloat && d.IsArray() {
			names = append(names, d.Name)
		}
	}
	return names
}

// diffTrials compares two kernel trial results field by field.
func diffTrials(t *testing.T, ri, rc faults.KernelTrialResult) {
	t.Helper()
	if ri.InjEpoch != rc.InjEpoch || ri.InjWord != rc.InjWord || ri.InjBit != rc.InjBit {
		t.Fatalf("injection coordinates diverged: interp (%d,%d,%d), native (%d,%d,%d)",
			ri.InjEpoch, ri.InjWord, ri.InjBit, rc.InjEpoch, rc.InjWord, rc.InjBit)
	}
	if ri.Outcome != rc.Outcome {
		t.Fatalf("outcome diverged:\ninterp %+v\nnative %+v", ri.Outcome, rc.Outcome)
	}
	if ri.Err != rc.Err {
		t.Fatalf("terminal error diverged: interp %q, native %q", ri.Err, rc.Err)
	}
	if len(ri.Stamps) != len(rc.Stamps) {
		t.Fatalf("stamp count diverged: interp %d, native %d", len(ri.Stamps), len(rc.Stamps))
	}
	for i := range ri.Stamps {
		if ri.Stamps[i] != rc.Stamps[i] {
			t.Fatalf("stamp %d diverged:\ninterp %+v\nnative %+v", i, ri.Stamps[i], rc.Stamps[i])
		}
	}
	if len(ri.FinalWords) != len(rc.FinalWords) {
		t.Fatalf("final memory size diverged: interp %d, native %d", len(ri.FinalWords), len(rc.FinalWords))
	}
	for i := range ri.FinalWords {
		if ri.FinalWords[i] != rc.FinalWords[i] {
			t.Fatalf("final word %d diverged: interp %#x, native %#x", i, ri.FinalWords[i], rc.FinalWords[i])
		}
	}
	if pairState(&ri.Pair) != pairState(&rc.Pair) {
		t.Fatalf("final checksum state diverged:\ninterp %v\nnative %v",
			pairState(&ri.Pair), pairState(&rc.Pair))
	}
}

// TestDiffSupervisedFaults is the headline battery: every kernel, every
// seed, clean AND fault-injected, run as a 4-epoch supervised trial with
// rollback recovery through the interpreter backend, the compiled-closure
// backend, and the generated-source backend — each trio must agree on
// verdicts, detection latencies, retries, per-boundary state stamps, final
// memory, and final checksum state.
func TestDiffSupervisedFaults(t *testing.T) {
	const epochs = 4
	pol := recovery.Policy{MaxRetries: 2, MaxRestarts: 1}
	ctx := context.Background()
	for _, b := range bench.Suite() {
		prog, err := b.BuildVariant(bench.Resilient)
		if err != nil {
			t.Fatal(err)
		}
		unit, err := codegen.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		gen, ok := gennative.Lookup(b.Name, string(bench.Resilient))
		if !ok {
			t.Fatalf("%s: no generated kernel", b.Name)
		}
		genUnit := codegen.FnUnit(prog, gen.Anchored, gen.Fn)
		targets := floatTargets(b)
		for _, seed := range kernelSeeds(t) {
			for _, inject := range []bool{false, true} {
				name := b.Name
				t.Run(name, func(t *testing.T) {
					cfg := faults.KernelTrialConfig{
						Inject: inject, Seed: seed, Targets: targets, Policy: pol,
					}
					im, cm := buildPair(t, b, prog, seed)
					bi, err := faults.NewInterpKernelBackend(im, epochs)
					if err != nil {
						t.Fatal(err)
					}
					ri, err := faults.RunKernelTrial(ctx, bi, cfg)
					if err != nil {
						t.Fatal(err)
					}
					bc, err := faults.NewCodegenKernelBackend(cm, unit, epochs)
					if err != nil {
						t.Fatal(err)
					}
					rc, err := faults.RunKernelTrial(ctx, bc, cfg)
					if err != nil {
						t.Fatal(err)
					}
					diffTrials(t, ri, rc)

					_, gm := buildPair(t, b, prog, seed)
					bg, err := faults.NewCodegenKernelBackend(gm, genUnit, epochs)
					if err != nil {
						t.Fatal(err)
					}
					rg, err := faults.RunKernelTrial(ctx, bg, cfg)
					if err != nil {
						t.Fatal(err)
					}
					diffTrials(t, ri, rg)
				})
			}
		}
	}
}

// setupHost mirrors the instrument fuzz tests' deterministic generated-
// program initialization on any backend.
func setupHost(t *testing.T, m host, gp *progen.Program, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for _, a := range gp.FloatArrays {
		if err := m.FillFloat(a, func(int64) float64 { return rng.Float64()*8 - 4 }); err != nil {
			t.Fatal(err)
		}
	}
	for _, ia := range gp.IntArrays {
		if err := m.FillInt(ia, func(int64) int64 { return rng.Int63n(gp.N) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range gp.Scalars {
		if err := m.SetFloat(s, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
}

// diffGenerated runs one generated program through interp and the closure
// backend under every instrumentation option set and asserts equivalence.
func diffGenerated(t *testing.T, seed int64, indirect bool) {
	rng := rand.New(rand.NewSource(seed))
	cfg := progen.DefaultConfig()
	cfg.WithIndirect = indirect
	gp := progen.Generate(rng, cfg)
	prog, err := lang.Parse(gp.Source)
	if err != nil {
		t.Fatalf("seed %d: generated program does not parse: %v\n%s", seed, err, gp.Source)
	}
	for _, opt := range []instrument.Options{{}, {Split: true}, {Split: true, Inspector: true}} {
		res, err := instrument.Instrument(prog, opt)
		if err != nil {
			t.Fatalf("seed %d opt %+v: instrument: %v\n%s", seed, opt, err, gp.Source)
		}
		im, err := interp.New(res.Prog, gp.Params)
		if err != nil {
			t.Fatalf("seed %d opt %+v: interp.New: %v", seed, opt, err)
		}
		cm, err := codegen.MachineFor(res.Prog, gp.Params)
		if err != nil {
			t.Fatalf("seed %d opt %+v: MachineFor: %v", seed, opt, err)
		}
		unit, err := codegen.Compile(res.Prog)
		if err != nil {
			t.Fatalf("seed %d opt %+v: Compile: %v\n%s", seed, opt, err, lang.Print(res.Prog))
		}
		setupHost(t, im, gp, seed)
		setupHost(t, cm, gp, seed)
		ierr := im.Run()
		cerr := unit.Run(cm)
		if normErr(ierr) != normErr(cerr) {
			t.Fatalf("seed %d opt %+v: error diverged: interp %q, native %q\n%s",
				seed, opt, normErr(ierr), normErr(cerr), gp.Source)
		}
		diffFullState(t, "generated", im.Mem().Words(), cm.Mem().Words(), im.Pair(), cm.Pair())
	}
}

// TestDiffGeneratedPrograms sweeps deterministic progen seeds, affine and
// indirect, through the differential check.
func TestDiffGeneratedPrograms(t *testing.T) {
	trials := int64(60)
	if testing.Short() {
		trials = 10
	}
	for seed := int64(0); seed < trials; seed++ {
		diffGenerated(t, 20000+seed, seed%3 == 2)
	}
}

// FuzzCodegenDiff is the continuous form: any seed the fuzzer finds must
// hold interp ≡ native over every instrumentation option set.
func FuzzCodegenDiff(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, false)
		f.Add(seed, true)
	}
	f.Fuzz(func(t *testing.T, seed int64, indirect bool) {
		diffGenerated(t, seed, indirect)
	})
}
