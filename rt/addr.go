package rt

import "defuse/internal/addrsum"

// This file wires internal/addrsum's address-stream checksums through the
// tracker hierarchy. The address accumulators ride alongside the data
// checksums with the same lifecycle: per-shard lock-free folds, commutative
// merge into the root, reset on rollback, scrub at the detector boundary
// (Tracker.ScrubDetector reports an addrsum shadow divergence as a
// *DetectorFaultError with Part "addrsum").
//
// rt.EpochState's binary encoding is WAL-pinned and cannot grow, so the
// address streams seal their own addrsum.EpochState; the Addr* epoch
// methods below manage it next to the data epoch under the same lock.

// AttachAddr arms address-stream protection on a standalone tracker: the
// instrumented code folds each access's (intended, effective) index pair
// via Addr(), Reset clears it, and ScrubDetector cross-checks its shadow
// copies. Attach before folding; a nil at detaches.
func (t *Tracker) AttachAddr(at *addrsum.Tracker) { t.addr = at }

// Addr returns the attached address-stream tracker, or nil.
func (t *Tracker) Addr() *addrsum.Tracker { return t.addr }

// EnableAddr arms address-stream protection on the sharded tracker: the
// root gains an addrsum tracker holding the merged view, and every shard
// handed out afterwards (plus any currently live shard) gets a private one
// whose folds take no locks. Shard merges fold the address streams into the
// root exactly like the data checksums. Returns the root address tracker.
func (s *ShardedTracker) EnableAddr() *addrsum.Tracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addrOn = true
	if s.root.addr == nil {
		s.root.addr = addrsum.NewTracker()
	}
	for _, sh := range s.shards {
		if !sh.closed && sh.t.addr == nil {
			sh.t.addr = addrsum.NewTracker()
		}
	}
	return s.root.addr
}

// Addr returns the root's merged address-stream tracker, or nil if
// EnableAddr was never called. The same quiescence rules as Root apply.
func (s *ShardedTracker) Addr() *addrsum.Tracker { return s.root.addr }

// AddrBeginEpoch drains every live shard and seals the merged address
// streams at the entry of the current epoch. Returns the zero state when
// address protection is not enabled, so call sites can stay unconditional.
func (s *ShardedTracker) AddrBeginEpoch() addrsum.EpochState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root.addr == nil {
		return addrsum.EpochState{}
	}
	s.drainLocked()
	return s.root.addr.BeginEpoch()
}

// AddrEndEpoch drains every live shard and verifies the merged address
// streams at the epoch boundary: a *addrsum.MismatchError means some access
// this epoch touched a location other than the one the program computed —
// including the valid-word-aliasing case the data checksums are blind to.
// A disabled tracker verifies trivially.
func (s *ShardedTracker) AddrEndEpoch() (addrsum.EpochState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root.addr == nil {
		return addrsum.EpochState{}, nil
	}
	s.drainLocked()
	return s.root.addr.EndEpoch()
}

// AddrRollback restores the merged address streams to a sealed snapshot and
// discards every live shard's unmerged address folds, mirroring Rollback.
// No-op when address protection is not enabled.
func (s *ShardedTracker) AddrRollback(st addrsum.EpochState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.root.addr == nil {
		return nil
	}
	if err := s.root.addr.Rollback(st); err != nil {
		return err
	}
	for _, sh := range s.shards {
		if !sh.closed && sh.t.addr != nil {
			sh.t.addr.Reset()
		}
	}
	return nil
}
