package interp

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"defuse/internal/lang"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// This file extends epoch-supervised execution across process boundaries:
// the machine state a supervisor checkpoint captures (simulated memory,
// checksum pair with its shadow copies, cached loop bounds) gets a stable
// binary form, and SuperviseDurable runs the plan under a DurableSupervisor
// that seals that form into a write-ahead log at every verified epoch. A
// process killed mid-run resumes from the newest valid record: the machine
// is rebuilt exactly — accumulators, shadows, memory words — so the finished
// run is byte-identical to one that was never interrupted.

// machineStateHeader is the fixed prefix of the encoded machine state:
// checksum kind, four accumulators, four shadow words, the plan's cached
// loop bounds, and the haveBounds flag — twelve little-endian uint64 words,
// followed by the encoded memory snapshot (which carries its own digest).
const machineStateHeader = 12 * 8

// encodeState renders the machine-plus-plan state at an epoch boundary.
func (p *EpochPlan) encodeState() ([]byte, error) {
	snap := p.m.mem.Snapshot()
	mem, err := snap.Encode()
	if err != nil {
		return nil, err
	}
	b := make([]byte, machineStateHeader, machineStateHeader+len(mem))
	pair := p.m.pair
	sh := pair.Shadows()
	for i, w := range [...]uint64{
		uint64(pair.Kind()),
		pair.Def, pair.Use, pair.EDef, pair.EUse,
		sh[0], sh[1], sh[2], sh[3],
		uint64(p.lo), uint64(p.hi), boolWord(p.haveBounds),
	} {
		binary.LittleEndian.PutUint64(b[i*8:], w)
	}
	return append(b, mem...), nil
}

// decodeState installs previously encoded state into the machine. The memory
// snapshot's integrity digest is re-verified by DecodeSnapshot and again by
// Restore; a checksum-kind mismatch means the record belongs to a different
// configuration and is refused (the fingerprint should already have caught
// this — the check here keeps decode safe on its own).
func (p *EpochPlan) decodeState(b []byte) error {
	if len(b) < machineStateHeader {
		return fmt.Errorf("interp: durable state of %d bytes: %w", len(b), memsim.ErrCheckpointCorrupt)
	}
	w := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	if kind := w(0); kind != uint64(p.m.pair.Kind()) {
		return fmt.Errorf("interp: durable state for checksum kind %d, machine uses %d: %w",
			kind, p.m.pair.Kind(), memsim.ErrCheckpointCorrupt)
	}
	snap, err := memsim.DecodeSnapshot(b[machineStateHeader:])
	if err != nil {
		return err
	}
	if err := p.m.mem.Restore(snap); err != nil {
		return err
	}
	p.m.pair.SetState(w(1), w(2), w(3), w(4), [4]uint64{w(5), w(6), w(7), w(8)})
	p.lo, p.hi = int64(w(9)), int64(w(10))
	p.haveBounds = w(11) != 0
	return nil
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Fingerprint identifies the plan's run configuration: the program text, the
// concrete parameters (in sorted order), the checksum operator, and the
// epoch count. Two runs with equal fingerprints execute the same work over
// the same layout, so a durable checkpoint from one is a valid resume point
// for the other; anything else must not be resumed.
func (p *EpochPlan) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "epochs=%d kind=%d\n", p.n, p.m.pair.Kind())
	h.Write([]byte(lang.Print(p.m.prog)))
	names := make([]string, 0, len(p.m.params))
	for name := range p.m.params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%s=%d\n", name, p.m.params[name])
	}
	return h.Sum64()
}

// SuperviseDurable is Supervise with durable checkpoints: every verified
// epoch is sealed into the write-ahead log at walPath, and a fresh process
// pointed at the same log resumes from the newest valid record instead of
// restarting from scratch. The machine must be in its initialized (epoch-0
// entry) state when called; if the log holds a usable checkpoint, that state
// is replaced by the resumed one before any epoch runs.
func (p *EpochPlan) SuperviseDurable(ctx context.Context, pol recovery.Policy, walPath string) (recovery.DurableOutcome, error) {
	defer p.m.publishMetrics()
	run := p.m.tracer.Start(telemetry.SpanContext{}, "run",
		telemetry.Int("epochs", p.n), telemetry.Bool("durable", true))
	d := &recovery.DurableSupervisor{
		Config: recovery.Config{
			Epochs: p.n,
			Run:    p.RunEpoch,
			Verify: func(int) error {
				if err := p.m.pair.Scrub(); err != nil {
					return err
				}
				err := p.m.pair.Verify()
				p.m.emitVerify(err)
				return err
			},
			Checkpoint: func() any {
				return epochSnap{
					mem:  p.m.mem.Snapshot(),
					pair: *p.m.pair,
					lo:   p.lo, hi: p.hi, haveBounds: p.haveBounds,
				}
			},
			Restore: func(snap any) error {
				s := snap.(epochSnap)
				if err := p.m.mem.Restore(s.mem); err != nil {
					return err
				}
				*p.m.pair = s.pair
				p.lo, p.hi, p.haveBounds = s.lo, s.hi, s.haveBounds
				return nil
			},
			Policy:  pol,
			Trace:   p.m.trace,
			Metrics: p.m.metrics,
			Tracer:  p.m.tracer,
			Span:    run.Context(),
		},
		Path:        walPath,
		Fingerprint: p.Fingerprint(),
		EncodeState: p.encodeState,
		DecodeState: p.decodeState,
	}
	out, err := d.Run(ctx)
	run.End(telemetry.Bool("detected", out.Detected), telemetry.Bool("resumed", out.Resumed))
	return out, err
}
