package bench

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func sampleRows() ([]Figure10Row, []Figure11Row) {
	rows10 := []Figure10Row{
		{Bench: "jacobi", OriginalSeconds: 0.01, ResilientTime: 1.9, OptimizedTime: 1.4, ResilientOps: 1.8, OptimizedOps: 1.4},
		{Bench: "cg", OriginalSeconds: 0.02, ResilientTime: 2.1, OptimizedTime: 1.5, ResilientOps: 2.0, OptimizedOps: 1.5},
	}
	rows11 := []Figure11Row{
		{Bench: "jacobi", HWEstimate: 1.05},
		{Bench: "cg", HWEstimate: 1.10},
	}
	return rows10, rows11
}

func TestOverheadReportRoundTrip(t *testing.T) {
	rows10, rows11 := sampleRows()
	rep, err := BuildOverheadReport(rows10, rows11, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != OverheadSchema || len(rep.Rows) != 2 {
		t.Fatalf("report = %+v, want schema %s with 2 rows", rep, OverheadSchema)
	}
	if rep.Rows[0].HWEstimate != 1.05 || rep.Rows[1].HWEstimate != 1.10 {
		t.Errorf("hw estimates not merged: %+v", rep.Rows)
	}
	rg, og := GeoMeans(rows10)
	if rep.Geomean.ResilientOps != rg || rep.Geomean.OptimizedOps != og {
		t.Errorf("geomean = %+v, want %v/%v", rep.Geomean, rg, og)
	}
	if rep.Geomean.HWEstimate <= 1.05 || rep.Geomean.HWEstimate >= 1.10 {
		t.Errorf("hw geomean %v not between row values", rep.Geomean.HWEstimate)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseOverheadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Rows[1].Bench != "cg" || back.Scale != 0.5 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestBuildOverheadReportValidation(t *testing.T) {
	rows10, rows11 := sampleRows()
	if _, err := BuildOverheadReport(rows10, rows11[:1], 1); err == nil {
		t.Error("mismatched row counts not rejected")
	}
	bad := append([]Figure11Row(nil), rows11...)
	bad[1].Bench = "other"
	if _, err := BuildOverheadReport(rows10, bad, 1); err == nil {
		t.Error("mismatched bench names not rejected")
	}
}

// Earlier schema versions remain readable: a v2, v3, or v4 document is a
// valid v5 document with the later optional blocks absent.
func TestParseOverheadReportAcceptsOldSchemas(t *testing.T) {
	for _, schema := range []string{overheadSchemaV2, overheadSchemaV3, overheadSchemaV4} {
		in := `{"schema":"` + schema + `","rows":[{"bench":"x"}]}`
		rep, err := ParseOverheadReport(strings.NewReader(in))
		if err != nil {
			t.Errorf("%s rejected: %v", schema, err)
			continue
		}
		if rep.Native != nil || rep.Service != nil || rep.Soak != nil {
			t.Errorf("%s: phantom optional blocks: %+v", schema, rep)
		}
	}
}

// MergeNativeRows must bump the schema and install the native block while
// leaving every other block of the document untouched.
func TestMergeNativeRows(t *testing.T) {
	path := t.TempDir() + "/report.json"
	doc := `{"schema":"` + overheadSchemaV3 + `","scale":0.004,` +
		`"rows":[{"bench":"x","resilient_ops":1.5}],` +
		`"service":{"streams":4,"requests":100}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	rows := []NativeRow{{Bench: "x", OriginalSeconds: 0.001, ResilientTime: 4.5, OptimizedTime: 5.0, Reps: 50}}
	if err := MergeNativeRows(path, rows, func(p string, b []byte) error {
		return os.WriteFile(p, b, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := ParseOverheadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != OverheadSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, OverheadSchema)
	}
	if len(rep.Native) != 1 || rep.Native[0].ResilientTime != 4.5 || rep.Native[0].Reps != 50 {
		t.Errorf("native block not installed: %+v", rep.Native)
	}
	if rep.Service == nil || rep.Service.Streams != 4 {
		t.Errorf("service block lost in merge: %+v", rep.Service)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].ResilientOps != 1.5 {
		t.Errorf("interp rows lost in merge: %+v", rep.Rows)
	}
}

// MergeSoakRow bumps the schema and installs the soak block while leaving
// every other block untouched, and its zero-valued violation columns must
// survive the round trip (they are the gate's evidence).
func TestMergeSoakRow(t *testing.T) {
	path := t.TempDir() + "/report.json"
	doc := `{"schema":"` + overheadSchemaV4 + `","scale":0.004,` +
		`"rows":[{"bench":"x","resilient_ops":1.5}],` +
		`"service":{"streams":4,"requests":100}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	row := SoakRow{
		Seed: 9, DurationSeconds: 30, Kills: 3, Pauses: 1, TornWrites: 1,
		BitFlips: 1, WriteFaults: 2, Bursts: 2, Restarts: 4, DegradedN: 5,
		Requests: 1000, Injected: 50, Detected: 50, Recovered: 50,
		JournalLive: 40, JournalSegments: 3, JournalDiskBytes: 9000,
	}
	if err := MergeSoakRow(path, row, func(p string, b []byte) error {
		return os.WriteFile(p, b, 0o644)
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := ParseOverheadReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != OverheadSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, OverheadSchema)
	}
	if rep.Soak == nil || *rep.Soak != row {
		t.Errorf("soak block = %+v, want %+v", rep.Soak, row)
	}
	if rep.Service == nil || rep.Service.Streams != 4 {
		t.Errorf("service block lost in merge: %+v", rep.Service)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].ResilientOps != 1.5 {
		t.Errorf("interp rows lost in merge: %+v", rep.Rows)
	}
	// The violation columns serialize even at zero — a soak row without them
	// would be indistinguishable from one that never audited.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"silent_corruptions", "undetected_faults", "resume_mismatches", "audit_failures"} {
		if !strings.Contains(string(raw), `"`+key+`"`) {
			t.Errorf("serialized soak row missing %q", key)
		}
	}
}

func TestNativeGeoMeans(t *testing.T) {
	rows := []NativeRow{
		{Bench: "a", ResilientTime: 2, OptimizedTime: 4},
		{Bench: "b", ResilientTime: 8, OptimizedTime: 16},
	}
	rg, og := NativeGeoMeans(rows)
	if math.Abs(rg-4) > 1e-9 || math.Abs(og-8) > 1e-9 {
		t.Errorf("geomeans = %v/%v, want 4/8", rg, og)
	}
	if rg, og := NativeGeoMeans(nil); rg != 0 || og != 0 {
		t.Errorf("empty geomeans = %v/%v, want 0/0", rg, og)
	}
}

func TestParseOverheadReportRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong schema": `{"schema":"other/v9","rows":[{"bench":"x"}]}`,
		"no rows":      `{"schema":"` + OverheadSchema + `","rows":[]}`,
		"not json":     `BENCHMARK jacobi 1.8`,
	}
	for name, in := range cases {
		if _, err := ParseOverheadReport(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid report", name)
		}
	}
}
