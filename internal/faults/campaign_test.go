package faults

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

func epochCfg(trials int) CoverageConfig {
	return CoverageConfig{
		Kind: checksum.ModAdd, Words: 32, BitFlips: 2, Pattern: Random,
		Trials: trials, Seed: 99, Epochs: 6, Recover: true,
	}
}

func TestTable1CellDeterministic(t *testing.T) {
	// Satellite: the same seed must produce a byte-identical CoverageResult
	// across runs, regardless of how the parallel campaign schedules trials.
	a, err := Table1Cell(100, 2, Random, false, 5000, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1Cell(100, 2, Random, false, 5000, 77)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("same seed produced different results:\n%s\n%s", ja, jb)
	}
}

func TestCampaignWorkerCountInvariance(t *testing.T) {
	// Trials carry their own sub-seeds and tallies are order-independent
	// sums, so the result must not depend on pool size or chunking.
	cells := []CoverageConfig{
		{Kind: checksum.ModAdd, Words: 100, BitFlips: 2, Pattern: Random, Trials: 3000, Seed: 5},
		epochCfg(400),
	}
	var ref *CampaignResult
	for _, workers := range []int{1, 4} {
		for _, chunk := range []int{64, 1000} {
			camp := &Campaign{Cells: cells, Workers: workers, ChunkSize: chunk}
			res, err := camp.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for i := range res.Results {
				if !reflect.DeepEqual(res.Results[i], ref.Results[i]) {
					t.Errorf("workers=%d chunk=%d cell %d: %+v != %+v",
						workers, chunk, i, res.Results[i], ref.Results[i])
				}
			}
		}
	}
}

func TestCampaignEpochModeZeroLatencyAndFullRecovery(t *testing.T) {
	// With boundary verification every detected fault is caught at its own
	// injection epoch (latency 0), and rollback recovery — the fault being
	// transient — must repair every detected trial.
	res, err := RunCoverage(epochCfg(600))
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected+res.Undetected != res.Trials {
		t.Errorf("Detected(%d) + Undetected(%d) != Trials(%d)", res.Detected, res.Undetected, res.Trials)
	}
	if res.Detected == 0 {
		t.Fatal("no detections: injection harness is broken")
	}
	if res.LatencyMax != 0 || res.LatencySum != 0 {
		t.Errorf("epoch-verified latency sum/max = %d/%d, want 0/0", res.LatencySum, res.LatencyMax)
	}
	if res.Recovered != res.Detected || res.Tainted != 0 {
		t.Errorf("Recovered=%d Tainted=%d, want every detection (%d) recovered",
			res.Recovered, res.Tainted, res.Detected)
	}
	if rate := res.RecoveryRate(); rate != 1.0 {
		t.Errorf("RecoveryRate = %v, want 1.0", rate)
	}
	if res.Retries == 0 {
		t.Error("recovered trials must have spent rollback retries")
	}
}

func TestCampaignEndOnlyVerifyHasLatency(t *testing.T) {
	// The paper's program-end placement detects at the final boundary: a
	// fault injected in epoch k surfaces with latency (E-1)-k > 0 whenever
	// k < E-1.
	cfg := epochCfg(400)
	cfg.EndOnlyVerify = true
	cfg.Recover = false
	res, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected == 0 {
		t.Fatal("no detections")
	}
	if res.LatencySum == 0 {
		t.Error("end-only verification should pay detection latency")
	}
	if res.LatencyMax >= cfg.Epochs {
		t.Errorf("LatencyMax = %d, must be < Epochs = %d", res.LatencyMax, cfg.Epochs)
	}
	if res.MeanDetectionLatency() <= 0 {
		t.Errorf("mean latency = %v", res.MeanDetectionLatency())
	}
	// Without the recovery supervisor a detected trial degrades (tainted).
	if res.Recovered != 0 || res.Tainted != res.Detected {
		t.Errorf("Recovered=%d Tainted=%d without recovery", res.Recovered, res.Tainted)
	}
}

func TestCampaignEpochMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := epochCfg(150)
	cfg.Metrics = reg
	res, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var latencyCount, recovered uint64
	for _, ms := range reg.Snapshot().Metrics {
		switch ms.Name {
		case "defuse_detection_latency_epochs":
			latencyCount += ms.Count
		case "defuse_recovery_recovered_total":
			recovered += uint64(ms.Value)
		}
	}
	if latencyCount != uint64(res.Detected) {
		t.Errorf("latency histogram count = %d, want Detected = %d", latencyCount, res.Detected)
	}
	if recovered != uint64(res.Recovered) {
		t.Errorf("recovered counter = %d, want %d", recovered, res.Recovered)
	}
}

func TestCampaignResumeMatchesUninterrupted(t *testing.T) {
	// Acceptance: a campaign resumed from a checkpoint must produce the same
	// final result as an uninterrupted run. Simulate the interruption by
	// dropping half the finished chunks from a completed checkpoint file.
	cells := []CoverageConfig{
		{Kind: checksum.ModAdd, Words: 100, BitFlips: 2, Pattern: Random, Trials: 2000, Seed: 21},
		epochCfg(300),
	}
	full, err := (&Campaign{Cells: cells}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ckpt.json")
	camp := &Campaign{Cells: cells, CheckpointPath: path, ChunkSize: 128}
	if _, err := camp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatal(err)
	}
	dropped := 0
	for ci := range cp.Cells {
		keep := cp.Cells[ci].Chunks[:0]
		for i, ch := range cp.Cells[ci].Chunks {
			if i%2 == 0 {
				keep = append(keep, ch)
			} else {
				dropped++
			}
		}
		cp.Cells[ci].Chunks = keep
	}
	if dropped == 0 {
		t.Fatal("test setup: nothing dropped")
	}
	trimmed, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, trimmed, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := (&Campaign{Cells: cells, CheckpointPath: path, ChunkSize: 128}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ResumedChunks == 0 {
		t.Error("resume did not restore any chunks")
	}
	for i := range full.Results {
		if !reflect.DeepEqual(resumed.Results[i], full.Results[i]) {
			t.Errorf("cell %d: resumed %+v != uninterrupted %+v", i, resumed.Results[i], full.Results[i])
		}
	}
}

func TestCampaignCancelCheckpointsAndResumes(t *testing.T) {
	// Cancel mid-run via the trace sink, then re-run to completion: the final
	// result must match an uninterrupted campaign exactly.
	cfg := CoverageConfig{
		Kind: checksum.ModAdd, Words: 100, BitFlips: 2, Pattern: Random,
		Trials: 4000, Seed: 31,
	}
	full, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	traced := cfg
	traced.Trace = cancelSink{n: &seen, at: 500, cancel: cancel}
	path := filepath.Join(t.TempDir(), "ckpt.json")
	camp := &Campaign{Cells: []CoverageConfig{traced}, CheckpointPath: path, ChunkSize: 100, Workers: 2}
	res, err := camp.Run(ctx)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected campaign error: %v", err)
		}
		if res == nil || res.Completed {
			t.Fatal("cancelled campaign must return a partial, incomplete result")
		}
	}

	resumed, err := (&Campaign{Cells: []CoverageConfig{cfg}, CheckpointPath: path, ChunkSize: 100}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Results[0], full) {
		t.Errorf("resumed %+v != uninterrupted %+v", resumed.Results[0], full)
	}
}

// cancelSink cancels a context once it has seen `at` events.
type cancelSink struct {
	n      *atomic.Int64
	at     int64
	cancel context.CancelFunc
}

func (s cancelSink) Emit(telemetry.Event) {
	if s.n.Add(1) == s.at {
		s.cancel()
	}
}

func (s cancelSink) Close() error { return nil }

func TestCampaignRejectsForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	a := CoverageConfig{Kind: checksum.ModAdd, Words: 64, BitFlips: 2, Pattern: Random, Trials: 300, Seed: 1}
	if _, err := (&Campaign{Cells: []CoverageConfig{a}, CheckpointPath: path}).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := a
	b.Seed = 2 // different campaign: its checkpoint must not be accepted
	_, err := (&Campaign{Cells: []CoverageConfig{b}, CheckpointPath: path}).Run(context.Background())
	if err == nil {
		t.Fatal("foreign checkpoint accepted")
	}
}

func TestCampaignTrialTimeoutAborts(t *testing.T) {
	// An impossibly small per-trial budget must abort the campaign with an
	// error rather than skew the tallies.
	camp := &Campaign{Cells: []CoverageConfig{epochCfg(50)}, TrialTimeout: time.Nanosecond}
	if _, err := camp.Run(context.Background()); err == nil {
		t.Fatal("expected per-trial timeout error")
	}
}

func TestCampaignValidatesCells(t *testing.T) {
	camp := &Campaign{}
	if _, err := camp.Run(context.Background()); err == nil {
		t.Error("empty campaign should fail")
	}
	camp = &Campaign{Cells: []CoverageConfig{{Kind: checksum.ModAdd}}}
	if _, err := camp.Run(context.Background()); err == nil {
		t.Error("invalid cell should fail")
	}
}

func TestCellReportShape(t *testing.T) {
	res, err := RunCoverage(epochCfg(100))
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Trials != 100 || rep.Epochs != 6 || !rep.Recover {
		t.Errorf("report = %+v", rep)
	}
	if rep.RecoverySuccessRate != res.RecoveryRate() {
		t.Errorf("report recovery rate %v != %v", rep.RecoverySuccessRate, res.RecoveryRate())
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"recovery_success_rate", "mean_detection_latency_epochs", "undetected_percent"} {
		if !json.Valid(raw) || !containsKey(raw, key) {
			t.Errorf("report JSON missing %q: %s", key, raw)
		}
	}
}

func containsKey(raw []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}
