package chaos

// The soak child: a full defused-shaped service in its own process, routed
// here through an environment variable the same way the crash campaign
// routes its children (faults.CrashChildEnv). Both cmd/defused and the chaos
// test binary hand control to SoakChildMain before doing anything else, so
// either can serve as the orchestrator's child executable.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"defuse/internal/server"
	"defuse/internal/wal"
	"defuse/telemetry"
)

// ChildEnv carries the JSON-encoded ChildSpec that re-routes a process into
// SoakChildMain.
const ChildEnv = "DEFUSE_SOAK_CHILD"

// ChildSpec tells a soak child exactly what to serve.
type ChildSpec struct {
	// WAL is the journal shared by every incarnation of the soak.
	WAL string `json:"wal"`
	// PortFile doubles as the readiness signal: written (atomically) only
	// once the journal is scanned and the listener is accepting.
	PortFile string `json:"port_file"`
	// ResumeFile receives the child's resume report — its own pre-open
	// journal verification plus what the server's startup scan found —
	// written before the port file, so readiness implies the report exists.
	ResumeFile string `json:"resume_file"`

	Words  int    `json:"words"`
	Epochs int    `json:"epochs"`
	Seed   uint64 `json:"seed"`
	Kernel string `json:"kernel,omitempty"`

	FaultRate float64 `json:"fault_rate"`
	FaultSeed uint64  `json:"fault_seed"`

	MaxInFlight       int `json:"max_inflight"`
	QueueDepth        int `json:"queue"`
	DegradeAfterSheds int `json:"degrade_after"`
	RecoverAfterOK    int `json:"recover_after"`

	SegmentBytes int64 `json:"segment_bytes"`
	MaxSegments  int   `json:"max_segments"`
	// WALFaults arms the fault-injecting file layer under the journal
	// (wal.NewFaultFS spec); empty runs on the real filesystem.
	WALFaults string `json:"wal_faults,omitempty"`
}

// ResumeReport is what a starting child leaves in ResumeFile: the disk as the
// child found it (its own read-only verification, before the server opened
// the journal) and the resume the server then performed. The orchestrator
// holds its own independent scan of the same bytes; any disagreement is a
// resume mismatch.
type ResumeReport struct {
	Stats server.JournalStats `json:"stats"`
	Info  server.ResumeInfo   `json:"info"`
}

// IsSoakChild reports whether this process was spawned as a soak child and
// must hand control to SoakChildMain before doing anything else.
func IsSoakChild() bool { return os.Getenv(ChildEnv) != "" }

// SoakChildMain runs the child side of a soak and never returns: the process
// either dies by the orchestrator's SIGKILL or exits after a SIGTERM-driven
// drain.
func SoakChildMain() {
	var spec ChildSpec
	if err := json.Unmarshal([]byte(os.Getenv(ChildEnv)), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "soak child: bad spec:", err)
		os.Exit(3)
	}
	if err := runSoakChild(spec); err != nil {
		fmt.Fprintln(os.Stderr, "soak child:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

func runSoakChild(spec ChildSpec) error {
	// The child's own view of the surviving disk, taken before the server
	// touches it. Damage on the active segment is tolerated and declared in
	// the stats; damage to sealed segments would fail here, exactly as the
	// server's own open would refuse it.
	rep := ResumeReport{}
	if _, err := os.Stat(spec.WAL); err == nil {
		stats, err := server.VerifyJournal(spec.WAL)
		if err != nil {
			return fmt.Errorf("pre-open verification: %w", err)
		}
		rep.Stats = stats
	}

	var fs wal.FS
	if spec.WALFaults != "" {
		ffs, err := wal.NewFaultFS(wal.OSFS, spec.WALFaults)
		if err != nil {
			return err
		}
		fs = ffs
	}
	health := telemetry.NewHealth()
	s, err := server.New(server.Config{
		Words: spec.Words, Epochs: spec.Epochs, Seed: spec.Seed,
		Kernel: spec.Kernel, Scale: 0.001,
		MaxInFlight: spec.MaxInFlight, QueueDepth: spec.QueueDepth,
		DegradeAfterSheds: spec.DegradeAfterSheds, RecoverAfterOK: spec.RecoverAfterOK,
		FaultRate: spec.FaultRate, FaultSeed: spec.FaultSeed,
		WALPath: spec.WAL, WALSegmentBytes: spec.SegmentBytes, WALMaxSegments: spec.MaxSegments,
		WALFS: fs,
		Obs:   &telemetry.Obs{Health: health, Metrics: telemetry.NewRegistry()},
	})
	if err != nil {
		return err
	}
	rep.Info = s.Resume()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()

	// The SIGTERM handler must be live before readiness is advertised: the
	// orchestrator may signal the instant the port file appears, and an
	// unregistered SIGTERM would kill the process at default disposition.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)

	raw, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(spec.ResumeFile, raw, 0o644); err != nil {
		return err
	}
	if err := wal.WriteFileAtomic(spec.PortFile, []byte(ln.Addr().String()), 0o644); err != nil {
		return err
	}
	<-term
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	derr := s.Drain(ctx)
	cancel()
	_ = hs.Close()
	if derr != nil {
		return fmt.Errorf("drain: %w", derr)
	}
	return nil
}
