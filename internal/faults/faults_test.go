package faults

import (
	"errors"
	"math/bits"
	"testing"

	"defuse/internal/checksum"
)

func TestPatternString(t *testing.T) {
	cases := map[Pattern]string{
		AllZero:    "all-0",
		AllOne:     "all-1",
		Random:     "random",
		Pattern(9): "faults.Pattern(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Pattern(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestFillPatterns(t *testing.T) {
	in := NewInjector(1)
	data := make([]uint64, 16)

	in.Fill(data, AllOne)
	for i, v := range data {
		if v != ^uint64(0) {
			t.Fatalf("AllOne: data[%d] = %#x", i, v)
		}
	}
	in.Fill(data, AllZero)
	for i, v := range data {
		if v != 0 {
			t.Fatalf("AllZero: data[%d] = %#x", i, v)
		}
	}
	in.Fill(data, Random)
	allSame := true
	for _, v := range data[1:] {
		if v != data[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("Random fill produced constant data")
	}
}

func TestFlipBitsFlipsExactlyK(t *testing.T) {
	in := NewInjector(2)
	for _, k := range []int{1, 2, 3, 6, 17} {
		data := make([]uint64, 8)
		flips := in.FlipBits(data, k)
		if len(flips) != k {
			t.Fatalf("k=%d: got %d flips", k, len(flips))
		}
		total := 0
		for _, v := range data {
			total += bits.OnesCount64(v)
		}
		if total != k {
			t.Errorf("k=%d: %d bits set after flipping zeros", k, total)
		}
	}
}

func TestFlipBitsDistinctPositions(t *testing.T) {
	in := NewInjector(3)
	data := make([]uint64, 2)
	flips := in.FlipBits(data, 100) // 100 of 128 bits: collisions must be retried
	seen := map[[2]int]bool{}
	for _, f := range flips {
		key := [2]int{f.Word, f.Bit}
		if seen[key] {
			t.Fatalf("duplicate flip at %v", key)
		}
		seen[key] = true
	}
}

func TestFlipBitsPanicsWhenTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	in := NewInjector(4)
	in.FlipBits(make([]uint64, 1), 65)
}

func TestFlipBitsInWord(t *testing.T) {
	in := NewInjector(5)
	for k := 1; k <= 6; k++ {
		v := in.Uint64()
		c := in.FlipBitsInWord(v, k)
		if d := bits.OnesCount64(v ^ c); d != k {
			t.Errorf("k=%d: hamming distance %d", k, d)
		}
	}
}

func TestWrongAddressNeverReturnsSameIndex(t *testing.T) {
	in := NewInjector(6)
	for i := 0; i < 1000; i++ {
		idx := in.Intn(10)
		j, err := in.WrongAddress(idx, 10)
		if err != nil {
			t.Fatalf("WrongAddress: %v", err)
		}
		if j == idx {
			t.Fatal("WrongAddress returned the intended index")
		}
	}
}

// TestWrongAddressTinyMemory: a 1-word region has no wrong location; the
// injector reports a typed error (tallied as a skip by campaign cells)
// instead of panicking a worker.
func TestWrongAddressTinyMemory(t *testing.T) {
	for _, n := range []int{0, 1} {
		j, err := NewInjector(7).WrongAddress(0, n)
		var tooSmall *ErrRegionTooSmall
		if !errors.As(err, &tooSmall) {
			t.Fatalf("n=%d: error %v, want *ErrRegionTooSmall", n, err)
		}
		if tooSmall.Words != n {
			t.Fatalf("n=%d: error reports %d words", n, tooSmall.Words)
		}
		if j != 0 {
			t.Fatalf("n=%d: index %d, want the intended index back", n, j)
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	a, b := NewInjector(42), NewInjector(42)
	da, db := make([]uint64, 32), make([]uint64, 32)
	a.Fill(da, Random)
	b.Fill(db, Random)
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("same seed produced different data")
		}
	}
	fa := a.FlipBits(da, 5)
	fb := b.FlipBits(db, 5)
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatal("same seed produced different flips")
		}
	}
}

// mustCell runs a Table 1 cell, failing the test on configuration errors.
func mustCell(tb testing.TB, words, flips int, p Pattern, dual bool, trials int, seed int64) CoverageResult {
	tb.Helper()
	r, err := Table1Cell(words, flips, p, dual, trials, seed)
	if err != nil {
		tb.Fatalf("Table1Cell: %v", err)
	}
	return r
}

func TestCoverageSingleBitAlwaysDetected(t *testing.T) {
	// 1-bit errors are always caught (paper Section 6.1); the experiment for
	// k=1 must therefore report zero undetected for every pattern and scheme.
	for _, p := range []Pattern{AllZero, AllOne, Random} {
		for _, dual := range []bool{false, true} {
			r := mustCell(t, 128, 1, p, dual, 2000, 11)
			if r.Undetected != 0 {
				t.Errorf("pattern=%v dual=%v: %d single-bit errors escaped", p, dual, r.Undetected)
			}
		}
	}
}

func TestCoverageTwoBitConstantPatternShape(t *testing.T) {
	// For all-0/all-1 data, two flips escape a single modadd checksum only in
	// the rare carry-aligned case; the rate must be well under 1% and the
	// dual scheme must do at least as well.
	for _, p := range []Pattern{AllZero, AllOne} {
		single := mustCell(t, 100, 2, p, false, 20000, 12)
		dual := mustCell(t, 100, 2, p, true, 20000, 12)
		if pct := single.UndetectedPercent(); pct > 1.0 {
			t.Errorf("%v single: %.3f%% undetected, want < 1%%", p, pct)
		}
		if dual.Undetected > single.Undetected {
			t.Errorf("%v: dual scheme (%d) worse than single (%d)", p, dual.Undetected, single.Undetected)
		}
	}
}

func TestCoverageRandomWorstForSingleChecksum(t *testing.T) {
	// Table 1: random data has the highest 2-bit escape rate under one
	// checksum (~0.76%), far above the constant patterns (~0.014-0.025%).
	rand2 := mustCell(t, 100, 2, Random, false, 30000, 13)
	zero2 := mustCell(t, 100, 2, AllZero, false, 30000, 13)
	if rand2.Undetected <= zero2.Undetected {
		t.Errorf("random (%d) should escape more than all-zero (%d)", rand2.Undetected, zero2.Undetected)
	}
	pct := rand2.UndetectedPercent()
	if pct < 0.3 || pct > 1.5 {
		t.Errorf("2-bit random escape rate %.3f%%, expected around 0.76%%", pct)
	}
}

func TestCoverageDualCatchesNearlyAll(t *testing.T) {
	// Table 1 "Two checksums": 3+ bit flips are fully detected; 2-bit random
	// escapes drop to ~0.02%.
	r3 := mustCell(t, 100, 3, Random, true, 20000, 14)
	if r3.Undetected != 0 {
		t.Errorf("3-bit flips with two checksums: %d escaped", r3.Undetected)
	}
	r2 := mustCell(t, 100, 2, Random, true, 50000, 14)
	if pct := r2.UndetectedPercent(); pct > 0.2 {
		t.Errorf("2-bit random with two checksums: %.3f%% undetected, want ~0.02%%", pct)
	}
}

func TestCoverageEscapeRateDropsWithMoreFlips(t *testing.T) {
	// The escape percentage approaches zero as flips increase (Section 6.1).
	two := mustCell(t, 100, 2, Random, false, 20000, 15).Undetected
	four := mustCell(t, 100, 4, Random, false, 20000, 15).Undetected
	six := mustCell(t, 100, 6, Random, false, 20000, 15).Undetected
	if !(two >= four && four >= six) {
		t.Errorf("escape counts should be non-increasing in flips: 2→%d 4→%d 6→%d", two, four, six)
	}
}

func TestCoverageResultString(t *testing.T) {
	r := mustCell(t, 100, 2, Random, true, 100, 16)
	if r.String() == "" {
		t.Error("empty result string")
	}
	if r.Trials != 100 {
		t.Errorf("Trials = %d", r.Trials)
	}
}

func TestRunCoverageRejectsInvalidConfig(t *testing.T) {
	// Satellite: degenerate configurations surface as errors, not as panics
	// or NaN percentages deep inside a campaign.
	for _, cfg := range []CoverageConfig{
		{Kind: checksum.ModAdd, Words: 0, BitFlips: 2, Trials: 1},
		{Kind: checksum.ModAdd, Words: 10, BitFlips: 2, Trials: 0},
		{Kind: checksum.ModAdd, Words: 10, BitFlips: 0, Trials: 1},
		{Kind: checksum.ModAdd, Words: 1, BitFlips: 65, Trials: 1},
		{Kind: checksum.ModAdd, Words: 10, BitFlips: 2, Trials: 1, Epochs: -1},
		{Kind: checksum.ModAdd, Words: 10, BitFlips: 2, Trials: 1, Recover: true},
		{Kind: checksum.ModAdd, Words: 10, BitFlips: 2, Trials: 1, EndOnlyVerify: true},
		{Kind: checksum.ModAdd, Words: 10, BitFlips: 2, Trials: 1, Epochs: 4, Dual: true},
	} {
		if _, err := RunCoverage(cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
}

func TestCoverageXOROperatorWeakerThanModAdd(t *testing.T) {
	// Section 5 cites Maxino: integer addition has superior fault coverage to
	// XOR. Aligned 2-bit flips of opposite polarity always cancel under XOR
	// on random data, so its escape rate should exceed modadd's.
	xor, err := RunCoverage(CoverageConfig{Kind: checksum.XOR, Words: 100, BitFlips: 2, Pattern: Random, Trials: 30000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	add, err := RunCoverage(CoverageConfig{Kind: checksum.ModAdd, Words: 100, BitFlips: 2, Pattern: Random, Trials: 30000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if xor.Undetected <= add.Undetected {
		t.Errorf("xor (%d) should escape more than modadd (%d)", xor.Undetected, add.Undetected)
	}
}

func BenchmarkCoverage2BitRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := mustCell(b, 100, 2, Random, false, 100, int64(i))
		sink = r.Undetected
	}
}

var sink int
