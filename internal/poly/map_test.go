package poly

import "testing"

// choleskyFlow builds the paper's flow dependence
// { S1[j] -> S2[j',i] : j' = j and 0 <= j <= n-1 and j+1 <= i <= n-1 }.
func choleskyFlow() BasicMap {
	m := NewBasicMap("S1", []string{"j"}, "S2", []string{"j'", "i"})
	j, jp2, i, n := V("j"), V("j'"), V("i"), V("n")
	return m.With(
		Eq(jp2, j),
		Ge(j, L(0)), Le(j, n.AddConst(-1)),
		Ge(i, j.AddConst(1)), Le(i, n.AddConst(-1)),
	)
}

func TestBasicMapApplyPaperExample(t *testing.T) {
	// Section 3.1: applying D_flow to the source iteration {S1[10]} yields
	// { S2[10,i] : 11 <= i <= n-1 }.
	d := choleskyFlow()
	src := NewBasicSet("S1", "j").With(Eq(V("j"), L(10)))
	img, exact := d.Apply(src)
	if !exact {
		t.Fatal("apply should be exact")
	}
	if img.Tuple != "S2" || len(img.Dims) != 2 {
		t.Fatalf("image space = %s%v", img.Tuple, img.Dims)
	}
	for _, tc := range []struct {
		jp, i, n int64
		want     bool
	}{
		{10, 11, 20, true},
		{10, 19, 20, true},
		{10, 20, 20, false}, // i <= n-1
		{10, 10, 20, false}, // i >= j+1
		{9, 11, 20, false},  // j' pinned to 10
	} {
		env := map[string]int64{img.Dims[0]: tc.jp, img.Dims[1]: tc.i, "n": tc.n}
		if got := img.Contains(env); got != tc.want {
			t.Errorf("(j'=%d,i=%d,n=%d): Contains = %v, want %v", tc.jp, tc.i, tc.n, got, tc.want)
		}
	}
}

func TestBasicMapApplyParameterized(t *testing.T) {
	// Algorithm 1 parameterizes the source: { S1[j] : j = jp }. The image
	// must be { S2[jp,i] : 0 <= jp <= n-1 and jp+1 <= i <= n-1 } with jp as
	// a parameter.
	d := choleskyFlow()
	src := NewBasicSet("S1", "j").With(Eq(V("j"), V("jp")))
	img, exact := d.Apply(src)
	if !exact {
		t.Fatal("apply should be exact")
	}
	if img.Contains(map[string]int64{img.Dims[0]: 3, img.Dims[1]: 3, "jp": 3, "n": 10}) {
		t.Error("i=jp should be excluded")
	}
	if !img.Contains(map[string]int64{img.Dims[0]: 3, img.Dims[1]: 4, "jp": 3, "n": 10}) {
		t.Error("i=jp+1 should be included")
	}
}

func TestBasicMapDomainRange(t *testing.T) {
	d := choleskyFlow()
	dom, exact := d.Domain()
	if !exact {
		t.Fatal("domain projection inexact")
	}
	// Domain is { S1[j] : 0 <= j <= n-2 } (needs a target i).
	if !dom.Contains(map[string]int64{"j": 0, "n": 3}) || dom.Contains(map[string]int64{"j": 2, "n": 3}) {
		t.Errorf("domain wrong: %v", dom)
	}
	rng, exact := d.Range()
	if !exact {
		t.Fatal("range projection inexact")
	}
	if !rng.Contains(map[string]int64{rng.Dims[0]: 0, rng.Dims[1]: 1, "n": 3}) {
		t.Errorf("range wrong: %v", rng)
	}
}

func TestBasicMapReverse(t *testing.T) {
	d := choleskyFlow()
	r := d.Reverse()
	if r.InTuple != "S2" || r.OutTuple != "S1" || len(r.In) != 2 || len(r.Out) != 1 {
		t.Fatalf("reverse structure wrong: %v", r)
	}
	env := map[string]int64{"j": 2, "j'": 2, "i": 5, "n": 10}
	if !d.ContainsPair(env) || !r.ContainsPair(env) {
		t.Error("reverse changed the constraint semantics")
	}
}

func TestMapUnionApply(t *testing.T) {
	// Two dependences from the same source statement to different targets.
	m1 := NewBasicMap("W", []string{"t"}, "R1", []string{"u"}).With(Eq(V("u"), V("t")))
	m2 := NewBasicMap("W", []string{"t"}, "R2", []string{"v"}).With(Eq(V("v"), V("t").AddConst(1)))
	um := UnionMap(m1, m2)
	src := UnionSet(NewBasicSet("W", "t").With(Eq(V("t"), L(5))))
	img, exact := um.Apply(src)
	if !exact {
		t.Fatal("apply inexact")
	}
	if len(img.Pieces) != 2 {
		t.Fatalf("expected 2 image pieces, got %d", len(img.Pieces))
	}
	foundR1, foundR2 := false, false
	for _, p := range img.Pieces {
		switch p.Tuple {
		case "R1":
			foundR1 = p.Contains(map[string]int64{p.Dims[0]: 5})
		case "R2":
			foundR2 = p.Contains(map[string]int64{p.Dims[0]: 6})
		}
	}
	if !foundR1 || !foundR2 {
		t.Error("union apply missed a target piece")
	}
}

func TestMapApplySkipsMismatchedTuples(t *testing.T) {
	m := UnionMap(NewBasicMap("A", []string{"x"}, "B", []string{"y"}).With(Eq(V("y"), V("x"))))
	s := UnionSet(NewBasicSet("C", "z")) // different tuple name
	img, _ := m.Apply(s)
	if len(img.Pieces) != 0 {
		t.Error("apply should skip tuple-mismatched pieces")
	}
}

func TestWrapUnwrap(t *testing.T) {
	d := choleskyFlow()
	w := d.Wrap()
	if len(w.Dims) != 3 {
		t.Fatalf("wrapped dims = %v", w.Dims)
	}
	u := UnwrapInto(w, NewBasicMap("S1", []string{"a"}, "S2", []string{"b", "c"}))
	env := map[string]int64{"a": 2, "b": 2, "c": 5, "n": 10}
	if !u.ContainsPair(env) {
		t.Error("unwrap lost constraints")
	}
	env["c"] = 2
	if u.ContainsPair(env) {
		t.Error("unwrap gained points")
	}
}

func TestBasicMapEmpty(t *testing.T) {
	m := NewBasicMap("A", []string{"x"}, "B", []string{"y"}).
		With(Eq(V("y"), V("x")), Ge(V("x"), L(5)), Le(V("x"), L(3)))
	empty, exact := m.IsEmpty()
	if !empty || !exact {
		t.Errorf("IsEmpty = %v,%v", empty, exact)
	}
}

func TestNewBasicMapCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on in/out name collision")
		}
	}()
	NewBasicMap("A", []string{"x"}, "B", []string{"x"})
}

func TestMapString(t *testing.T) {
	d := choleskyFlow()
	s := d.String()
	if s == "" || s[0] != '{' {
		t.Errorf("String() = %q", s)
	}
	if got := UnionMap().String(); got != "{ }" {
		t.Errorf("empty map String() = %q", got)
	}
}

func TestApplyFreshNamesAvoidCapture(t *testing.T) {
	// The set's parameter "n" must not be captured by a map dim named "n".
	m := NewBasicMap("A", []string{"n"}, "B", []string{"y"}).With(Eq(V("y"), V("n")))
	s := NewBasicSet("A", "x").With(Ge(V("x"), V("n")), Le(V("x"), V("n"))) // x == n (parameter!)
	img, exact := m.Apply(s)
	if !exact {
		t.Fatal("apply inexact")
	}
	// Image should be { B[y] : y = n } with n remaining a free parameter.
	if !img.Contains(map[string]int64{"y": 7, "n": 7}) {
		t.Errorf("capture bug: image = %v", img)
	}
	if img.Contains(map[string]int64{"y": 7, "n": 8}) {
		t.Errorf("image ignores parameter: %v", img)
	}
}
