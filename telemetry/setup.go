package telemetry

import (
	"fmt"
	"sync"
)

// ObsConfig selects the observability outputs a CLI was asked for. Every
// field is optional; the zero config yields a fully inert Obs whose
// components are all nil, which every telemetry entry point tolerates.
type ObsConfig struct {
	// TracePath writes JSONL events (spans included, as EvSpan events).
	TracePath string
	// MetricsPath writes the registry at Finish (.json or Prometheus text).
	MetricsPath string
	// FlightPath arms the flight recorder: the ring dumps there
	// automatically on the default triggers (fault detection, detector-fault
	// latch, checkpoint corruption, WAL corruption) and on Finish/Flush.
	FlightPath string
	// ChromePath writes the span buffer as Chrome trace-event JSON
	// (Perfetto-loadable) at Finish.
	ChromePath string
	// ServeAddr starts the live HTTP endpoint (host:port; port 0 picks one).
	ServeAddr string
	// FlightSize overrides the ring capacity (default DefaultFlightSize).
	FlightSize int
	// SpanCap overrides the span buffer capacity (default DefaultSpanCap).
	SpanCap int
	// Health supplies the liveness/readiness state served at /healthz and
	// /readyz. Nil with ServeAddr set creates a default (immediately ready)
	// Health — right for batch CLIs; a resident service passes its own,
	// marked unready, and flips it after warmup.
	Health *Health
}

// Obs bundles the observability components behind a CLI's flags: the event
// sink (JSONL and/or flight ring), the metrics registry, the span tracer,
// and the live HTTP server. Components not asked for are nil; instrumented
// code threads them without guards.
type Obs struct {
	Sink    Sink
	Metrics *Registry
	Tracer  *Tracer
	Flight  *FlightRecorder
	Spans   *SpanBuffer
	Server  *Server
	Health  *Health

	cfg        ObsConfig
	jsonl      *JSONLSink
	finishOnce sync.Once
	finishErr  error
}

// SetupObs opens everything cfg asks for. On error nothing is left open.
// Call Finish on every exit path; Flush is safe mid-run (signal handlers).
func SetupObs(cfg ObsConfig) (*Obs, error) {
	o := &Obs{cfg: cfg}
	if cfg.TracePath != "" {
		s, err := OpenJSONLFile(cfg.TracePath)
		if err != nil {
			return nil, err
		}
		o.jsonl = s
	}
	if cfg.MetricsPath != "" || cfg.ServeAddr != "" {
		o.Metrics = NewRegistry()
	}
	if cfg.FlightPath != "" || cfg.ServeAddr != "" {
		o.Flight = NewFlightRecorder(cfg.FlightSize)
		if cfg.FlightPath != "" {
			o.Flight.SetDump(cfg.FlightPath)
		}
	}
	if cfg.ChromePath != "" || cfg.ServeAddr != "" {
		o.Spans = NewSpanBuffer(cfg.SpanCap)
	}
	// Interface conversions must be guarded: a typed-nil *JSONLSink inside a
	// Sink interface would defeat Multi's nil filtering.
	var evJSONL Sink
	if o.jsonl != nil {
		evJSONL = o.jsonl
	}
	var evFlight Sink
	if o.Flight != nil {
		evFlight = o.Flight
	}
	o.Sink = Multi(evJSONL, evFlight)
	var spanJSONL, spanBuf, spanFlight SpanSink
	if o.jsonl != nil {
		spanJSONL = SpanEvents(o.jsonl)
	}
	if o.Spans != nil {
		spanBuf = o.Spans
	}
	if o.Flight != nil {
		spanFlight = o.Flight
	}
	if spanSink := MultiSpan(spanJSONL, spanBuf, spanFlight); spanSink != nil {
		o.Tracer = NewTracer(spanSink)
	}
	o.Health = cfg.Health
	if cfg.ServeAddr != "" {
		if o.Health == nil {
			o.Health = NewHealth()
		}
		o.Health.BindGauge(o.Metrics)
		srv, err := Serve(cfg.ServeAddr, o.Metrics, o.Flight, o.Spans, o.Health)
		if err != nil {
			if o.jsonl != nil {
				o.jsonl.Close()
			}
			return nil, err
		}
		o.Server = srv
	}
	return o, nil
}

// Flush persists current state without closing anything: the JSONL buffer is
// flushed, the flight ring is dumped (trigger "signal") if a dump path is
// armed and no automatic trigger has fired yet, and the metrics and Chrome
// trace files are (re)written. It is what the signal handler runs on skipped
// signals so even a later SIGKILL leaves artifacts behind.
func (o *Obs) Flush() error {
	if o == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if first == nil {
			first = err
		}
	}
	if o.jsonl != nil {
		keep(o.jsonl.Flush())
	}
	if o.Flight != nil && o.cfg.FlightPath != "" {
		if _, dumped := o.Flight.Dumped(); !dumped {
			keep(o.Flight.DumpTo(o.cfg.FlightPath, "signal"))
		}
	}
	if o.Metrics != nil && o.cfg.MetricsPath != "" {
		keep(o.Metrics.WriteMetricsFile(o.cfg.MetricsPath))
	}
	if o.Spans != nil && o.cfg.ChromePath != "" {
		keep(o.Spans.WriteChromeTraceFile(o.cfg.ChromePath))
	}
	return first
}

// Finish drains and closes everything: the flight ring is dumped (trigger
// "exit") unless an automatic trigger already wrote the postmortem, the
// Chrome trace and metrics files are written, the event sink is closed, and
// the HTTP server is shut down. It is idempotent — the first call does the
// work and later calls return its result — so the normal exit path and a
// racing signal handler can both call it without double-closing sinks.
func (o *Obs) Finish() error {
	if o == nil {
		return nil
	}
	o.finishOnce.Do(func() { o.finishErr = o.finish() })
	return o.finishErr
}

func (o *Obs) finish() error {
	var first error
	keep := func(err error) {
		if first == nil {
			first = err
		}
	}
	if o.Flight != nil && o.cfg.FlightPath != "" {
		if _, dumped := o.Flight.Dumped(); !dumped {
			keep(o.Flight.DumpTo(o.cfg.FlightPath, "exit"))
		}
	}
	if o.Metrics != nil && o.cfg.MetricsPath != "" {
		keep(o.Metrics.WriteMetricsFile(o.cfg.MetricsPath))
	}
	if o.Spans != nil && o.cfg.ChromePath != "" {
		keep(o.Spans.WriteChromeTraceFile(o.cfg.ChromePath))
		if d := o.Spans.Dropped(); d > 0 {
			keep(fmt.Errorf("telemetry: span buffer overflowed, %d spans dropped from %s", d, o.cfg.ChromePath))
		}
	}
	if o.Sink != nil {
		keep(o.Sink.Close())
	}
	if o.Server != nil {
		keep(o.Server.Close())
	}
	return first
}
