// Package bench reproduces the paper's evaluation (Section 6.2): the ten
// benchmarks of Table 2 (affine PLUTO kernels plus the irregular CG and
// moldyn), compiled in three variants — Original, Resilient (Algorithm 3
// instrumentation), and Resilient-Optimized (index-set splitting + inspector
// hoisting) — and measured for overhead (Figure 10) and under the hardware
// checksum-unit cost model (Figure 11).
package bench

import (
	"fmt"
	"math/rand"

	"defuse/internal/lang"
)

// DataHost is the backend-independent data-initialization surface: the
// subset of the machine API a benchmark's Init needs, satisfied by both
// interp.Machine and codegen.Machine so the same seeding code feeds the
// interpreter and the native backend with bit-identical inputs.
type DataHost interface {
	SetFloat(name string, v float64, idx ...int64) error
	SetInt(name string, v int64, idx ...int64) error
	FillFloat(name string, gen func(flat int64) float64) error
	FillInt(name string, gen func(flat int64) int64) error
}

// Benchmark describes one Table 2 entry.
type Benchmark struct {
	Name        string
	Description string
	Source      string
	// Irregular marks the benchmarks with data-dependent accesses (CG,
	// moldyn in the paper).
	Irregular bool
	// ParallelSafe marks kernels whose outermost-loop iterations write
	// disjoint memory words (dsyrk writes row C[i][*], strsm column B[*][j],
	// with the other operand read-only), so row-blocks can run on the
	// interpreter's parallel executor without data races.
	ParallelSafe bool
	// Params returns the parameter assignment for a scale factor in (0, 1];
	// scale 1 approximates the paper's problem sizes, the default harness
	// scale keeps interpreter runs fast.
	Params func(scale float64) map[string]int64
	// Init seeds the machine's arrays and scalars from rng; InitDefault
	// supplies the benchmark's historical Seed for reproducible defaults,
	// and differential harnesses pass their own streams to vary the data.
	Init func(m DataHost, params map[string]int64, rng *rand.Rand)
	// Seed is the benchmark's default data seed (used by InitDefault).
	Seed int64
	// PaperSize is Table 2's problem-size string.
	PaperSize string
}

const adiSrc = `
program adi(tsteps, n)
float X[n][n], A[n][n], B[n][n];
for t = 0 to tsteps - 1 {
  for i1 = 0 to n - 1 {
    for i2 = 1 to n - 1 {
      S1: X[i1][i2] = X[i1][i2] - X[i1][i2 - 1] * A[i1][i2] / B[i1][i2 - 1];
      S2: B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2 - 1];
    }
  }
  for i1 = 0 to n - 1 {
    S3: X[i1][n - 1] = X[i1][n - 1] / B[i1][n - 1];
  }
  for i1 = 0 to n - 1 {
    for i2 = 0 to n - 3 {
      S4: X[i1][n - i2 - 2] = (X[i1][n - 2 - i2] - X[i1][n - 2 - i2 - 1] * A[i1][n - i2 - 3]) / B[i1][n - 3 - i2];
    }
  }
  for i1 = 1 to n - 1 {
    for i2 = 0 to n - 1 {
      S5: X[i1][i2] = X[i1][i2] - X[i1 - 1][i2] * A[i1][i2] / B[i1 - 1][i2];
      S6: B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1 - 1][i2];
    }
  }
  for i2 = 0 to n - 1 {
    S7: X[n - 1][i2] = X[n - 1][i2] / B[n - 1][i2];
  }
  for i1 = 0 to n - 3 {
    for i2 = 0 to n - 1 {
      S8: X[n - 2 - i1][i2] = (X[n - 2 - i1][i2] - X[n - i1 - 3][i2] * A[n - 3 - i1][i2]) / B[n - 2 - i1][i2];
    }
  }
}
`

const cgSrc = `
program cg(n, k, maxiter)
float Aval[n][k], p[n], q[n], x[n], r[n];
float alpha, beta, rnorm, rnorm_new, pq;
int cols[n][k];
int iter;
iter = 0;
while (iter < maxiter) {
  for i0 = 0 to n - 1 {
    S0: q[i0] = 0.0;
  }
  for i1 = 0 to n - 1 {
    for j1 = 0 to k - 1 {
      S1: q[i1] += Aval[i1][j1] * p[cols[i1][j1]];
    }
  }
  pq = 0.0;
  for i2 = 0 to n - 1 {
    S2: pq += p[i2] * q[i2];
  }
  alpha = rnorm / pq;
  for i3 = 0 to n - 1 {
    S3: x[i3] = x[i3] + alpha * p[i3];
  }
  for i4 = 0 to n - 1 {
    S4: r[i4] = r[i4] - alpha * q[i4];
  }
  rnorm_new = 0.0;
  for i5 = 0 to n - 1 {
    S5: rnorm_new += r[i5] * r[i5];
  }
  beta = rnorm_new / rnorm;
  rnorm = rnorm_new;
  for i6 = 0 to n - 1 {
    S6: p[i6] = r[i6] + beta * p[i6];
  }
  iter = iter + 1;
}
`

const choleskySrc = `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

const dsyrkSrc = `
program dsyrk(n, m)
float C[n][n], A[n][m];
for i = 0 to n - 1 {
  for j = 0 to n - 1 {
    for k = 0 to m - 1 {
      S1: C[i][j] = C[i][j] + A[i][k] * A[j][k];
    }
  }
}
`

const jacobi1dSrc = `
program jacobi1d(tsteps, n)
float A[n], B[n];
for t = 0 to tsteps - 1 {
  for i = 1 to n - 2 {
    S1: B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3.0;
  }
  for i = 1 to n - 2 {
    S2: A[i] = B[i];
  }
}
`

const luSrc = `
program lu(n)
float A[n][n];
for k = 0 to n - 1 {
  for j = k + 1 to n - 1 {
    S1: A[k][j] = A[k][j] / A[k][k];
  }
  for i = k + 1 to n - 1 {
    for j = k + 1 to n - 1 {
      S2: A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}
`

const moldynSrc = `
program moldyn(n, k, maxiter)
float x[n], f[n], cutoff, dt;
int neigh[n][k];
int iter, stride;
iter = 0;
while (iter < maxiter) {
  stride = stride + 1;
  for i0 = 0 to n - 1 {
    for k0 = 0 to k - 1 {
      S0: neigh[i0][k0] = (i0 + k0 * stride) % n;
    }
  }
  for i1 = 0 to n - 1 {
    S1: f[i1] = 0.0;
  }
  for i2 = 0 to n - 1 {
    for k2 = 0 to k - 1 {
      S2: f[i2] = f[i2] + min(cutoff, x[neigh[i2][k2]] - x[i2]);
    }
  }
  for i3 = 0 to n - 1 {
    S3: x[i3] = x[i3] + f[i3] * dt;
  }
  iter = iter + 1;
}
`

const seidelSrc = `
program seidel(tsteps, n)
float A[n][n];
for t = 0 to tsteps - 1 {
  for i = 1 to n - 2 {
    for j = 1 to n - 2 {
      S1: A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1] + A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
    }
  }
}
`

const strsmSrc = `
program strsm(n, m)
float L[n][n], B[n][m];
for j = 0 to m - 1 {
  for i = 0 to n - 1 {
    for k = 0 to i - 1 {
      S1: B[i][j] = B[i][j] - L[i][k] * B[k][j];
    }
    S2: B[i][j] = B[i][j] / L[i][i];
  }
}
`

const trisolvSrc = `
program trisolv(n)
float L[n][n], x[n], b[n];
for i = 0 to n - 1 {
  S1: x[i] = b[i];
  for j = 0 to i - 1 {
    S2: x[i] = x[i] - L[i][j] * x[j];
  }
  S3: x[i] = x[i] / L[i][i];
}
`

func scaleInt(base int64, scale float64, min int64) int64 {
	v := int64(float64(base) * scale)
	if v < min {
		v = min
	}
	return v
}

// Suite returns the Table 2 benchmarks in the paper's order.
func Suite() []*Benchmark {
	return []*Benchmark{
		{
			Name: "ADI", Description: "Alternating direction implicit solver",
			Source: adiSrc, PaperSize: "TSteps = 500, N = 3000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"tsteps": scaleInt(500, s, 2), "n": scaleInt(3000, s, 8)}
			},
			Seed: 101,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				must(m.FillFloat("X", func(i int64) float64 { return rng.Float64() }))
				must(m.FillFloat("A", func(i int64) float64 { return 0.1 + 0.1*rng.Float64() }))
				must(m.FillFloat("B", func(i int64) float64 { return 2.0 + rng.Float64() }))
			},
		},
		{
			Name: "CG", Description: "Conjugate gradient", Irregular: true,
			Source: cgSrc, PaperSize: "TSteps = 1500, NZ = 513072",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"n": scaleInt(3000, s, 8), "k": 8, "maxiter": scaleInt(1500, s, 2)}
			},
			Seed: 102,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				n, k := p["n"], p["k"]
				must(m.FillFloat("Aval", func(i int64) float64 { return 0.5 + rng.Float64() }))
				must(m.FillInt("cols", func(i int64) int64 { return rng.Int63n(n) }))
				rn := 0.0
				for i := int64(0); i < n; i++ {
					v := 1 + rng.Float64()
					must(m.SetFloat("p", v, i))
					must(m.SetFloat("r", v, i))
					rn += v * v
				}
				must(m.SetFloat("rnorm", rn))
				_ = k
			},
		},
		{
			Name: "cholesky", Description: "Cholesky decomposition",
			Source: choleskySrc, PaperSize: "N = 3000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"n": scaleInt(3000, s, 8)}
			},
			Seed: 103,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				n := p["n"]
				must(m.FillFloat("A", func(i int64) float64 { return 0.2 * rng.Float64() }))
				for d := int64(0); d < n; d++ {
					must(m.SetFloat("A", float64(n)+rng.Float64(), d, d))
				}
			},
		},
		{
			Name: "dsyrk", Description: "Symmetric rank-k update",
			Source: dsyrkSrc, PaperSize: "N = 3000", ParallelSafe: true,
			Params: func(s float64) map[string]int64 {
				n := scaleInt(3000, s, 8)
				return map[string]int64{"n": n, "m": n}
			},
			Seed: 104,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				must(m.FillFloat("C", func(i int64) float64 { return rng.Float64() }))
				must(m.FillFloat("A", func(i int64) float64 { return rng.Float64() }))
			},
		},
		{
			Name: "jacobi1d", Description: "1-D Jacobi stencil computation",
			Source: jacobi1dSrc, PaperSize: "TSteps = 100000, N = 400000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"tsteps": scaleInt(100000, s, 2), "n": scaleInt(400000, s, 8)}
			},
			Seed: 105,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				must(m.FillFloat("A", func(i int64) float64 { return rng.Float64() * 100 }))
			},
		},
		{
			Name: "LU", Description: "LU decomposition",
			Source: luSrc, PaperSize: "N = 3000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"n": scaleInt(3000, s, 8)}
			},
			Seed: 106,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				n := p["n"]
				must(m.FillFloat("A", func(i int64) float64 { return 0.1 * rng.Float64() }))
				for d := int64(0); d < n; d++ {
					must(m.SetFloat("A", float64(n)+1+rng.Float64(), d, d))
				}
			},
		},
		{
			Name: "moldyn", Description: "Molecular dynamics", Irregular: true,
			Source: moldynSrc, PaperSize: "TSteps = 100000, N = 400000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"n": scaleInt(400000, s, 8), "k": 6, "maxiter": scaleInt(100, s, 5)}
			},
			Seed: 107,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				must(m.FillFloat("x", func(i int64) float64 { return rng.Float64() * 10 }))
				must(m.SetFloat("cutoff", 2.5))
				must(m.SetFloat("dt", 0.0001))
			},
		},
		{
			Name: "seidel", Description: "2-D seidel stencil",
			Source: seidelSrc, PaperSize: "TSteps = 500, N = 3000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"tsteps": scaleInt(500, s, 2), "n": scaleInt(3000, s, 8)}
			},
			Seed: 108,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				must(m.FillFloat("A", func(i int64) float64 { return rng.Float64() * 50 }))
			},
		},
		{
			Name: "strsm", Description: "Triangular matrix equations solver",
			Source: strsmSrc, PaperSize: "N = 3000", ParallelSafe: true,
			Params: func(s float64) map[string]int64 {
				n := scaleInt(3000, s, 8)
				return map[string]int64{"n": n, "m": n}
			},
			Seed: 109,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				n := p["n"]
				must(m.FillFloat("L", func(i int64) float64 { return 0.05 * rng.Float64() }))
				for d := int64(0); d < n; d++ {
					must(m.SetFloat("L", 2+rng.Float64(), d, d))
				}
				must(m.FillFloat("B", func(i int64) float64 { return rng.Float64() }))
			},
		},
		{
			Name: "trisolv", Description: "Triangular system of linear equations solver",
			Source: trisolvSrc, PaperSize: "N = 3000",
			Params: func(s float64) map[string]int64 {
				return map[string]int64{"n": scaleInt(3000, s, 8)}
			},
			Seed: 110,
			Init: func(m DataHost, p map[string]int64, rng *rand.Rand) {
				n := p["n"]
				must(m.FillFloat("L", func(i int64) float64 { return 0.05 * rng.Float64() }))
				for d := int64(0); d < n; d++ {
					must(m.SetFloat("L", 2+rng.Float64(), d, d))
				}
				must(m.FillFloat("b", func(i int64) float64 { return rng.Float64() }))
			},
		},
	}
}

// ByName returns the benchmark with the given (Table 2) name.
func ByName(name string) (*Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// Program parses the benchmark's source.
func (b *Benchmark) Program() *lang.Program { return lang.MustParse(b.Source) }

// InitDefault seeds the machine with the benchmark's default data stream —
// the historical fixed-seed initialization every measurement path uses.
func (b *Benchmark) InitDefault(m DataHost, params map[string]int64) {
	b.Init(m, params, rand.New(rand.NewSource(b.Seed)))
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
