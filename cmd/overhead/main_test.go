package main

import (
	"strings"
	"testing"

	"defuse/internal/bench"
)

// -parallel beyond the host's CPUs must be an error before any measurement
// runs: oversubscribed workers time-slice on the same cores and emit
// wall-parity scaling rows that look like valid measurements.
func TestValidateParallel(t *testing.T) {
	cases := []struct {
		name    string
		n, cpus int
		wantErr bool
	}{
		{"disabled", 0, 8, false},
		{"one", 1, 8, false},
		{"at-limit", 8, 8, false},
		{"over-by-one", 9, 8, true},
		{"way-over", 64, 4, true},
		{"single-cpu-host", 2, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateParallel(c.n, c.cpus)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateParallel(%d, %d) = %v, want error=%v", c.n, c.cpus, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), "-parallel") {
				t.Fatalf("error does not name the flag: %v", err)
			}
		})
	}
}

// The ladder must double up to and always end exactly at the requested
// count, so the requested worker count is itself measured.
func TestWorkerLadder(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{4, []int{1, 2, 4}},
		{6, []int{1, 2, 4, 6}},
		{7, []int{1, 2, 4, 7}},
		{8, []int{1, 2, 4, 8}},
	}
	for _, c := range cases {
		got := workerLadder(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("workerLadder(%d) = %v, want %v", c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("workerLadder(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

// A quick native measurement of one benchmark exercises the whole compiled
// path: gennative lookup, machine construction, timing loop, output
// equivalence across variants, and the normalized row.
func TestMeasureNativeOneBench(t *testing.T) {
	b, err := bench.ByName("jacobi1d")
	if err != nil {
		t.Fatal(err)
	}
	row, err := measureNative(b, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if row.Bench != "jacobi1d" || row.Reps < 1 {
		t.Fatalf("bad row: %+v", row)
	}
	if row.OriginalSeconds <= 0 || row.ResilientTime <= 0 || row.OptimizedTime <= 0 {
		t.Fatalf("non-positive measurements: %+v", row)
	}
}
