// Package faults injects transient memory faults into simulated memories,
// reproducing the fault model of Section 2.2 of the paper: undetected
// multi-bit errors in stored data and address-generation errors that make a
// load observe the wrong location.
//
// The injector is deterministic given its seed so experiments are
// reproducible.
package faults

import (
	"fmt"
	"math/rand"
)

// Pattern selects how experiment data is initialized, matching the three data
// columns of Table 1.
type Pattern int

// Data patterns used in the coverage experiments.
const (
	// AllZero initializes every bit to 0.
	AllZero Pattern = iota
	// AllOne initializes every bit to 1.
	AllOne
	// Random initializes bits uniformly at random.
	Random
)

var patternNames = map[Pattern]string{
	AllZero: "all-0",
	AllOne:  "all-1",
	Random:  "random",
}

// String returns the Table 1 column label for the pattern.
func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("faults.Pattern(%d)", int(p))
}

// Injector produces reproducible fault injections.
type Injector struct {
	rng *rand.Rand
}

// NewInjector returns an injector seeded with seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Fill initializes data according to the pattern.
func (in *Injector) Fill(data []uint64, p Pattern) {
	switch p {
	case AllZero:
		for i := range data {
			data[i] = 0
		}
	case AllOne:
		for i := range data {
			data[i] = ^uint64(0)
		}
	case Random:
		for i := range data {
			data[i] = in.rng.Uint64()
		}
	default:
		panic(fmt.Sprintf("faults: unknown pattern %v", p))
	}
}

// BitFlip identifies a single flipped bit in a word array.
type BitFlip struct {
	Word int // index into the array
	Bit  int // bit position within the 64-bit word, 0 = LSB
}

// PickBits chooses exactly k distinct bit positions uniformly at random over
// all 64*words available positions, without touching any data. It panics if
// k exceeds the number of available bits.
func (in *Injector) PickBits(words, k int) []BitFlip {
	total := 64 * words
	if k > total {
		panic(fmt.Sprintf("faults: cannot flip %d bits in %d available", k, total))
	}
	flips := make([]BitFlip, 0, k)
	seen := make(map[int]bool, k)
	for len(flips) < k {
		pos := in.rng.Intn(total)
		if seen[pos] {
			continue
		}
		seen[pos] = true
		flips = append(flips, BitFlip{Word: pos / 64, Bit: pos % 64})
	}
	return flips
}

// FlipBits flips exactly k distinct bits chosen uniformly at random over all
// 64*len(data) bit positions and returns the flips applied. It panics if k
// exceeds the number of available bits.
func (in *Injector) FlipBits(data []uint64, k int) []BitFlip {
	flips := in.PickBits(len(data), k)
	for _, f := range flips {
		data[f.Word] ^= 1 << uint(f.Bit)
	}
	return flips
}

// FlipBitsInWord flips k distinct bits within a single word value and returns
// the corrupted value. Used to corrupt an individual in-flight load.
func (in *Injector) FlipBitsInWord(v uint64, k int) uint64 {
	if k > 64 {
		panic("faults: cannot flip more than 64 bits in one word")
	}
	seen := 0
	for flipped := 0; flipped < k; {
		b := in.rng.Intn(64)
		if seen&(1<<uint(b)) != 0 {
			continue
		}
		seen |= 1 << uint(b)
		v ^= 1 << uint(b)
		flipped++
	}
	return v
}

// ErrRegionTooSmall reports that an address fault cannot be modeled because
// the region has no second location to redirect to. Campaign cells over
// 1-word regions tally the skip instead of crashing a worker.
type ErrRegionTooSmall struct {
	Words int
}

func (e *ErrRegionTooSmall) Error() string {
	return fmt.Sprintf("faults: address fault needs at least 2 locations, region has %d", e.Words)
}

// WrongAddress models an address-generation error: an access intended for
// index idx instead touches a different uniformly chosen index in [0, n).
// With n < 2 there is no wrong location to pick, and a *ErrRegionTooSmall
// is returned instead of an index.
func (in *Injector) WrongAddress(idx, n int) (int, error) {
	if n < 2 {
		return idx, &ErrRegionTooSmall{Words: n}
	}
	for {
		j := in.rng.Intn(n)
		if j != idx {
			return j, nil
		}
	}
}

// Intn exposes the injector's deterministic random stream for experiment
// schedules (e.g., choosing which dynamic load to corrupt).
func (in *Injector) Intn(n int) int { return in.rng.Intn(n) }

// Uint64 returns a uniformly random 64-bit value from the injector's stream.
func (in *Injector) Uint64() uint64 { return in.rng.Uint64() }
