package recovery_test

// End-to-end acceptance for epoch-scoped verification with rollback
// recovery: an instrumented program runs under interp's EpochPlan supervisor,
// a transient bit flip is injected into simulated memory inside epoch k, and
// the mismatch must be caught at epoch k's own boundary (detection latency
// zero) with rollback re-execution restoring the exact fault-free final
// state. This lives outside package recovery because interp imports recovery.

import (
	"context"
	"math"
	"testing"

	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// epochBalancedSrc is hand-instrumented so every outer-loop iteration is
// checksum-complete: A[i] is defined with use count 1 and consumed once
// within the same iteration, so every iteration-block boundary is a
// post-dominator of the defs and uses inside it (checksum-quiescent).
const epochBalancedSrc = `
program t(n)
float A[n];
for i = 0 to n - 1 {
  A[i] = i * 1.5;
  add_to_chksm(def_cs, A[i], 1);
  add_to_chksm(use_cs, A[i], 1);
  A[i] = A[i] + 2.0;
}
`

// stmtsPerIter is the loop body size: iteration i executes global statements
// i*stmtsPerIter+1 .. i*stmtsPerIter+4 (the plan runs no other statements).
const stmtsPerIter = 4

func newPlan(t *testing.T, n int64, epochs int, opts ...interp.Option) (*interp.Machine, *interp.EpochPlan) {
	t.Helper()
	prog, err := lang.Parse(epochBalancedSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := interp.New(prog, map[string]int64{"n": n}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := m.PlanEpochs(epochs)
	if err != nil {
		t.Fatal(err)
	}
	return m, plan
}

func checkFinalState(t *testing.T, m *interp.Machine, n int64) {
	t.Helper()
	for i := int64(0); i < n; i++ {
		got, err := m.Float("A", i)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(i)*1.5 + 2.0; got != want {
			t.Errorf("A[%d] = %v, want %v", i, got, want)
		}
	}
	if err := m.Pair().Verify(); err != nil {
		t.Errorf("final checksum mismatch after recovery: %v", err)
	}
}

func TestEpochFaultDetectedAtInjectionEpochAndRecovered(t *testing.T) {
	const (
		n      = 16
		epochs = 4 // 4 iterations per epoch
	)
	for _, injIter := range []int64{0, 6, 11, 15} {
		injEpoch := int(injIter) / (n / epochs)
		sink := &telemetry.Collector{}
		m, plan := newPlan(t, n, epochs, interp.WithTrace(sink))
		base, _, err := m.Region("A")
		if err != nil {
			t.Fatal(err)
		}
		// Flip a bit of A[injIter] between its def-checksum contribution and
		// its use-checksum contribution: the use observes the corrupted
		// value, so the boundary closing the injection epoch must flag it.
		// The step counter is monotonic across rollbacks, so the fault is
		// transient: re-execution does not re-inject.
		target := uint64(injIter)*stmtsPerIter + 3
		m.SetStepHook(func(step uint64) {
			if step == target {
				m.Mem().FlipBit(base+int(injIter), 51)
			}
		})
		out, err := plan.Supervise(context.Background(),
			recovery.Policy{MaxRetries: 2, MaxRestarts: 1})
		if err != nil {
			t.Fatalf("injIter=%d: %v", injIter, err)
		}
		if !out.Detected {
			t.Fatalf("injIter=%d: fault escaped", injIter)
		}
		if out.FirstDetection != injEpoch {
			t.Errorf("injIter=%d: detected at epoch %d, want injection epoch %d (latency 0)",
				injIter, out.FirstDetection, injEpoch)
		}
		if !out.Recovered || out.Tainted {
			t.Errorf("injIter=%d: Recovered=%v Tainted=%v", injIter, out.Recovered, out.Tainted)
		}
		if out.Retries != 1 || out.Restarts != 0 {
			t.Errorf("injIter=%d: Retries=%d Restarts=%d, want one rollback, no restart",
				injIter, out.Retries, out.Restarts)
		}
		checkFinalState(t, m, n)
		if sink.Count(telemetry.EvRecoveryRetry) != 1 {
			t.Errorf("injIter=%d: expected one recovery.retry event", injIter)
		}
	}
}

func TestEpochCleanRunMatchesPlainExecution(t *testing.T) {
	const n = 10
	// Reference: plain Run.
	ref, _ := newPlan(t, n, 1)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	// Supervised with an epoch count that does not divide the trip count.
	m, plan := newPlan(t, n, 3)
	out, err := plan.Supervise(context.Background(), recovery.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected || out.Tainted {
		t.Errorf("clean run outcome = %+v", out)
	}
	checkFinalState(t, m, n)
	refSnap, _ := ref.SnapshotFloats("A")
	snap, _ := m.SnapshotFloats("A")
	for i := range refSnap {
		if refSnap[i] != snap[i] {
			t.Errorf("A[%d]: supervised %v != plain %v", i, snap[i], refSnap[i])
		}
	}
}

func TestEpochCorruptionAfterLastUseOutsideProtectionWindow(t *testing.T) {
	// A flip landing after a word's last use is invisible to verification:
	// its checksum contributions are already closed, and this workload never
	// re-reads the word. The paper's guarantee covers the def-to-last-use
	// window only; the run must complete cleanly with a silently wrong word.
	const (
		n      = 8
		epochs = 4
	)
	m, plan := newPlan(t, n, epochs)
	base, _, err := m.Region("A")
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 2 is in epoch 1 (2 iterations per epoch). Flip its word
	// after the whole iteration completed (before the first statement of
	// iteration 3).
	m.SetStepHook(func(step uint64) {
		if step == 2*stmtsPerIter+stmtsPerIter+1 {
			m.Mem().FlipBit(base+2, 17)
		}
	})
	out, err := plan.Supervise(context.Background(), recovery.Policy{MaxRetries: 2, MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A[2] is never read again by this program after its iteration, so the
	// def/use checksums stay balanced: the corruption is undetectable by
	// verification (the paper's scheme protects values between def and last
	// use). The run must complete cleanly but the final state differs.
	if out.Detected {
		// Acceptable only if the flip somehow fed a checksum; this workload
		// never re-reads, so detection here means the harness is wrong.
		t.Fatalf("corruption after last use should be outside the protection window, outcome %+v", out)
	}
	got, _ := m.Float("A", 2)
	want := 2*1.5 + 2.0
	if got == want {
		t.Errorf("A[2] = %v: the injected flip vanished", got)
	}
	if math.Float64bits(got) != math.Float64bits(want)^(1<<17) {
		t.Errorf("A[2] bits = %#x, want the flipped pattern", math.Float64bits(got))
	}
}
