package lang

import "fmt"

// Type is the element type of a variable.
type Type int

// Variable element types.
const (
	TypeFloat Type = iota
	TypeInt
)

// String returns the source keyword for the type.
func (t Type) String() string {
	if t == TypeInt {
		return "int"
	}
	return "float"
}

// Program is a parsed program: integer parameters, variable declarations
// (arrays and scalars), and a statement body.
type Program struct {
	Name   string
	Params []string
	Decls  []*VarDecl
	Body   []Stmt
}

// Decl returns the declaration of name, or nil.
func (p *Program) Decl(name string) *VarDecl {
	for _, d := range p.Decls {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// IsParam reports whether name is a program parameter.
func (p *Program) IsParam(name string) bool {
	for _, q := range p.Params {
		if q == name {
			return true
		}
	}
	return false
}

// VarDecl declares an array (len(Dims) > 0) or scalar (len(Dims) == 0).
type VarDecl struct {
	Pos  Pos
	Name string
	Type Type
	Dims []Expr // sizes, affine in parameters
}

// IsArray reports whether the declaration is an array.
func (d *VarDecl) IsArray() bool { return len(d.Dims) > 0 }

// CSName identifies one of the four global checksums.
type CSName int

// The four checksum accumulators of the scheme.
const (
	DefCS CSName = iota
	UseCS
	EDefCS
	EUseCS
)

var csNames = [...]string{"def_cs", "use_cs", "e_def_cs", "e_use_cs"}

// String returns the source name of the checksum.
func (c CSName) String() string {
	if int(c) < len(csNames) {
		return csNames[c]
	}
	return fmt.Sprintf("CSName(%d)", int(c))
}

// ParseCSName maps a source identifier to a checksum name.
func ParseCSName(s string) (CSName, bool) {
	for i, n := range csNames {
		if n == s {
			return CSName(i), true
		}
	}
	return 0, false
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// AssignOp is an assignment operator.
type AssignOp int

// Assignment operators.
const (
	OpSet AssignOp = iota // =
	OpAdd                 // +=
	OpSub                 // -=
	OpMul                 // *=
	OpDiv                 // /=
)

var assignOpNames = [...]string{"=", "+=", "-=", "*=", "/="}

// String returns the operator's source text.
func (op AssignOp) String() string { return assignOpNames[op] }

// Assign is "lhs op rhs;", optionally labeled ("S1: ...").
type Assign struct {
	Pos   Pos
	Label string
	LHS   *Ref
	Op    AssignOp
	RHS   Expr
}

// For is an inclusive-bound counted loop "for i = lo to hi { ... }".
type For struct {
	Pos  Pos
	Iter string
	Lo   Expr
	Hi   Expr
	Body []Stmt
}

// While is a condition-controlled loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// If is a conditional with optional else branch.
type If struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// AddToChecksum is the instrumentation primitive
// "add_to_chksm(cs, value, count);": fold value into checksum cs, count
// times (count is evaluated at runtime and may be negative).
type AddToChecksum struct {
	Pos   Pos
	CS    CSName
	Value Expr
	Count Expr
}

// AssertChecksums is "assert_checksums();": the verifier comparing def/use
// and e_def/e_use.
type AssertChecksums struct {
	Pos Pos
}

func (*Assign) stmtNode()          {}
func (*For) stmtNode()             {}
func (*While) stmtNode()           {}
func (*If) stmtNode()              {}
func (*AddToChecksum) stmtNode()   {}
func (*AssertChecksums) stmtNode() {}

// StmtPos returns the statement's source position.
func (s *Assign) StmtPos() Pos          { return s.Pos }
func (s *For) StmtPos() Pos             { return s.Pos }
func (s *While) StmtPos() Pos           { return s.Pos }
func (s *If) StmtPos() Pos              { return s.Pos }
func (s *AddToChecksum) StmtPos() Pos   { return s.Pos }
func (s *AssertChecksums) StmtPos() Pos { return s.Pos }

// Expr is an expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Pos Pos
	Val float64
}

// Ref reads (or, as an Assign LHS, writes) a scalar, parameter, iterator, or
// array element.
type Ref struct {
	Pos     Pos
	Name    string
	Indices []Expr // nil for scalars/iterators/parameters
}

// IsScalar reports whether the reference has no subscripts.
func (r *Ref) IsScalar() bool { return len(r.Indices) == 0 }

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	BinAdd BinOp = iota // +
	BinSub              // -
	BinMul              // *
	BinDiv              // /
	BinMod              // %
	BinEq               // ==
	BinNe               // !=
	BinLt               // <
	BinLe               // <=
	BinGt               // >
	BinGe               // >=
	BinAnd              // &&
	BinOr               // ||
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

// String returns the operator's source text.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean.
func (op BinOp) IsComparison() bool { return op >= BinEq && op <= BinGe }

// IsLogical reports whether the operator combines booleans.
func (op BinOp) IsLogical() bool { return op == BinAnd || op == BinOr }

// Bin is a binary expression.
type Bin struct {
	Pos  Pos
	Op   BinOp
	L, R Expr
}

// UnOp is a unary operator.
type UnOp int

// Unary operators.
const (
	UnNeg UnOp = iota // -
	UnNot             // !
)

// String returns the operator's source text.
func (op UnOp) String() string {
	if op == UnNot {
		return "!"
	}
	return "-"
}

// Un is a unary expression.
type Un struct {
	Pos Pos
	Op  UnOp
	X   Expr
}

// Call is an intrinsic call: sqrt, abs, min, max.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Intrinsics lists the supported call targets and their arities.
var Intrinsics = map[string]int{"sqrt": 1, "abs": 1, "min": 2, "max": 2}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ref) exprNode()      {}
func (*Bin) exprNode()      {}
func (*Un) exprNode()       {}
func (*Call) exprNode()     {}

// ExprPos returns the expression's source position.
func (e *IntLit) ExprPos() Pos   { return e.Pos }
func (e *FloatLit) ExprPos() Pos { return e.Pos }
func (e *Ref) ExprPos() Pos      { return e.Pos }
func (e *Bin) ExprPos() Pos      { return e.Pos }
func (e *Un) ExprPos() Pos       { return e.Pos }
func (e *Call) ExprPos() Pos     { return e.Pos }

// CloneExpr deep-copies an expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *Ref:
		c := &Ref{Pos: x.Pos, Name: x.Name}
		for _, ix := range x.Indices {
			c.Indices = append(c.Indices, CloneExpr(ix))
		}
		return c
	case *Bin:
		return &Bin{Pos: x.Pos, Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Un:
		return &Un{Pos: x.Pos, Op: x.Op, X: CloneExpr(x.X)}
	case *Call:
		c := &Call{Pos: x.Pos, Name: x.Name}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	}
	panic(fmt.Sprintf("lang: CloneExpr: unknown node %T", e))
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Assign:
		return &Assign{Pos: x.Pos, Label: x.Label, LHS: CloneExpr(x.LHS).(*Ref), Op: x.Op, RHS: CloneExpr(x.RHS)}
	case *For:
		return &For{Pos: x.Pos, Iter: x.Iter, Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Body: CloneStmts(x.Body)}
	case *While:
		return &While{Pos: x.Pos, Cond: CloneExpr(x.Cond), Body: CloneStmts(x.Body)}
	case *If:
		return &If{Pos: x.Pos, Cond: CloneExpr(x.Cond), Then: CloneStmts(x.Then), Else: CloneStmts(x.Else)}
	case *AddToChecksum:
		return &AddToChecksum{Pos: x.Pos, CS: x.CS, Value: CloneExpr(x.Value), Count: CloneExpr(x.Count)}
	case *AssertChecksums:
		c := *x
		return &c
	}
	panic(fmt.Sprintf("lang: CloneStmt: unknown node %T", s))
}

// CloneStmts deep-copies a statement list.
func CloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = CloneStmt(s)
	}
	return out
}

// WalkStmts visits every statement in the list recursively, pre-order. The
// visitor returning false prunes the subtree.
func WalkStmts(ss []Stmt, visit func(Stmt) bool) {
	for _, s := range ss {
		if !visit(s) {
			continue
		}
		switch x := s.(type) {
		case *For:
			WalkStmts(x.Body, visit)
		case *While:
			WalkStmts(x.Body, visit)
		case *If:
			WalkStmts(x.Then, visit)
			WalkStmts(x.Else, visit)
		}
	}
}

// WalkExpr visits e and its children, pre-order.
func WalkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *Ref:
		for _, ix := range x.Indices {
			WalkExpr(ix, visit)
		}
	case *Bin:
		WalkExpr(x.L, visit)
		WalkExpr(x.R, visit)
	case *Un:
		WalkExpr(x.X, visit)
	case *Call:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	}
}

// ExprRefs returns every Ref in the expression (including subscript refs),
// outermost first.
func ExprRefs(e Expr) []*Ref {
	var refs []*Ref
	WalkExpr(e, func(x Expr) bool {
		if r, ok := x.(*Ref); ok {
			refs = append(refs, r)
		}
		return true
	})
	return refs
}
