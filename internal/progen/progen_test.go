package progen

import (
	"math/rand"
	"testing"

	"defuse/internal/interp"
	"defuse/internal/lang"
)

func TestGeneratedProgramsParseAndCheck(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		gp := Generate(rand.New(rand.NewSource(seed)), DefaultConfig())
		prog, err := lang.Parse(gp.Source)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, gp.Source)
		}
		if err := lang.Check(prog); err != nil {
			t.Fatalf("seed %d: check: %v\n%s", seed, err, gp.Source)
		}
	}
}

func TestGeneratedProgramsRunInBounds(t *testing.T) {
	// Every generated program must execute without runtime errors (bounds,
	// division) on its declared parameters.
	cfg := DefaultConfig()
	cfg.WithIndirect = true
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gp := Generate(rng, cfg)
		prog := lang.MustParse(gp.Source)
		m, err := interp.New(prog, gp.Params)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, a := range gp.FloatArrays {
			if err := m.FillFloat(a, func(i int64) float64 { return float64(i%7) * 0.5 }); err != nil {
				t.Fatal(err)
			}
		}
		for _, ia := range gp.IntArrays {
			if err := m.FillInt(ia, func(i int64) int64 { return i % gp.N }); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, gp.Source)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(42)), DefaultConfig())
	b := Generate(rand.New(rand.NewSource(42)), DefaultConfig())
	if a.Source != b.Source || a.N != b.N {
		t.Error("same seed must generate the same program")
	}
}

func TestIndirectConfigProducesIntArrays(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WithIndirect = true
	gp := Generate(rand.New(rand.NewSource(1)), cfg)
	if len(gp.IntArrays) == 0 {
		t.Error("WithIndirect should declare an index array")
	}
}
