// Command faultcov reproduces Table 1 of the paper: the percentage of
// undetected multi-bit memory errors under integer-modulo-addition checksums
// over arrays of 64-bit integers, with one checksum and with the
// two-checksum (address-rotated) scheme.
//
// Usage:
//
//	faultcov [-trials 100000] [-sizes 100,10000,1000000] [-flips 2,3,4,5,6] \
//	         [-patterns zero,one,random] [-schemes single,dual] [-seed 1] \
//	         [-trace events.jsonl] [-metrics out]
//
// The paper uses 100,000 trials; -trials 10000 gives the same shape in
// seconds rather than minutes. -trace streams one fault.injected event per
// trial per cell (with the flipped word/bit coordinates) plus a detection or
// escaped verify.ok outcome; select a single cell (one size, one flip count,
// one pattern, one scheme) to get exactly -trials events.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"defuse/internal/checksum"
	"defuse/internal/faults"
	"defuse/telemetry"
)

func main() {
	trials := flag.Int("trials", 100000, "injection trials per cell (paper: 100000)")
	sizes := flag.String("sizes", "100,10000,1000000", "array sizes in 64-bit words")
	flips := flag.String("flips", "2,3,4,5,6", "bit-flip counts")
	patterns := flag.String("patterns", "zero,one,random", "data patterns: zero, one, random")
	schemes := flag.String("schemes", "single,dual", "checksum schemes: single, dual")
	seed := flag.Int64("seed", 1, "random seed")
	op := flag.String("op", "modadd", "checksum operator: modadd, xor, onescomp")
	trace := flag.String("trace", "", "stream telemetry events to this JSON-lines file")
	metrics := flag.String("metrics", "", "write a metrics snapshot to this file (.json for JSON, else Prometheus text)")
	flag.Parse()

	sink, reg, finish, err := telemetry.Setup(*trace, *metrics)
	if err != nil {
		fatal(err)
	}
	err = run(*trials, *sizes, *flips, *patterns, *schemes, *seed, *op, sink, reg)
	if ferr := finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
}

func run(trials int, sizes, flips, patterns, schemes string, seed int64, op string,
	sink telemetry.Sink, reg *telemetry.Registry) error {
	kind, err := parseKind(op)
	if err != nil {
		return err
	}
	sizeList, err := parseInts(sizes)
	if err != nil {
		return err
	}
	flipList, err := parseInts(flips)
	if err != nil {
		return err
	}
	patternList, err := parsePatterns(patterns)
	if err != nil {
		return err
	}
	dualList, err := parseSchemes(schemes)
	if err != nil {
		return err
	}

	fmt.Printf("Table 1: percentage of undetected errors with %s checksums (%d trials)\n\n", kind, trials)
	fmt.Printf("%-10s %-9s", "#bit-flips", "N")
	for _, dual := range dualList {
		for _, p := range patternList {
			fmt.Printf(" | %-11s", cellName(p, dual))
		}
	}
	fmt.Println()
	for _, k := range flipList {
		for _, n := range sizeList {
			fmt.Printf("%-10d %-9d", k, n)
			for _, dual := range dualList {
				for _, p := range patternList {
					r := faults.RunCoverage(faults.CoverageConfig{
						Kind: kind, Words: n, BitFlips: k, Pattern: p,
						Dual: dual, Trials: trials, Seed: seed,
						Trace: sink, Metrics: reg,
					})
					fmt.Printf(" | %-11s", fmt.Sprintf("%.3f%%", r.UndetectedPercent()))
				}
			}
			fmt.Println()
		}
	}
	return nil
}

func cellName(p faults.Pattern, dual bool) string {
	scheme := "1cs"
	if dual {
		scheme = "2cs"
	}
	return fmt.Sprintf("%s %v", scheme, p)
}

func parseKind(s string) (checksum.Kind, error) {
	switch s {
	case "modadd":
		return checksum.ModAdd, nil
	case "xor":
		return checksum.XOR, nil
	case "onescomp":
		return checksum.OnesComp, nil
	}
	return 0, fmt.Errorf("unknown operator %q", s)
}

func parsePatterns(s string) ([]faults.Pattern, error) {
	var out []faults.Pattern
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "zero":
			out = append(out, faults.AllZero)
		case "one":
			out = append(out, faults.AllOne)
		case "random":
			out = append(out, faults.Random)
		default:
			return nil, fmt.Errorf("unknown pattern %q (want zero, one, or random)", p)
		}
	}
	return out, nil
}

func parseSchemes(s string) ([]bool, error) {
	var out []bool
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "single":
			out = append(out, false)
		case "dual":
			out = append(out, true)
		default:
			return nil, fmt.Errorf("unknown scheme %q (want single or dual)", p)
		}
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcov:", err)
	os.Exit(1)
}
