package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "checkpoint.wal")
}

func mustCreate(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Create(path, opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *Log, n int) [][]byte {
	t.Helper()
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{byte(i)}, 16))))
		if err := l.Append(p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		payloads = append(payloads, p)
	}
	return payloads
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	payloads := appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(s.Records) != 5 || s.TornTail || s.Corrupt != 0 {
		t.Fatalf("scan = %d records, torn=%v corrupt=%d; want 5 clean", len(s.Records), s.TornTail, s.Corrupt)
	}
	for i, r := range s.Records {
		if !bytes.Equal(r.Payload, payloads[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
		if r.Seq != uint32(i) {
			t.Errorf("record %d seq = %d", i, r.Seq)
		}
	}
	if got := s.Newest().Payload; !bytes.Equal(got, payloads[4]) {
		t.Errorf("Newest = %q, want %q", got, payloads[4])
	}
}

func TestRecoverMissingAndEmpty(t *testing.T) {
	if _, err := Recover(filepath.Join(t.TempDir(), "nope.wal")); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("missing file: err = %v, want ErrNoCheckpoint", err)
	}
	path := logPath(t)
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty file: err = %v, want ErrNoCheckpoint", err)
	}
	// A log that died before any record was sealed is also "no checkpoint".
	l := mustCreate(t, path, Options{})
	l.Close()
	if _, err := Recover(path); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("header-only file: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestTornTailFallsBackToPreviousRecord(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	payloads := appendN(t, l, 3)
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final frame, at every possible torn
	// length from "one byte missing" down to "only the header byte of the
	// frame present".
	lastFrame := frameHeaderSize + len(payloads[2]) + frameTrailerSize
	for cut := 1; cut < lastFrame; cut++ {
		torn := raw[:len(raw)-cut]
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Recover(path)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		if !s.TornTail {
			t.Fatalf("cut %d: torn tail not flagged", cut)
		}
		if len(s.Records) != 2 || !bytes.Equal(s.Newest().Payload, payloads[1]) {
			t.Fatalf("cut %d: fell back to %d records, want previous sealed record", cut, len(s.Records))
		}
	}
}

func TestTornFirstFrameMeansNoCheckpoint(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	appendN(t, l, 1)
	l.Close()
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Recover(path)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	if !s.TornTail {
		t.Error("torn tail not flagged")
	}
}

func TestBitFlipClassifiedCorrupt(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	payloads := appendN(t, l, 3)
	l.Close()
	raw, _ := os.ReadFile(path)

	// Flip one bit in every byte position of the final frame in turn: each
	// must either be classified corrupt (falling back to an older record) or
	// — never — silently alter the recovered payload.
	lastFrame := frameHeaderSize + len(payloads[2]) + frameTrailerSize
	start := len(raw) - lastFrame
	for pos := start; pos < len(raw); pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Recover(path)
		if err != nil {
			t.Fatalf("pos %d: recover failed entirely: %v", pos, err)
		}
		newest := s.Newest()
		if bytes.Equal(newest.Payload, payloads[2]) {
			t.Fatalf("pos %d: corrupted frame recovered as valid", pos)
		}
		if !bytes.Equal(newest.Payload, payloads[1]) {
			t.Fatalf("pos %d: unexpected newest payload %q", pos, newest.Payload)
		}
		// A flip in the length prefix can masquerade as a torn tail; any
		// other flip must be counted as corruption.
		if s.Corrupt == 0 && !s.TornTail {
			t.Fatalf("pos %d: flip neither corrupt nor torn", pos)
		}
	}
}

func TestBitFlipOnlyRecordIsCorruptNotWrong(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	appendN(t, l, 1)
	l.Close()
	raw, _ := os.ReadFile(path)
	mut := append([]byte(nil), raw...)
	mut[len(mut)-2] ^= 0x04 // inside the CRC trailer
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestBadMagicIsCorrupt(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	appendN(t, l, 2)
	l.Close()
	raw, _ := os.ReadFile(path)
	raw[3] ^= 0x80
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(path); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestOpenTruncatesTornTailAndContinues(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{})
	payloads := appendN(t, l, 2)
	l.Close()
	raw, _ := os.ReadFile(path)
	// Tear the second record, then continue the log through Open: the torn
	// bytes must be truncated away so the resumed log scans cleanly.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Recover(path)
	if err != nil || len(s.Records) != 1 {
		t.Fatalf("Recover after tear: %d records, err %v", len(s.Records), err)
	}
	l2, err := Open(s, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l2.Append([]byte("after-resume")); err != nil {
		t.Fatalf("Append after resume: %v", err)
	}
	l2.Close()

	s2, err := Recover(path)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if len(s2.Records) != 2 || s2.TornTail || s2.Corrupt != 0 {
		t.Fatalf("resumed log: %d records torn=%v corrupt=%d", len(s2.Records), s2.TornTail, s2.Corrupt)
	}
	if !bytes.Equal(s2.Records[0].Payload, payloads[0]) {
		t.Error("surviving record changed across resume")
	}
	if string(s2.Newest().Payload) != "after-resume" {
		t.Errorf("newest = %q", s2.Newest().Payload)
	}
	// Sequence numbers keep ascending across the torn record's retry slot.
	if s2.Newest().Seq != 1 {
		t.Errorf("resumed seq = %d, want 1", s2.Newest().Seq)
	}
}

func TestRotationCompactsToNewestRecord(t *testing.T) {
	path := logPath(t)
	l := mustCreate(t, path, Options{MaxBytes: 256})
	// 19 appends end exactly on a rotation (every third append past the
	// first rotation trips MaxBytes), so the log finishes compacted.
	var last []byte
	for i := 0; i < 19; i++ {
		last = bytes.Repeat([]byte{byte('a' + i%26)}, 48)
		if err := l.Append(last); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if l.Size() > 256+int64(len(magic)+frameHeaderSize+48+frameTrailerSize) {
			t.Fatalf("append %d: size %d never compacted", i, l.Size())
		}
	}
	if l.Records() != 1 {
		t.Fatalf("records after rotation = %d, want 1", l.Records())
	}
	l.Close()
	s, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover after rotation: %v", err)
	}
	if len(s.Records) != 1 || !bytes.Equal(s.Newest().Payload, last) {
		t.Fatalf("rotated log: %d records, newest mismatch", len(s.Records))
	}
	// Appending after rotation still round-trips.
	l2, err := Open(s, Options{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("post-rotate")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	s2, err := Recover(path)
	if err != nil || string(s2.Newest().Payload) != "post-rotate" {
		t.Fatalf("post-rotate recover: err=%v newest=%q", err, s2.Newest().Payload)
	}
}

func TestWriteFileAtomicReplacesAndCleansTmp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover truncated temp file from a killed writer must not matter.
	if err := os.WriteFile(path+".tmp", []byte(`{"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new-contents"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "new-contents" {
		t.Fatalf("read back %q, err %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("temp file left behind: %v", err)
	}
}
