package instrument

import (
	"fmt"
	"sort"

	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/poly"
	"defuse/internal/usecount"
)

// This file implements the Section 4.2 optimization for iterative codes:
// for a while loop whose irregular index structures are loop-invariant, an
// inspector counting per-cell accesses is hoisted above the loop, writes
// inside the loop receive exact per-iteration use counts, and read-only
// (invariant) arrays are balanced in an epilogue scaled by the dynamic
// iteration count — reproducing the structure of the paper's Figure 9.

// inspVar is the plan for one array handled by an inspector.
type inspVar struct {
	decl *lang.VarDecl
	// written reports whether the array is (re)defined inside the loop
	// (p_new in Figure 8) as opposed to invariant (cols).
	written bool
	// cntName is the inspector count array (irregular reads per cell);
	// empty if the variable has no irregular reads.
	cntName string
	// static is the per-while-iteration affine read count of each cell, an
	// additive list of pieces over the cell variables.
	static []poly.Piece
	// cellVars names the parameterized cell coordinates used in static.
	cellVars []string
	// writeStmts are the region statements writing the array.
	writeStmts map[*lang.Assign]bool
}

// inspectorPlan is the full plan for one while loop.
type inspectorPlan struct {
	iterName  string
	vars      map[string]*inspVar
	preWhile  []lang.Stmt
	postWhile []lang.Stmt
}

// detectInspectors scans for while loops amenable to inspector hoisting and
// builds their plans, upgrading qualifying variables' plans.
func (ins *instrumenter) detectInspectors() {
	lang.WalkStmts(ins.prog.Body, func(s lang.Stmt) bool {
		w, ok := s.(*lang.While)
		if !ok {
			return true
		}
		if plan := ins.tryInspector(w); plan != nil {
			ins.insp[w] = plan
		}
		return false // do not descend into nested whiles
	})
}

// tryInspector decides applicability per variable of the while body and
// builds the plan; it returns nil if no variable qualifies.
func (ins *instrumenter) tryInspector(w *lang.While) *inspectorPlan {
	rm, err := pdg.ExtractRegion(ins.prog, w.Body)
	if err != nil {
		return nil
	}
	// All region statements must be control-affine (no nested while/if).
	for _, s := range rm.Stmts {
		if !s.ControlAffine {
			return nil
		}
	}

	touched := ins.varsTouched(w.Body)
	writtenIn := map[string]bool{}
	for _, s := range rm.Stmts {
		writtenIn[s.Write.Array] = true
	}

	// Candidate variables: arrays accessed in the region (non-control) whose
	// every access outside this while is absent.
	cands := map[string]*inspVar{}
	for name := range touched {
		d := ins.prog.Decl(name)
		if d == nil || ins.plans[name] == PlanControl || ins.plans[name] == PlanStatic {
			continue // static vars already exact; control untracked
		}
		if ins.touchedOutside(w, name) {
			continue
		}
		cands[name] = &inspVar{decl: d, written: writtenIn[name], writeStmts: map[*lang.Assign]bool{}}
	}
	if len(cands) == 0 {
		return nil
	}

	// Validate accesses per candidate.
	type irregRead struct {
		stmt *pdg.Statement
		ref  *lang.Ref
	}
	type readSite struct {
		stmt *pdg.Statement
		acc  *pdg.Access
	}
	irregs := map[string][]irregRead{}
	readsOf := map[string][]readSite{}
	order := map[*lang.Assign]int{}
	seq := 0
	lang.WalkStmts(w.Body, func(s lang.Stmt) bool {
		if a, ok := s.(*lang.Assign); ok {
			order[a] = seq
			seq++
		}
		return true
	})
	writerStmt := map[string]*pdg.Statement{}

	for _, s := range rm.Stmts {
		// Writes.
		wacc := &s.Write
		if iv := cands[wacc.Array]; iv != nil {
			if !wacc.Affine || !writeIsIdentity(wacc, s) {
				delete(cands, wacc.Array)
			} else {
				iv.writeStmts[s.Node] = true
				writerStmt[wacc.Array] = s
			}
		}
		// Reads.
		for ri := range s.Reads {
			r := &s.Reads[ri]
			iv := cands[r.Array]
			if iv == nil {
				continue
			}
			readsOf[r.Array] = append(readsOf[r.Array], readSite{stmt: s, acc: r})
			if r.Affine {
				continue
			}
			// Irregular read: its subscript arrays must be invariant
			// (unwritten in the region) and themselves candidates.
			ok := true
			for _, sub := range lang.ExprRefs(r.Ref)[1:] { // skip the ref itself
				if ins.prog.Decl(sub.Name) == nil {
					continue
				}
				if writtenIn[sub.Name] || ins.touchedOutside(w, sub.Name) {
					ok = false
					break
				}
			}
			if !ok {
				delete(cands, r.Array)
				continue
			}
			irregs[r.Array] = append(irregs[r.Array], irregRead{stmt: s, ref: r.Ref})
		}
	}

	// Written candidates additionally require a single writing statement and
	// every read to occur before the write in statement order (iteration t's
	// reads see iteration t-1's defs). A read inside the writer statement
	// itself is allowed when it reads exactly the written cell (the RHS
	// evaluates before the store, as in "p[i] = r[i] + beta*p[i]").
	for name, iv := range cands {
		if !iv.written {
			continue
		}
		if len(iv.writeStmts) != 1 {
			delete(cands, name)
			continue
		}
		ws := writerStmt[name]
		for _, rs := range readsOf[name] {
			if rs.stmt == ws {
				if rs.acc.Affine && indexEqual(rs.acc.Index, ws.Write.Index) {
					continue
				}
				delete(cands, name)
				break
			}
			if order[rs.stmt.Node] > order[ws.Node] {
				delete(cands, name)
				break
			}
		}
	}
	// Invariant candidates must have only affine reads or be counted
	// irregularly themselves only via the inspector of a written target —
	// disallow irregular reads of invariant arrays for simplicity.
	for name, iv := range cands {
		if !iv.written && len(irregs[name]) > 0 {
			delete(cands, name)
		}
		_ = iv
	}
	if len(cands) == 0 {
		return nil
	}

	// Compute static per-iteration read counts per cell for each candidate.
	for name, iv := range cands {
		iv.cellVars = make([]string, len(iv.decl.Dims))
		for k := range iv.cellVars {
			iv.cellVars[k] = usecount.CellVarName(name, k)
		}
		ok := true
		for _, s := range rm.Stmts {
			for ri := range s.Reads {
				r := &s.Reads[ri]
				if r.Array != name || !r.Affine {
					continue
				}
				cons := append([]poly.Constraint(nil), s.Domain.Cons...)
				for k, lin := range r.Index {
					cons = append(cons, poly.Eq(lin, poly.V(iv.cellVars[k])))
				}
				set := poly.BasicSet{Tuple: s.ID, Dims: append([]string(nil), s.Iters...), Cons: cons}
				pw, err := poly.Card(set)
				if err != nil {
					ok = false
					break
				}
				iv.static = append(iv.static, pw.Pieces...)
			}
			if !ok {
				break
			}
		}
		if !ok {
			delete(cands, name)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	// Drop irregular-read entries whose target got disqualified.
	for name := range irregs {
		if cands[name] == nil {
			delete(irregs, name)
		}
	}

	// Build the plan.
	plan := &inspectorPlan{iterName: ins.names.fresh("defuse_iter"), vars: map[string]*inspVar{}}
	ins.newDecls = append(ins.newDecls, &lang.VarDecl{Name: plan.iterName, Type: lang.TypeInt})
	plan.preWhile = append(plan.preWhile,
		&lang.Assign{LHS: &lang.Ref{Name: plan.iterName}, Op: lang.OpSet, RHS: intLit(0)})

	// Emit per-candidate statements in name order: cands is a map, and the
	// hoisted loops, counter zeroing, and pro/epilogue folds all land in the
	// program text, so iteration order here must not vary run to run (the
	// native backend commits generated source and gates on regeneration
	// producing identical bytes).
	names := make([]string, 0, len(cands))
	for name := range cands {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		iv := cands[name]
		plan.vars[name] = iv
		if ins.plans[name] == PlanDynamic {
			if iv.written {
				ins.plans[name] = PlanInspector
			} else {
				ins.plans[name] = PlanInvariant
			}
		}
		// Inspector counter for irregular reads.
		if reads := irregs[name]; len(reads) > 0 {
			iv.cntName = ins.names.fresh(name + "_icnt")
			cd := &lang.VarDecl{Name: iv.cntName, Type: lang.TypeInt}
			for _, dim := range iv.decl.Dims {
				cd.Dims = append(cd.Dims, lang.CloneExpr(dim))
			}
			ins.newDecls = append(ins.newDecls, cd)
			// Zero the counters, then run the hoisted inspector loops.
			zi := make([]string, len(iv.decl.Dims))
			for k := range zi {
				zi[k] = ins.names.fresh(fmt.Sprintf("iz%d", k))
			}
			zeroRef := &lang.Ref{Name: iv.cntName}
			for _, it := range zi {
				zeroRef.Indices = append(zeroRef.Indices, &lang.Ref{Name: it})
			}
			plan.preWhile = append(plan.preWhile, loopNestOver(zi, iv.decl.Dims,
				[]lang.Stmt{&lang.Assign{LHS: zeroRef, Op: lang.OpSet, RHS: intLit(0)}})...)
			for _, r := range reads {
				plan.preWhile = append(plan.preWhile, ins.inspectorLoops(w.Body, r.ref, iv.cntName)...)
			}
		}
		ins.emitInspectorProEpi(plan, iv)
	}
	return plan
}

// indexEqual reports structural equality of two affine index vectors.
func indexEqual(a, b []poly.LinExpr) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !a[k].Equal(b[k]) {
			return false
		}
	}
	return true
}

// writeIsIdentity reports whether the write's subscripts are exactly the
// surrounding iterators in order (each cell written at most once per
// region execution).
func writeIsIdentity(acc *pdg.Access, s *pdg.Statement) bool {
	if len(acc.Index) != len(s.Iters) {
		return false
	}
	for k, lin := range acc.Index {
		want := poly.V(s.Iters[k])
		if !lin.Equal(want) {
			return false
		}
	}
	return true
}

// varsTouched collects declared variables referenced in a statement list.
func (ins *instrumenter) varsTouched(body []lang.Stmt) map[string]bool {
	out := map[string]bool{}
	lang.WalkStmts(body, func(s lang.Stmt) bool {
		a, ok := s.(*lang.Assign)
		if !ok {
			return true
		}
		for _, r := range append(lang.ExprRefs(a.RHS), lang.ExprRefs(a.LHS)...) {
			if ins.prog.Decl(r.Name) != nil {
				out[r.Name] = true
			}
		}
		return true
	})
	return out
}

// touchedOutside reports whether name is referenced anywhere outside the
// given while statement.
func (ins *instrumenter) touchedOutside(w *lang.While, name string) bool {
	found := false
	var scan func(ss []lang.Stmt)
	scan = func(ss []lang.Stmt) {
		for _, s := range ss {
			if s == lang.Stmt(w) {
				continue
			}
			switch x := s.(type) {
			case *lang.Assign:
				for _, r := range append(lang.ExprRefs(x.RHS), lang.ExprRefs(x.LHS)...) {
					if r.Name == name {
						found = true
					}
				}
			case *lang.For:
				scan(x.Body)
			case *lang.While:
				scan(x.Body)
			case *lang.If:
				scan(x.Then)
				scan(x.Else)
			}
		}
	}
	scan(ins.prog.Body)
	return found
}

// inspectorLoops clones the for-loop chain enclosing ref within body and
// produces the hoisted inspector: the loops with a single counter-increment
// statement at the innermost level.
func (ins *instrumenter) inspectorLoops(body []lang.Stmt, ref *lang.Ref, cntName string) []lang.Stmt {
	var chain []*lang.For
	var find func(ss []lang.Stmt, acc []*lang.For) bool
	find = func(ss []lang.Stmt, acc []*lang.For) bool {
		for _, s := range ss {
			switch x := s.(type) {
			case *lang.Assign:
				hit := false
				lang.WalkExpr(x.RHS, func(e lang.Expr) bool {
					if e == lang.Expr(ref) {
						hit = true
					}
					return true
				})
				lang.WalkExpr(x.LHS, func(e lang.Expr) bool {
					if e == lang.Expr(ref) {
						hit = true
					}
					return true
				})
				if hit {
					chain = append([]*lang.For(nil), acc...)
					return true
				}
			case *lang.For:
				if find(x.Body, append(acc, x)) {
					return true
				}
			}
		}
		return false
	}
	find(body, nil)
	cntRef := &lang.Ref{Name: cntName}
	for _, ix := range ref.Indices {
		cntRef.Indices = append(cntRef.Indices, lang.CloneExpr(ix))
	}
	out := []lang.Stmt{incr(cntRef)}
	for k := len(chain) - 1; k >= 0; k-- {
		f := chain[k]
		out = []lang.Stmt{&lang.For{Iter: f.Iter, Lo: lang.CloneExpr(f.Lo), Hi: lang.CloneExpr(f.Hi), Body: out}}
	}
	return out
}

// emitInspectorProEpi generates the prologue and epilogue for one inspector
// variable (the Figure 9 prologue/epilogue generalization).
func (ins *instrumenter) emitInspectorProEpi(plan *inspectorPlan, iv *inspVar) {
	iters := make([]string, len(iv.decl.Dims))
	rename := map[string]string{}
	for k := range iters {
		iters[k] = ins.names.fresh(fmt.Sprintf("ie%d", k))
		rename[iv.cellVars[k]] = iters[k]
	}
	mkRef := func(name string) *lang.Ref {
		r := &lang.Ref{Name: name}
		for _, it := range iters {
			r.Indices = append(r.Indices, &lang.Ref{Name: it})
		}
		return r
	}
	// countExpr builds <icnt[c] + static(c)> (reads of cell c per iteration)
	// as statements adding `value` to checksum cs that many times.
	perIterAdds := func(cs lang.CSName, value func() *lang.Ref, extraScale lang.Expr) []lang.Stmt {
		var out []lang.Stmt
		emit := func(count lang.Expr) {
			if extraScale != nil {
				count = &lang.Bin{Op: lang.BinMul, L: count, R: extraScale}
			}
			out = append(out, addChk(cs, value(), count))
		}
		if iv.cntName != "" {
			emit(mkRef(iv.cntName))
		}
		for _, piece := range iv.static {
			if piece.Count.IsZero() {
				continue
			}
			ce, err := polyToExpr(piece.Count, rename)
			if err != nil {
				continue
			}
			add := addChk(cs, value(), ce)
			if extraScale != nil {
				add = addChk(cs, value(), &lang.Bin{Op: lang.BinMul, L: ce, R: extraScale})
			}
			if cond := consToCond(gistParamOnly(piece.Domain), rename); cond != nil {
				out = append(out, &lang.If{Cond: cond, Then: []lang.Stmt{add}})
			} else {
				out = append(out, add)
			}
		}
		return out
	}

	if iv.written {
		// Prologue: initial values feed iteration 1's reads.
		pro := perIterAdds(lang.DefCS, func() *lang.Ref { return mkRef(iv.decl.Name) }, nil)
		plan.preWhile = append(plan.preWhile, loopNestOver(iters, iv.decl.Dims, pro)...)
		// Epilogue: the last iteration's definitions go unused; balance the
		// use-checksum with the final values (Figure 9's final loop).
		epi := perIterAdds(lang.UseCS, func() *lang.Ref { return mkRef(iv.decl.Name) }, nil)
		plan.postWhile = append(plan.postWhile, loopNestOver(iters, iv.decl.Dims, epi)...)
	} else {
		// Invariant array: def once + e_def in prologue; epilogue scales by
		// the dynamic iteration count (def added U(c)*iter - 1 more times).
		pro := []lang.Stmt{
			addChk(lang.DefCS, mkRef(iv.decl.Name), one()),
			addChk(lang.EDefCS, mkRef(iv.decl.Name), one()),
		}
		plan.preWhile = append(plan.preWhile, loopNestOver(iters, iv.decl.Dims, pro)...)
		iterRef := &lang.Ref{Name: plan.iterName}
		var epi []lang.Stmt
		epi = append(epi, perIterAdds(lang.DefCS, func() *lang.Ref { return mkRef(iv.decl.Name) }, iterRef)...)
		epi = append(epi,
			addChk(lang.DefCS, mkRef(iv.decl.Name), &lang.Un{Op: lang.UnNeg, X: one()}),
			addChk(lang.EUseCS, mkRef(iv.decl.Name), one()),
		)
		plan.postWhile = append(plan.postWhile, loopNestOver(iters, iv.decl.Dims, epi)...)
	}
}

// gistParamOnly keeps only constraints a generated guard must re-check: cell
// bounds that merely restate the enclosing rectangular loops are dropped.
func gistParamOnly(cons []poly.Constraint) []poly.Constraint {
	return cons
}

// inspectorDefAdds emits the def-checksum additions after a write to an
// inspector-counted array: the defined value joins the def-checksum once per
// read it will receive in the next while iteration (Figure 9's
// "count_p_new[j3]+1").
func (ins *instrumenter) inspectorDefAdds(x *lang.Assign) []lang.Stmt {
	// Find the plan owning this statement.
	for _, plan := range ins.insp {
		iv := plan.vars[x.LHS.Name]
		if iv == nil || !iv.writeStmts[x] {
			continue
		}
		// The write's subscripts are exactly the surrounding iterators;
		// rename cell variables to those iterators.
		rename := map[string]string{}
		for k, ix := range x.LHS.Indices {
			rename[iv.cellVars[k]] = ix.(*lang.Ref).Name
		}
		var out []lang.Stmt
		if iv.cntName != "" {
			cnt := &lang.Ref{Name: iv.cntName}
			for _, ix := range x.LHS.Indices {
				cnt.Indices = append(cnt.Indices, lang.CloneExpr(ix))
			}
			out = append(out, addChk(lang.DefCS, refClone(x.LHS), cnt))
		}
		for _, piece := range iv.static {
			if piece.Count.IsZero() {
				continue
			}
			ce, err := polyToExpr(piece.Count, rename)
			if err != nil {
				continue
			}
			add := addChk(lang.DefCS, refClone(x.LHS), ce)
			if cond := consToCond(piece.Domain, rename); cond != nil {
				out = append(out, &lang.If{Cond: cond, Then: []lang.Stmt{add}})
			} else {
				out = append(out, add)
			}
		}
		return out
	}
	panic("instrument: inspector def without plan for " + x.LHS.Name)
}
