// Command faultcov reproduces Table 1 of the paper: the percentage of
// undetected multi-bit memory errors under integer-modulo-addition checksums
// over arrays of 64-bit integers, with one checksum and with the
// two-checksum (address-rotated) scheme.
//
// Usage:
//
//	faultcov [-trials 100000] [-sizes 100,10000,1000000] [-flips 2,3,4,5,6] \
//	         [-patterns zero,one,random] [-schemes single,dual] [-seed 1] \
//	         [-epochs 0] [-endonly] [-recover] [-workers 0] [-timeout 0] \
//	         [-target data] [-detector unhardened] [-gate] \
//	         [-resume checkpoint.json] [-json out.json] \
//	         [-trace events.jsonl] [-metrics out] \
//	         [-serve addr] [-flight dump.json] [-chrome trace.json]
//
// The paper uses 100,000 trials; -trials 10000 gives the same shape in
// seconds rather than minutes. Trials run on a worker pool (-workers, default
// GOMAXPROCS) with deterministic per-trial seeding, so results are identical
// for any worker count. -resume names a checkpoint file: an interrupted
// campaign (Ctrl-C) records its finished work there and a re-run with the
// same configuration picks up where it stopped, producing the same final
// numbers as an uninterrupted run.
//
// -epochs E switches from the paper's single-shot array experiment to the
// epoch-scoped one: the array is a live working set advanced for E epochs
// under the def/use tracker, verification runs at every epoch boundary
// (-endonly restricts it to the last, the paper's program-end placement), and
// -recover (default true) runs each trial under the checkpoint/rollback
// supervisor, reporting detection latency and recovery success rate. Epoch
// mode uses the single-checksum scheme.
//
// -target aims the injected fault (epoch mode): at the protected data
// (default), or at the detector itself — "accumulator" and "counter" strike
// the checksum state, "checkpoint" corrupts a parked recovery snapshot, and
// "masking" pairs a data flip with the compensating accumulator flips that
// hide it. -detector selects "unhardened" (the paper's register-residency
// assumption taken on faith) and/or "hardened" (shadow-copy scrubs plus
// digest-verified checkpoint restores) variants of each cell, so the
// false-negative/false-positive cost of the assumption is measured directly.
//
// -gate turns the run into a CI check: after the campaign completes, exit
// non-zero if any cell recorded undetected corruption, a false negative or
// false positive, a degraded (tainted) trial, or a detected corruption that
// recovery failed to repair.
//
// -backend switches to the backend-comparison mode: the named detection
// backends (comma list of checksum, addrsum, dme — or "all") race an
// identical matrix of fault cells (a data bit flip plus the three address
// faults, including the valid-word-aliasing redirect that data checksums
// provably cannot see), and each (backend, cell) pair is judged against its
// structural expectation — Detect cells must show zero escapes, Blind cells
// zero detections. Uses the first -sizes entry as the word count and -epochs
// (default 4) epochs; -gate exits non-zero on any expectation violation, and
// -bench-out merges the per-backend overhead/latency rows into an existing
// BENCH_overhead.json.
//
// -trace streams one fault.injected event per trial per cell (with the
// flipped word/bit coordinates) plus verification outcomes; select a single
// cell (one size, one flip count, one pattern, one scheme) to get exactly
// -trials injection events.
//
// -serve starts the live telemetry endpoint (/metrics, /events, /flight,
// /trace, /debug/pprof) for watching a long campaign. -flight arms the crash
// flight recorder: the most recent spans and events are kept in a fixed ring
// and dumped to the named file automatically when a trial detects a fault in
// the detector itself, sees checkpoint or WAL corruption, or the process is
// signalled. -chrome writes the per-trial and supervisor spans as Chrome
// trace-event JSON loadable in Perfetto.
//
// -crash N switches to the process-level crash campaign: each trial runs the
// durable (WAL-checkpointing) epoch workload in a child process — faultcov
// re-executes itself — SIGKILLs it at a seeded step, optionally corrupts the
// on-disk log (-crash-cells kill,torn-write,disk-flip), restarts it, and
// requires the resumed run to be byte-identical to an uninterrupted one. The
// workload uses the first -sizes entry as its word count and -epochs (default
// 6) epochs. -wal names the scratch directory holding the per-trial WALs and
// reports (default: a temporary directory, removed afterwards); -gate exits
// non-zero on any mismatch, silent acceptance of a corrupt checkpoint, or
// missed resume.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"defuse/internal/bench"
	"defuse/internal/checksum"
	"defuse/internal/faults"
	"defuse/internal/wal"
	"defuse/telemetry"
)

type options struct {
	trials   int
	sizes    string
	flips    string
	patterns string
	schemes  string
	seed     int64
	op       string
	epochs   int
	endOnly  bool
	recover  bool
	workers  int
	timeout  time.Duration
	resume   string
	jsonOut  string
	targets  string
	detector string
	gate     bool
	crash    int
	crashSel string
	walDir   string
	backend  string
	benchOut string
}

func main() {
	if faults.IsCrashChild() {
		faults.CrashChildMain() // crash-campaign child: run the workload, never return
	}
	var o options
	flag.IntVar(&o.trials, "trials", 100000, "injection trials per cell (paper: 100000)")
	flag.StringVar(&o.sizes, "sizes", "100,10000,1000000", "array sizes in 64-bit words")
	flag.StringVar(&o.flips, "flips", "2,3,4,5,6", "bit-flip counts")
	flag.StringVar(&o.patterns, "patterns", "zero,one,random", "data patterns: zero, one, random")
	flag.StringVar(&o.schemes, "schemes", "single,dual", "checksum schemes: single, dual (ignored with -epochs)")
	flag.Int64Var(&o.seed, "seed", 1, "random seed; each trial derives its own sub-seed")
	flag.StringVar(&o.op, "op", "modadd", "checksum operator: modadd, xor, onescomp")
	flag.IntVar(&o.epochs, "epochs", 0, "run the epoch-scoped experiment with this many epochs per trial (0 = classic Table 1)")
	flag.BoolVar(&o.endOnly, "endonly", false, "with -epochs: verify only at the final boundary (the paper's program-end placement)")
	flag.BoolVar(&o.recover, "recover", true, "with -epochs: run trials under the checkpoint/rollback recovery supervisor")
	flag.StringVar(&o.targets, "target", "data", "fault targets (comma list): data, accumulator, counter, checkpoint, masking (non-data need -epochs)")
	flag.StringVar(&o.detector, "detector", "unhardened", "detector variants (comma list): unhardened, hardened")
	flag.BoolVar(&o.gate, "gate", false, "exit non-zero on undetected corruption, false verdicts, degraded trials, or failed recovery")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-trial timeout (0 = none)")
	flag.StringVar(&o.resume, "resume", "", "checkpoint file: record finished chunks and resume an interrupted campaign from it")
	flag.StringVar(&o.jsonOut, "json", "", `write the campaign result as JSON to this file ("-" for stdout)`)
	flag.IntVar(&o.crash, "crash", 0, "run the process-level crash campaign with this many trials per cell (0 = disabled)")
	flag.StringVar(&o.crashSel, "crash-cells", "kill,torn-write,disk-flip", "crash cells (comma list): kill, torn-write, disk-flip")
	flag.StringVar(&o.walDir, "wal", "", "with -crash: scratch directory for the per-trial write-ahead logs (default: a removed temp dir)")
	flag.StringVar(&o.backend, "backend", "", "run the backend comparison over these detection backends (comma list: checksum, addrsum, dme; or all)")
	flag.StringVar(&o.benchOut, "bench-out", "", "with -backend: merge the per-backend rows into this existing BENCH_overhead.json")
	obsFlags := telemetry.ObsFlags(flag.CommandLine)
	flag.Parse()

	obs, err := telemetry.SetupObs(obsFlags())
	if err != nil {
		fatal(err)
	}
	if obs.Server != nil {
		fmt.Fprintf(os.Stderr, "faultcov: serving telemetry on http://%s\n", obs.Server.Addr())
	}
	// Uniform two-stage signal discipline: the first SIGINT/SIGTERM cancels
	// the context for a graceful, resumable shutdown — and flushes the
	// telemetry artifacts (JSONL buffer, flight ring, metrics, Chrome trace)
	// so they survive even a later SIGKILL; a second signal finishes the
	// sinks and exits immediately.
	ctx, stop := telemetry.GracefulSignals(obs)
	err = run(ctx, o, obs)
	stop()
	if ferr := obs.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
}

func run(ctx context.Context, o options, obs *telemetry.Obs) error {
	sink, reg := obs.Sink, obs.Metrics
	kind, err := parseKind(o.op)
	if err != nil {
		return err
	}
	sizeList, err := parseInts(o.sizes)
	if err != nil {
		return err
	}
	flipList, err := parseInts(o.flips)
	if err != nil {
		return err
	}
	patternList, err := parsePatterns(o.patterns)
	if err != nil {
		return err
	}
	dualList, err := parseSchemes(o.schemes)
	if err != nil {
		return err
	}
	targetList, err := parseTargets(o.targets)
	if err != nil {
		return err
	}
	hardenedList, err := parseDetectors(o.detector)
	if err != nil {
		return err
	}
	if o.crash > 0 {
		return runCrash(ctx, o, kind, sizeList[0], sink, reg)
	}
	if o.backend != "" {
		return runCompare(ctx, o, kind, sizeList[0])
	}
	if o.epochs > 0 {
		// Epoch mode measures the single def/use checksum pair; the dual
		// rotated scheme belongs to the array-sum experiment.
		dualList = []bool{false}
	}

	var cells []faults.CoverageConfig
	for _, k := range flipList {
		for _, n := range sizeList {
			for _, dual := range dualList {
				for _, p := range patternList {
					for _, tgt := range targetList {
						for _, hardened := range hardenedList {
							cells = append(cells, faults.CoverageConfig{
								Kind: kind, Words: n, BitFlips: k, Pattern: p,
								Dual: dual, Trials: o.trials, Seed: o.seed,
								Epochs: o.epochs, EndOnlyVerify: o.endOnly,
								Recover: o.epochs > 0 && o.recover,
								Target:  tgt, Hardened: hardened,
								Trace: sink, Metrics: reg, Tracer: obs.Tracer,
							})
						}
					}
				}
			}
		}
	}

	camp := &faults.Campaign{
		Cells:          cells,
		Workers:        o.workers,
		TrialTimeout:   o.timeout,
		CheckpointPath: o.resume,
	}
	res, runErr := camp.Run(ctx)
	if res != nil {
		if err := render(o, res, sizeList, flipList, patternList, dualList); err != nil && runErr == nil {
			runErr = err
		}
	}
	if errors.Is(runErr, context.Canceled) && o.resume != "" {
		fmt.Fprintf(os.Stderr, "faultcov: interrupted; finished chunks saved to %s, re-run to resume\n", o.resume)
	}
	if o.gate && runErr == nil && res != nil {
		runErr = res.Gate()
	}
	return runErr
}

// runCompare races the detection backends over the shared fault matrix and
// renders the comparison artifact (stdout table, -json document, and
// optionally the -bench-out merge into BENCH_overhead.json).
func runCompare(ctx context.Context, o options, kind checksum.Kind, words int) error {
	epochs := o.epochs
	if epochs <= 0 {
		epochs = 4
	}
	var backends []faults.Backend
	if strings.TrimSpace(o.backend) != "all" {
		for _, name := range strings.Split(o.backend, ",") {
			b, err := faults.ParseBackend(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			backends = append(backends, b)
		}
	}
	res, err := faults.RunComparison(ctx, faults.CompareConfig{
		Words: words, Epochs: epochs, Trials: o.trials, Seed: o.seed,
		Kind: kind, Backends: backends, Workers: o.workers,
	})
	if err != nil {
		return err
	}
	if o.jsonOut != "" {
		raw, jerr := json.MarshalIndent(res, "", "  ")
		if jerr != nil {
			return jerr
		}
		raw = append(raw, '\n')
		if o.jsonOut == "-" {
			if _, werr := os.Stdout.Write(raw); werr != nil {
				return werr
			}
		} else if werr := os.WriteFile(o.jsonOut, raw, 0o644); werr != nil {
			return werr
		}
	} else {
		fmt.Printf("backend comparison: %d words, %d epochs, %d trials per cell\n\n", words, epochs, o.trials)
		fmt.Printf("%-9s %-10s %-7s %9s %11s %8s %5s\n", "backend", "cell", "expect", "detected", "undetected", "skipped", "ok")
		for _, c := range res.Cells {
			fmt.Printf("%-9s %-10s %-7s %9d %11d %8d %5v\n",
				c.Backend, c.Cell, c.Expectation, c.Detected, c.Undetected, c.Skipped, c.OK)
		}
		fmt.Println()
		for _, r := range res.Rows {
			fmt.Printf("%-9s %10.0f ns/trial  mean detection latency %.2f epochs  all-expected=%v\n",
				r.Backend, r.NsPerTrial, r.MeanDetectionLatency, r.AllExpected)
		}
	}
	if o.benchOut != "" {
		rows := make([]bench.BackendRow, 0, len(res.Rows))
		for _, r := range res.Rows {
			row := bench.BackendRow{
				Backend:              r.Backend,
				NsPerTrial:           r.NsPerTrial,
				MeanDetectionLatency: r.MeanDetectionLatency,
				AllExpected:          r.AllExpected,
			}
			for _, c := range res.Cells {
				if c.Backend == r.Backend && c.Cell == "addr-alias" {
					row.AliasEscapes = c.Undetected
					row.AliasDetected = c.Detected
				}
			}
			rows = append(rows, row)
		}
		err := bench.MergeBackendRows(o.benchOut, rows, func(path string, data []byte) error {
			return wal.WriteFileAtomic(path, data, 0o644)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "faultcov: merged %d backend rows into %s\n", len(rows), o.benchOut)
	}
	if o.gate {
		return res.Gate()
	}
	return nil
}

// runCrash executes the process-level crash campaign: faultcov re-executes
// itself as the child (the CrashChildEnv hook at the top of main routes the
// child into the workload).
func runCrash(ctx context.Context, o options, kind checksum.Kind, words int, sink telemetry.Sink, reg *telemetry.Registry) error {
	epochs := o.epochs
	if epochs <= 0 {
		epochs = 6
	}
	var cells []faults.CrashConfig
	for _, name := range strings.Split(o.crashSel, ",") {
		cell, err := faults.ParseCrashCell(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		cells = append(cells, faults.CrashConfig{
			Kind: kind, Words: words, Epochs: epochs,
			Trials: o.crash, Seed: o.seed, Cell: cell,
			Trace: sink, Metrics: reg,
		})
	}
	camp := &faults.CrashCampaign{Cells: cells, Dir: o.walDir, Workers: o.workers}
	res, err := camp.Run(ctx)
	if err != nil {
		return err
	}
	if o.jsonOut != "" {
		raw, jerr := json.MarshalIndent(res, "", "  ")
		if jerr != nil {
			return jerr
		}
		raw = append(raw, '\n')
		if o.jsonOut == "-" {
			if _, werr := os.Stdout.Write(raw); werr != nil {
				return werr
			}
		} else if werr := os.WriteFile(o.jsonOut, raw, 0o644); werr != nil {
			return werr
		}
	} else {
		fmt.Printf("crash campaign: %d words, %d epochs, %d trials per cell\n\n", words, epochs, o.crash)
		for _, c := range res.Cells {
			fmt.Printf("%-11s killed=%d identical=%d resumed=%d fresh=%d torn=%d corrupt=%d silent=%d mismatched=%d\n",
				c.CellName, c.Killed, c.Identical, c.Resumed, c.Fresh,
				c.TornReported, c.CorruptReported, c.SilentAcceptances, c.Mismatched)
		}
	}
	if o.gate {
		return res.Gate()
	}
	return nil
}

func render(o options, res *faults.CampaignResult, sizes, flips []int,
	patterns []faults.Pattern, duals []bool) error {
	if o.jsonOut != "" {
		raw, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if o.jsonOut == "-" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		return os.WriteFile(o.jsonOut, raw, 0o644)
	}
	if o.epochs > 0 {
		fmt.Printf("epoch-scoped fault coverage: %d epochs, %d trials per cell\n\n", o.epochs, o.trials)
		for _, r := range res.Results {
			fmt.Println(r.String())
		}
		if !res.Completed {
			fmt.Println("(campaign incomplete: partial tallies above)")
		}
		return nil
	}

	// Classic mode: the Table 1 grid. Results arrive indexed in the same
	// flips->sizes->schemes->patterns nesting order the cells were built in.
	fmt.Printf("Table 1: percentage of undetected errors with %s checksums (%d trials)\n\n", o.op, o.trials)
	fmt.Printf("%-10s %-9s", "#bit-flips", "N")
	for _, dual := range duals {
		for _, p := range patterns {
			fmt.Printf(" | %-11s", cellName(p, dual))
		}
	}
	fmt.Println()
	i := 0
	for _, k := range flips {
		for _, n := range sizes {
			fmt.Printf("%-10d %-9d", k, n)
			for range duals {
				for range patterns {
					fmt.Printf(" | %-11s", fmt.Sprintf("%.3f%%", res.Results[i].UndetectedPercent()))
					i++
				}
			}
			fmt.Println()
		}
	}
	if !res.Completed {
		fmt.Println("(campaign incomplete: partial tallies above)")
	}
	return nil
}

func cellName(p faults.Pattern, dual bool) string {
	scheme := "1cs"
	if dual {
		scheme = "2cs"
	}
	return fmt.Sprintf("%s %v", scheme, p)
}

func parseKind(s string) (checksum.Kind, error) {
	switch s {
	case "modadd":
		return checksum.ModAdd, nil
	case "xor":
		return checksum.XOR, nil
	case "onescomp":
		return checksum.OnesComp, nil
	}
	return 0, fmt.Errorf("unknown operator %q", s)
}

func parsePatterns(s string) ([]faults.Pattern, error) {
	var out []faults.Pattern
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "zero":
			out = append(out, faults.AllZero)
		case "one":
			out = append(out, faults.AllOne)
		case "random":
			out = append(out, faults.Random)
		default:
			return nil, fmt.Errorf("unknown pattern %q (want zero, one, or random)", p)
		}
	}
	return out, nil
}

func parseSchemes(s string) ([]bool, error) {
	var out []bool
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "single":
			out = append(out, false)
		case "dual":
			out = append(out, true)
		default:
			return nil, fmt.Errorf("unknown scheme %q (want single or dual)", p)
		}
	}
	return out, nil
}

func parseTargets(s string) ([]faults.Target, error) {
	var out []faults.Target
	for _, p := range strings.Split(s, ",") {
		t, err := faults.ParseTarget(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func parseDetectors(s string) ([]bool, error) {
	var out []bool
	for _, p := range strings.Split(s, ",") {
		switch strings.TrimSpace(p) {
		case "unhardened":
			out = append(out, false)
		case "hardened":
			out = append(out, true)
		default:
			return nil, fmt.Errorf("unknown detector variant %q (want unhardened or hardened)", p)
		}
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcov:", err)
	os.Exit(1)
}
