// Package memsim simulates the memory subsystem of the paper's fault model
// (Section 2.2): a word-addressed store that is vulnerable to bit flips
// between a write and a subsequent read, while processor state (registers,
// ALU) is assumed resilient. The interpreter executes programs against this
// memory, and fault-injection experiments corrupt words between operations.
package memsim

import "fmt"

// Memory is a flat word-addressed memory with load/store accounting and an
// optional load hook for modeling in-flight corruption.
type Memory struct {
	words  []uint64
	loads  uint64
	stores uint64

	// loadHook, when set, may substitute the value observed by a load
	// (modeling a fault in the data path or address logic).
	loadHook func(addr int, raw uint64) uint64

	// faultHook, when set, observes every FlipBit call, so experiment
	// harnesses can stream fault-injection telemetry without wrapping
	// every injection site.
	faultHook func(addr, bit int)
}

// New returns a memory with the given capacity in 64-bit words.
func New(words int) *Memory {
	return &Memory{words: make([]uint64, words)}
}

// Size returns the memory capacity in words.
func (m *Memory) Size() int { return len(m.words) }

// Load reads the word at addr.
func (m *Memory) Load(addr int) uint64 {
	if addr < 0 || addr >= len(m.words) {
		panic(fmt.Sprintf("memsim: load out of bounds: %d of %d", addr, len(m.words)))
	}
	m.loads++
	raw := m.words[addr]
	if m.loadHook != nil {
		raw = m.loadHook(addr, raw)
	}
	return raw
}

// Store writes the word at addr.
func (m *Memory) Store(addr int, v uint64) {
	if addr < 0 || addr >= len(m.words) {
		panic(fmt.Sprintf("memsim: store out of bounds: %d of %d", addr, len(m.words)))
	}
	m.stores++
	m.words[addr] = v
}

// Peek reads a word without counting it as a program load (experiment
// harness use).
func (m *Memory) Peek(addr int) uint64 { return m.words[addr] }

// Poke writes a word without counting it as a program store (initialization
// and fault injection).
func (m *Memory) Poke(addr int, v uint64) { m.words[addr] = v }

// FlipBit flips one bit of the word at addr, modeling a transient fault in
// stored data.
func (m *Memory) FlipBit(addr, bit int) {
	if bit < 0 || bit > 63 {
		panic(fmt.Sprintf("memsim: bit %d out of range", bit))
	}
	m.words[addr] ^= 1 << uint(bit)
	if m.faultHook != nil {
		m.faultHook(addr, bit)
	}
}

// Snapshot returns a copy of the memory contents, for epoch checkpointing.
// Access counters and hooks are not part of the snapshot: a restore rewinds
// the protected data, not the accounting of work already performed.
func (m *Memory) Snapshot() []uint64 {
	return append([]uint64(nil), m.words...)
}

// Restore overwrites the memory contents with a snapshot taken earlier. The
// snapshot must be no larger than the current memory (allocations made since
// the snapshot keep their contents).
func (m *Memory) Restore(snap []uint64) {
	if len(snap) > len(m.words) {
		panic(fmt.Sprintf("memsim: restore of %d words into %d", len(snap), len(m.words)))
	}
	copy(m.words, snap)
}

// SetLoadHook installs (or clears, with nil) the load observation hook.
func (m *Memory) SetLoadHook(h func(addr int, raw uint64) uint64) { m.loadHook = h }

// SetFaultHook installs (or clears, with nil) the fault observation hook
// invoked after every FlipBit.
func (m *Memory) SetFaultHook(h func(addr, bit int)) { m.faultHook = h }

// Loads returns the number of Load calls.
func (m *Memory) Loads() uint64 { return m.loads }

// Stores returns the number of Store calls.
func (m *Memory) Stores() uint64 { return m.stores }

// ResetCounters zeroes the access counters.
func (m *Memory) ResetCounters() { m.loads, m.stores = 0, 0 }

// Region is an allocated range of words.
type Region struct {
	Base, Size int
}

// Allocator hands out disjoint regions from a Memory.
type Allocator struct {
	mem  *Memory
	next int
}

// NewAllocator returns an allocator over m starting at word 0.
func NewAllocator(m *Memory) *Allocator { return &Allocator{mem: m} }

// Alloc reserves size words, growing the memory if needed.
func (a *Allocator) Alloc(size int) Region {
	if size < 0 {
		panic("memsim: negative allocation")
	}
	if a.next+size > len(a.mem.words) {
		grown := make([]uint64, a.next+size)
		copy(grown, a.mem.words)
		a.mem.words = grown
	}
	r := Region{Base: a.next, Size: size}
	a.next += size
	return r
}

// Used returns the number of words allocated so far.
func (a *Allocator) Used() int { return a.next }
