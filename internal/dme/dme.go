// Package dme implements divergent dual execution: the same kernel runs
// twice over structurally decorrelated memory layouts, and the two runs are
// cross-checked at epoch boundaries.
//
// Checksums (internal/checksum, internal/addrsum) detect faults by balancing
// a ledger over one execution. DME instead removes the single point of
// failure: variant A and variant B place every logical word at *different*
// physical locations (a rotated layout), so no single physical fault — a
// stuck bit, a corrupted cache line, a wrong-address store — can corrupt
// both variants into the same wrong logical state. A fault that strikes one
// variant diverges it from the other, and the boundary cross-check (cheap
// output accumulators first, then a full logical sweep) reports exactly
// which logical word disagrees. This mirrors the DME design in PAPERS.md:
// duplicated execution with diversified data placement, verified at
// synchronization points.
//
// The package offers two levels: Variant is the campaign-facing simulated
// memory with a rotated layout and a fold-on-store output accumulator, used
// by internal/faults' DME backend; Pair runs one lang program on two forked
// interp machines whose allocations are shifted apart (interp.WithBaseOffset)
// and cross-checks named results — the same idea at the interpreter level.
package dme

import (
	"fmt"
	"math"

	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
)

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// foldKey binds a store's logical index to the value it wrote. Folding the
// bound pair (not just the value) makes the output accumulator sensitive to
// *where* results landed, so two variants that computed the same multiset of
// values in the wrong places still diverge.
func foldKey(index int, value uint64) uint64 {
	return mix64(uint64(int64(index))*0x9e3779b97f4a7c15 ^ mix64(value))
}

// DivergenceError reports the two variants disagreeing at a cross-check.
type DivergenceError struct {
	// Site is "output" for the store-stream accumulators, "word" for the
	// full-sweep comparison, or a variable name for Pair cross-checks.
	Site string
	// Word is the logical index that diverged (full sweep and Pair only).
	Word int
	// A and B are the disagreeing values (raw bits for Pair floats).
	A, B uint64
}

// RecoveryClass classifies a divergence as protected-data corruption for the
// recovery supervisor: roll both variants back and re-execute the epoch.
func (e *DivergenceError) RecoveryClass() recovery.FaultClass { return recovery.ClassData }

func (e *DivergenceError) Error() string {
	if e.Site == "output" {
		return fmt.Sprintf("dme: output accumulators diverged: A %#x != B %#x", e.A, e.B)
	}
	return fmt.Sprintf("dme: variants diverged at %s[%d]: A %#x != B %#x", e.Site, e.Word, e.A, e.B)
}

// Variant is one execution replica: a simulated memory whose logical indices
// are rotated to distinct physical locations, plus an output accumulator
// folding every store. Two variants with different shifts never co-locate a
// logical word (for shifts distinct mod words), which is the decorrelation
// DME's fault-independence argument rests on.
type Variant struct {
	words  int
	shift  int
	mem    *memsim.Memory
	out    uint64
	stores uint64
}

// NewVariant returns a variant over words logical words with the given
// layout rotation. Shift 0 is the identity layout.
func NewVariant(words, shift int) *Variant {
	if words <= 0 {
		panic(fmt.Sprintf("dme: variant needs at least 1 word, got %d", words))
	}
	return &Variant{words: words, shift: ((shift % words) + words) % words, mem: memsim.New(words)}
}

// phys maps a logical index to its physical location in this variant.
func (v *Variant) phys(i int) int { return (i + v.shift) % v.words }

// Words returns the logical region size.
func (v *Variant) Words() int { return v.words }

// Shift returns the layout rotation.
func (v *Variant) Shift() int { return v.shift }

// Load reads logical word i through the counted access path.
func (v *Variant) Load(i int) uint64 { return v.mem.Load(v.phys(i)) }

// Store writes logical word i and folds the (index, value) pair into the
// output accumulator.
func (v *Variant) Store(i int, val uint64) {
	v.mem.Store(v.phys(i), val)
	v.out += foldKey(i, val)
	v.stores++
}

// Peek reads logical word i without counting an access or folding.
func (v *Variant) Peek(i int) uint64 { return v.mem.Peek(v.phys(i)) }

// Poke initializes logical word i without counting or folding.
func (v *Variant) Poke(i int, val uint64) { v.mem.Poke(v.phys(i), val) }

// FlipBit corrupts one bit of logical word i in place — the injection hook
// for fault campaigns. The flip lands at this variant's physical location,
// so the same logical coordinates strike different physical words in A and B.
func (v *Variant) FlipBit(i, bit int) { v.mem.FlipBit(v.phys(i), bit) }

// Accumulator returns the output accumulator.
func (v *Variant) Accumulator() uint64 { return v.out }

// Stores returns the number of folded stores.
func (v *Variant) Stores() uint64 { return v.stores }

// ErrSnapshotCorrupt is returned when a sealed variant snapshot fails its
// integrity digest.
var errSnapshotCorrupt = fmt.Errorf("dme: variant snapshot failed integrity check")

// Snapshot is a sealed copy of a variant's state at an epoch boundary.
type Snapshot struct {
	mem    memsim.Snapshot
	out    uint64
	stores uint64
	digest uint64
}

// Snapshot seals the variant's current state for rollback.
func (v *Variant) Snapshot() Snapshot {
	s := Snapshot{mem: v.mem.Snapshot(), out: v.out, stores: v.stores}
	s.digest = mix64(s.out) ^ mix64(s.stores^0x5bd1e995)
	return s
}

// Restore rolls the variant back to a sealed snapshot, verifying both the
// accumulator seal and the memory snapshot's own integrity check.
func (v *Variant) Restore(s Snapshot) error {
	if s.digest != mix64(s.out)^mix64(s.stores^0x5bd1e995) {
		return errSnapshotCorrupt
	}
	if err := v.mem.Restore(s.mem); err != nil {
		return err
	}
	v.out, v.stores = s.out, s.stores
	return nil
}

// RestoreUnchecked rolls back without integrity checks — the unhardened
// baseline the detector-fault campaigns compare against.
func (v *Variant) RestoreUnchecked(s Snapshot) error {
	if err := v.mem.RestoreUnchecked(s.mem); err != nil {
		return err
	}
	v.out, v.stores = s.out, s.stores
	return nil
}

// CrossCheck compares two variants at a synchronization point: the output
// accumulators first (one comparison covering every store since the last
// check), then a full sweep of the logical contents so a divergence is
// pinned to a word. The variants' layouts may differ; only logical content
// is compared.
func CrossCheck(a, b *Variant) error {
	if a.words != b.words {
		return fmt.Errorf("dme: cross-check over mismatched regions: %d vs %d words", a.words, b.words)
	}
	if a.out != b.out {
		return &DivergenceError{Site: "output", A: a.out, B: b.out}
	}
	for i := 0; i < a.words; i++ {
		if va, vb := a.Peek(i), b.Peek(i); va != vb {
			return &DivergenceError{Site: "word", Word: i, A: va, B: vb}
		}
	}
	return nil
}

// Pair runs one program on two interp machines whose allocations are offset
// from each other, so every variable lands at different simulated addresses
// in A and B — interpreter-level divergent dual execution.
type Pair struct {
	A, B *interp.Machine
}

// NewPair builds the two machines. pad is the allocation offset separating
// B's layout from A's; it must be positive so the layouts actually differ.
func NewPair(prog *lang.Program, params map[string]int64, pad int, opts ...interp.Option) (*Pair, error) {
	if pad <= 0 {
		return nil, fmt.Errorf("dme: pair needs a positive layout offset, got %d", pad)
	}
	a, err := interp.New(prog, params, opts...)
	if err != nil {
		return nil, err
	}
	b, err := interp.New(prog, params, append(append([]interp.Option(nil), opts...), interp.WithBaseOffset(pad))...)
	if err != nil {
		return nil, err
	}
	return &Pair{A: a, B: b}, nil
}

// Run executes both machines to completion.
func (p *Pair) Run() error {
	if err := p.A.Run(); err != nil {
		return fmt.Errorf("dme: variant A: %w", err)
	}
	if err := p.B.Run(); err != nil {
		return fmt.Errorf("dme: variant B: %w", err)
	}
	return nil
}

// CrossCheckFloats compares the named float arrays element-wise across the
// two machines, returning a *DivergenceError naming the variable and index
// on the first disagreement.
func (p *Pair) CrossCheckFloats(names ...string) error {
	for _, name := range names {
		av, err := p.A.SnapshotFloats(name)
		if err != nil {
			return err
		}
		bv, err := p.B.SnapshotFloats(name)
		if err != nil {
			return err
		}
		if len(av) != len(bv) {
			return fmt.Errorf("dme: %s has %d elements in A, %d in B", name, len(av), len(bv))
		}
		for i := range av {
			if ab, bb := math.Float64bits(av[i]), math.Float64bits(bv[i]); ab != bb {
				return &DivergenceError{Site: name, Word: i, A: ab, B: bb}
			}
		}
	}
	return nil
}
