// Package codegen lowers checked (and typically instrumented) lang programs
// to natively compiled Go: either a plugin-style compiled closure built at
// runtime (Compile) or generated Go source committed and built with the
// module (Source; see the gennative subpackage). Both forms execute against
// the same memsim memory, checksum.Pair, recovery supervisor, and telemetry
// wiring the interpreter uses, with an identical region layout, so fault
// coordinates, checkpoints, and verdicts carry across backends unchanged.
//
// The interpreter remains the reference oracle: the native semantics below
// replicate interp's dynamic semantics exactly — evaluation order, integer
// and float typing (static here, dynamic there, provably equal on checked
// programs), store conversions, bounds and division-by-zero errors down to
// the message text, and checksum folds through checksum.Pair.ScaleFold so
// the shadow copies stay in step. The differential harness in diff_test.go
// holds the two backends to byte-identical outputs, accumulator and shadow
// state, epoch digests, verdicts, and detection latencies.
//
// What is different, by design: the native backend does not maintain
// interp's per-operation OpCounts (the cost-model columns stay
// interpreter-derived), and its step/cancellation budget ticks once per loop
// iteration rather than once per statement. Neither affects observable
// program state.
package codegen

import (
	"fmt"

	"defuse/internal/lang"
)

// Fn is the native execution ABI: run epoch k of an epochs-partitioned
// execution against m. Running epochs 0..epochs-1 in order is equivalent to
// one full interpreter Run; Fn(m, 0, 1) is the single-shot full run. The
// epoch partition replicates interp.EpochPlan's chunk arithmetic over the
// program's first top-level for loop (see Slice).
type Fn func(m *Machine, epoch, epochs int) error

// CheckEpoch validates an epoch coordinate. Generated code calls it on
// entry.
func CheckEpoch(epoch, epochs int) error {
	if epochs < 1 || epoch < 0 || epoch >= epochs {
		return fmt.Errorf("codegen: epoch %d out of range [0,%d)", epoch, epochs)
	}
	return nil
}

// Slice returns the inclusive iteration sub-range of [lo,hi] assigned to
// epoch k of n. It is the exact chunk arithmetic of interp.EpochPlan: chunk
// = ceil(count/n), start = lo + k*chunk, end = min(start+chunk-1, hi). An
// empty range (hi < lo) yields start > end for every epoch.
func Slice(lo, hi int64, k, n int) (start, end int64) {
	count := hi - lo + 1
	if count < 0 {
		count = 0
	}
	chunk := (count + int64(n) - 1) / int64(n)
	start = lo + int64(k)*chunk
	end = start + chunk - 1
	if end > hi {
		end = hi
	}
	return start, end
}

// RuntimeError reports a native execution failure (bounds, division by
// zero, step budget). Its position and message text match the interpreter's
// RuntimeError for the same program point, so differential harnesses can
// compare failures modulo the package prefix.
type RuntimeError struct {
	Pos lang.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("codegen: %s: %s", e.Pos, e.Msg) }

// DetectionError reports that assert_checksums() detected a memory error.
type DetectionError struct {
	Pos lang.Pos
	Err error // the underlying *checksum.MismatchError
}

func (e *DetectionError) Error() string {
	return fmt.Sprintf("codegen: %s: %v", e.Pos, e.Err)
}

func (e *DetectionError) Unwrap() error { return e.Err }

// CancelError reports that execution was abandoned because the machine's
// context was cancelled. It unwraps to the context error, mirroring
// interp.CancelError, so recovery's DefaultClassify treats it as terminal.
type CancelError struct {
	Pos lang.Pos
	Err error
}

func (e *CancelError) Error() string { return fmt.Sprintf("codegen: %s: cancelled: %v", e.Pos, e.Err) }

func (e *CancelError) Unwrap() error { return e.Err }

// Runtime helpers referenced by generated code and compiled closures. They
// replicate interp's intrinsic semantics for integer arguments.

// AbsI returns the integer absolute value, interp-style (no special casing
// of MinInt64: Go negation wraps identically in both backends).
func AbsI(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// MinI returns the smaller integer.
func MinI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxI returns the larger integer.
func MaxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// B2I converts a comparison result to the language's 0/1 integer booleans.
func B2I(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
