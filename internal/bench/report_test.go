package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRows() ([]Figure10Row, []Figure11Row) {
	rows10 := []Figure10Row{
		{Bench: "jacobi", OriginalSeconds: 0.01, ResilientTime: 1.9, OptimizedTime: 1.4, ResilientOps: 1.8, OptimizedOps: 1.4},
		{Bench: "cg", OriginalSeconds: 0.02, ResilientTime: 2.1, OptimizedTime: 1.5, ResilientOps: 2.0, OptimizedOps: 1.5},
	}
	rows11 := []Figure11Row{
		{Bench: "jacobi", HWEstimate: 1.05},
		{Bench: "cg", HWEstimate: 1.10},
	}
	return rows10, rows11
}

func TestOverheadReportRoundTrip(t *testing.T) {
	rows10, rows11 := sampleRows()
	rep, err := BuildOverheadReport(rows10, rows11, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != OverheadSchema || len(rep.Rows) != 2 {
		t.Fatalf("report = %+v, want schema %s with 2 rows", rep, OverheadSchema)
	}
	if rep.Rows[0].HWEstimate != 1.05 || rep.Rows[1].HWEstimate != 1.10 {
		t.Errorf("hw estimates not merged: %+v", rep.Rows)
	}
	rg, og := GeoMeans(rows10)
	if rep.Geomean.ResilientOps != rg || rep.Geomean.OptimizedOps != og {
		t.Errorf("geomean = %+v, want %v/%v", rep.Geomean, rg, og)
	}
	if rep.Geomean.HWEstimate <= 1.05 || rep.Geomean.HWEstimate >= 1.10 {
		t.Errorf("hw geomean %v not between row values", rep.Geomean.HWEstimate)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseOverheadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 2 || back.Rows[1].Bench != "cg" || back.Scale != 0.5 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestBuildOverheadReportValidation(t *testing.T) {
	rows10, rows11 := sampleRows()
	if _, err := BuildOverheadReport(rows10, rows11[:1], 1); err == nil {
		t.Error("mismatched row counts not rejected")
	}
	bad := append([]Figure11Row(nil), rows11...)
	bad[1].Bench = "other"
	if _, err := BuildOverheadReport(rows10, bad, 1); err == nil {
		t.Error("mismatched bench names not rejected")
	}
}

func TestParseOverheadReportRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong schema": `{"schema":"other/v9","rows":[{"bench":"x"}]}`,
		"no rows":      `{"schema":"` + OverheadSchema + `","rows":[]}`,
		"not json":     `BENCHMARK jacobi 1.8`,
	}
	for name, in := range cases {
		if _, err := ParseOverheadReport(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid report", name)
		}
	}
}
