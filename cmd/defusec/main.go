// Command defusec is the defuse compiler driver: it parses a program in the
// defuse loop language, instruments it with def-use checksum error detection
// (optionally applying index-set splitting and inspector hoisting), prints
// the instrumented program, and can run it on the simulated memory
// subsystem — optionally with an injected fault to demonstrate detection.
//
// Usage:
//
//	defusec [-split] [-inspector] [-analyze] [-run] [-param n=100,...] \
//	        [-inject step:array:index:bit] [-trace events.jsonl] [-metrics out] \
//	        [-serve addr] [-flight dump.json] [-chrome trace.json] file.dl
//
// With no file the program is read from standard input. -trace streams
// structured events (compile.phase, plan.chosen, fault.injected, detection,
// verify.*) as JSON lines; -metrics writes a final metrics snapshot (JSON if
// the path ends in .json, Prometheus text otherwise). -serve exposes the
// live telemetry endpoint (/metrics, /events, /flight, /trace, pprof),
// -flight arms the crash flight recorder (the recent span/event ring dumps
// there on detection or exit), and -chrome writes the recorded spans as
// Chrome trace-event JSON loadable in Perfetto.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"defuse/internal/deps"
	"defuse/internal/instrument"
	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/usecount"
	"defuse/telemetry"
)

type options struct {
	split, inspector, analyze, run bool
	params, inject, file           string
}

func main() {
	var o options
	flag.BoolVar(&o.split, "split", false, "apply index-set splitting (Algorithm 2)")
	flag.BoolVar(&o.inspector, "inspector", false, "hoist inspectors for iterative loops (Section 4.2)")
	flag.BoolVar(&o.analyze, "analyze", false, "print dependence and use-count analysis instead of code")
	flag.BoolVar(&o.run, "run", false, "execute the instrumented program on the simulated memory")
	flag.StringVar(&o.params, "param", "", "comma-separated parameter values, e.g. n=100,tsteps=5")
	flag.StringVar(&o.inject, "inject", "", "inject a fault: step:array:flatIndex:bit")
	obsFlags := telemetry.ObsFlags(flag.CommandLine)
	flag.Parse()
	o.file = flag.Arg(0)

	obs, err := telemetry.SetupObs(obsFlags())
	if err != nil {
		fatal(err)
	}
	if obs.Server != nil {
		fmt.Fprintf(os.Stderr, "defusec: serving telemetry on http://%s\n", obs.Server.Addr())
	}
	// Uniform two-stage signal discipline: the first SIGINT/SIGTERM cancels
	// the run's context (the interpreter bails out at its next step check)
	// and flushes the telemetry artifacts; a second forces immediate exit
	// with everything flushed.
	ctx, stop := telemetry.GracefulSignals(obs)
	err = compile(ctx, o, obs)
	stop()
	if ferr := obs.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
}

func compile(ctx context.Context, o options, obs *telemetry.Obs) error {
	sink, reg := obs.Sink, obs.Metrics
	src, err := readInput(o.file)
	if err != nil {
		return err
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return err
	}

	if o.analyze {
		return printAnalysis(prog)
	}

	res, err := instrument.Instrument(prog, instrument.Options{
		Split: o.split, Inspector: o.inspector, Trace: sink, Metrics: reg,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# instrumentation plan:\n%s", indent(res.Report.String(), "# "))
	if !o.run {
		fmt.Print(lang.Print(res.Prog))
		return nil
	}

	pv, err := parseParams(o.params)
	if err != nil {
		return err
	}
	m, err := interp.New(res.Prog, pv,
		interp.WithTrace(sink), interp.WithMetrics(reg), interp.WithTracer(obs.Tracer))
	if err != nil {
		return err
	}
	if o.inject != "" {
		if err := armInjection(m, o.inject); err != nil {
			return err
		}
	}
	m.SetContext(ctx)
	span := obs.Tracer.Start(telemetry.SpanContext{}, "run",
		telemetry.String("program", prog.Name),
		telemetry.Bool("injected", o.inject != ""))
	err = m.Run()
	span.EndErr(err)
	var de *interp.DetectionError
	switch {
	case errors.As(err, &de):
		fmt.Printf("MEMORY ERROR DETECTED: %v\n", de)
	case err != nil:
		return err
	default:
		fmt.Println("run completed, checksums verified")
	}
	c := m.Counts
	fmt.Printf("ops: %d loads, %d stores, %d arith, %d compare, %d checksum ops\n",
		c.Loads, c.Stores, c.Arith, c.Compare, c.CsOps)
	return nil
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseParams(s string) (map[string]int64, error) {
	out := map[string]int64{}
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad parameter %q (want name=value)", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter value %q: %v", kv, err)
		}
		out[strings.TrimSpace(parts[0])] = v
	}
	return out, nil
}

func armInjection(m *interp.Machine, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return fmt.Errorf("bad -inject %q (want step:array:flatIndex:bit)", spec)
	}
	step, err1 := strconv.ParseUint(parts[0], 10, 64)
	idx, err2 := strconv.Atoi(parts[2])
	bit, err3 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("bad -inject %q", spec)
	}
	base, size, err := m.Region(parts[1])
	if err != nil {
		return err
	}
	if idx < 0 || idx >= size {
		return fmt.Errorf("index %d out of range for %s", idx, parts[1])
	}
	fired := false
	m.SetStepHook(func(cur uint64) {
		if !fired && cur == step {
			m.Mem().FlipBit(base+idx, bit)
			fired = true
			fmt.Fprintf(os.Stderr, "# injected bit flip: %s[%d] bit %d at step %d\n",
				parts[1], idx, bit, step)
		}
	})
	return nil
}

func printAnalysis(prog *lang.Program) error {
	model, err := pdg.Extract(prog)
	if err != nil {
		return err
	}
	flow := deps.Analyze(model)
	uc := usecount.Analyze(flow)

	fmt.Println("== statements ==")
	for _, s := range model.Stmts {
		fmt.Printf("%-4s domain=%s\n", s.ID, s.Domain)
		sched := make([]string, len(s.Schedule))
		for i, t := range s.Schedule {
			sched[i] = t.String()
		}
		fmt.Printf("     schedule=[%s] affine=%v\n", strings.Join(sched, ","), s.FullyAffine())
	}
	fmt.Println("== flow dependences ==")
	for _, d := range flow.Deps {
		fmt.Printf("%v\n", d)
	}
	fmt.Println("== use counts ==")
	for _, s := range model.Stmts {
		dc := uc.Defs[s]
		if dc == nil {
			fmt.Printf("%-4s (dynamic)\n", s.ID)
			continue
		}
		fmt.Printf("%-4s writes %s:\n", s.ID, s.Write.Array)
		for _, c := range dc.Contribs {
			fmt.Printf("     -> %s: %s\n", c.Dep.Dst.ID, c.Count)
		}
	}
	fmt.Println("== variable classes ==")
	for _, d := range prog.Decls {
		c := uc.Classes[d.Name]
		if c == nil {
			continue
		}
		if c.Analyzable {
			fmt.Printf("%-10s static\n", d.Name)
		} else {
			fmt.Printf("%-10s dynamic (%s)\n", d.Name, c.Reason)
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defusec:", err)
	os.Exit(1)
}
