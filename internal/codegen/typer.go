package codegen

import (
	"fmt"

	"defuse/internal/lang"
)

// Static typing for lowered expressions.
//
// The interpreter types values dynamically, but on a checked program the
// dynamic type of every expression is a pure function of its static
// structure: literals carry their type, variables carry their declared type,
// parameters and iterators are integers, and every operator's result type
// depends only on its operand types (lang.Check rules out the constructs —
// iterator shadowing, floats leaking into integer contexts — that could make
// this context-sensitive). That function is exprIsInt; the compiler and the
// source generator both consult it, so the native backend's static types
// agree with the interpreter's dynamic ones by construction. This is one of
// the oracle-equivalence invariants documented in DESIGN.md §10.

// typeEnv resolves a name to its integer-ness: declared variables from their
// declaration, parameters and loop iterators always integer.
type typeEnv struct {
	vars  map[string]bool // name → isInt for declared variables
	iters map[string]bool // in-scope loop iterators (always int)
}

func newTypeEnv(prog *lang.Program) *typeEnv {
	env := &typeEnv{vars: map[string]bool{}, iters: map[string]bool{}}
	for _, d := range prog.Decls {
		env.vars[d.Name] = d.Type == lang.TypeInt
	}
	return env
}

// nameIsInt reports whether a bare name holds an integer. Parameters and
// iterators are integers; anything else must be a declared variable (Check
// guarantees it).
func (env *typeEnv) nameIsInt(name string) bool {
	if env.iters[name] {
		return true
	}
	if isInt, ok := env.vars[name]; ok {
		return isInt
	}
	// Not a declared variable or live iterator: a parameter (integer).
	return true
}

// exprIsInt reports whether e evaluates to an integer value under interp's
// dynamic typing rules.
func (env *typeEnv) exprIsInt(e lang.Expr) bool {
	switch ex := e.(type) {
	case *lang.IntLit:
		return true
	case *lang.FloatLit:
		return false
	case *lang.Ref:
		return env.nameIsInt(ex.Name)
	case *lang.Bin:
		switch ex.Op {
		case lang.BinEq, lang.BinNe, lang.BinLt, lang.BinLe, lang.BinGt, lang.BinGe,
			lang.BinAnd, lang.BinOr:
			// Comparisons and logical operators yield 0/1 integers.
			return true
		case lang.BinMod:
			// A successful %% is integer; float operands abort at runtime
			// before any result exists, so the static type is moot there.
			return true
		default:
			// +,-,*,/ follow numOp: integer iff both operands are.
			return env.exprIsInt(ex.L) && env.exprIsInt(ex.R)
		}
	case *lang.Un:
		if ex.Op == lang.UnNot {
			return true
		}
		return env.exprIsInt(ex.X)
	case *lang.Call:
		switch ex.Name {
		case "sqrt":
			return false
		case "abs":
			return env.exprIsInt(ex.Args[0])
		default: // min, max: numOp typing
			return env.exprIsInt(ex.Args[0]) && env.exprIsInt(ex.Args[1])
		}
	default:
		panic(fmt.Sprintf("codegen: unknown expression %T", e))
	}
}

// evalConstInt evaluates a declaration-dimension expression over the bound
// parameters at machine-construction time, mirroring the integer subset of
// interp's evaluator. Check restricts dimension expressions to integer
// literals, parameters, integer arithmetic, and min/max, so this evaluator
// is total on checked programs.
func evalConstInt(e lang.Expr, params map[string]int64) (int64, error) {
	switch ex := e.(type) {
	case *lang.IntLit:
		return ex.Val, nil
	case *lang.Ref:
		if len(ex.Indices) != 0 {
			return 0, fmt.Errorf("%s: subscript in constant context", ex.Pos)
		}
		v, ok := params[ex.Name]
		if !ok {
			return 0, fmt.Errorf("%s: %q is not a parameter", ex.Pos, ex.Name)
		}
		return v, nil
	case *lang.Un:
		x, err := evalConstInt(ex.X, params)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case lang.UnNeg:
			return -x, nil
		default:
			return B2I(x == 0), nil
		}
	case *lang.Bin:
		l, err := evalConstInt(ex.L, params)
		if err != nil {
			return 0, err
		}
		r, err := evalConstInt(ex.R, params)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case lang.BinAdd:
			return l + r, nil
		case lang.BinSub:
			return l - r, nil
		case lang.BinMul:
			return l * r, nil
		case lang.BinDiv:
			if r == 0 {
				return 0, fmt.Errorf("%s: division by zero", ex.Pos)
			}
			return l / r, nil
		case lang.BinMod:
			if r == 0 {
				return 0, fmt.Errorf("%s: modulo by zero", ex.Pos)
			}
			return l % r, nil
		case lang.BinEq:
			return B2I(l == r), nil
		case lang.BinNe:
			return B2I(l != r), nil
		case lang.BinLt:
			return B2I(l < r), nil
		case lang.BinLe:
			return B2I(l <= r), nil
		case lang.BinGt:
			return B2I(l > r), nil
		case lang.BinGe:
			return B2I(l >= r), nil
		case lang.BinAnd:
			return B2I(l != 0 && r != 0), nil
		default:
			return B2I(l != 0 || r != 0), nil
		}
	case *lang.Call:
		if len(ex.Args) != 2 {
			return 0, fmt.Errorf("%s: %s in constant context", ex.Pos, ex.Name)
		}
		l, err := evalConstInt(ex.Args[0], params)
		if err != nil {
			return 0, err
		}
		r, err := evalConstInt(ex.Args[1], params)
		if err != nil {
			return 0, err
		}
		switch ex.Name {
		case "min":
			return MinI(l, r), nil
		case "max":
			return MaxI(l, r), nil
		default:
			return 0, fmt.Errorf("%s: %s in constant context", ex.Pos, ex.Name)
		}
	default:
		return 0, fmt.Errorf("constant context: unknown expression %T", e)
	}
}
