package poly

import "sort"

// This file implements variable elimination over systems of integer affine
// constraints: substitution through equalities when possible (exact) and
// Fourier-Motzkin combination of inequality pairs otherwise. Every
// elimination reports whether it was exact over the integers; the only
// sources of approximation are eliminating through an equality with
// non-unit coefficient (loses a divisibility condition) and combining two
// inequalities that both have non-unit coefficients on the eliminated
// variable (the real shadow can exceed the integer shadow).

// system is a constraint set with dedup and infeasibility tracking.
type system struct {
	cons       []Constraint
	seen       map[string]bool
	infeasible bool
}

func newSystem(cs []Constraint) *system {
	s := &system{seen: make(map[string]bool, len(cs))}
	for _, c := range cs {
		s.add(c)
	}
	return s
}

func (s *system) add(c Constraint) {
	nc, st := c.normalize()
	switch st {
	case normDrop:
		return
	case normInfeasy:
		s.infeasible = true
		return
	}
	k := nc.key()
	if s.seen[k] {
		return
	}
	s.seen[k] = true
	s.cons = append(s.cons, nc)
}

func (s *system) list() []Constraint {
	out := make([]Constraint, len(s.cons))
	copy(out, s.cons)
	return out
}

// eliminate removes variable v from cons, returning the projected system, a
// flag reporting whether the projection is exact over the integers, and
// whether the system was detected infeasible outright.
func eliminate(cons []Constraint, v string) (out []Constraint, exact, infeasible bool) {
	exact = true

	// Prefer substitution through an equality with unit coefficient: exact.
	bestEq := -1
	for i, c := range cons {
		if !c.Equality || !c.E.Uses(v) {
			continue
		}
		if a := c.E.Coeff(v); a == 1 || a == -1 {
			bestEq = i
			break
		}
		if bestEq < 0 {
			bestEq = i
		}
	}
	if bestEq >= 0 {
		eq := cons[bestEq]
		a := eq.E.Coeff(v)
		if a == 1 || a == -1 {
			// v = rest where rest = -(eq - a*v)/a.
			rest := eq.E.Subst(v, L(0)).Scale(-a) // a^2 = 1
			sys := newSystem(nil)
			for i, c := range cons {
				if i == bestEq {
					continue
				}
				sys.add(c.Subst(v, rest))
			}
			return sys.list(), true, sys.infeasible
		}
		// Non-unit equality a*v = -rest: scale the other constraints by |a|
		// and substitute a*v. Drops the divisibility condition a | rest, so
		// the result is a superset: mark inexact.
		if a < 0 {
			eq = EqZero(eq.E.Neg())
			a = -a
		}
		rest := eq.E.Subst(v, L(0)) // a*v + rest == 0, so a*v == -rest
		sys := newSystem(nil)
		for i, c := range cons {
			if i == bestEq {
				continue
			}
			cv := c.E.Coeff(v)
			if cv == 0 {
				sys.add(c)
				continue
			}
			// a*c.E = a*cv*v + a*(c.E - cv*v) = cv*(a*v) + a*rest'
			scaled := c.E.Subst(v, L(0)).Scale(a).Add(rest.Neg().Scale(cv))
			sys.add(Constraint{E: scaled, Equality: c.Equality})
		}
		return sys.list(), false, sys.infeasible
	}

	// Fourier-Motzkin on inequalities.
	var lowers, uppers []Constraint // coeff(v) > 0, coeff(v) < 0
	sys := newSystem(nil)
	for _, c := range cons {
		a := c.E.Coeff(v)
		switch {
		case a == 0:
			sys.add(c)
		case a > 0:
			lowers = append(lowers, c)
		default:
			uppers = append(uppers, c)
		}
	}
	for _, lo := range lowers {
		cl := lo.E.Coeff(v)
		rl := lo.E.Subst(v, L(0))
		for _, up := range uppers {
			cu := -up.E.Coeff(v)
			ru := up.E.Subst(v, L(0))
			// From cl*v + rl >= 0 and -cu*v + ru >= 0:
			// cu*rl + cl*ru >= 0 is the real shadow.
			sys.add(GeZero(rl.Scale(cu).Add(ru.Scale(cl))))
			if cl != 1 && cu != 1 {
				exact = false
			}
		}
	}
	return sys.list(), exact, sys.infeasible
}

// varsOf returns all variables appearing in the constraints, sorted.
func varsOf(cons []Constraint) []string {
	set := map[string]bool{}
	for _, c := range cons {
		for _, v := range c.E.Vars() {
			set[v] = true
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// project eliminates every variable in vars from cons. The exact flag is the
// conjunction of per-step exactness.
func project(cons []Constraint, vars []string) (out []Constraint, exact bool, infeasible bool) {
	sys0 := newSystem(cons)
	if sys0.infeasible {
		return nil, true, true
	}
	out = sys0.list()
	exact = true
	remaining := append([]string(nil), vars...)
	for len(remaining) > 0 {
		// Eliminate the cheapest variable first: one with an equality, else
		// the one with the fewest lower*upper combinations.
		best, bestCost := -1, int(^uint(0)>>1)
		for i, v := range remaining {
			cost, hasEq := elimCost(out, v)
			if hasEq {
				best = i
				break
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		v := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		var ex, inf bool
		out, ex, inf = eliminate(out, v)
		exact = exact && ex
		if inf {
			return out, exact, true
		}
	}
	return out, exact, false
}

func elimCost(cons []Constraint, v string) (cost int, hasUnitEq bool) {
	lo, hi := 0, 0
	for _, c := range cons {
		a := c.E.Coeff(v)
		if a == 0 {
			continue
		}
		if c.Equality && (a == 1 || a == -1) {
			return 0, true
		}
		if a > 0 {
			lo++
		} else {
			hi++
		}
	}
	return lo * hi, false
}

// emptiness decides whether the integer constraint system is empty.
// When exact is true the answer is definitive; when exact is false and empty
// is false, the system might still be integer-empty (rational relaxation was
// non-empty).
func emptiness(cons []Constraint) (empty, exact bool) {
	sys := newSystem(cons)
	if sys.infeasible {
		return true, true
	}
	out, ex, inf := project(sys.list(), varsOf(sys.list()))
	if inf {
		return true, true
	}
	// All variables eliminated: remaining constraints are constants and were
	// resolved by normalize inside project/newSystem; anything left implies
	// a bug, but check defensively.
	for _, c := range out {
		if ok, _ := c.Holds(nil); !ok {
			return true, true
		}
	}
	return false, ex
}
