// Package poly is a small Presburger-style library for the affine sets,
// relations, and parametric counts needed by the paper's compile-time
// use-count analysis (Sections 3.1-3.2). It plays the role ISL plays for the
// authors: iteration spaces and access relations are affine constraint
// systems; dependences are relations; Algorithm 1's use counts are parametric
// cardinalities returned as piecewise polynomials.
//
// The library is exact for the fragment the paper exercises — constraint
// systems whose eliminated variables carry unit coefficients — and tracks
// exactness explicitly everywhere Fourier-Motzkin projection is used, so
// callers can fall back to the paper's dynamic (inspector) scheme instead of
// silently approximating.
package poly

import (
	"fmt"
	"sort"
	"strings"
)

// LinExpr is an affine expression: a sum of integer-coefficient terms over
// named variables plus an integer constant. The zero value is the constant 0.
// LinExpr values are immutable; all methods return new expressions.
type LinExpr struct {
	coeffs map[string]int64
	k      int64
}

// L returns the constant expression k.
func L(k int64) LinExpr { return LinExpr{k: k} }

// V returns the expression consisting of the single variable name.
func V(name string) LinExpr {
	return LinExpr{coeffs: map[string]int64{name: 1}}
}

// Term returns c*name.
func Term(c int64, name string) LinExpr {
	if c == 0 {
		return LinExpr{}
	}
	return LinExpr{coeffs: map[string]int64{name: c}}
}

func (e LinExpr) clone() LinExpr {
	c := make(map[string]int64, len(e.coeffs))
	for v, k := range e.coeffs {
		c[v] = k
	}
	return LinExpr{coeffs: c, k: e.k}
}

// Const returns the constant term.
func (e LinExpr) Const() int64 { return e.k }

// Coeff returns the coefficient of variable v (0 if absent).
func (e LinExpr) Coeff(v string) int64 { return e.coeffs[v] }

// IsConst reports whether the expression has no variable terms.
func (e LinExpr) IsConst() bool { return len(e.coeffs) == 0 }

// Vars returns the variables with nonzero coefficients, sorted.
func (e LinExpr) Vars() []string {
	vs := make([]string, 0, len(e.coeffs))
	for v := range e.coeffs {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Uses reports whether variable v occurs with nonzero coefficient.
func (e LinExpr) Uses(v string) bool { return e.coeffs[v] != 0 }

// Add returns e + f.
func (e LinExpr) Add(f LinExpr) LinExpr {
	r := e.clone()
	r.k += f.k
	for v, c := range f.coeffs {
		nc := r.coeffs[v] + c
		if nc == 0 {
			delete(r.coeffs, v)
		} else {
			r.coeffs[v] = nc
		}
	}
	return r
}

// Sub returns e - f.
func (e LinExpr) Sub(f LinExpr) LinExpr { return e.Add(f.Scale(-1)) }

// AddConst returns e + k.
func (e LinExpr) AddConst(k int64) LinExpr {
	r := e.clone()
	r.k += k
	return r
}

// Scale returns c*e.
func (e LinExpr) Scale(c int64) LinExpr {
	if c == 0 {
		return LinExpr{}
	}
	r := LinExpr{coeffs: make(map[string]int64, len(e.coeffs)), k: e.k * c}
	for v, k := range e.coeffs {
		r.coeffs[v] = k * c
	}
	return r
}

// Neg returns -e.
func (e LinExpr) Neg() LinExpr { return e.Scale(-1) }

// Subst returns e with variable v replaced by expression f.
func (e LinExpr) Subst(v string, f LinExpr) LinExpr {
	c := e.coeffs[v]
	if c == 0 {
		return e
	}
	r := e.clone()
	delete(r.coeffs, v)
	r2 := LinExpr{coeffs: r.coeffs, k: r.k}
	return r2.Add(f.Scale(c))
}

// Rename returns e with every variable renamed through m; variables absent
// from m are kept.
func (e LinExpr) Rename(m map[string]string) LinExpr {
	r := LinExpr{coeffs: make(map[string]int64, len(e.coeffs)), k: e.k}
	for v, c := range e.coeffs {
		nv, ok := m[v]
		if !ok {
			nv = v
		}
		r.coeffs[nv] += c
		if r.coeffs[nv] == 0 {
			delete(r.coeffs, nv)
		}
	}
	return r
}

// Eval evaluates e under the assignment env. Missing variables evaluate as 0
// and are reported through the second result.
func (e LinExpr) Eval(env map[string]int64) (int64, bool) {
	total := e.k
	complete := true
	for v, c := range e.coeffs {
		val, ok := env[v]
		if !ok {
			complete = false
		}
		total += c * val
	}
	return total, complete
}

// Equal reports structural equality of the two expressions.
func (e LinExpr) Equal(f LinExpr) bool {
	if e.k != f.k || len(e.coeffs) != len(f.coeffs) {
		return false
	}
	for v, c := range e.coeffs {
		if f.coeffs[v] != c {
			return false
		}
	}
	return true
}

// String renders the expression in human-readable form, e.g. "n - j - 1".
func (e LinExpr) String() string {
	if e.IsConst() {
		return fmt.Sprintf("%d", e.k)
	}
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.coeffs[v]
		switch {
		case first && c == 1:
			b.WriteString(v)
		case first && c == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			b.WriteString(" + " + v)
		case c == -1:
			b.WriteString(" - " + v)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, v)
		}
		first = false
	}
	switch {
	case e.k > 0:
		fmt.Fprintf(&b, " + %d", e.k)
	case e.k < 0:
		fmt.Fprintf(&b, " - %d", -e.k)
	}
	return b.String()
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// contentGCD returns the gcd of the variable coefficients (0 if none).
func (e LinExpr) contentGCD() int64 {
	var g int64
	for _, c := range e.coeffs {
		g = gcd64(g, c)
	}
	return g
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
