package bench

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"defuse/internal/interp"
	"defuse/internal/recovery"
)

// This file measures the durability tax: what write-ahead checkpointing at
// every epoch boundary (memory snapshot, stable encode, CRC frame, fsync)
// costs on top of an epoch-supervised run of the same kernel. The Original
// variant is the measurement vehicle: its checksum pair is identically zero,
// so boundary verification is trivially quiescent at any epoch split. The
// instrumented variants are not epoch-balanced — their def/use contributions
// complete only at the program-end post-dominator — so supervising them at
// interior boundaries would report phantom detections, not overhead.

// DurableRow is one benchmark's durable-checkpoint overhead measurement.
type DurableRow struct {
	Bench  string `json:"bench"`
	Epochs int    `json:"epochs"`
	// Seals counts checkpoint records fsynced during the durable run.
	Seals int `json:"seals"`
	// WALBytes is the checkpoint log's size after the run.
	WALBytes int64 `json:"wal_bytes"`
	// BaselineSeconds is the epoch-supervised run without durability;
	// DurableSeconds adds the WAL seal at every verified boundary.
	BaselineSeconds float64 `json:"baseline_seconds"`
	DurableSeconds  float64 `json:"durable_seconds"`
	// Overhead is DurableSeconds / BaselineSeconds.
	Overhead float64 `json:"overhead"`
}

// RunDurable measures one benchmark's durable-checkpoint overhead: an
// epoch-supervised baseline run and a WAL-checkpointing run of the same
// kernel at the same scale, with output equivalence checked between the two.
// The WAL is written to walDir/<bench>.wal and left in place for inspection.
func RunDurable(b *Benchmark, scale float64, epochs int, walDir string, tel Telemetry) (DurableRow, error) {
	if epochs < 1 {
		return DurableRow{}, fmt.Errorf("bench: RunDurable needs epochs >= 1, got %d", epochs)
	}
	plan := func() (*interp.Machine, *interp.EpochPlan, error) {
		prog := b.Program()
		params := b.Params(scale)
		m, err := interp.New(prog, params,
			interp.WithTrace(tel.Trace), interp.WithMetrics(tel.Metrics),
			interp.WithTracer(tel.Tracer))
		if err != nil {
			return nil, nil, err
		}
		b.InitDefault(m, params)
		p, err := m.PlanEpochs(epochs)
		return m, p, err
	}

	mBase, pBase, err := plan()
	if err != nil {
		return DurableRow{}, err
	}
	start := time.Now()
	outBase, err := pBase.Supervise(context.Background(), recovery.DefaultPolicy())
	if err != nil {
		return DurableRow{}, fmt.Errorf("bench: %s baseline: %w", b.Name, err)
	}
	baseline := time.Since(start)
	if outBase.Detected || outBase.Tainted {
		return DurableRow{}, fmt.Errorf("bench: %s baseline run reported a detection on fault-free input", b.Name)
	}

	walPath := filepath.Join(walDir, b.Name+".wal")
	mDur, pDur, err := plan()
	if err != nil {
		return DurableRow{}, err
	}
	start = time.Now()
	outDur, err := pDur.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), walPath)
	if err != nil {
		return DurableRow{}, fmt.Errorf("bench: %s durable: %w", b.Name, err)
	}
	durable := time.Since(start)
	if outDur.Detected || outDur.Tainted || outDur.Resumed {
		return DurableRow{}, fmt.Errorf("bench: %s durable run not clean: %+v", b.Name, outDur)
	}

	for _, d := range b.Program().Decls {
		if !d.IsArray() {
			continue
		}
		want, err := mBase.SnapshotFloats(d.Name)
		if err != nil {
			continue // integer arrays: the float snapshot does not apply
		}
		got, gerr := mDur.SnapshotFloats(d.Name)
		if gerr != nil || len(got) != len(want) {
			return DurableRow{}, fmt.Errorf("bench: %s: array %s diverged under durable supervision", b.Name, d.Name)
		}
		for i := range want {
			if want[i] != got[i] && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
				return DurableRow{}, fmt.Errorf("bench: %s: %s[%d] = %v durable, %v baseline",
					b.Name, d.Name, i, got[i], want[i])
			}
		}
	}

	var walBytes int64
	if st, err := os.Stat(walPath); err == nil {
		walBytes = st.Size()
	}
	return DurableRow{
		Bench:           b.Name,
		Epochs:          epochs,
		Seals:           outDur.Seals,
		WALBytes:        walBytes,
		BaselineSeconds: baseline.Seconds(),
		DurableSeconds:  durable.Seconds(),
		Overhead:        ratio(durable.Seconds(), baseline.Seconds()),
	}, nil
}

// RunDurableSuite measures every benchmark in the suite.
func RunDurableSuite(scale float64, epochs int, walDir string, tel Telemetry) ([]DurableRow, error) {
	var rows []DurableRow
	for _, b := range Suite() {
		row, err := RunDurable(b, scale, epochs, walDir, tel)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDurable renders the rows as a table, with the geometric-mean overhead.
func FormatDurable(rows []DurableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %10s %12s %12s %10s\n",
		"Benchmark", "Epochs", "Seals", "WAL(B)", "Base(s)", "Durable(s)", "Overhead")
	sum := 0.0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %8d %10d %12.4f %12.4f %10.3f\n",
			r.Bench, r.Epochs, r.Seals, r.WALBytes, r.BaselineSeconds, r.DurableSeconds, r.Overhead)
		sum += math.Log(r.Overhead)
	}
	if len(rows) > 0 {
		fmt.Fprintf(&b, "%-10s %8s %8s %10s %12s %12s %10.3f\n",
			"geomean", "", "", "", "", "", math.Exp(sum/float64(len(rows))))
	}
	return b.String()
}
