package poly

import (
	"math/rand"
	"testing"
)

// choleskyS1 builds I^{S1} = { S1[j] : 0 <= j <= n-1 } from the paper.
func choleskyS1() BasicSet {
	j, n := V("j"), V("n")
	return NewBasicSet("S1", "j").With(Ge(j, L(0)), Le(j, n.AddConst(-1)))
}

// choleskyS2 builds I^{S2} = { S2[j,i] : 0 <= j <= n-1 and j+1 <= i <= n-1 }.
func choleskyS2() BasicSet {
	j, i, n := V("j"), V("i"), V("n")
	return NewBasicSet("S2", "j", "i").With(
		Ge(j, L(0)), Le(j, n.AddConst(-1)),
		Ge(i, j.AddConst(1)), Le(i, n.AddConst(-1)),
	)
}

func TestBasicSetContains(t *testing.T) {
	s2 := choleskyS2()
	if !s2.Contains(map[string]int64{"j": 0, "i": 1, "n": 4}) {
		t.Error("(0,1) should be in S2 for n=4")
	}
	if s2.Contains(map[string]int64{"j": 0, "i": 0, "n": 4}) {
		t.Error("(0,0) violates i >= j+1")
	}
	if s2.Contains(map[string]int64{"j": 3, "i": 4, "n": 4}) {
		t.Error("(3,4) violates i <= n-1")
	}
}

func TestBasicSetParams(t *testing.T) {
	s2 := choleskyS2()
	ps := s2.Params()
	if len(ps) != 1 || ps[0] != "n" {
		t.Errorf("Params = %v, want [n]", ps)
	}
	if !s2.IsDim("i") || s2.IsDim("n") {
		t.Error("IsDim misclassifies")
	}
}

func TestBasicSetEmptiness(t *testing.T) {
	// { [j] : j >= 1 and j <= 0 } is empty.
	b := NewBasicSet("S", "j").With(Ge(V("j"), L(1)), Le(V("j"), L(0)))
	empty, exact := b.IsEmpty()
	if !empty || !exact {
		t.Errorf("IsEmpty = %v,%v want true,true", empty, exact)
	}
	// { [j] : 0 <= j <= 5 } is non-empty.
	b = NewBasicSet("S", "j").With(Ge(V("j"), L(0)), Le(V("j"), L(5)))
	empty, exact = b.IsEmpty()
	if empty || !exact {
		t.Errorf("IsEmpty = %v,%v want false,true", empty, exact)
	}
	// Parametric: { [j] : 0 <= j <= n-1 } is non-empty (for some n).
	empty, _ = choleskyS1().IsEmpty()
	if empty {
		t.Error("parametric S1 should not be empty")
	}
	// Integer-only emptiness: { [j] : 2j == 1 }.
	b = NewBasicSet("S", "j").With(EqZero(Term(2, "j").AddConst(-1)))
	empty, exact = b.IsEmpty()
	if !empty || !exact {
		t.Errorf("2j=1: IsEmpty = %v,%v want true,true", empty, exact)
	}
}

func TestProjectOut(t *testing.T) {
	// Projecting i out of S2 gives { S2[j] : 0 <= j <= n-2 } — the j range
	// shrinks because i needs j+1 <= n-1.
	s2 := choleskyS2()
	proj, exact := s2.ProjectOut("i")
	if !exact {
		t.Fatal("projection should be exact (unit coefficients)")
	}
	if len(proj.Dims) != 1 || proj.Dims[0] != "j" {
		t.Fatalf("projected dims = %v", proj.Dims)
	}
	for _, tc := range []struct {
		j, n int64
		want bool
	}{
		{0, 4, true}, {2, 4, true}, {3, 4, false}, {0, 1, false},
	} {
		got := proj.Contains(map[string]int64{"j": tc.j, "n": tc.n})
		if got != tc.want {
			t.Errorf("j=%d n=%d: Contains = %v, want %v", tc.j, tc.n, got, tc.want)
		}
	}
}

func TestIntersectRenamesPositionally(t *testing.T) {
	a := NewBasicSet("S", "x").With(Ge(V("x"), L(0)))
	b := NewBasicSet("S", "y").With(Le(V("y"), L(10)))
	c := a.Intersect(b)
	if !c.Contains(map[string]int64{"x": 5}) {
		t.Error("5 should be in [0,10]")
	}
	if c.Contains(map[string]int64{"x": 11}) {
		t.Error("11 should not be in [0,10]")
	}
}

func TestSubtract(t *testing.T) {
	// [0,10] \ [3,5] = [0,2] ∪ [6,10]
	x := V("x")
	a := UnionSet(NewBasicSet("S", "x").With(Ge(x, L(0)), Le(x, L(10))))
	b := UnionSet(NewBasicSet("S", "x").With(Ge(x, L(3)), Le(x, L(5))))
	d := a.Subtract(b)
	for v := int64(-2); v <= 12; v++ {
		want := (v >= 0 && v <= 2) || (v >= 6 && v <= 10)
		got := d.Contains(map[string]int64{"x": v})
		if got != want {
			t.Errorf("x=%d: Contains = %v, want %v", v, got, want)
		}
	}
}

func TestSubtractPiecesDisjoint(t *testing.T) {
	// The incremental-prefix construction makes result pieces disjoint.
	x := V("x")
	a := UnionSet(NewBasicSet("S", "x").With(Ge(x, L(0)), Le(x, L(20))))
	b := UnionSet(NewBasicSet("S", "x").With(Ge(x, L(5)), Le(x, L(10))))
	d := a.Subtract(b)
	for v := int64(0); v <= 20; v++ {
		hits := 0
		for _, p := range d.Pieces {
			if p.Contains(map[string]int64{"x": v}) {
				hits++
			}
		}
		if hits > 1 {
			t.Errorf("x=%d contained in %d pieces; want disjoint", v, hits)
		}
	}
}

func TestEqualSet(t *testing.T) {
	x := V("x")
	a := UnionSet(NewBasicSet("S", "x").With(Ge(x, L(0)), Le(x, L(10))))
	// Same interval expressed as union of two adjacent intervals.
	b := UnionSet(
		NewBasicSet("S", "x").With(Ge(x, L(0)), Le(x, L(4))),
		NewBasicSet("S", "x").With(Ge(x, L(5)), Le(x, L(10))),
	)
	eq, exact := a.EqualSet(b)
	if !eq || !exact {
		t.Errorf("EqualSet = %v,%v", eq, exact)
	}
	c := UnionSet(NewBasicSet("S", "x").With(Ge(x, L(0)), Le(x, L(9))))
	if eq, _ := a.EqualSet(c); eq {
		t.Error("[0,10] != [0,9]")
	}
}

func TestSampleAndEnumerate(t *testing.T) {
	s2 := choleskyS2()
	pt, ok := s2.Sample(map[string]int64{"n": 3}, 5)
	if !ok {
		t.Fatal("S2 with n=3 should have points")
	}
	env := map[string]int64{"n": 3, "j": pt["j"], "i": pt["i"]}
	if !s2.Contains(env) {
		t.Errorf("Sample returned non-member %v", pt)
	}
	pts := s2.EnumeratePoints(map[string]int64{"n": 3}, 5)
	// n=3: j=0:i∈{1,2}, j=1:i=2, j=2: none → 3 points.
	if len(pts) != 3 {
		t.Errorf("EnumeratePoints found %d points, want 3", len(pts))
	}
	if _, ok := s2.Sample(map[string]int64{"n": 1}, 5); ok {
		t.Error("S2 with n=1 should be empty")
	}
}

func TestStringFormats(t *testing.T) {
	if got := choleskyS1().String(); got != "{ S1[j] : j >= 0 and -j + n - 1 >= 0 }" {
		t.Errorf("String() = %q", got)
	}
	u := NewBasicSet("S", "x")
	if got := u.String(); got != "{ S[x] }" {
		t.Errorf("universe String() = %q", got)
	}
	if got := UnionSet().String(); got != "{ }" {
		t.Errorf("empty union String() = %q", got)
	}
}

func TestSimplifiedDropsDuplicates(t *testing.T) {
	x := V("x")
	b := NewBasicSet("S", "x").With(Ge(x, L(0)), Ge(x, L(0)), GeZero(L(3)))
	s := b.Simplified()
	if len(s.Cons) != 1 {
		t.Errorf("Simplified kept %d constraints, want 1", len(s.Cons))
	}
	// Infeasible constant constraint collapses to canonical false.
	b2 := NewBasicSet("S", "x").With(GeZero(L(-1)))
	s2 := b2.Simplified()
	if e, _ := s2.IsEmpty(); !e {
		t.Error("canonical false set should be empty")
	}
}

// TestProjectionAgainstEnumeration cross-validates Fourier-Motzkin projection
// against brute-force enumeration on random 2D integer systems with unit
// coefficients (the exact fragment).
func TestProjectionAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Random constraints a*x + b*y + c >= 0 with a,b ∈ {-1,0,1}.
		b := NewBasicSet("S", "x", "y")
		for k := 0; k < 4; k++ {
			a := int64(rng.Intn(3) - 1)
			bb := int64(rng.Intn(3) - 1)
			c := int64(rng.Intn(11) - 5)
			b = b.With(GeZero(Term(a, "x").Add(Term(bb, "y")).AddConst(c)))
		}
		// Bound the region so enumeration is finite.
		b = b.With(Ge(V("x"), L(-6)), Le(V("x"), L(6)), Ge(V("y"), L(-6)), Le(V("y"), L(6)))

		proj, exact := b.ProjectOut("y")
		if !exact {
			t.Fatalf("trial %d: expected exact projection with unit coefficients", trial)
		}
		for x := int64(-8); x <= 8; x++ {
			inProj := proj.Contains(map[string]int64{"x": x})
			exists := false
			for y := int64(-8); y <= 8; y++ {
				if b.Contains(map[string]int64{"x": x, "y": y}) {
					exists = true
					break
				}
			}
			if inProj != exists {
				t.Fatalf("trial %d x=%d: projection says %v, enumeration says %v\nset: %v\nproj: %v",
					trial, x, inProj, exists, b, proj)
			}
		}
	}
}

// TestEmptinessAgainstEnumeration cross-validates integer emptiness.
func TestEmptinessAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		b := NewBasicSet("S", "x", "y")
		n := rng.Intn(4) + 2
		for k := 0; k < n; k++ {
			a := int64(rng.Intn(3) - 1)
			bb := int64(rng.Intn(3) - 1)
			c := int64(rng.Intn(9) - 4)
			if rng.Intn(5) == 0 {
				b = b.With(EqZero(Term(a, "x").Add(Term(bb, "y")).AddConst(c)))
			} else {
				b = b.With(GeZero(Term(a, "x").Add(Term(bb, "y")).AddConst(c)))
			}
		}
		b = b.With(Ge(V("x"), L(-5)), Le(V("x"), L(5)), Ge(V("y"), L(-5)), Le(V("y"), L(5)))
		empty, exact := b.IsEmpty()
		if !exact {
			continue // approximate result: only the exact ones are checked
		}
		_, found := b.Sample(nil, 6)
		if empty == found {
			t.Fatalf("trial %d: IsEmpty=%v but enumeration found=%v for %v", trial, empty, found, b)
		}
	}
}
