package server

// The serving-mode cell of the crash campaign (internal/faults/crash.go runs
// the batch cells): a real defused-shaped server process is SIGKILLed under
// live fault-injected load, and the gate is the journal — VerifyJournal must
// find zero silent corruption in whatever the dying process left behind, and
// a restarted server must resume over it, absorb fresh traffic, and drain
// cleanly. The child is this test binary re-executed with a JSON spec in
// DEFUSE_SERVE_CRASH_CHILD, the same re-exec pattern the batch campaign uses.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"defuse/internal/wal"
	"defuse/telemetry"
)

// serveCrashChildEnv carries the JSON-encoded serveChildSpec that re-routes
// this test binary into serveChildMain.
const serveCrashChildEnv = "DEFUSE_SERVE_CRASH_CHILD"

type serveChildSpec struct {
	WAL       string  `json:"wal"`
	PortFile  string  `json:"port_file"`
	DrainFile string  `json:"drain_file,omitempty"` // written after the WAL is sealed
	Words     int     `json:"words"`
	Epochs    int     `json:"epochs"`
	Seed      uint64  `json:"seed"`
	FaultRate float64 `json:"fault_rate"`
	FaultSeed uint64  `json:"fault_seed"`
	// HoldSeconds keeps the process alive after a completed drain — the
	// shutdown window the kill-during-drain cell SIGKILLs into.
	HoldSeconds int `json:"hold_seconds,omitempty"`
}

func TestMain(m *testing.M) {
	if os.Getenv(serveCrashChildEnv) != "" {
		serveChildMain()
	}
	os.Exit(m.Run())
}

// serveChildMain is the child process: a full service on a loopback port,
// journaling to the shared WAL, draining on SIGTERM. Never returns.
func serveChildMain() {
	var spec serveChildSpec
	if err := json.Unmarshal([]byte(os.Getenv(serveCrashChildEnv)), &spec); err != nil {
		fmt.Fprintln(os.Stderr, "serve child: bad spec:", err)
		os.Exit(3)
	}
	health := telemetry.NewHealth()
	s, err := New(Config{
		Words: spec.Words, Epochs: spec.Epochs, Seed: spec.Seed,
		MaxInFlight: 4, FaultRate: spec.FaultRate, FaultSeed: spec.FaultSeed,
		WALPath: spec.WAL,
		Obs:     &telemetry.Obs{Health: health, Metrics: telemetry.NewRegistry()},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve child:", err)
		os.Exit(3)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve child:", err)
		os.Exit(3)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	// The SIGTERM handler must be live before readiness is advertised: a
	// parent that signals the instant the port file appears would otherwise
	// race the registration and kill the process at default disposition.
	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	// The port file doubles as the readiness signal: written only once the
	// journal has been scanned and the listener is accepting.
	if err := wal.WriteFileAtomic(spec.PortFile, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "serve child:", err)
		os.Exit(3)
	}
	<-term
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	derr := s.Drain(ctx)
	cancel()
	if derr != nil {
		fmt.Fprintln(os.Stderr, "serve child: drain:", derr)
		os.Exit(5)
	}
	if spec.DrainFile != "" {
		_ = wal.WriteFileAtomic(spec.DrainFile, []byte("sealed"), 0o644)
	}
	if spec.HoldSeconds > 0 {
		time.Sleep(time.Duration(spec.HoldSeconds) * time.Second)
	}
	_ = hs.Close()
	os.Exit(0)
}

// startServeChild launches one child incarnation and returns its handle and
// base URL once it is ready.
func startServeChild(t *testing.T, spec serveChildSpec) (*exec.Cmd, string) {
	t.Helper()
	_ = os.Remove(spec.PortFile)
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), serveCrashChildEnv+"="+string(raw))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting serve child: %v", err)
	}
	var addr []byte
	waitFor(t, "serve child readiness", func() bool {
		addr, err = os.ReadFile(spec.PortFile)
		return err == nil && len(addr) > 0
	})
	return cmd, "http://" + string(addr)
}

// TestServeCrashMidLoadResume: SIGKILL a server mid-load (sampled fault
// injection active), verify the abandoned journal holds zero silent
// corruption, then restart over the same journal, drive fresh audited load,
// drain via SIGTERM, and verify the combined journal end to end.
func TestServeCrashMidLoadResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec campaign cell")
	}
	dir := t.TempDir()
	spec := serveChildSpec{
		WAL:      filepath.Join(dir, "serve.wal"),
		PortFile: filepath.Join(dir, "port"),
		Words:    24, Epochs: 3, Seed: 19,
		FaultRate: 0.25, FaultSeed: 7,
	}
	cmd, target := startServeChild(t, spec)

	// Drive far more load than can complete before the kill; every request's
	// journal append is fsynced, so the WAL grows in lockstep with completed
	// requests.
	loadCtx, stopLoad := context.WithCancel(context.Background())
	defer stopLoad()
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		_, _ = RunLoad(loadCtx, LoadConfig{
			Target: target, Streams: 4, Requests: 50000,
			Words: 24, Epochs: 3, Seed: 19,
			FaultRate: 0.25, FaultSeed: 7,
			Timeout: 5 * time.Second,
		})
	}()
	minBytes := int64(1024) // well past the header: dozens of records in flight
	waitFor(t, "journal to accumulate records under load", func() bool {
		fi, err := os.Stat(spec.WAL)
		return err == nil && fi.Size() > minBytes
	})
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()
	stopLoad()
	<-loadDone

	// Gate 1: whatever the dying process left on disk contains no silent
	// corruption — at worst a torn tail from a mid-append kill.
	st1, err := VerifyJournal(spec.WAL)
	if err != nil {
		t.Fatalf("journal after SIGKILL: %v", err)
	}
	if st1.Total == 0 {
		t.Fatal("SIGKILL landed before any request completed; kill threshold too low")
	}
	if st1.Injected != st1.Detected || st1.Injected != st1.Recovered {
		t.Fatalf("journal after SIGKILL: %+v, want every injected fault detected and recovered", st1)
	}

	// Gate 2: a restarted server resumes over the survivor, serves fresh
	// audited traffic, and drains cleanly.
	cmd2, target2 := startServeChild(t, spec)
	res, err := RunLoad(context.Background(), LoadConfig{
		Target: target2, Streams: 4, Requests: 60,
		Words: 24, Epochs: 3, Seed: 19,
		FaultRate: 0.25, FaultSeed: 7,
		FirstID: 1 << 20, // disjoint from every pre-crash ID
	})
	if err != nil {
		t.Fatalf("post-resume load: %v", err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("post-resume gate: %v (row %+v)", err, res.Row)
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("drained child exited uncleanly: %v", err)
	}

	st2, err := VerifyJournal(spec.WAL)
	if err != nil {
		t.Fatalf("journal after resume+drain: %v", err)
	}
	if want := st1.Total + res.Row.Requests; st2.Total != want {
		t.Fatalf("journal holds %d records, want %d survivors + %d post-resume", st2.Total, st1.Total, res.Row.Requests)
	}
	if st2.Injected != st2.Detected || st2.Injected != st2.Recovered {
		t.Fatalf("combined journal: %+v, want every injected fault detected and recovered", st2)
	}
	if st2.TornTail {
		t.Fatal("resumed journal still reports a torn tail after a clean drain")
	}
}

// TestServeKillDuringShutdownResumesByteIdentical: SIGKILL into the window
// between WAL seal and process exit; a restart over the sealed journal and a
// clean drain must leave the log byte-for-byte unchanged.
func TestServeKillDuringShutdownResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec campaign cell")
	}
	dir := t.TempDir()
	spec := serveChildSpec{
		WAL:       filepath.Join(dir, "serve.wal"),
		PortFile:  filepath.Join(dir, "port"),
		DrainFile: filepath.Join(dir, "drained"),
		Words:     16, Epochs: 2, Seed: 3,
		FaultRate: 0.5, FaultSeed: 11,
		HoldSeconds: 60,
	}
	cmd, target := startServeChild(t, spec)
	res, err := RunLoad(context.Background(), LoadConfig{
		Target: target, Streams: 2, Requests: 12,
		Words: 16, Epochs: 2, Seed: 3,
		FaultRate: 0.5, FaultSeed: 11,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("gate: %v (row %+v)", err, res.Row)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitFor(t, "drain to seal the WAL", func() bool {
		_, err := os.Stat(spec.DrainFile)
		return err == nil
	})
	if err := cmd.Process.Kill(); err != nil { // into the shutdown hold window
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait()

	before, err := os.ReadFile(spec.WAL)
	if err != nil {
		t.Fatal(err)
	}

	spec2 := spec
	spec2.DrainFile = filepath.Join(dir, "drained2")
	spec2.HoldSeconds = 0
	cmd2, _ := startServeChild(t, spec2)
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("resumed child exited uncleanly: %v", err)
	}

	after, err := os.ReadFile(spec.WAL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("journal changed across resume: %d bytes before, %d after", len(before), len(after))
	}
	st, err := VerifyJournal(spec.WAL)
	if err != nil {
		t.Fatalf("VerifyJournal: %v", err)
	}
	if st.Total != res.Row.Requests {
		t.Fatalf("journal holds %d records, want %d", st.Total, res.Row.Requests)
	}
}
