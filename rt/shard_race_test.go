package rt

import (
	"sync"
	"testing"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// Race coverage for the concurrency layer, meaningful under `go test -race`:
// many goroutines fold into private shards while merges, drains, scrubs, and
// verifications run concurrently, all reporting through shared observers and
// sinks. The assertions are deliberately light — the race detector is the
// primary oracle here; the equivalence properties live in shard_test.go.

func TestShardedConcurrentFoldMergeScrub(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
		opsPerTick = 20
	)
	var col telemetry.Collector
	reg := telemetry.NewRegistry()
	obs := &CountingObserver{}
	st := NewShardedWith(checksum.ModAdd).
		SetObserver(obs).
		SetTelemetry(&col, reg)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		sh := st.Shard() // handed out before the goroutine starts
		wg.Add(1)
		go func(g int, sh *Shard) {
			defer wg.Done()
			v := 1.5 + float64(g)
			for r := 0; r < rounds; r++ {
				tr := sh.Tracker()
				for i := 0; i < opsPerTick; i++ {
					v2 := Def(tr, v, 1)
					_ = UseKnown(tr, v2)
				}
				counters := sh.Counters(4)
				DefDyn(tr, &counters[0], uint64(0), uint64(r))
				Use(tr, &counters[0], uint64(r))
				Final(tr, &counters[0], uint64(r))
				sh.Merge() // concurrent merges of distinct shards
			}
			sh.Close()
		}(g, sh)
	}
	// Concurrent readers: scrub and checksum reads against in-flight merges.
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := st.ScrubDetector(); err != nil {
				t.Errorf("concurrent scrub failed: %v", err)
				return
			}
			st.Checksums()
			st.LiveShards()
		}
	}()
	wg.Wait()
	close(done)
	readers.Wait()

	// All shards closed and every trace balanced: the merged view verifies.
	if err := st.Verify(); err != nil {
		t.Fatalf("merged concurrent folds failed verify: %v", err)
	}
	wantOps := int64(goroutines * rounds * opsPerTick)
	if got := obs.Defs.Load(); got != wantOps+int64(goroutines*rounds) {
		t.Errorf("shared observer counted %d defs, want %d", got, wantOps+int64(goroutines*rounds))
	}
}

// TestShardedConcurrentObserverAndTelemetry drives the TelemetryObserver —
// whose counters are resolved once at construction and atomically updated —
// from many shards at once, with verifications mixed in.
func TestShardedConcurrentObserverAndTelemetry(t *testing.T) {
	var col telemetry.Collector
	reg := telemetry.NewRegistry()
	obs := NewTelemetryObserver(&col, reg)
	st := NewShardedWith(checksum.XOR).SetObserver(obs).SetTelemetry(&col, reg)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		sh := st.Shard()
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				tr := sh.Tracker()
				v := Def(tr, uint64(r), 1)
				_ = UseKnown(tr, v)
				if r%8 == 0 {
					sh.Merge()
					// Root-only reads are safe mid-run; Verify would drain
					// shards other goroutines are still folding into.
					if err := st.ScrubDetector(); err != nil {
						t.Errorf("mid-run scrub failed: %v", err)
						return
					}
					st.Checksums()
				}
			}
			sh.Close()
		}(sh)
	}
	wg.Wait()
	if err := st.Verify(); err != nil {
		t.Fatalf("final verify failed: %v", err)
	}
}
