package interp

import (
	"errors"
	"fmt"
	"testing"

	"defuse/telemetry"
)

// Detection-path telemetry: a single-bit flip on a tracked word must produce
// a fault.injected event carrying the exact array/index/bit coordinates and
// a detection event when the checksum assertion fires.

// detectionSrc builds a program defining cell 2 of a 4-element array with
// two uses, checksum-instrumented by hand so the statement schedule is
// fixed: the flip lands after the first use is folded and before the second.
func detectionSrc(typ, lit1, lit2, lit3 string) string {
	return fmt.Sprintf(`
program t()
%s a[4];
%s sum1, sum2;
a[2] = %s;
add_to_chksm(def_cs, a[2], 2);
add_to_chksm(use_cs, a[2], 1);
sum1 = a[2] + %s;
add_to_chksm(use_cs, a[2], 1);
sum2 = a[2] + %s;
assert_checksums();
`, typ, typ, lit1, lit2, lit3)
}

func TestDetectionEventCoordinates(t *testing.T) {
	cases := []struct {
		name string
		src  string
		bit  int
	}{
		{"float64 sign bit", detectionSrc("float", "10.0 + 20.0", "30.0", "40.0"), 63},
		{"float64 exponent bit", detectionSrc("float", "10.0 + 20.0", "30.0", "40.0"), 55},
		{"float64 mantissa bit", detectionSrc("float", "10.0 + 20.0", "30.0", "40.0"), 13},
		{"float64 lsb", detectionSrc("float", "10.0 + 20.0", "30.0", "40.0"), 0},
		{"int64 lsb", detectionSrc("int", "10 + 20", "30", "40"), 0},
		{"int64 middle bit", detectionSrc("int", "10 + 20", "30", "40"), 31},
		{"int64 msb", detectionSrc("int", "10 + 20", "30", "40"), 63},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &telemetry.Collector{}
			reg := telemetry.NewRegistry()
			m := mustMachine(t, tc.src, nil, WithTrace(sink), WithMetrics(reg))
			base, _, err := m.Region("a")
			if err != nil {
				t.Fatal(err)
			}
			m.SetStepHook(func(step uint64) {
				if step == 5 {
					m.Mem().FlipBit(base+2, tc.bit)
				}
			})
			err = m.Run()
			var de *DetectionError
			if !errors.As(err, &de) {
				t.Fatalf("injected fault not detected: %v", err)
			}

			inj := sink.Named(telemetry.EvFaultInjected)
			if len(inj) != 1 {
				t.Fatalf("fault.injected events = %d, want 1", len(inj))
			}
			f := inj[0].Fields
			if f["array"] != "a" || f["index"] != 2 || f["bit"] != tc.bit || f["addr"] != base+2 {
				t.Errorf("fault coordinates = %v, want array=a index=2 bit=%d addr=%d",
					f, tc.bit, base+2)
			}
			det := sink.Named(telemetry.EvDetection)
			if len(det) != 1 {
				t.Fatalf("detection events = %d, want 1", len(det))
			}
			if det[0].Fields["which"] != "def/use" {
				t.Errorf("detection which = %v, want def/use", det[0].Fields["which"])
			}
			if sink.Count(telemetry.EvVerifyMismatch) != 1 || sink.Count(telemetry.EvVerifyOK) != 0 {
				t.Errorf("verify events: mismatch=%d ok=%d, want 1/0",
					sink.Count(telemetry.EvVerifyMismatch), sink.Count(telemetry.EvVerifyOK))
			}
			if got := reg.Counter("defuse_detections_total").Value(); got != 1 {
				t.Errorf("defuse_detections_total = %d, want 1", got)
			}
		})
	}
}

func TestVerifyOKEventOnCleanRun(t *testing.T) {
	sink := &telemetry.Collector{}
	reg := telemetry.NewRegistry()
	m := mustMachine(t, detectionSrc("float", "10.0 + 20.0", "30.0", "40.0"), nil,
		WithTrace(sink), WithMetrics(reg))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	ok := sink.Named(telemetry.EvVerifyOK)
	if len(ok) != 1 {
		t.Fatalf("verify.ok events = %d, want 1", len(ok))
	}
	if ok[0].Fields["def"] != ok[0].Fields["use"] {
		t.Errorf("verify.ok checksums differ: %v", ok[0].Fields)
	}
	if sink.Count(telemetry.EvDetection) != 0 {
		t.Error("clean run emitted a detection event")
	}
	// Run metrics must be published.
	snap := reg.Snapshot()
	found := false
	for _, ms := range snap.Metrics {
		if ms.Name == "defuse_interp_ops" && ms.Labels["op"] == "loads" && ms.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("defuse_interp_ops{op=loads} not published")
	}
}
