package rt

import (
	"testing"

	"defuse/internal/checksum"
)

// FuzzShardedMerge fuzzes the sequential ≡ sharded property with arbitrary
// interleavings: the assignment bytes drive which shard receives each fold
// and which operation it is, the value evolves through an LCG so every trace
// is distinct, and an occasional unbalanced fold (high bit of the byte)
// makes verify fail — in which case the sequential and sharded verdicts must
// still be identical. Seeded with the FuzzDefUsePair corpus shape (a value,
// a small count, a perturbation mask) plus an explicit interleaving string.
func FuzzShardedMerge(f *testing.F) {
	f.Add(uint64(0x3ff8000000000000), uint8(1), uint64(0), []byte{0, 1, 2})
	f.Add(uint64(0xdeadbeefcafebabe), uint8(7), uint64(1<<51), []byte{7, 3, 0x85, 1})
	f.Add(uint64(0), uint8(0), uint64(1), []byte{})
	f.Add(^uint64(0), uint8(3), uint64(0x8000000000000000), []byte{0xff, 0x80, 0x41, 0x07, 0x00})
	f.Fuzz(func(t *testing.T, bits uint64, nShardsRaw uint8, mask uint64, assign []byte) {
		nShards := int(nShardsRaw)%8 + 1
		for _, kind := range []checksum.Kind{checksum.ModAdd, checksum.XOR} {
			seq := NewTrackerWith(kind)
			st := NewShardedWith(kind)
			shards := make([]*Shard, nShards)
			for i := range shards {
				shards[i] = st.Shard()
			}
			v := bits
			apply := func(tr *Tracker, b byte) {
				switch (b >> 3) & 3 {
				case 0: // balanced pair: def + its one use
					Def(tr, v, 1)
					UseKnown(tr, v)
				case 1: // def with two uses, all partition-local
					Def(tr, v, 2)
					UseKnown(tr, v)
					UseKnown(tr, v)
				case 2: // dyn lifecycle wholly on this tracker
					var c Counter
					DefDyn(tr, &c, uint64(0), v)
					Use(tr, &c, v)
					Final(tr, &c, v)
				default: // unbalanced use: a candidate mismatch
					if b&0x80 != 0 {
						UseKnown(tr, v^mask)
					} else {
						Def(tr, v, 1)
						UseKnown(tr, v)
					}
				}
			}
			for _, b := range assign {
				apply(seq, b)
				sh := shards[int(b)%nShards]
				apply(sh.Tracker(), b)
				v = v*6364136223846793005 + 1442695040888963407
				// Rewind the sequential stream so both folds saw the same v.
				// (apply reads v but never writes it; the LCG advance above
				// is shared by construction since both applies ran first.)
			}
			st.Drain()
			sd, su, sed, seu := seq.Checksums()
			rd, ru, red, reu := st.Checksums()
			if sd != rd || su != ru || sed != red || seu != reu {
				t.Fatalf("kind=%v shards=%d: accumulators diverged: seq (%#x,%#x,%#x,%#x) vs sharded (%#x,%#x,%#x,%#x)",
					kind, nShards, sd, su, sed, seu, rd, ru, red, reu)
			}
			if seq.ShadowCopies() != st.Root().ShadowCopies() {
				t.Fatalf("kind=%v shards=%d: shadow copies diverged", kind, nShards)
			}
			seqErr := seq.Verify()
			shErr := st.Verify()
			if (seqErr == nil) != (shErr == nil) {
				t.Fatalf("kind=%v shards=%d: verdicts diverged: seq %v vs sharded %v",
					kind, nShards, seqErr, shErr)
			}
			if err := st.ScrubDetector(); err != nil {
				t.Fatalf("kind=%v shards=%d: merged state failed scrub: %v", kind, nShards, err)
			}
		}
	})
}
