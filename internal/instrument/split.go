package instrument

import (
	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/poly"
)

// This file implements Algorithm 2 (index-set splitting, Section 3.3): loops
// containing affine guards are partitioned so that within each partition the
// guard is statically true or false — the guard conditional disappears, and
// each split loop carries a single closed-form use count (the paper's
// Figure 6 peeling of cholesky's last iteration).

// maxSplitsPerLoop bounds the 2^k copy growth when a loop has many guards.
const maxSplitsPerLoop = 6

// SplitLoops rewrites a statement list, splitting every for loop whose body
// contains affine guards on that loop's iterator.
func SplitLoops(ss []lang.Stmt) []lang.Stmt {
	var out []lang.Stmt
	for _, s := range ss {
		switch x := s.(type) {
		case *lang.For:
			nf := &lang.For{Pos: x.Pos, Iter: x.Iter, Lo: x.Lo, Hi: x.Hi, Body: SplitLoops(x.Body)}
			out = append(out, splitFor(nf, maxSplitsPerLoop)...)
		case *lang.While:
			out = append(out, &lang.While{Pos: x.Pos, Cond: x.Cond, Body: SplitLoops(x.Body)})
		case *lang.If:
			out = append(out, &lang.If{Pos: x.Pos, Cond: x.Cond, Then: SplitLoops(x.Then), Else: SplitLoops(x.Else)})
		default:
			out = append(out, s)
		}
	}
	return out
}

// splitFor splits one loop on the first eligible guard constraint, then
// recurses on both halves.
func splitFor(f *lang.For, budget int) []lang.Stmt {
	if budget <= 0 {
		return []lang.Stmt{f}
	}
	inner := map[string]bool{}
	lang.WalkStmts(f.Body, func(s lang.Stmt) bool {
		if lf, ok := s.(*lang.For); ok {
			inner[lf.Iter] = true
		}
		return true
	})
	c, ok := findSplitConstraint(f.Body, f.Iter, inner)
	if !ok {
		return []lang.Stmt{f}
	}

	a := c.E.Coeff(f.Iter)
	rest := c.E.Subst(f.Iter, poly.L(0))
	var first, second *lang.For
	if a == 1 {
		// c holds iff v >= -rest =: B. Order: [lo, min(hi, B-1)] (false),
		// then [max(lo, B), hi] (true).
		b := rest.Neg()
		first = &lang.For{Iter: f.Iter,
			Lo:   lang.CloneExpr(f.Lo),
			Hi:   minExpr(lang.CloneExpr(f.Hi), pdg.LinToExpr(b.AddConst(-1))),
			Body: rewriteGuards(f.Body, c, false)}
		second = &lang.For{Iter: f.Iter,
			Lo:   maxExpr(lang.CloneExpr(f.Lo), pdg.LinToExpr(b)),
			Hi:   lang.CloneExpr(f.Hi),
			Body: rewriteGuards(f.Body, c, true)}
	} else {
		// a == -1: c holds iff v <= rest =: B. Order: [lo, min(hi, B)]
		// (true), then [max(lo, B+1), hi] (false).
		b := rest
		first = &lang.For{Iter: f.Iter,
			Lo:   lang.CloneExpr(f.Lo),
			Hi:   minExpr(lang.CloneExpr(f.Hi), pdg.LinToExpr(b)),
			Body: rewriteGuards(f.Body, c, true)}
		second = &lang.For{Iter: f.Iter,
			Lo:   maxExpr(lang.CloneExpr(f.Lo), pdg.LinToExpr(b.AddConst(1))),
			Hi:   lang.CloneExpr(f.Hi),
			Body: rewriteGuards(f.Body, c, false)}
	}
	var out []lang.Stmt
	for _, half := range []*lang.For{first, second} {
		if rangeProvablyEmpty(half.Lo, half.Hi) {
			continue
		}
		out = append(out, splitFor(half, budget-1)...)
	}
	return out
}

func minExpr(a, b lang.Expr) lang.Expr { return extremeExpr("min", a, b) }
func maxExpr(a, b lang.Expr) lang.Expr { return extremeExpr("max", a, b) }

// extremeExpr builds min/max of two bound expressions, flattening nested
// calls, deduplicating syntactically equal arguments, and resolving pairs
// whose difference is a known constant (min(i-1, i-2) folds to i-2).
func extremeExpr(kind string, a, b lang.Expr) lang.Expr {
	args := append(extremeArgs(kind, a), extremeArgs(kind, b)...)
	// Deduplicate and resolve comparable pairs.
	var kept []lang.Expr
	for _, arg := range args {
		replaced := false
		for i, k := range kept {
			r, ok := resolvePair(kind, k, arg)
			if ok {
				kept[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			kept = append(kept, arg)
		}
	}
	out := kept[0]
	for _, k := range kept[1:] {
		out = &lang.Call{Name: kind, Args: []lang.Expr{out, k}}
	}
	return out
}

// extremeArgs flattens nested min/min (or max/max) calls into their leaves.
func extremeArgs(kind string, e lang.Expr) []lang.Expr {
	if c, ok := e.(*lang.Call); ok && c.Name == kind {
		return append(extremeArgs(kind, c.Args[0]), extremeArgs(kind, c.Args[1])...)
	}
	return []lang.Expr{e}
}

// resolvePair returns the dominating expression when a and b differ by a
// known constant (or are equal), under min/max semantics.
func resolvePair(kind string, a, b lang.Expr) (lang.Expr, bool) {
	if lang.ExprString(a) == lang.ExprString(b) {
		return a, true
	}
	anyVar := func(string) bool { return true }
	la, aok := pdg.ExprToLin(a, anyVar)
	lb, bok := pdg.ExprToLin(b, anyVar)
	if !aok || !bok {
		return nil, false
	}
	d := la.Sub(lb)
	if !d.IsConst() {
		return nil, false
	}
	aSmaller := d.Const() <= 0
	if (kind == "min") == aSmaller {
		return a, true
	}
	return b, true
}

// rangeProvablyEmpty reports whether a loop [lo, hi] can be proven empty:
// some max-component of lo exceeds some min-component of hi by a constant.
func rangeProvablyEmpty(lo, hi lang.Expr) bool {
	anyVar := func(string) bool { return true }
	for _, l := range extremeArgs("max", lo) {
		ll, lok := pdg.ExprToLin(l, anyVar)
		if !lok {
			continue
		}
		for _, h := range extremeArgs("min", hi) {
			lh, hok := pdg.ExprToLin(h, anyVar)
			if !hok {
				continue
			}
			if d := lh.Sub(ll); d.IsConst() && d.Const() < 0 {
				return true
			}
		}
	}
	return false
}

// findSplitConstraint locates, in the subtree, an If guard conjunct that
// references iter with unit coefficient and no inner-loop iterators.
func findSplitConstraint(ss []lang.Stmt, iter string, inner map[string]bool) (poly.Constraint, bool) {
	var found poly.Constraint
	ok := false
	lang.WalkStmts(ss, func(s lang.Stmt) bool {
		if ok {
			return false
		}
		ifs, isIf := s.(*lang.If)
		if !isIf || len(ifs.Else) != 0 {
			return true
		}
		cons, parsed := condToCons(ifs.Cond)
		if !parsed {
			return true
		}
		for _, c := range cons {
			if c.Equality {
				continue // equalities stay as guards
			}
			a := c.E.Coeff(iter)
			if a != 1 && a != -1 {
				continue
			}
			eligible := true
			for _, v := range c.E.Vars() {
				if inner[v] {
					eligible = false
					break
				}
			}
			if eligible {
				found, ok = c, true
				return false
			}
		}
		return true
	})
	return found, ok
}

// rewriteGuards clones ss, resolving guard conjunct c to the given truth
// value: when true the conjunct is removed (unwrapping the If if nothing
// remains); when false any If whose condition includes c is deleted.
func rewriteGuards(ss []lang.Stmt, c poly.Constraint, holds bool) []lang.Stmt {
	key := c.String()
	var out []lang.Stmt
	for _, s := range ss {
		switch x := s.(type) {
		case *lang.If:
			cons, parsed := condToCons(x.Cond)
			if parsed && len(x.Else) == 0 && hasConstraint(cons, key) {
				if !holds {
					continue // guard statically false: drop the whole If
				}
				remaining := dropConstraint(cons, key)
				then := rewriteGuards(x.Then, c, holds)
				if len(remaining) == 0 {
					out = append(out, then...)
				} else {
					out = append(out, &lang.If{Pos: x.Pos, Cond: consToCond(remaining, nil), Then: then})
				}
				continue
			}
			out = append(out, &lang.If{Pos: x.Pos, Cond: lang.CloneExpr(x.Cond),
				Then: rewriteGuards(x.Then, c, holds), Else: rewriteGuards(x.Else, c, holds)})
		case *lang.For:
			out = append(out, &lang.For{Pos: x.Pos, Iter: x.Iter,
				Lo: lang.CloneExpr(x.Lo), Hi: lang.CloneExpr(x.Hi),
				Body: rewriteGuards(x.Body, c, holds)})
		case *lang.While:
			out = append(out, &lang.While{Pos: x.Pos, Cond: lang.CloneExpr(x.Cond),
				Body: rewriteGuards(x.Body, c, holds)})
		default:
			out = append(out, lang.CloneStmt(s))
		}
	}
	return out
}

func hasConstraint(cons []poly.Constraint, key string) bool {
	for _, c := range cons {
		if c.String() == key {
			return true
		}
	}
	return false
}

func dropConstraint(cons []poly.Constraint, key string) []poly.Constraint {
	var out []poly.Constraint
	dropped := false
	for _, c := range cons {
		if !dropped && c.String() == key {
			dropped = true
			continue
		}
		out = append(out, c)
	}
	return out
}

// condToCons parses a generated guard condition (a conjunction of affine
// comparisons over scalar names) back into constraints.
func condToCons(e lang.Expr) ([]poly.Constraint, bool) {
	switch x := e.(type) {
	case *lang.Bin:
		switch x.Op {
		case lang.BinAnd:
			l, lok := condToCons(x.L)
			r, rok := condToCons(x.R)
			if !lok || !rok {
				return nil, false
			}
			return append(l, r...), true
		case lang.BinGe, lang.BinLe, lang.BinGt, lang.BinLt, lang.BinEq:
			anyVar := func(string) bool { return true }
			l, lok := pdg.ExprToLin(x.L, anyVar)
			r, rok := pdg.ExprToLin(x.R, anyVar)
			if !lok || !rok {
				return nil, false
			}
			switch x.Op {
			case lang.BinGe:
				return []poly.Constraint{poly.Ge(l, r)}, true
			case lang.BinLe:
				return []poly.Constraint{poly.Le(l, r)}, true
			case lang.BinGt:
				return []poly.Constraint{poly.Gt(l, r)}, true
			case lang.BinLt:
				return []poly.Constraint{poly.Lt(l, r)}, true
			default:
				return []poly.Constraint{poly.Eq(l, r)}, true
			}
		}
	}
	return nil, false
}
