package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"defuse/internal/bench"
	"defuse/internal/faults"
	"defuse/internal/recovery"
	"defuse/telemetry"
)

// The load generator is the service's adversarial client: it drives
// configurable-concurrency request streams against a running defused,
// independently recomputes which requests the server must have injected
// (the sampler is a pure function of rate, seed, and request ID) and what
// digest each must produce, and audits every response against that local
// truth. The server never gets to grade its own homework.

// LoadConfig drives one load generation run.
type LoadConfig struct {
	// Target is the service base URL, e.g. "http://127.0.0.1:9150".
	Target string
	// Streams is the number of concurrent client streams (>= 1).
	Streams int
	// Requests is the total request count across all streams.
	Requests int
	// Words/Epochs size each verify request (0: server defaults — but the
	// auditor needs them to recompute references, so they must be explicit
	// and must match the server's seed-derived workload).
	Words  int
	Epochs int
	// Seed must equal the server's Config.Seed for reference recomputation.
	Seed uint64
	// FaultRate, FaultSeed, and FaultAddrFraction must mirror the server's
	// live sampler so the client knows which requests were injected and with
	// which fault shape.
	FaultRate         float64
	FaultSeed         uint64
	FaultAddrFraction float64
	// KernelEvery, when > 0, makes every Nth request a kernel job.
	KernelEvery int
	// FirstID offsets request IDs (so successive runs against one journal
	// never reuse an ID).
	FirstID uint64
	// Timeout bounds each HTTP request (default 60s).
	Timeout time.Duration
	// MaxRetries bounds how many times one request is retried after a 429 or
	// 503 refusal before the refusal is recorded as the final outcome
	// (default 3; negative disables retries). The wait between attempts
	// honors the server's Retry-After header, falling back to the
	// recovery-policy backoff schedule when the server did not name a delay.
	MaxRetries int
	// RetryBackoff is the fallback delay policy (default: recovery defaults,
	// 4ms doubling).
	RetryBackoff recovery.Policy
}

// LoadResult is the audited outcome of a load run.
type LoadResult struct {
	Row bench.ServiceRow
	// Mismatches lists audit failures (injected-but-undetected,
	// unrecovered, or wrong digest), at most 10, for the error message.
	Mismatches []string
}

// Gate enforces the sustained-load robustness bar: every injected fault
// detected and recovered to the exact reference result, zero clean-request
// digest mismatches, zero transport/server errors. Shed (429) and rejected
// (503) requests are legitimate admission-control outcomes, not failures.
func (r LoadResult) Gate() error {
	row := r.Row
	switch {
	case len(r.Mismatches) > 0:
		return fmt.Errorf("loadgen: %d audit failures, first: %s", len(r.Mismatches), r.Mismatches[0])
	case row.Errors > 0:
		return fmt.Errorf("loadgen: %d requests errored", row.Errors)
	case row.Injected != row.Detected || row.Injected != row.Recovered:
		return fmt.Errorf("loadgen: injected %d, detected %d, recovered %d — want all equal",
			row.Injected, row.Detected, row.Recovered)
	case row.CleanMismatches > 0:
		return fmt.Errorf("loadgen: %d clean requests returned wrong digests", row.CleanMismatches)
	case row.Requests == 0:
		return fmt.Errorf("loadgen: no requests completed")
	}
	return nil
}

// RunLoad drives the configured streams to completion and audits every
// response. ctx cancels the run early (remaining requests count as errors
// only if they were in flight).
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.Requests <= 0 {
		cfg.Requests = cfg.Streams
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Words <= 0 || cfg.Epochs <= 0 {
		return LoadResult{}, fmt.Errorf("loadgen: words and epochs must be explicit (the auditor recomputes references from them)")
	}
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 3
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff.Backoff <= 0 {
		cfg.RetryBackoff = recovery.DefaultPolicy()
		cfg.RetryBackoff.Backoff = 50 * time.Millisecond
	}
	sampler := faults.NewLiveSampler(cfg.FaultRate, cfg.FaultSeed).
		WithAddrFraction(cfg.FaultAddrFraction)

	reg := telemetry.NewRegistry()
	hist := reg.Histogram("loadgen_request_seconds", telemetry.DefBuckets())
	client := &http.Client{Timeout: cfg.Timeout}

	var (
		next       atomic.Uint64 // dispensed request ordinals
		mu         sync.Mutex
		row        = bench.ServiceRow{Streams: cfg.Streams, FaultRate: cfg.FaultRate, FaultAddrFraction: cfg.FaultAddrFraction}
		mismatches []string
	)
	audit := func(req Request, resp Response) {
		expectInjected := req.Kind == KindVerify && sampler.Sample(req.ID)
		var fail string
		switch {
		case resp.Injected != expectInjected:
			fail = fmt.Sprintf("request %d: server injected=%v, client expected %v", req.ID, resp.Injected, expectInjected)
		case expectInjected && (!resp.Detected || !resp.Recovered):
			fail = fmt.Sprintf("request %d: injected fault detected=%v recovered=%v", req.ID, resp.Detected, resp.Recovered)
		case resp.Tainted:
			fail = fmt.Sprintf("request %d: degraded to tainted", req.ID)
		case req.Kind == KindVerify && resp.Digest != ReferenceDigest(req.Words, req.Epochs, cfg.Seed, req.ID):
			fail = fmt.Sprintf("request %d: digest %x, local reference %x", req.ID, resp.Digest,
				ReferenceDigest(req.Words, req.Epochs, cfg.Seed, req.ID))
		case req.Kind == KindKernel && resp.Digest != resp.RefDigest:
			fail = fmt.Sprintf("kernel request %d: digest %x, warmup reference %x", req.ID, resp.Digest, resp.RefDigest)
		}
		mu.Lock()
		defer mu.Unlock()
		row.Requests++
		if expectInjected {
			row.Injected++
			// Recompute the full plan the server must have derived — the
			// sampler contract covers the fault shape, not just the hit set.
			if sampler.Plan(req.ID, req.Words, req.Epochs).Kind == faults.LiveAddrWrong {
				row.InjectedAddr++
			}
			if resp.Detected {
				row.Detected++
			}
			if resp.Recovered {
				row.Recovered++
			}
		} else {
			row.Clean++
			if fail != "" {
				row.CleanMismatches++
			}
		}
		if fail != "" && len(mismatches) < 10 {
			mismatches = append(mismatches, fail)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1)
				if n > uint64(cfg.Requests) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				req := Request{ID: cfg.FirstID + n, Kind: KindVerify, Words: cfg.Words, Epochs: cfg.Epochs}
				if cfg.KernelEvery > 0 && n%uint64(cfg.KernelEvery) == 0 {
					req.Kind = KindKernel
					req.Words, req.Epochs = 0, 0
				}
				// Refusals (429/503) are retried with bounded backoff,
				// honoring the server's Retry-After; only the outcome of the
				// final attempt is recorded as Shed/Rejected, so the gate's
				// arithmetic stays meaningful under deliberate overload.
				var (
					resp       Response
					status     int
					err        error
					elapsed    float64
					retryAfter time.Duration
				)
				attempt := 0
				for {
					t0 := time.Now()
					resp, status, retryAfter, err = postRun(ctx, client, cfg.Target, req)
					elapsed = time.Since(t0).Seconds()
					refused := err == nil &&
						(status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable)
					if !refused || attempt >= cfg.MaxRetries || ctx.Err() != nil {
						break
					}
					mu.Lock()
					row.Retries++
					mu.Unlock()
					delay := retryAfter
					if delay <= 0 {
						delay = cfg.RetryBackoff.Delay(attempt)
					}
					attempt++
					select {
					case <-ctx.Done():
					case <-time.After(delay):
					}
				}
				mu.Lock()
				switch {
				case err != nil:
					row.Errors++
				case status == http.StatusTooManyRequests:
					row.Shed++
				case status == http.StatusServiceUnavailable:
					row.Rejected++
				case status != http.StatusOK:
					row.Errors++
				case attempt > 0:
					row.RetriedOK++
				}
				mu.Unlock()
				if err == nil && status == http.StatusOK {
					hist.Observe(elapsed)
					audit(req, resp)
				}
			}
		}()
	}
	wg.Wait()
	row.DurationSeconds = time.Since(start).Seconds()
	if row.DurationSeconds > 0 {
		row.ThroughputRPS = float64(row.Requests) / row.DurationSeconds
	}
	if q, ok := reg.Snapshot().FamilyQuantiles("loadgen_request_seconds"); ok {
		row.P50Seconds = q.P50
		row.P99Seconds = q.P99
		row.P999Seconds = q.P999
	}
	return LoadResult{Row: row, Mismatches: mismatches}, nil
}

// postRun issues one /run request and decodes the response when it is 200.
// On refusal it also reports the server's Retry-After delay (0 when absent).
func postRun(ctx context.Context, client *http.Client, target string, req Request) (Response, int, time.Duration, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return Response{}, 0, 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/run", bytes.NewReader(body))
	if err != nil {
		return Response{}, 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := client.Do(hreq)
	if err != nil {
		return Response{}, 0, 0, err
	}
	defer hresp.Body.Close()
	var retryAfter time.Duration
	if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		retryAfter = time.Duration(secs) * time.Second
	}
	if hresp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(hresp.Body, 4096))
		return Response{}, hresp.StatusCode, retryAfter, nil
	}
	var resp Response
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return Response{}, hresp.StatusCode, retryAfter, err
	}
	return resp, hresp.StatusCode, retryAfter, nil
}
