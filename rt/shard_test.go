package rt

import (
	"errors"
	"math/rand"
	"testing"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// The sharding property: because the checksum operators are commutative and
// associative, ANY partition of a def/use trace across shards, merged into a
// root tracker, must be byte-identical to folding the whole trace into one
// tracker — accumulators, e-checksums, shadow copies, op counts, and the
// final verdict. These tests exercise random traces under random partitions
// for every operator, in both the balanced (verify passes) and
// fault-injected (verify fails identically) cases.

// shardOp is one partitionable unit of a def/use trace. Pure folds (Def with
// a known count, UseKnown) are order-independent and may land on any shard.
// A dynamically counted variable's whole lifecycle (DefDyn/Use/Final over
// its own Counter) is one unit: its counter state travels with the variable,
// so the variable is owned by a single shard — the same ownership rule a
// parallel workload follows for thread-private data.
type shardOp struct {
	kind int // 0: Def, 1: UseKnown, 2: dyn lifecycle
	v    uint64
	n    int64
	// dyn lifecycle: chain of values; each redefined with uses between.
	dynVals []uint64
	dynUses []int
}

func (op shardOp) apply(tr *Tracker) {
	switch op.kind {
	case 0:
		Def(tr, op.v, op.n)
	case 1:
		UseKnown(tr, op.v)
	default:
		var c Counter
		prev := uint64(0)
		for i, v := range op.dynVals {
			DefDyn(tr, &c, prev, v)
			for u := 0; u < op.dynUses[i]; u++ {
				Use(tr, &c, v)
			}
			prev = v
		}
		Final(tr, &c, prev)
	}
}

// genTrace builds a balanced trace: every Def(v, n) is matched by n
// UseKnown(v) ops (separately partitionable), and every dyn lifecycle is
// internally balanced by construction.
func genTrace(rng *rand.Rand, items int) []shardOp {
	var ops []shardOp
	for i := 0; i < items; i++ {
		if rng.Intn(3) == 0 {
			op := shardOp{kind: 2}
			for j := 0; j < 1+rng.Intn(3); j++ {
				op.dynVals = append(op.dynVals, rng.Uint64())
				op.dynUses = append(op.dynUses, rng.Intn(4))
			}
			ops = append(ops, op)
			continue
		}
		v := rng.Uint64()
		n := int64(1 + rng.Intn(4))
		ops = append(ops, shardOp{kind: 0, v: v, n: n})
		for u := int64(0); u < n; u++ {
			ops = append(ops, shardOp{kind: 1, v: v})
		}
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

// foldSharded partitions ops across nShards shards of a fresh ShardedTracker
// (assignment drawn from rng), drains, and returns the tracker.
func foldSharded(kind checksum.Kind, ops []shardOp, nShards int, rng *rand.Rand) *ShardedTracker {
	st := NewShardedWith(kind)
	shards := make([]*Shard, nShards)
	for i := range shards {
		shards[i] = st.Shard()
	}
	for _, op := range ops {
		op.apply(shards[rng.Intn(nShards)].Tracker())
	}
	st.Drain()
	return st
}

// requireSameState asserts byte-identical detector state between the merged
// root and the sequential tracker.
func requireSameState(t *testing.T, ctx string, root, seq *Tracker) {
	t.Helper()
	rd, ru, red, reu := root.Checksums()
	sd, su, sed, seu := seq.Checksums()
	if rd != sd || ru != su || red != sed || reu != seu {
		t.Fatalf("%s: accumulators (%#x,%#x,%#x,%#x) != sequential (%#x,%#x,%#x,%#x)",
			ctx, rd, ru, red, reu, sd, su, sed, seu)
	}
	if root.ShadowCopies() != seq.ShadowCopies() {
		t.Fatalf("%s: shadow copies %#x != sequential %#x", ctx, root.ShadowCopies(), seq.ShadowCopies())
	}
	rdefs, ruses := root.OpCounts()
	sdefs, suses := seq.OpCounts()
	if rdefs != sdefs || ruses != suses {
		t.Fatalf("%s: op counts (%d,%d) != sequential (%d,%d)", ctx, rdefs, ruses, sdefs, suses)
	}
}

func TestShardedMergeEquivalentToSequential(t *testing.T) {
	for _, kind := range []checksum.Kind{checksum.ModAdd, checksum.XOR, checksum.OnesComp} {
		rng := rand.New(rand.NewSource(4400 + int64(kind)))
		for round := 0; round < 20; round++ {
			ops := genTrace(rng, 5+rng.Intn(20))
			seq := NewTrackerWith(kind)
			for _, op := range ops {
				op.apply(seq)
			}
			if err := seq.Verify(); err != nil {
				t.Fatalf("kind=%v: balanced sequential trace failed verify: %v", kind, err)
			}
			for nShards := 1; nShards <= 8; nShards++ {
				st := foldSharded(kind, ops, nShards, rng)
				ctx := kind.String()
				requireSameState(t, ctx, st.Root(), seq)
				if err := st.Verify(); err != nil {
					t.Fatalf("%s: %d shards: merged verify failed: %v", ctx, nShards, err)
				}
				if err := st.ScrubDetector(); err != nil {
					t.Fatalf("%s: %d shards: merged scrub failed: %v", ctx, nShards, err)
				}
			}
		}
	}
}

// TestShardedMergeVerdictPartitionInvariantUnderFault checks the mismatch
// case: a corrupted trace must produce the same failing verdict — the same
// mismatching pair and values — under every partition.
func TestShardedMergeVerdictPartitionInvariantUnderFault(t *testing.T) {
	for _, kind := range []checksum.Kind{checksum.ModAdd, checksum.XOR, checksum.OnesComp} {
		rng := rand.New(rand.NewSource(5500 + int64(kind)))
		for round := 0; round < 10; round++ {
			ops := genTrace(rng, 5+rng.Intn(15))
			// Corrupt one pure use: the observed value differs from the
			// defined one — the footprint of a memory error on a read.
			mask := uint64(1) << uint(rng.Intn(64))
			corrupted := false
			for i := range ops {
				if ops[i].kind == 1 {
					ops[i].v ^= mask
					corrupted = true
					break
				}
			}
			if !corrupted {
				continue
			}
			seq := NewTrackerWith(kind)
			for _, op := range ops {
				op.apply(seq)
			}
			seqErr := seq.Verify()
			var seqMM *checksum.MismatchError
			if seqErr != nil && !errors.As(seqErr, &seqMM) {
				t.Fatalf("kind=%v: unexpected verify error type %T", kind, seqErr)
			}
			for nShards := 1; nShards <= 8; nShards++ {
				st := foldSharded(kind, ops, nShards, rng)
				requireSameState(t, kind.String(), st.Root(), seq)
				gotErr := st.Verify()
				if (gotErr == nil) != (seqErr == nil) {
					t.Fatalf("kind=%v: %d shards: verdict %v, sequential %v", kind, nShards, gotErr, seqErr)
				}
				if seqErr == nil {
					continue
				}
				var gotMM *checksum.MismatchError
				if !errors.As(gotErr, &gotMM) {
					t.Fatalf("kind=%v: %d shards: error type %T", kind, nShards, gotErr)
				}
				if *gotMM != *seqMM {
					t.Fatalf("kind=%v: %d shards: mismatch %+v, sequential %+v", kind, nShards, *gotMM, *seqMM)
				}
			}
		}
	}
}

// TestShardedMergePreservesDetectorFaultEvidence: a fault striking a shard's
// accumulator before its merge must still be caught by the root's scrub
// after the merge — the decode-combine-re-encode merge carries the
// primary/shadow divergence through instead of laundering it.
func TestShardedMergePreservesDetectorFaultEvidence(t *testing.T) {
	for _, acc := range []checksum.Acc{checksum.AccDef, checksum.AccUse, checksum.AccEDef, checksum.AccEUse} {
		st := NewSharded()
		a, b := st.Shard(), st.Shard()
		Def(a.Tracker(), 1.5, 2)
		UseKnown(b.Tracker(), 1.5)
		UseKnown(b.Tracker(), 1.5)
		a.Tracker().CorruptAccumulator(acc, 13)
		st.Drain()
		if err := st.ScrubDetector(); err == nil {
			t.Errorf("acc=%v: detector fault on a shard vanished in the merge", acc)
		} else {
			var df *DetectorFaultError
			if !errors.As(err, &df) {
				t.Errorf("acc=%v: scrub returned %T, want *DetectorFaultError", acc, err)
			}
		}
	}
}

// TestShardedMergePropagatesLatchedCounterFault: a counter fault latched on
// a shard surfaces from the root's ScrubDetector after the merge.
func TestShardedMergePropagatesLatchedCounterFault(t *testing.T) {
	st := NewSharded()
	sh := st.Shard()
	var c Counter
	DefDyn(sh.Tracker(), &c, uint64(0), uint64(42))
	CorruptCounter(&c, 3)
	Final(sh.Tracker(), &c, uint64(42)) // consumption latches the divergence
	sh.Merge()
	var df *DetectorFaultError
	if err := st.ScrubDetector(); !errors.As(err, &df) {
		t.Fatalf("latched counter fault did not survive the merge: %v", err)
	}
}

// TestShardedEpochDrainAndRollback: epoch boundaries drain every live shard
// before sealing, and Rollback discards unmerged shard state along with
// restoring the merged view.
func TestShardedEpochDrainAndRollback(t *testing.T) {
	st := NewSharded()
	a, b := st.Shard(), st.Shard()

	Def(a.Tracker(), 2.5, 1)
	UseKnown(b.Tracker(), 2.5)
	start := st.BeginEpoch() // drains both shards, seals the merged view
	if n := st.Drain(); n != 2 {
		t.Fatalf("Drain merged %d shards, want 2 (BeginEpoch should leave them live)", n)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("merged epoch-entry state failed verify: %v", err)
	}

	// Unbalanced folds land on a shard: a use with no matching def.
	UseKnown(a.Tracker(), 9.75)
	if _, err := st.EndEpoch(); err == nil {
		t.Fatal("EndEpoch verified clean despite an unbalanced shard fold")
	}
	if err := st.Rollback(start); err != nil {
		t.Fatalf("Rollback of sealed epoch state failed: %v", err)
	}
	// The unmerged shard state must be gone: the epoch re-executes from the
	// checkpoint, so a stale partial fold would double-count.
	if def, use, _, _ := a.Tracker().Checksums(); def != 0 || use != 0 {
		t.Fatalf("shard kept unmerged state across Rollback: def=%#x use=%#x", def, use)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("restored state failed verify: %v", err)
	}
}

// TestShardCloseRetires: Close merges residual state, shrinks the live set,
// and is idempotent.
func TestShardCloseRetires(t *testing.T) {
	st := NewSharded()
	sh := st.Shard()
	other := st.Shard()
	if got := st.LiveShards(); got != 2 {
		t.Fatalf("LiveShards = %d, want 2", got)
	}
	Def(sh.Tracker(), 3.5, 1)
	UseKnown(sh.Tracker(), 3.5)
	sh.Close()
	sh.Close() // idempotent
	if got := st.LiveShards(); got != 1 {
		t.Fatalf("LiveShards after Close = %d, want 1", got)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("residual state not merged by Close: %v", err)
	}
	other.Close()
}

// TestShardedTelemetry: merges and drains emit their events and maintain the
// live-shards gauge.
func TestShardedTelemetry(t *testing.T) {
	var col telemetry.Collector
	reg := telemetry.NewRegistry()
	st := NewSharded().SetTelemetry(&col, reg)
	a, b := st.Shard(), st.Shard()
	Def(a.Tracker(), 1.0, 1)
	UseKnown(a.Tracker(), 1.0)
	a.Merge()
	st.Drain() // merges b (and the already-empty a)
	b.Close()
	a.Close()
	if got := col.Count(telemetry.EvShardMerge); got < 3 {
		t.Errorf("EvShardMerge count = %d, want >= 3", got)
	}
	if got := col.Count(telemetry.EvShardDrain); got != 1 {
		t.Errorf("EvShardDrain count = %d, want 1", got)
	}
	snap := reg.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "defuse_rt_live_shards" {
			found = true
			if m.Value != 0 {
				t.Errorf("live-shards gauge = %v after all closes, want 0", m.Value)
			}
		}
	}
	if !found {
		t.Error("live-shards gauge not registered")
	}
}

// TestShardKindMismatchPanics pins the Merge contract: folding a shard of
// one operator into a root of another is a programmer error.
func TestShardKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("cross-operator merge did not panic")
		}
	}()
	p := checksum.NewPair(checksum.ModAdd)
	p.Merge(checksum.NewPair(checksum.XOR))
}

// TestShardedRecycle: Recycle returns a tracker to its post-NewSharded
// state — unmerged shard residue is discarded (never merged), open shard
// handles are dead, the live-shard gauge drops to zero, and the recycled
// tracker behaves exactly like a fresh one for the next owner.
func TestShardedRecycle(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewSharded().SetTelemetry(nil, reg)

	// Leave the tracker mid-request: an unbalanced fold on a still-open
	// shard, an advanced epoch counter, and a latched detector verdict
	// would each poison the next request if they survived.
	sh := st.Shard()
	UseKnown(sh.Tracker(), 4.25) // unbalanced: no matching def
	if _, err := st.EndEpoch(); err == nil {
		t.Fatal("EndEpoch verified clean despite an unbalanced fold")
	}

	st.Recycle()

	if got := st.LiveShards(); got != 0 {
		t.Fatalf("LiveShards after Recycle = %d, want 0", got)
	}
	if g := reg.Gauge("defuse_rt_live_shards"); g.Value() != 0 {
		t.Fatalf("live gauge after Recycle = %v, want 0", g.Value())
	}
	if def, use, _, _ := st.Checksums(); def != 0 || use != 0 {
		t.Fatalf("residue survived Recycle: def=%#x use=%#x", def, use)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("recycled tracker failed verify: %v", err)
	}

	// The pre-recycle shard handle must be inert: folding into it must not
	// reach the next request's merge.
	Def(sh.Tracker(), 9.5, 1)
	sh.Close()

	sh2 := st.Shard()
	Def(sh2.Tracker(), 2.5, 1)
	UseKnown(sh2.Tracker(), 2.5)
	sh2.Close()
	if _, err := st.EndEpoch(); err != nil {
		t.Fatalf("recycled tracker's first epoch failed verify: %v", err)
	}
}
