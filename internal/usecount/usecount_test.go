package usecount

import (
	"fmt"
	"sort"
	"testing"

	"defuse/internal/deps"
	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/poly"
)

func analyze(t *testing.T, src string) (*pdg.Model, *Analysis) {
	t.Helper()
	m, err := pdg.Extract(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return m, Analyze(deps.Analyze(m))
}

const choleskySrc = `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

func TestCholeskyUseCountMatchesPaper(t *testing.T) {
	// Section 3.2: use count of S1 is n-1-j for 0 <= j <= n-2, zero at
	// j = n-1.
	m, a := analyze(t, choleskySrc)
	s1 := m.Statement("S1")
	dc := a.Defs[s1]
	if dc == nil {
		t.Fatal("no def count for S1")
	}
	if len(dc.Contribs) != 1 {
		t.Fatalf("S1 has %d contributions, want 1", len(dc.Contribs))
	}
	poly1, single := dc.Contribs[0].Count.IsSinglePolynomial()
	if !single {
		t.Fatalf("expected single polynomial, got %v", dc.Contribs[0].Count)
	}
	want := poly.PolyFromLin(poly.V("n").Sub(poly.V("j")).AddConst(-1))
	if !poly1.Equal(want) {
		t.Errorf("S1 use count = %v, want n - j - 1", poly1)
	}
	n := int64(7)
	for j := int64(0); j < n; j++ {
		got, err := dc.TotalAt(map[string]int64{"j": j, "n": n})
		if err != nil {
			t.Fatal(err)
		}
		wantCount := n - 1 - j
		if j == n-1 {
			wantCount = 0
		}
		if got != wantCount {
			t.Errorf("j=%d: use count %d, want %d", j, got, wantCount)
		}
	}
	// S2's definitions are never read again: zero contributions.
	s2 := m.Statement("S2")
	if dc2 := a.Defs[s2]; dc2 == nil {
		t.Fatal("S2 should still have a (zero-contribution) def count")
	} else if len(dc2.Contribs) != 0 {
		t.Errorf("S2 has %d contributions, want 0", len(dc2.Contribs))
	}
}

func TestCholeskyLiveIns(t *testing.T) {
	// Live-in cells of A: S1 reads A[j][j] at its first... every S1 read of
	// the diagonal is live-in (nothing writes the diagonal before S1[j]);
	// S2's A[i][j] reads are live-in; S2's A[j][j] reads are fed by S1.
	_, a := analyze(t, choleskySrc)
	if !a.Analyzable("A") {
		t.Fatal("A should be analyzable")
	}
	lis := a.LiveIns["A"]
	if len(lis) == 0 {
		t.Fatal("expected live-in contributions for A")
	}
	// Sum live-in counts for each cell at n=5 and compare with a trace.
	n := int64(5)
	total := map[string]int64{}
	for _, li := range lis {
		for c0 := int64(0); c0 < n; c0++ {
			for c1 := int64(0); c1 < n; c1++ {
				env := map[string]int64{"n": n, li.CellVars[0]: c0, li.CellVars[1]: c1}
				v, _, err := li.Count.Eval(env)
				if err != nil {
					t.Fatal(err)
				}
				total[fmt.Sprintf("%d,%d", c0, c1)] += v
			}
		}
	}
	// Trace: initial A[c0][c1] is read... S1[j] reads A[j][j] (live-in: yes,
	// first toucher of the diagonal). S2[j,i] reads A[i][j] (i>j): cell
	// (i,j) below diagonal, live-in (written only by S2 itself at that
	// iteration). S2 reads A[j][j]: fed by S1. So live-in counts:
	// diagonal (j,j) -> 1; below-diagonal (i,j), i>j -> 1; above -> 0.
	for c0 := int64(0); c0 < n; c0++ {
		for c1 := int64(0); c1 < n; c1++ {
			want := int64(0)
			if c0 >= c1 {
				want = 1
			}
			got := total[fmt.Sprintf("%d,%d", c0, c1)]
			if got != want {
				t.Errorf("live-in count of A[%d][%d] = %d, want %d", c0, c1, got, want)
			}
		}
	}
}

func TestClassification(t *testing.T) {
	_, a := analyze(t, `
program t(n)
float A[n], B[n], s;
int cols[n];
for i = 0 to n - 1 {
  S1: A[cols[i]] = 1.0;
}
for i = 0 to n - 1 {
  S2: B[i] = 2.0;
}
S3: s = B[0];
`)
	if a.Analyzable("A") {
		t.Error("A has indirect accesses: must be dynamic")
	}
	if !a.Analyzable("B") || !a.Analyzable("s") {
		t.Error("B and s should be analyzable")
	}
	if !a.Analyzable("cols") {
		t.Error("cols itself is accessed affinely: analyzable")
	}
	if a.Classes["A"].Reason == "" {
		t.Error("dynamic class should carry a reason")
	}
}

func TestWhileMakesDynamic(t *testing.T) {
	_, a := analyze(t, `
program t(n)
float A[n];
int k;
k = 0;
while (k < 3) {
  for i = 0 to n - 1 {
    S1: A[i] = A[i] + 1.0;
  }
  k = k + 1;
}
`)
	if a.Analyzable("A") {
		t.Error("A accessed under while: must be dynamic")
	}
	if a.Analyzable("k") {
		t.Error("k accessed under while: must be dynamic")
	}
}

// TestUseCountsAgainstTrace cross-validates Algorithm 1 against a dynamic
// trace on several kernels: for every write instance, the traced number of
// reads of that value must equal the static count.
func TestUseCountsAgainstTrace(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		params map[string]int64
	}{
		{"cholesky", choleskySrc, map[string]int64{"n": 6}},
		{"jacobi", `
program jac(n, tmax)
float A[n], B[n];
for t = 0 to tmax - 1 {
  for i = 1 to n - 2 {
    S1: B[i] = A[i - 1] + A[i] + A[i + 1];
  }
  for i = 1 to n - 2 {
    S2: A[i] = B[i];
  }
}
`, map[string]int64{"n": 8, "tmax": 3}},
		{"trisolv", `
program trisolv(n)
float L[n][n], x[n], b[n];
for i = 0 to n - 1 {
  S1: x[i] = b[i];
  for j = 0 to i - 1 {
    S2: x[i] = x[i] - L[i][j] * x[j];
  }
  S3: x[i] = x[i] / L[i][i];
}
`, map[string]int64{"n": 6}},
		{"dsyrk", `
program dsyrk(n, m)
float C[n][n], A[n][m];
for i = 0 to n - 1 {
  for j = 0 to n - 1 {
    for k = 0 to m - 1 {
      S1: C[i][j] = C[i][j] + A[i][k] * A[j][k];
    }
  }
}
`, map[string]int64{"n": 4, "m": 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, a := analyze(t, tc.src)
			traced := traceUseCounts(t, m, tc.params)
			for _, s := range m.Stmts {
				dc := a.Defs[s]
				if dc == nil {
					t.Fatalf("%s: no def count", s.ID)
				}
				for _, pt := range s.Domain.EnumeratePoints(tc.params, 64) {
					env := map[string]int64{}
					for k, v := range tc.params {
						env[k] = v
					}
					for k, v := range pt {
						env[k] = v
					}
					got, err := dc.TotalAt(env)
					if err != nil {
						t.Fatal(err)
					}
					key := instKeyOf(s, env)
					if got != traced[key] {
						t.Errorf("%s at %v: static count %d, traced %d", s.ID, pt, got, traced[key])
					}
				}
			}
		})
	}
}

func instKeyOf(s *pdg.Statement, env map[string]int64) string {
	idx := make([]int64, len(s.Iters))
	for k, it := range s.Iters {
		idx[k] = env[it]
	}
	return fmt.Sprintf("%s%v", s.ID, idx)
}

// traceUseCounts executes the model and counts, per write instance, how many
// subsequent reads observe that write.
func traceUseCounts(t *testing.T, m *pdg.Model, params map[string]int64) map[string]int64 {
	t.Helper()
	type inst struct {
		stmt *pdg.Statement
		env  map[string]int64
		key  []int64
	}
	var insts []inst
	for _, s := range m.Stmts {
		for _, pt := range s.Domain.EnumeratePoints(params, 64) {
			env := map[string]int64{}
			for k, v := range params {
				env[k] = v
			}
			for k, v := range pt {
				env[k] = v
			}
			key := make([]int64, len(s.Schedule))
			for k, term := range s.Schedule {
				if term.IsIter {
					key[k] = env[term.Iter]
				} else {
					key[k] = term.Const
				}
			}
			insts = append(insts, inst{s, env, key})
		}
	}
	sort.Slice(insts, func(a, b int) bool {
		ka, kb := insts[a].key, insts[b].key
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	counts := map[string]int64{}
	lastWriter := map[string]string{}
	for i := range insts {
		ins := &insts[i]
		for ri := range ins.stmt.Reads {
			read := &ins.stmt.Reads[ri]
			idx := make([]int64, len(read.Index))
			for k, lin := range read.Index {
				idx[k], _ = lin.Eval(ins.env)
			}
			cell := fmt.Sprintf("%s%v", read.Array, idx)
			if w, ok := lastWriter[cell]; ok {
				counts[w]++
			}
		}
		w := &ins.stmt.Write
		idx := make([]int64, len(w.Index))
		for k, lin := range w.Index {
			idx[k], _ = lin.Eval(ins.env)
		}
		lastWriter[fmt.Sprintf("%s%v", w.Array, idx)] = instKeyOf(ins.stmt, ins.env)
	}
	return counts
}

func TestCellVarName(t *testing.T) {
	n := CellVarName("A", 1)
	if n != "A#c1" {
		t.Errorf("CellVarName = %q", n)
	}
}
