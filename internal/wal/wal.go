// Package wal is a durable checkpoint log: an append-only file of
// length-prefixed, CRC64-framed records with fsync-on-seal semantics.
//
// Every layer above it (rt.EpochState, memsim.Snapshot) already covers its
// own bytes with a splitmix64 integrity digest; the WAL adds what those
// digests cannot provide — durability across process death and a framing
// discipline that makes partial writes detectable. The recovery scanner
// distinguishes the two failure shapes a crash-plus-fault model produces:
//
//   - a torn tail (the process died mid-append, leaving a truncated final
//     frame) is expected and tolerated: the scanner falls back to the
//     previous sealed record;
//   - a bit-flipped frame (a complete frame whose CRC no longer matches) is
//     corruption of recovery state itself and is classified as
//     ErrCheckpointCorrupt — it is never returned as data, and nothing after
//     it is trusted for framing.
//
// Rotation bounds the file: when the log grows past MaxBytes, the newest
// record is rewritten alone into a temp file which is fsynced and renamed
// over the log (the same atomic temp-write + rename discipline the campaign
// resume checkpoint uses, shared here as WriteFileAtomic).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"defuse/telemetry"
)

// magic identifies a defuse WAL file (8 bytes, version folded in).
var magic = [8]byte{'D', 'F', 'W', 'A', 'L', '0', '0', '1'}

// frameHeaderSize is the per-record header: uint32 payload length + uint32
// sequence number. The trailer is a uint64 CRC64 over header and payload.
const (
	frameHeaderSize  = 8
	frameTrailerSize = 8
	// maxFrameBytes rejects absurd lengths early: a bit flip in a length
	// prefix must not make the scanner attempt a multi-gigabyte read.
	maxFrameBytes = 1 << 30
)

// crcTable is the ECMA polynomial table shared by writer and scanner.
var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrCheckpointCorrupt reports that a complete frame failed its CRC: a fault
// (disk bit flip, overwritten sector) struck the parked checkpoint log. The
// scanner never returns bytes from such a frame; when no older sealed record
// survives, recovery must restart from initial state.
var ErrCheckpointCorrupt = errors.New("wal: checkpoint frame corrupt")

// ErrNoCheckpoint reports that the log holds no recoverable record: the file
// is missing, empty, or contains only a torn first frame (the process died
// during its very first seal). It means "start from scratch", not failure.
var ErrNoCheckpoint = errors.New("wal: no sealed checkpoint record")

// Record is one sealed checkpoint payload recovered from the log.
type Record struct {
	// Seq is the record's sequence number as written by Append.
	Seq uint32
	// Payload is the application bytes exactly as sealed.
	Payload []byte
}

// Scan is the outcome of recovering a log file. Records are ordered oldest
// to newest; Newest() is the one a resume normally wants, and the rest exist
// so a caller whose payload-level digest check rejects the newest can fall
// back to a strictly older sealed state.
type Scan struct {
	// Path is the scanned file.
	Path string
	// Records are the frames whose CRC verified, oldest first.
	Records []Record
	// TornTail reports a truncated final frame: the process died mid-append.
	TornTail bool
	// TornBytes counts the trailing bytes discarded with the torn tail.
	TornBytes int
	// Corrupt counts complete frames whose CRC failed. Scanning stops at the
	// first one — after a corrupt frame the length chain cannot be trusted —
	// so this is 0 or 1, plus the unscanned remainder is dropped.
	Corrupt int
	// ValidSize is the byte offset of the end of the last valid frame; an
	// appender must truncate the file here before writing.
	ValidSize int64
	// NextSeq is the sequence number the next Append should use.
	NextSeq uint32
}

// Newest returns the most recent valid record, or nil when none survived.
func (s *Scan) Newest() *Record {
	if len(s.Records) == 0 {
		return nil
	}
	return &s.Records[len(s.Records)-1]
}

// Recover scans a checkpoint log. It returns a Scan holding every frame
// whose CRC verified, plus a classification of whatever ended the scan:
//
//   - nil error with at least one record: resume from Newest() (a torn tail
//     or a corrupt newest frame may still be flagged in the Scan — the
//     returned records are strictly older sealed state);
//   - ErrNoCheckpoint: nothing recoverable, nothing suspicious beyond at
//     most a torn first frame — start fresh;
//   - ErrCheckpointCorrupt: a bit-flipped frame with no older sealed record
//     to fall back to — start fresh, but the caller should report it.
func Recover(path string) (*Scan, error) {
	s := &Scan{Path: path}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, ErrNoCheckpoint
	}
	if err != nil {
		return s, err
	}
	if len(raw) < len(magic) {
		// Died before the header hit the disk: an empty or embryonic log.
		s.TornTail = len(raw) > 0
		s.TornBytes = len(raw)
		return s, ErrNoCheckpoint
	}
	if [8]byte(raw[:8]) != magic {
		// The header itself is damaged; no frame boundary can be trusted.
		s.Corrupt = 1
		return s, fmt.Errorf("wal: %s: bad magic: %w", path, ErrCheckpointCorrupt)
	}
	off := int64(len(magic))
	s.ValidSize = off
	for off < int64(len(raw)) {
		rest := int64(len(raw)) - off
		if rest < frameHeaderSize {
			s.TornTail, s.TornBytes = true, int(rest)
			break
		}
		length := int64(binary.LittleEndian.Uint32(raw[off:]))
		seq := binary.LittleEndian.Uint32(raw[off+4:])
		if length > maxFrameBytes {
			// A length this large is a flipped prefix, not a real frame.
			s.Corrupt++
			break
		}
		total := frameHeaderSize + length + frameTrailerSize
		if rest < total {
			s.TornTail, s.TornBytes = true, int(rest)
			break
		}
		body := raw[off : off+frameHeaderSize+length]
		want := binary.LittleEndian.Uint64(raw[off+frameHeaderSize+length:])
		if crc64.Checksum(body, crcTable) != want {
			s.Corrupt++
			break
		}
		s.Records = append(s.Records, Record{
			Seq:     seq,
			Payload: append([]byte(nil), body[frameHeaderSize:]...),
		})
		off += total
		s.ValidSize = off
		s.NextSeq = seq + 1
	}
	if len(s.Records) == 0 {
		if s.Corrupt > 0 {
			return s, fmt.Errorf("wal: %s: no sealed record survives: %w", path, ErrCheckpointCorrupt)
		}
		return s, ErrNoCheckpoint
	}
	return s, nil
}

// Options configures an append handle.
type Options struct {
	// MaxBytes triggers rotation: when an Append pushes the file past this
	// size and more than one record is live, the log is compacted to its
	// newest record via an atomic temp-write + rename. Zero disables.
	MaxBytes int64
	// FS is the file layer writes go through; nil means the real filesystem.
	// Tests and the chaos soak substitute a FaultFS to fail seeded writes
	// and fsyncs.
	FS FS
}

func (o Options) fs() FS {
	if o.FS == nil {
		return OSFS
	}
	return o.FS
}

// Log is an append handle over a checkpoint log file. It is not safe for
// concurrent use; the durable supervisor appends from one goroutine.
type Log struct {
	f       File
	path    string
	opts    Options
	size    int64
	records int
	nextSeq uint32
	// last is the newest record's frame bytes, kept so rotation can rewrite
	// the compacted log without re-reading the file.
	last []byte
	// poisoned is set when a failed append could not be rolled back.
	poisoned bool

	// tracer/span, when armed via SetTracer, record one "wal.append" span
	// per sealed record (with a "wal.rotate" child when the append
	// compacted the log). A nil tracer costs one nil check.
	tracer *telemetry.Tracer
	span   telemetry.SpanContext
}

// SetTracer arms span recording on the append handle; spans attach to
// parent (the supervisor's run span).
func (l *Log) SetTracer(t *telemetry.Tracer, parent telemetry.SpanContext) {
	l.tracer = t
	l.span = parent
}

// Create truncates (or creates) the log at path and returns an empty append
// handle. Any previous contents are discarded — use Open to continue a log.
func Create(path string, opts Options) (*Log, error) {
	f, err := opts.fs().OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path, opts: opts, size: int64(len(magic))}, nil
}

// Open continues the log described by a prior Recover scan: the file is
// truncated to the end of its last valid frame (discarding any torn tail or
// poisoned remainder) and positioned for appending. The scan must be of the
// same path and still describe the file on disk.
func Open(s *Scan, opts Options) (*Log, error) {
	f, err := opts.fs().OpenFile(s.Path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(s.ValidSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(s.ValidSize, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		f: f, path: s.Path, opts: opts,
		size: s.ValidSize, records: len(s.Records), nextSeq: s.NextSeq,
	}
	if r := s.Newest(); r != nil {
		l.last = frame(r.Seq, r.Payload)
	}
	return l, nil
}

// frame renders one record's on-disk bytes: header, payload, CRC trailer.
func frame(seq uint32, payload []byte) []byte {
	b := make([]byte, frameHeaderSize+len(payload)+frameTrailerSize)
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], seq)
	copy(b[frameHeaderSize:], payload)
	sum := crc64.Checksum(b[:frameHeaderSize+len(payload)], crcTable)
	binary.LittleEndian.PutUint64(b[frameHeaderSize+len(payload):], sum)
	return b
}

// ErrLogPoisoned reports that a previous failed append could not be rolled
// back (the truncate-to-valid repair itself failed), so the file's tail state
// is unknown and further appends are refused. Recovery over the file is still
// safe — the scanner treats whatever landed as a torn tail.
var ErrLogPoisoned = errors.New("wal: log poisoned by unrepaired append failure")

// Append seals one checkpoint record: the frame is written in a single
// write call and fsynced before Append returns, so a record the caller has
// been told about survives any subsequent crash. When the log exceeds
// MaxBytes it is then rotated down to this newest record.
//
// A failed write or fsync is rolled back before Append returns: the file is
// truncated to its pre-append size, so the half-written frame cannot later be
// misread as a sealed record. If the rollback itself fails the handle is
// poisoned and every later Append returns ErrLogPoisoned.
func (l *Log) Append(payload []byte) error {
	if l.poisoned {
		return ErrLogPoisoned
	}
	sp := l.tracer.Start(l.span, "wal.append",
		telemetry.Int("bytes", len(payload)), telemetry.Int("seq", int(l.nextSeq)))
	b := frame(l.nextSeq, payload)
	if _, err := l.f.Write(b); err != nil {
		err = fmt.Errorf("wal: append: %w", l.repair(err))
		sp.EndErr(err)
		return err
	}
	if err := l.f.Sync(); err != nil {
		err = fmt.Errorf("wal: append sync: %w", l.repair(err))
		sp.EndErr(err)
		return err
	}
	l.size += int64(len(b))
	l.records++
	l.nextSeq++
	l.last = b
	if l.opts.MaxBytes > 0 && l.size > l.opts.MaxBytes && l.records > 1 {
		rsp := l.tracer.Start(sp.Context(), "wal.rotate", telemetry.Int("records", l.records))
		err := l.rotate()
		rsp.EndErr(err)
		sp.EndErr(err)
		return err
	}
	sp.EndErr(nil)
	return nil
}

// repair rolls a failed append back to the last sealed state: truncate to the
// pre-append size (l.size is only advanced after a successful fsync) and
// re-seek so the next frame lands on a clean boundary. On success the handle
// stays usable; on failure it is poisoned.
func (l *Log) repair(cause error) error {
	if err := l.f.Truncate(l.size); err != nil {
		l.poisoned = true
		return fmt.Errorf("%w (rollback truncate failed: %v)", cause, err)
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.poisoned = true
		return fmt.Errorf("%w (rollback seek failed: %v)", cause, err)
	}
	return cause
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 { return l.size }

// Records returns the number of live records (after any rotation).
func (l *Log) Records() int { return l.records }

// rotate compacts the log to its newest record: magic plus the last frame
// are written to a temp file, fsynced, and renamed over the log, then the
// append handle is moved to the new file. A crash at any point leaves either
// the old log or the complete new one — never a partial state.
func (l *Log) rotate() error {
	buf := make([]byte, 0, len(magic)+len(l.last))
	buf = append(buf, magic[:]...)
	buf = append(buf, l.last...)
	if err := WriteFileAtomic(l.path, buf, 0o644); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	f, err := l.opts.fs().OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate reopen: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: rotate seek: %w", err)
	}
	old := l.f
	l.f = f
	l.size = int64(len(buf))
	l.records = 1
	old.Close()
	return nil
}

// Rewrite atomically replaces the log at path with exactly the given records,
// preserving their sequence numbers. Recovery uses it to drop refused records
// (digest-failed payloads, foreign fingerprints) that sit above the record
// actually resumed, so the poisoned bytes cannot resurface on a later scan.
func Rewrite(path string, records []Record) error {
	buf := append([]byte(nil), magic[:]...)
	for _, r := range records {
		buf = append(buf, frame(r.Seq, r.Payload)...)
	}
	return WriteFileAtomic(path, buf, 0o644)
}

// Close syncs and closes the append handle.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic writes data to path with crash-safe atomicity: the bytes
// go to a temp file in the same directory, are fsynced, and the temp file is
// renamed over path, followed by a directory fsync so the rename itself is
// durable. A process killed at any point leaves either the old file or the
// complete new one; a truncated temp file can never be observed at path.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-performed rename survives power loss.
// Filesystems that refuse directory fsync (some network mounts) are
// tolerated: the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
