package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"defuse/internal/bench"
	"defuse/internal/faults"
	"defuse/internal/recovery"
	"defuse/internal/wal"
	"defuse/telemetry"
)

// Config describes one resident detection service.
type Config struct {
	// Words and Epochs are the verify-job defaults (requests may override
	// within [1, 4*default]).
	Words  int
	Epochs int
	// Seed derives verify jobs' initial data.
	Seed uint64
	// Kernel, when non-empty, preloads a pool of interpreter machines for
	// the named benchmark at Scale; requests with kind "kernel" run on them.
	Kernel string
	Scale  float64
	// MaxInFlight bounds concurrently executing requests (default 4); it is
	// also the size of each pool.
	MaxInFlight int
	// QueueDepth bounds requests waiting for a free slot; arrivals beyond it
	// are shed with 429 (default 2*MaxInFlight).
	QueueDepth int
	// Timeout is the per-request deadline propagated into epoch supervision
	// and interpreter step loops (default 30s).
	Timeout time.Duration
	// FaultRate and FaultSeed configure sampled live fault injection on
	// verify requests. Rate 0 disables injection.
	FaultRate float64
	FaultSeed uint64
	// FaultAddrFraction is the fraction of sampled hits injected as address
	// faults (a wrong-location load) instead of data bit flips. Part of the
	// sampler's shared contract: the load generator must mirror it to audit.
	FaultAddrFraction float64
	// WALPath, when non-empty, journals every completed request for
	// crash-consistent resume.
	WALPath string
	// WALSegmentBytes seals the journal's active segment before it exceeds
	// this size (default 64 MiB — effectively one segment for CI bursts).
	WALSegmentBytes int64
	// WALMaxSegments caps sealed segments before the oldest compacts into
	// the summary (default 8; 0 keeps the default, -1 disables compaction).
	WALMaxSegments int
	// WALFS, when non-nil, routes journal writes through an alternate file
	// layer (the chaos soak injects fsync/write faults here).
	WALFS wal.FS
	// DegradeAfterSheds is how many consecutive sheds push the overload
	// ladder from shedding to degraded (default 2*QueueDepth).
	DegradeAfterSheds int
	// RecoverAfterOK is how many consecutive successful admissions walk the
	// ladder back to healthy (default QueueDepth).
	RecoverAfterOK int
	// Policy bounds per-request recovery effort (zero value: DefaultPolicy).
	Policy recovery.Policy
	// Obs supplies telemetry (any component may be nil); the obs Health, when
	// present, tracks readiness and in-flight count.
	Obs *telemetry.Obs
}

// Stats is the service's live counter snapshot, served at /stats.
type Stats struct {
	Requests     int64  `json:"requests"`
	Verify       int64  `json:"verify"`
	Kernel       int64  `json:"kernel"`
	Shed         int64  `json:"shed"`
	Rejected     int64  `json:"rejected"`
	Errors       int64  `json:"errors"`
	Injected     int64  `json:"injected"`
	Detected     int64  `json:"detected"`
	Recovered    int64  `json:"recovered"`
	Tainted      int64  `json:"tainted"`
	Duplicates   int64  `json:"duplicates"`
	JournalFault int64  `json:"journal_faults"`
	InFlight     int64  `json:"in_flight"`
	WALRecords   int    `json:"wal_records"`
	WALCompacted int    `json:"wal_compacted"`
	WALSegments  int    `json:"wal_segments"`
	WALDiskBytes int64  `json:"wal_disk_bytes"`
	State        string `json:"state"`
	DegradedN    int64  `json:"degraded_entered"`
	Draining     bool   `json:"draining"`
}

// Request is the /run request body.
type Request struct {
	ID     uint64 `json:"id"`
	Kind   string `json:"kind,omitempty"`   // "verify" (default) or "kernel"
	Words  int    `json:"words,omitempty"`  // verify override
	Epochs int    `json:"epochs,omitempty"` // verify override
}

// Response is the /run response body.
type Response struct {
	ID        uint64  `json:"id"`
	Kind      string  `json:"kind"`
	Injected  bool    `json:"injected"`
	Detected  bool    `json:"detected"`
	Recovered bool    `json:"recovered"`
	Tainted   bool    `json:"tainted"`
	Retries   int     `json:"retries"`
	Restarts  int     `json:"restarts"`
	Digest    uint64  `json:"digest"`
	RefDigest uint64  `json:"ref_digest"`
	Elapsed   float64 `json:"elapsed_seconds"`
}

// Server is the resident detection service.
type Server struct {
	cfg      Config
	tel      bench.Telemetry
	health   *telemetry.Health
	sampler  *faults.LiveSampler
	trackers *trackerPool
	kernels  *kernelPool
	journal  *journal
	resume   ResumeInfo
	ladder   *ladder

	slots    chan struct{} // in-flight semaphore, cap MaxInFlight
	queued   atomic.Int64  // requests waiting for a slot
	drainCh  chan struct{} // closed when draining starts
	drainOne sync.Once
	wg       sync.WaitGroup // in-flight request workers

	requests, verifyN, kernelN     atomic.Int64
	shed, rejected, errCount       atomic.Int64
	injected, detected, recoveredN atomic.Int64
	taintedN                       atomic.Int64
	duplicates, journalFaults      atomic.Int64
	latency                        *telemetry.Histogram
	requestCount                   func(result string) *telemetry.Counter
}

// New builds the service: pools allocated, kernel warmed up, journal scanned
// and resumed (the newest valid record is re-verified from first
// principles), health still unready — the caller flips it after mounting
// routes.
func New(cfg Config) (*Server, error) {
	if cfg.Words <= 0 {
		cfg.Words = 64
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.MaxInFlight
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.WALSegmentBytes <= 0 {
		cfg.WALSegmentBytes = 64 << 20
	}
	switch {
	case cfg.WALMaxSegments == 0:
		cfg.WALMaxSegments = 8
	case cfg.WALMaxSegments < 0:
		cfg.WALMaxSegments = 0 // compaction disabled
	}
	if cfg.DegradeAfterSheds <= 0 {
		cfg.DegradeAfterSheds = 2 * cfg.QueueDepth
	}
	if cfg.RecoverAfterOK <= 0 {
		cfg.RecoverAfterOK = cfg.QueueDepth
	}
	if cfg.Policy.MaxRetries == 0 && cfg.Policy.MaxRestarts == 0 {
		cfg.Policy = recovery.DefaultPolicy()
	}
	obs := cfg.Obs
	if obs == nil {
		obs = &telemetry.Obs{}
	}
	s := &Server{
		cfg:     cfg,
		tel:     bench.Telemetry{Trace: obs.Sink, Metrics: obs.Metrics, Tracer: obs.Tracer},
		health:  obs.Health,
		slots:   make(chan struct{}, cfg.MaxInFlight),
		drainCh: make(chan struct{}),
	}
	s.ladder = newLadder(cfg.DegradeAfterSheds, cfg.RecoverAfterOK, announceState(obs))
	obs.Health.SetState(StateHealthy)
	if reg := obs.Metrics; reg != nil {
		reg.Gauge("defuse_server_state").Set(stateLevel(StateHealthy))
	}
	if cfg.FaultRate > 0 {
		s.sampler = faults.NewLiveSampler(cfg.FaultRate, cfg.FaultSeed).
			WithAddrFraction(cfg.FaultAddrFraction)
	}
	s.trackers = newTrackerPool(cfg.MaxInFlight, obs.Sink, obs.Metrics)
	if cfg.Kernel != "" {
		scale := cfg.Scale
		if scale <= 0 {
			scale = 0.002
		}
		kp, err := newKernelPool(context.Background(), cfg.Kernel, scale, cfg.MaxInFlight, s.tel)
		if err != nil {
			return nil, err
		}
		s.kernels = kp
	}
	if cfg.WALPath != "" {
		jcfg := journalConfig{
			SegmentBytes: cfg.WALSegmentBytes,
			MaxSegments:  cfg.WALMaxSegments,
			FS:           cfg.WALFS,
		}
		if sink := obs.Sink; sink != nil || obs.Metrics != nil {
			jcfg.OnRotate = func(path string, bytes int64, records int) {
				telemetry.Emit(sink, telemetry.EvJournalRotate, map[string]any{
					"segment": path, "bytes": bytes, "records": records,
				})
				if reg := obs.Metrics; reg != nil {
					reg.Counter("defuse_journal_rotations_total").Inc()
				}
			}
			jcfg.OnCompact = func(path string, folded int, diskBytes int64) {
				telemetry.Emit(sink, telemetry.EvJournalCompact, map[string]any{
					"segment": path, "folded": folded, "disk_bytes": diskBytes,
				})
				if reg := obs.Metrics; reg != nil {
					reg.Counter("defuse_journal_compactions_total").Inc()
					reg.Gauge("defuse_journal_disk_bytes").Set(float64(diskBytes))
				}
			}
		}
		j, info, err := openJournal(cfg.WALPath, jcfg)
		if err != nil {
			return nil, fmt.Errorf("server: journal: %w", err)
		}
		s.journal = j
		s.resume = info
	}
	if reg := obs.Metrics; reg != nil {
		s.latency = reg.Histogram("defuse_service_request_seconds", telemetry.DefBuckets())
		s.requestCount = func(result string) *telemetry.Counter {
			return reg.Counter("defuse_service_requests_total",
				telemetry.Label{Key: "result", Value: result})
		}
	}
	return s, nil
}

// Resume reports what the startup journal scan found.
func (s *Server) Resume() ResumeInfo { return s.resume }

// KernelRef returns the kernel pool's warmup reference digest (0 when no
// kernel is configured).
func (s *Server) KernelRef() uint64 {
	if s.kernels == nil {
		return 0
	}
	return s.kernels.ref
}

// Mount registers the service's routes on the telemetry server's mux, so
// /run and /stats share a port with /metrics, /healthz, and /readyz.
func (s *Server) Mount(ts *telemetry.Server) {
	ts.Handle("/run", http.HandlerFunc(s.handleRun))
	ts.Handle("/stats", http.HandlerFunc(s.handleStats))
}

// Handler returns a standalone mux with the service routes (test use).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// Drain performs the graceful shutdown sequence: flip unready (load
// balancers stop sending), stop admitting (new arrivals and queued waiters
// get 503), wait for in-flight epochs to complete and verify, then seal the
// WAL. ctx bounds the wait; on expiry the WAL is still sealed (its records
// are each already fsynced) and the error reports the abandonment.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOne.Do(func() {
		s.health.SetDraining()
		s.ladder.noteDrain()
		close(s.drainCh)
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain abandoned with %d in flight: %w", s.health.InFlight(), ctx.Err())
	}
	if serr := s.journal.seal(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// Stats snapshots the live counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.requests.Load(),
		Verify:       s.verifyN.Load(),
		Kernel:       s.kernelN.Load(),
		Shed:         s.shed.Load(),
		Rejected:     s.rejected.Load(),
		Errors:       s.errCount.Load(),
		Injected:     s.injected.Load(),
		Detected:     s.detected.Load(),
		Recovered:    s.recoveredN.Load(),
		Tainted:      s.taintedN.Load(),
		Duplicates:   s.duplicates.Load(),
		JournalFault: s.journalFaults.Load(),
		InFlight:     s.health.InFlight(),
		WALRecords:   s.journal.records(),
		WALCompacted: s.journal.compacted(),
		WALSegments:  s.journal.segments(),
		WALDiskBytes: s.journal.diskBytes(),
		State:        s.ladder.current(),
		DegradedN:    s.ladder.degradedEntered(),
		Draining:     s.Draining(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// count increments the per-result request counter when metrics are armed.
func (s *Server) count(result string) {
	if s.requestCount != nil {
		s.requestCount(result).Inc()
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Kind == "" {
		req.Kind = KindVerify
	}
	if req.Kind != KindVerify && req.Kind != KindKernel {
		http.Error(w, "unknown kind "+req.Kind, http.StatusBadRequest)
		return
	}
	if req.Kind == KindKernel && s.kernels == nil {
		http.Error(w, "no kernel configured", http.StatusBadRequest)
		return
	}
	// Malformed-by-size requests are refused before admission: they must
	// never consume a slot, and 400 tells the client not to retry.
	if req.Words > 4*s.cfg.Words || req.Epochs > 4*s.cfg.Epochs || req.Words < 0 || req.Epochs < 0 {
		s.errCount.Add(1)
		s.count("invalid")
		http.Error(w, fmt.Sprintf("request %d exceeds size caps (words <= %d, epochs <= %d)",
			req.ID, 4*s.cfg.Words, 4*s.cfg.Epochs), http.StatusBadRequest)
		return
	}
	// A request ID the journal already holds is refused with 409: replaying
	// an ID would make the journal ambiguous. (The journal re-checks under
	// its lock; this early check just avoids burning a slot.)
	if s.journal.knownID(req.ID) {
		s.duplicates.Add(1)
		s.count("duplicate")
		http.Error(w, fmt.Sprintf("duplicate request ID %d", req.ID), http.StatusConflict)
		return
	}

	// Admission, ordered by the degradation ladder. Draining refuses
	// outright (503: retry elsewhere); degraded refuses expensive kernel
	// jobs while still serving verify jobs (503 with Retry-After); a full
	// queue sheds (429 with Retry-After: back off). Queued waiters are
	// released with 503 the moment a drain starts — their work has not
	// begun, so refusing them keeps the drain window short and loses
	// nothing.
	if s.Draining() {
		s.rejected.Add(1)
		s.count("rejected")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if req.Kind == KindKernel && s.ladder.rejectKernel() {
		s.rejected.Add(1)
		s.count("degraded")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "degraded: kernel jobs rejected until load subsides", http.StatusServiceUnavailable)
		return
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.shed.Add(1)
		s.count("shed")
		s.ladder.noteShed()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
		return
	}
	select {
	case s.slots <- struct{}{}:
		s.queued.Add(-1)
		s.ladder.noteAdmit()
	case <-s.drainCh:
		s.queued.Add(-1)
		s.rejected.Add(1)
		s.count("rejected")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	case <-r.Context().Done():
		s.queued.Add(-1)
		s.errCount.Add(1)
		s.count("canceled")
		http.Error(w, "client gone", 499)
		return
	}

	// Admitted: from here the request runs to completion even if a drain
	// starts — in-flight epochs finish and verify.
	s.wg.Add(1)
	s.health.Add(1)
	defer func() {
		<-s.slots
		s.health.Add(-1)
		s.wg.Done()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout)
	defer cancel()
	start := time.Now()
	resp, err := s.execute(ctx, &req)
	elapsed := time.Since(start)
	if s.latency != nil {
		s.latency.Observe(elapsed.Seconds())
	}
	if err != nil {
		s.errCount.Add(1)
		s.count("error")
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	resp.Elapsed = elapsed.Seconds()
	s.requests.Add(1)
	s.count("ok")
	if jerr := s.journal.append(JournalRecord{
		ID: resp.ID, Kind: resp.Kind,
		Injected: resp.Injected, Detected: resp.Detected,
		Recovered: resp.Recovered, Tainted: resp.Tainted,
		Words: req.Words, Epochs: req.Epochs, Seed: s.cfg.Seed,
		Digest: resp.Digest, RefDigest: resp.RefDigest,
	}); jerr != nil {
		if errors.Is(jerr, errDuplicateID) {
			// Lost the race with a concurrent duplicate that appended first.
			s.duplicates.Add(1)
			s.count("duplicate")
			http.Error(w, jerr.Error(), http.StatusConflict)
			return
		}
		// The request executed but could not be made durable; the append was
		// rolled back, so the journal stays consistent and the client must
		// treat the request as failed. Injected faults are declared in the
		// body (wal: injected ...) so an auditing client can tell the chaos
		// schedule's work from real disk trouble.
		s.errCount.Add(1)
		s.journalFaults.Add(1)
		if s.tel.Metrics != nil {
			s.tel.Metrics.Counter("defuse_journal_append_faults_total").Inc()
		}
		telemetry.Emit(s.tel.Trace, telemetry.EvJournalFault, map[string]any{
			"id": resp.ID, "injected": errors.Is(jerr, wal.ErrInjected), "error": jerr.Error(),
		})
		http.Error(w, "journal: "+jerr.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// execute runs one admitted request on pooled state.
func (s *Server) execute(ctx context.Context, req *Request) (*Response, error) {
	switch req.Kind {
	case KindKernel:
		s.kernelN.Add(1)
		kr, err := s.kernels.get(ctx)
		if err != nil {
			return nil, err
		}
		defer s.kernels.put(kr)
		digest, out, err := kr.run(ctx, s.cfg.Policy)
		if err != nil {
			return nil, err
		}
		resp := &Response{
			ID: req.ID, Kind: KindKernel,
			Detected: out.Detected, Recovered: out.Recovered, Tainted: out.Tainted,
			Retries: out.Retries, Restarts: out.Restarts,
			Digest: digest, RefDigest: s.kernels.ref,
		}
		s.noteOutcome(resp)
		return resp, nil
	default:
		s.verifyN.Add(1)
		job := verifyJob{id: req.ID, words: req.Words, epochs: req.Epochs, seed: s.cfg.Seed}
		if job.words <= 0 {
			job.words = s.cfg.Words
		}
		if job.epochs <= 0 {
			job.epochs = s.cfg.Epochs
		}
		if job.words > 4*s.cfg.Words || job.epochs > 4*s.cfg.Epochs {
			return nil, fmt.Errorf("server: request %d exceeds size caps", req.ID)
		}
		req.Words, req.Epochs = job.words, job.epochs
		var plan *faults.LivePlan
		if s.sampler.Sample(req.ID) {
			p := s.sampler.Plan(req.ID, job.words, job.epochs)
			plan = &p
			s.injected.Add(1)
		}
		st, err := s.trackers.get(ctx)
		if err != nil {
			return nil, err
		}
		defer s.trackers.put(st)
		res, err := runVerify(ctx, st, job, plan, s.cfg.Policy, s.tel, telemetry.SpanContext{})
		if err != nil {
			return nil, err
		}
		resp := &Response{
			ID: req.ID, Kind: KindVerify,
			Injected: plan != nil,
			Detected: res.outcome.Detected, Recovered: res.outcome.Recovered,
			Tainted: res.outcome.Tainted,
			Retries: res.outcome.Retries, Restarts: res.outcome.Restarts,
			Digest: res.digest, RefDigest: res.refDigest,
		}
		s.noteOutcome(resp)
		return resp, nil
	}
}

// noteOutcome tallies a completed request's detection/recovery flags.
func (s *Server) noteOutcome(resp *Response) {
	if resp.Detected {
		s.detected.Add(1)
	}
	if resp.Recovered {
		s.recoveredN.Add(1)
	}
	if resp.Tainted {
		s.taintedN.Add(1)
	}
}
