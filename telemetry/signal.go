package telemetry

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// FlushOnSignal installs a SIGINT/SIGTERM handler that runs finish — the
// flush/close function returned by Setup, or Obs.Finish — before the process
// dies, so a buffered JSON-lines trace from an interrupted run is never
// silently truncated and the flight-recorder ring still becomes a postmortem
// artifact. skip is the number of signals to let pass (a CLI that cancels a
// context gracefully on the first signal and flushes on its normal exit path
// passes 1; one with no handling of its own passes 0); the signal after that
// flushes and exits with the conventional 128+signo status. Skipped signals
// are not silent either: each runs the optional onSkip functions (typically
// Obs.Flush), which drain the event sink and dump the flight recorder
// non-destructively — so even if the graceful path then wedges and the
// process is SIGKILLed, the artifacts are already on disk. The returned stop
// function uninstalls the handler; call it once the normal exit path has
// taken responsibility for flushing.
func FlushOnSignal(skip int, finish func() error, onSkip ...func()) (stop func()) {
	ch := make(chan os.Signal, skip+2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		seen := 0
		for {
			select {
			case sig := <-ch:
				seen++
				if seen <= skip {
					for _, f := range onSkip {
						f()
					}
					continue
				}
				_ = finish()
				code := 128 + 15
				if sig == os.Interrupt {
					code = 128 + 2
				}
				os.Exit(code)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
		})
	}
}

// GracefulSignals is the uniform two-stage signal discipline shared by every
// CLI and by the resident service. The first SIGINT/SIGTERM cancels the
// returned context (the graceful path: a batch CLI aborts its run, a service
// starts draining) and non-destructively flushes the telemetry artifacts plus
// any onFirst hooks; a second signal gives up on grace, runs obs.Finish (safe
// to race with the normal exit path — Finish is idempotent) and exits with
// the conventional 128+signo status. The returned stop uninstalls both
// handlers; call it once the normal exit path owns flushing.
func GracefulSignals(obs *Obs, onFirst ...func()) (ctx context.Context, stop func()) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	hooks := append([]func(){func() { _ = obs.Flush() }}, onFirst...)
	unflush := FlushOnSignal(1, obs.Finish, hooks...)
	return ctx, func() {
		cancel()
		unflush()
	}
}
