package faults

import (
	"testing"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// The acceptance contract for cmd/faultcov -trace: exactly one fault.injected
// event per configured trial, each carrying the flipped word/bit coordinates,
// with every trial resolved as either detection or (escaped) verify.ok.

func TestCoverageTraceEventCounts(t *testing.T) {
	cases := []struct {
		name   string
		flips  int
		dual   bool
		trials int
	}{
		{"2 flips single", 2, false, 50},
		{"2 flips dual", 2, true, 50},
		{"4 flips single", 4, false, 25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := &telemetry.Collector{}
			reg := telemetry.NewRegistry()
			res, err := RunCoverage(CoverageConfig{
				Kind:     checksum.ModAdd,
				Words:    100,
				BitFlips: tc.flips,
				Pattern:  Random,
				Dual:     tc.dual,
				Trials:   tc.trials,
				Seed:     42,
				Trace:    sink,
				Metrics:  reg,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := sink.Count(telemetry.EvFaultInjected); got != tc.trials {
				t.Fatalf("fault.injected events = %d, want %d (one per trial)", got, tc.trials)
			}
			det := sink.Count(telemetry.EvDetection)
			esc := sink.Count(telemetry.EvVerifyOK)
			if det+esc != tc.trials {
				t.Errorf("detection(%d) + escaped(%d) != trials(%d)", det, esc, tc.trials)
			}
			if esc != res.Undetected {
				t.Errorf("escaped events = %d, want Undetected = %d", esc, res.Undetected)
			}
			for _, ev := range sink.Named(telemetry.EvFaultInjected) {
				coords, ok := ev.Fields["flips"].([]map[string]any)
				if !ok || len(coords) != tc.flips {
					t.Fatalf("fault.injected flips = %v, want %d coordinate pairs", ev.Fields["flips"], tc.flips)
				}
				for _, c := range coords {
					w, wok := c["word"].(int)
					b, bok := c["bit"].(int)
					if !wok || !bok || w < 0 || w >= 100 || b < 0 || b > 63 {
						t.Fatalf("flip coordinate %v out of range", c)
					}
				}
			}

			var trialsCtr, undetCtr uint64
			for _, ms := range reg.Snapshot().Metrics {
				switch ms.Name {
				case "defuse_faultcov_trials_total":
					trialsCtr = uint64(ms.Value)
				case "defuse_faultcov_undetected_total":
					undetCtr = uint64(ms.Value)
				}
			}
			if trialsCtr != uint64(tc.trials) {
				t.Errorf("trials counter = %d, want %d", trialsCtr, tc.trials)
			}
			if undetCtr != uint64(res.Undetected) {
				t.Errorf("undetected counter = %d, want %d", undetCtr, res.Undetected)
			}
		})
	}
}
