package rt

import (
	"errors"
	"testing"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// Observer coordinate tests: a single-bit flip between def and use must be
// visible to the observer as exactly that bit differing between the last
// observed def and use patterns, and Verify must report the mismatch.

func TestObserverCoordinatesFloat64(t *testing.T) {
	cases := []struct {
		name string
		bit  uint
	}{
		{"lsb", 0},
		{"mantissa bit 23", 23},
		{"mantissa high bit 51", 51},
		{"exponent bit 55", 55},
		{"sign bit", 63},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := &CountingObserver{}
			tr := NewTracker().SetObserver(obs)
			v := Def(tr, 3.25, 1)
			corrupted := CorruptBits(v, tc.bit)
			_ = UseKnown(tr, corrupted)
			if err := tr.Verify(); err == nil {
				t.Fatal("corrupted use not detected")
			}
			if got := obs.LastDefBits.Load() ^ obs.LastUseBits.Load(); got != 1<<tc.bit {
				t.Errorf("def^use bits = %#x, want %#x", got, uint64(1)<<tc.bit)
			}
			if obs.Defs.Load() != 1 || obs.Uses.Load() != 1 {
				t.Errorf("defs=%d uses=%d, want 1/1", obs.Defs.Load(), obs.Uses.Load())
			}
			if obs.Verifies.Load() != 1 || obs.Mismatches.Load() != 1 {
				t.Errorf("verifies=%d mismatches=%d, want 1/1",
					obs.Verifies.Load(), obs.Mismatches.Load())
			}
		})
	}
}

func TestObserverCoordinatesInt64(t *testing.T) {
	cases := []struct {
		name string
		bit  uint
	}{
		{"lsb", 0},
		{"bit 17", 17},
		{"bit 31", 31},
		{"bit 47", 47},
		{"msb", 63},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := &CountingObserver{}
			tr := NewTracker().SetObserver(obs)
			v := Def(tr, int64(987654321), 1)
			corrupted := v ^ int64(1)<<tc.bit
			_ = UseKnown(tr, corrupted)
			if err := tr.Verify(); err == nil {
				t.Fatal("corrupted use not detected")
			}
			if got := obs.LastDefBits.Load() ^ obs.LastUseBits.Load(); got != 1<<tc.bit {
				t.Errorf("def^use bits = %#x, want %#x", got, uint64(1)<<tc.bit)
			}
			if obs.Mismatches.Load() != 1 {
				t.Errorf("mismatches = %d, want 1", obs.Mismatches.Load())
			}
		})
	}
}

func TestObserverCleanRun(t *testing.T) {
	obs := &CountingObserver{}
	tr := NewTracker().SetObserver(obs)
	v := Def(tr, 2.5, 2)
	_ = UseKnown(tr, v)
	_ = UseKnown(tr, v)
	if err := tr.Verify(); err != nil {
		t.Fatalf("clean run detected: %v", err)
	}
	if obs.Defs.Load() != 1 || obs.Uses.Load() != 2 {
		t.Errorf("defs=%d uses=%d, want 1/2", obs.Defs.Load(), obs.Uses.Load())
	}
	if obs.Verifies.Load() != 1 || obs.Mismatches.Load() != 0 {
		t.Errorf("verifies=%d mismatches=%d, want 1/0", obs.Verifies.Load(), obs.Mismatches.Load())
	}
}

func TestObserverDynPath(t *testing.T) {
	obs := &CountingObserver{}
	tr := NewTracker().SetObserver(obs)
	var c Counter
	v := DefDyn(tr, &c, 0.0, 4.5)
	v = Use(tr, &c, v)
	Final(tr, &c, v)
	if err := tr.Verify(); err != nil {
		t.Fatalf("clean dynamic run detected: %v", err)
	}
	if obs.Defs.Load() != 1 || obs.Uses.Load() != 1 {
		t.Errorf("defs=%d uses=%d, want 1/1", obs.Defs.Load(), obs.Uses.Load())
	}
}

func TestMustVerifyFiresObserver(t *testing.T) {
	obs := &CountingObserver{}
	tr := NewTracker().SetObserver(obs)
	v := Def(tr, 1.5, 1)
	_ = UseKnown(tr, CorruptBits(v, 7))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustVerify did not panic on mismatch")
			}
		}()
		tr.MustVerify()
	}()
	if obs.Mismatches.Load() != 1 {
		t.Errorf("mismatches = %d, want 1", obs.Mismatches.Load())
	}
}

func TestTelemetryObserver(t *testing.T) {
	sink := &telemetry.Collector{}
	reg := telemetry.NewRegistry()
	tr := NewTracker().SetObserver(NewTelemetryObserver(sink, reg))

	v := Def(tr, 9.75, 1)
	_ = UseKnown(tr, v)
	if err := tr.Verify(); err != nil {
		t.Fatal(err)
	}
	if sink.Count(telemetry.EvVerifyOK) != 1 {
		t.Errorf("verify.ok events = %d, want 1", sink.Count(telemetry.EvVerifyOK))
	}

	tr.Reset()
	v = Def(tr, 9.75, 1)
	_ = UseKnown(tr, CorruptBits(v, 11))
	err := tr.Verify()
	if err == nil {
		t.Fatal("corrupted use not detected")
	}
	var mm *checksum.MismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("error %v is not a MismatchError", err)
	}
	bad := sink.Named(telemetry.EvVerifyMismatch)
	if len(bad) != 1 {
		t.Fatalf("verify.mismatch events = %d, want 1", len(bad))
	}
	if bad[0].Fields["which"] != mm.Which {
		t.Errorf("mismatch which = %v, want %v", bad[0].Fields["which"], mm.Which)
	}
	if sink.Count(telemetry.EvDetection) != 1 {
		t.Errorf("detection events = %d, want 1", sink.Count(telemetry.EvDetection))
	}

	var okCount, badCount uint64
	for _, ms := range reg.Snapshot().Metrics {
		if ms.Name == "defuse_rt_verifications_total" {
			switch ms.Labels["result"] {
			case "ok":
				okCount = uint64(ms.Value)
			case "mismatch":
				badCount = uint64(ms.Value)
			}
		}
	}
	if okCount != 1 || badCount != 1 {
		t.Errorf("rt verification counters ok=%d mismatch=%d, want 1/1", okCount, badCount)
	}
}

// --- benchmark guard: nil observer must stay within noise of bare tracking ---

func trackerLoop(tr *Tracker, n int) {
	v := 1.5
	for i := 0; i < n; i++ {
		v = Def(tr, v, 1)
		_ = UseKnown(tr, v)
	}
}

// defNoObs/useNoObs are Def/UseKnown with the observer branch deleted — the
// baseline that isolates exactly the cost of the nil check. They must stay
// structurally identical to the real functions (same generic shape, same
// return) or the comparison measures compiler artifacts instead.
func defNoObs[T Word](t *Tracker, v T, n int64) T {
	t.pair.AddDef(Bits(v), n)
	return v
}

func useNoObs[T Word](t *Tracker, v T) T {
	t.pair.AddUse(Bits(v))
	return v
}

func bareLoop(tr *Tracker, n int) {
	v := 1.5
	for i := 0; i < n; i++ {
		v = defNoObs(tr, v, 1)
		_ = useNoObs(tr, v)
	}
}

func BenchmarkTrackerNilObserver(b *testing.B) {
	tr := NewTracker()
	b.ReportAllocs()
	trackerLoop(tr, b.N)
}

func BenchmarkTrackerCountingObserver(b *testing.B) {
	tr := NewTracker().SetObserver(&CountingObserver{})
	b.ReportAllocs()
	trackerLoop(tr, b.N)
}

// TestNilObserverOverheadWithinNoise compares the nil-observer tracker path
// against the identical loop with the observer branch compiled out. The
// design budget is <2% (a single untaken branch per op); the assertion
// threshold is deliberately lenient (1.5x) so CI timer jitter cannot fail
// the build, with the measured ratio logged for inspection. Run the
// benchmarks above for precise numbers.
func TestNilObserverOverheadWithinNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	measure := func(f func(n int)) float64 {
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) { f(b.N) })
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	tr := NewTracker()
	withNil := measure(func(n int) { trackerLoop(tr, n) })
	bare := measure(func(n int) { bareLoop(tr, n) })
	ratio := withNil / bare
	t.Logf("nil-observer %.2f ns/op, no-hook baseline %.2f ns/op, ratio %.3f", withNil, bare, ratio)
	if ratio > 1.5 {
		t.Errorf("nil-observer overhead ratio %.3f exceeds 1.5x guard", ratio)
	}
}

// TestObserverZeroAllocs pins the allocation-free claim for the nil-observer
// hot path.
func TestObserverZeroAllocs(t *testing.T) {
	tr := NewTracker()
	allocs := testing.AllocsPerRun(100, func() {
		v := Def(tr, 1.25, 1)
		_ = UseKnown(tr, v)
	})
	if allocs != 0 {
		t.Errorf("nil-observer tracker ops allocate %.1f per run, want 0", allocs)
	}
}
