// Command overhead reproduces Figures 10 and 11 of the paper: the normalized
// runtimes of the Resilient (Algorithm 3) and Resilient-Optimized (index-set
// splitting + inspector hoisting) variants of the Table 2 benchmarks, and
// the estimated runtimes under a hardware checksum functional unit.
//
// Usage:
//
//	overhead [-backend interp|native] [-fig 10|11|all] [-scale 0.01] \
//	         [-bench name] [-list] \
//	         [-parallel N] [-json] [-json-out BENCH_overhead.json] \
//	         [-wal dir] [-wal-epochs 8] \
//	         [-trace events.jsonl] [-metrics out] \
//	         [-serve addr] [-flight dump.json] [-chrome trace.json] [-linger]
//
// -backend native switches from the instruction-counting interpreter to the
// committed compiled kernels (internal/codegen/gennative): real wall-clock
// overheads of the defuse compiler's output under the Go compiler, merged
// into the -json report as the native block. -parallel requires N within the
// host's CPU count — oversubscribed workers would report wall parity that
// measures the scheduler, not the executor.
//
// -wal switches to the durability measurement: each kernel runs once under
// plain epoch supervision and once with crash-consistent WAL checkpoints
// sealed (encoded, CRC-framed, fsynced) at every verified epoch boundary,
// reporting the runtime ratio and the checkpoint log size. Outputs of the
// two runs are verified equal.
//
// Scale multiplies the paper's problem sizes; the kernels execute on the
// package's instruction-counting interpreter, so the op-count columns are
// deterministic and machine-independent. -json additionally writes the
// machine-readable overhead report (schema defuse/overhead/v4) for
// regression tracking across commits, including histogram-derived
// p50/p99/p999 quantiles for epoch-verification cost and detection latency
// (measured by a small supervised fault-injection probe). -parallel N runs
// the parallel-safe kernels through the sharded executor at worker counts
// 1,2,4,...,N and appends the scaling curve (wall-clock and deterministic
// critical-path speedups) to the report.
//
// -serve starts the live telemetry endpoint (/metrics, /events, /flight,
// /trace, /debug/pprof); -linger keeps it up after the measurements finish
// until SIGINT/SIGTERM. -flight arms the crash flight recorder (the span and
// event ring dumps there on fault detection or exit) and -chrome writes the
// recorded spans as Chrome trace-event JSON loadable in Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"defuse/internal/bench"
	"defuse/internal/checksum"
	"defuse/internal/faults"
	"defuse/telemetry"
)

func main() {
	backend := flag.String("backend", "interp", "execution backend: interp (cost-model interpreter) or native (compiled gennative kernels)")
	fig := flag.String("fig", "all", "which figure to regenerate: 10, 11, or all")
	scale := flag.Float64("scale", 0.004, "problem-size scale relative to the paper's sizes")
	one := flag.String("bench", "", "run a single benchmark by Table 2 name")
	list := flag.Bool("list", false, "print Table 2 (benchmarks and problem sizes) and exit")
	parallel := flag.Int("parallel", 0, "measure the sharded executor's scaling curve up to N workers (0 disables)")
	jsonOut := flag.Bool("json", false, "also write the machine-readable overhead report")
	jsonPath := flag.String("json-out", "BENCH_overhead.json", "path of the -json report")
	wal := flag.String("wal", "", "measure durable-checkpoint overhead, writing per-benchmark WALs into this directory")
	walEpochs := flag.Int("wal-epochs", 8, "with -wal: epochs (checkpoint seals) per benchmark run")
	linger := flag.Bool("linger", false, "with -serve: keep serving after the run until SIGINT/SIGTERM")
	obsFlags := telemetry.ObsFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-46s %s\n", "Benchmark", "Description", "Paper problem size")
		for _, b := range bench.Suite() {
			fmt.Printf("%-10s %-46s %s\n", b.Name, b.Description, b.PaperSize)
		}
		return
	}

	if err := validateParallel(*parallel, runtime.NumCPU()); err != nil {
		fatal(err)
	}
	if *backend == "native" {
		// The native path times compiled code: the interpreter-only modes
		// (sharded executor, WAL measurement) do not apply to it.
		if *parallel > 0 || *wal != "" {
			fatal(fmt.Errorf("-backend native does not support -parallel or -wal"))
		}
		if err := runNative(*scale, *one, *jsonOut, *jsonPath); err != nil {
			fatal(err)
		}
		return
	}
	if *backend != "interp" {
		fatal(fmt.Errorf("unknown -backend %q (want interp or native)", *backend))
	}

	obs, err := telemetry.SetupObs(obsFlags())
	if err != nil {
		fatal(err)
	}
	if obs.Server != nil {
		fmt.Fprintf(os.Stderr, "overhead: serving telemetry on http://%s\n", obs.Server.Addr())
	}
	// Uniform two-stage signal discipline: the first SIGINT/SIGTERM flushes
	// every armed artifact (JSONL trace, flight ring, metrics, Chrome trace)
	// and cancels the linger; a second forces immediate exit with everything
	// flushed. A partial run still leaves complete, parseable files behind.
	ctx, stop := telemetry.GracefulSignals(obs)
	err = run(*fig, *scale, *one, *parallel, *jsonOut, *jsonPath, *wal, *walEpochs,
		bench.Telemetry{Trace: obs.Sink, Metrics: obs.Metrics, Tracer: obs.Tracer})
	if err == nil && *linger && obs.Server != nil {
		fmt.Fprintln(os.Stderr, "overhead: lingering; interrupt to exit")
		<-ctx.Done()
	}
	stop()
	if ferr := obs.Finish(); err == nil {
		err = ferr
	}
	if err != nil {
		fatal(err)
	}
}

// validateParallel rejects worker counts beyond the host's CPUs. The sharded
// executor's wall-clock column is the point of -parallel; oversubscribed
// workers time-slice on the same cores and silently report wall parity, a
// measurement that looks valid and isn't — so asking for it is an error, not
// a degraded run.
func validateParallel(n, cpus int) error {
	if n > cpus {
		return fmt.Errorf("-parallel %d exceeds the %d available CPUs; "+
			"oversubscribed workers produce meaningless wall-clock parity rows", n, cpus)
	}
	return nil
}

// workerLadder returns the doubling ladder 1, 2, 4, ... capped at n, always
// ending at n itself so the requested count is measured.
func workerLadder(n int) []int {
	var ladder []int
	for w := 1; w < n; w *= 2 {
		ladder = append(ladder, w)
	}
	return append(ladder, n)
}

func run(fig string, scale float64, one string, parallel int, jsonOut bool, jsonPath, wal string, walEpochs int, tel bench.Telemetry) error {
	if wal != "" {
		return runDurable(scale, one, wal, walEpochs, jsonOut, jsonPath, tel)
	}
	var rows10 []bench.Figure10Row
	var rows11 []bench.Figure11Row
	if one != "" {
		b, err := bench.ByName(one)
		if err != nil {
			return err
		}
		r10, r11, err := bench.RunBenchmarkWith(b, scale, tel)
		if err != nil {
			return err
		}
		rows10, rows11 = []bench.Figure10Row{r10}, []bench.Figure11Row{r11}
	} else {
		var err error
		rows10, rows11, err = bench.Figure10With(scale, tel)
		if err != nil {
			return err
		}
	}

	if fig == "10" || fig == "all" {
		fmt.Println("Figure 10: normalized running time of the resilient codes (software-only)")
		fmt.Println("(paper geomeans on its icc/Xeon testbed: resilient 1.788, optimized 1.402)")
		fmt.Println()
		fmt.Print(bench.FormatFigure10(rows10))
		fmt.Println()
	}
	if fig == "11" || fig == "all" {
		fmt.Println("Figure 11: estimated normalized runtime with a hardware checksum unit")
		fmt.Println("(paper: largest overheads 4-10%, ~3% geomean excluding strsm)")
		fmt.Println()
		fmt.Print(bench.FormatFigure11(rows11))
	}

	var scaling []bench.ScalingRow
	if parallel > 0 {
		ladder := workerLadder(parallel)
		for _, b := range bench.Suite() {
			if !b.ParallelSafe || (one != "" && b.Name != one) {
				continue
			}
			rows, err := bench.RunScaling(b, scale, ladder, tel)
			if err != nil {
				return err
			}
			scaling = append(scaling, rows...)
		}
		if len(scaling) == 0 {
			return fmt.Errorf("overhead: -parallel: no parallel-safe benchmark selected")
		}
		fmt.Println("Scaling: sharded parallel executor (Resilient variant, merge-verify)")
		fmt.Println("(ops speedup is the deterministic critical-path ratio; wall clock depends on host cores)")
		fmt.Println()
		fmt.Print(bench.FormatScaling(scaling))
		fmt.Println()
	}

	if jsonOut {
		rep, err := bench.BuildOverheadReport(rows10, rows11, scale)
		if err != nil {
			return err
		}
		rep.Scaling = scaling
		snap, err := runQuantileProbe(tel)
		if err != nil {
			return err
		}
		rep.AttachQuantiles(snap)
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "overhead: wrote %s\n", jsonPath)
	}
	return nil
}

// runQuantileProbe fills the epoch-verify and detection-latency histograms
// behind the v2 report's quantiles block by running a small supervised
// fault-injection cell: every trial exercises the epoch-boundary Verify path
// (timing defuse_epoch_verify_seconds) and every detection lands in
// defuse_detection_latency_epochs. The trial count is deliberately small —
// the probe characterizes latency distributions, not coverage rates.
func runQuantileProbe(tel bench.Telemetry) (telemetry.Snapshot, error) {
	reg := tel.Metrics
	if reg == nil {
		// No -metrics/-serve: the quantiles still need a registry to
		// accumulate in; it lives only for the probe.
		reg = telemetry.NewRegistry()
	}
	res, err := faults.RunCoverage(faults.CoverageConfig{
		Kind:     checksum.ModAdd,
		Words:    32,
		BitFlips: 1,
		Pattern:  faults.Random,
		Trials:   256,
		Seed:     1,
		Epochs:   6,
		Recover:  true,
		Trace:    tel.Trace,
		Metrics:  reg,
		Tracer:   tel.Tracer,
	})
	if err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("overhead: quantile probe: %w", err)
	}
	if res.Detected == 0 {
		return telemetry.Snapshot{}, fmt.Errorf("overhead: quantile probe detected 0/%d injected faults", res.Trials)
	}
	return reg.Snapshot(), nil
}

// runDurable measures the durability tax: epoch-supervised baseline vs
// WAL-checkpointing runs of each kernel, with output equivalence enforced.
func runDurable(scale float64, one, walDir string, epochs int, jsonOut bool, jsonPath string, tel bench.Telemetry) error {
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return err
	}
	var rows []bench.DurableRow
	if one != "" {
		b, err := bench.ByName(one)
		if err != nil {
			return err
		}
		row, err := bench.RunDurable(b, scale, epochs, walDir, tel)
		if err != nil {
			return err
		}
		rows = []bench.DurableRow{row}
	} else {
		var err error
		rows, err = bench.RunDurableSuite(scale, epochs, walDir, tel)
		if err != nil {
			return err
		}
	}
	fmt.Println("Durability: epoch-supervised baseline vs crash-consistent WAL checkpoints")
	fmt.Println("(each seal = snapshot encode + CRC frame + fsync; outputs verified equal)")
	fmt.Println()
	fmt.Print(bench.FormatDurable(rows))
	if jsonOut {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "overhead: wrote %s\n", jsonPath)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overhead:", err)
	os.Exit(1)
}
