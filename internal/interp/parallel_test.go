package interp_test

import (
	"errors"
	"math"
	"testing"

	"defuse/internal/bench"
	"defuse/internal/interp"
	"defuse/internal/lang"
)

// The parallel executor's correctness claim is byte-identical state: a
// PlanParallel run over a parallel-safe instrumented kernel must produce the
// same outputs, the same four checksum accumulators, the same (encoded)
// shadow copies, and the same verdict as the sequential Run. These tests pin
// that against dsyrk, the suite's "large affine kernel".

func newResilientMachine(t *testing.T, name string, scale float64) (*interp.Machine, *bench.Benchmark) {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := b.BuildVariant(bench.Resilient)
	if err != nil {
		t.Fatal(err)
	}
	params := b.Params(scale)
	m, err := interp.New(prog, params)
	if err != nil {
		t.Fatal(err)
	}
	b.InitDefault(m, params)
	return m, b
}

func snapshotOutputs(t *testing.T, m *interp.Machine, b *bench.Benchmark) map[string][]float64 {
	t.Helper()
	out := map[string][]float64{}
	for _, d := range b.Program().Decls {
		if d.Type == lang.TypeFloat && d.IsArray() {
			snap, err := m.SnapshotFloats(d.Name)
			if err != nil {
				t.Fatal(err)
			}
			out[d.Name] = snap
		}
	}
	return out
}

func TestParallelRunMatchesSequential(t *testing.T) {
	for _, name := range []string{"dsyrk", "strsm"} {
		t.Run(name, func(t *testing.T) {
			seq, b := newResilientMachine(t, name, 0.004)
			if err := seq.Run(); err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			for _, workers := range []int{1, 2, 3, 4} {
				par, _ := newResilientMachine(t, name, 0.004)
				plan, err := par.PlanParallel(workers)
				if err != nil {
					t.Fatal(err)
				}
				res, err := plan.Run()
				if err != nil {
					t.Fatalf("parallel run (%d workers): %v", workers, err)
				}
				if res.Workers != workers {
					t.Errorf("planned %d workers, ran %d", workers, res.Workers)
				}
				sp, pp := seq.Pair(), par.Pair()
				if sp.Def != pp.Def || sp.Use != pp.Use || sp.EDef != pp.EDef || sp.EUse != pp.EUse {
					t.Errorf("%d workers: accumulators diverged: seq (%#x,%#x,%#x,%#x) vs parallel (%#x,%#x,%#x,%#x)",
						workers, sp.Def, sp.Use, sp.EDef, sp.EUse, pp.Def, pp.Use, pp.EDef, pp.EUse)
				}
				if sp.Shadows() != pp.Shadows() {
					t.Errorf("%d workers: shadow copies diverged", workers)
				}
				seqOut := snapshotOutputs(t, seq, b)
				parOut := snapshotOutputs(t, par, b)
				for name, want := range seqOut {
					got := parOut[name]
					for k := range want {
						if got[k] != want[k] && !(math.IsNaN(got[k]) && math.IsNaN(want[k])) {
							t.Fatalf("%d workers: %s[%d] = %g, sequential %g", workers, name, k, got[k], want[k])
						}
					}
				}
				// The worker blocks carry the kernel's ops; the serial
				// remainder carries registration and the final assertion.
				var workerOps uint64
				for _, wc := range res.WorkerCounts {
					workerOps += wc.Total()
				}
				if workerOps == 0 {
					t.Errorf("%d workers: no ops attributed to worker blocks", workers)
				}
				if res.SerialCounts.Total() == 0 {
					t.Errorf("%d workers: no ops attributed to the serial prologue/epilogue", workers)
				}
			}
		})
	}
}

// TestParallelRunFaultVerdict seeds a divergent use fold — the footprint a
// transient fault leaves when a corrupted word is consumed — into both a
// sequential and a parallel machine. Both must detect: the epilogue's
// assert_checksums fires on the merged state exactly as on sequential state.
func TestParallelRunFaultVerdict(t *testing.T) {
	seq, _ := newResilientMachine(t, "dsyrk", 0.004)
	seq.Pair().AddUse(0xbad0bad0bad0bad0)
	seqErr := seq.Run()
	var seqDet *interp.DetectionError
	if !errors.As(seqErr, &seqDet) {
		t.Fatalf("sequential faulted run: got %v, want DetectionError", seqErr)
	}

	par, _ := newResilientMachine(t, "dsyrk", 0.004)
	par.Pair().AddUse(0xbad0bad0bad0bad0)
	plan, err := par.PlanParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	_, parErr := plan.Run()
	var parDet *interp.DetectionError
	if !errors.As(parErr, &parDet) {
		t.Fatalf("parallel faulted run: got %v, want DetectionError", parErr)
	}
}

func TestPlanParallelRejectsZeroWorkers(t *testing.T) {
	m, _ := newResilientMachine(t, "dsyrk", 0.004)
	if _, err := m.PlanParallel(0); err == nil {
		t.Fatal("PlanParallel(0) succeeded, want error")
	}
}

// TestPlanParallelClampsWorkers asks for more workers than the anchor loop
// has iterations; the plan must clamp rather than spawn empty blocks.
func TestPlanParallelClampsWorkers(t *testing.T) {
	m, _ := newResilientMachine(t, "dsyrk", 0.004)
	plan, err := m.PlanParallel(1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers >= 1024 {
		t.Errorf("ran %d workers; want clamped to the iteration count", res.Workers)
	}
}
