// Package server is the resident detection service behind cmd/defused: a
// long-running HTTP front end where every request executes under a
// per-request epoch discipline on pooled detector state, supervised by
// internal/recovery with per-request deadlines, bounded retry+backoff, and
// three-way fault classification. The package provides the tracker and
// machine pools, admission control with a bounded queue and load-shedding
// (429s instead of collapse), SIGTERM-style graceful drain, a WAL journal of
// completed requests with startup resume and re-verification, and the load
// generator that measures the service's latency and fault-recovery behavior
// under sustained concurrent traffic.
//
// Two request kinds map the paper's end-of-interval verification onto live
// traffic (see DESIGN.md):
//
//   - verify jobs run the rt def/use word-update workload: every tracked
//     word is used, advanced, and redefined each epoch, and finalized at
//     every epoch boundary, so the checksums are quiescent exactly where
//     verification happens. Within this discipline any single-bit data flip
//     inside an epoch is detected at that epoch's own boundary, which is
//     what lets the service inject faults into a sampled fraction of live
//     verify requests and assert 100% detection + recovery.
//   - kernel jobs execute an instrumented benchmark program on a pooled
//     interpreter machine; the program's own checksum placement (the
//     post-dominator of all defs and uses) verifies at the end of the run.
//     Kernel traffic is always clean — its role under load is to prove that
//     recovery activity on neighboring requests never disturbs it.
package server

import (
	"context"
	"fmt"

	"defuse/internal/bench"
	"defuse/internal/faults"
	"defuse/internal/interp"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/rt"
	"defuse/telemetry"
)

// Request kinds.
const (
	KindVerify = "verify"
	KindKernel = "kernel"
)

// update advances one word per epoch — the same bijective LCG step the fault
// campaigns use, so any corruption propagates to a wrong final state instead
// of coincidentally reconverging.
func update(v uint64) uint64 { return v*2862933555777941757 + 3037000493 }

// mix is the splitmix64 finalizer, used to derive per-request initial words
// and to chain result digests.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// initWord derives word i's deterministic initial value for a verify job.
func initWord(seed, id uint64, i int) uint64 {
	return mix(seed ^ mix(id) ^ mix(uint64(i)+1))
}

// digestWords chains a word slice through splitmix64 — order- and
// length-sensitive, like memsim's snapshot digest.
func digestWords(words []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15) + uint64(len(words))
	for _, w := range words {
		h = mix(h ^ w)
	}
	return h
}

// ReferenceDigest computes, without executing anything, the digest a clean
// verify job must produce: every word advanced epochs times from its derived
// initial value. Both the server (to detect silent corruption before
// journaling) and the load generator (to audit responses independently)
// compute it; a recovered request must land exactly here.
func ReferenceDigest(words, epochs int, seed, id uint64) uint64 {
	final := make([]uint64, words)
	for i := range final {
		v := initWord(seed, id, i)
		for e := 0; e < epochs; e++ {
			v = update(v)
		}
		final[i] = v
	}
	return digestWords(final)
}

// verifyJob is one verify request's resolved parameters.
type verifyJob struct {
	id     uint64
	words  int
	epochs int
	seed   uint64
}

// verifySnap checkpoints everything a verify epoch mutates. The injection
// plan lives outside the snapshot: a transient fault does not recur when the
// epoch re-executes, which is what makes rollback recovery converge.
type verifySnap struct {
	mem      memsim.Snapshot
	state    rt.EpochState
	counters []rt.Counter
}

// jobResult is the outcome of one executed request.
type jobResult struct {
	digest    uint64
	refDigest uint64
	outcome   recovery.Outcome
}

// runVerify executes one verify job on a pooled sharded tracker under the
// recovery supervisor. plan, when non-nil, arms a single transient bit flip
// at the planned (epoch, word, bit) — injected once, mid-epoch, exactly as a
// live memory fault would land. The tracker must arrive recycled.
func runVerify(ctx context.Context, st *rt.ShardedTracker, job verifyJob, plan *faults.LivePlan, pol recovery.Policy, tel bench.Telemetry, span telemetry.SpanContext) (jobResult, error) {
	words, epochs := job.words, job.epochs
	mem := memsim.New(words)
	sh := st.Shard()
	defer sh.Close()
	tr := sh.Tracker()
	counters := sh.Counters(words)
	for i := 0; i < words; i++ {
		v := initWord(job.seed, job.id, i)
		mem.Poke(i, v)
		rt.DefDyn(tr, &counters[i], uint64(0), v)
	}
	injected := false

	run := func(k int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for i := 0; i < words; i++ {
			loadIdx := i
			if plan != nil && !injected && k == plan.Epoch && i == plan.Word {
				injected = true
				if plan.Kind == faults.LiveAddrWrong {
					// A corrupted index register: this one load observes a
					// different valid word. The use fold sees the wrong value
					// (distinct with overwhelming probability — words derive
					// from splitmix64), so the boundary check flags it.
					loadIdx = plan.Partner
				} else {
					mem.FlipBit(plan.Word, plan.Bit)
				}
				telemetry.Emit(tel.Trace, telemetry.EvFaultInjected, map[string]any{
					"request": job.id, "epoch": k, "word": plan.Word, "bit": plan.Bit,
					"kind": plan.Kind.String(), "partner": plan.Partner, "mode": "live",
				})
			}
			v := rt.Use(tr, &counters[i], mem.Load(loadIdx))
			next := update(v)
			mem.Store(i, next)
			rt.DefDyn(tr, &counters[i], v, next)
		}
		return nil
	}
	verify := func(k int) error {
		// Finalize every live word so the boundary is checksum-quiescent,
		// scrub the detector's own state, verify the merged fold, then
		// re-register the survivors for the next epoch.
		for i := 0; i < words; i++ {
			rt.Final(tr, &counters[i], mem.Peek(i))
		}
		if err := st.ScrubDetector(); err != nil {
			return err
		}
		_, err := st.EndEpoch()
		if err == nil && k != epochs-1 {
			for i := 0; i < words; i++ {
				rt.DefDyn(tr, &counters[i], uint64(0), mem.Peek(i))
			}
		}
		return err
	}

	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs: epochs,
		Run:    run,
		Verify: verify,
		Checkpoint: func() any {
			return verifySnap{
				mem:      mem.Snapshot(),
				state:    st.BeginEpoch(),
				counters: append([]rt.Counter(nil), counters...),
			}
		},
		Restore: func(snap any) error {
			s := snap.(verifySnap)
			if rerr := mem.Restore(s.mem); rerr != nil {
				return rerr
			}
			if rerr := st.Rollback(s.state); rerr != nil {
				return rerr
			}
			copy(counters, s.counters)
			return nil
		},
		Policy:  pol,
		Trace:   tel.Trace,
		Metrics: tel.Metrics,
		Tracer:  tel.Tracer,
		Span:    span,
	})
	if err != nil {
		return jobResult{}, err
	}
	final := make([]uint64, words)
	for i := range final {
		final[i] = mem.Peek(i)
	}
	return jobResult{
		digest:    digestWords(final),
		refDigest: ReferenceDigest(words, epochs, job.seed, job.id),
		outcome:   out,
	}, nil
}

// kernelRunner is one pooled interpreter machine preloaded with an
// instrumented benchmark. The machine is built once and Reset between
// requests; Init re-seeds the arrays, so every request executes the same
// deterministic program and must reproduce the same digest.
type kernelRunner struct {
	bench  *bench.Benchmark
	params map[string]int64
	m      *interp.Machine
	plan   *interp.EpochPlan
}

// newKernelRunner parses, instruments (Resilient variant — the program's own
// assert verifies at its end), and allocates one machine.
func newKernelRunner(b *bench.Benchmark, scale float64, tel bench.Telemetry) (*kernelRunner, error) {
	prog, err := b.BuildVariantWith(bench.Resilient, tel)
	if err != nil {
		return nil, err
	}
	params := b.Params(scale)
	m, err := interp.New(prog, params,
		interp.WithTrace(tel.Trace), interp.WithMetrics(tel.Metrics), interp.WithTracer(tel.Tracer))
	if err != nil {
		return nil, err
	}
	b.InitDefault(m, params)
	// A single epoch spans the whole program: the checksum placement is the
	// instrumenter's post-dominator, so the def/use fold is balanced exactly
	// at the program's end — the paper's end-of-interval verification with
	// the interval being the request.
	plan, err := m.PlanEpochs(1)
	if err != nil {
		return nil, err
	}
	return &kernelRunner{bench: b, params: params, m: m, plan: plan}, nil
}

// reset returns the runner to a freshly initialized state for the next
// request.
func (kr *kernelRunner) reset() {
	kr.m.Reset()
	kr.plan.Reset()
	kr.bench.InitDefault(kr.m, kr.params)
}

// run executes the kernel under supervision with the request's deadline
// propagated into the interpreter's step loop, and digests the machine's
// final memory image.
func (kr *kernelRunner) run(ctx context.Context, pol recovery.Policy) (uint64, recovery.Outcome, error) {
	kr.m.SetContext(ctx)
	out, err := kr.plan.Supervise(ctx, pol)
	kr.m.SetContext(nil)
	if err != nil {
		return 0, out, err
	}
	return kr.digest(), out, nil
}

// digest chains the machine's entire memory image — every output array and
// scalar — so two runs agree iff they are byte-identical.
func (kr *kernelRunner) digest() uint64 {
	mem := kr.m.Mem()
	h := uint64(0x9e3779b97f4a7c15) + uint64(mem.Size())
	for i := 0; i < mem.Size(); i++ {
		h = mix(h ^ mem.Peek(i))
	}
	return h
}

// warmup runs the kernel once cleanly to establish its reference digest, and
// fails if the instrumented program does not verify.
func (kr *kernelRunner) warmup(ctx context.Context) (uint64, error) {
	digest, out, err := kr.run(ctx, recovery.Policy{})
	if err != nil {
		return 0, fmt.Errorf("server: kernel warmup %s: %w", kr.bench.Name, err)
	}
	if out.Detected || out.Tainted {
		return 0, fmt.Errorf("server: kernel warmup %s: clean run reported detected=%v tainted=%v",
			kr.bench.Name, out.Detected, out.Tainted)
	}
	kr.reset()
	return digest, nil
}
