package poly

import (
	"fmt"
	"strings"
)

// This file implements parametric cardinality: |{ dims : constraints }| as a
// piecewise polynomial in the parameters. It is the |Targets^param| step of
// Algorithm 1 (compile-time use counts).
//
// Strategy: substitute away dimensions pinned by unit equalities, then
// process dimensions innermost-first. A dimension with a single affine lower
// bound L and upper bound U contributes extent U-L+1; the domain splits into
// the piece where the extent is positive (count multiplied, or summed via
// Faulhaber when the running weight mentions the dimension) and the piece
// where it is empty (count 0). Multiple lower/upper bounds split the domain
// on which bound is binding. The result is a set of disjoint pieces whose
// domains constrain only parameters.

// Piece is one branch of a piecewise count: Count holds on the parameter
// domain described by Domain.
type Piece struct {
	Domain []Constraint // constraints over parameters only
	Count  Polynomial
}

// DomainContains reports whether the parameter assignment satisfies the
// piece's domain.
func (p Piece) DomainContains(env map[string]int64) bool {
	for _, c := range p.Domain {
		ok, complete := c.Holds(env)
		if !ok || !complete {
			return false
		}
	}
	return true
}

// String renders the piece, e.g. "[n - jp - 1] on { jp >= 0 and ... }".
func (p Piece) String() string {
	var cs []string
	for _, c := range p.Domain {
		cs = append(cs, c.String())
	}
	return fmt.Sprintf("[%s] on { %s }", p.Count, strings.Join(cs, " and "))
}

// Piecewise is a disjoint-piece parametric count.
type Piecewise struct {
	Pieces []Piece
}

// Eval returns the count at the given parameter assignment. Pieces are
// disjoint by construction; a point outside every domain has count 0 with
// ok=false.
func (pw Piecewise) Eval(env map[string]int64) (int64, bool, error) {
	for _, p := range pw.Pieces {
		if p.DomainContains(env) {
			v, err := p.Count.EvalInt(env)
			return v, true, err
		}
	}
	return 0, false, nil
}

// NonZeroPieces returns the pieces with a count not identically zero.
func (pw Piecewise) NonZeroPieces() []Piece {
	var out []Piece
	for _, p := range pw.Pieces {
		if !p.Count.IsZero() {
			out = append(out, p)
		}
	}
	return out
}

// IsSinglePolynomial reports whether all non-zero pieces share one
// polynomial, returning it if so (with zero pieces allowed alongside).
func (pw Piecewise) IsSinglePolynomial() (Polynomial, bool) {
	nz := pw.NonZeroPieces()
	if len(nz) == 0 {
		return PolyZero(), true
	}
	first := nz[0].Count
	for _, p := range nz[1:] {
		if !p.Count.Equal(first) {
			return Polynomial{}, false
		}
	}
	return first, true
}

// String renders all pieces separated by "; ".
func (pw Piecewise) String() string {
	parts := make([]string, len(pw.Pieces))
	for i, p := range pw.Pieces {
		parts[i] = p.String()
	}
	return strings.Join(parts, "; ")
}

// CountError reports why a set could not be counted at compile time; callers
// fall back to the paper's dynamic (inspector/counter) scheme.
type CountError struct{ Reason string }

func (e *CountError) Error() string { return "poly: cannot count: " + e.Reason }

const maxCountDepth = 64

// Card computes the parametric cardinality of the basic set.
func Card(b BasicSet) (Piecewise, error) {
	var pw Piecewise
	err := countRec(b.Cons, append([]string(nil), b.Dims...), PolyInt(1), &pw, maxCountDepth)
	if err != nil {
		return Piecewise{}, err
	}
	return pw, nil
}

// CardSum computes the cardinality of a union assuming its pieces are
// disjoint (true for the dependence target sets built by this repo, whose
// pieces come from disjoint case splits).
func CardSum(s Set) (Piecewise, error) {
	var all Piecewise
	for _, b := range s.Pieces {
		pw, err := Card(b)
		if err != nil {
			return Piecewise{}, err
		}
		all.Pieces = append(all.Pieces, pw.Pieces...)
	}
	return mergePieces(all), nil
}

// mergePieces sums counts of pieces with identical domains.
func mergePieces(pw Piecewise) Piecewise {
	var out Piecewise
	for _, p := range pw.Pieces {
		merged := false
		for i, q := range out.Pieces {
			if sameDomain(p.Domain, q.Domain) {
				out.Pieces[i].Count = q.Count.Add(p.Count)
				merged = true
				break
			}
		}
		if !merged {
			out.Pieces = append(out.Pieces, p)
		}
	}
	return out
}

func sameDomain(a, b []Constraint) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[string]int{}
	for _, c := range a {
		seen[c.key()]++
	}
	for _, c := range b {
		seen[c.key()]--
		if seen[c.key()] < 0 {
			return false
		}
	}
	return true
}

func countRec(cons []Constraint, dims []string, weight Polynomial, out *Piecewise, depth int) error {
	if depth <= 0 {
		return &CountError{Reason: "case-split recursion limit exceeded"}
	}
	sys := newSystem(cons)
	if sys.infeasible {
		return nil // empty domain contributes nothing
	}
	cons = sys.list()

	// Substitute dimensions pinned by unit-coefficient equalities.
	for {
		substituted := false
		for di, d := range dims {
			for _, c := range cons {
				if !c.Equality || !c.E.Uses(d) {
					continue
				}
				a := c.E.Coeff(d)
				if a != 1 && a != -1 {
					continue
				}
				rest := c.E.Subst(d, L(0)).Scale(-a)
				sys := newSystem(nil)
				for _, cc := range cons {
					sys.add(cc.Subst(d, rest))
				}
				if sys.infeasible {
					return nil
				}
				cons = sys.list()
				weight = weight.SubstLin(d, rest)
				dims = append(append([]string(nil), dims[:di]...), dims[di+1:]...)
				substituted = true
				break
			}
			if substituted {
				break
			}
		}
		if !substituted {
			break
		}
	}

	if len(dims) == 0 {
		// Remaining constraints involve parameters only: a finished piece.
		out.Pieces = append(out.Pieces, Piece{Domain: cons, Count: weight})
		return nil
	}

	x := dims[len(dims)-1]
	rest := dims[:len(dims)-1]

	// Classify constraints on x.
	var lowers, uppers []LinExpr // x >= L, x <= U
	var others []Constraint
	for _, c := range cons {
		a := c.E.Coeff(x)
		switch {
		case a == 0:
			others = append(others, c)
		case c.Equality:
			return &CountError{Reason: fmt.Sprintf("non-unit equality on %q: %s", x, c)}
		case a == 1:
			lowers = append(lowers, c.E.Subst(x, L(0)).Neg()) // x + r >= 0 → x >= -r
		case a == -1:
			uppers = append(uppers, c.E.Subst(x, L(0))) // -x + s >= 0 → x <= s
		default:
			return &CountError{Reason: fmt.Sprintf("non-unit coefficient on %q: %s", x, c)}
		}
	}
	if len(lowers) == 0 || len(uppers) == 0 {
		return &CountError{Reason: fmt.Sprintf("dimension %q is unbounded", x)}
	}

	// Multiple bounds: split on which is binding.
	if len(lowers) > 1 {
		l1, l2 := lowers[0], lowers[1]
		// Piece A: l1 >= l2, so l2 is redundant.
		consA := dropBound(cons, x, 1, l2)
		consA = append(consA, GeZero(l1.Sub(l2)))
		if err := countRec(consA, dims, weight, out, depth-1); err != nil {
			return err
		}
		// Piece B: l2 >= l1 + 1, so l1 is redundant.
		consB := dropBound(cons, x, 1, l1)
		consB = append(consB, GeZero(l2.Sub(l1).AddConst(-1)))
		return countRec(consB, dims, weight, out, depth-1)
	}
	if len(uppers) > 1 {
		u1, u2 := uppers[0], uppers[1]
		// Piece A: u1 <= u2, so u2 is redundant.
		consA := dropBound(cons, x, -1, u2)
		consA = append(consA, GeZero(u2.Sub(u1)))
		if err := countRec(consA, dims, weight, out, depth-1); err != nil {
			return err
		}
		// Piece B: u2 <= u1 - 1, so u1 is redundant.
		consB := dropBound(cons, x, -1, u1)
		consB = append(consB, GeZero(u1.Sub(u2).AddConst(-1)))
		return countRec(consB, dims, weight, out, depth-1)
	}

	lo, hi := lowers[0], uppers[0]
	extent := hi.Sub(lo).AddConst(1)

	// Positive piece: extent >= 1.
	var newWeight Polynomial
	if weight.Uses(x) {
		summed, err := SumOverVar(weight, x, lo, hi)
		if err != nil {
			return &CountError{Reason: err.Error()}
		}
		newWeight = summed
	} else {
		newWeight = weight.MulLin(extent)
	}
	consPos := append(append([]Constraint(nil), others...), GeZero(extent.AddConst(-1)))
	if err := countRec(consPos, append([]string(nil), rest...), newWeight, out, depth-1); err != nil {
		return err
	}

	// Empty piece: extent <= 0 → count 0 on that region.
	consZero := append(append([]Constraint(nil), others...), GeZero(extent.Neg()))
	return countRec(consZero, append([]string(nil), rest...), PolyZero(), out, depth-1)
}

// dropBound removes the single bound constraint on x (sign +1 for the lower
// bound x >= b, -1 for the upper bound x <= b) matching expression b.
func dropBound(cons []Constraint, x string, sign int64, b LinExpr) []Constraint {
	var out []Constraint
	dropped := false
	for _, c := range cons {
		a := c.E.Coeff(x)
		if !dropped && !c.Equality && a == sign {
			var bound LinExpr
			if sign == 1 {
				bound = c.E.Subst(x, L(0)).Neg()
			} else {
				bound = c.E.Subst(x, L(0))
			}
			if bound.Equal(b) {
				dropped = true
				continue
			}
		}
		out = append(out, c)
	}
	return out
}
