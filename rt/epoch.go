package rt

import (
	"errors"
	"fmt"
)

// This file implements epoch-scoped verification. The paper places the
// def == use comparison at a post-dominator of all defs and uses (program
// end), so a fault injected early is detected arbitrarily late. Epochs bound
// that detection window: the instrumented program brackets an iteration block
// with BeginEpoch/EndEpoch, finalizing its live tracked variables at the
// boundary so the checksums are quiescent there, and EndEpoch verifies them.
// A detected mismatch can then be repaired by rolling the protected state
// back to the sealed snapshot taken at the epoch's entry and re-executing
// only that epoch (see internal/recovery).

// ErrCheckpointCorrupt reports that a sealed checkpoint failed its integrity
// digest: a fault struck the checkpoint itself while it sat in memory waiting
// to be needed. Restoring it would replace live state with silently wrong
// state, so Rollback refuses; recovery escalates to a full restart instead.
var ErrCheckpointCorrupt = errors.New("checkpoint integrity digest mismatch")

// EpochState is a sealed snapshot of a Tracker at an epoch boundary: the
// four checksum accumulators plus the cumulative dynamic def/use operation
// counters, covered by an integrity digest computed at seal time. It is
// immutable once returned; Rollback accepts only sealed snapshots whose
// digest still verifies, so neither a zero EpochState nor a checkpoint hit
// by a fault while parked in memory can silently wipe a tracker.
type EpochState struct {
	// Index is the epoch this snapshot belongs to: for BeginEpoch the epoch
	// being entered, for EndEpoch the epoch just closed.
	Index int
	// Def, Use, EDef, EUse are the checksum accumulators at snapshot time.
	Def, Use, EDef, EUse uint64
	// Defs and Uses are the cumulative dynamic def/use operation counts.
	Defs, Uses uint64

	sealed bool
	digest uint64
}

// Sealed reports whether the snapshot was produced by BeginEpoch/EndEpoch.
func (s EpochState) Sealed() bool { return s.sealed }

// mix64 is the splitmix64 finalizer: a cheap bijective bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// computeDigest chains every covered field through the mixer. Chaining makes
// the digest order-sensitive, so swapping two accumulators is caught too.
func (s *EpochState) computeDigest() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range [...]uint64{uint64(s.Index), s.Def, s.Use, s.EDef, s.EUse, s.Defs, s.Uses} {
		h = mix64(h ^ w)
	}
	return h
}

// Verify checks the snapshot's integrity: it must be sealed and its fields
// must still match the digest computed when it was sealed. A digest failure
// is reported as ErrCheckpointCorrupt (wrapped).
func (s EpochState) Verify() error {
	if !s.sealed {
		return errors.New("unsealed EpochState")
	}
	if s.digest != s.computeDigest() {
		return fmt.Errorf("epoch %d snapshot: %w", s.Index, ErrCheckpointCorrupt)
	}
	return nil
}

// snapshot captures the tracker's current state as a sealed EpochState.
func (t *Tracker) snapshot() EpochState {
	s := EpochState{
		Index: t.epoch,
		Def:   t.pair.Def, Use: t.pair.Use,
		EDef: t.pair.EDef, EUse: t.pair.EUse,
		Defs: t.defs, Uses: t.uses,
		sealed: true,
	}
	s.digest = s.computeDigest()
	return s
}

// Epoch returns the index of the epoch currently being accumulated. It
// starts at 0 and advances on every successful EndEpoch.
func (t *Tracker) Epoch() int { return t.epoch }

// OpCounts returns the cumulative dynamic def and use operation counts.
func (t *Tracker) OpCounts() (defs, uses uint64) { return t.defs, t.uses }

// BeginEpoch seals and returns a snapshot of the tracker at the entry of the
// current epoch. A recovery supervisor pairs it with a checkpoint of the
// protected memory: on an EndEpoch mismatch, Rollback plus a memory restore
// rewinds exactly one epoch for re-execution.
func (t *Tracker) BeginEpoch() EpochState { return t.snapshot() }

// EndEpoch verifies the checksums at an epoch boundary and seals the closing
// snapshot. The caller must have finalized (Final) every live dynamically
// counted variable first so the accumulators are quiescent — that finalize-
// at-the-boundary discipline is what preserves the paper's detection
// guarantee at epoch granularity. On a clean verification the epoch index
// advances; on a mismatch it does not, so a rolled-back re-execution closes
// the same epoch.
func (t *Tracker) EndEpoch() (EpochState, error) {
	err := t.Verify()
	s := t.snapshot()
	if err == nil {
		t.epoch++
	}
	return s, err
}

// Rollback restores the tracker to a sealed snapshot (checksums, dynamic
// operation counters, and epoch index), undoing every def/use recorded since
// it was taken and clearing any latched detector fault. It rejects unsealed
// snapshots, and refuses (with an error wrapping ErrCheckpointCorrupt) a
// snapshot whose integrity digest no longer matches its fields — restoring a
// corrupted checkpoint would be worse than the fault it repairs.
func (t *Tracker) Rollback(s EpochState) error {
	if err := s.Verify(); err != nil {
		return fmt.Errorf("rt: Rollback: %w", err)
	}
	t.restore(s)
	return nil
}

// RollbackUnchecked restores a sealed snapshot without verifying its
// integrity digest. It exists as the unhardened baseline for fault-injection
// experiments that measure what the digest buys; production callers should
// use Rollback.
func (t *Tracker) RollbackUnchecked(s EpochState) error {
	if !s.sealed {
		return fmt.Errorf("rt: Rollback of an unsealed EpochState")
	}
	t.restore(s)
	return nil
}

func (t *Tracker) restore(s EpochState) {
	// Route through SetAccumulators so the Pair's shadow copies are resealed
	// in step with the primaries; writing the exported fields directly would
	// strand stale shadows and make the next Scrub report a phantom fault.
	t.pair.SetAccumulators(s.Def, s.Use, s.EDef, s.EUse)
	t.defs, t.uses = s.Defs, s.Uses
	t.epoch = s.Index
	t.latched = nil
}
