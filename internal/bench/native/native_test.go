package native

import (
	"math"
	"math/rand"
	"testing"
)

// mats builds deterministic inputs of the given size.
func choleskyInput(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = 0.2 * rng.Float64()
	}
	for d := 0; d < n; d++ {
		a[d*n+d] = float64(n) + rng.Float64()
	}
	return a
}

func equalBits(t *testing.T, name string, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestCholeskyVariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		ref := choleskyInput(n, 1)
		Cholesky(ref, n)
		for name, f := range map[string]func([]float64, int) error{
			"resilient": CholeskyResilient,
			"optimized": CholeskyResilientOpt,
		} {
			a := choleskyInput(n, 1)
			if err := f(a, n); err != nil {
				t.Fatalf("n=%d %s: false positive: %v", n, name, err)
			}
			equalBits(t, "A", ref, a)
		}
		a := choleskyInput(n, 1)
		if CholeskyHW(a, n) == 0 && n > 0 {
			t.Error("hw variant did no checksum points")
		}
		equalBits(t, "A(hw)", ref, a)
	}
}

func jacobiInput(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() * 100
	}
	return a
}

func TestJacobi1DVariants(t *testing.T) {
	for _, tc := range []struct{ n, tsteps int }{{3, 1}, {3, 4}, {4, 3}, {12, 5}, {30, 9}, {5, 0}} {
		ref := jacobiInput(tc.n, 2)
		refB := make([]float64, tc.n)
		Jacobi1D(ref, refB, tc.n, tc.tsteps)
		for name, f := range map[string]func(a, b []float64, n, tsteps int) error{
			"resilient": Jacobi1DResilient,
			"optimized": Jacobi1DResilientOpt,
		} {
			a := jacobiInput(tc.n, 2)
			b := make([]float64, tc.n)
			if err := f(a, b, tc.n, tc.tsteps); err != nil {
				t.Fatalf("n=%d t=%d %s: false positive: %v", tc.n, tc.tsteps, name, err)
			}
			equalBits(t, "A", ref, a)
		}
		a := jacobiInput(tc.n, 2)
		b := make([]float64, tc.n)
		Jacobi1DHW(a, b, tc.n, tc.tsteps)
		equalBits(t, "A(hw)", ref, a)
	}
}

func TestDsyrkVariants(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 1}, {3, 2}, {6, 6}, {4, 0}} {
		rng := rand.New(rand.NewSource(3))
		mk := func() ([]float64, []float64) {
			rng = rand.New(rand.NewSource(3))
			c := make([]float64, tc.n*tc.n)
			a := make([]float64, tc.n*tc.m)
			for i := range c {
				c[i] = rng.Float64()
			}
			for i := range a {
				a[i] = rng.Float64()
			}
			return c, a
		}
		refC, refA := mk()
		Dsyrk(refC, refA, tc.n, tc.m)
		for name, f := range map[string]func(c, a []float64, n, m int) error{
			"resilient": DsyrkResilient,
			"optimized": DsyrkResilientOpt,
		} {
			c, a := mk()
			if err := f(c, a, tc.n, tc.m); err != nil {
				t.Fatalf("%dx%d %s: false positive: %v", tc.n, tc.m, name, err)
			}
			equalBits(t, "C", refC, c)
		}
		c, a := mk()
		DsyrkHW(c, a, tc.n, tc.m)
		equalBits(t, "C(hw)", refC, c)
	}
}

func triInput(n int, seed int64) ([]float64, []float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	l := make([]float64, n*n)
	b := make([]float64, n)
	for i := range l {
		l[i] = 0.05 * rng.Float64()
	}
	for d := 0; d < n; d++ {
		l[d*n+d] = 2 + rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	return l, make([]float64, n), b
}

func TestTrisolvVariants(t *testing.T) {
	for _, n := range []int{1, 2, 5, 13} {
		l, x, b := triInput(n, 4)
		Trisolv(l, x, b, n)
		ref := append([]float64(nil), x...)
		for name, f := range map[string]func(l, x, b []float64, n int) error{
			"resilient": TrisolvResilient,
			"optimized": TrisolvResilientOpt,
		} {
			l2, x2, b2 := triInput(n, 4)
			if err := f(l2, x2, b2, n); err != nil {
				t.Fatalf("n=%d %s: false positive: %v", n, name, err)
			}
			equalBits(t, "x", ref, x2)
		}
		l3, x3, b3 := triInput(n, 4)
		TrisolvHW(l3, x3, b3, n)
		equalBits(t, "x(hw)", ref, x3)
	}
}

func luInput(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = 0.1 * rng.Float64()
	}
	for d := 0; d < n; d++ {
		a[d*n+d] = float64(n) + 1 + rng.Float64()
	}
	return a
}

func TestLUVariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 9} {
		ref := luInput(n, 5)
		LU(ref, n)
		for name, f := range map[string]func([]float64, int) error{
			"resilient": LUResilient,
			"optimized": LUResilientOpt,
		} {
			a := luInput(n, 5)
			if err := f(a, n); err != nil {
				t.Fatalf("n=%d %s: false positive: %v", n, name, err)
			}
			equalBits(t, "A", ref, a)
		}
		a := luInput(n, 5)
		LUHW(a, n)
		equalBits(t, "A(hw)", ref, a)
	}
}

func strsmInput(n, m int, seed int64) ([]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	l := make([]float64, n*n)
	b := make([]float64, n*m)
	for i := range l {
		l[i] = 0.05 * rng.Float64()
	}
	for d := 0; d < n; d++ {
		l[d*n+d] = 2 + rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	return l, b
}

func TestStrsmVariants(t *testing.T) {
	for _, tc := range []struct{ n, m int }{{1, 1}, {3, 2}, {5, 7}} {
		l, b := strsmInput(tc.n, tc.m, 6)
		Strsm(l, b, tc.n, tc.m)
		ref := append([]float64(nil), b...)
		for name, f := range map[string]func(l, b []float64, n, m int) error{
			"resilient": StrsmResilient,
			"optimized": StrsmResilientOpt,
		} {
			l2, b2 := strsmInput(tc.n, tc.m, 6)
			if err := f(l2, b2, tc.n, tc.m); err != nil {
				t.Fatalf("%dx%d %s: false positive: %v", tc.n, tc.m, name, err)
			}
			equalBits(t, "B", ref, b2)
		}
		l3, b3 := strsmInput(tc.n, tc.m, 6)
		StrsmHW(l3, b3, tc.n, tc.m)
		equalBits(t, "B(hw)", ref, b3)
	}
}

func cgInput(n, k int, seed int64) *CGData {
	rng := rand.New(rand.NewSource(seed))
	d := &CGData{
		N: n, K: k,
		Aval: make([]float64, n*k),
		Cols: make([]int, n*k),
		P:    make([]float64, n),
		Q:    make([]float64, n),
		X:    make([]float64, n),
		R:    make([]float64, n),
	}
	for i := range d.Aval {
		d.Aval[i] = 0.5 + rng.Float64()
		d.Cols[i] = rng.Intn(n)
	}
	for i := 0; i < n; i++ {
		v := 1 + rng.Float64()
		d.P[i] = v
		d.R[i] = v
		d.Rnorm += v * v
	}
	return d
}

func TestCGVariants(t *testing.T) {
	for _, tc := range []struct{ n, k, iters int }{{4, 2, 1}, {8, 3, 4}, {20, 6, 7}, {5, 2, 0}} {
		ref := cgInput(tc.n, tc.k, 7)
		CG(ref, tc.iters)
		for name, f := range map[string]func(*CGData, int) error{
			"resilient": CGResilient,
			"optimized": CGResilientOpt,
		} {
			d := cgInput(tc.n, tc.k, 7)
			if err := f(d, tc.iters); err != nil {
				t.Fatalf("n=%d iters=%d %s: false positive: %v", tc.n, tc.iters, name, err)
			}
			equalBits(t, "p", ref.P, d.P)
			equalBits(t, "x", ref.X, d.X)
			equalBits(t, "r", ref.R, d.R)
		}
		d := cgInput(tc.n, tc.k, 7)
		CGHW(d, tc.iters)
		equalBits(t, "p(hw)", ref.P, d.P)
	}
}

func moldynInput(n, k int, seed int64) *MoldynData {
	rng := rand.New(rand.NewSource(seed))
	d := &MoldynData{
		N: n, K: k,
		X:      make([]float64, n),
		F:      make([]float64, n),
		Neigh:  make([]int, n*k),
		Cutoff: 2.5,
		Dt:     0.0001,
	}
	for i := range d.X {
		d.X[i] = rng.Float64() * 10
	}
	return d
}

func TestMoldynVariants(t *testing.T) {
	for _, tc := range []struct{ n, k, iters int }{{4, 2, 1}, {10, 4, 5}, {6, 3, 0}} {
		ref := moldynInput(tc.n, tc.k, 8)
		Moldyn(ref, tc.iters)
		for name, f := range map[string]func(*MoldynData, int) error{
			"resilient": MoldynResilient,
			"optimized": MoldynResilientOpt,
		} {
			d := moldynInput(tc.n, tc.k, 8)
			if err := f(d, tc.iters); err != nil {
				t.Fatalf("n=%d iters=%d %s: false positive: %v", tc.n, tc.iters, name, err)
			}
			equalBits(t, "x", ref.X, d.X)
		}
		d := moldynInput(tc.n, tc.k, 8)
		MoldynHW(d, tc.iters)
		equalBits(t, "x(hw)", ref.X, d.X)
	}
}

func TestCSDetectsMismatch(t *testing.T) {
	var cs CS
	cs.Def(1.5, 2)
	cs.Use(1.5)
	cs.Use(1.5000001) // corrupted second read
	if err := cs.Verify(); err == nil {
		t.Error("mismatch not detected")
	}
	var cs2 CS
	cs2.EDef(3.0)
	cs2.Use(3.0)
	cs2.Adjust(3.0, 1)
	if err := cs2.Verify(); err != nil {
		t.Errorf("false positive: %v", err)
	}
}

// Wall-clock benchmarks: the native analogue of Figure 10. The ns/op ratios
// between variants of a kernel are its normalized runtimes.

func BenchmarkNativeCholesky(b *testing.B) {
	const n = 96
	run := func(b *testing.B, f func([]float64, int)) {
		a := choleskyInput(n, 9)
		work := make([]float64, len(a))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, a)
			f(work, n)
		}
	}
	b.Run("Original", func(b *testing.B) { run(b, Cholesky) })
	b.Run("Resilient", func(b *testing.B) {
		run(b, func(a []float64, n int) {
			if err := CholeskyResilient(a, n); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("ResilientOpt", func(b *testing.B) {
		run(b, func(a []float64, n int) {
			if err := CholeskyResilientOpt(a, n); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("HW", func(b *testing.B) {
		run(b, func(a []float64, n int) { CholeskyHW(a, n) })
	})
}

func BenchmarkNativeJacobi1D(b *testing.B) {
	const n, tsteps = 4096, 40
	run := func(b *testing.B, f func(a, bb []float64, n, t int)) {
		a := jacobiInput(n, 10)
		work := make([]float64, n)
		scratch := make([]float64, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, a)
			f(work, scratch, n, tsteps)
		}
	}
	b.Run("Original", func(b *testing.B) { run(b, Jacobi1D) })
	b.Run("Resilient", func(b *testing.B) {
		run(b, func(a, bb []float64, n, t int) {
			if err := Jacobi1DResilient(a, bb, n, t); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("ResilientOpt", func(b *testing.B) {
		run(b, func(a, bb []float64, n, t int) {
			if err := Jacobi1DResilientOpt(a, bb, n, t); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("HW", func(b *testing.B) {
		run(b, func(a, bb []float64, n, t int) { Jacobi1DHW(a, bb, n, t) })
	})
}

func BenchmarkNativeCG(b *testing.B) {
	const n, k, iters = 2048, 8, 10
	base := cgInput(n, k, 11)
	run := func(b *testing.B, f func(*CGData, int)) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := cgInput(n, k, 11)
			_ = base
			b.StartTimer()
			f(d, iters)
			b.StopTimer()
		}
	}
	b.Run("Original", func(b *testing.B) { run(b, CG) })
	b.Run("Resilient", func(b *testing.B) {
		run(b, func(d *CGData, it int) {
			if err := CGResilient(d, it); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("ResilientOpt", func(b *testing.B) {
		run(b, func(d *CGData, it int) {
			if err := CGResilientOpt(d, it); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("HW", func(b *testing.B) {
		run(b, func(d *CGData, it int) { CGHW(d, it) })
	})
}

func BenchmarkNativeMoldyn(b *testing.B) {
	const n, k, iters = 4096, 6, 5
	run := func(b *testing.B, f func(*MoldynData, int)) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := moldynInput(n, k, 12)
			b.StartTimer()
			f(d, iters)
		}
	}
	b.Run("Original", func(b *testing.B) { run(b, Moldyn) })
	b.Run("Resilient", func(b *testing.B) {
		run(b, func(d *MoldynData, it int) {
			if err := MoldynResilient(d, it); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("HW", func(b *testing.B) {
		run(b, func(d *MoldynData, it int) { MoldynHW(d, it) })
	})
}

func BenchmarkNativeLU(b *testing.B) {
	const n = 96
	run := func(b *testing.B, f func([]float64, int)) {
		a := luInput(n, 13)
		work := make([]float64, len(a))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, a)
			f(work, n)
		}
	}
	b.Run("Original", func(b *testing.B) { run(b, LU) })
	b.Run("Resilient", func(b *testing.B) {
		run(b, func(a []float64, n int) {
			if err := LUResilient(a, n); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("ResilientOpt", func(b *testing.B) {
		run(b, func(a []float64, n int) {
			if err := LUResilientOpt(a, n); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("HW", func(b *testing.B) {
		run(b, func(a []float64, n int) { LUHW(a, n) })
	})
}
