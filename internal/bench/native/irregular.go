package native

// This file holds the irregular kernels (CG and moldyn). Scalars
// (alpha, rnorm, ...) are register-resident in compiled code and therefore
// outside the paper's fault model; only the arrays are protected. CG's
// optimized variant hoists the inspector (its access pattern is
// loop-invariant); moldyn rebuilds its neighbor list every iteration, so no
// inspector can be hoisted and the optimized variant equals the counter
// variant — exactly the paper's explanation for moldyn's worst-case
// overhead.

// CGData is the ELLPACK-format problem for the CG-style iteration.
type CGData struct {
	N, K  int
	Aval  []float64 // n×k coefficient values
	Cols  []int     // n×k column indices in [0, n)
	P     []float64
	Q     []float64
	X     []float64
	R     []float64
	Rnorm float64
}

// CG runs maxiter iterations of the conjugate-gradient-style update.
func CG(d *CGData, maxiter int) {
	n, k := d.N, d.K
	for t := 0; t < maxiter; t++ {
		for i := 0; i < n; i++ {
			d.Q[i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				d.Q[i] += d.Aval[i*k+j] * d.P[d.Cols[i*k+j]]
			}
		}
		pq := 0.0
		for i := 0; i < n; i++ {
			pq += d.P[i] * d.Q[i]
		}
		alpha := d.Rnorm / pq
		for i := 0; i < n; i++ {
			d.X[i] = d.X[i] + alpha*d.P[i]
		}
		for i := 0; i < n; i++ {
			d.R[i] = d.R[i] - alpha*d.Q[i]
		}
		rn := 0.0
		for i := 0; i < n; i++ {
			rn += d.R[i] * d.R[i]
		}
		beta := rn / d.Rnorm
		d.Rnorm = rn
		for i := 0; i < n; i++ {
			d.P[i] = d.R[i] + beta*d.P[i]
		}
	}
}

// CGResilient protects every array with dynamic shadow counters (the
// unoptimized scheme; the paper's 81.1 s configuration).
func CGResilient(d *CGData, maxiter int) error {
	n, k := d.N, d.K
	var cs CS
	cntP := make([]int64, n)
	cntQ := make([]int64, n)
	cntX := make([]int64, n)
	cntR := make([]int64, n)
	cntA := make([]int64, n*k)
	cntC := make([]int64, n*k)

	for i := 0; i < n; i++ {
		cs.EDef(d.P[i])
		cs.EDef(d.Q[i])
		cs.EDef(d.X[i])
		cs.EDef(d.R[i])
	}
	for i := 0; i < n*k; i++ {
		cs.EDef(d.Aval[i])
		cs.EDefI(int64(d.Cols[i]))
	}

	useF := func(v float64, cnt []int64, i int) float64 { cs.Use(v); cnt[i]++; return v }
	defF := func(arr []float64, cnt []int64, i int, nv float64) {
		cs.Adjust(arr[i], cnt[i])
		arr[i] = nv
		cs.EDef(nv)
		cnt[i] = 0
	}

	for t := 0; t < maxiter; t++ {
		for i := 0; i < n; i++ {
			defF(d.Q, cntQ, i, 0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c := d.Cols[i*k+j]
				cs.UseI(int64(c))
				cntC[i*k+j]++
				a := useF(d.Aval[i*k+j], cntA, i*k+j)
				p := useF(d.P[c], cntP, c)
				q := useF(d.Q[i], cntQ, i)
				defF(d.Q, cntQ, i, q+a*p)
			}
		}
		pq := 0.0
		for i := 0; i < n; i++ {
			pq += useF(d.P[i], cntP, i) * useF(d.Q[i], cntQ, i)
		}
		alpha := d.Rnorm / pq
		for i := 0; i < n; i++ {
			x := useF(d.X[i], cntX, i)
			p := useF(d.P[i], cntP, i)
			defF(d.X, cntX, i, x+alpha*p)
		}
		for i := 0; i < n; i++ {
			r := useF(d.R[i], cntR, i)
			q := useF(d.Q[i], cntQ, i)
			defF(d.R, cntR, i, r-alpha*q)
		}
		rn := 0.0
		for i := 0; i < n; i++ {
			r := useF(d.R[i], cntR, i)
			rn += r * r
		}
		beta := rn / d.Rnorm
		d.Rnorm = rn
		for i := 0; i < n; i++ {
			r := useF(d.R[i], cntR, i)
			p := useF(d.P[i], cntP, i)
			defF(d.P, cntP, i, r+beta*p)
		}
	}
	for i := 0; i < n; i++ {
		cs.Adjust(d.P[i], cntP[i])
		cs.Adjust(d.Q[i], cntQ[i])
		cs.Adjust(d.X[i], cntX[i])
		cs.Adjust(d.R[i], cntR[i])
	}
	for i := 0; i < n*k; i++ {
		cs.Adjust(d.Aval[i], cntA[i])
		cs.AdjustI(int64(d.Cols[i]), cntC[i])
	}
	return cs.Verify()
}

// CGResilientOpt hoists the inspector: p and x get exact per-iteration
// counts (icnt[c]+3 and 1), Aval/Cols are invariant (epilogue scaled by the
// iteration count), and only q and r keep dynamic counters — the paper's
// 52.7 s configuration.
func CGResilientOpt(d *CGData, maxiter int) error {
	n, k := d.N, d.K
	var cs CS
	if maxiter == 0 {
		return cs.Verify()
	}
	// Inspector: count the irregular reads of p per cell (loop-invariant).
	icnt := make([]int64, n)
	for i := 0; i < n*k; i++ {
		icnt[d.Cols[i]]++
	}
	cntQ := make([]int64, n)
	cntR := make([]int64, n)

	// Prologue.
	for i := 0; i < n; i++ {
		cs.Def(d.P[i], icnt[i]+3) // iteration 1 reads: S1 (icnt) + S2,S3,S6
		cs.Def(d.X[i], 1)         // own read in S3 next iteration
		cs.EDef(d.Q[i])
		cs.EDef(d.R[i])
	}
	for i := 0; i < n*k; i++ {
		cs.EDef(d.Aval[i]) // invariant: def once + e_def
		cs.EDefI(int64(d.Cols[i]))
	}

	defQ := func(i int, nv float64) {
		cs.Adjust(d.Q[i], cntQ[i])
		d.Q[i] = nv
		cs.EDef(nv)
		cntQ[i] = 0
	}

	for t := 0; t < maxiter; t++ {
		for i := 0; i < n; i++ {
			defQ(i, 0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c := d.Cols[i*k+j]
				cs.UseI(int64(c))
				a := d.Aval[i*k+j]
				cs.Use(a)
				p := d.P[c]
				cs.Use(p)
				q := d.Q[i]
				cs.Use(q)
				cntQ[i]++
				defQ(i, q+a*p)
			}
		}
		pq := 0.0
		for i := 0; i < n; i++ {
			p, q := d.P[i], d.Q[i]
			cs.Use(p)
			cs.Use(q)
			cntQ[i]++
			pq += p * q
		}
		alpha := d.Rnorm / pq
		for i := 0; i < n; i++ {
			x, p := d.X[i], d.P[i]
			cs.Use(x)
			cs.Use(p)
			d.X[i] = x + alpha*p
			cs.Def(d.X[i], 1)
		}
		for i := 0; i < n; i++ {
			r, q := d.R[i], d.Q[i]
			cs.Use(r)
			cntR[i]++
			cs.Use(q)
			cntQ[i]++
			cs.Adjust(r, cntR[i])
			d.R[i] = r - alpha*q
			cs.EDef(d.R[i])
			cntR[i] = 0
		}
		rn := 0.0
		for i := 0; i < n; i++ {
			r := d.R[i]
			cs.Use(r)
			cntR[i]++
			rn += r * r
		}
		beta := rn / d.Rnorm
		d.Rnorm = rn
		for i := 0; i < n; i++ {
			r, p := d.R[i], d.P[i]
			cs.Use(r)
			cntR[i]++
			cs.Use(p)
			d.P[i] = r + beta*p
			cs.Def(d.P[i], icnt[i]+3)
		}
	}
	// Epilogue: the last iteration's p and x definitions are unused, so
	// their final values balance the use checksum; q and r get the dynamic
	// final adjustment; the invariant arrays' totals scale with the
	// iteration count.
	for i := 0; i < n; i++ {
		cs.UseN(d.P[i], icnt[i]+3)
		cs.UseN(d.X[i], 1)
		cs.Adjust(d.Q[i], cntQ[i])
		cs.Adjust(d.R[i], cntR[i])
	}
	for i := 0; i < n*k; i++ {
		cs.Adjust(d.Aval[i], int64(maxiter))
		cs.AdjustI(int64(d.Cols[i]), int64(maxiter))
	}
	return cs.Verify()
}

// CGHW prices checksum points at nop cost (counters for q/r retained, as in
// the paper's hardware estimate).
func CGHW(d *CGData, maxiter int) uint64 {
	n, k := d.N, d.K
	var s nop
	icnt := make([]int64, n)
	for i := 0; i < n*k; i++ {
		icnt[d.Cols[i]]++
	}
	cntQ := make([]int64, n)
	cntR := make([]int64, n)
	for i := 0; i < 4*n+2*n*k; i++ {
		s.tick()
	}
	for t := 0; t < maxiter; t++ {
		for i := 0; i < n; i++ {
			cntQ[i] = 0
			d.Q[i] = 0
			s.tick()
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c := d.Cols[i*k+j]
				s.tick()
				s.tick()
				s.tick()
				s.tick()
				cntQ[i]++
				d.Q[i] += d.Aval[i*k+j] * d.P[c]
				s.tick()
				cntQ[i] = 0
			}
		}
		pq := 0.0
		for i := 0; i < n; i++ {
			s.tick()
			s.tick()
			cntQ[i]++
			pq += d.P[i] * d.Q[i]
		}
		alpha := d.Rnorm / pq
		for i := 0; i < n; i++ {
			s.tick()
			s.tick()
			d.X[i] = d.X[i] + alpha*d.P[i]
			s.tick()
		}
		for i := 0; i < n; i++ {
			s.tick()
			s.tick()
			cntR[i]++
			cntQ[i]++
			d.R[i] = d.R[i] - alpha*d.Q[i]
			s.tick()
			cntR[i] = 0
		}
		rn := 0.0
		for i := 0; i < n; i++ {
			s.tick()
			cntR[i]++
			rn += d.R[i] * d.R[i]
		}
		beta := rn / d.Rnorm
		d.Rnorm = rn
		for i := 0; i < n; i++ {
			s.tick()
			s.tick()
			d.P[i] = d.R[i] + beta*d.P[i]
			s.tick()
		}
	}
	for i := 0; i < 4*n+2*n*k; i++ {
		s.tick()
	}
	return s.n
}

// MoldynData is the molecular-dynamics-style problem.
type MoldynData struct {
	N, K   int
	X      []float64
	F      []float64
	Neigh  []int
	Cutoff float64
	Dt     float64
}

// Moldyn runs maxiter iterations; the neighbor list is rebuilt each
// iteration with a varying stride (modeling re-neighboring), which is what
// defeats inspector hoisting.
func Moldyn(d *MoldynData, maxiter int) {
	n, k := d.N, d.K
	stride := 0
	for t := 0; t < maxiter; t++ {
		stride++
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				d.Neigh[i*k+j] = (i + j*stride) % n
			}
		}
		for i := 0; i < n; i++ {
			d.F[i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				diff := d.X[d.Neigh[i*k+j]] - d.X[i]
				if diff > d.Cutoff {
					diff = d.Cutoff
				}
				d.F[i] = d.F[i] + diff
			}
		}
		for i := 0; i < n; i++ {
			d.X[i] = d.X[i] + d.F[i]*d.Dt
		}
	}
}

// MoldynResilient protects x, f, and the neighbor list with dynamic
// counters; no inspector is possible because the list changes per
// iteration.
func MoldynResilient(d *MoldynData, maxiter int) error {
	n, k := d.N, d.K
	var cs CS
	cntX := make([]int64, n)
	cntF := make([]int64, n)
	cntN := make([]int64, n*k)
	for i := 0; i < n; i++ {
		cs.EDef(d.X[i])
		cs.EDef(d.F[i])
	}
	for i := 0; i < n*k; i++ {
		cs.EDefI(int64(d.Neigh[i]))
	}
	stride := 0
	for t := 0; t < maxiter; t++ {
		stride++
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				nv := (i + j*stride) % n
				cs.AdjustI(int64(d.Neigh[i*k+j]), cntN[i*k+j])
				d.Neigh[i*k+j] = nv
				cs.EDefI(int64(nv))
				cntN[i*k+j] = 0
			}
		}
		for i := 0; i < n; i++ {
			cs.Adjust(d.F[i], cntF[i])
			d.F[i] = 0
			cs.EDef(0)
			cntF[i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c := d.Neigh[i*k+j]
				cs.UseI(int64(c))
				cntN[i*k+j]++
				xc := d.X[c]
				cs.Use(xc)
				cntX[c]++
				xi := d.X[i]
				cs.Use(xi)
				cntX[i]++
				diff := xc - xi
				if diff > d.Cutoff {
					diff = d.Cutoff
				}
				f := d.F[i]
				cs.Use(f)
				cntF[i]++
				cs.Adjust(f, cntF[i])
				d.F[i] = f + diff
				cs.EDef(d.F[i])
				cntF[i] = 0
			}
		}
		for i := 0; i < n; i++ {
			x := d.X[i]
			cs.Use(x)
			cntX[i]++
			f := d.F[i]
			cs.Use(f)
			cntF[i]++
			cs.Adjust(x, cntX[i])
			d.X[i] = x + f*d.Dt
			cs.EDef(d.X[i])
			cntX[i] = 0
		}
	}
	for i := 0; i < n; i++ {
		cs.Adjust(d.X[i], cntX[i])
		cs.Adjust(d.F[i], cntF[i])
	}
	for i := 0; i < n*k; i++ {
		cs.AdjustI(int64(d.Neigh[i]), cntN[i])
	}
	return cs.Verify()
}

// MoldynResilientOpt is identical to MoldynResilient: the paper's
// optimizations do not apply when the indexing structure is rebuilt inside
// the loop (this is why moldyn shows the highest overhead in Figure 10).
func MoldynResilientOpt(d *MoldynData, maxiter int) error {
	return MoldynResilient(d, maxiter)
}

// MoldynHW prices checksum points at nop cost with counters retained.
func MoldynHW(d *MoldynData, maxiter int) uint64 {
	n, k := d.N, d.K
	var s nop
	cntX := make([]int64, n)
	cntF := make([]int64, n)
	cntN := make([]int64, n*k)
	for i := 0; i < 2*n+n*k; i++ {
		s.tick()
	}
	stride := 0
	for t := 0; t < maxiter; t++ {
		stride++
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				s.tick()
				d.Neigh[i*k+j] = (i + j*stride) % n
				s.tick()
				cntN[i*k+j] = 0
			}
		}
		for i := 0; i < n; i++ {
			s.tick()
			d.F[i] = 0
			s.tick()
			cntF[i] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				c := d.Neigh[i*k+j]
				s.tick()
				cntN[i*k+j]++
				s.tick()
				cntX[c]++
				s.tick()
				cntX[i]++
				diff := d.X[c] - d.X[i]
				if diff > d.Cutoff {
					diff = d.Cutoff
				}
				s.tick()
				cntF[i]++
				s.tick()
				d.F[i] = d.F[i] + diff
				cntF[i] = 0
			}
		}
		for i := 0; i < n; i++ {
			s.tick()
			cntX[i]++
			s.tick()
			cntF[i]++
			s.tick()
			d.X[i] = d.X[i] + d.F[i]*d.Dt
			cntX[i] = 0
		}
	}
	for i := 0; i < 2*n+n*k; i++ {
		s.tick()
	}
	return s.n
}
