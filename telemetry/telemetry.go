// Package telemetry is the observability substrate of the defuse system:
// a lock-cheap metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms with Prometheus-text and JSON export) plus a pluggable
// event Sink with a buffered JSON-lines writer for structured events.
//
// Every layer of the pipeline reports through it: the instrumenter emits
// per-phase timings and plan decisions, the interpreter and simulated memory
// emit fault-injection and detection events with bit/word coordinates, the
// rt runtime exposes an Observer hook, and the experiment drivers
// (cmd/defusec, cmd/overhead, cmd/faultcov) expose it via -trace and
// -metrics flags.
//
// All entry points are nil-tolerant: a nil Sink discards events and a nil
// *Registry hands out unregistered (but functional) instruments, so
// instrumented code needs no guards and the disabled path stays cheap.
package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Canonical event names emitted across the compile pipeline, the simulated
// runtime, the Go runtime library, and the fault experiments.
const (
	// EvCompilePhase reports one pipeline phase's wall time
	// (fields: component, phase, seconds).
	EvCompilePhase = "compile.phase"
	// EvPlanChosen reports the protection plan chosen for one variable
	// (fields: variable, plan).
	EvPlanChosen = "plan.chosen"
	// EvSplitApplied reports index-set splitting (fields: segments).
	EvSplitApplied = "split.applied"
	// EvInspectorHoisted reports hoisted inspectors (fields: loops).
	EvInspectorHoisted = "inspector.hoisted"
	// EvFaultInjected reports one injected fault with its coordinates
	// (fields: word/addr, bit, and array/index when known).
	EvFaultInjected = "fault.injected"
	// EvDetection reports a checksum mismatch caught by verification
	// (fields: which, expected, observed).
	EvDetection = "detection"
	// EvVerifyOK reports a verification whose checksums matched.
	EvVerifyOK = "verify.ok"
	// EvVerifyMismatch reports a verification whose checksums differed.
	EvVerifyMismatch = "verify.mismatch"
	// EvEpochVerify reports one epoch-boundary verification
	// (fields: epoch, attempt, ok).
	EvEpochVerify = "epoch.verify"
	// EvRecoveryRetry reports a rollback re-execution of a failed epoch
	// (fields: epoch, attempt, backoff_seconds).
	EvRecoveryRetry = "recovery.retry"
	// EvRecoveryRestart reports an escalation to a full-run restart
	// (fields: epoch, restart).
	EvRecoveryRestart = "recovery.restart"
	// EvRecoveryDegraded reports graceful degradation: retries and restarts
	// are exhausted and the run continues marked tainted (fields: epoch).
	EvRecoveryDegraded = "recovery.degraded"
	// EvDetectorFault reports a fault caught in the detector's own state —
	// an accumulator or shadow counter diverged from its redundant copy
	// (fields: epoch when supervised, error).
	EvDetectorFault = "detector.fault"
	// EvCheckpointCorrupt reports a checkpoint that failed its integrity
	// digest and was refused (fields: epoch, error).
	EvCheckpointCorrupt = "checkpoint.corrupt"
	// EvRecoveryRebuild reports detector state rebuilt from the last sealed
	// epoch after a detector fault (fields: epoch, attempt).
	EvRecoveryRebuild = "recovery.rebuild"
	// EvScrubPass reports a detector scrub whose copies all agreed.
	EvScrubPass = "scrub.pass"
	// EvScrubFail reports a detector scrub that found diverged copies
	// (fields: error).
	EvScrubFail = "scrub.fail"
	// EvShardMerge reports one checksum shard folded into its root tracker
	// (fields: defs, uses — the dynamic op counts the shard contributed —
	// and live, the shard count at merge time).
	EvShardMerge = "shard.merge"
	// EvShardDrain reports an epoch-boundary drain: every live shard merged
	// into the root so the sealed view covers all concurrent work
	// (fields: shards — how many were merged).
	EvShardDrain = "shard.drain"
	// EvWALSeal reports one durable checkpoint record fsynced to the
	// write-ahead log (fields: epoch, bytes, seconds, seq).
	EvWALSeal = "wal.seal"
	// EvWALRecover reports a startup resume from a durable checkpoint
	// (fields: epoch, records, bytes).
	EvWALRecover = "wal.recover"
	// EvWALTornTail reports a truncated final WAL frame discarded at
	// recovery — the previous process died mid-seal (fields: bytes).
	EvWALTornTail = "wal.torn_tail"
	// EvWALCorrupt reports a WAL record refused at recovery: a complete
	// frame failed its CRC or a payload failed its integrity digest
	// (fields: error).
	EvWALCorrupt = "wal.corrupt"
	// EvCrashTrial reports one process-level crash-injection trial: the child
	// was SIGKILLed at crash_step, restarted, and compared against an
	// uninterrupted run (fields: cell, trial, crash_step, resumed,
	// resume_epoch, torn_tail, corrupt_records, identical).
	EvCrashTrial = "crash.trial"
	// EvServerState reports a degradation-ladder transition in the resident
	// service (fields: from, to, reason).
	EvServerState = "server.state"
	// EvJournalRotate reports the active journal segment sealing and a fresh
	// one opening (fields: segment, bytes, records).
	EvJournalRotate = "journal.rotate"
	// EvJournalCompact reports the oldest sealed segment folding into the
	// summary (fields: segment, folded, compacted_total, disk_bytes).
	EvJournalCompact = "journal.compact"
	// EvJournalFault reports an injected or real I/O failure on a journal
	// append, rolled back before acknowledgement (fields: id, injected,
	// error).
	EvJournalFault = "journal.fault"
)

// Event is one structured telemetry record.
type Event struct {
	Name   string         `json:"event"`
	Time   time.Time      `json:"time"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Sink consumes events. Implementations must be safe for concurrent use.
type Sink interface {
	Emit(Event)
	Close() error
}

// Emit stamps and sends a named event to s. A nil sink discards the event,
// so call sites need no guard.
func Emit(s Sink, name string, fields map[string]any) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Time: time.Now().UTC(), Fields: fields})
}

// JSONLSink writes events as JSON lines through a buffer. Emit never blocks
// on fsync; Close flushes (and closes the underlying writer if it is an
// io.Closer).
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// OpenJSONLFile creates (or truncates) path and returns a JSONL sink over it.
func OpenJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONL(f), nil
}

// Emit encodes one event as a JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Close flushes the buffer and closes the underlying writer if closeable.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.bw.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
		s.c = nil
	}
	return s.err
}

// Flush writes the buffer through without closing the underlying writer, so
// a signal handler can persist the tail of the event stream mid-run.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.bw.Flush(); s.err == nil {
		s.err = ferr
	}
	return s.err
}

// Err returns the first write error encountered, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Collector is an in-memory sink for tests and programmatic inspection.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

// Close is a no-op.
func (c *Collector) Close() error { return nil }

// Events returns a copy of the collected events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Named returns the collected events with the given name.
func (c *Collector) Named(name string) []Event {
	var out []Event
	for _, e := range c.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events with the given name were collected.
func (c *Collector) Count(name string) int { return len(c.Named(name)) }

// multiSink fans events out to several sinks.
type multiSink struct{ sinks []Sink }

// Multi returns a sink forwarding to every non-nil sink in sinks. It
// returns nil when none remain, preserving nil-sink short-circuiting.
func Multi(sinks ...Sink) Sink {
	var kept []Sink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multiSink{sinks: kept}
}

func (m *multiSink) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

func (m *multiSink) Close() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Close(); first == nil {
			first = err
		}
	}
	return first
}

// Setup opens the optional CLI observability outputs selected by -trace and
// -metrics flags: a JSON-lines event sink at tracePath and a registry whose
// snapshot is written to metricsPath by finish. An empty path yields a nil
// component (which every telemetry entry point tolerates). finish flushes
// and closes whatever was opened; call it on every exit path.
func Setup(tracePath, metricsPath string) (sink Sink, reg *Registry, finish func() error, err error) {
	if tracePath != "" {
		s, err := OpenJSONLFile(tracePath)
		if err != nil {
			return nil, nil, nil, err
		}
		sink = s
	}
	if metricsPath != "" {
		reg = NewRegistry()
	}
	finish = func() error {
		var first error
		if reg != nil {
			first = reg.WriteMetricsFile(metricsPath)
		}
		if sink != nil {
			if cerr := sink.Close(); first == nil {
				first = cerr
			}
		}
		return first
	}
	return sink, reg, finish, nil
}

// TimePhase runs f, records its wall time as a compile.phase event on s and
// an observation in r's phase histogram, and returns the duration.
func TimePhase(s Sink, r *Registry, component, phase string, f func()) time.Duration {
	start := time.Now()
	f()
	d := time.Since(start)
	Emit(s, EvCompilePhase, map[string]any{
		"component": component,
		"phase":     phase,
		"seconds":   d.Seconds(),
	})
	r.Histogram("defuse_phase_seconds", DefBuckets(),
		Label{"component", component}, Label{"phase", phase}).Observe(d.Seconds())
	return d
}
