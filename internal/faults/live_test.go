package faults

import "testing"

func TestLiveSamplerDeterministic(t *testing.T) {
	a := NewLiveSampler(0.05, 42)
	b := NewLiveSampler(0.05, 42)
	for id := uint64(0); id < 1000; id++ {
		if a.Sample(id) != b.Sample(id) {
			t.Fatalf("samplers with identical config disagree on id %d", id)
		}
		if a.Sample(id) {
			p1 := a.Plan(id, 64, 8)
			p2 := b.Plan(id, 64, 8)
			if p1 != p2 {
				t.Fatalf("plans disagree on id %d: %+v vs %+v", id, p1, p2)
			}
			if p1.Epoch < 0 || p1.Epoch >= 8 || p1.Word < 0 || p1.Word >= 64 || p1.Bit < 0 || p1.Bit > 63 {
				t.Fatalf("plan out of range: %+v", p1)
			}
		}
	}
}

func TestLiveSamplerRate(t *testing.T) {
	const n = 100_000
	for _, rate := range []float64{0.01, 0.05, 0.5} {
		s := NewLiveSampler(rate, 7)
		hits := 0
		for id := uint64(0); id < n; id++ {
			if s.Sample(id) {
				hits++
			}
		}
		got := float64(hits) / n
		// The hash is uniform; allow generous sampling noise.
		if got < rate*0.7 || got > rate*1.3 {
			t.Errorf("rate %v: observed %v (%d/%d hits)", rate, got, hits, n)
		}
	}
}

func TestLiveSamplerEdgeRates(t *testing.T) {
	never := NewLiveSampler(0, 1)
	always := NewLiveSampler(1, 1)
	for id := uint64(0); id < 1000; id++ {
		if never.Sample(id) {
			t.Fatalf("rate 0 sampled id %d", id)
		}
		if !always.Sample(id) {
			t.Fatalf("rate 1 skipped id %d", id)
		}
	}
	var nilSampler *LiveSampler
	if nilSampler.Sample(3) {
		t.Error("nil sampler sampled")
	}
}

func TestLiveSamplerSeedIndependence(t *testing.T) {
	a := NewLiveSampler(0.5, 1)
	b := NewLiveSampler(0.5, 2)
	same := 0
	for id := uint64(0); id < 1000; id++ {
		if a.Sample(id) == b.Sample(id) {
			same++
		}
	}
	// Different seeds must produce different hit sets (statistically ~50%
	// agreement at rate 0.5; identical streams would agree on all 1000).
	if same > 950 {
		t.Errorf("seeds 1 and 2 agree on %d/1000 ids — streams not independent", same)
	}
}
