package faults

import (
	"context"
	"fmt"
	"time"

	"defuse/internal/checksum"
)

// This file races the detection backends against a shared fault matrix. Each
// backend has a structural blind spot, so a single "zero escapes" gate (the
// ordinary CampaignResult.Gate) cannot judge a comparison: the data-checksum
// backend provably cannot see a valid-word aliasing redirect (the whole
// read-modify-write lands on another tracked word and the def/use ledger
// balances over it), and the address-stream backend deliberately ignores
// data values. The comparison therefore gates each (backend, cell) pair
// against an expectation matrix — Detect cells must show zero escapes, Blind
// cells must show zero detections — turning the blind spots themselves into
// regression-checked facts. The same (seed, trial) schedule races identical
// fault coordinates on every backend, so rows differ only in the detector.

// CompareSchema identifies the backend-comparison JSON document.
const CompareSchema = "defuse/backend-compare/v1"

// Expectation says what a backend must do with a cell's fault shape.
type Expectation int

const (
	// ExpectDetect: the backend must catch every modeled fault in the cell.
	ExpectDetect Expectation = iota
	// ExpectBlind: the fault shape is structurally invisible to the backend;
	// every modeled fault must escape. A detection here means the model (or
	// the backend's claimed scope) is wrong.
	ExpectBlind
)

func (e Expectation) String() string {
	if e == ExpectBlind {
		return "blind"
	}
	return "detect"
}

// compareCellSpec is one fault shape in the comparison matrix.
type compareCellSpec struct {
	name     string
	bitFlips int
	addr     AddrFault
	expect   map[Backend]Expectation
}

// compareCells is the shared matrix. Address cells run under the random
// pattern (Validate enforces it — constant patterns make redirected loads
// benign no-ops); the data cell uses a single-bit flip, which the checksum
// backend detects with certainty (Section 6.1) so Detect expectations stay
// deterministic.
var compareCells = []compareCellSpec{
	{
		name: "data-flip", bitFlips: 1, addr: AddrNone,
		expect: map[Backend]Expectation{
			BackendChecksum: ExpectDetect,
			BackendAddrsum:  ExpectBlind, // address streams never see values
			BackendDME:      ExpectDetect,
		},
	},
	{
		name: "addr-wrong", bitFlips: 1, addr: AddrWrong,
		expect: map[Backend]Expectation{
			BackendChecksum: ExpectDetect, // wrong value folds into use
			BackendAddrsum:  ExpectDetect,
			BackendDME:      ExpectDetect,
		},
	},
	{
		name: "addr-bit", bitFlips: 1, addr: AddrIndexBit,
		expect: map[Backend]Expectation{
			BackendChecksum: ExpectDetect,
			BackendAddrsum:  ExpectDetect,
			BackendDME:      ExpectDetect,
		},
	},
	{
		name: "addr-alias", bitFlips: 1, addr: AddrAlias,
		expect: map[Backend]Expectation{
			// The masking case: load and store both redirect to a valid
			// tracked word, the ledger balances, the final state is wrong.
			BackendChecksum: ExpectBlind,
			BackendAddrsum:  ExpectDetect,
			BackendDME:      ExpectDetect,
		},
	},
}

// CompareConfig drives one backend comparison.
type CompareConfig struct {
	// Words and Epochs shape every trial; Trials is per (backend, cell).
	Words, Epochs, Trials int
	Seed                  int64
	// Kind is the data-checksum operator (default ModAdd).
	Kind checksum.Kind
	// Backends to race; empty means all three.
	Backends []Backend
	// Workers is the campaign pool size per backend; 0 means GOMAXPROCS.
	Workers int
}

// CompareCellResult is one (backend, cell) outcome with its verdict.
type CompareCellResult struct {
	Backend        string  `json:"backend"`
	Cell           string  `json:"cell"`
	Fault          string  `json:"fault"`
	Expectation    string  `json:"expectation"`
	Trials         int     `json:"trials"`
	Detected       int     `json:"detected"`
	Undetected     int     `json:"undetected"`
	Skipped        int     `json:"skipped,omitempty"`
	FalseNegatives int     `json:"false_negatives,omitempty"`
	MeanLatency    float64 `json:"mean_detection_latency_epochs"`
	OK             bool    `json:"ok"`
}

// BackendSummary aggregates one backend's row: how it fared across the
// matrix and what it cost.
type BackendSummary struct {
	Backend string `json:"backend"`
	// NsPerTrial is the measured wall time per trial across the backend's
	// cells — the comparison's overhead column.
	NsPerTrial float64 `json:"ns_per_trial"`
	// MeanDetectionLatency averages over the backend's detected trials.
	MeanDetectionLatency float64 `json:"mean_detection_latency_epochs"`
	// AllExpected is true when every cell met its expectation.
	AllExpected bool `json:"all_expected"`
}

// BackendComparison is the full comparison artifact.
type BackendComparison struct {
	Schema string              `json:"schema"`
	Words  int                 `json:"words"`
	Epochs int                 `json:"epochs"`
	Trials int                 `json:"trials"`
	Seed   int64               `json:"seed"`
	Rows   []BackendSummary    `json:"rows"`
	Cells  []CompareCellResult `json:"cells"`
}

// RunComparison races the configured backends over the shared cell matrix.
func RunComparison(ctx context.Context, cfg CompareConfig) (*BackendComparison, error) {
	if cfg.Words < 2 {
		return nil, fmt.Errorf("faults: comparison needs at least 2 words (address faults need a wrong location), got %d", cfg.Words)
	}
	if cfg.Epochs <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("faults: comparison needs positive Epochs and Trials, got %d and %d", cfg.Epochs, cfg.Trials)
	}
	backends := cfg.Backends
	if len(backends) == 0 {
		backends = []Backend{BackendChecksum, BackendAddrsum, BackendDME}
	}
	out := &BackendComparison{
		Schema: CompareSchema,
		Words:  cfg.Words, Epochs: cfg.Epochs, Trials: cfg.Trials, Seed: cfg.Seed,
	}
	for _, be := range backends {
		cells := make([]CoverageConfig, 0, len(compareCells))
		for _, spec := range compareCells {
			cells = append(cells, CoverageConfig{
				Kind: cfg.Kind, Words: cfg.Words, BitFlips: spec.bitFlips,
				Pattern: Random, Trials: cfg.Trials, Seed: cfg.Seed,
				Epochs: cfg.Epochs, Backend: be, AddrFault: spec.addr,
			})
		}
		camp := &Campaign{Cells: cells, Workers: cfg.Workers}
		start := time.Now()
		res, err := camp.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("faults: comparison backend %v: %w", be, err)
		}
		elapsed := time.Since(start)

		row := BackendSummary{Backend: be.String(), AllExpected: true}
		var latSum int64
		var detected, trials int
		for i, r := range res.Results {
			spec := compareCells[i]
			want := spec.expect[be]
			modeled := r.Detected + r.Undetected
			ok := false
			switch want {
			case ExpectDetect:
				ok = modeled > 0 && r.Undetected == 0
			case ExpectBlind:
				ok = modeled > 0 && r.Detected == 0 && r.Undetected > 0
			}
			if !ok {
				row.AllExpected = false
			}
			out.Cells = append(out.Cells, CompareCellResult{
				Backend:        be.String(),
				Cell:           spec.name,
				Fault:          spec.addr.String(),
				Expectation:    want.String(),
				Trials:         r.Trials,
				Detected:       r.Detected,
				Undetected:     r.Undetected,
				Skipped:        r.Skipped,
				FalseNegatives: r.FalseNegatives,
				MeanLatency:    r.MeanDetectionLatency(),
				OK:             ok,
			})
			latSum += r.LatencySum
			detected += r.Detected
			trials += r.Trials
		}
		if trials > 0 {
			row.NsPerTrial = float64(elapsed.Nanoseconds()) / float64(trials)
		}
		if detected > 0 {
			row.MeanDetectionLatency = float64(latSum) / float64(detected)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Gate returns a non-nil error when any (backend, cell) pair violated its
// expectation: a Detect cell that let a fault escape, or a Blind cell that
// claimed a detection its backend cannot structurally make.
func (c *BackendComparison) Gate() error {
	for _, cell := range c.Cells {
		if !cell.OK {
			return fmt.Errorf("faults: gate: backend %s cell %s (expect %s): %d detected, %d undetected of %d trials",
				cell.Backend, cell.Cell, cell.Expectation, cell.Detected, cell.Undetected, cell.Trials)
		}
	}
	return nil
}
