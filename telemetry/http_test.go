package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func osStat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func readJSONFile(path string, v any) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, v)
}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("defuse_trials_total").Add(5)
	reg.Histogram("defuse_epoch_verify_seconds", DefBuckets()).Observe(0.002)
	flight := NewFlightRecorder(16)
	spans := NewSpanBuffer(0)
	tr := NewTracer(MultiSpan(spans, flight))
	flight.Emit(Event{Name: EvVerifyOK, Time: time.Now()})
	s := tr.Start(SpanContext{}, "run")
	tr.Start(s.Context(), "epoch").End()
	s.End()

	srv, err := Serve("127.0.0.1:0", reg, flight, spans, NewHealth())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ct := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics: %d %q", code, ct)
	}
	if !strings.Contains(body, "defuse_trials_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	// The exposition must satisfy the repo's own linter — the same check the
	// CI smoke job runs via cmd/tlint.
	if err := Lint(strings.NewReader(body)); err != nil {
		t.Errorf("/metrics fails lint: %v", err)
	}

	code, body, _ = get(t, base+"/flight")
	if code != 200 {
		t.Fatalf("/flight: %d", code)
	}
	var dump FlightDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/flight not JSON: %v", err)
	}
	if dump.Schema != FlightDumpSchema || dump.Trigger != "http" || len(dump.Entries) != 3 {
		t.Errorf("/flight dump = %q/%q with %d entries", dump.Schema, dump.Trigger, len(dump.Entries))
	}

	code, body, _ = get(t, base+"/events")
	if code != 200 {
		t.Fatalf("/events: %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events not JSON: %v", err)
	}
	if len(events) != 1 || events[0].Name != EvVerifyOK {
		t.Errorf("/events = %+v", events)
	}

	code, body, _ = get(t, base+"/trace")
	if code != 200 {
		t.Fatalf("/trace: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 2 {
		t.Errorf("/trace traceEvents = %v", doc["traceEvents"])
	}

	if code, _, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
	if code, _, _ := get(t, base+"/nope"); code != 404 {
		t.Errorf("unknown path: %d, want 404", code)
	}
}

func TestServeNilComponents(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/flight", "/events", "/trace", "/healthz", "/readyz"} {
		if code, _, _ := get(t, base+path); code != 404 {
			t.Errorf("%s with nil component: %d, want 404", path, code)
		}
	}
	if code, _, _ := get(t, base+"/"); code != 200 {
		t.Errorf("index: %d", code)
	}
}

func TestHealthEndpoints(t *testing.T) {
	reg := NewRegistry()
	health := NewHealth()
	health.BindGauge(reg)
	srv, err := Serve("127.0.0.1:0", reg, nil, nil, health)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, ct := get(t, base+"/healthz")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Fatalf("/healthz: %d %q", code, ct)
	}
	var hz healthzBody
	if err := json.Unmarshal([]byte(body), &hz); err != nil || hz.Status != "ok" {
		t.Fatalf("/healthz body %q: %v", body, err)
	}

	// Ready with two requests in flight.
	health.Add(2)
	code, body, ct = get(t, base+"/readyz")
	if code != 200 || !strings.Contains(ct, "application/json") {
		t.Fatalf("/readyz ready: %d %q", code, ct)
	}
	var rz readyzBody
	if err := json.Unmarshal([]byte(body), &rz); err != nil {
		t.Fatal(err)
	}
	if !rz.Ready || rz.Draining || rz.InFlight != 2 {
		t.Errorf("/readyz = %+v, want ready with 2 in flight", rz)
	}

	// The in-flight gauge must track the counter.
	if got := reg.Gauge("defuse_server_in_flight").Value(); got != 2 {
		t.Errorf("in-flight gauge = %v, want 2", got)
	}

	// Draining flips readiness to 503 while reporting the in-flight count
	// still completing, so a drain is observable from the outside.
	health.SetDraining()
	health.Add(-1)
	code, body, _ = get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz draining: %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &rz); err != nil {
		t.Fatal(err)
	}
	if rz.Ready || !rz.Draining || rz.InFlight != 1 {
		t.Errorf("/readyz draining = %+v", rz)
	}

	// /healthz stays 200 throughout: the process is alive even while unready.
	if code, _, _ := get(t, base+"/healthz"); code != 200 {
		t.Errorf("/healthz during drain: %d, want 200", code)
	}
}

func TestServerHandleMountsRoutes(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/custom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "mounted")
	}))
	code, body, _ := get(t, "http://"+srv.Addr()+"/custom")
	if code != 200 || body != "mounted" {
		t.Errorf("/custom = %d %q", code, body)
	}
}

func TestObsFinishIdempotent(t *testing.T) {
	dir := t.TempDir()
	obs, err := SetupObs(ObsConfig{TracePath: filepath.Join(dir, "events.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	Emit(obs.Sink, EvVerifyOK, nil)
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}
	// A second Finish (e.g. a signal handler racing the normal exit path)
	// must not double-close the sink or error.
	if err := obs.Finish(); err != nil {
		t.Fatalf("second Finish: %v", err)
	}
}

func TestSetupObsWiring(t *testing.T) {
	dir := t.TempDir()
	cfg := ObsConfig{
		TracePath:  filepath.Join(dir, "events.jsonl"),
		FlightPath: filepath.Join(dir, "flight.json"),
		ChromePath: filepath.Join(dir, "trace.json"),
		ServeAddr:  "127.0.0.1:0",
	}
	obs, err := SetupObs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Sink == nil || obs.Metrics == nil || obs.Tracer == nil || obs.Flight == nil || obs.Spans == nil || obs.Server == nil {
		t.Fatalf("components missing: %+v", obs)
	}
	obs.Metrics.Counter("defuse_trials_total").Add(1)
	Emit(obs.Sink, EvFaultInjected, map[string]any{"word": 3})
	span := obs.Tracer.Start(SpanContext{}, "run")
	obs.Tracer.Start(span.Context(), "epoch").End()
	span.End()
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}

	// Every artifact must exist and parse.
	for _, f := range []string{"events.jsonl", "flight.json", "trace.json"} {
		p := filepath.Join(dir, f)
		if fi, err := osStat(p); err != nil || fi == 0 {
			t.Errorf("%s: missing or empty (%v)", f, err)
		}
	}
	var dump FlightDump
	if err := readJSONFile(filepath.Join(dir, "flight.json"), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Trigger != "exit" {
		t.Errorf("flight trigger = %q, want exit", dump.Trigger)
	}
	// 1 event + 2 spans in the ring.
	if len(dump.Entries) != 3 {
		t.Errorf("flight holds %d entries, want 3", len(dump.Entries))
	}
}

func TestSetupObsZeroConfigIsInert(t *testing.T) {
	obs, err := SetupObs(ObsConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Sink != nil || obs.Metrics != nil || obs.Tracer != nil || obs.Server != nil {
		t.Fatalf("zero config built components: %+v", obs)
	}
	// The inert Obs must be safe end to end.
	Emit(obs.Sink, EvDetection, nil)
	obs.Tracer.Start(SpanContext{}, "x").End()
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSetupObsFlightTriggerDumps(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flight.json")
	obs, err := SetupObs(ObsConfig{FlightPath: path})
	if err != nil {
		t.Fatal(err)
	}
	Emit(obs.Sink, EvDetectorFault, map[string]any{"epoch": 2})
	if trigger, ok := obs.Flight.Dumped(); !ok || trigger != EvDetectorFault {
		t.Fatalf("detector fault did not dump the ring: %q %v", trigger, ok)
	}
	if err := obs.Finish(); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := readJSONFile(path, &dump); err != nil {
		t.Fatal(err)
	}
	// The automatic postmortem (trigger = the event name) must survive
	// Finish un-overwritten.
	if dump.Trigger != EvDetectorFault {
		t.Errorf("flight trigger = %q, want %q", dump.Trigger, EvDetectorFault)
	}
}
