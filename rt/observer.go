package rt

import (
	"errors"
	"sync/atomic"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// Observer receives runtime checksum telemetry from a Tracker. The hook is
// nil-checked on every operation, so an unobserved tracker pays only an
// untaken branch; implementations must be cheap and concurrency-safe if the
// tracker is shared.
type Observer interface {
	// ObserveDef fires on every definition; n is the compile-time use
	// count, or -1 for a dynamically counted definition (DefDyn).
	ObserveDef(bits uint64, n int64)
	// ObserveUse fires on every use.
	ObserveUse(bits uint64)
	// ObserveVerify fires on every verification; err is nil on a match and
	// a *checksum.MismatchError on a detected memory error.
	ObserveVerify(err error)
}

// SetObserver installs (or clears, with nil) the tracker's observer and
// returns the tracker for chaining.
func (t *Tracker) SetObserver(o Observer) *Tracker {
	t.obs = o
	return t
}

// CountingObserver tallies runtime checksum activity with atomic counters.
type CountingObserver struct {
	Defs, Uses           atomic.Int64
	Verifies, Mismatches atomic.Int64
	// LastDefBits/LastUseBits record the most recent observed bit
	// patterns, for coordinate-level fault diagnosis in tests.
	LastDefBits, LastUseBits atomic.Uint64
}

// ObserveDef implements Observer.
func (c *CountingObserver) ObserveDef(bits uint64, n int64) {
	c.Defs.Add(1)
	c.LastDefBits.Store(bits)
}

// ObserveUse implements Observer.
func (c *CountingObserver) ObserveUse(bits uint64) {
	c.Uses.Add(1)
	c.LastUseBits.Store(bits)
}

// ObserveVerify implements Observer.
func (c *CountingObserver) ObserveVerify(err error) {
	c.Verifies.Add(1)
	if err != nil {
		c.Mismatches.Add(1)
	}
}

// TelemetryObserver bridges a Tracker into the defuse/telemetry substrate:
// def/use totals land in registry counters (no per-op events — that would
// swamp any sink), and each verification emits a verify.ok or
// verify.mismatch event (mismatches also emit detection, with the
// mismatching checksum pair's values).
type TelemetryObserver struct {
	sink       telemetry.Sink
	defs, uses *telemetry.Counter
	verifyOK   *telemetry.Counter
	verifyBad  *telemetry.Counter
}

// NewTelemetryObserver builds an observer reporting into sink and reg
// (either may be nil).
func NewTelemetryObserver(sink telemetry.Sink, reg *telemetry.Registry) *TelemetryObserver {
	return &TelemetryObserver{
		sink: sink,
		defs: reg.Counter("defuse_rt_ops_total", telemetry.Label{Key: "op", Value: "def"}),
		uses: reg.Counter("defuse_rt_ops_total", telemetry.Label{Key: "op", Value: "use"}),
		verifyOK: reg.Counter("defuse_rt_verifications_total",
			telemetry.Label{Key: "result", Value: "ok"}),
		verifyBad: reg.Counter("defuse_rt_verifications_total",
			telemetry.Label{Key: "result", Value: "mismatch"}),
	}
}

// ObserveDef implements Observer.
func (o *TelemetryObserver) ObserveDef(bits uint64, n int64) { o.defs.Inc() }

// ObserveUse implements Observer.
func (o *TelemetryObserver) ObserveUse(bits uint64) { o.uses.Inc() }

// ObserveVerify implements Observer.
func (o *TelemetryObserver) ObserveVerify(err error) {
	if err == nil {
		o.verifyOK.Inc()
		telemetry.Emit(o.sink, telemetry.EvVerifyOK, nil)
		return
	}
	o.verifyBad.Inc()
	fields := map[string]any{"error": err.Error()}
	var mm *checksum.MismatchError
	if errors.As(err, &mm) {
		fields["which"] = mm.Which
		fields["expected"] = mm.Expected
		fields["observed"] = mm.Observed
	}
	telemetry.Emit(o.sink, telemetry.EvVerifyMismatch, fields)
	telemetry.Emit(o.sink, telemetry.EvDetection, fields)
}
