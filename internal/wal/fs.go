package wal

// The file-layer abstraction behind every log writer. Production code runs on
// the real filesystem (OSFS); the chaos harness and the fault tests swap in a
// FaultFS that injects write and fsync failures at seeded ordinals, so the
// "disk said no" paths — an fsync that fails mid-soak, a write that lands
// only half its bytes — are exercised against the same code that runs in
// production, not against mocks of it.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// File is the subset of *os.File the logs write through.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// FS opens and renames log files. Reads go through os directly — the fault
// model covers the write path (the journal's durability promise); recovery
// scans read whatever bytes actually reached the disk.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// osFS is the passthrough implementation.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// OSFS is the real filesystem.
var OSFS FS = osFS{}

// ErrInjected marks an I/O failure manufactured by a FaultFS. Callers that
// need to distinguish "the disk really failed" from "the chaos schedule said
// fail here" test with errors.Is; the server surfaces the message verbatim so
// an auditing client can tell declared injections apart from real faults.
var ErrInjected = errors.New("wal: injected I/O fault")

// faultKind is one shape of injected failure.
type faultKind int

const (
	faultSync  faultKind = iota // Sync returns an error; bytes may be volatile
	faultWrite                  // Write fails before any byte is accepted
	faultShort                  // Write accepts half the bytes, then fails
)

// FaultFS wraps an FS and fails seeded ordinals of the write and sync streams
// across every file it opens. Ordinals are 1-based and global (not per file):
// "sync:3" fails the third Sync call any file performs. Each armed ordinal
// fires exactly once; Fired reports how many have.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	writes uint64
	syncs  uint64
	arm    map[faultKind]map[uint64]bool
	fired  int
}

// NewFaultFS parses a fault spec — comma-separated "kind:ordinal" terms with
// kinds sync, write, and short (a torn write: half the bytes land, then the
// call fails) — and returns the injecting wrapper. An empty spec injects
// nothing.
func NewFaultFS(inner FS, spec string) (*FaultFS, error) {
	if inner == nil {
		inner = OSFS
	}
	f := &FaultFS{inner: inner, arm: map[faultKind]map[uint64]bool{
		faultSync: {}, faultWrite: {}, faultShort: {},
	}}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		kindStr, ordStr, ok := strings.Cut(term, ":")
		if !ok {
			return nil, fmt.Errorf("wal: fault spec term %q: want kind:ordinal", term)
		}
		ord, err := strconv.ParseUint(ordStr, 10, 64)
		if err != nil || ord == 0 {
			return nil, fmt.Errorf("wal: fault spec term %q: ordinal must be a positive integer", term)
		}
		switch kindStr {
		case "sync":
			f.arm[faultSync][ord] = true
		case "write":
			f.arm[faultWrite][ord] = true
		case "short":
			f.arm[faultShort][ord] = true
		default:
			return nil, fmt.Errorf("wal: fault spec term %q: unknown kind (sync, write, short)", term)
		}
	}
	return f, nil
}

// Spec renders the still-armed faults back into spec syntax (test use).
func (f *FaultFS) Spec() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var terms []string
	names := map[faultKind]string{faultSync: "sync", faultWrite: "write", faultShort: "short"}
	for kind, ords := range f.arm {
		for ord := range ords {
			terms = append(terms, fmt.Sprintf("%s:%d", names[kind], ord))
		}
	}
	sort.Strings(terms)
	return strings.Join(terms, ",")
}

// Fired reports how many armed faults have been consumed.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }

// take consumes the armed fault for (kind, ordinal), if any.
func (f *FaultFS) take(kind faultKind, ord uint64) bool {
	if f.arm[kind][ord] {
		delete(f.arm[kind], ord)
		f.fired++
		return true
	}
	return false
}

// faultFile threads each write and sync through the shared ordinal counters.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.writes++
	ord := f.fs.writes
	fail := f.fs.take(faultWrite, ord)
	short := !fail && f.fs.take(faultShort, ord)
	f.fs.mu.Unlock()
	if fail {
		return 0, fmt.Errorf("%w (write #%d)", ErrInjected, ord)
	}
	if short {
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w (short write #%d: %d of %d bytes)", ErrInjected, ord, n, len(p))
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	ord := f.fs.syncs
	fail := f.fs.take(faultSync, ord)
	f.fs.mu.Unlock()
	if fail {
		// The real sync still runs — the fault models the *report* of
		// failure, after which the caller must treat the bytes as volatile
		// and roll the append back.
		_ = f.inner.Sync()
		return fmt.Errorf("%w (sync #%d)", ErrInjected, ord)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error                              { return f.inner.Close() }
func (f *faultFile) Truncate(size int64) error                 { return f.inner.Truncate(size) }
func (f *faultFile) Seek(off int64, whence int) (int64, error) { return f.inner.Seek(off, whence) }
