package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"defuse/internal/bench"
	"defuse/internal/codegen"
	"defuse/internal/codegen/gennative"
	"defuse/internal/lang"
)

// The native backend times the committed generated kernels
// (internal/codegen/gennative) — the defuse compiler's output built by the
// Go compiler — instead of interpreting the lang programs. The interpreter's
// op-count model does not apply here; wall clock on compiled code IS the
// measurement, so each variant is averaged over enough repetitions to make
// microsecond-scale kernels measurable, with a fresh machine and freshly
// seeded data per repetition and only the kernel call inside the timer.

// nativeMinTime is the per-variant timing budget the calibration aims for.
const nativeMinTime = 50 * time.Millisecond

// nativeMaxReps caps repetitions so pathologically fast kernels terminate.
const nativeMaxReps = 5000

// nativeVariants lists the measured variants in measurement order; the
// gennative registry keys on the bench.Variant name itself.
var nativeVariants = []bench.Variant{bench.Original, bench.Resilient, bench.ResilientOpt}

// runNative measures the suite (or one benchmark) on the compiled backend,
// prints the wall-clock table, and with -json merges the rows into the
// existing overhead report so the interpreter document gains a native block
// without losing its service/backend/quantile blocks.
func runNative(scale float64, one string, jsonOut bool, jsonPath string) error {
	var rows []bench.NativeRow
	for _, b := range bench.Suite() {
		if one != "" && b.Name != one {
			continue
		}
		row, err := measureNative(b, scale)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		_, err := bench.ByName(one)
		if err == nil {
			err = fmt.Errorf("overhead: -backend native: no benchmark selected")
		}
		return err
	}
	fmt.Println("Native backend: compiled generated kernels (internal/codegen/gennative)")
	fmt.Println("(wall-clock on Go-compiled code; no op-count columns — nothing interprets)")
	fmt.Println()
	fmt.Print(bench.FormatNative(rows))
	if jsonOut {
		write := func(p string, data []byte) error { return os.WriteFile(p, data, 0o644) }
		if err := bench.MergeNativeRows(jsonPath, rows, write); err != nil {
			return fmt.Errorf("%w (run -backend interp -json first to create the report)", err)
		}
		fmt.Fprintf(os.Stderr, "overhead: merged native rows into %s\n", jsonPath)
	}
	return nil
}

// measureNative times the three variants of one benchmark and checks the
// native variants' outputs agree bit-for-bit, mirroring the interpreter
// harness's equivalence gate.
func measureNative(b *bench.Benchmark, scale float64) (bench.NativeRow, error) {
	params := b.Params(scale)
	secs := map[bench.Variant]float64{}
	outs := map[bench.Variant]map[string][]float64{}
	reps := 0
	for _, v := range nativeVariants {
		kern, ok := gennative.Lookup(b.Name, string(v))
		if !ok {
			return bench.NativeRow{}, fmt.Errorf("overhead: no generated kernel for %s/%s; run: go run ./cmd/genkernels", b.Name, v)
		}
		prog, err := b.BuildVariant(v)
		if err != nil {
			return bench.NativeRow{}, err
		}
		mean, out, n, err := timeKernel(b, prog, params, kern.Fn)
		if err != nil {
			return bench.NativeRow{}, fmt.Errorf("overhead: native %s/%s: %w", b.Name, v, err)
		}
		secs[v], outs[v] = mean, out
		if v == bench.Original {
			reps = n
		}
	}
	for _, v := range []bench.Variant{bench.Resilient, bench.ResilientOpt} {
		if err := sameNativeOutput(b.Name, outs[bench.Original], outs[v], v); err != nil {
			return bench.NativeRow{}, err
		}
	}
	orig := secs[bench.Original]
	row := bench.NativeRow{
		Bench:           b.Name,
		OriginalSeconds: orig,
		ResilientTime:   nativeRatio(secs[bench.Resilient], orig),
		OptimizedTime:   nativeRatio(secs[bench.ResilientOpt], orig),
		Reps:            reps,
	}
	return row, nil
}

// timeKernel runs one generated kernel repeatedly — fresh machine and data
// every repetition, only fn inside the timer — and returns the mean per-run
// seconds, the float arrays after the first run, and the repetition count.
func timeKernel(b *bench.Benchmark, prog *lang.Program, params map[string]int64, fn codegen.Fn) (float64, map[string][]float64, int, error) {
	run := func() (*codegen.Machine, time.Duration, error) {
		m, err := codegen.MachineFor(prog, params)
		if err != nil {
			return nil, 0, err
		}
		b.InitDefault(m, params)
		start := time.Now()
		err = fn(m, 0, 1)
		return m, time.Since(start), err
	}
	m, first, err := run()
	if err != nil {
		return 0, nil, 0, err
	}
	out := map[string][]float64{}
	for _, d := range b.Program().Decls {
		if d.Type == lang.TypeFloat && d.IsArray() {
			snap, err := m.SnapshotFloats(d.Name)
			if err != nil {
				return 0, nil, 0, err
			}
			out[d.Name] = snap
		}
	}
	reps := 1
	if first > 0 && first < nativeMinTime {
		reps = int(nativeMinTime / first)
		if reps > nativeMaxReps {
			reps = nativeMaxReps
		}
	}
	total := first
	for r := 1; r < reps; r++ {
		_, d, err := run()
		if err != nil {
			return 0, nil, 0, err
		}
		total += d
	}
	return total.Seconds() / float64(reps), out, reps, nil
}

// sameNativeOutput asserts an instrumented native variant computed exactly
// what the original native variant did.
func sameNativeOutput(name string, want, got map[string][]float64, v bench.Variant) error {
	for arr, w := range want {
		g := got[arr]
		if len(g) != len(w) {
			return fmt.Errorf("overhead: native %s/%s: array %s length mismatch", name, v, arr)
		}
		for i := range w {
			if w[i] != g[i] && !(math.IsNaN(w[i]) && math.IsNaN(g[i])) {
				return fmt.Errorf("overhead: native %s/%s: %s[%d] = %v, want %v", name, v, arr, i, g[i], w[i])
			}
		}
	}
	return nil
}

func nativeRatio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}
