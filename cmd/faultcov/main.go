// Command faultcov reproduces Table 1 of the paper: the percentage of
// undetected multi-bit memory errors under integer-modulo-addition checksums
// over arrays of 64-bit integers, with one checksum and with the
// two-checksum (address-rotated) scheme.
//
// Usage:
//
//	faultcov [-trials 100000] [-sizes 100,10000,1000000] [-flips 2,3,4,5,6] [-seed 1]
//
// The paper uses 100,000 trials; -trials 10000 gives the same shape in
// seconds rather than minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"defuse/internal/checksum"
	"defuse/internal/faults"
)

func main() {
	trials := flag.Int("trials", 100000, "injection trials per cell (paper: 100000)")
	sizes := flag.String("sizes", "100,10000,1000000", "array sizes in 64-bit words")
	flips := flag.String("flips", "2,3,4,5,6", "bit-flip counts")
	seed := flag.Int64("seed", 1, "random seed")
	op := flag.String("op", "modadd", "checksum operator: modadd, xor, onescomp")
	flag.Parse()

	kind, err := parseKind(*op)
	if err != nil {
		fatal(err)
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		fatal(err)
	}
	flipList, err := parseInts(*flips)
	if err != nil {
		fatal(err)
	}

	patterns := []faults.Pattern{faults.AllZero, faults.AllOne, faults.Random}
	fmt.Printf("Table 1: percentage of undetected errors with %s checksums (%d trials)\n\n", kind, *trials)
	fmt.Printf("%-10s %-9s | %-10s %-10s %-11s | %-10s %-10s %-11s\n",
		"", "", "One checksum", "", "", "Two checksums", "", "")
	fmt.Printf("%-10s %-9s | %-10s %-10s %-11s | %-10s %-10s %-11s\n",
		"#bit-flips", "N", "All 0 bits", "All 1 bits", "Random bits",
		"All 0 bits", "All 1 bits", "Random bits")
	for _, k := range flipList {
		for _, n := range sizeList {
			fmt.Printf("%-10d %-9d |", k, n)
			for _, dual := range []bool{false, true} {
				for _, p := range patterns {
					r := faults.RunCoverage(faults.CoverageConfig{
						Kind: kind, Words: n, BitFlips: k, Pattern: p,
						Dual: dual, Trials: *trials, Seed: *seed,
					})
					fmt.Printf(" %-10s", fmt.Sprintf("%.3f%%", r.UndetectedPercent()))
				}
				if !dual {
					fmt.Printf(" |")
				}
			}
			fmt.Println()
		}
	}
}

func parseKind(s string) (checksum.Kind, error) {
	switch s {
	case "modadd":
		return checksum.ModAdd, nil
	case "xor":
		return checksum.XOR, nil
	case "onescomp":
		return checksum.OnesComp, nil
	}
	return 0, fmt.Errorf("unknown operator %q", s)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultcov:", err)
	os.Exit(1)
}
