package instrument

import (
	"testing"

	"defuse/internal/lang"
	"defuse/telemetry"
)

// Compile-path telemetry: instrumentation must report per-phase wall time in
// the Report, emit one plan.chosen event per protected variable, and record
// applied optimizations (split.applied, inspector.hoisted) with counts.

func TestInstrumentPhaseTimings(t *testing.T) {
	prog, err := lang.Parse(choleskySrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Instrument(prog, Options{Split: true, Inspector: true})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"pdg.extract":         false,
		"dependence.analysis": false,
		"polyhedral.counting": false,
		"classify":            false,
		"rewrite":             false,
		"check":               false,
	}
	for _, ph := range res.Report.Phases {
		if ph.Duration < 0 {
			t.Errorf("phase %s has negative duration %v", ph.Phase, ph.Duration)
		}
		if _, ok := want[ph.Phase]; ok {
			want[ph.Phase] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("phase %s missing from Report.Phases %v", name, res.Report.Phases)
		}
	}
}

func TestInstrumentEventsAndMetrics(t *testing.T) {
	prog, err := lang.Parse(cgishSrc)
	if err != nil {
		t.Fatal(err)
	}
	sink := &telemetry.Collector{}
	reg := telemetry.NewRegistry()
	res, err := Instrument(prog, Options{Split: true, Inspector: true, Trace: sink, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	plans := sink.Named(telemetry.EvPlanChosen)
	if want := len(res.Report.Plans); len(plans) != want {
		t.Errorf("plan.chosen events = %d, want %d (one per variable)", len(plans), want)
	}
	for _, ev := range plans {
		v, _ := ev.Fields["variable"].(string)
		plan, _ := ev.Fields["plan"].(string)
		if got, ok := res.Report.Plans[v]; !ok || string(got) != plan {
			t.Errorf("plan.chosen{%s=%s} does not match report plan %v", v, plan, res.Report.Plans[v])
		}
	}

	if res.Report.SplitSegments > 0 {
		ev := sink.Named(telemetry.EvSplitApplied)
		if len(ev) != 1 || ev[0].Fields["segments"] != res.Report.SplitSegments {
			t.Errorf("split.applied events %v do not carry segments=%d", ev, res.Report.SplitSegments)
		}
	}
	if res.Report.InspectorsHoisted > 0 {
		ev := sink.Named(telemetry.EvInspectorHoisted)
		if len(ev) != 1 || ev[0].Fields["loops"] != res.Report.InspectorsHoisted {
			t.Errorf("inspector.hoisted events %v do not carry loops=%d", ev, res.Report.InspectorsHoisted)
		}
	}
	if sink.Count(telemetry.EvCompilePhase) == 0 {
		t.Error("no compile.phase events emitted")
	}
	if res.Report.ChecksumStmts <= 0 {
		t.Errorf("ChecksumStmts = %d, want > 0", res.Report.ChecksumStmts)
	}

	var planTotal uint64
	phaseHistSeen := false
	for _, ms := range reg.Snapshot().Metrics {
		switch ms.Name {
		case "defuse_plans_total":
			planTotal += uint64(ms.Value)
		case "defuse_phase_seconds":
			if ms.Labels["component"] == "instrument" {
				phaseHistSeen = true
			}
		}
	}
	if want := uint64(len(res.Report.Plans)); planTotal != want {
		t.Errorf("defuse_plans_total sums to %d, want %d", planTotal, want)
	}
	if !phaseHistSeen {
		t.Error("defuse_phase_seconds{component=instrument} not recorded")
	}
}

func TestPlanCounts(t *testing.T) {
	prog, err := lang.Parse(cgishSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Instrument(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Report.PlanCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(res.Report.Plans) {
		t.Errorf("PlanCounts total %d != %d plans", total, len(res.Report.Plans))
	}
}
