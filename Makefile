GO ?= go

.PHONY: all build test test-short vet fmt fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fails if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench . -benchtime 1x ./rt/ ./internal/checksum/

ci: build vet fmt-check test
