package poly

import "fmt"

// Constraint is a single affine constraint: E == 0 (when Equality is true) or
// E >= 0 (otherwise).
type Constraint struct {
	E        LinExpr
	Equality bool
}

// EqZero returns the constraint e == 0.
func EqZero(e LinExpr) Constraint { return Constraint{E: e, Equality: true} }

// GeZero returns the constraint e >= 0.
func GeZero(e LinExpr) Constraint { return Constraint{E: e} }

// Eq returns the constraint a == b.
func Eq(a, b LinExpr) Constraint { return EqZero(a.Sub(b)) }

// Ge returns the constraint a >= b.
func Ge(a, b LinExpr) Constraint { return GeZero(a.Sub(b)) }

// Le returns the constraint a <= b.
func Le(a, b LinExpr) Constraint { return GeZero(b.Sub(a)) }

// Lt returns the integer constraint a < b, i.e. a <= b-1.
func Lt(a, b LinExpr) Constraint { return GeZero(b.Sub(a).AddConst(-1)) }

// Gt returns the integer constraint a > b.
func Gt(a, b LinExpr) Constraint { return GeZero(a.Sub(b).AddConst(-1)) }

// String renders the constraint, e.g. "n - j - 1 >= 0".
func (c Constraint) String() string {
	op := ">="
	if c.Equality {
		op = "="
	}
	return fmt.Sprintf("%s %s 0", c.E.String(), op)
}

// Rename returns the constraint with variables renamed through m.
func (c Constraint) Rename(m map[string]string) Constraint {
	return Constraint{E: c.E.Rename(m), Equality: c.Equality}
}

// Subst returns the constraint with v replaced by f.
func (c Constraint) Subst(v string, f LinExpr) Constraint {
	return Constraint{E: c.E.Subst(v, f), Equality: c.Equality}
}

// Holds evaluates the constraint under env. The second result is false if a
// variable was missing from env.
func (c Constraint) Holds(env map[string]int64) (bool, bool) {
	val, complete := c.E.Eval(env)
	if c.Equality {
		return val == 0, complete
	}
	return val >= 0, complete
}

// Negate returns the constraints describing the integer complement of c.
// For an inequality e >= 0 the complement is the single constraint
// -e - 1 >= 0; for an equality e == 0 it is the disjunction
// {e - 1 >= 0} or {-e - 1 >= 0}, hence a slice.
func (c Constraint) Negate() []Constraint {
	if c.Equality {
		return []Constraint{
			GeZero(c.E.AddConst(-1)),
			GeZero(c.E.Neg().AddConst(-1)),
		}
	}
	return []Constraint{GeZero(c.E.Neg().AddConst(-1))}
}

// normState classifies a constraint after normalization.
type normState int

const (
	normKeep    normState = iota // constraint retained
	normDrop                     // trivially true, drop it
	normInfeasy                  // trivially false, system is empty
)

// normalize tightens a constraint over the integers: inequality coefficients
// are divided by their gcd with the constant floored (exact for integer
// points); equalities whose constant is not divisible by the coefficient gcd
// are infeasible. Constant-only constraints are resolved outright.
func (c Constraint) normalize() (Constraint, normState) {
	if c.E.IsConst() {
		if c.Equality {
			if c.E.k == 0 {
				return c, normDrop
			}
			return c, normInfeasy
		}
		if c.E.k >= 0 {
			return c, normDrop
		}
		return c, normInfeasy
	}
	g := c.E.contentGCD()
	if g <= 1 {
		return c, normKeep
	}
	if c.Equality {
		if c.E.k%g != 0 {
			return c, normInfeasy
		}
		e := LinExpr{coeffs: make(map[string]int64, len(c.E.coeffs)), k: c.E.k / g}
		for v, k := range c.E.coeffs {
			e.coeffs[v] = k / g
		}
		return Constraint{E: e, Equality: true}, normKeep
	}
	e := LinExpr{coeffs: make(map[string]int64, len(c.E.coeffs)), k: floorDiv(c.E.k, g)}
	for v, k := range c.E.coeffs {
		e.coeffs[v] = k / g
	}
	return Constraint{E: e}, normKeep
}

// key returns a canonical string used for constraint deduplication.
func (c Constraint) key() string { return c.String() }
