package codegen_test

import (
	"context"
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"defuse/internal/bench"
	"defuse/internal/codegen"
	"defuse/internal/faults"
	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/recovery"
	"defuse/internal/wal"
)

// Context cancellation mid-epoch, for both backends. A cancelled epoch must
// behave exactly like a crashed one: the tracker and memory roll back to the
// epoch's entry checkpoint and the epoch re-executes cleanly, and under the
// durable supervisor the cancelled epoch is never sealed into the WAL — a
// resume starts from the last boundary that actually verified.

// cancelScale is larger than diffScale so every epoch spans comfortably
// more statements/ticks than the backends' 256-step cancellation poll.
const cancelScale = 0.01

const cancelEpochs = 4

// cancelEpoch is the interior epoch the tests cancel inside.
const cancelEpoch = 2

// balancedSource is a hand-instrumented, epoch-balanced kernel: every outer
// iteration folds each value into the def and use sides symmetrically, so
// the def/use identity holds at EVERY iteration boundary, not just the
// program's post-dominator. That is the soundness condition of boundary
// verification, which the durable supervisor performs — the Table 2 kernels
// are only post-dominator-balanced and cannot seal interior epochs.
const balancedSource = `
program balanced(n)
float A[n], B[n];
for i = 0 to n - 1 {
  A[i] = B[i] + 1.5;
  add_to_chksm(def_cs, A[i], 1);
  add_to_chksm(e_def_cs, A[i], 1);
  B[i] = A[i] * 2.0;
  add_to_chksm(use_cs, A[i], 1);
  add_to_chksm(e_use_cs, A[i], 1);
}
`

// cancelBackend extends the faults backend surface with context arming and
// step-hook access, the SetContext path under test.
type cancelBackend interface {
	faults.KernelBackend
	SetContext(ctx context.Context)
	SetStepHook(h func(step uint64))
}

type interpCancel struct{ *faults.InterpKernelBackend }

func (b interpCancel) SetContext(ctx context.Context)  { b.M.SetContext(ctx) }
func (b interpCancel) SetStepHook(h func(step uint64)) { b.M.SetStepHook(h) }

type codegenCancel struct{ *faults.CodegenKernelBackend }

func (b codegenCancel) SetContext(ctx context.Context)  { b.M.SetContext(ctx) }
func (b codegenCancel) SetStepHook(h func(step uint64)) { b.M.SetStepHook(h) }

// buildBackend constructs an initialized backend of the requested kind.
func buildBackend(t *testing.T, kind string, prog *lang.Program, params map[string]int64, init func(bench.DataHost)) cancelBackend {
	t.Helper()
	switch kind {
	case "interp":
		m, err := interp.New(prog, params)
		if err != nil {
			t.Fatal(err)
		}
		init(m)
		be, err := faults.NewInterpKernelBackend(m, cancelEpochs)
		if err != nil {
			t.Fatal(err)
		}
		return interpCancel{be}
	case "codegen":
		m, err := codegen.MachineFor(prog, params)
		if err != nil {
			t.Fatal(err)
		}
		unit, err := codegen.Compile(prog)
		if err != nil {
			t.Fatal(err)
		}
		init(m)
		be, err := faults.NewCodegenKernelBackend(m, unit, cancelEpochs)
		if err != nil {
			t.Fatal(err)
		}
		return codegenCancel{be}
	}
	t.Fatalf("unknown backend %q", kind)
	return nil
}

// jacobiBuilder returns a constructor for the jacobi1d Resilient kernel —
// a real instrumented benchmark for the in-memory rollback test.
func jacobiBuilder(t *testing.T) func(kind string) cancelBackend {
	t.Helper()
	for _, b := range bench.Suite() {
		if b.Name != "jacobi1d" {
			continue
		}
		prog, err := b.BuildVariant(bench.Resilient)
		if err != nil {
			t.Fatal(err)
		}
		params := b.Params(cancelScale)
		return func(kind string) cancelBackend {
			return buildBackend(t, kind, prog, params, func(h bench.DataHost) {
				b.Init(h, params, rand.New(rand.NewSource(7)))
			})
		}
	}
	t.Fatal("jacobi1d not in suite")
	return nil
}

// balancedBuilder returns a constructor for the epoch-balanced kernel used
// by the durable WAL test.
func balancedBuilder(t *testing.T) func(kind string) cancelBackend {
	t.Helper()
	prog, err := lang.Parse(balancedSource)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"n": 4000}
	return func(kind string) cancelBackend {
		return buildBackend(t, kind, prog, params, func(h bench.DataHost) {
			rng := rand.New(rand.NewSource(7))
			if err := h.FillFloat("B", func(int64) float64 { return rng.Float64()*4 - 2 }); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// epochSteps runs a clean reference and returns the cumulative step counter
// at each epoch's exit plus the final memory words.
func epochSteps(t *testing.T, be cancelBackend) ([]uint64, []uint64) {
	t.Helper()
	var last uint64
	be.SetStepHook(func(step uint64) { last = step })
	var exits []uint64
	for k := 0; k < cancelEpochs; k++ {
		if err := be.RunEpoch(k); err != nil {
			t.Fatalf("reference epoch %d: %v", k, err)
		}
		exits = append(exits, last)
	}
	be.SetStepHook(nil)
	return exits, be.Mem().Words()
}

// cancelTarget picks a step count halfway into the cancel epoch — far from
// both boundaries and past at least one cancellation poll.
func cancelTarget(t *testing.T, exits []uint64) uint64 {
	t.Helper()
	span := exits[cancelEpoch] - exits[cancelEpoch-1]
	if span < 600 {
		t.Fatalf("epoch %d spans only %d steps; cancellation poll untestable", cancelEpoch, span)
	}
	return exits[cancelEpoch-1] + span/2
}

// armCancel installs a step hook that cancels the context at the target
// step and arms the machine with it.
func armCancel(be cancelBackend, target uint64) context.CancelFunc {
	ctx, cancel := context.WithCancel(context.Background())
	be.SetStepHook(func(step uint64) {
		if step >= target {
			cancel()
		}
	})
	be.SetContext(ctx)
	return cancel
}

// diffWords asserts two memories are bit-identical.
func diffWords(t *testing.T, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("memory size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d = %#x, reference %#x", i, got[i], want[i])
		}
	}
}

// TestCancelMidEpochRollback cancels a context partway through an interior
// epoch of a real instrumented kernel and asserts the cancelled epoch's
// entry checkpoint is still a valid restore point: after rollback the epoch
// re-executes cleanly and the run finishes with the exact reference state
// and verified checksums, on both backends.
func TestCancelMidEpochRollback(t *testing.T) {
	build := jacobiBuilder(t)
	for _, kind := range []string{"interp", "codegen"} {
		t.Run(kind, func(t *testing.T) {
			exits, wantWords := epochSteps(t, build(kind))
			target := cancelTarget(t, exits)

			be := build(kind)
			cancel := armCancel(be, target)
			defer cancel()
			for k := 0; k < cancelEpochs; k++ {
				if k != cancelEpoch {
					if err := be.RunEpoch(k); err != nil {
						t.Fatalf("epoch %d: %v", k, err)
					}
					continue
				}
				snap := be.Snapshot()
				err := be.RunEpoch(k)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled epoch: got %v, want context.Canceled", err)
				}
				// Roll back and re-execute with a live context: the partial
				// epoch must leave no trace in memory or the tracker.
				be.SetStepHook(nil)
				be.SetContext(context.Background())
				if err := be.Restore(snap); err != nil {
					t.Fatalf("restore after cancel: %v", err)
				}
				if err := be.RunEpoch(k); err != nil {
					t.Fatalf("re-executed epoch %d: %v", k, err)
				}
			}
			if err := be.Scrub(); err != nil {
				t.Fatalf("scrub after rollback run: %v", err)
			}
			if err := be.Verify(); err != nil {
				t.Fatalf("verify after rollback run: %v", err)
			}
			diffWords(t, be.Mem().Words(), wantWords)
		})
	}
}

// TestCancelDurableWALUnsealed runs the durable supervisor over an
// epoch-balanced kernel, cancels it mid-epoch, and asserts the WAL holds
// seals only for boundaries that verified — then resumes from that WAL to a
// bit-identical final state, on both backends.
func TestCancelDurableWALUnsealed(t *testing.T) {
	build := balancedBuilder(t)
	pol := recovery.Policy{MaxRetries: 1, MaxRestarts: 1}

	for _, kind := range []string{"interp", "codegen"} {
		t.Run(kind, func(t *testing.T) {
			exits, wantWords := epochSteps(t, build(kind))
			target := cancelTarget(t, exits)

			walPath := filepath.Join(t.TempDir(), "kernel.wal")
			be := build(kind)
			cancel := armCancel(be, target)
			defer cancel()
			out, err := superviseDurable(t, be, pol, walPath)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled durable run: got err %v, want context.Canceled", err)
			}
			if out.Seals != cancelEpoch {
				t.Fatalf("sealed %d epochs, want %d (cancelled epoch must stay unsealed)", out.Seals, cancelEpoch)
			}

			// The WAL's newest record resumes from exactly the cancelled
			// epoch: earlier boundaries sealed, the cancelled one absent.
			scan, err := wal.Recover(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if len(scan.Records) != cancelEpoch {
				t.Fatalf("WAL holds %d records, want %d", len(scan.Records), cancelEpoch)
			}
			newest := scan.Records[len(scan.Records)-1]
			if got := binary.LittleEndian.Uint64(newest.Payload[8:]); got != uint64(cancelEpoch) {
				t.Fatalf("newest record resumes at epoch %d, want %d", got, cancelEpoch)
			}

			// Resume on a fresh machine: picks up after the last sealed
			// boundary and completes to the reference state.
			be2 := build(kind)
			out2, err := superviseDurable(t, be2, pol, walPath)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !out2.Resumed || out2.ResumeEpoch != cancelEpoch {
				t.Fatalf("resume: Resumed=%v ResumeEpoch=%d, want true/%d", out2.Resumed, out2.ResumeEpoch, cancelEpoch)
			}
			if out2.Tainted || out2.Detected {
				t.Fatalf("resumed run not clean: %+v", out2.Outcome)
			}
			diffWords(t, be2.Mem().Words(), wantWords)
		})
	}
}

// superviseDurable dispatches to the backend's durable supervisor; the
// machine's own armed context is respected via the supervisor's ctx too.
func superviseDurable(t *testing.T, be cancelBackend, pol recovery.Policy, path string) (recovery.DurableOutcome, error) {
	t.Helper()
	ctx := context.Background()
	switch v := be.(type) {
	case interpCancel:
		return v.P.SuperviseDurable(ctx, pol, path)
	case codegenCancel:
		return v.P.SuperviseDurable(ctx, pol, path)
	}
	t.Fatal("unknown backend")
	return recovery.DurableOutcome{}, nil
}
