package lang_test

import (
	"math/rand"
	"testing"

	"defuse/internal/bench"
	"defuse/internal/lang"
	"defuse/internal/progen"
)

// The printer must be a faithful inverse of the parser: parse → Print →
// parse must converge, with the second print byte-identical to the first
// (Print is the canonical form). Every tool that round-trips programs
// through text — golden files, WAL fingerprints, the native source
// generator's registry — relies on this.

// roundTrip asserts print/parse convergence for one program.
func roundTrip(t *testing.T, label string, prog *lang.Program) {
	t.Helper()
	first := lang.Print(prog)
	reparsed, err := lang.Parse(first)
	if err != nil {
		t.Fatalf("%s: printed program does not re-parse: %v\n%s", label, err, first)
	}
	second := lang.Print(reparsed)
	if first != second {
		t.Fatalf("%s: print/parse did not converge:\nfirst:\n%s\nsecond:\n%s", label, first, second)
	}
	// The reparsed program must be semantically intact, not just printable.
	if err := lang.Check(prog); err == nil {
		if err := lang.Check(reparsed); err != nil {
			t.Fatalf("%s: original checks but reparse does not: %v", label, err)
		}
	}
}

// TestRoundTripKernels round-trips every Table 2 benchmark in all three
// variants — raw and instrumented (the instrumenter emits synthesized AST
// nodes that never came from the parser, the printer's hardest inputs).
func TestRoundTripKernels(t *testing.T) {
	for _, b := range bench.Suite() {
		for _, v := range []bench.Variant{bench.Original, bench.Resilient, bench.ResilientOpt} {
			prog, err := b.BuildVariant(v)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, b.Name+"/"+string(v), prog)
		}
	}
}

// TestRoundTripGenerated round-trips generated programs, affine and
// indirect, over a deterministic seed sweep.
func TestRoundTripGenerated(t *testing.T) {
	trials := 150
	if testing.Short() {
		trials = 25
	}
	for trial := 0; trial < trials; trial++ {
		cfg := progen.DefaultConfig()
		cfg.WithIndirect = trial%3 == 2
		gp := progen.Generate(rand.New(rand.NewSource(int64(40000+trial))), cfg)
		prog, err := lang.Parse(gp.Source)
		if err != nil {
			t.Fatalf("trial %d: generated program does not parse: %v\n%s", trial, err, gp.Source)
		}
		roundTrip(t, "generated", prog)
	}
}

// FuzzLangRoundTrip fuzzes print/parse convergence over the generator's
// seed space.
func FuzzLangRoundTrip(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed, seed%2 == 0)
	}
	f.Fuzz(func(t *testing.T, seed int64, indirect bool) {
		cfg := progen.DefaultConfig()
		cfg.WithIndirect = indirect
		gp := progen.Generate(rand.New(rand.NewSource(seed)), cfg)
		prog, err := lang.Parse(gp.Source)
		if err != nil {
			t.Fatalf("generated program does not parse: %v\n%s", err, gp.Source)
		}
		roundTrip(t, "fuzz", prog)
	})
}
