package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// spanCollector is an in-memory SpanSink for tests.
type spanCollector struct {
	spans []SpanData
}

func (c *spanCollector) RecordSpan(d SpanData) { c.spans = append(c.spans, d) }

func TestTracerParentLinks(t *testing.T) {
	var c spanCollector
	tr := NewTracer(&c)
	root := tr.Start(SpanContext{}, "run", Int("epochs", 3))
	child := tr.Start(root.Context(), "epoch", Int("epoch", 0))
	grand := tr.Start(child.Context(), "verify")
	grand.EndErr(nil)
	child.End()
	root.End(Bool("detected", false))

	if len(c.spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(c.spans))
	}
	verify, epoch, run := c.spans[0], c.spans[1], c.spans[2]
	if run.Parent != 0 {
		t.Errorf("root has parent %d", run.Parent)
	}
	if run.Trace == 0 || run.Trace != epoch.Trace || run.Trace != verify.Trace {
		t.Errorf("trace ids not shared: %d %d %d", run.Trace, epoch.Trace, verify.Trace)
	}
	if epoch.Parent != run.ID || verify.Parent != epoch.ID {
		t.Errorf("parent chain broken: verify<-%d epoch<-%d run=%d", verify.Parent, epoch.Parent, run.ID)
	}
	if run.ID == epoch.ID || epoch.ID == verify.ID {
		t.Error("span ids not unique")
	}
	// EndErr(nil) appends ok=true.
	found := false
	for _, a := range verify.Attrs {
		if a.Key == "ok" && a.Value == true {
			found = true
		}
	}
	if !found {
		t.Errorf("EndErr(nil) did not record ok=true: %+v", verify.Attrs)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	s := tr.Start(SpanContext{}, "x", Int("k", 1))
	s = s.SetAttr(String("a", "b"))
	if s.Context() != (SpanContext{}) {
		t.Errorf("inert span has context %+v", s.Context())
	}
	s.End()       // must not panic
	s.EndErr(nil) // must not panic
	child := tr.Start(s.Context(), "y")
	child.End()
}

func TestSpanMonotonicTimes(t *testing.T) {
	var c spanCollector
	tr := NewTracer(&c)
	parent := tr.Start(SpanContext{}, "outer")
	time.Sleep(time.Millisecond)
	inner := tr.Start(parent.Context(), "inner")
	time.Sleep(time.Millisecond)
	inner.End()
	parent.End()

	in, out := c.spans[0], c.spans[1]
	if in.StartOff < out.StartOff {
		t.Errorf("child started (off %v) before parent (off %v)", in.StartOff, out.StartOff)
	}
	if in.Duration <= 0 || out.Duration <= 0 {
		t.Errorf("non-positive durations: %v %v", in.Duration, out.Duration)
	}
	if out.Duration < in.Duration {
		t.Errorf("parent (%v) shorter than enclosed child (%v)", out.Duration, in.Duration)
	}
}

// TestChromeTraceRoundTrip checks the Perfetto-loadable export: valid JSON in
// the object form, monotonically non-decreasing timestamps, and every
// parent_id resolving to an exported span that started no later than its
// child.
func TestChromeTraceRoundTrip(t *testing.T) {
	buf := NewSpanBuffer(0)
	tr := NewTracer(buf)
	for trace := 0; trace < 3; trace++ {
		root := tr.Start(SpanContext{}, "chunk", Int("chunk", trace))
		for i := 0; i < 4; i++ {
			child := tr.Start(root.Context(), "trial", Int("trial", i))
			leaf := tr.Start(child.Context(), "verify")
			leaf.EndErr(nil)
			child.End()
		}
		root.End()
	}

	var out bytes.Buffer
	if err := buf.WriteChromeTrace(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 27 {
		t.Fatalf("exported %d events, want 27", len(doc.TraceEvents))
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	starts := map[string]int64{} // span_id -> ts
	last := int64(-1)
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Cat != "defuse" {
			t.Errorf("event %q: ph=%q cat=%q", e.Name, e.Ph, e.Cat)
		}
		if e.Ts < last {
			t.Errorf("timestamps regress: %d after %d", e.Ts, last)
		}
		last = e.Ts
		if e.Dur < 0 {
			t.Errorf("negative duration %d", e.Dur)
		}
		id, ok := e.Args["span_id"].(string)
		if !ok || id == "" {
			t.Fatalf("event %q missing span_id arg", e.Name)
		}
		starts[id] = e.Ts
	}
	for _, e := range doc.TraceEvents {
		p, ok := e.Args["parent_id"].(string)
		if !ok {
			if e.Name != "chunk" {
				t.Errorf("non-root %q has no parent_id", e.Name)
			}
			continue
		}
		pts, ok := starts[p]
		if !ok {
			t.Errorf("event %q: parent %s not exported", e.Name, p)
			continue
		}
		if pts > e.Ts {
			t.Errorf("event %q starts at %d before its parent at %d", e.Name, e.Ts, pts)
		}
	}
}

func TestSpanBufferBounded(t *testing.T) {
	buf := NewSpanBuffer(2)
	tr := NewTracer(buf)
	for i := 0; i < 5; i++ {
		tr.Start(SpanContext{}, "s").End()
	}
	if n := len(buf.Spans()); n != 2 {
		t.Errorf("buffer holds %d spans, cap 2", n)
	}
	if d := buf.Dropped(); d != 3 {
		t.Errorf("dropped = %d, want 3", d)
	}
}

func TestSpanEventsAdapter(t *testing.T) {
	var c Collector
	tr := NewTracer(SpanEvents(&c))
	root := tr.Start(SpanContext{}, "run")
	child := tr.Start(root.Context(), "epoch", Int("epoch", 7))
	child.End()
	root.End()

	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("emitted %d events, want 2", len(evs))
	}
	e := evs[0]
	if e.Name != EvSpan || e.Fields["name"] != "epoch" {
		t.Fatalf("first event = %+v", e)
	}
	if e.Fields["attr_epoch"] != int64(7) {
		t.Errorf("attr_epoch = %v", e.Fields["attr_epoch"])
	}
	parent, ok := e.Fields["parent"].(string)
	if !ok || len(parent) != 16 || strings.Trim(parent, "0123456789abcdef") != "" {
		t.Errorf("parent field = %v", e.Fields["parent"])
	}
	if _, ok := evs[1].Fields["parent"]; ok {
		t.Error("root span event has a parent field")
	}
}
