package faults

import "testing"

func TestLiveSamplerDeterministic(t *testing.T) {
	a := NewLiveSampler(0.05, 42)
	b := NewLiveSampler(0.05, 42)
	for id := uint64(0); id < 1000; id++ {
		if a.Sample(id) != b.Sample(id) {
			t.Fatalf("samplers with identical config disagree on id %d", id)
		}
		if a.Sample(id) {
			p1 := a.Plan(id, 64, 8)
			p2 := b.Plan(id, 64, 8)
			if p1 != p2 {
				t.Fatalf("plans disagree on id %d: %+v vs %+v", id, p1, p2)
			}
			if p1.Epoch < 0 || p1.Epoch >= 8 || p1.Word < 0 || p1.Word >= 64 || p1.Bit < 0 || p1.Bit > 63 {
				t.Fatalf("plan out of range: %+v", p1)
			}
		}
	}
}

func TestLiveSamplerRate(t *testing.T) {
	const n = 100_000
	for _, rate := range []float64{0.01, 0.05, 0.5} {
		s := NewLiveSampler(rate, 7)
		hits := 0
		for id := uint64(0); id < n; id++ {
			if s.Sample(id) {
				hits++
			}
		}
		got := float64(hits) / n
		// The hash is uniform; allow generous sampling noise.
		if got < rate*0.7 || got > rate*1.3 {
			t.Errorf("rate %v: observed %v (%d/%d hits)", rate, got, hits, n)
		}
	}
}

func TestLiveSamplerEdgeRates(t *testing.T) {
	never := NewLiveSampler(0, 1)
	always := NewLiveSampler(1, 1)
	for id := uint64(0); id < 1000; id++ {
		if never.Sample(id) {
			t.Fatalf("rate 0 sampled id %d", id)
		}
		if !always.Sample(id) {
			t.Fatalf("rate 1 skipped id %d", id)
		}
	}
	var nilSampler *LiveSampler
	if nilSampler.Sample(3) {
		t.Error("nil sampler sampled")
	}
}

// TestLiveSamplerAddrFractionZeroBackCompat: the kind draw extends the
// derivation chain, so a zero address fraction reproduces the flip-only
// sampler's plans exactly — two parties disagreeing only on the fraction
// still agree on every flip coordinate.
func TestLiveSamplerAddrFractionZeroBackCompat(t *testing.T) {
	plain := NewLiveSampler(0.2, 5)
	frac0 := NewLiveSampler(0.2, 5).WithAddrFraction(0)
	for id := uint64(0); id < 2000; id++ {
		if !plain.Sample(id) {
			continue
		}
		p, q := plain.Plan(id, 64, 8), frac0.Plan(id, 64, 8)
		if p != q {
			t.Fatalf("id %d: frac-0 plan %+v != plain plan %+v", id, q, p)
		}
		if p.Kind != LiveFlip || p.Partner != p.Word {
			t.Fatalf("id %d: flip-only sampler produced %+v", id, p)
		}
	}
}

// TestLiveSamplerAddrFractionPlans: address-fault plans keep every flip
// coordinate unchanged, pick a valid partner that is never the intended
// word, and appear at roughly the configured fraction of hits.
func TestLiveSamplerAddrFractionPlans(t *testing.T) {
	const words, epochs = 64, 8
	plain := NewLiveSampler(1, 5)
	s := NewLiveSampler(1, 5).WithAddrFraction(0.5)
	addr := 0
	const n = 4000
	for id := uint64(0); id < n; id++ {
		p := s.Plan(id, words, epochs)
		q := plain.Plan(id, words, epochs)
		if p.Epoch != q.Epoch || p.Word != q.Word || p.Bit != q.Bit {
			t.Fatalf("id %d: kind draw disturbed flip coordinates: %+v vs %+v", id, p, q)
		}
		if p.Kind == LiveAddrWrong {
			addr++
			if p.Partner < 0 || p.Partner >= words || p.Partner == p.Word {
				t.Fatalf("id %d: invalid partner %d for word %d", id, p.Partner, p.Word)
			}
		} else if p.Partner != p.Word {
			t.Fatalf("id %d: flip plan carries partner %d != word %d", id, p.Partner, p.Word)
		}
	}
	frac := float64(addr) / n
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("address fraction 0.5: observed %v (%d/%d)", frac, addr, n)
	}
}

// TestLiveSamplerAddrFractionSingleWord: a one-word region has no wrong
// location, so every plan must degrade to a flip even at fraction 1.
func TestLiveSamplerAddrFractionSingleWord(t *testing.T) {
	s := NewLiveSampler(1, 9).WithAddrFraction(1)
	for id := uint64(0); id < 200; id++ {
		if p := s.Plan(id, 1, 4); p.Kind != LiveFlip {
			t.Fatalf("id %d: address fault planned over a 1-word region: %+v", id, p)
		}
	}
}

func TestLiveSamplerSeedIndependence(t *testing.T) {
	a := NewLiveSampler(0.5, 1)
	b := NewLiveSampler(0.5, 2)
	same := 0
	for id := uint64(0); id < 1000; id++ {
		if a.Sample(id) == b.Sample(id) {
			same++
		}
	}
	// Different seeds must produce different hit sets (statistically ~50%
	// agreement at rate 0.5; identical streams would agree on all 1000).
	if same > 950 {
		t.Errorf("seeds 1 and 2 agree on %d/1000 ids — streams not independent", same)
	}
}
