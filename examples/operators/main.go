// Operators: the Section 6.1 checksum-operator study as a runnable demo.
// Compares the fault coverage of integer modulo addition (the paper's
// choice) against XOR and one's-complement addition, and shows the
// two-checksum (address-rotated) scheme eliminating the residual two-bit
// escapes — the experiment behind Table 1 and the Maxino comparison the
// paper cites.
//
//	go run ./examples/operators
package main

import (
	"fmt"

	"defuse"
	"defuse/internal/checksum"
	"defuse/internal/faults"
)

func main() {
	const (
		words  = 1000
		trials = 30000
	)
	fmt.Printf("fault coverage over %d-word arrays, %d trials, random data\n\n", words, trials)
	fmt.Printf("%-22s %-12s %-12s\n", "operator", "2-bit flips", "3-bit flips")
	for _, k := range []checksum.Kind{checksum.ModAdd, checksum.XOR, checksum.OnesComp} {
		var cells []string
		for _, flips := range []int{2, 3} {
			r, err := defuse.FaultCoverage(defuse.CoverageConfig{
				Kind: k, Words: words, BitFlips: flips,
				Pattern: faults.Random, Trials: trials, Seed: 1,
			})
			if err != nil {
				panic(err)
			}
			cells = append(cells, fmt.Sprintf("%.3f%%", r.UndetectedPercent()))
		}
		fmt.Printf("%-22s %-12s %-12s\n", k.String()+" (1 checksum)", cells[0], cells[1])
	}
	// The two-checksum scheme: the second checksum folds each word rotated
	// by an address-derived amount, so aligned cancellations un-align.
	var cells []string
	for _, flips := range []int{2, 3} {
		r, err := defuse.FaultCoverage(defuse.CoverageConfig{
			Kind: checksum.ModAdd, Words: words, BitFlips: flips,
			Pattern: faults.Random, Trials: trials, Seed: 1, Dual: true,
		})
		if err != nil {
			panic(err)
		}
		cells = append(cells, fmt.Sprintf("%.3f%%", r.UndetectedPercent()))
	}
	fmt.Printf("%-22s %-12s %-12s\n", "modadd (2 checksums)", cells[0], cells[1])

	fmt.Println("\nwhy XOR is weaker: flips at the same bit position in two words always")
	fmt.Println("cancel under XOR; under modular addition they only cancel when the")
	fmt.Println("carry chains also agree (Section 5 / Maxino). The paper therefore uses")
	fmt.Println("integer modulo addition, which hardware supports as cheaply as XOR.")
}
