package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestEmitNilSinkIsSafe(t *testing.T) {
	Emit(nil, EvDetection, map[string]any{"x": 1}) // must not panic
}

func TestCollectorCounts(t *testing.T) {
	c := &Collector{}
	Emit(c, EvFaultInjected, map[string]any{"word": 3, "bit": 7})
	Emit(c, EvFaultInjected, nil)
	Emit(c, EvDetection, nil)
	if got := c.Count(EvFaultInjected); got != 2 {
		t.Errorf("fault.injected count = %d, want 2", got)
	}
	if got := c.Count(EvDetection); got != 1 {
		t.Errorf("detection count = %d, want 1", got)
	}
	ev := c.Named(EvFaultInjected)[0]
	if ev.Fields["word"] != 3 || ev.Fields["bit"] != 7 {
		t.Errorf("fields = %v", ev.Fields)
	}
	if ev.Time.IsZero() {
		t.Error("event not timestamped")
	}
}

func TestJSONLSinkWritesParseableLines(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	Emit(s, EvVerifyOK, map[string]any{"def": "0x1"})
	Emit(s, EvVerifyMismatch, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var names []string
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		names = append(names, e.Name)
	}
	if len(names) != 2 || names[0] != EvVerifyOK || names[1] != EvVerifyMismatch {
		t.Errorf("events = %v", names)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	m := Multi(nil, a, nil, b)
	Emit(m, EvDetection, nil)
	if a.Count(EvDetection) != 1 || b.Count(EvDetection) != 1 {
		t.Error("multi sink did not fan out")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	if Multi(a) != Sink(a) {
		t.Error("Multi of one sink should return it directly")
	}
}

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("defuse_test_total", Label{"kind", "a"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	// Same name+labels returns the same instrument.
	if r.Counter("defuse_test_total", Label{"kind", "a"}) != c {
		t.Error("re-registration returned a new counter")
	}
	g := r.Gauge("defuse_test_gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x_total").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x_seconds", DefBuckets()).Observe(0.1)
	if len(r.Snapshot().Metrics) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("defuse_conflict")
	r.Gauge("defuse_conflict")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("defuse_lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Errorf("sum = %v", h.Sum())
	}
	snap := r.Snapshot().Metrics[0]
	wantCum := []uint64{1, 2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %s cumulative = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if snap.Buckets[len(snap.Buckets)-1].LE != "+Inf" {
		t.Error("missing +Inf bucket")
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("defuse_conc_total")
	h := r.Histogram("defuse_conc_seconds", DefBuckets())
	g := r.Gauge("defuse_conc_gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("hist count = %d, want 8000", h.Count())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("defuse_json_total").Add(7)
	r.Histogram("defuse_json_seconds", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("metrics = %d, want 2", len(snap.Metrics))
	}
}

func TestTimePhase(t *testing.T) {
	c := &Collector{}
	r := NewRegistry()
	ran := false
	d := TimePhase(c, r, "compile", "parse", func() { ran = true })
	if !ran || d < 0 {
		t.Error("TimePhase did not run f")
	}
	evs := c.Named(EvCompilePhase)
	if len(evs) != 1 || evs[0].Fields["phase"] != "parse" || evs[0].Fields["component"] != "compile" {
		t.Errorf("events = %v", evs)
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `defuse_phase_seconds_count{component="compile",phase="parse"} 1`) {
		t.Errorf("prometheus output missing phase count:\n%s", buf.String())
	}
	// Nil sink and registry must also work.
	TimePhase(nil, nil, "compile", "parse", func() {})
}
