// Command defusec is the defuse compiler driver: it parses a program in the
// defuse loop language, instruments it with def-use checksum error detection
// (optionally applying index-set splitting and inspector hoisting), prints
// the instrumented program, and can run it on the simulated memory
// subsystem — optionally with an injected fault to demonstrate detection.
//
// Usage:
//
//	defusec [-split] [-inspector] [-analyze] [-run] [-param n=100,...] \
//	        [-inject step:array:index:bit] file.dl
//
// With no file the program is read from standard input.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"defuse/internal/deps"
	"defuse/internal/instrument"
	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/pdg"
	"defuse/internal/usecount"
)

func main() {
	split := flag.Bool("split", false, "apply index-set splitting (Algorithm 2)")
	inspector := flag.Bool("inspector", false, "hoist inspectors for iterative loops (Section 4.2)")
	analyze := flag.Bool("analyze", false, "print dependence and use-count analysis instead of code")
	run := flag.Bool("run", false, "execute the instrumented program on the simulated memory")
	params := flag.String("param", "", "comma-separated parameter values, e.g. n=100,tsteps=5")
	inject := flag.String("inject", "", "inject a fault: step:array:flatIndex:bit")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(src)
	if err != nil {
		fatal(err)
	}

	if *analyze {
		if err := printAnalysis(prog); err != nil {
			fatal(err)
		}
		return
	}

	res, err := instrument.Instrument(prog, instrument.Options{Split: *split, Inspector: *inspector})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "# instrumentation plan:\n%s", indent(res.Report.String(), "# "))
	if !*run {
		fmt.Print(lang.Print(res.Prog))
		return
	}

	pv, err := parseParams(*params)
	if err != nil {
		fatal(err)
	}
	m, err := interp.New(res.Prog, pv)
	if err != nil {
		fatal(err)
	}
	if *inject != "" {
		if err := armInjection(m, *inject); err != nil {
			fatal(err)
		}
	}
	err = m.Run()
	var de *interp.DetectionError
	switch {
	case errors.As(err, &de):
		fmt.Printf("MEMORY ERROR DETECTED: %v\n", de)
	case err != nil:
		fatal(err)
	default:
		fmt.Println("run completed, checksums verified")
	}
	c := m.Counts
	fmt.Printf("ops: %d loads, %d stores, %d arith, %d compare, %d checksum ops\n",
		c.Loads, c.Stores, c.Arith, c.Compare, c.CsOps)
}

func readInput(path string) (string, error) {
	if path == "" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseParams(s string) (map[string]int64, error) {
	out := map[string]int64{}
	if s == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad parameter %q (want name=value)", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad parameter value %q: %v", kv, err)
		}
		out[strings.TrimSpace(parts[0])] = v
	}
	return out, nil
}

func armInjection(m *interp.Machine, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return fmt.Errorf("bad -inject %q (want step:array:flatIndex:bit)", spec)
	}
	step, err1 := strconv.ParseUint(parts[0], 10, 64)
	idx, err2 := strconv.Atoi(parts[2])
	bit, err3 := strconv.Atoi(parts[3])
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("bad -inject %q", spec)
	}
	base, size, err := m.Region(parts[1])
	if err != nil {
		return err
	}
	if idx < 0 || idx >= size {
		return fmt.Errorf("index %d out of range for %s", idx, parts[1])
	}
	fired := false
	m.SetStepHook(func(cur uint64) {
		if !fired && cur == step {
			m.Mem().FlipBit(base+idx, bit)
			fired = true
			fmt.Fprintf(os.Stderr, "# injected bit flip: %s[%d] bit %d at step %d\n",
				parts[1], idx, bit, step)
		}
	})
	return nil
}

func printAnalysis(prog *lang.Program) error {
	model, err := pdg.Extract(prog)
	if err != nil {
		return err
	}
	flow := deps.Analyze(model)
	uc := usecount.Analyze(flow)

	fmt.Println("== statements ==")
	for _, s := range model.Stmts {
		fmt.Printf("%-4s domain=%s\n", s.ID, s.Domain)
		sched := make([]string, len(s.Schedule))
		for i, t := range s.Schedule {
			sched[i] = t.String()
		}
		fmt.Printf("     schedule=[%s] affine=%v\n", strings.Join(sched, ","), s.FullyAffine())
	}
	fmt.Println("== flow dependences ==")
	for _, d := range flow.Deps {
		fmt.Printf("%v\n", d)
	}
	fmt.Println("== use counts ==")
	for _, s := range model.Stmts {
		dc := uc.Defs[s]
		if dc == nil {
			fmt.Printf("%-4s (dynamic)\n", s.ID)
			continue
		}
		fmt.Printf("%-4s writes %s:\n", s.ID, s.Write.Array)
		for _, c := range dc.Contribs {
			fmt.Printf("     -> %s: %s\n", c.Dep.Dst.ID, c.Count)
		}
	}
	fmt.Println("== variable classes ==")
	for _, d := range prog.Decls {
		c := uc.Classes[d.Name]
		if c == nil {
			continue
		}
		if c.Analyzable {
			fmt.Printf("%-10s static\n", d.Name)
		} else {
			fmt.Printf("%-10s dynamic (%s)\n", d.Name, c.Reason)
		}
	}
	return nil
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defusec:", err)
	os.Exit(1)
}
