package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"defuse/internal/wal"
)

// The journal is the service's durability layer: one CRC64-framed,
// fsynced-on-append WAL record per completed request. A SIGKILLed server
// restarts, scans the journal (tolerating a torn tail from a mid-append
// kill), re-verifies the newest valid record by recomputing its reference
// digest from first principles, and resumes appending after the valid
// prefix. VerifyJournal re-executes that check over every record — the
// crash-campaign gate for "zero silent corruption".

// journalRecordSize is the fixed encoding: id(8) kind(1) flags(1) words(4)
// epochs(4) seed(8) digest(8) refDigest(8).
const journalRecordSize = 42

// Flag bits in a journal record.
const (
	flagInjected = 1 << iota
	flagDetected
	flagRecovered
	flagTainted
)

// JournalRecord is one completed request as persisted in the WAL.
type JournalRecord struct {
	ID        uint64
	Kind      string // KindVerify or KindKernel
	Injected  bool
	Detected  bool
	Recovered bool
	Tainted   bool
	Words     int
	Epochs    int
	Seed      uint64
	Digest    uint64
	RefDigest uint64
}

func (r JournalRecord) encode() []byte {
	b := make([]byte, journalRecordSize)
	binary.LittleEndian.PutUint64(b[0:], r.ID)
	if r.Kind == KindKernel {
		b[8] = 1
	}
	var flags byte
	if r.Injected {
		flags |= flagInjected
	}
	if r.Detected {
		flags |= flagDetected
	}
	if r.Recovered {
		flags |= flagRecovered
	}
	if r.Tainted {
		flags |= flagTainted
	}
	b[9] = flags
	binary.LittleEndian.PutUint32(b[10:], uint32(r.Words))
	binary.LittleEndian.PutUint32(b[14:], uint32(r.Epochs))
	binary.LittleEndian.PutUint64(b[18:], r.Seed)
	binary.LittleEndian.PutUint64(b[26:], r.Digest)
	binary.LittleEndian.PutUint64(b[34:], r.RefDigest)
	return b
}

func decodeJournalRecord(b []byte) (JournalRecord, error) {
	if len(b) != journalRecordSize {
		return JournalRecord{}, fmt.Errorf("server: journal record is %d bytes, want %d", len(b), journalRecordSize)
	}
	r := JournalRecord{
		ID:        binary.LittleEndian.Uint64(b[0:]),
		Kind:      KindVerify,
		Words:     int(binary.LittleEndian.Uint32(b[10:])),
		Epochs:    int(binary.LittleEndian.Uint32(b[14:])),
		Seed:      binary.LittleEndian.Uint64(b[18:]),
		Digest:    binary.LittleEndian.Uint64(b[26:]),
		RefDigest: binary.LittleEndian.Uint64(b[34:]),
	}
	if b[8] == 1 {
		r.Kind = KindKernel
	}
	flags := b[9]
	r.Injected = flags&flagInjected != 0
	r.Detected = flags&flagDetected != 0
	r.Recovered = flags&flagRecovered != 0
	r.Tainted = flags&flagTainted != 0
	return r, nil
}

// check re-verifies one record from first principles. For verify jobs the
// reference digest is recomputable from (words, epochs, seed, id); a record
// whose stored reference disagrees with the recomputation was corrupted at
// rest, and a non-tainted record whose result digest disagrees with the
// reference is a silent corruption the detector missed. Kernel references
// are not recomputable here (they come from the server's warmup), so only
// internal consistency is checked.
func (r JournalRecord) check() error {
	if r.Kind == KindVerify {
		ref := ReferenceDigest(r.Words, r.Epochs, r.Seed, r.ID)
		if r.RefDigest != ref {
			return fmt.Errorf("server: journal record %d: stored reference %x, recomputed %x", r.ID, r.RefDigest, ref)
		}
	}
	if !r.Tainted && r.Digest != r.RefDigest {
		return fmt.Errorf("server: journal record %d: silent corruption: digest %x, reference %x", r.ID, r.Digest, r.RefDigest)
	}
	return nil
}

// journal serializes appends from concurrent request workers onto one WAL.
type journal struct {
	mu  sync.Mutex
	log *wal.Log
}

// ResumeInfo reports what the startup scan of the journal found.
type ResumeInfo struct {
	// Records is the number of valid records that survived.
	Records int
	// TornTail reports a mid-append kill whose partial frame was discarded.
	TornTail bool
	// Corrupt reports a CRC-failed frame (scanning stopped there).
	Corrupt bool
	// Reverified reports that the newest valid record passed its
	// from-first-principles re-verification.
	Reverified bool
	// LastID is the newest valid record's request ID (0 when none).
	LastID uint64
}

// openJournal scans path, re-verifies the newest valid record, and returns
// an appendable journal positioned after the valid prefix. A missing or
// unrecoverable log starts fresh; a newest record that fails re-verification
// is an error — the operator must not resume over silent corruption.
func openJournal(path string) (*journal, ResumeInfo, error) {
	info := ResumeInfo{}
	scan, err := wal.Recover(path)
	switch {
	case err == nil:
		info.Records = len(scan.Records)
		info.TornTail = scan.TornTail
		info.Corrupt = scan.Corrupt > 0
		newest := scan.Newest()
		rec, derr := decodeJournalRecord(newest.Payload)
		if derr != nil {
			return nil, info, derr
		}
		if cerr := rec.check(); cerr != nil {
			return nil, info, cerr
		}
		info.Reverified = true
		info.LastID = rec.ID
		log, oerr := wal.Open(scan, wal.Options{})
		if oerr != nil {
			return nil, info, oerr
		}
		return &journal{log: log}, info, nil
	case errors.Is(err, wal.ErrNoCheckpoint), errors.Is(err, wal.ErrCheckpointCorrupt):
		info.TornTail = scan.TornTail
		info.Corrupt = scan.Corrupt > 0
		log, cerr := wal.Create(path, wal.Options{})
		if cerr != nil {
			return nil, info, cerr
		}
		return &journal{log: log}, info, nil
	default:
		return nil, info, err
	}
}

// append seals one completed request into the WAL (fsynced before return).
func (j *journal) append(r JournalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Append(r.encode())
}

// seal closes the WAL cleanly (the drain path's final act).
func (j *journal) seal() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}

// records reports the number of live records.
func (j *journal) records() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Records()
}

// JournalStats summarizes a full journal verification.
type JournalStats struct {
	// Total is the number of valid records scanned.
	Total int
	// Injected / Detected / Recovered tally the records' flags.
	Injected  int
	Detected  int
	Recovered int
	// Tainted counts degraded requests (reported as such — not silent).
	Tainted int
	// TornTail reports a discarded partial final frame.
	TornTail bool
}

// VerifyJournal re-verifies every record in a journal from first principles
// and fails on the first silent corruption: a record whose result digest
// deviates from its (recomputed, for verify jobs) reference without being
// flagged tainted. The crash campaign runs this against the WAL a SIGKILLed
// server left behind and again after the restarted server resumed over it.
func VerifyJournal(path string) (JournalStats, error) {
	stats := JournalStats{}
	scan, err := wal.Recover(path)
	if errors.Is(err, wal.ErrNoCheckpoint) {
		return stats, nil
	}
	if err != nil {
		return stats, err
	}
	stats.TornTail = scan.TornTail
	seen := map[uint64]bool{}
	for _, raw := range scan.Records {
		rec, derr := decodeJournalRecord(raw.Payload)
		if derr != nil {
			return stats, derr
		}
		if cerr := rec.check(); cerr != nil {
			return stats, cerr
		}
		if seen[rec.ID] {
			return stats, fmt.Errorf("server: journal records request %d twice", rec.ID)
		}
		seen[rec.ID] = true
		stats.Total++
		if rec.Injected {
			stats.Injected++
		}
		if rec.Detected {
			stats.Detected++
		}
		if rec.Recovered {
			stats.Recovered++
		}
		if rec.Tainted {
			stats.Tainted++
		}
	}
	return stats, nil
}
