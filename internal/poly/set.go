package poly

import (
	"fmt"
	"sort"
	"strings"
)

// BasicSet is a conjunction of affine constraints over a named tuple of
// dimensions (the statement's iteration vector in the paper's usage). Any
// variable appearing in the constraints that is not a dimension is a
// parameter (n, jp, ...).
type BasicSet struct {
	Tuple string   // tuple name, e.g. "S1"
	Dims  []string // dimension names in order, e.g. ["j", "i"]
	Cons  []Constraint
}

// NewBasicSet returns a basic set with the given tuple name and dimensions
// and no constraints (the universe).
func NewBasicSet(tuple string, dims ...string) BasicSet {
	return BasicSet{Tuple: tuple, Dims: append([]string(nil), dims...)}
}

// Copy returns a deep copy.
func (b BasicSet) Copy() BasicSet {
	return BasicSet{
		Tuple: b.Tuple,
		Dims:  append([]string(nil), b.Dims...),
		Cons:  append([]Constraint(nil), b.Cons...),
	}
}

// With returns b extended with additional constraints.
func (b BasicSet) With(cs ...Constraint) BasicSet {
	nb := b.Copy()
	nb.Cons = append(nb.Cons, cs...)
	return nb
}

// IsDim reports whether v is one of the set's dimensions.
func (b BasicSet) IsDim(v string) bool {
	for _, d := range b.Dims {
		if d == v {
			return true
		}
	}
	return false
}

// Params returns the parameters (non-dimension variables), sorted.
func (b BasicSet) Params() []string {
	var ps []string
	for _, v := range varsOf(b.Cons) {
		if !b.IsDim(v) {
			ps = append(ps, v)
		}
	}
	return ps
}

// Rename returns b with dimensions (and any constraint variables) renamed
// through m.
func (b BasicSet) Rename(m map[string]string) BasicSet {
	nb := BasicSet{Tuple: b.Tuple, Dims: make([]string, len(b.Dims))}
	for i, d := range b.Dims {
		if nd, ok := m[d]; ok {
			nb.Dims[i] = nd
		} else {
			nb.Dims[i] = d
		}
	}
	nb.Cons = make([]Constraint, len(b.Cons))
	for i, c := range b.Cons {
		nb.Cons[i] = c.Rename(m)
	}
	return nb
}

// Intersect returns the conjunction of b and o, which must have the same
// dimensionality; o's dimensions are renamed to b's positionally.
func (b BasicSet) Intersect(o BasicSet) BasicSet {
	if len(b.Dims) != len(o.Dims) {
		panic(fmt.Sprintf("poly: Intersect dimension mismatch %v vs %v", b.Dims, o.Dims))
	}
	m := map[string]string{}
	for i, d := range o.Dims {
		m[d] = b.Dims[i]
	}
	ro := o.Rename(m)
	return b.With(ro.Cons...)
}

// Contains reports whether the integer point given by env (mapping both
// dimensions and parameters to values) satisfies all constraints.
func (b BasicSet) Contains(env map[string]int64) bool {
	for _, c := range b.Cons {
		ok, complete := c.Holds(env)
		if !ok || !complete {
			return false
		}
	}
	return true
}

// IsEmpty decides integer emptiness. exact is false only when projection had
// to approximate (non-unit coefficients), in which case a false "empty" is
// conservative (the set is treated as possibly non-empty).
func (b BasicSet) IsEmpty() (empty, exact bool) {
	return emptiness(b.Cons)
}

// ProjectOut eliminates the named dimensions, returning a basic set over the
// remaining dimensions.
func (b BasicSet) ProjectOut(dims ...string) (BasicSet, bool) {
	cons, exact, inf := project(b.Cons, dims)
	keep := make([]string, 0, len(b.Dims))
	for _, d := range b.Dims {
		drop := false
		for _, x := range dims {
			if d == x {
				drop = true
				break
			}
		}
		if !drop {
			keep = append(keep, d)
		}
	}
	nb := BasicSet{Tuple: b.Tuple, Dims: keep, Cons: cons}
	if inf {
		// Mark infeasibility explicitly with the canonical false constraint.
		nb.Cons = []Constraint{GeZero(L(-1))}
	}
	return nb, exact
}

// Simplified returns b with duplicate and trivial constraints removed.
func (b BasicSet) Simplified() BasicSet {
	sys := newSystem(b.Cons)
	nb := b.Copy()
	if sys.infeasible {
		nb.Cons = []Constraint{GeZero(L(-1))}
		return nb
	}
	nb.Cons = sys.list()
	return nb
}

// String renders the basic set ISL-style:
//
//	{ S1[j] : j >= 0 and n - j - 1 >= 0 }
func (b BasicSet) String() string {
	var cs []string
	for _, c := range b.Cons {
		cs = append(cs, c.String())
	}
	head := fmt.Sprintf("%s[%s]", b.Tuple, strings.Join(b.Dims, ","))
	if len(cs) == 0 {
		return "{ " + head + " }"
	}
	return "{ " + head + " : " + strings.Join(cs, " and ") + " }"
}

// Set is a union of basic sets over the same tuple/dimensionality.
type Set struct {
	Pieces []BasicSet
}

// UnionSet builds a set from basic sets.
func UnionSet(bs ...BasicSet) Set {
	return Set{Pieces: append([]BasicSet(nil), bs...)}
}

// IsEmpty decides integer emptiness of the union.
func (s Set) IsEmpty() (empty, exact bool) {
	empty, exact = true, true
	for _, b := range s.Pieces {
		e, ex := b.IsEmpty()
		exact = exact && ex
		if !e {
			empty = false
		}
	}
	return empty, exact
}

// Contains reports whether any piece contains the point.
func (s Set) Contains(env map[string]int64) bool {
	for _, b := range s.Pieces {
		if b.Contains(env) {
			return true
		}
	}
	return false
}

// Union returns the union of s and o.
func (s Set) Union(o Set) Set {
	return Set{Pieces: append(append([]BasicSet(nil), s.Pieces...), o.Pieces...)}
}

// Intersect intersects every pair of pieces.
func (s Set) Intersect(o Set) Set {
	var out []BasicSet
	for _, a := range s.Pieces {
		for _, b := range o.Pieces {
			p := a.Intersect(b)
			if e, _ := p.IsEmpty(); !e {
				out = append(out, p.Simplified())
			}
		}
	}
	return Set{Pieces: out}
}

// subtractBasic computes a \ b as a union: for each constraint of b, the part
// of a violating it.
func subtractBasic(a, b BasicSet) []BasicSet {
	if len(a.Dims) != len(b.Dims) {
		panic("poly: subtract dimension mismatch")
	}
	m := map[string]string{}
	for i, d := range b.Dims {
		m[d] = a.Dims[i]
	}
	rb := b.Rename(m)
	var out []BasicSet
	// Build pieces incrementally: piece_i = a ∧ c_1 ∧ ... ∧ c_{i-1} ∧ ¬c_i,
	// which makes the result pieces pairwise disjoint.
	prefix := a.Copy()
	for _, c := range rb.Cons {
		for _, neg := range c.Negate() {
			p := prefix.With(neg)
			if e, _ := p.IsEmpty(); !e {
				out = append(out, p.Simplified())
			}
		}
		prefix = prefix.With(c)
	}
	return out
}

// Subtract returns s \ o.
func (s Set) Subtract(o Set) Set {
	cur := append([]BasicSet(nil), s.Pieces...)
	for _, b := range o.Pieces {
		var next []BasicSet
		for _, a := range cur {
			next = append(next, subtractBasic(a, b)...)
		}
		cur = next
	}
	return Set{Pieces: cur}
}

// SubsetOf reports whether s ⊆ o (exactly when s \ o is empty).
func (s Set) SubsetOf(o Set) (sub, exact bool) {
	d := s.Subtract(o)
	e, ex := d.IsEmpty()
	return e, ex
}

// EqualSet reports whether the two sets contain the same integer points.
func (s Set) EqualSet(o Set) (eq, exact bool) {
	a, ex1 := s.SubsetOf(o)
	b, ex2 := o.SubsetOf(s)
	return a && b, ex1 && ex2
}

// String renders the union ISL-style with ';' separating pieces.
func (s Set) String() string {
	if len(s.Pieces) == 0 {
		return "{ }"
	}
	parts := make([]string, len(s.Pieces))
	for i, b := range s.Pieces {
		str := b.String()
		parts[i] = strings.TrimSuffix(strings.TrimPrefix(str, "{ "), " }")
	}
	return "{ " + strings.Join(parts, "; ") + " }"
}

// Sample searches for an integer point in the basic set by bounded
// enumeration of the dimensions within [-bound, bound] given parameter
// values. It is a testing aid, not part of the analysis pipeline.
func (b BasicSet) Sample(params map[string]int64, bound int64) (map[string]int64, bool) {
	env := map[string]int64{}
	for k, v := range params {
		env[k] = v
	}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(b.Dims) {
			return b.Contains(env)
		}
		for v := -bound; v <= bound; v++ {
			env[b.Dims[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		delete(env, b.Dims[i])
		return false
	}
	if rec(0) {
		out := map[string]int64{}
		for _, d := range b.Dims {
			out[d] = env[d]
		}
		return out, true
	}
	return nil, false
}

// EnumeratePoints lists all integer points of the basic set with dimensions
// restricted to [-bound, bound], given parameter values. Testing aid.
func (b BasicSet) EnumeratePoints(params map[string]int64, bound int64) []map[string]int64 {
	env := map[string]int64{}
	for k, v := range params {
		env[k] = v
	}
	var out []map[string]int64
	var rec func(i int)
	rec = func(i int) {
		if i == len(b.Dims) {
			if b.Contains(env) {
				pt := map[string]int64{}
				for _, d := range b.Dims {
					pt[d] = env[d]
				}
				out = append(out, pt)
			}
			return
		}
		for v := -bound; v <= bound; v++ {
			env[b.Dims[i]] = v
			rec(i + 1)
		}
		delete(env, b.Dims[i])
	}
	rec(0)
	return out
}

// sortedVars is a helper exposing deterministic variable order for callers.
func sortedVars(set map[string]bool) []string {
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}
