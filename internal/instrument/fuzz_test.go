package instrument

import (
	"math"
	"math/rand"
	"testing"

	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/internal/progen"
)

// setupGenerated initializes a generated program's data deterministically.
func setupGenerated(m *interp.Machine, gp *progen.Program, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, a := range gp.FloatArrays {
		if err := m.FillFloat(a, func(i int64) float64 { return rng.Float64()*8 - 4 }); err != nil {
			panic(err)
		}
	}
	for _, ia := range gp.IntArrays {
		if err := m.FillInt(ia, func(i int64) int64 { return rng.Int63n(gp.N) }); err != nil {
			panic(err)
		}
	}
	for _, s := range gp.Scalars {
		if err := m.SetFloat(s, rng.Float64()); err != nil {
			panic(err)
		}
	}
}

// TestFuzzAffinePrograms generates random affine programs and checks the
// central soundness properties on each, for every optimization combination:
// the instrumented program type-checks, produces bit-identical outputs, and
// never reports a false positive. A wrong use count anywhere in the
// polyhedral pipeline makes the def/use checksums diverge, so this is an
// end-to-end differential test of the whole analysis stack.
func TestFuzzAffinePrograms(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 20
	}
	cfg := progen.DefaultConfig()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		gp := progen.Generate(rng, cfg)
		checkGenerated(t, gp, trial)
	}
}

// TestFuzzIndirectPrograms adds data-dependent subscripts, exercising the
// dynamic-counter path against the same properties.
func TestFuzzIndirectPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	cfg := progen.DefaultConfig()
	cfg.WithIndirect = true
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		gp := progen.Generate(rng, cfg)
		checkGenerated(t, gp, trial)
	}
}

func checkGenerated(t *testing.T, gp *progen.Program, trial int) {
	t.Helper()
	prog, err := lang.Parse(gp.Source)
	if err != nil {
		t.Fatalf("trial %d: generated program does not parse: %v\n%s", trial, err, gp.Source)
	}
	ref, err := interp.New(prog, gp.Params)
	if err != nil {
		t.Fatalf("trial %d: %v\n%s", trial, err, gp.Source)
	}
	setupGenerated(ref, gp, int64(trial))
	if err := ref.Run(); err != nil {
		t.Fatalf("trial %d: original run failed: %v\n%s", trial, err, gp.Source)
	}

	for _, opt := range []Options{{}, {Split: true}, {Split: true, Inspector: true}} {
		res, err := Instrument(prog, opt)
		if err != nil {
			t.Fatalf("trial %d opt %+v: instrument: %v\n%s", trial, opt, err, gp.Source)
		}
		m, err := interp.New(res.Prog, gp.Params)
		if err != nil {
			t.Fatalf("trial %d opt %+v: machine: %v\n%s", trial, opt, err, lang.Print(res.Prog))
		}
		setupGenerated(m, gp, int64(trial))
		if err := m.Run(); err != nil {
			t.Fatalf("trial %d opt %+v: FALSE POSITIVE or crash: %v\nprogram:\n%s\ninstrumented:\n%s",
				trial, opt, err, gp.Source, lang.Print(res.Prog))
		}
		for _, a := range gp.FloatArrays {
			want, err := ref.SnapshotFloats(a)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.SnapshotFloats(a)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("trial %d opt %+v: %s[%d] = %v, want %v\nprogram:\n%s",
						trial, opt, a, i, got[i], want[i], gp.Source)
				}
			}
		}
	}
}

// TestFuzzSingleBitDetection injects one bit flip per generated program at a
// random mid-run step into a random float array cell; the run must either
// detect it or complete with intact checksums — never crash, never corrupt
// silently while claiming verification of a *tracked, still-live* value.
func TestFuzzSingleBitDetection(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	detected := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		gp := progen.Generate(rng, progen.DefaultConfig())
		prog, err := lang.Parse(gp.Source)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Instrument(prog, Options{Split: true})
		if err != nil {
			t.Fatal(err)
		}
		clean, err := interp.New(res.Prog, gp.Params)
		if err != nil {
			t.Fatal(err)
		}
		setupGenerated(clean, gp, int64(trial))
		if err := clean.Run(); err != nil {
			t.Fatalf("trial %d: clean run failed: %v", trial, err)
		}
		if clean.Counts.Stmts < 4 {
			continue
		}
		m, err := interp.New(res.Prog, gp.Params)
		if err != nil {
			t.Fatal(err)
		}
		setupGenerated(m, gp, int64(trial))
		arr := gp.FloatArrays[rng.Intn(len(gp.FloatArrays))]
		base, size, err := m.Region(arr)
		if err != nil {
			t.Fatal(err)
		}
		step := uint64(rng.Int63n(int64(clean.Counts.Stmts-2))) + 1
		addr := base + rng.Intn(size)
		fired := false
		m.SetStepHook(func(cur uint64) {
			if !fired && cur == step {
				m.Mem().FlipBit(addr, rng.Intn(64))
				fired = true
			}
		})
		err = m.Run()
		switch err.(type) {
		case nil:
			// Flip outside any def-use window: acceptable.
		case *interp.DetectionError:
			detected++
		default:
			t.Fatalf("trial %d: unexpected error: %v\n%s", trial, err, gp.Source)
		}
	}
	if detected == 0 {
		t.Error("no injected fault detected across all fuzz trials")
	}
}
