package server

// The overload degradation ladder. Admission control alone is binary — a
// request either gets a slot or bounces — which tells clients nothing about
// trend and keeps serving expensive kernel jobs right up to collapse. The
// ladder makes overload an explicit, observable state machine:
//
//	healthy ──sheds──▶ shedding ──sustained sheds──▶ degraded ──drain──▶ draining
//	   ▲                  │                             │
//	   └──── sustained successful admissions ◀──────────┘
//
// Shedding means the queue overflowed recently: 429s carry Retry-After and
// the state is visible on /readyz. Degraded means shedding persisted past
// DegradeAfterSheds consecutive sheds: the server stops accepting expensive
// kernel jobs (503 + Retry-After, body marked "degraded") while continuing
// to serve verify jobs, trading coverage breadth for tail latency. A run of
// RecoverAfterOK successful admissions with no shed walks the ladder back to
// healthy. Draining is terminal and entered only by Drain.

import (
	"sync"

	"defuse/telemetry"
)

// Ladder rungs, ordered by severity. The values are the state gauge's levels.
const (
	StateHealthy  = "healthy"
	StateShedding = "shedding"
	StateDegraded = "degraded"
	StateDraining = "draining"
)

// stateLevel maps a rung to its defuse_server_state gauge value.
func stateLevel(state string) float64 {
	switch state {
	case StateShedding:
		return 1
	case StateDegraded:
		return 2
	case StateDraining:
		return 3
	default:
		return 0
	}
}

// ladder is the overload state machine. Calls arrive from concurrent request
// handlers; the mutex is held only for counter arithmetic.
type ladder struct {
	mu         sync.Mutex
	state      string
	shedStreak int
	calmStreak int
	// degradeAfter / recoverAfter are the transition thresholds.
	degradeAfter int
	recoverAfter int
	// entered counts transitions into degraded over the process lifetime.
	entered int64

	// announce publishes transitions (health state, gauge, event). Called
	// outside the mutex? No — under it, transitions must serialize; the
	// sinks are atomic/lock-free.
	announce func(from, to, reason string)
}

func newLadder(degradeAfter, recoverAfter int, announce func(from, to, reason string)) *ladder {
	return &ladder{
		state:        StateHealthy,
		degradeAfter: degradeAfter,
		recoverAfter: recoverAfter,
		announce:     announce,
	}
}

// current returns the rung.
func (l *ladder) current() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// degradedEntered reports how many times the ladder reached degraded.
func (l *ladder) degradedEntered() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entered
}

// rejectKernel reports whether expensive kernel jobs are currently refused.
func (l *ladder) rejectKernel() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state == StateDegraded || l.state == StateDraining
}

func (l *ladder) set(to, reason string) {
	from := l.state
	if from == to {
		return
	}
	l.state = to
	if to == StateDegraded {
		l.entered++
	}
	if l.announce != nil {
		l.announce(from, to, reason)
	}
}

// noteShed records one queue overflow.
func (l *ladder) noteShed() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state == StateDraining {
		return
	}
	l.calmStreak = 0
	l.shedStreak++
	switch {
	case l.shedStreak >= l.degradeAfter:
		l.set(StateDegraded, "sustained queue overflow")
	case l.state == StateHealthy:
		l.set(StateShedding, "queue overflow")
	}
}

// noteAdmit records one successful admission (a slot was granted).
func (l *ladder) noteAdmit() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.state == StateDraining || l.state == StateHealthy {
		return
	}
	l.calmStreak++
	if l.calmStreak >= l.recoverAfter {
		l.calmStreak = 0
		l.shedStreak = 0
		l.set(StateHealthy, "admissions recovered")
	}
}

// noteDrain moves to the terminal rung.
func (l *ladder) noteDrain() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.set(StateDraining, "drain started")
}

// announceState builds the standard transition publisher: health state for
// /readyz, the defuse_server_state gauge, a server.state event, and a
// per-transition counter.
func announceState(obs *telemetry.Obs) func(from, to, reason string) {
	return func(from, to, reason string) {
		if obs == nil {
			return
		}
		obs.Health.SetState(to)
		if reg := obs.Metrics; reg != nil {
			reg.Gauge("defuse_server_state").Set(stateLevel(to))
			reg.Counter("defuse_server_state_changes_total",
				telemetry.Label{Key: "to", Value: to}).Inc()
		}
		telemetry.Emit(obs.Sink, telemetry.EvServerState, map[string]any{
			"from": from, "to": to, "reason": reason,
		})
	}
}
