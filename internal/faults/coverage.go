package faults

import (
	"context"
	"fmt"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// This file implements the Table 1 fault-coverage experiment of the paper:
// initialize an array of 64-bit integers, compute its checksum(s), inject a
// k-bit error, recompute, and count the trials in which the checksums still
// match (the error escaped detection).
//
// With Epochs > 0 the experiment additionally measures what the paper's
// program-end verification cannot: detection latency (epochs between
// injection and detection) and — with Recover — the success rate of
// checkpoint/rollback recovery (see epochtrial.go).

// Target selects what an epoch trial's injected fault strikes. The paper's
// experiment (TargetData) corrupts the protected array; the detector-targeted
// variants aim the same transient-fault model at the detection machinery
// itself — accumulators, shadow use counters, parked checkpoints, or a
// compensating accumulator flip that masks a real data fault — to measure the
// false-negative/false-positive rates the hardened detector removes.
type Target int

const (
	// TargetData flips bits in the protected array (the paper's experiment).
	TargetData Target = iota
	// TargetAccumulator flips one bit of the primary copy of a randomly
	// chosen checksum accumulator. Unhardened, the next verification reports
	// a phantom data fault (false positive) and triggers a needless rollback.
	TargetAccumulator
	// TargetCounter flips one bit of a shadow use counter's primary state
	// (count or defined flag).
	TargetCounter
	// TargetCheckpoint flips a data bit to force a rollback AND flips one bit
	// of the parked epoch checkpoint it will restore from, modeling a fault
	// striking recovery state while it waits to be needed.
	TargetCheckpoint
	// TargetMasking flips one data bit, then — when the accumulator values
	// permit — applies the compensating single-bit flips to the use and e_use
	// accumulators that make verification pass despite the wrong data: the
	// adversarial false-negative scenario.
	TargetMasking
)

var targetNames = map[Target]string{
	TargetData:        "data",
	TargetAccumulator: "accumulator",
	TargetCounter:     "counter",
	TargetCheckpoint:  "checkpoint",
	TargetMasking:     "masking",
}

// String returns the lower-case name of the target.
func (t Target) String() string {
	if s, ok := targetNames[t]; ok {
		return s
	}
	return fmt.Sprintf("faults.Target(%d)", int(t))
}

// ParseTarget resolves a target name as used by cmd/faultcov -target.
func ParseTarget(s string) (Target, error) {
	for t, name := range targetNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown target %q (data, accumulator, counter, checkpoint, masking)", s)
}

// Backend selects which detector an epoch trial arms. The backends are
// deliberately run in isolation — each trial's verdict comes from exactly
// one detector — so the comparison campaign (compare.go) can attribute
// every escape and every detection to a specific mechanism.
type Backend int

const (
	// BackendChecksum is the paper's data def/use checksum detector.
	BackendChecksum Backend = iota
	// BackendAddrsum is the PRESAGE-style address-stream detector
	// (internal/addrsum): it checksums where accesses went, not what they
	// carried, so it catches wrong-location accesses that observe valid
	// data and misses pure data corruption.
	BackendAddrsum
	// BackendDME is divergent dual execution (internal/dme): two
	// structurally decorrelated variants of the workload cross-checked at
	// every epoch boundary.
	BackendDME
)

var backendNames = map[Backend]string{
	BackendChecksum: "checksum",
	BackendAddrsum:  "addrsum",
	BackendDME:      "dme",
}

// String returns the lower-case name of the backend.
func (b Backend) String() string {
	if s, ok := backendNames[b]; ok {
		return s
	}
	return fmt.Sprintf("faults.Backend(%d)", int(b))
}

// ParseBackend resolves a backend name as used by cmd/faultcov -backend.
func ParseBackend(s string) (Backend, error) {
	for b, name := range backendNames {
		if name == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown backend %q (checksum, addrsum, dme)", s)
}

// AddrFault selects the address-generation fault shape an epoch trial
// injects instead of data bit flips. All three corrupt the index of one
// iteration's accesses inside the injection epoch.
type AddrFault int

const (
	// AddrNone injects no address fault (the data/detector targets apply).
	AddrNone AddrFault = iota
	// AddrWrong redirects one iteration's load to a uniformly chosen other
	// word — the classic wrong-address load. The stale intended word is
	// still finalized from memory, so data checksums catch this whp.
	AddrWrong
	// AddrIndexBit flips one bit of one iteration's load index (the
	// redirect stays in range) — the single-event-upset form of AddrWrong.
	AddrIndexBit
	// AddrAlias redirects one iteration's entire read-modify-write — load
	// AND store — to the same wrong word, modeling an index register
	// corrupted once and used for both accesses. Every value the detector
	// observes is a valid tracked word and the fold balances exactly at
	// every boundary, so data checksums are *structurally* blind to it
	// (100% escape, any operator, any data pattern; see DESIGN.md), while
	// the final state is wrong: the intended word is stale and the aliased
	// word was advanced twice.
	AddrAlias
)

var addrFaultNames = map[AddrFault]string{
	AddrNone:     "none",
	AddrWrong:    "addr-wrong",
	AddrIndexBit: "addr-bit",
	AddrAlias:    "addr-alias",
}

// String returns the lower-case name of the address-fault shape.
func (a AddrFault) String() string {
	if s, ok := addrFaultNames[a]; ok {
		return s
	}
	return fmt.Sprintf("faults.AddrFault(%d)", int(a))
}

// ParseAddrFault resolves an address-fault name.
func ParseAddrFault(s string) (AddrFault, error) {
	for a, name := range addrFaultNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown address fault %q (none, addr-wrong, addr-bit, addr-alias)", s)
}

// CoverageConfig describes one cell of Table 1, optionally extended with
// epoch-scoped verification and recovery.
type CoverageConfig struct {
	Kind     checksum.Kind // checksum operator (the paper uses ModAdd)
	Words    int           // array size in 64-bit words (10^2, 10^4, 10^6)
	BitFlips int           // number of bits flipped per trial (2..6)
	Pattern  Pattern       // data initialization
	Dual     bool          // use the two-checksum (rotated) scheme
	Trials   int           // number of injection trials (paper: 100,000)
	Seed     int64         // RNG seed; each trial derives its own sub-seed

	// Epochs, when positive, switches the trial to an epoch-structured run:
	// the data is a live working set advanced once per epoch under the
	// def/use tracker discipline, the fault is injected inside a random
	// epoch, and verification runs at every epoch boundary.
	Epochs int
	// EndOnlyVerify restricts verification to the final epoch boundary
	// (the paper's program-end placement), for measuring the latency the
	// epoch scheme removes.
	EndOnlyVerify bool
	// Recover enables the checkpoint/rollback supervisor: a detected epoch
	// is rolled back and re-executed with bounded retries before escalating
	// to restart and finally degradation.
	Recover bool
	// MaxRetries bounds rollback re-executions per epoch (default 2).
	MaxRetries int
	// Target aims the injected fault (epoch mode only): at the protected
	// data (default) or at the detector itself. See the Target constants.
	Target Target
	// Hardened enables the detector's self-checks in epoch trials: a
	// ScrubDetector pass at every verifying boundary and integrity-digest
	// verification of every checkpoint restore. Unhardened trials use the
	// unchecked restore paths and never scrub, measuring what the paper's
	// register-residency assumption silently costs when the accumulators are
	// ordinary memory.
	Hardened bool
	// Backend selects the armed detector for epoch trials (default: the
	// paper's data checksums). Non-checksum backends run the identical
	// workload and injection schedule, so per-backend escape counts are
	// directly comparable cell by cell.
	Backend Backend
	// AddrFault, when not AddrNone, replaces the data bit flips with an
	// address-generation fault on one iteration of the injection epoch.
	// Epoch mode only, data target only. Cells over 1-word regions tally
	// the trial as skipped (there is no wrong location) instead of
	// crashing.
	AddrFault AddrFault

	// Trace, when non-nil, receives one fault.injected event per trial
	// (with the flipped word/bit coordinates) and a detection or verify.ok
	// event for its outcome; epoch trials add epoch.verify and recovery.*.
	Trace telemetry.Sink `json:"-"`
	// Metrics, when non-nil, receives per-cell trial and undetected
	// counters labeled by flips/words/pattern/scheme, and in epoch mode a
	// detection-latency histogram and recovery counters.
	Metrics *telemetry.Registry `json:"-"`
	// Tracer, when non-nil, records one span per trial (labeled by the
	// cell's scheme/words/flips/target) with the supervisor's epoch,
	// verification, and recovery spans as children. A nil tracer is free.
	Tracer *telemetry.Tracer `json:"-"`
}

// Validate reports configuration errors a run would otherwise surface as
// divisions by zero or panics deep in a campaign.
func (cfg CoverageConfig) Validate() error {
	if cfg.Trials <= 0 {
		return fmt.Errorf("faults: Trials must be positive, got %d", cfg.Trials)
	}
	if cfg.Words <= 0 {
		return fmt.Errorf("faults: Words must be positive, got %d", cfg.Words)
	}
	if cfg.BitFlips <= 0 {
		return fmt.Errorf("faults: BitFlips must be positive, got %d", cfg.BitFlips)
	}
	if cfg.BitFlips > 64*cfg.Words {
		return fmt.Errorf("faults: cannot flip %d bits in %d words", cfg.BitFlips, cfg.Words)
	}
	if cfg.Epochs < 0 {
		return fmt.Errorf("faults: Epochs must be non-negative, got %d", cfg.Epochs)
	}
	if cfg.Epochs == 0 && (cfg.EndOnlyVerify || cfg.Recover) {
		return fmt.Errorf("faults: EndOnlyVerify/Recover require Epochs > 0")
	}
	if cfg.Epochs > 0 && cfg.Dual {
		return fmt.Errorf("faults: the dual rotated-checksum scheme applies to the array-sum experiment, not epoch mode")
	}
	if cfg.Epochs == 0 && cfg.Target != TargetData {
		return fmt.Errorf("faults: target %v requires Epochs > 0 (detector-targeted injection is an epoch-trial experiment)", cfg.Target)
	}
	if cfg.Epochs == 0 && cfg.Hardened {
		return fmt.Errorf("faults: Hardened requires Epochs > 0")
	}
	if cfg.Target == TargetCheckpoint && !cfg.Recover {
		return fmt.Errorf("faults: target checkpoint requires Recover (an unused checkpoint can never be observed corrupt)")
	}
	if cfg.Target == TargetMasking {
		if cfg.BitFlips != 1 {
			return fmt.Errorf("faults: target masking requires BitFlips == 1 (the compensating flip is single-bit), got %d", cfg.BitFlips)
		}
		if cfg.Kind != checksum.ModAdd && cfg.Kind != checksum.XOR {
			return fmt.Errorf("faults: target masking supports modadd and xor, not %v", cfg.Kind)
		}
	}
	if cfg.Backend != BackendChecksum {
		if cfg.Epochs == 0 {
			return fmt.Errorf("faults: backend %v requires Epochs > 0 (it is an epoch-boundary detector)", cfg.Backend)
		}
		if cfg.Target != TargetData {
			return fmt.Errorf("faults: backend %v supports the data target only (detector-targeted strikes aim at the checksum machinery)", cfg.Backend)
		}
	}
	if cfg.AddrFault != AddrNone {
		if cfg.Epochs == 0 {
			return fmt.Errorf("faults: address fault %v requires Epochs > 0 (the fault strikes a live access stream)", cfg.AddrFault)
		}
		if cfg.Target != TargetData {
			return fmt.Errorf("faults: address fault %v combines with the data target only, not %v", cfg.AddrFault, cfg.Target)
		}
		if cfg.Pattern != Random {
			return fmt.Errorf("faults: address fault %v requires the random pattern: under a constant pattern a redirected load observes the same value it would have read, a benign no-op no backend could or should flag", cfg.AddrFault)
		}
	}
	return nil
}

// scheme returns the metrics label for the checksum scheme.
func (cfg CoverageConfig) scheme() string {
	if cfg.Dual {
		return "dual"
	}
	return "single"
}

// CoverageResult reports the outcome of a coverage experiment. All tallies
// are exact sums over per-trial outcomes, so a result is byte-identical for
// a given config regardless of worker count or campaign interruption.
type CoverageResult struct {
	CoverageConfig
	// Undetected counts trials whose corruption escaped every verification.
	Undetected int
	// Detected counts trials whose corruption was flagged by verification.
	Detected int
	// Skipped counts trials whose fault could not be modeled (an address
	// fault over a 1-word region has no wrong location); they ran clean and
	// count toward neither Detected nor Undetected.
	Skipped int
	// LatencySum accumulates, over detected trials, the number of epochs
	// between injection and detection (0 = caught at the injection epoch's
	// own boundary). Always 0 for the classic single-shot experiment.
	LatencySum int64
	// LatencyMax is the worst detection latency observed, in epochs.
	LatencyMax int
	// LatencyHist is the full detection-latency distribution: per-bucket
	// counts over telemetry.EpochBuckets plus a trailing overflow bucket,
	// populated for epoch cells so reports can state p50/p99/p999 rather
	// than just a mean.
	LatencyHist []int64
	// Recovered counts detected trials whose rollback re-execution restored
	// a correct, fully verified final state.
	Recovered int
	// Tainted counts trials that exhausted retries and restarts and
	// completed in degraded (report-and-continue) mode.
	Tainted int
	// Retries and Restarts count recovery attempts across all trials.
	Retries  int64
	Restarts int64
	// FalseNegatives counts trials that completed undetected with a wrong
	// final state: the corruption escaped every check AND mattered.
	FalseNegatives int
	// FalsePositives counts trials in which recovery acted on a data-fault
	// verdict although no data fault was injected — a fault in the detector
	// itself was misread as corruption of the protected data.
	FalsePositives int
	// DetectorFaults, CheckpointFaults, and Rebuilds aggregate the
	// supervisor's per-mode classification counts across all trials.
	DetectorFaults   int64
	CheckpointFaults int64
	Rebuilds         int64
}

// UndetectedPercent returns the percentage of undetected errors, the quantity
// Table 1 reports.
func (r CoverageResult) UndetectedPercent() float64 {
	if r.Trials == 0 {
		return 0
	}
	return 100 * float64(r.Undetected) / float64(r.Trials)
}

// MeanDetectionLatency returns the mean epochs between injection and
// detection over detected trials.
func (r CoverageResult) MeanDetectionLatency() float64 {
	if r.Detected == 0 {
		return 0
	}
	return float64(r.LatencySum) / float64(r.Detected)
}

// RecoveryRate returns the fraction of detected corruptions that were fully
// recovered.
func (r CoverageResult) RecoveryRate() float64 {
	if r.Detected == 0 {
		return 0
	}
	return float64(r.Recovered) / float64(r.Detected)
}

func (r CoverageResult) String() string {
	scheme := "one checksum"
	if r.Dual {
		scheme = "two checksums"
	}
	s := fmt.Sprintf("%d flips, N=%d, %v, %s: %.3f%% undetected",
		r.BitFlips, r.Words, r.Pattern, scheme, r.UndetectedPercent())
	if r.Backend != BackendChecksum {
		s += fmt.Sprintf(", backend=%v", r.Backend)
	}
	if r.AddrFault != AddrNone {
		s += fmt.Sprintf(", fault=%v", r.AddrFault)
		if r.Skipped > 0 {
			s += fmt.Sprintf(" (%d skipped)", r.Skipped)
		}
	}
	if r.Epochs > 0 {
		s += fmt.Sprintf(", %d epochs: mean latency %.2f, recovery %.1f%%",
			r.Epochs, r.MeanDetectionLatency(), 100*r.RecoveryRate())
	}
	if r.Target != TargetData {
		detector := "unhardened"
		if r.Hardened {
			detector = "hardened"
		}
		s += fmt.Sprintf(", target=%v %s: FN=%d FP=%d detector=%d checkpoint=%d rebuilds=%d",
			r.Target, detector, r.FalseNegatives, r.FalsePositives,
			r.DetectorFaults, r.CheckpointFaults, r.Rebuilds)
	}
	return s
}

// RunCoverage executes the experiment described by cfg with default campaign
// settings (one worker pool over trials, no checkpointing). It returns an
// error for invalid configurations instead of dividing by zero later.
func RunCoverage(cfg CoverageConfig) (CoverageResult, error) {
	return RunCoverageContext(context.Background(), cfg)
}

// RunCoverageContext is RunCoverage under a caller-controlled context.
func RunCoverageContext(ctx context.Context, cfg CoverageConfig) (CoverageResult, error) {
	camp := &Campaign{Cells: []CoverageConfig{cfg}}
	res, err := camp.Run(ctx)
	if err != nil {
		return CoverageResult{CoverageConfig: cfg}, err
	}
	return res.Results[0], nil
}

func initialSums(cfg CoverageConfig, data []uint64) (uint64, uint64) {
	if cfg.Dual {
		return checksum.DualSum(cfg.Kind, data)
	}
	return checksum.Sum(cfg.Kind, data), 0
}

// Table1Cell runs the paper's Table 1 cell for the given parameters with the
// paper's operator (integer modulo addition).
func Table1Cell(words, bitFlips int, p Pattern, dual bool, trials int, seed int64) (CoverageResult, error) {
	return RunCoverage(CoverageConfig{
		Kind:     checksum.ModAdd,
		Words:    words,
		BitFlips: bitFlips,
		Pattern:  p,
		Dual:     dual,
		Trials:   trials,
		Seed:     seed,
	})
}
