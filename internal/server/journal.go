package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"defuse/internal/wal"
)

// The journal is the service's durability layer: one CRC64-framed,
// fsynced-on-append WAL record per completed request, kept in a segmented
// log so week-long uptimes stay disk-bounded. The active segment receives
// appends; size-thresholded seals rotate it into the sealed series, and when
// sealed segments accumulate past the cap the oldest folds into a summary
// that preserves the running tallies (count, injected/detected/recovered,
// ID ledger) plus the newest folded record verbatim. A SIGKILLed server
// restarts, scans summary + segments (tolerating a torn tail on the active
// file only), re-verifies the newest valid record by recomputing its
// reference digest from first principles, and resumes appending across the
// segment boundary. VerifyJournal re-executes that check over every live
// record and the summary's conservation arithmetic — the chaos soak's gate
// for "zero silent corruption".

// journalRecordSize is the fixed request-record encoding: id(8) kind(1)
// flags(1) words(4) epochs(4) seed(8) digest(8) refDigest(8).
const journalRecordSize = 42

// journalSummarySize is the fixed compaction-summary encoding: ten uint64
// fields. Payload length is the dispatch key — request records and summaries
// share the log format and are told apart by size alone.
const journalSummarySize = 80

// Flag bits in a journal record.
const (
	flagInjected = 1 << iota
	flagDetected
	flagRecovered
	flagTainted
)

// errDuplicateID rejects a request ID the journal has already sealed (or
// reserved): accepting it would make the journal ambiguous under replay.
var errDuplicateID = errors.New("server: duplicate request ID")

// JournalRecord is one completed request as persisted in the WAL.
type JournalRecord struct {
	ID        uint64
	Kind      string // KindVerify or KindKernel
	Injected  bool
	Detected  bool
	Recovered bool
	Tainted   bool
	Words     int
	Epochs    int
	Seed      uint64
	Digest    uint64
	RefDigest uint64
}

func (r JournalRecord) encode() []byte {
	b := make([]byte, journalRecordSize)
	binary.LittleEndian.PutUint64(b[0:], r.ID)
	if r.Kind == KindKernel {
		b[8] = 1
	}
	var flags byte
	if r.Injected {
		flags |= flagInjected
	}
	if r.Detected {
		flags |= flagDetected
	}
	if r.Recovered {
		flags |= flagRecovered
	}
	if r.Tainted {
		flags |= flagTainted
	}
	b[9] = flags
	binary.LittleEndian.PutUint32(b[10:], uint32(r.Words))
	binary.LittleEndian.PutUint32(b[14:], uint32(r.Epochs))
	binary.LittleEndian.PutUint64(b[18:], r.Seed)
	binary.LittleEndian.PutUint64(b[26:], r.Digest)
	binary.LittleEndian.PutUint64(b[34:], r.RefDigest)
	return b
}

func decodeJournalRecord(b []byte) (JournalRecord, error) {
	if len(b) != journalRecordSize {
		return JournalRecord{}, fmt.Errorf("server: journal record is %d bytes, want %d", len(b), journalRecordSize)
	}
	r := JournalRecord{
		ID:        binary.LittleEndian.Uint64(b[0:]),
		Kind:      KindVerify,
		Words:     int(binary.LittleEndian.Uint32(b[10:])),
		Epochs:    int(binary.LittleEndian.Uint32(b[14:])),
		Seed:      binary.LittleEndian.Uint64(b[18:]),
		Digest:    binary.LittleEndian.Uint64(b[26:]),
		RefDigest: binary.LittleEndian.Uint64(b[34:]),
	}
	if b[8] == 1 {
		r.Kind = KindKernel
	}
	flags := b[9]
	r.Injected = flags&flagInjected != 0
	r.Detected = flags&flagDetected != 0
	r.Recovered = flags&flagRecovered != 0
	r.Tainted = flags&flagTainted != 0
	return r, nil
}

// check re-verifies one record from first principles. For verify jobs the
// reference digest is recomputable from (words, epochs, seed, id); a record
// whose stored reference disagrees with the recomputation was corrupted at
// rest, and a non-tainted record whose result digest disagrees with the
// reference is a silent corruption the detector missed. Kernel references
// are not recomputable here (they come from the server's warmup), so only
// internal consistency is checked.
func (r JournalRecord) check() error {
	if r.Kind == KindVerify {
		ref := ReferenceDigest(r.Words, r.Epochs, r.Seed, r.ID)
		if r.RefDigest != ref {
			return fmt.Errorf("server: journal record %d: stored reference %x, recomputed %x", r.ID, r.RefDigest, ref)
		}
	}
	if !r.Tainted && r.Digest != r.RefDigest {
		return fmt.Errorf("server: journal record %d: silent corruption: digest %x, reference %x", r.ID, r.Digest, r.RefDigest)
	}
	return nil
}

// journalSummary is the running tally compaction folds old records into.
// XorIDs and the ID range give an auditor conservation arithmetic over the
// records that no longer exist individually: XOR of all folded IDs, plus a
// chained digest binding their contents in fold order.
type journalSummary struct {
	Count     uint64
	Injected  uint64
	Detected  uint64
	Recovered uint64
	Tainted   uint64
	Kernel    uint64
	MinID     uint64
	MaxID     uint64
	XorIDs    uint64
	Chain     uint64
}

func (s journalSummary) encode() []byte {
	b := make([]byte, journalSummarySize)
	for i, v := range []uint64{
		s.Count, s.Injected, s.Detected, s.Recovered, s.Tainted,
		s.Kernel, s.MinID, s.MaxID, s.XorIDs, s.Chain,
	} {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func decodeJournalSummary(b []byte) (journalSummary, error) {
	if len(b) != journalSummarySize {
		return journalSummary{}, fmt.Errorf("server: journal summary is %d bytes, want %d", len(b), journalSummarySize)
	}
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(b[i*8:]) }
	return journalSummary{
		Count: u(0), Injected: u(1), Detected: u(2), Recovered: u(3), Tainted: u(4),
		Kernel: u(5), MinID: u(6), MaxID: u(7), XorIDs: u(8), Chain: u(9),
	}, nil
}

// sane rejects impossible tallies — a bit flip in the summary itself.
func (s journalSummary) sane() error {
	for name, v := range map[string]uint64{
		"injected": s.Injected, "detected": s.Detected, "recovered": s.Recovered,
		"tainted": s.Tainted, "kernel": s.Kernel,
	} {
		if v > s.Count {
			return fmt.Errorf("server: journal summary: %s=%d exceeds count=%d", name, v, s.Count)
		}
	}
	if s.Count > 0 && s.MinID > s.MaxID {
		return fmt.Errorf("server: journal summary: minID %d > maxID %d", s.MinID, s.MaxID)
	}
	return nil
}

// fold absorbs one record into the tally.
func (s *journalSummary) fold(r JournalRecord) {
	if s.Count == 0 || r.ID < s.MinID {
		s.MinID = r.ID
	}
	if s.Count == 0 || r.ID > s.MaxID {
		s.MaxID = r.ID
	}
	s.Count++
	if r.Injected {
		s.Injected++
	}
	if r.Detected {
		s.Detected++
	}
	if r.Recovered {
		s.Recovered++
	}
	if r.Tainted {
		s.Tainted++
	}
	if r.Kind == KindKernel {
		s.Kernel++
	}
	s.XorIDs ^= r.ID
	s.Chain = mix(s.Chain ^ r.ID ^ r.Digest ^ r.RefDigest)
}

// journalConfig sizes the segmented log under the journal.
type journalConfig struct {
	// SegmentBytes seals the active segment before it would exceed this
	// size. Zero means 1 MiB (a single segment for typical CI bursts, so
	// crash tests that compare WAL bytes across a resume stay single-file).
	SegmentBytes int64
	// MaxSegments caps sealed segments before compaction. Zero disables
	// compaction.
	MaxSegments int
	// FS is the file layer (fault injection point); nil means the real
	// filesystem.
	FS wal.FS
	// OnRotate / OnCompact observe seals and folds for telemetry.
	OnRotate  func(path string, bytes int64, records int)
	OnCompact func(path string, folded int, diskBytes int64)
}

// journal serializes appends from concurrent request workers onto one
// segmented WAL and owns the compaction fold.
type journal struct {
	mu   sync.Mutex
	slog *wal.SegmentedLog
	// ids holds every request ID this journal is known to contain —
	// rebuilt from live records at open, extended on append (even a failed
	// one: the bytes may be volatile but could also have survived, so the
	// ID is reserved conservatively). Compacted IDs from before this
	// process are covered by the summary's ledger, not this map.
	ids map[uint64]struct{}
	// live counts individually recoverable records (segments + the summary's
	// retained records); sum mirrors the on-disk compaction tally.
	live int
	sum  journalSummary
}

// ResumeInfo reports what the startup scan of the journal found.
type ResumeInfo struct {
	// Records is the number of live (individually recoverable) records.
	Records int
	// Compacted is the number of records folded into the summary tally.
	Compacted int
	// Segments counts on-disk files: sealed segments plus the active one.
	Segments int
	// TornTail reports a mid-append kill whose partial frame was discarded.
	TornTail bool
	// Corrupt reports a CRC-failed frame on the active segment; its valid
	// prefix was kept and the loss is declared here, never silently.
	Corrupt bool
	// Dropped counts records discarded by compaction-crash dedup.
	Dropped int
	// Reverified reports that the newest valid record passed its
	// from-first-principles re-verification.
	Reverified bool
	// LastID is the newest valid record's request ID (0 when none).
	LastID uint64
}

// openJournal scans path, re-verifies the newest valid record, and returns
// an appendable journal positioned after the valid prefix — across however
// many segments the previous life sealed. A missing or empty log starts
// fresh; damage to sealed state (a flipped bit in a sealed segment or the
// summary) is refused outright, and a newest record that fails
// re-verification is an error — the operator must not resume over silent
// corruption.
func openJournal(path string, cfg journalConfig) (*journal, ResumeInfo, error) {
	info := ResumeInfo{}
	j := &journal{ids: make(map[uint64]struct{})}
	opts := wal.SegmentOptions{
		SegmentBytes: cfg.SegmentBytes,
		MaxSegments:  cfg.MaxSegments,
		FS:           cfg.FS,
		Summarize:    j.summarize,
		OnRotate:     cfg.OnRotate,
		OnCompact:    cfg.OnCompact,
	}
	scan, err := wal.RecoverSegmented(path)
	switch {
	case err == nil:
		info.TornTail = scan.TornTail
		info.Corrupt = scan.ActiveCorrupt
		info.Dropped = scan.Dropped
		// The summary, when present, carries the compaction tally plus
		// retained records that are still individually live.
		var newest *JournalRecord
		for _, raw := range scan.Summary {
			switch len(raw.Payload) {
			case journalSummarySize:
				sum, derr := decodeJournalSummary(raw.Payload)
				if derr != nil {
					return nil, info, derr
				}
				if serr := sum.sane(); serr != nil {
					return nil, info, serr
				}
				j.sum = sum
			case journalRecordSize:
				rec, derr := decodeJournalRecord(raw.Payload)
				if derr != nil {
					return nil, info, derr
				}
				if cerr := rec.check(); cerr != nil {
					return nil, info, cerr
				}
				if _, dup := j.ids[rec.ID]; dup {
					return nil, info, fmt.Errorf("%w: journal retains request %d twice", errDuplicateID, rec.ID)
				}
				j.ids[rec.ID] = struct{}{}
				j.live++
				r := rec
				newest = &r
			default:
				return nil, info, fmt.Errorf("server: journal summary holds a %d-byte payload", len(raw.Payload))
			}
		}
		for _, raw := range scan.Records {
			rec, derr := decodeJournalRecord(raw.Payload)
			if derr != nil {
				return nil, info, derr
			}
			if _, dup := j.ids[rec.ID]; dup {
				return nil, info, fmt.Errorf("%w: journal records request %d twice", errDuplicateID, rec.ID)
			}
			j.ids[rec.ID] = struct{}{}
			j.live++
			r := rec
			newest = &r
		}
		if newest != nil {
			if cerr := newest.check(); cerr != nil {
				return nil, info, cerr
			}
			info.Reverified = true
			info.LastID = newest.ID
		}
		info.Records = j.live
		info.Compacted = int(j.sum.Count)
		slog, oerr := wal.OpenSegmented(scan, opts)
		if oerr != nil {
			return nil, info, oerr
		}
		j.slog = slog
		info.Segments = slog.Segments()
		return j, info, nil
	case errors.Is(err, wal.ErrNoCheckpoint):
		info.TornTail = scan.TornTail
		info.Corrupt = scan.ActiveCorrupt
		slog, cerr := wal.CreateSegmented(path, opts)
		if cerr != nil {
			return nil, info, cerr
		}
		j.slog = slog
		info.Segments = 1
		return j, info, nil
	default:
		return nil, info, err
	}
}

// summarize is the compaction fold: previously retained records and all but
// the newest folded record are absorbed into the tally — each re-verified
// from first principles on its way in, so corruption can never hide inside
// the summary — and the newest folded record is retained verbatim. Called
// with the journal mutex held (compaction runs inside append).
func (j *journal) summarize(prev [][]byte, folded []wal.Record) ([][]byte, error) {
	sum := journalSummary{}
	var absorb []JournalRecord
	for _, p := range prev {
		switch len(p) {
		case journalSummarySize:
			s, err := decodeJournalSummary(p)
			if err != nil {
				return nil, err
			}
			sum = s
		case journalRecordSize:
			rec, err := decodeJournalRecord(p)
			if err != nil {
				return nil, err
			}
			absorb = append(absorb, rec)
		default:
			return nil, fmt.Errorf("server: journal summary holds a %d-byte payload", len(p))
		}
	}
	var newest JournalRecord
	haveNewest := false
	for i, raw := range folded {
		rec, err := decodeJournalRecord(raw.Payload)
		if err != nil {
			return nil, err
		}
		if cerr := rec.check(); cerr != nil {
			return nil, fmt.Errorf("server: journal compaction refused: %w", cerr)
		}
		if i == len(folded)-1 {
			newest, haveNewest = rec, true
		} else {
			absorb = append(absorb, rec)
		}
	}
	for _, rec := range absorb {
		sum.fold(rec)
	}
	out := [][]byte{sum.encode()}
	if haveNewest {
		out = append(out, newest.encode())
	}
	// Folded-away records stop being individually live; the retained newest
	// stays. The previously retained records were counted live and are now
	// absorbed.
	j.live -= len(absorb)
	j.sum = sum
	return out, nil
}

// append seals one completed request into the WAL (fsynced before return).
// Duplicate IDs are refused before touching the disk; an ID whose append
// fails stays reserved — the bytes were rolled back, but reservation must be
// conservative so a retry under a reused ID cannot make the journal
// ambiguous.
func (j *journal) append(r JournalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, dup := j.ids[r.ID]; dup {
		return fmt.Errorf("%w: %d", errDuplicateID, r.ID)
	}
	j.ids[r.ID] = struct{}{}
	if err := j.slog.Append(r.encode()); err != nil {
		return err
	}
	j.live++
	return nil
}

// knownID reports whether the journal already holds (or has reserved) id.
func (j *journal) knownID(id uint64) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.ids[id]
	return ok
}

// seal closes the WAL cleanly (the drain path's final act).
func (j *journal) seal() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slog.Close()
}

// records reports the number of live records.
func (j *journal) records() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.live
}

// compacted reports the number of records folded into the summary.
func (j *journal) compacted() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return int(j.sum.Count)
}

// segments reports the on-disk file count (sealed + active).
func (j *journal) segments() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slog.Segments()
}

// diskBytes reports the journal's total on-disk footprint.
func (j *journal) diskBytes() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.slog.DiskBytes()
}

// JournalStats summarizes a full journal verification.
type JournalStats struct {
	// Total is every request the journal accounts for: individually live
	// records plus records folded into the compaction summary.
	Total int
	// Live is the number of individually recoverable records.
	Live int
	// Compacted is the number of records folded into the summary.
	Compacted int
	// Injected / Detected / Recovered tally flags across live + compacted.
	Injected  int
	Detected  int
	Recovered int
	// Tainted counts degraded requests (reported as such — not silent).
	Tainted int
	// Kernel counts kernel-kind requests across live + compacted.
	Kernel int
	// Segments counts on-disk files (sealed + active); DiskBytes is their
	// total size.
	Segments  int
	DiskBytes int64
	// XorIDs is the XOR of every accounted request ID (live and compacted) —
	// the auditor's conservation check against the IDs it saw acknowledged.
	XorIDs uint64
	// TornTail reports a discarded partial final frame on the active file.
	TornTail bool
	// Corrupt reports a CRC-failed frame on the active file whose valid
	// prefix was kept — declared damage, never silent.
	Corrupt bool
	// Dropped counts records discarded by compaction-crash dedup.
	Dropped int
}

// VerifyJournal re-verifies every live record in a journal from first
// principles and fails on the first silent corruption: a record whose result
// digest deviates from its (recomputed, for verify jobs) reference without
// being flagged tainted, or a duplicated request ID — including duplicates
// whose copies sit in different segments. Compacted records are checked
// through the summary's conservation arithmetic. The crash campaign and the
// chaos soak run this against the WAL a killed server left behind and again
// after the restarted server resumed over it.
func VerifyJournal(path string) (JournalStats, error) {
	stats := JournalStats{}
	scan, err := wal.RecoverSegmented(path)
	if errors.Is(err, wal.ErrNoCheckpoint) {
		return stats, nil
	}
	if err != nil {
		return stats, err
	}
	stats.TornTail = scan.TornTail
	stats.Corrupt = scan.ActiveCorrupt
	stats.Segments = len(scan.Sealed) + 1
	stats.DiskBytes = scan.DiskBytes
	stats.Dropped = scan.Dropped

	var sum journalSummary
	seen := map[uint64]bool{}
	verifyLive := func(payload []byte) error {
		rec, derr := decodeJournalRecord(payload)
		if derr != nil {
			return derr
		}
		if cerr := rec.check(); cerr != nil {
			return cerr
		}
		if seen[rec.ID] {
			return fmt.Errorf("server: journal records request %d twice", rec.ID)
		}
		seen[rec.ID] = true
		stats.Live++
		stats.XorIDs ^= rec.ID
		if rec.Injected {
			stats.Injected++
		}
		if rec.Detected {
			stats.Detected++
		}
		if rec.Recovered {
			stats.Recovered++
		}
		if rec.Tainted {
			stats.Tainted++
		}
		if rec.Kind == KindKernel {
			stats.Kernel++
		}
		return nil
	}
	for _, raw := range scan.Summary {
		switch len(raw.Payload) {
		case journalSummarySize:
			s, derr := decodeJournalSummary(raw.Payload)
			if derr != nil {
				return stats, derr
			}
			if serr := s.sane(); serr != nil {
				return stats, serr
			}
			sum = s
		case journalRecordSize:
			if err := verifyLive(raw.Payload); err != nil {
				return stats, err
			}
		default:
			return stats, fmt.Errorf("server: journal summary holds a %d-byte payload", len(raw.Payload))
		}
	}
	for _, raw := range scan.Records {
		if err := verifyLive(raw.Payload); err != nil {
			return stats, err
		}
	}
	stats.Compacted = int(sum.Count)
	stats.Total = stats.Live + stats.Compacted
	stats.Injected += int(sum.Injected)
	stats.Detected += int(sum.Detected)
	stats.Recovered += int(sum.Recovered)
	stats.Tainted += int(sum.Tainted)
	stats.Kernel += int(sum.Kernel)
	stats.XorIDs ^= sum.XorIDs
	return stats, nil
}
