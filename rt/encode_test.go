package rt

import (
	"bytes"
	"errors"
	"testing"

	"defuse/internal/checksum"
)

// trackerWithHistory runs a short def/use trace so every accumulator, shadow,
// and counter holds a nontrivial value.
func trackerWithHistory() (*Tracker, *Counter) {
	tr := NewTracker()
	c := &Counter{}
	Def(tr, 3.5, 2)
	UseKnown(tr, 3.5)
	UseKnown(tr, 3.5)
	DefDyn(tr, c, 0.0, 7.25)
	Use(tr, c, 7.25)
	return tr, c
}

func TestEpochStateEncodeDecodeRoundTrip(t *testing.T) {
	tr, _ := trackerWithHistory()
	s := tr.BeginEpoch()
	b, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(b) != EncodedEpochStateSize {
		t.Fatalf("encoded %d bytes, want %d", len(b), EncodedEpochStateSize)
	}
	got, err := DecodeEpochState(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != s {
		t.Fatalf("round trip changed state:\n got %+v\nwant %+v", got, s)
	}
	if !got.Sealed() {
		t.Fatal("decoded snapshot not sealed")
	}

	// Resume into a fresh tracker must reproduce checksums, shadows, and
	// operation counters exactly.
	tr2 := NewTracker()
	if err := tr2.Resume(got); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	d1, u1, ed1, eu1 := tr.Checksums()
	d2, u2, ed2, eu2 := tr2.Checksums()
	if d1 != d2 || u1 != u2 || ed1 != ed2 || eu1 != eu2 {
		t.Fatal("resumed checksums differ")
	}
	if tr.ShadowCopies() != tr2.ShadowCopies() {
		t.Fatal("resumed shadow copies differ")
	}
	defs1, uses1 := tr.OpCounts()
	defs2, uses2 := tr2.OpCounts()
	if defs1 != defs2 || uses1 != uses2 {
		t.Fatal("resumed op counts differ")
	}
}

func TestEncodeUnsealedEpochStateFails(t *testing.T) {
	if _, err := (EpochState{}).Encode(); err == nil {
		t.Fatal("Encode of zero EpochState succeeded")
	}
}

func TestDecodeEpochStateRejectsEveryBitFlip(t *testing.T) {
	tr, _ := trackerWithHistory()
	b, err := tr.BeginEpoch().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for pos := range b {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), b...)
			mut[pos] ^= 1 << bit
			if _, err := DecodeEpochState(mut); !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrCheckpointCorrupt", pos, bit, err)
			}
		}
	}
	// Truncation and padding are corrupt too, never a panic.
	for _, n := range []int{0, 8, len(b) - 1, len(b) + 8} {
		mut := make([]byte, n)
		copy(mut, b)
		if _, err := DecodeEpochState(mut); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("len %d: err = %v, want ErrCheckpointCorrupt", n, err)
		}
	}
}

func TestDetectorFaultEvidenceSurvivesEncodeDecode(t *testing.T) {
	tr, _ := trackerWithHistory()
	tr.CorruptAccumulator(checksum.AccUse, 9)
	if tr.ScrubDetector() == nil {
		t.Fatal("corrupted tracker scrubs clean")
	}
	b, err := tr.BeginEpoch().Encode()
	if err != nil {
		t.Fatal(err)
	}
	s, err := DecodeEpochState(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	tr2 := NewTracker()
	if err := tr2.Resume(s); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	err = tr2.ScrubDetector()
	var dfe *DetectorFaultError
	if !errors.As(err, &dfe) {
		t.Fatalf("resumed tracker scrub = %v, want the surviving detector fault", err)
	}
}

func TestCounterStateRoundTrip(t *testing.T) {
	_, c := trackerWithHistory()
	packed, enc := c.State()
	var c2 Counter
	c2.SetState(packed, enc)
	if c2 != *c {
		t.Fatalf("round trip: %+v != %+v", c2, *c)
	}
	if err := c2.Scrub(); err != nil {
		t.Fatalf("consistent counter scrubs dirty: %v", err)
	}

	// A diverged counter (fault evidence) must survive verbatim.
	CorruptCounter(c, 3)
	packed, enc = c.State()
	var c3 Counter
	c3.SetState(packed, enc)
	if c3.Scrub() == nil {
		t.Fatal("divergence laundered by SetState")
	}
}

func TestEpochStateEncodeIsDeterministic(t *testing.T) {
	tr, _ := trackerWithHistory()
	s := tr.BeginEpoch()
	a, _ := s.Encode()
	b, _ := s.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one snapshot differ")
	}
}
