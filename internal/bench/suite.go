package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"defuse/internal/hwsim"
	"defuse/internal/instrument"
	"defuse/internal/interp"
	"defuse/internal/lang"
	"defuse/telemetry"
)

// Telemetry carries the optional observability hooks through benchmark
// runs: compile phases, plan decisions, run durations, verification
// outcomes, and cost-model gauges all report through it.
type Telemetry struct {
	Trace   telemetry.Sink
	Metrics *telemetry.Registry
	// Tracer records causally linked spans (bench.run roots with supervised
	// epoch/recovery/WAL children). Nil is free.
	Tracer *telemetry.Tracer
}

// Variant names the three compilation modes of Figure 10.
type Variant string

// The measured variants.
const (
	Original     Variant = "Original"
	Resilient    Variant = "Resilient"
	ResilientOpt Variant = "Resilient-Optimized"
)

// variantOptions maps a variant to instrumentation options (Original is not
// instrumented).
func variantOptions(v Variant) instrument.Options {
	switch v {
	case Resilient:
		return instrument.Options{}
	case ResilientOpt:
		return instrument.Options{Split: true, Inspector: true}
	}
	return instrument.Options{}
}

// BuildVariant returns the program for a benchmark variant.
func (b *Benchmark) BuildVariant(v Variant) (*lang.Program, error) {
	return b.BuildVariantWith(v, Telemetry{})
}

// BuildVariantWith is BuildVariant with instrumentation telemetry attached.
func (b *Benchmark) BuildVariantWith(v Variant, tel Telemetry) (*lang.Program, error) {
	prog := b.Program()
	if v == Original {
		return prog, nil
	}
	opt := variantOptions(v)
	opt.Trace, opt.Metrics = tel.Trace, tel.Metrics
	res, err := instrument.Instrument(prog, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: instrumenting %s as %s: %w", b.Name, v, err)
	}
	return res.Prog, nil
}

// RunResult is one measured execution.
type RunResult struct {
	Bench    string
	Variant  Variant
	Duration time.Duration
	Counts   interp.OpCounts
	// Output is a snapshot of the benchmark's float arrays, for
	// equivalence checking across variants.
	Output map[string][]float64
}

// Run executes one variant at the given scale and returns its measurements.
// Instrumented variants must pass their checksum verification; a detection
// on a fault-free run is reported as an error.
func (b *Benchmark) Run(v Variant, scale float64) (*RunResult, error) {
	return b.RunWith(v, scale, Telemetry{})
}

// RunWith is Run with telemetry attached: instrumentation events stream to
// tel.Trace and the run duration lands in a per-bench/variant histogram.
func (b *Benchmark) RunWith(v Variant, scale float64, tel Telemetry) (*RunResult, error) {
	prog, err := b.BuildVariantWith(v, tel)
	if err != nil {
		return nil, err
	}
	params := b.Params(scale)
	m, err := interp.New(prog, params,
		interp.WithTrace(tel.Trace), interp.WithMetrics(tel.Metrics),
		interp.WithTracer(tel.Tracer))
	if err != nil {
		return nil, err
	}
	b.InitDefault(m, params)
	span := tel.Tracer.Start(telemetry.SpanContext{}, "bench.run",
		telemetry.String("bench", b.Name), telemetry.String("variant", string(v)))
	start := time.Now()
	if err := m.Run(); err != nil {
		span.EndErr(err)
		return nil, fmt.Errorf("bench: %s/%s: %w", b.Name, v, err)
	}
	dur := time.Since(start)
	span.EndErr(nil)
	tel.Metrics.Histogram("defuse_bench_run_seconds", telemetry.DefBuckets(),
		telemetry.Label{Key: "bench", Value: b.Name},
		telemetry.Label{Key: "variant", Value: string(v)}).Observe(dur.Seconds())

	out := map[string][]float64{}
	for _, d := range b.Program().Decls {
		if d.Type == lang.TypeFloat && d.IsArray() {
			snap, err := m.SnapshotFloats(d.Name)
			if err != nil {
				return nil, err
			}
			out[d.Name] = snap
		}
	}
	return &RunResult{Bench: b.Name, Variant: v, Duration: dur, Counts: m.Counts, Output: out}, nil
}

// Figure10Row is one benchmark's entry in the Figure 10 reproduction.
type Figure10Row struct {
	Bench           string
	OriginalSeconds float64
	// Wall-clock normalized runtimes (Original = 1.0).
	ResilientTime float64
	OptimizedTime float64
	// Deterministic operation-count normalized runtimes under the software
	// cost model (the primary shape evidence; wall clock of an interpreter
	// tracks these closely).
	ResilientOps float64
	OptimizedOps float64
}

// Figure11Row is one benchmark's entry in the Figure 11 reproduction: the
// estimated normalized runtime of the optimized resilient code when a
// hardware checksum unit absorbs the checksum computation.
type Figure11Row struct {
	Bench      string
	HWEstimate float64
}

// RunBenchmark measures the three variants of one benchmark and checks
// output equivalence.
func RunBenchmark(b *Benchmark, scale float64) (Figure10Row, Figure11Row, error) {
	return RunBenchmarkWith(b, scale, Telemetry{})
}

// RunBenchmarkWith is RunBenchmark with telemetry attached; per-variant cost
// gauges are published as defuse_cost_model{run="bench/variant"}.
func RunBenchmarkWith(b *Benchmark, scale float64, tel Telemetry) (Figure10Row, Figure11Row, error) {
	orig, err := b.RunWith(Original, scale, tel)
	if err != nil {
		return Figure10Row{}, Figure11Row{}, err
	}
	res, err := b.RunWith(Resilient, scale, tel)
	if err != nil {
		return Figure10Row{}, Figure11Row{}, err
	}
	opt, err := b.RunWith(ResilientOpt, scale, tel)
	if err != nil {
		return Figure10Row{}, Figure11Row{}, err
	}
	if tel.Metrics != nil {
		for _, r := range []*RunResult{orig, res, opt} {
			hwsim.RecordMetrics(tel.Metrics, b.Name+"/"+string(r.Variant),
				r.Counts, hwsim.DefaultConfig())
		}
	}
	for _, r := range []*RunResult{res, opt} {
		if err := sameOutput(orig, r); err != nil {
			return Figure10Row{}, Figure11Row{}, err
		}
	}
	baseCost := hwsim.SoftwareCost(orig.Counts)
	row10 := Figure10Row{
		Bench:           b.Name,
		OriginalSeconds: orig.Duration.Seconds(),
		ResilientTime:   ratio(res.Duration.Seconds(), orig.Duration.Seconds()),
		OptimizedTime:   ratio(opt.Duration.Seconds(), orig.Duration.Seconds()),
		ResilientOps:    hwsim.SoftwareCost(res.Counts) / baseCost,
		OptimizedOps:    hwsim.SoftwareCost(opt.Counts) / baseCost,
	}
	row11 := Figure11Row{
		Bench:      b.Name,
		HWEstimate: hwsim.HardwareCost(opt.Counts, hwsim.DefaultConfig()) / baseCost,
	}
	return row10, row11, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

func sameOutput(a, b *RunResult) error {
	for name, want := range a.Output {
		got := b.Output[name]
		if len(got) != len(want) {
			return fmt.Errorf("bench: %s/%s: array %s length mismatch", b.Bench, b.Variant, name)
		}
		for i := range want {
			if want[i] != got[i] && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
				return fmt.Errorf("bench: %s/%s: %s[%d] = %v, want %v",
					b.Bench, b.Variant, name, i, got[i], want[i])
			}
		}
	}
	return nil
}

// Figure10 runs the whole suite and returns the per-benchmark rows plus the
// geometric-mean normalized runtimes (the paper reports 1.788 resilient and
// 1.402 resilient-optimized on its testbed).
func Figure10(scale float64) ([]Figure10Row, []Figure11Row, error) {
	return Figure10With(scale, Telemetry{})
}

// Figure10With is Figure10 with telemetry attached to every run.
func Figure10With(scale float64, tel Telemetry) ([]Figure10Row, []Figure11Row, error) {
	var rows10 []Figure10Row
	var rows11 []Figure11Row
	for _, b := range Suite() {
		r10, r11, err := RunBenchmarkWith(b, scale, tel)
		if err != nil {
			return nil, nil, err
		}
		rows10 = append(rows10, r10)
		rows11 = append(rows11, r11)
	}
	return rows10, rows11, nil
}

// GeoMeans summarizes Figure 10 rows (op-count model).
func GeoMeans(rows []Figure10Row) (resilient, optimized float64) {
	return geomean(rows, func(r Figure10Row) float64 { return r.ResilientOps }),
		geomean(rows, func(r Figure10Row) float64 { return r.OptimizedOps })
}

func geomean(rows []Figure10Row, f func(Figure10Row) float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += math.Log(f(r))
	}
	return math.Exp(sum / float64(len(rows)))
}

// FormatFigure10 renders the rows as the text analogue of Figure 10.
func FormatFigure10(rows []Figure10Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12s %12s\n",
		"Benchmark", "Orig(s)", "Resil(time)", "Opt(time)", "Resil(ops)", "Opt(ops)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.4f %12.3f %12.3f %12.3f %12.3f\n",
			r.Bench, r.OriginalSeconds, r.ResilientTime, r.OptimizedTime, r.ResilientOps, r.OptimizedOps)
	}
	rg, og := GeoMeans(rows)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %12.3f %12.3f\n", "geomean", "", "", "", rg, og)
	return b.String()
}

// FormatFigure11 renders the rows as the text analogue of Figure 11.
func FormatFigure11(rows []Figure11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %16s\n", "Benchmark", "HW-assisted")
	sum := 0.0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %16.4f\n", r.Bench, r.HWEstimate)
		sum += math.Log(r.HWEstimate)
	}
	fmt.Fprintf(&b, "%-10s %16.4f\n", "geomean", math.Exp(sum/float64(len(rows))))
	return b.String()
}
