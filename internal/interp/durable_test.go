package interp

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"defuse/internal/recovery"
)

func durableWALPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "machine.wal")
}

func TestSuperviseDurableCleanRunMatchesSupervise(t *testing.T) {
	ref, rp := planFor(t, epochTestSrc, 12, 4)
	if _, err := rp.Supervise(context.Background(), recovery.DefaultPolicy()); err != nil {
		t.Fatal(err)
	}

	m, p := planFor(t, epochTestSrc, 12, 4)
	path := durableWALPath(t)
	out, err := p.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed || out.Seals != 4 || out.Detected {
		t.Errorf("outcome = %+v, want 4 seals, no resume, clean", out)
	}
	refA, _ := ref.SnapshotFloats("A")
	gotA, _ := m.SnapshotFloats("A")
	for i := range refA {
		if gotA[i] != refA[i] {
			t.Fatalf("A[%d] = %v, want %v", i, gotA[i], refA[i])
		}
	}
	if *m.Pair() != *ref.Pair() {
		t.Error("checksum pair diverged from the in-memory supervised run")
	}
}

func TestSuperviseDurableResumesAcrossMachines(t *testing.T) {
	const n, epochs = 12, 4
	path := durableWALPath(t)

	// First machine runs only epochs 0 and 1 under durable commits, then is
	// abandoned — the moral equivalent of SIGKILL after two seals (each seal
	// is fsynced before the epoch is reported complete).
	_, p1 := planFor(t, epochTestSrc, n, epochs)
	d := &recovery.DurableSupervisor{
		Config: recovery.Config{
			Epochs: 2, // run just the first two epochs of the four-epoch plan
			Run:    p1.RunEpoch,
			Checkpoint: func() any {
				return epochSnap{mem: p1.m.mem.Snapshot(), pair: *p1.m.pair,
					lo: p1.lo, hi: p1.hi, haveBounds: p1.haveBounds}
			},
			Restore: func(snap any) error {
				s := snap.(epochSnap)
				if err := p1.m.mem.Restore(s.mem); err != nil {
					return err
				}
				*p1.m.pair = s.pair
				p1.lo, p1.hi, p1.haveBounds = s.lo, s.hi, s.haveBounds
				return nil
			},
		},
		Path:        path,
		Fingerprint: p1.Fingerprint(), // the full plan's fingerprint
		EncodeState: p1.encodeState,
		DecodeState: p1.decodeState,
	}
	if _, err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A brand-new process: fresh machine, same program and parameters. It
	// must resume at epoch 2 and finish byte-identical to an uninterrupted
	// run — memory words, accumulators, and shadow copies.
	m2, p2 := planFor(t, epochTestSrc, n, epochs)
	out, err := p2.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), path)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resumed || out.ResumeEpoch != 2 {
		t.Fatalf("Resumed=%v ResumeEpoch=%d, want resume at epoch 2", out.Resumed, out.ResumeEpoch)
	}

	ref, rp := planFor(t, epochTestSrc, n, epochs)
	runAll(t, rp)
	refA, _ := ref.SnapshotFloats("A")
	gotA, _ := m2.SnapshotFloats("A")
	for i := range refA {
		if gotA[i] != refA[i] {
			t.Fatalf("A[%d] = %v, want %v", i, gotA[i], refA[i])
		}
	}
	if *m2.Pair() != *ref.Pair() {
		t.Error("resumed pair (accumulators or shadows) differs from uninterrupted run")
	}
	for name, want := range map[string]float64{"first": 123.0, "last": 456.0} {
		if got, _ := m2.Float(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestSuperviseDurableRefusesForeignProgram(t *testing.T) {
	path := durableWALPath(t)
	_, p1 := planFor(t, epochTestSrc, 12, 4)
	if _, err := p1.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), path); err != nil {
		t.Fatal(err)
	}
	// Same file, different parameters: the fingerprint differs, so nothing
	// resumes and the run completes from scratch.
	m2, p2 := planFor(t, epochTestSrc, 8, 4)
	out, err := p2.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed {
		t.Fatal("resumed from a checkpoint of a different configuration")
	}
	if out.CorruptRecords == 0 {
		t.Error("foreign records not reported")
	}
	if got, _ := m2.Float("A", 7); got != 7*3.0+1.0 {
		t.Errorf("A[7] = %v after fresh run", got)
	}
}

func TestSuperviseDurableSurvivesDiskBitFlip(t *testing.T) {
	const n, epochs = 12, 4
	path := durableWALPath(t)
	_, p1 := planFor(t, epochTestSrc, n, epochs)
	if _, err := p1.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), path); err != nil {
		t.Fatal(err)
	}
	// Strike the parked log: one bit in the newest frame.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-9] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, p2 := planFor(t, epochTestSrc, n, epochs)
	out, err := p2.SuperviseDurable(context.Background(), recovery.DefaultPolicy(), path)
	if err != nil {
		t.Fatal(err)
	}
	if out.CorruptRecords == 0 {
		t.Error("disk bit flip not reported as a corrupt record")
	}
	// Whether it resumed from an older record or started fresh, the final
	// state must be the uninterrupted one — never silently wrong.
	ref, rp := planFor(t, epochTestSrc, n, epochs)
	runAll(t, rp)
	refA, _ := ref.SnapshotFloats("A")
	gotA, _ := m2.SnapshotFloats("A")
	for i := range refA {
		if gotA[i] != refA[i] {
			t.Fatalf("A[%d] = %v, want %v", i, gotA[i], refA[i])
		}
	}
	if *m2.Pair() != *ref.Pair() {
		t.Error("pair differs after disk-fault recovery")
	}
}

func TestFingerprintDistinguishesConfigurations(t *testing.T) {
	_, p1 := planFor(t, epochTestSrc, 12, 4)
	_, p2 := planFor(t, epochTestSrc, 12, 4)
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Error("identical configurations fingerprint differently")
	}
	_, p3 := planFor(t, epochTestSrc, 13, 4)
	if p1.Fingerprint() == p3.Fingerprint() {
		t.Error("different parameters share a fingerprint")
	}
	_, p4 := planFor(t, epochTestSrc, 12, 5)
	if p1.Fingerprint() == p4.Fingerprint() {
		t.Error("different epoch counts share a fingerprint")
	}
}
