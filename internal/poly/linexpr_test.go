package poly

import (
	"testing"
	"testing/quick"
)

func TestLinExprBasics(t *testing.T) {
	e := V("j").Scale(2).Add(L(3)).Sub(V("n"))
	if e.Coeff("j") != 2 || e.Coeff("n") != -1 || e.Const() != 3 {
		t.Fatalf("unexpected expr %v", e)
	}
	if e.IsConst() {
		t.Error("expr with vars reported const")
	}
	if got := e.String(); got != "2*j - n + 3" {
		t.Errorf("String() = %q", got)
	}
}

func TestLinExprZeroCoeffRemoved(t *testing.T) {
	e := V("x").Sub(V("x"))
	if !e.IsConst() || e.Const() != 0 {
		t.Errorf("x - x should be constant 0, got %v", e)
	}
	if len(e.Vars()) != 0 {
		t.Errorf("Vars() = %v", e.Vars())
	}
}

func TestTerm(t *testing.T) {
	if e := Term(0, "x"); !e.IsConst() {
		t.Error("Term(0,x) should be constant 0")
	}
	if e := Term(-3, "y"); e.Coeff("y") != -3 {
		t.Error("Term(-3,y) has wrong coefficient")
	}
}

func TestLinExprSubst(t *testing.T) {
	// (2j + n) with j := i + 1 → 2i + n + 2
	e := Term(2, "j").Add(V("n"))
	got := e.Subst("j", V("i").AddConst(1))
	want := Term(2, "i").Add(V("n")).AddConst(2)
	if !got.Equal(want) {
		t.Errorf("Subst = %v, want %v", got, want)
	}
	// substituting an absent var is identity
	if !e.Subst("zz", L(5)).Equal(e) {
		t.Error("substituting absent var changed expr")
	}
}

func TestLinExprRename(t *testing.T) {
	e := V("j").Add(V("n"))
	r := e.Rename(map[string]string{"j": "jp"})
	if r.Coeff("jp") != 1 || r.Coeff("j") != 0 || r.Coeff("n") != 1 {
		t.Errorf("Rename = %v", r)
	}
	// renaming two vars onto the same name merges coefficients
	m := V("a").Add(V("b")).Rename(map[string]string{"a": "c", "b": "c"})
	if m.Coeff("c") != 2 {
		t.Errorf("merged rename = %v", m)
	}
}

func TestLinExprEval(t *testing.T) {
	e := Term(2, "j").Add(V("n")).AddConst(-1)
	v, complete := e.Eval(map[string]int64{"j": 3, "n": 10})
	if !complete || v != 15 {
		t.Errorf("Eval = %d, complete=%v", v, complete)
	}
	_, complete = e.Eval(map[string]int64{"j": 3})
	if complete {
		t.Error("Eval with missing var should report incomplete")
	}
}

func TestLinExprAlgebraProperties(t *testing.T) {
	mk := func(a, b, k int8) LinExpr {
		return Term(int64(a), "x").Add(Term(int64(b), "y")).AddConst(int64(k))
	}
	add := func(a1, b1, k1, a2, b2, k2 int8) bool {
		e, f := mk(a1, b1, k1), mk(a2, b2, k2)
		return e.Add(f).Equal(f.Add(e))
	}
	if err := quick.Check(add, nil); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	subSelf := func(a, b, k int8) bool {
		e := mk(a, b, k)
		return e.Sub(e).IsConst() && e.Sub(e).Const() == 0
	}
	if err := quick.Check(subSelf, nil); err != nil {
		t.Errorf("e - e != 0: %v", err)
	}
	scaleDist := func(a, b, k, c int8) bool {
		e := mk(a, b, k)
		env := map[string]int64{"x": 7, "y": -3}
		lhs, _ := e.Scale(int64(c)).Eval(env)
		rhs, _ := e.Eval(env)
		return lhs == rhs*int64(c)
	}
	if err := quick.Check(scaleDist, nil); err != nil {
		t.Errorf("Scale inconsistent with Eval: %v", err)
	}
}

func TestLinExprString(t *testing.T) {
	cases := []struct {
		e    LinExpr
		want string
	}{
		{L(0), "0"},
		{L(-7), "-7"},
		{V("n"), "n"},
		{V("n").Neg(), "-n"},
		{V("n").Sub(V("j")).AddConst(-1), "-j + n - 1"},
		{Term(3, "i"), "3*i"},
		{Term(-2, "i").AddConst(5), "-2*i + 5"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestGCDAndFloorDiv(t *testing.T) {
	if gcd64(12, -18) != 6 {
		t.Error("gcd64(12,-18) != 6")
	}
	if gcd64(0, 5) != 5 {
		t.Error("gcd64(0,5) != 5")
	}
	if floorDiv(7, 2) != 3 || floorDiv(-7, 2) != -4 || floorDiv(-8, 2) != -4 {
		t.Error("floorDiv wrong")
	}
}

func TestConstraintConstructors(t *testing.T) {
	j, n := V("j"), V("n")
	env := map[string]int64{"j": 4, "n": 5}
	cases := []struct {
		c    Constraint
		want bool
	}{
		{Le(j, n), true},
		{Lt(j, n), true},
		{Lt(n, j), false},
		{Ge(n, j), true},
		{Gt(j, n), false},
		{Eq(j, n), false},
		{Eq(j, j), true},
	}
	for i, c := range cases {
		got, complete := c.c.Holds(env)
		if !complete || got != c.want {
			t.Errorf("case %d (%v): Holds = %v, want %v", i, c.c, got, c.want)
		}
	}
}

func TestConstraintNegate(t *testing.T) {
	// ¬(x >= 0) is x <= -1
	c := GeZero(V("x"))
	neg := c.Negate()
	if len(neg) != 1 {
		t.Fatalf("inequality negation has %d parts", len(neg))
	}
	if ok, _ := neg[0].Holds(map[string]int64{"x": -1}); !ok {
		t.Error("x=-1 should satisfy negation")
	}
	if ok, _ := neg[0].Holds(map[string]int64{"x": 0}); ok {
		t.Error("x=0 should not satisfy negation")
	}
	// ¬(x == 0) is x >= 1 or x <= -1
	eq := EqZero(V("x"))
	neg = eq.Negate()
	if len(neg) != 2 {
		t.Fatalf("equality negation has %d parts", len(neg))
	}
	holdsAny := func(x int64) bool {
		for _, c := range neg {
			if ok, _ := c.Holds(map[string]int64{"x": x}); ok {
				return true
			}
		}
		return false
	}
	if holdsAny(0) || !holdsAny(1) || !holdsAny(-1) {
		t.Error("equality negation covers wrong points")
	}
}

func TestConstraintNormalizeTightening(t *testing.T) {
	// 2x - 3 >= 0 over integers means x >= 2, i.e. x - 2 >= 0 wait:
	// 2x >= 3 → x >= ceil(3/2) = 2 → x - 2 >= 0. Normalized form divides by
	// gcd 2 and floors the constant: floor(-3/2) = -2.
	c, st := GeZero(Term(2, "x").AddConst(-3)).normalize()
	if st != normKeep {
		t.Fatalf("state = %v", st)
	}
	if c.E.Coeff("x") != 1 || c.E.Const() != -2 {
		t.Errorf("normalized to %v, want x - 2 >= 0", c)
	}
	// 2x - 3 == 0 has no integer solution.
	if _, st := EqZero(Term(2, "x").AddConst(-3)).normalize(); st != normInfeasy {
		t.Error("2x=3 should be infeasible over integers")
	}
	// 2x - 4 == 0 normalizes to x - 2 == 0.
	c, st = EqZero(Term(2, "x").AddConst(-4)).normalize()
	if st != normKeep || c.E.Coeff("x") != 1 || c.E.Const() != -2 {
		t.Errorf("2x=4 normalized to %v", c)
	}
	// Constant constraints resolve.
	if _, st := GeZero(L(5)).normalize(); st != normDrop {
		t.Error("5 >= 0 should drop")
	}
	if _, st := GeZero(L(-5)).normalize(); st != normInfeasy {
		t.Error("-5 >= 0 should be infeasible")
	}
}
