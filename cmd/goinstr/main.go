// Command goinstr instruments a Go source file with the def-use checksum
// scheme: every tracked function-level variable's definitions and uses are
// augmented with calls into defuse/rt, and a deferred epilogue verifies the
// def/use and e_def/e_use checksums (panicking on a detected memory error).
//
// Usage:
//
//	goinstr [-funcs f,g] [-o out.go] [-serve addr] file.go
//
// The instrumented source is written to -o (default: standard output). The
// consuming module must be able to import defuse/rt. -serve exposes the live
// telemetry endpoint (/metrics, /trace, /debug/pprof) for the duration of
// the instrumentation — useful for profiling the rewriter on large inputs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"defuse/internal/goinstr"
	"defuse/telemetry"
)

func main() {
	funcs := flag.String("funcs", "", "comma-separated functions to instrument (default: all)")
	out := flag.String("o", "", "output file (default stdout)")
	serve := flag.String("serve", "", "serve live telemetry (metrics, spans, pprof) on this host:port while instrumenting")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: goinstr [-funcs f,g] [-o out.go] [-serve addr] file.go")
		os.Exit(2)
	}
	obs, err := telemetry.SetupObs(telemetry.ObsConfig{ServeAddr: *serve})
	if err != nil {
		fatal(err)
	}
	if obs.Server != nil {
		fmt.Fprintf(os.Stderr, "goinstr: serving telemetry on http://%s\n", obs.Server.Addr())
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var opt goinstr.Options
	if *funcs != "" {
		opt.Funcs = strings.Split(*funcs, ",")
	}
	span := obs.Tracer.Start(telemetry.SpanContext{}, "goinstr.instrument",
		telemetry.String("file", path), telemetry.Int("bytes", len(src)))
	res, rep, err := goinstr.Instrument(path, string(src), opt)
	span.EndErr(err)
	if err != nil {
		fatal(err)
	}
	for fn, vars := range rep.Tracked {
		fmt.Fprintf(os.Stderr, "# %s: tracking %s\n", fn, strings.Join(vars, ", "))
	}
	for fn, sk := range rep.Skipped {
		for v, why := range sk {
			fmt.Fprintf(os.Stderr, "# %s: skipped %s (%s)\n", fn, v, why)
		}
	}
	if err := obs.Finish(); err != nil {
		fatal(err)
	}
	if *out == "" {
		fmt.Print(res)
		return
	}
	if err := os.WriteFile(*out, []byte(res), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goinstr:", err)
	os.Exit(1)
}
