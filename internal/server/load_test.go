package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// refuseTwiceServer refuses the first two attempts of every request ID with
// 429 + Retry-After, then serves the correct verify response — the shape a
// load generator sees from a server riding the degradation ladder.
func refuseTwiceServer(t *testing.T, seed uint64) (*httptest.Server, func(id uint64) int) {
	t.Helper()
	var (
		mu       sync.Mutex
		attempts = map[uint64]int{}
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		attempts[req.ID]++
		n := attempts[req.ID]
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		resp := Response{
			ID: req.ID, Kind: req.Kind,
			Digest: ReferenceDigest(req.Words, req.Epochs, seed, req.ID),
		}
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(ts.Close)
	return ts, func(id uint64) int {
		mu.Lock()
		defer mu.Unlock()
		return attempts[id]
	}
}

// TestRunLoadRetriesRefusals: refused requests are retried with backoff and
// land as successes; Shed records only final outcomes, Retries/RetriedOK
// account for the refused attempts, and the gate still passes.
func TestRunLoadRetriesRefusals(t *testing.T) {
	ts, attempts := refuseTwiceServer(t, 3)
	res, err := RunLoad(context.Background(), LoadConfig{
		Target: ts.URL, Streams: 2, Requests: 6,
		Words: 8, Epochs: 2, Seed: 3, MaxRetries: 3,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	row := res.Row
	if row.Requests != 6 || row.Shed != 0 {
		t.Fatalf("row = %+v, want 6 successes and no final sheds", row)
	}
	if row.Retries != 12 {
		t.Fatalf("row.Retries = %d, want 12 (two refusals per request)", row.Retries)
	}
	if row.RetriedOK != 6 {
		t.Fatalf("row.RetriedOK = %d, want 6 (every request needed retries)", row.RetriedOK)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("Gate must stay meaningful under retried overload: %v", err)
	}
	for id := uint64(1); id <= 6; id++ {
		if got := attempts(id); got != 3 {
			t.Fatalf("request %d saw %d attempts, want 3", id, got)
		}
	}
}

// TestRunLoadRetriesDisabled: MaxRetries < 0 turns retries off — every
// refusal is final and tallied as shed, with the retry counters untouched.
func TestRunLoadRetriesDisabled(t *testing.T) {
	ts, attempts := refuseTwiceServer(t, 3)
	res, err := RunLoad(context.Background(), LoadConfig{
		Target: ts.URL, Streams: 1, Requests: 4,
		Words: 8, Epochs: 2, Seed: 3, MaxRetries: -1,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	row := res.Row
	if row.Shed != 4 || row.Requests != 0 {
		t.Fatalf("row = %+v, want all 4 shed with retries disabled", row)
	}
	if row.Retries != 0 || row.RetriedOK != 0 {
		t.Fatalf("row = %+v, want zero retry tallies", row)
	}
	for id := uint64(1); id <= 4; id++ {
		if got := attempts(id); got != 1 {
			t.Fatalf("request %d saw %d attempts, want 1", id, got)
		}
	}
}

// TestRunLoadRetryExhaustionIsFinalRefusal: a server that never relents makes
// the retry budget run out; the outcome is recorded once, as a shed.
func TestRunLoadRetryExhaustionIsFinalRefusal(t *testing.T) {
	var hits int
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Retry-After", "0")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	res, err := RunLoad(context.Background(), LoadConfig{
		Target: ts.URL, Streams: 1, Requests: 1,
		Words: 8, Epochs: 2, Seed: 3, MaxRetries: 2,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	row := res.Row
	if row.Shed != 1 || row.Retries != 2 || row.RetriedOK != 0 {
		t.Fatalf("row = %+v, want 1 shed after 2 retries", row)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", hits)
	}
}
