package faults

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"defuse/internal/checksum"
)

// detectorCfg builds a detector-targeted epoch cell. BitFlips is 1 so the
// data half of masking/checkpoint trials is always detectable (the paper's
// single-bit guarantee): every divergence the cell reports is then
// attributable to the detector-targeted fault, not to ordinary aliasing.
func detectorCfg(target Target, hardened bool, trials int) CoverageConfig {
	return CoverageConfig{
		Kind: checksum.ModAdd, Words: 32, BitFlips: 1, Pattern: Random,
		Trials: trials, Seed: 1234, Epochs: 6, Recover: true,
		Target: target, Hardened: hardened,
	}
}

func TestUnhardenedAccumulatorFaultReadsAsDataFault(t *testing.T) {
	// An accumulator strike makes def != use with pristine data. The
	// unhardened detector cannot tell the difference: it reports a data
	// fault and spends rollbacks on data that was never wrong — every trial
	// is a false positive.
	res, err := RunCoverage(detectorCfg(TargetAccumulator, false, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives == 0 {
		t.Fatal("unhardened accumulator cell reported no false positives")
	}
	if res.DetectorFaults != 0 {
		t.Errorf("unhardened cell classified %d detector faults; it has no scrub to do so", res.DetectorFaults)
	}
	if res.FalseNegatives != 0 {
		t.Errorf("FalseNegatives = %d; accumulator strikes never corrupt the data", res.FalseNegatives)
	}
}

func TestHardenedAccumulatorFaultClassifiedAndRebuilt(t *testing.T) {
	// Same injections, hardened detector: the boundary scrub sees the
	// primary/shadow divergence first, classifies the failure as a detector
	// fault, and recovery rebuilds state instead of blaming the data.
	res, err := RunCoverage(detectorCfg(TargetAccumulator, true, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("hardened cell still has %d false positives", res.FalsePositives)
	}
	if res.FalseNegatives != 0 || res.Undetected != 0 {
		t.Errorf("FN=%d Undetected=%d, want 0/0", res.FalseNegatives, res.Undetected)
	}
	if res.DetectorFaults == 0 || res.Rebuilds == 0 {
		t.Errorf("DetectorFaults=%d Rebuilds=%d, want both > 0", res.DetectorFaults, res.Rebuilds)
	}
	if res.Recovered != res.Detected || res.Tainted != 0 {
		t.Errorf("Recovered=%d Detected=%d Tainted=%d", res.Recovered, res.Detected, res.Tainted)
	}
}

func TestUnhardenedCounterFaultFalsePositives(t *testing.T) {
	res, err := RunCoverage(detectorCfg(TargetCounter, false, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives == 0 {
		t.Fatal("unhardened counter cell reported no false positives")
	}
	if res.FalseNegatives != 0 {
		t.Errorf("FalseNegatives = %d; counter strikes never corrupt the data", res.FalseNegatives)
	}
}

func TestHardenedCounterFaultAlwaysCaughtByScrub(t *testing.T) {
	// The counter's encoded copy is untouched by the injection, so the
	// consumption-point check diverges in every trial: no escapes, no false
	// verdicts, every failure classified as a detector fault.
	res, err := RunCoverage(detectorCfg(TargetCounter, true, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.Undetected != 0 {
		t.Errorf("Undetected = %d, want 0 (enc copy always diverges)", res.Undetected)
	}
	if res.FalsePositives != 0 || res.FalseNegatives != 0 {
		t.Errorf("FP=%d FN=%d, want 0/0", res.FalsePositives, res.FalseNegatives)
	}
	if res.DetectorFaults == 0 {
		t.Error("no detector faults classified")
	}
	if res.Recovered != res.Detected || res.Tainted != 0 {
		t.Errorf("Recovered=%d Detected=%d Tainted=%d", res.Recovered, res.Detected, res.Tainted)
	}
}

func TestUnhardenedMaskingYieldsFalseNegatives(t *testing.T) {
	// XOR masking always finds its compensating flips, so every unhardened
	// trial ends verified-green with a wrong final state: the adversarial
	// false negative the shadow copies exist to prevent.
	cfg := detectorCfg(TargetMasking, false, 60)
	cfg.Kind = checksum.XOR
	res, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseNegatives == 0 {
		t.Fatal("unhardened XOR masking produced no false negatives")
	}
	if res.FalseNegatives != res.Undetected {
		t.Errorf("FalseNegatives=%d Undetected=%d; every masked escape has a wrong final state",
			res.FalseNegatives, res.Undetected)
	}

	// The paper's ModAdd operator masks only when the accumulator bit
	// polarities line up (~1/4 of trials) — still at least one in 120.
	res, err = RunCoverage(detectorCfg(TargetMasking, false, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseNegatives == 0 {
		t.Fatal("unhardened modadd masking produced no false negatives in 120 trials")
	}
}

func TestHardenedMaskingCaughtByScrub(t *testing.T) {
	// The mask flips accumulator primaries; their shadows disagree, so the
	// hardened boundary scrub converts would-be false negatives into
	// classified detector faults, and every trial recovers.
	for _, kind := range []checksum.Kind{checksum.ModAdd, checksum.XOR} {
		cfg := detectorCfg(TargetMasking, true, 120)
		cfg.Kind = kind
		res, err := RunCoverage(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FalseNegatives != 0 || res.Undetected != 0 {
			t.Errorf("%v: FN=%d Undetected=%d, want 0/0", kind, res.FalseNegatives, res.Undetected)
		}
		if res.DetectorFaults == 0 {
			t.Errorf("%v: no masked trial was classified as a detector fault", kind)
		}
		if res.Recovered != res.Detected || res.Tainted != 0 {
			t.Errorf("%v: Recovered=%d Detected=%d Tainted=%d", kind, res.Recovered, res.Detected, res.Tainted)
		}
	}
}

func TestCheckpointTargetHardenedRefusesCorruptRestore(t *testing.T) {
	// A fault parked in the epoch checkpoint is invisible until rollback
	// needs it. The hardened restore verifies the digest, classifies the
	// corruption, and restarts from the intact initial checkpoint.
	res, err := RunCoverage(detectorCfg(TargetCheckpoint, true, 120))
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointFaults == 0 {
		t.Fatal("hardened checkpoint cell classified no checkpoint faults")
	}
	if res.Restarts == 0 {
		t.Error("corrupt checkpoints must escalate to restarts")
	}
	if res.FalseNegatives != 0 {
		t.Errorf("FalseNegatives = %d, want 0", res.FalseNegatives)
	}
	if res.Recovered != res.Detected || res.Tainted != 0 {
		t.Errorf("Recovered=%d Detected=%d Tainted=%d", res.Recovered, res.Detected, res.Tainted)
	}
}

func TestCheckpointTargetUnhardenedResurrectsCorruption(t *testing.T) {
	// The unchecked restore happily reinstates the corrupt checkpoint, so
	// the re-executed epoch fails again and again until retries exhaust and
	// the run restarts — recovery effort the digest check avoids.
	unhard, err := RunCoverage(detectorCfg(TargetCheckpoint, false, 120))
	if err != nil {
		t.Fatal(err)
	}
	hard, err := RunCoverage(detectorCfg(TargetCheckpoint, true, 120))
	if err != nil {
		t.Fatal(err)
	}
	if unhard.CheckpointFaults != 0 {
		t.Errorf("unhardened cell classified %d checkpoint faults without a digest check", unhard.CheckpointFaults)
	}
	if unhard.Restarts == 0 {
		t.Error("resurrected corruption never exhausted retries into a restart")
	}
	if unhard.Retries <= hard.Retries {
		t.Errorf("unhardened retries (%d) should exceed hardened (%d): each restore resurrects the fault",
			unhard.Retries, hard.Retries)
	}
}

func TestDetectorCellsWorkerCountInvariance(t *testing.T) {
	cells := []CoverageConfig{
		detectorCfg(TargetAccumulator, false, 100),
		detectorCfg(TargetAccumulator, true, 100),
		detectorCfg(TargetCounter, true, 100),
		detectorCfg(TargetMasking, false, 100),
		detectorCfg(TargetCheckpoint, true, 100),
	}
	var ref *CampaignResult
	for _, workers := range []int{1, 4} {
		for _, chunk := range []int{32, 1000} {
			camp := &Campaign{Cells: cells, Workers: workers, ChunkSize: chunk}
			res, err := camp.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for i := range res.Results {
				if !reflect.DeepEqual(res.Results[i], ref.Results[i]) {
					t.Errorf("workers=%d chunk=%d cell %d: %+v != %+v",
						workers, chunk, i, res.Results[i], ref.Results[i])
				}
			}
		}
	}
}

func TestDataTargetStreamUnchangedByDetectorDraws(t *testing.T) {
	// The detector-target coordinates are drawn after the data-target draws,
	// so a plain data cell must produce the same tallies it did before the
	// detector targets existed (guarded here by self-consistency against the
	// recovery-mode cell the campaign suite already pins down).
	cfg := epochCfg(200)
	a, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Target = TargetData // explicit zero value: must be identical
	b, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("explicit TargetData changed the result:\n%+v\n%+v", a, b)
	}
}

func TestParseTarget(t *testing.T) {
	for want, name := range targetNames {
		got, err := ParseTarget(name)
		if err != nil || got != want {
			t.Errorf("ParseTarget(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseTarget("flux-capacitor"); err == nil {
		t.Error("unknown target parsed")
	}
}

func TestValidateDetectorConfigs(t *testing.T) {
	base := detectorCfg(TargetAccumulator, true, 10)
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Epochs = 0
	bad.Recover = false
	if err := bad.Validate(); err == nil {
		t.Error("detector target without epochs validated")
	}
	bad = detectorCfg(TargetCheckpoint, true, 10)
	bad.Recover = false
	if err := bad.Validate(); err == nil {
		t.Error("checkpoint target without Recover validated")
	}
	bad = detectorCfg(TargetMasking, false, 10)
	bad.BitFlips = 2
	if err := bad.Validate(); err == nil {
		t.Error("masking with 2 flips validated")
	}
	bad = detectorCfg(TargetMasking, false, 10)
	bad.Kind = checksum.Fletcher64
	if err := bad.Validate(); err == nil {
		t.Error("masking with a positional operator validated")
	}
}

func TestGate(t *testing.T) {
	clean := CoverageResult{
		CoverageConfig: CoverageConfig{Trials: 10, Recover: true},
		Detected:       10, Recovered: 10,
	}
	pass := &CampaignResult{Completed: true, Results: []CoverageResult{clean}}
	if err := pass.Gate(); err != nil {
		t.Errorf("clean campaign gated: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*CampaignResult)
		want   string
	}{
		{"incomplete", func(r *CampaignResult) { r.Completed = false }, "incomplete"},
		{"undetected", func(r *CampaignResult) { r.Results[0].Undetected = 1 }, "undetected"},
		{"false negative", func(r *CampaignResult) { r.Results[0].FalseNegatives = 2 }, "false negatives"},
		{"false positive", func(r *CampaignResult) { r.Results[0].FalsePositives = 1 }, "false positives"},
		{"tainted", func(r *CampaignResult) { r.Results[0].Tainted = 3 }, "tainted"},
		{"unrecovered", func(r *CampaignResult) { r.Results[0].Recovered = 9 }, "not recovered"},
	}
	for _, c := range cases {
		r := &CampaignResult{Completed: true, Results: []CoverageResult{clean}}
		c.mutate(r)
		err := r.Gate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Gate = %v, want mention of %q", c.name, err, c.want)
		}
	}
}
