package native

import "math"

// This file holds the affine kernels (Table 2) in their variant sets. Use
// counts and live-in counts are the closed forms the polyhedral analysis
// derives; the package tests pin them down by requiring fault-free verifies.

// ---------------------------------------------------------------- cholesky

// Cholesky is the paper's Figure 2 kernel over a row-major n×n matrix.
func Cholesky(a []float64, n int) {
	for j := 0; j < n; j++ {
		a[j*n+j] = math.Sqrt(a[j*n+j])
		for i := j + 1; i < n; i++ {
			a[i*n+j] = a[i*n+j] / a[j*n+j]
		}
	}
}

// CholeskyResilient is the guarded (unsplit) instrumentation: Figure 5.
func CholeskyResilient(a []float64, n int) error {
	var cs CS
	// Prologue: live-in cells are the lower triangle including the
	// diagonal, each read exactly once before being overwritten.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			cs.Def(a[i*n+j], 1)
		}
	}
	for j := 0; j < n; j++ {
		cs.Use(a[j*n+j])
		a[j*n+j] = math.Sqrt(a[j*n+j])
		if j <= n-2 { // the Figure 5 guard: no uses in the last iteration
			cs.Def(a[j*n+j], int64(n-1-j))
		}
		for i := j + 1; i < n; i++ {
			cs.Use(a[i*n+j])
			cs.Use(a[j*n+j])
			a[i*n+j] = a[i*n+j] / a[j*n+j]
			// S2's definitions are never read again: use count 0.
		}
	}
	return cs.Verify()
}

// CholeskyResilientOpt peels the last iteration (Figure 6) so the guard
// disappears.
func CholeskyResilientOpt(a []float64, n int) error {
	var cs CS
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			cs.Def(a[i*n+j], 1)
		}
	}
	for j := 0; j <= n-2; j++ {
		cs.Use(a[j*n+j])
		a[j*n+j] = math.Sqrt(a[j*n+j])
		cs.Def(a[j*n+j], int64(n-1-j))
		for i := j + 1; i < n; i++ {
			cs.Use(a[i*n+j])
			cs.Use(a[j*n+j])
			a[i*n+j] = a[i*n+j] / a[j*n+j]
		}
	}
	if n >= 1 { // peeled j = n-1
		j := n - 1
		cs.Use(a[j*n+j])
		a[j*n+j] = math.Sqrt(a[j*n+j])
	}
	return cs.Verify()
}

// CholeskyHW prices checksum points at a counter bump (nop model).
func CholeskyHW(a []float64, n int) uint64 {
	var s nop
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s.tick()
		}
	}
	for j := 0; j <= n-2; j++ {
		s.tick()
		a[j*n+j] = math.Sqrt(a[j*n+j])
		s.tick()
		for i := j + 1; i < n; i++ {
			s.tick()
			s.tick()
			a[i*n+j] = a[i*n+j] / a[j*n+j]
		}
	}
	if n >= 1 {
		j := n - 1
		s.tick()
		a[j*n+j] = math.Sqrt(a[j*n+j])
	}
	return s.n
}

// ---------------------------------------------------------------- jacobi1d

// Jacobi1D runs tsteps of a 3-point stencil over a and scratch b.
func Jacobi1D(a, b []float64, n, tsteps int) {
	for t := 0; t < tsteps; t++ {
		for i := 1; i <= n-2; i++ {
			b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0
		}
		for i := 1; i <= n-2; i++ {
			a[i] = b[i]
		}
	}
}

// jacobiReaders is the per-timestep read count of interior cell i (the
// number of S1 instances whose stencil touches it).
func jacobiReaders(i, n int) int64 {
	lo, hi := i-1, i+1
	if lo < 1 {
		lo = 1
	}
	if hi > n-2 {
		hi = n - 2
	}
	if hi < lo {
		return 0
	}
	return int64(hi - lo + 1)
}

// Jacobi1DResilient is the guarded instrumentation.
func Jacobi1DResilient(a, b []float64, n, tsteps int) error {
	var cs CS
	if tsteps == 0 || n < 3 {
		return cs.Verify()
	}
	// Prologue: boundary cells are read once per timestep forever; interior
	// initial values are read by timestep 0's stencils only.
	cs.Def(a[0], int64(tsteps))
	cs.Def(a[n-1], int64(tsteps))
	for i := 1; i <= n-2; i++ {
		cs.Def(a[i], jacobiReaders(i, n))
	}
	for t := 0; t < tsteps; t++ {
		for i := 1; i <= n-2; i++ {
			cs.Use(a[i-1])
			cs.Use(a[i])
			cs.Use(a[i+1])
			b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0
			cs.Def(b[i], 1)
		}
		for i := 1; i <= n-2; i++ {
			cs.Use(b[i])
			a[i] = b[i]
			if t < tsteps-1 { // guard: last timestep's defs go unused
				cs.Def(a[i], jacobiReaders(i, n))
			}
		}
	}
	return cs.Verify()
}

// Jacobi1DResilientOpt splits the i loops at the boundary cells and peels
// the last timestep, eliminating both the per-iteration reader computation
// and the t guard.
func Jacobi1DResilientOpt(a, b []float64, n, tsteps int) error {
	var cs CS
	if tsteps == 0 || n < 3 {
		return cs.Verify()
	}
	cs.Def(a[0], int64(tsteps))
	cs.Def(a[n-1], int64(tsteps))
	if n >= 4 {
		cs.Def(a[1], 2)
		cs.Def(a[n-2], 2)
		for i := 2; i <= n-3; i++ {
			cs.Def(a[i], 3)
		}
	} else { // n == 3: single interior cell with one reader
		cs.Def(a[1], 1)
	}
	step := func(t int) {
		for i := 1; i <= n-2; i++ {
			cs.Use(a[i-1])
			cs.Use(a[i])
			cs.Use(a[i+1])
			b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0
			cs.Def(b[i], 1)
		}
		if t < tsteps-1 {
			if n >= 4 {
				cs.Use(b[1])
				a[1] = b[1]
				cs.Def(a[1], 2)
				for i := 2; i <= n-3; i++ {
					cs.Use(b[i])
					a[i] = b[i]
					cs.Def(a[i], 3)
				}
				cs.Use(b[n-2])
				a[n-2] = b[n-2]
				cs.Def(a[n-2], 2)
			} else {
				cs.Use(b[1])
				a[1] = b[1]
				cs.Def(a[1], 1)
			}
			return
		}
		// Peeled final timestep: no def contributions.
		for i := 1; i <= n-2; i++ {
			cs.Use(b[i])
			a[i] = b[i]
		}
	}
	for t := 0; t < tsteps; t++ {
		step(t)
	}
	return cs.Verify()
}

// Jacobi1DHW prices checksum points at nop cost.
func Jacobi1DHW(a, b []float64, n, tsteps int) uint64 {
	var s nop
	if tsteps == 0 || n < 3 {
		return 0
	}
	for i := 0; i < n; i++ {
		s.tick()
	}
	for t := 0; t < tsteps; t++ {
		for i := 1; i <= n-2; i++ {
			s.tick()
			s.tick()
			s.tick()
			b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0
			s.tick()
		}
		for i := 1; i <= n-2; i++ {
			s.tick()
			a[i] = b[i]
			s.tick()
		}
	}
	return s.n
}

// ---------------------------------------------------------------- dsyrk

// Dsyrk computes C += A*Aᵀ for row-major C (n×n) and A (n×m).
func Dsyrk(c, a []float64, n, m int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < m; k++ {
				c[i*n+j] = c[i*n+j] + a[i*m+k]*a[j*m+k]
			}
		}
	}
}

// DsyrkResilient is the guarded instrumentation.
func DsyrkResilient(c, a []float64, n, m int) error {
	var cs CS
	if m == 0 {
		return cs.Verify()
	}
	// Prologue: each C cell is read once (at k=0); each A cell is read 2n
	// times (n times as a[i][k], n times as a[j][k]).
	for i := 0; i < n*n; i++ {
		cs.Def(c[i], 1)
	}
	for i := 0; i < n*m; i++ {
		cs.Def(a[i], int64(2*n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < m; k++ {
				cs.Use(c[i*n+j])
				cs.Use(a[i*m+k])
				cs.Use(a[j*m+k])
				c[i*n+j] = c[i*n+j] + a[i*m+k]*a[j*m+k]
				if k < m-1 { // guard: the k=m-1 def is the final value
					cs.Def(c[i*n+j], 1)
				}
			}
		}
	}
	return cs.Verify()
}

// DsyrkResilientOpt peels the k = m-1 iteration.
func DsyrkResilientOpt(c, a []float64, n, m int) error {
	var cs CS
	if m == 0 {
		return cs.Verify()
	}
	for i := 0; i < n*n; i++ {
		cs.Def(c[i], 1)
	}
	for i := 0; i < n*m; i++ {
		cs.Def(a[i], int64(2*n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k <= m-2; k++ {
				cs.Use(c[i*n+j])
				cs.Use(a[i*m+k])
				cs.Use(a[j*m+k])
				c[i*n+j] = c[i*n+j] + a[i*m+k]*a[j*m+k]
				cs.Def(c[i*n+j], 1)
			}
			k := m - 1
			cs.Use(c[i*n+j])
			cs.Use(a[i*m+k])
			cs.Use(a[j*m+k])
			c[i*n+j] = c[i*n+j] + a[i*m+k]*a[j*m+k]
		}
	}
	return cs.Verify()
}

// DsyrkHW prices checksum points at nop cost.
func DsyrkHW(c, a []float64, n, m int) uint64 {
	var s nop
	if m == 0 {
		return 0
	}
	for i := 0; i < n*n+n*m; i++ {
		s.tick()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < m; k++ {
				s.tick()
				s.tick()
				s.tick()
				c[i*n+j] = c[i*n+j] + a[i*m+k]*a[j*m+k]
				s.tick()
			}
		}
	}
	return s.n
}

// ---------------------------------------------------------------- trisolv

// Trisolv solves L x = b by forward substitution.
func Trisolv(l, x, b []float64, n int) {
	for i := 0; i < n; i++ {
		x[i] = b[i]
		for j := 0; j < i; j++ {
			x[i] = x[i] - l[i*n+j]*x[j]
		}
		x[i] = x[i] / l[i*n+i]
	}
}

// TrisolvResilient is the guarded instrumentation.
func TrisolvResilient(l, x, b []float64, n int) error {
	var cs CS
	// Prologue: b once each; L's strict lower triangle once each; the
	// diagonal once each.
	for i := 0; i < n; i++ {
		cs.Def(b[i], 1)
		for j := 0; j <= i; j++ {
			cs.Def(l[i*n+j], 1)
		}
	}
	for i := 0; i < n; i++ {
		cs.Use(b[i])
		x[i] = b[i]
		cs.Def(x[i], 1) // next reader: S2[i,0] or S3[i]
		for j := 0; j < i; j++ {
			cs.Use(x[i])
			cs.Use(l[i*n+j])
			cs.Use(x[j])
			x[i] = x[i] - l[i*n+j]*x[j]
			cs.Def(x[i], 1)
		}
		cs.Use(x[i])
		cs.Use(l[i*n+i])
		x[i] = x[i] / l[i*n+i]
		if i <= n-2 { // guard: x[n-1]'s final value is never read
			cs.Def(x[i], int64(n-1-i))
		}
	}
	return cs.Verify()
}

// TrisolvResilientOpt peels the last row.
func TrisolvResilientOpt(l, x, b []float64, n int) error {
	var cs CS
	for i := 0; i < n; i++ {
		cs.Def(b[i], 1)
		for j := 0; j <= i; j++ {
			cs.Def(l[i*n+j], 1)
		}
	}
	row := func(i int, defCount int64) {
		cs.Use(b[i])
		x[i] = b[i]
		cs.Def(x[i], 1)
		for j := 0; j < i; j++ {
			cs.Use(x[i])
			cs.Use(l[i*n+j])
			cs.Use(x[j])
			x[i] = x[i] - l[i*n+j]*x[j]
			cs.Def(x[i], 1)
		}
		cs.Use(x[i])
		cs.Use(l[i*n+i])
		x[i] = x[i] / l[i*n+i]
		if defCount > 0 {
			cs.Def(x[i], defCount)
		}
	}
	for i := 0; i <= n-2; i++ {
		row(i, int64(n-1-i))
	}
	if n >= 1 {
		row(n-1, 0)
	}
	return cs.Verify()
}

// TrisolvHW prices checksum points at nop cost.
func TrisolvHW(l, x, b []float64, n int) uint64 {
	var s nop
	for i := 0; i < n; i++ {
		s.tick()
		for j := 0; j <= i; j++ {
			s.tick()
		}
	}
	for i := 0; i < n; i++ {
		s.tick()
		x[i] = b[i]
		s.tick()
		for j := 0; j < i; j++ {
			s.tick()
			s.tick()
			s.tick()
			x[i] = x[i] - l[i*n+j]*x[j]
			s.tick()
		}
		s.tick()
		s.tick()
		x[i] = x[i] / l[i*n+i]
		s.tick()
	}
	return s.n
}

// ---------------------------------------------------------------- LU

// LU factorizes a in place (Doolittle, no pivoting).
func LU(a []float64, n int) {
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			a[k*n+j] = a[k*n+j] / a[k*n+k]
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				a[i*n+j] = a[i*n+j] - a[i*n+k]*a[k*n+j]
			}
		}
	}
}

// luS2DefCount is the use count of S2's definition of a[i][j] at step k: the
// number of step-k+1 reads of that cell before it is overwritten (or, for
// row/column k+1 and the pivot, ever).
func luS2DefCount(k, i, j, n int) int64 {
	kk := k + 1
	switch {
	case i == kk && j == kk:
		return int64(n - k - 2) // next pivot: divisor of S1[k+1,*]
	case i == kk:
		return 1 // row k+1: read once by S1[k+1,j], then overwritten
	case j == kk:
		return int64(n - k - 2) // column k+1: multiplier for S2[k+1,i,*]
	default:
		return 1 // interior: read once by S2[k+1,i,j], then overwritten
	}
}

// LUResilient is the guarded instrumentation.
func LUResilient(a []float64, n int) error {
	var cs CS
	// Prologue: the pivot a[0][0] divides n-1 row entries; row 0 entries are
	// read once (then overwritten by S1[0]); column 0 entries are
	// multipliers for n-1 S2[0] updates; interior entries are read once.
	if n >= 1 {
		cs.Def(a[0], int64(n-1))
	}
	for j := 1; j < n; j++ {
		cs.Def(a[j], 1)
	}
	for i := 1; i < n; i++ {
		cs.Def(a[i*n], int64(n-1))
		for j := 1; j < n; j++ {
			cs.Def(a[i*n+j], 1)
		}
	}
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			cs.Use(a[k*n+j])
			cs.Use(a[k*n+k])
			a[k*n+j] = a[k*n+j] / a[k*n+k]
			cs.Def(a[k*n+j], int64(n-1-k)) // read by S2[k,i,j] for each i
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				cs.Use(a[i*n+j])
				cs.Use(a[i*n+k])
				cs.Use(a[k*n+j])
				a[i*n+j] = a[i*n+j] - a[i*n+k]*a[k*n+j]
				if cnt := luS2DefCount(k, i, j, n); cnt > 0 {
					cs.Def(a[i*n+j], cnt)
				}
			}
		}
	}
	return cs.Verify()
}

// LUResilientOpt splits S2's (i,j) space into the row-(k+1), column-(k+1),
// pivot, and interior regions so each carries a closed-form count.
func LUResilientOpt(a []float64, n int) error {
	var cs CS
	if n >= 1 {
		cs.Def(a[0], int64(n-1))
	}
	for j := 1; j < n; j++ {
		cs.Def(a[j], 1)
	}
	for i := 1; i < n; i++ {
		cs.Def(a[i*n], int64(n-1))
		for j := 1; j < n; j++ {
			cs.Def(a[i*n+j], 1)
		}
	}
	update := func(k, i, j int, cnt int64) {
		cs.Use(a[i*n+j])
		cs.Use(a[i*n+k])
		cs.Use(a[k*n+j])
		a[i*n+j] = a[i*n+j] - a[i*n+k]*a[k*n+j]
		if cnt > 0 {
			cs.Def(a[i*n+j], cnt)
		}
	}
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			cs.Use(a[k*n+j])
			cs.Use(a[k*n+k])
			a[k*n+j] = a[k*n+j] / a[k*n+k]
			cs.Def(a[k*n+j], int64(n-1-k))
		}
		kk := k + 1
		next := int64(n - k - 2)
		if kk < n {
			// Row i = kk: pivot column first, then the rest of the row.
			update(k, kk, kk, next)
			for j := kk + 1; j < n; j++ {
				update(k, kk, j, 1)
			}
			// Rows below: column kk cell, then interior.
			for i := kk + 1; i < n; i++ {
				update(k, i, kk, next)
				for j := kk + 1; j < n; j++ {
					update(k, i, j, 1)
				}
			}
		}
	}
	return cs.Verify()
}

// LUHW prices checksum points at nop cost.
func LUHW(a []float64, n int) uint64 {
	var s nop
	for i := 0; i < n*n; i++ {
		s.tick()
	}
	for k := 0; k < n; k++ {
		for j := k + 1; j < n; j++ {
			s.tick()
			s.tick()
			a[k*n+j] = a[k*n+j] / a[k*n+k]
			s.tick()
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				s.tick()
				s.tick()
				s.tick()
				a[i*n+j] = a[i*n+j] - a[i*n+k]*a[k*n+j]
				s.tick()
			}
		}
	}
	return s.n
}

// ---------------------------------------------------------------- strsm

// Strsm solves L·X = B for row-major L (n×n) and B (n×m), overwriting B.
func Strsm(l, b []float64, n, m int) {
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			for k := 0; k < i; k++ {
				b[i*m+j] = b[i*m+j] - l[i*n+k]*b[k*m+j]
			}
			b[i*m+j] = b[i*m+j] / l[i*n+i]
		}
	}
}

// StrsmResilient is the guarded instrumentation.
func StrsmResilient(l, b []float64, n, m int) error {
	var cs CS
	// Prologue: every B cell's initial value is read once; L's lower
	// triangle (incl. diagonal) is reused across all m right-hand sides.
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cs.Def(b[i*m+j], 1)
		}
		for k := 0; k <= i; k++ {
			cs.Def(l[i*n+k], int64(m))
		}
	}
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			for k := 0; k < i; k++ {
				cs.Use(b[i*m+j])
				cs.Use(l[i*n+k])
				cs.Use(b[k*m+j])
				b[i*m+j] = b[i*m+j] - l[i*n+k]*b[k*m+j]
				cs.Def(b[i*m+j], 1)
			}
			cs.Use(b[i*m+j])
			cs.Use(l[i*n+i])
			b[i*m+j] = b[i*m+j] / l[i*n+i]
			if i <= n-2 { // guard: the last row's solutions are unread
				cs.Def(b[i*m+j], int64(n-1-i))
			}
		}
	}
	return cs.Verify()
}

// StrsmResilientOpt peels the last row of each column solve.
func StrsmResilientOpt(l, b []float64, n, m int) error {
	var cs CS
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cs.Def(b[i*m+j], 1)
		}
		for k := 0; k <= i; k++ {
			cs.Def(l[i*n+k], int64(m))
		}
	}
	row := func(j, i int, cnt int64) {
		for k := 0; k < i; k++ {
			cs.Use(b[i*m+j])
			cs.Use(l[i*n+k])
			cs.Use(b[k*m+j])
			b[i*m+j] = b[i*m+j] - l[i*n+k]*b[k*m+j]
			cs.Def(b[i*m+j], 1)
		}
		cs.Use(b[i*m+j])
		cs.Use(l[i*n+i])
		b[i*m+j] = b[i*m+j] / l[i*n+i]
		if cnt > 0 {
			cs.Def(b[i*m+j], cnt)
		}
	}
	for j := 0; j < m; j++ {
		for i := 0; i <= n-2; i++ {
			row(j, i, int64(n-1-i))
		}
		if n >= 1 {
			row(j, n-1, 0)
		}
	}
	return cs.Verify()
}

// StrsmHW prices checksum points at nop cost.
func StrsmHW(l, b []float64, n, m int) uint64 {
	var s nop
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			s.tick()
		}
		for k := 0; k <= i; k++ {
			s.tick()
		}
	}
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			for k := 0; k < i; k++ {
				s.tick()
				s.tick()
				s.tick()
				b[i*m+j] = b[i*m+j] - l[i*n+k]*b[k*m+j]
				s.tick()
			}
			s.tick()
			s.tick()
			b[i*m+j] = b[i*m+j] / l[i*n+i]
			s.tick()
		}
	}
	return s.n
}
