package rt

import (
	"testing"

	"defuse/internal/checksum"
)

// The redundant-accumulator hardening doubles the bookkeeping on every
// def/use: each fold updates the primary and replays the same operation on
// the complement-encoded shadow (decode, combine, re-encode). These
// benchmarks and the guard below pin that cost.

// defPrimaryOnly/usePrimaryOnly mirror Def/UseKnown exactly — same generic
// shape, same counter increments, same observer branch — except the fold
// writes only the primary accumulator, no shadow replay. The comparison then
// isolates the cost of the redundancy rather than of unrelated bookkeeping.
func defPrimaryOnly[T Word](t *Tracker, v T, n int64) T {
	bits := Bits(v)
	t.pair.Def = checksum.ScaleCombine(t.pair.Kind(), t.pair.Def, bits, n)
	t.defs++
	if t.obs != nil {
		t.obs.ObserveDef(bits, n)
	}
	return v
}

func usePrimaryOnly[T Word](t *Tracker, v T) T {
	bits := Bits(v)
	t.pair.Use = checksum.Combine(t.pair.Kind(), t.pair.Use, bits)
	t.uses++
	if t.obs != nil {
		t.obs.ObserveUse(bits)
	}
	return v
}

// primaryOnlyLoop is the unhardened baseline fold sequence.
func primaryOnlyLoop(tr *Tracker, n int) {
	v := 1.5
	for i := 0; i < n; i++ {
		v = defPrimaryOnly(tr, v, 1)
		_ = usePrimaryOnly(tr, v)
	}
}

// shadowedLoop is the production hot path: Def/UseKnown, whose Pair folds
// update primary and shadow copies.
func shadowedLoop(tr *Tracker, n int) {
	v := 1.5
	for i := 0; i < n; i++ {
		v = Def(tr, v, 1)
		_ = UseKnown(tr, v)
	}
}

func BenchmarkPairShadowed(b *testing.B) {
	tr := NewTracker()
	b.ReportAllocs()
	shadowedLoop(tr, b.N)
}

func BenchmarkPairPrimaryOnly(b *testing.B) {
	tr := NewTracker()
	b.ReportAllocs()
	primaryOnlyLoop(tr, b.N)
}

// TestShadowedAccumulatorOverheadBudget guards the hardening's hot-path cost.
// The design budget is <=2x per fold (the shadow replay is one rotate-and-
// invert decode, the same combine, and one encode — all register arithmetic,
// no extra memory traffic beyond the adjacent shadow word). The assertion
// threshold is 4x so CI timer jitter cannot fail the build; the measured
// ratio is logged for inspection. A regression past 4x means the shadow
// update stopped being straight-line arithmetic (an allocation, a call, a
// branch miss) and the hardening needs to be re-examined.
func TestShadowedAccumulatorOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	measure := func(f func(tr *Tracker, n int)) float64 {
		tr := NewTracker()
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) { f(tr, b.N) })
			ns := float64(r.NsPerOp())
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	hardened := measure(shadowedLoop)
	baseline := measure(primaryOnlyLoop)
	ratio := hardened / baseline
	t.Logf("shadowed %.2f ns/op, primary-only %.2f ns/op, ratio %.3f (budget 2x, guard 4x)", hardened, baseline, ratio)
	if ratio > 4 {
		t.Errorf("redundant-accumulator overhead ratio %.3f exceeds the 4x guard", ratio)
	}
}

// TestShadowedHotPathZeroAllocs pins that the shadow replay allocates
// nothing: the hardening must stay pure register/word arithmetic.
func TestShadowedHotPathZeroAllocs(t *testing.T) {
	tr := NewTracker()
	var c Counter
	allocs := testing.AllocsPerRun(100, func() {
		v := DefDyn(tr, &c, 1.25, 2.5)
		v = Use(tr, &c, v)
		Final(tr, &c, v)
		if err := tr.ScrubDetector(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("hardened dynamic path allocates %.1f per run, want 0", allocs)
	}
}
