package telemetry

import (
	"encoding/json"
	"math"
	"testing"
)

func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	// 10 observations in (1,2], 10 in (2,4].
	counts := []uint64{0, 10, 10, 0, 0}
	if got := QuantileFromBuckets(bounds, counts, 0.5); got != 2 {
		t.Errorf("p50 = %v, want 2 (upper edge of the covering bucket)", got)
	}
	if got := QuantileFromBuckets(bounds, counts, 0.25); got != 1.5 {
		t.Errorf("p25 = %v, want 1.5 (midway through (1,2])", got)
	}
	if got := QuantileFromBuckets(bounds, counts, 1); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2}
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// All mass in +Inf: the best finite statement is the largest bound.
	if got := QuantileFromBuckets(bounds, []uint64{0, 0, 5}, 0.5); got != 2 {
		t.Errorf("+Inf-bucket p50 = %v, want 2", got)
	}
	// First bucket interpolates from lower edge 0.
	if got := QuantileFromBuckets(bounds, []uint64{10, 0, 0}, 0.5); got != 0.5 {
		t.Errorf("first-bucket p50 = %v, want 0.5", got)
	}
	if got := QuantileFromBuckets(nil, []uint64{3}, 0.5); got != 0 {
		t.Errorf("no bounds p50 = %v, want 0", got)
	}
}

func TestHistogramQuantileAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("defuse_epoch_verify_seconds", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 99; i++ {
		h.Observe(0.005)
	}
	h.Observe(0.05)

	if p50 := h.Quantile(0.5); p50 <= 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %v, want within (0.001, 0.01]", p50)
	}
	if p999 := h.Quantile(0.999); p999 <= 0.01 || p999 > 0.1 {
		t.Errorf("p999 = %v, want within (0.01, 0.1]", p999)
	}

	snap := reg.Snapshot()
	if len(snap.Metrics) != 1 {
		t.Fatalf("snapshot has %d metrics", len(snap.Metrics))
	}
	q := snap.Metrics[0].Quantiles
	if q == nil || q["p50"] != h.Quantile(0.5) || q["p99"] != h.Quantile(0.99) || q["p999"] != h.Quantile(0.999) {
		t.Errorf("snapshot quantiles = %v", q)
	}
	// Snapshots must marshal: quantiles can never be NaN/Inf.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}

	// Empty histograms omit the quantile block entirely.
	reg2 := NewRegistry()
	reg2.Histogram("empty_seconds", DefBuckets())
	if q := reg2.Snapshot().Metrics[0].Quantiles; q != nil {
		t.Errorf("empty histogram published quantiles %v", q)
	}
}

func TestFamilyQuantilesMergesLabelSets(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{1, 2, 4}
	a := reg.Histogram("defuse_detection_latency_epochs", bounds, Label{Key: "cell", Value: "a"})
	b := reg.Histogram("defuse_detection_latency_epochs", bounds, Label{Key: "cell", Value: "b"})
	for i := 0; i < 50; i++ {
		a.Observe(0.5) // first bucket
		b.Observe(3)   // third bucket
	}
	snap := reg.Snapshot()
	q, ok := snap.FamilyQuantiles("defuse_detection_latency_epochs")
	if !ok {
		t.Fatal("family not found")
	}
	if q.Count != 100 {
		t.Errorf("merged count = %d, want 100", q.Count)
	}
	// Half the mass is <=1, half in (2,4]: p50 sits at the first bound and
	// p99 inside the third bucket.
	if q.P50 != 1 {
		t.Errorf("merged p50 = %v, want 1", q.P50)
	}
	if q.P99 <= 2 || q.P99 > 4 {
		t.Errorf("merged p99 = %v, want within (2, 4]", q.P99)
	}
	if math.IsNaN(q.P999) {
		t.Error("p999 is NaN")
	}

	if _, ok := snap.FamilyQuantiles("no_such_family"); ok {
		t.Error("absent family reported ok")
	}
	reg.Histogram("quiet_seconds", bounds)
	if _, ok := reg.Snapshot().FamilyQuantiles("quiet_seconds"); ok {
		t.Error("zero-observation family reported ok")
	}
}
