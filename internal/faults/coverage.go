package faults

import (
	"fmt"
	"strconv"

	"defuse/internal/checksum"
	"defuse/telemetry"
)

// This file implements the Table 1 fault-coverage experiment of the paper:
// initialize an array of 64-bit integers, compute its checksum(s), inject a
// k-bit error, recompute, and count the trials in which the checksums still
// match (the error escaped detection).

// CoverageConfig describes one cell of Table 1.
type CoverageConfig struct {
	Kind     checksum.Kind // checksum operator (the paper uses ModAdd)
	Words    int           // array size in 64-bit words (10^2, 10^4, 10^6)
	BitFlips int           // number of bits flipped per trial (2..6)
	Pattern  Pattern       // data initialization
	Dual     bool          // use the two-checksum (rotated) scheme
	Trials   int           // number of injection trials (paper: 100,000)
	Seed     int64         // RNG seed

	// Trace, when non-nil, receives one fault.injected event per trial
	// (with the flipped word/bit coordinates) and a detection or verify.ok
	// event for its outcome.
	Trace telemetry.Sink
	// Metrics, when non-nil, receives per-cell trial and undetected
	// counters labeled by flips/words/pattern/scheme.
	Metrics *telemetry.Registry
}

// CoverageResult reports the outcome of a coverage experiment.
type CoverageResult struct {
	CoverageConfig
	Undetected int // trials whose checksum(s) matched despite the error
}

// UndetectedPercent returns the percentage of undetected errors, the quantity
// Table 1 reports.
func (r CoverageResult) UndetectedPercent() float64 {
	if r.Trials == 0 {
		return 0
	}
	return 100 * float64(r.Undetected) / float64(r.Trials)
}

func (r CoverageResult) String() string {
	scheme := "one checksum"
	if r.Dual {
		scheme = "two checksums"
	}
	return fmt.Sprintf("%d flips, N=%d, %v, %s: %.3f%% undetected",
		r.BitFlips, r.Words, r.Pattern, scheme, r.UndetectedPercent())
}

// RunCoverage executes the experiment described by cfg.
//
// Following the paper's methodology, each trial re-initializes the data,
// computes the initial checksum(s), flips cfg.BitFlips uniformly chosen
// distinct bits, recomputes, and compares. For AllZero/AllOne patterns the
// data is identical across trials, so it is initialized once; for Random it
// is refilled per trial.
func RunCoverage(cfg CoverageConfig) CoverageResult {
	if cfg.Trials <= 0 {
		panic("faults: RunCoverage needs a positive trial count")
	}
	if cfg.Words <= 0 {
		panic("faults: RunCoverage needs a positive word count")
	}
	in := NewInjector(cfg.Seed)
	data := make([]uint64, cfg.Words)
	res := CoverageResult{CoverageConfig: cfg}

	scheme := "single"
	if cfg.Dual {
		scheme = "dual"
	}
	cellLabels := []telemetry.Label{
		{Key: "flips", Value: strconv.Itoa(cfg.BitFlips)},
		{Key: "words", Value: strconv.Itoa(cfg.Words)},
		{Key: "pattern", Value: cfg.Pattern.String()},
		{Key: "scheme", Value: scheme},
	}
	trialsCtr := cfg.Metrics.Counter("defuse_faultcov_trials_total", cellLabels...)
	undetCtr := cfg.Metrics.Counter("defuse_faultcov_undetected_total", cellLabels...)

	in.Fill(data, cfg.Pattern)
	base1, base2 := initialSums(cfg, data)

	for trial := 0; trial < cfg.Trials; trial++ {
		if cfg.Pattern == Random {
			in.Fill(data, cfg.Pattern)
			base1, base2 = initialSums(cfg, data)
		}
		flips := in.FlipBits(data, cfg.BitFlips)
		var s1, s2 uint64
		if cfg.Dual {
			s1, s2 = checksum.DualSum(cfg.Kind, data)
		} else {
			s1 = checksum.Sum(cfg.Kind, data)
		}
		undetected := s1 == base1 && (!cfg.Dual || s2 == base2)
		if undetected {
			res.Undetected++
			undetCtr.Inc()
		}
		trialsCtr.Inc()
		if cfg.Trace != nil {
			coords := make([]map[string]any, len(flips))
			for i, f := range flips {
				coords[i] = map[string]any{"word": f.Word, "bit": f.Bit}
			}
			telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
				"trial": trial, "flips": coords, "scheme": scheme,
				"words": cfg.Words, "pattern": cfg.Pattern.String(),
			})
			if undetected {
				// The checksums matched despite the error: the injected
				// fault escaped (verify passed, wrongly).
				telemetry.Emit(cfg.Trace, telemetry.EvVerifyOK, map[string]any{
					"trial": trial, "escaped": true,
				})
			} else {
				telemetry.Emit(cfg.Trace, telemetry.EvDetection, map[string]any{
					"trial": trial,
				})
			}
		}
		// Undo the flips so constant-pattern runs can reuse the base sums.
		for _, f := range flips {
			data[f.Word] ^= 1 << uint(f.Bit)
		}
	}
	return res
}

func initialSums(cfg CoverageConfig, data []uint64) (uint64, uint64) {
	if cfg.Dual {
		return checksum.DualSum(cfg.Kind, data)
	}
	return checksum.Sum(cfg.Kind, data), 0
}

// Table1Cell runs the paper's Table 1 cell for the given parameters with the
// paper's operator (integer modulo addition).
func Table1Cell(words, bitFlips int, p Pattern, dual bool, trials int, seed int64) CoverageResult {
	return RunCoverage(CoverageConfig{
		Kind:     checksum.ModAdd,
		Words:    words,
		BitFlips: bitFlips,
		Pattern:  p,
		Dual:     dual,
		Trials:   trials,
		Seed:     seed,
	})
}
