// Cholesky: the paper's affine running example (Figure 2). This example
// walks the full compile-time pipeline — polyhedral extraction, exact flow
// dependences, Algorithm 1 use counts, index-set splitting — then runs a
// fault-injection campaign against the instrumented kernel and reports the
// detection rate.
//
//	go run ./examples/cholesky
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"defuse"
	"defuse/internal/deps"
	"defuse/internal/interp"
	"defuse/internal/pdg"
	"defuse/internal/usecount"
)

const src = `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`

func main() {
	prog, err := defuse.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// Compile-time analysis (Section 3).
	model, err := pdg.Extract(prog)
	if err != nil {
		log.Fatal(err)
	}
	flow := deps.Analyze(model)
	uc := usecount.Analyze(flow)
	fmt.Println("== Section 3 analysis ==")
	for _, d := range flow.Deps {
		fmt.Printf("flow dependence: %v\n", d)
	}
	s1 := model.Statement("S1")
	if dc := uc.Defs[s1]; dc != nil && len(dc.Contribs) > 0 {
		fmt.Printf("use count of S1 (paper: n-1-j): %s\n\n", dc.Contribs[0].Count)
	}

	// Instrument with index-set splitting (Figure 6).
	res, err := defuse.Compile(src, defuse.Options{Split: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== instrumented + index-set split (Figure 6) ==")
	fmt.Println(res.Source)

	// Fault-injection campaign: random single-bit flips at random steps.
	const n = 16
	setup := func(m *defuse.Machine) {
		rng := rand.New(rand.NewSource(7))
		m.FillFloat("A", func(i int64) float64 { return 0.1 * rng.Float64() })
		for d := int64(0); d < n; d++ {
			m.SetFloat("A", 40+rng.Float64(), d, d)
		}
	}
	clean, err := defuse.NewMachine(res.Prog, map[string]int64{"n": n})
	if err != nil {
		log.Fatal(err)
	}
	setup(clean)
	if err := clean.Run(); err != nil {
		log.Fatalf("false positive: %v", err)
	}
	total := clean.Counts.Stmts
	fmt.Printf("fault-free run verified (%d statements executed)\n", total)

	rng := rand.New(rand.NewSource(8))
	detected, trials := 0, 200
	for t := 0; t < trials; t++ {
		m, err := defuse.NewMachine(res.Prog, map[string]int64{"n": n})
		if err != nil {
			log.Fatal(err)
		}
		setup(m)
		base, size, _ := m.Region("A")
		step := uint64(rng.Int63n(int64(total))) + 1
		addr := base + rng.Intn(size)
		bit := rng.Intn(64)
		fired := false
		m.SetStepHook(func(cur uint64) {
			if !fired && cur == step {
				m.Mem().FlipBit(addr, bit)
				fired = true
			}
		})
		err = m.Run()
		var de *interp.DetectionError
		if errors.As(err, &de) {
			detected++
		}
	}
	fmt.Printf("fault injection: %d/%d random single-bit flips detected\n", detected, trials)
	fmt.Println("(undetected flips land outside any def-use window: after a value's")
	fmt.Println(" last use, or in cells whose remaining uses were already consumed)")
}
