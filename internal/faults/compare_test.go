package faults

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"defuse/internal/checksum"
)

func smallCompare() CompareConfig {
	return CompareConfig{Words: 16, Epochs: 3, Trials: 40, Seed: 99, Kind: checksum.ModAdd}
}

// TestComparisonExpectationMatrix is the PR's acceptance shape in miniature:
// the data-checksum backend must let every valid-word-aliasing trial escape
// (with a wrong final state — false negatives, not benign survivals) while
// the address-stream and dual-execution backends catch all of them, and the
// address-stream backend must be blind to pure data flips.
func TestComparisonExpectationMatrix(t *testing.T) {
	res, err := RunComparison(context.Background(), smallCompare())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Gate(); err != nil {
		t.Fatalf("comparison gate failed: %v", err)
	}
	byKey := map[string]CompareCellResult{}
	for _, c := range res.Cells {
		byKey[c.Backend+"/"+c.Cell] = c
	}
	alias := byKey["checksum/addr-alias"]
	if alias.Detected != 0 || alias.Undetected != alias.Trials || alias.Trials == 0 {
		t.Fatalf("checksum addr-alias: detected %d, undetected %d of %d — the ledger should balance over every aliased RMW",
			alias.Detected, alias.Undetected, alias.Trials)
	}
	if alias.FalseNegatives != alias.Undetected {
		t.Fatalf("checksum addr-alias: %d false negatives of %d escapes — every escape must corrupt the final state",
			alias.FalseNegatives, alias.Undetected)
	}
	for _, be := range []string{"addrsum", "dme"} {
		c := byKey[be+"/addr-alias"]
		if c.Undetected != 0 || c.Detected == 0 {
			t.Fatalf("%s addr-alias: detected %d, undetected %d — must gate at zero escapes", be, c.Detected, c.Undetected)
		}
	}
	blind := byKey["addrsum/data-flip"]
	if blind.Detected != 0 || blind.Undetected == 0 {
		t.Fatalf("addrsum data-flip: detected %d — address streams must never see values", blind.Detected)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d backend rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.AllExpected {
			t.Errorf("backend %s: AllExpected false", row.Backend)
		}
		if row.NsPerTrial <= 0 {
			t.Errorf("backend %s: no per-trial cost measured", row.Backend)
		}
	}
}

// TestComparisonDeterministic: the shared (seed, trial) schedule makes the
// whole comparison a pure function of its config.
func TestComparisonDeterministic(t *testing.T) {
	cfg := smallCompare()
	cfg.Trials = 25
	a, err := RunComparison(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComparison(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Fatal("identical configs produced different cell tallies")
	}
}

func TestComparisonValidation(t *testing.T) {
	bad := smallCompare()
	bad.Words = 1
	if _, err := RunComparison(context.Background(), bad); err == nil {
		t.Fatal("comparison accepted a 1-word region (no wrong location exists)")
	}
	bad = smallCompare()
	bad.Trials = 0
	if _, err := RunComparison(context.Background(), bad); err == nil {
		t.Fatal("comparison accepted zero trials")
	}
}

// TestAddrFaultRequiresRandomPattern pins the benign-no-op hazard: under a
// constant pattern a redirected load reads the same value it would have read
// anyway, so the cell would tally phantom escapes no backend could prevent.
func TestAddrFaultRequiresRandomPattern(t *testing.T) {
	cfg := CoverageConfig{
		Kind: checksum.ModAdd, Words: 16, BitFlips: 1, Pattern: AllZero,
		Trials: 10, Seed: 1, Epochs: 2, AddrFault: AddrAlias,
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted an address-fault cell with a constant pattern")
	}
	cfg.Pattern = Random
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate rejected a well-formed address-fault cell: %v", err)
	}
}

// TestCampaignRejectsDifferentCellMatrix: the resume fingerprint covers the
// backend and fault-shape columns, so a checkpoint written by one cell
// matrix is refused by a campaign whose cells differ only there.
func TestCampaignRejectsDifferentCellMatrix(t *testing.T) {
	base := CoverageConfig{
		Kind: checksum.ModAdd, Words: 16, BitFlips: 1, Pattern: Random,
		Trials: 50, Seed: 7, Epochs: 2,
	}
	for _, mutate := range []struct {
		name string
		mut  func(*CoverageConfig)
	}{
		{"backend", func(c *CoverageConfig) { c.Backend = BackendAddrsum }},
		{"addr-fault", func(c *CoverageConfig) { c.AddrFault = AddrAlias }},
	} {
		path := filepath.Join(t.TempDir(), "ckpt.json")
		if _, err := (&Campaign{Cells: []CoverageConfig{base}, CheckpointPath: path}).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		changed := base
		mutate.mut(&changed)
		if _, err := (&Campaign{Cells: []CoverageConfig{changed}, CheckpointPath: path}).Run(context.Background()); err == nil {
			t.Fatalf("%s: checkpoint from a different cell matrix accepted on resume", mutate.name)
		}
	}
}

// TestDMEBackendHardenedMatchesBaseline: the DME trial honors the hardened
// checkpoint path (digest-checked restores) without changing verdicts.
func TestDMEBackendHardenedMatchesBaseline(t *testing.T) {
	cfg := CoverageConfig{
		Kind: checksum.ModAdd, Words: 16, BitFlips: 1, Pattern: Random,
		Trials: 30, Seed: 3, Epochs: 3, Backend: BackendDME, AddrFault: AddrAlias,
	}
	plain, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hardened = true
	hard, err := RunCoverage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Detected != hard.Detected || plain.Undetected != hard.Undetected {
		t.Fatalf("hardened verdicts (%d/%d) differ from baseline (%d/%d)",
			hard.Detected, hard.Undetected, plain.Detected, plain.Undetected)
	}
	if plain.Undetected != 0 {
		t.Fatalf("dme let %d aliased trials escape", plain.Undetected)
	}
}
