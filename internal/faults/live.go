package faults

// Live sampled fault injection (the FastFlip-style deployment mode from
// PAPERS.md): instead of dedicated offline campaigns, a resident service
// injects faults into a small sampled fraction of its live requests and
// checks that each one is detected and recovered in place. The sampler is a
// pure function of (seed, request ID), so the server deciding *whether* to
// inject and the load generator deciding *which requests to audit* agree
// exactly without any side channel.

// LiveSampler deterministically selects a fraction of request IDs for fault
// injection. Selection hashes the ID with a seeded splitmix64 step and
// compares against a fixed-point threshold, so the hit set is stable across
// restarts, uniformly spread across the ID space, and reproducible by any
// party that knows (rate, seed).
type LiveSampler struct {
	seed      uint64
	threshold uint64 // hits are draws strictly below this
	addrTh    uint64 // hits whose kind draw is below this get an address fault
}

// NewLiveSampler returns a sampler hitting approximately rate (clamped to
// [0,1]) of all request IDs under the given seed.
func NewLiveSampler(rate float64, seed uint64) *LiveSampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	var th uint64
	switch {
	case rate == 1:
		th = ^uint64(0)
	default:
		// rate * 2^64 without overflowing float64 conversion at the top end.
		th = uint64(rate * float64(1<<63) * 2)
	}
	return &LiveSampler{seed: seed, threshold: th}
}

// WithAddrFraction makes approximately frac (clamped to [0,1]) of sampled
// hits address faults (a wrong-location load) instead of data bit flips.
// Both parties deriving plans must use the same fraction — it is part of the
// sampler's shared (rate, seed, frac) contract. The kind draw extends the
// plan's derivation chain, so frac 0 reproduces the original plans exactly.
func (s *LiveSampler) WithAddrFraction(frac float64) *LiveSampler {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if frac == 1 {
		s.addrTh = ^uint64(0)
	} else {
		s.addrTh = uint64(frac * float64(1<<63) * 2)
	}
	return s
}

// splitmix64 is the finalizer used throughout the repo for deterministic
// derivation (trial sub-seeds, snapshot digests).
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Draw returns the request's 64-bit hash draw. Callers that need more
// deterministic randomness for a hit (which word, which bit, which epoch)
// derive it from this draw with further splitmix64 steps rather than from a
// shared RNG, keeping requests independent.
func (s *LiveSampler) Draw(id uint64) uint64 {
	return splitmix64(s.seed ^ splitmix64(id))
}

// Sample reports whether request id is selected for injection.
func (s *LiveSampler) Sample(id uint64) bool {
	if s == nil || s.threshold == 0 {
		return false
	}
	return s.Draw(id) < s.threshold
}

// LiveKind selects the fault shape a sampled request receives.
type LiveKind int

const (
	// LiveFlip is a single transient bit flip in one tracked word.
	LiveFlip LiveKind = iota
	// LiveAddrWrong is a transient address-generation error: one load
	// observes a different valid tracked word (the plan's Partner) instead
	// of its intended Word.
	LiveAddrWrong
)

// String returns the wire label for the kind.
func (k LiveKind) String() string {
	if k == LiveAddrWrong {
		return "addr-wrong"
	}
	return "flip"
}

// LivePlan is the concrete injection a sampled request receives: one
// transient fault — a bit flip or a wrong-location load — mid-way through
// one epoch. All coordinates are derived from the request's draw, so the
// same (rate, seed, addr-fraction, id, words, epochs) always yields the
// same plan.
type LivePlan struct {
	Epoch int      // epoch during which the fault lands
	Word  int      // index of the struck (intended) word
	Bit   int      // bit position 0..63 (LiveFlip only)
	Kind  LiveKind // fault shape
	// Partner is the valid word a LiveAddrWrong load observes instead of
	// Word; equal to Word for LiveFlip plans.
	Partner int
}

// Plan derives the injection plan for a sampled request over a workload of
// the given word count and epoch count. Both must be positive. The kind and
// partner draws extend the derivation chain after the flip coordinates, so
// every earlier coordinate is unchanged from the flip-only sampler — two
// parties disagreeing only on the address fraction still agree on where a
// flip would land.
func (s *LiveSampler) Plan(id uint64, words, epochs int) LivePlan {
	d := s.Draw(id)
	e := splitmix64(d)
	w := splitmix64(e)
	b := splitmix64(w)
	p := LivePlan{
		Epoch: int(e % uint64(epochs)),
		Word:  int(w % uint64(words)),
		Bit:   int(b % 64),
	}
	p.Partner = p.Word
	kd := splitmix64(b)
	if kd < s.addrTh && words > 1 {
		p.Kind = LiveAddrWrong
		pd := splitmix64(kd)
		j := int(pd % uint64(words-1))
		if j >= p.Word {
			j++ // skip the intended word: the partner must be a wrong location
		}
		p.Partner = j
	}
	return p
}
