package interp

import (
	"errors"
	"math"
	"testing"

	"defuse/internal/checksum"
	"defuse/internal/lang"
)

func mustMachine(t *testing.T, src string, params map[string]int64, opts ...Option) *Machine {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prog, params, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSimpleArithmetic(t *testing.T) {
	m := mustMachine(t, `
program t()
float x, y;
x = 2.0;
y = x * 3.0 + 1.0;
x = y - 0.5;
`, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	x, _ := m.Float("x")
	y, _ := m.Float("y")
	if y != 7.0 || x != 6.5 {
		t.Errorf("x=%v y=%v", x, y)
	}
}

func TestForLoopAndArrays(t *testing.T) {
	m := mustMachine(t, `
program t(n)
float A[n];
float sum;
for i = 0 to n - 1 {
  A[i] = i * 2;
}
sum = 0.0;
for i = 0 to n - 1 {
  sum += A[i];
}
`, map[string]int64{"n": 10})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	sum, _ := m.Float("sum")
	if sum != 90 {
		t.Errorf("sum = %v, want 90", sum)
	}
}

func TestCholeskyNumerics(t *testing.T) {
	// Run the paper's Figure 2 kernel on a small SPD-ish matrix and verify
	// against a direct Go computation.
	src := `
program cholesky(n)
float A[n][n];
for j = 0 to n - 1 {
  S1: A[j][j] = sqrt(A[j][j]);
  for i = j + 1 to n - 1 {
    S2: A[i][j] = A[i][j] / A[j][j];
  }
}
`
	const n = 5
	init := func(i, j int64) float64 {
		if i == j {
			return float64(10 + i)
		}
		return 1.0 / float64(i+j+1)
	}
	m := mustMachine(t, src, map[string]int64{"n": n})
	ref := make([][]float64, n)
	for i := int64(0); i < n; i++ {
		ref[i] = make([]float64, n)
		for j := int64(0); j < n; j++ {
			m.SetFloat("A", init(i, j), i, j)
			ref[i][j] = init(i, j)
		}
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		ref[j][j] = math.Sqrt(ref[j][j])
		for i := j + 1; i < n; i++ {
			ref[i][j] = ref[i][j] / ref[j][j]
		}
	}
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			got, _ := m.Float("A", i, j)
			if math.Abs(got-ref[i][j]) > 1e-12 {
				t.Errorf("A[%d][%d] = %v, want %v", i, j, got, ref[i][j])
			}
		}
	}
}

func TestWhileAndIntVars(t *testing.T) {
	m := mustMachine(t, `
program t(limit)
int k, total;
k = 0;
total = 0;
while (k < limit) {
  total = total + k;
  k = k + 1;
}
`, map[string]int64{"limit": 100})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	total, _ := m.Int("total")
	if total != 4950 {
		t.Errorf("total = %d", total)
	}
}

func TestIfElseAndComparisons(t *testing.T) {
	m := mustMachine(t, `
program t()
int a, b, r1, r2, r3;
a = 3;
b = 5;
if (a < b && b != 0) { r1 = 1; } else { r1 = 2; }
if (a >= b || a == 3) { r2 = 1; } else { r2 = 2; }
if (!(a == b)) { r3 = 1; } else { r3 = 2; }
`, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{"r1": 1, "r2": 1, "r3": 1} {
		got, _ := m.Int(name)
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestIntrinsics(t *testing.T) {
	m := mustMachine(t, `
program t()
float a, b, c, d;
a = sqrt(16.0);
b = abs(-2.5);
c = min(3.0, 1.0);
d = max(3.0, 1.0);
`, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"a": 4, "b": 2.5, "c": 1, "d": 3}
	for name, want := range checks {
		got, _ := m.Float(name)
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestIndirectAccess(t *testing.T) {
	m := mustMachine(t, `
program t(n)
float A[n], out;
int idx[n];
out = 0.0;
for i = 0 to n - 1 {
  out += A[idx[i]];
}
`, map[string]int64{"n": 4})
	vals := []float64{10, 20, 30, 40}
	perm := []int64{2, 0, 3, 1}
	for i := int64(0); i < 4; i++ {
		m.SetFloat("A", vals[i], i)
		m.SetInt("idx", perm[i], i)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out, _ := m.Float("out")
	if out != 100 {
		t.Errorf("out = %v", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src    string
		params map[string]int64
	}{
		{"program t(n) float A[n]; A[n] = 1.0;", map[string]int64{"n": 3}},   // OOB
		{"program t(n) float A[n]; A[0-1] = 1.0;", map[string]int64{"n": 3}}, // negative
		{"program t() float x; x = 1.0 / 0.0;", nil},                         // div by zero
		{"program t() int x; x = 5 % 0;", nil},                               // mod by zero
		{"program t() float x; x = 1.0; x /= 0.0;", nil},                     // compound div by zero
	}
	for _, c := range cases {
		m := mustMachine(t, c.src, c.params)
		err := m.Run()
		var re *RuntimeError
		if !errors.As(err, &re) {
			t.Errorf("Run(%q) error = %v, want *RuntimeError", c.src, err)
		}
	}
}

func TestStepLimit(t *testing.T) {
	m := mustMachine(t, `
program t()
int k;
k = 0;
while (k < 10) {
  k = k;
}
`, nil, WithMaxSteps(1000))
	err := m.Run()
	var re *RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("non-terminating loop should hit step limit, got %v", err)
	}
}

func TestChecksumInstructionsAndAssert(t *testing.T) {
	// The hand-instrumented Figure 4 example: known use count 2.
	m := mustMachine(t, `
program t()
float temp, sum1, sum2;
temp = 10.0 + 20.0;
add_to_chksm(def_cs, temp, 2);
add_to_chksm(use_cs, temp, 1);
sum1 = temp + 30.0;
add_to_chksm(use_cs, temp, 1);
sum2 = temp + 40.0;
assert_checksums();
`, nil)
	if err := m.Run(); err != nil {
		t.Fatalf("fault-free run flagged an error: %v", err)
	}
	if m.Counts.CsOps != 3 {
		t.Errorf("CsOps = %d, want 3", m.Counts.CsOps)
	}
}

func TestChecksumDetectsInjectedFault(t *testing.T) {
	src := `
program t()
float temp, sum1, sum2;
temp = 10.0 + 20.0;
add_to_chksm(def_cs, temp, 2);
add_to_chksm(use_cs, temp, 1);
sum1 = temp + 30.0;
add_to_chksm(use_cs, temp, 1);
sum2 = temp + 40.0;
assert_checksums();
`
	m := mustMachine(t, src, nil)
	base, _, err := m.Region("temp")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt temp after its first use (statement 4) and before the second
	// use-checksum contribution executes as statement 5.
	m.SetStepHook(func(step uint64) {
		if step == 5 {
			m.Mem().FlipBit(base, 51)
		}
	})
	err = m.Run()
	var de *DetectionError
	if !errors.As(err, &de) {
		t.Fatalf("injected fault not detected: %v", err)
	}
	var me *checksum.MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("DetectionError should wrap MismatchError, got %v", err)
	}
}

func TestEDefEUseChecksums(t *testing.T) {
	// Exercise the auxiliary accumulators through language primitives.
	m := mustMachine(t, `
program t()
float temp;
temp = 30.0;
add_to_chksm(e_def_cs, temp, 1);
add_to_chksm(e_use_cs, temp, 1);
assert_checksums();
`, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	_, _, edef, euse := pairSums(m)
	if edef == 0 || edef != euse {
		t.Errorf("e_def=%#x e_use=%#x", edef, euse)
	}
}

func pairSums(m *Machine) (def, use, edef, euse uint64) {
	p := m.Pair()
	return p.Def, p.Use, p.EDef, p.EUse
}

func TestNegativeChecksumCount(t *testing.T) {
	// add_to_chksm with count -1 must cancel a prior contribution — the
	// epilogue adjustment relies on this.
	m := mustMachine(t, `
program t()
float x;
x = 5.0;
add_to_chksm(def_cs, x, 1);
add_to_chksm(def_cs, x, 0 - 1);
assert_checksums();
`, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	def, _, _, _ := pairSums(m)
	if def != 0 {
		t.Errorf("def = %#x, want 0", def)
	}
}

func TestOpCountsAttribution(t *testing.T) {
	m := mustMachine(t, `
program t(n)
float A[n];
for i = 0 to n - 1 {
  add_to_chksm(use_cs, A[i], 1);
  A[i] = A[i] + 1.0;
  add_to_chksm(def_cs, A[i], 1);
}
`, map[string]int64{"n": 8})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	c := m.Counts
	// Each iteration: program does 1 load + 1 store; checksums do 2 loads.
	if c.Loads != 8 || c.Stores != 8 {
		t.Errorf("program loads/stores = %d/%d, want 8/8", c.Loads, c.Stores)
	}
	if c.CsLoads != 16 || c.CsOps != 16 {
		t.Errorf("checksum loads/ops = %d/%d, want 16/16", c.CsLoads, c.CsOps)
	}
	if c.Total() == 0 || c.Stmts == 0 {
		t.Error("total counts empty")
	}
}

func TestMissingParameter(t *testing.T) {
	prog := lang.MustParse("program t(n) float A[n];")
	if _, err := New(prog, nil); err == nil {
		t.Fatal("missing parameter should fail")
	}
}

func TestNegativeDimension(t *testing.T) {
	prog := lang.MustParse("program t(n) float A[n];")
	if _, err := New(prog, map[string]int64{"n": -2}); err == nil {
		t.Fatal("negative dimension should fail")
	}
}

func TestXORMachine(t *testing.T) {
	m := mustMachine(t, `
program t()
float x, y;
x = 3.0;
add_to_chksm(def_cs, x, 1);
add_to_chksm(use_cs, x, 1);
y = x + 1.0;
assert_checksums();
`, nil, WithChecksumKind(checksum.XOR))
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDataAccessorErrors(t *testing.T) {
	m := mustMachine(t, "program t(n) float A[n]; int B[n];", map[string]int64{"n": 3})
	if err := m.SetFloat("nope", 1); err == nil {
		t.Error("unknown name should fail")
	}
	if err := m.SetFloat("B", 1, 0); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := m.SetInt("A", 1, 0); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := m.SetFloat("A", 1, 5); err == nil {
		t.Error("OOB index should fail")
	}
	if err := m.SetFloat("A", 1); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := m.Int("A", 0); err == nil {
		t.Error("Int on float array should fail")
	}
	if _, err := m.Float("B", 0); err == nil {
		t.Error("Float on int array should fail")
	}
	if _, err := m.SnapshotFloats("B"); err == nil {
		t.Error("SnapshotFloats on int array should fail")
	}
	if _, _, err := m.Region("zz"); err == nil {
		t.Error("Region on unknown var should fail")
	}
}

func TestFillAndSnapshot(t *testing.T) {
	m := mustMachine(t, "program t(n) float A[n]; int B[n];", map[string]int64{"n": 4})
	if err := m.FillFloat("A", func(i int64) float64 { return float64(i) * 1.5 }); err != nil {
		t.Fatal(err)
	}
	if err := m.FillInt("B", func(i int64) int64 { return i * i }); err != nil {
		t.Fatal(err)
	}
	snap, err := m.SnapshotFloats("A")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 4 || snap[2] != 3.0 {
		t.Errorf("snapshot = %v", snap)
	}
	b2, _ := m.Int("B", 2)
	if b2 != 4 {
		t.Errorf("B[2] = %d", b2)
	}
}
