package lang

import (
	"strings"
	"unicode"
)

// Lexer tokenizes source text. '#' and '//' start line comments.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token, or a *SyntaxError for an illegal character.
func (l *Lexer) Next() (Token, error) {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return Token{Kind: TokEOF, Pos: l.pos()}, nil

scan:
	start := l.pos()
	c := l.peek()

	if isIdentStart(c) {
		var b strings.Builder
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			b.WriteByte(l.advance())
		}
		text := b.String()
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	}

	if isDigit(c) || (c == '.' && isDigit(l.peek2())) {
		var b strings.Builder
		isFloat := false
		for l.off < len(l.src) && isDigit(l.peek()) {
			b.WriteByte(l.advance())
		}
		if l.peek() == '.' && isDigit(l.peek2()) {
			isFloat = true
			b.WriteByte(l.advance())
			for l.off < len(l.src) && isDigit(l.peek()) {
				b.WriteByte(l.advance())
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := *l
			var exp strings.Builder
			exp.WriteByte(l.advance())
			if l.peek() == '+' || l.peek() == '-' {
				exp.WriteByte(l.advance())
			}
			if isDigit(l.peek()) {
				isFloat = true
				for l.off < len(l.src) && isDigit(l.peek()) {
					exp.WriteByte(l.advance())
				}
				b.WriteString(exp.String())
			} else {
				*l = save // 'e' starts an identifier, not an exponent
			}
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: b.String(), Pos: start}, nil
	}

	two := func(k TokKind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: text, Pos: start}, nil
	}
	one := func(k TokKind, text string) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: text, Pos: start}, nil
	}

	switch c {
	case '(':
		return one(TokLParen, "(")
	case ')':
		return one(TokRParen, ")")
	case '{':
		return one(TokLBrace, "{")
	case '}':
		return one(TokRBrace, "}")
	case '[':
		return one(TokLBracket, "[")
	case ']':
		return one(TokRBracket, "]")
	case ',':
		return one(TokComma, ",")
	case ';':
		return one(TokSemicolon, ";")
	case ':':
		return one(TokColon, ":")
	case '%':
		return one(TokPercent, "%")
	case '+':
		if l.peek2() == '=' {
			return two(TokPlusEq, "+=")
		}
		return one(TokPlus, "+")
	case '-':
		if l.peek2() == '=' {
			return two(TokMinusEq, "-=")
		}
		return one(TokMinus, "-")
	case '*':
		if l.peek2() == '=' {
			return two(TokStarEq, "*=")
		}
		return one(TokStar, "*")
	case '/':
		if l.peek2() == '=' {
			return two(TokSlashEq, "/=")
		}
		return one(TokSlash, "/")
	case '=':
		if l.peek2() == '=' {
			return two(TokEq, "==")
		}
		return one(TokAssign, "=")
	case '!':
		if l.peek2() == '=' {
			return two(TokNe, "!=")
		}
		return one(TokBang, "!")
	case '<':
		if l.peek2() == '=' {
			return two(TokLe, "<=")
		}
		return one(TokLt, "<")
	case '>':
		if l.peek2() == '=' {
			return two(TokGe, ">=")
		}
		return one(TokGt, ">")
	case '&':
		if l.peek2() == '&' {
			return two(TokAndAnd, "&&")
		}
	case '|':
		if l.peek2() == '|' {
			return two(TokOrOr, "||")
		}
	}
	return Token{}, &SyntaxError{Pos: start, Msg: "illegal character " + string(rune(c))}
}

// Tokenize scans all tokens including the trailing EOF token.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
