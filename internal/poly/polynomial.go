package poly

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Polynomial is a multivariate polynomial with rational coefficients, used to
// represent parametric cardinalities (use counts such as n-1-j, or triangular
// totals such as (n^2-n)/2). Values are immutable.
type Polynomial struct {
	// terms maps a canonical monomial key to its term.
	terms map[string]polyTerm
}

type polyTerm struct {
	coef *big.Rat
	vars map[string]int // variable -> exponent (all > 0)
}

func monoKey(vars map[string]int) string {
	if len(vars) == 0 {
		return ""
	}
	names := make([]string, 0, len(vars))
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, v := range names {
		if vars[v] == 1 {
			parts[i] = v
		} else {
			parts[i] = fmt.Sprintf("%s^%d", v, vars[v])
		}
	}
	return strings.Join(parts, "*")
}

func copyVars(vars map[string]int) map[string]int {
	m := make(map[string]int, len(vars))
	for k, v := range vars {
		m[k] = v
	}
	return m
}

// PolyZero returns the zero polynomial.
func PolyZero() Polynomial { return Polynomial{terms: map[string]polyTerm{}} }

// PolyInt returns the constant polynomial k.
func PolyInt(k int64) Polynomial { return PolyRat(big.NewRat(k, 1)) }

// PolyRat returns the constant polynomial r.
func PolyRat(r *big.Rat) Polynomial {
	p := PolyZero()
	if r.Sign() != 0 {
		p.terms[""] = polyTerm{coef: new(big.Rat).Set(r), vars: map[string]int{}}
	}
	return p
}

// PolyVar returns the polynomial consisting of the single variable v.
func PolyVar(v string) Polynomial {
	p := PolyZero()
	vars := map[string]int{v: 1}
	p.terms[monoKey(vars)] = polyTerm{coef: big.NewRat(1, 1), vars: vars}
	return p
}

// PolyFromLin converts an affine expression to a polynomial.
func PolyFromLin(e LinExpr) Polynomial {
	p := PolyInt(e.Const())
	for _, v := range e.Vars() {
		p = p.Add(PolyVar(v).ScaleInt(e.Coeff(v)))
	}
	return p
}

func (p Polynomial) clone() Polynomial {
	q := PolyZero()
	for k, t := range p.terms {
		q.terms[k] = polyTerm{coef: new(big.Rat).Set(t.coef), vars: copyVars(t.vars)}
	}
	return q
}

// IsZero reports whether p is identically zero.
func (p Polynomial) IsZero() bool { return len(p.terms) == 0 }

// IsConst reports whether p is constant, returning its value if so.
func (p Polynomial) IsConst() (*big.Rat, bool) {
	switch len(p.terms) {
	case 0:
		return big.NewRat(0, 1), true
	case 1:
		if t, ok := p.terms[""]; ok {
			return new(big.Rat).Set(t.coef), true
		}
	}
	return nil, false
}

// Add returns p + q.
func (p Polynomial) Add(q Polynomial) Polynomial {
	r := p.clone()
	for k, t := range q.terms {
		if rt, ok := r.terms[k]; ok {
			sum := new(big.Rat).Add(rt.coef, t.coef)
			if sum.Sign() == 0 {
				delete(r.terms, k)
			} else {
				r.terms[k] = polyTerm{coef: sum, vars: rt.vars}
			}
		} else {
			r.terms[k] = polyTerm{coef: new(big.Rat).Set(t.coef), vars: copyVars(t.vars)}
		}
	}
	return r
}

// Sub returns p - q.
func (p Polynomial) Sub(q Polynomial) Polynomial { return p.Add(q.ScaleInt(-1)) }

// ScaleInt returns k*p.
func (p Polynomial) ScaleInt(k int64) Polynomial { return p.ScaleRat(big.NewRat(k, 1)) }

// ScaleRat returns r*p.
func (p Polynomial) ScaleRat(r *big.Rat) Polynomial {
	if r.Sign() == 0 {
		return PolyZero()
	}
	q := PolyZero()
	for k, t := range p.terms {
		q.terms[k] = polyTerm{coef: new(big.Rat).Mul(t.coef, r), vars: copyVars(t.vars)}
	}
	return q
}

// Mul returns p*q.
func (p Polynomial) Mul(q Polynomial) Polynomial {
	r := PolyZero()
	for _, pt := range p.terms {
		for _, qt := range q.terms {
			vars := copyVars(pt.vars)
			for v, e := range qt.vars {
				vars[v] += e
			}
			k := monoKey(vars)
			coef := new(big.Rat).Mul(pt.coef, qt.coef)
			if rt, ok := r.terms[k]; ok {
				coef.Add(coef, rt.coef)
			}
			if coef.Sign() == 0 {
				delete(r.terms, k)
			} else {
				r.terms[k] = polyTerm{coef: coef, vars: vars}
			}
		}
	}
	return r
}

// MulLin returns p * e for an affine e.
func (p Polynomial) MulLin(e LinExpr) Polynomial { return p.Mul(PolyFromLin(e)) }

// Pow returns p^k for k >= 0.
func (p Polynomial) Pow(k int) Polynomial {
	r := PolyInt(1)
	for i := 0; i < k; i++ {
		r = r.Mul(p)
	}
	return r
}

// Uses reports whether variable v appears in p.
func (p Polynomial) Uses(v string) bool {
	for _, t := range p.terms {
		if t.vars[v] > 0 {
			return true
		}
	}
	return false
}

// Degree returns the highest exponent of v in p.
func (p Polynomial) Degree(v string) int {
	d := 0
	for _, t := range p.terms {
		if t.vars[v] > d {
			d = t.vars[v]
		}
	}
	return d
}

// Vars returns the variables appearing in p, sorted.
func (p Polynomial) Vars() []string {
	set := map[string]bool{}
	for _, t := range p.terms {
		for v := range t.vars {
			set[v] = true
		}
	}
	return sortedVars(set)
}

// SubstLin returns p with variable v replaced by the affine expression e.
func (p Polynomial) SubstLin(v string, e LinExpr) Polynomial {
	if !p.Uses(v) {
		return p
	}
	sub := PolyFromLin(e)
	r := PolyZero()
	for _, t := range p.terms {
		exp := t.vars[v]
		rest := copyVars(t.vars)
		delete(rest, v)
		base := Polynomial{terms: map[string]polyTerm{
			monoKey(rest): {coef: new(big.Rat).Set(t.coef), vars: rest},
		}}
		if exp > 0 {
			base = base.Mul(sub.Pow(exp))
		}
		r = r.Add(base)
	}
	return r
}

// CoeffsByVar decomposes p = sum_k c_k * v^k, returning the slice of c_k
// polynomials (index = exponent).
func (p Polynomial) CoeffsByVar(v string) []Polynomial {
	d := p.Degree(v)
	out := make([]Polynomial, d+1)
	for i := range out {
		out[i] = PolyZero()
	}
	for _, t := range p.terms {
		exp := t.vars[v]
		rest := copyVars(t.vars)
		delete(rest, v)
		mono := Polynomial{terms: map[string]polyTerm{
			monoKey(rest): {coef: new(big.Rat).Set(t.coef), vars: rest},
		}}
		out[exp] = out[exp].Add(mono)
	}
	return out
}

// EvalRat evaluates p under env, returning an exact rational. Variables
// absent from env are an error.
func (p Polynomial) EvalRat(env map[string]int64) (*big.Rat, error) {
	total := big.NewRat(0, 1)
	for _, t := range p.terms {
		term := new(big.Rat).Set(t.coef)
		for v, e := range t.vars {
			val, ok := env[v]
			if !ok {
				return nil, fmt.Errorf("poly: variable %q unbound in evaluation", v)
			}
			x := big.NewRat(val, 1)
			for i := 0; i < e; i++ {
				term.Mul(term, x)
			}
		}
		total.Add(total, term)
	}
	return total, nil
}

// EvalInt evaluates p under env and requires the result to be an integer
// (parametric counts always are on their domains).
func (p Polynomial) EvalInt(env map[string]int64) (int64, error) {
	r, err := p.EvalRat(env)
	if err != nil {
		return 0, err
	}
	if !r.IsInt() {
		return 0, fmt.Errorf("poly: %s evaluates to non-integer %s", p, r)
	}
	return r.Num().Int64(), nil
}

// AsLin converts p to a LinExpr if it is affine with integer coefficients.
func (p Polynomial) AsLin() (LinExpr, bool) {
	e := LinExpr{}
	for _, t := range p.terms {
		if !t.coef.IsInt() {
			return LinExpr{}, false
		}
		c := t.coef.Num().Int64()
		switch len(t.vars) {
		case 0:
			e = e.AddConst(c)
		case 1:
			for v, exp := range t.vars {
				if exp != 1 {
					return LinExpr{}, false
				}
				e = e.Add(Term(c, v))
			}
		default:
			return LinExpr{}, false
		}
	}
	return e, true
}

// Equal reports whether p and q are identical polynomials.
func (p Polynomial) Equal(q Polynomial) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		qt, ok := q.terms[k]
		if !ok || t.coef.Cmp(qt.coef) != 0 {
			return false
		}
	}
	return true
}

// String renders the polynomial deterministically, e.g. "1/2*n^2 - 1/2*n".
func (p Polynomial) String() string {
	if p.IsZero() {
		return "0"
	}
	keys := make([]string, 0, len(p.terms))
	for k := range p.terms {
		keys = append(keys, k)
	}
	degreeOf := func(k string) int {
		d := 0
		for _, e := range p.terms[k].vars {
			d += e
		}
		return d
	}
	sort.Slice(keys, func(i, j int) bool {
		di, dj := degreeOf(keys[i]), degreeOf(keys[j])
		if di != dj {
			return di > dj // higher-degree terms first
		}
		return keys[i] < keys[j]
	})
	var b strings.Builder
	for i, k := range keys {
		t := p.terms[k]
		c := t.coef
		neg := c.Sign() < 0
		abs := new(big.Rat).Abs(c)
		switch {
		case i == 0 && neg:
			b.WriteString("-")
		case i > 0 && neg:
			b.WriteString(" - ")
		case i > 0:
			b.WriteString(" + ")
		}
		one := abs.Cmp(big.NewRat(1, 1)) == 0
		switch {
		case k == "":
			b.WriteString(abs.RatString())
		case one:
			b.WriteString(k)
		default:
			b.WriteString(abs.RatString() + "*" + k)
		}
	}
	return b.String()
}

// faulhaber returns the polynomial F_k(m) = sum_{x=0}^{m} x^k in the symbolic
// variable mv, valid for m >= 0 (and, as a polynomial identity, usable with
// F_k(L-1) for telescoping sums). Supported for k up to 8.
func faulhaber(k int, mv string) Polynomial {
	m := PolyVar(mv)
	m1 := m.Add(PolyInt(1))                // m+1
	twoM1 := m.ScaleInt(2).Add(PolyInt(1)) // 2m+1
	switch k {
	case 0:
		return m1
	case 1:
		return m.Mul(m1).ScaleRat(big.NewRat(1, 2))
	case 2:
		return m.Mul(m1).Mul(twoM1).ScaleRat(big.NewRat(1, 6))
	case 3:
		sq := m.Mul(m1)
		return sq.Mul(sq).ScaleRat(big.NewRat(1, 4))
	case 4:
		inner := m.Mul(m).ScaleInt(3).Add(m.ScaleInt(3)).Sub(PolyInt(1)) // 3m^2+3m-1
		return m.Mul(m1).Mul(twoM1).Mul(inner).ScaleRat(big.NewRat(1, 30))
	case 5:
		sq := m.Mul(m1)
		inner := m.Mul(m).ScaleInt(2).Add(m.ScaleInt(2)).Sub(PolyInt(1)) // 2m^2+2m-1
		return sq.Mul(sq).Mul(inner).ScaleRat(big.NewRat(1, 12))
	case 6:
		m2 := m.Mul(m)
		inner := m2.Mul(m2).ScaleInt(3).
			Add(m2.Mul(m).ScaleInt(6)).
			Sub(m.ScaleInt(3)).
			Add(PolyInt(1)) // 3m^4+6m^3-3m+1
		return m.Mul(m1).Mul(twoM1).Mul(inner).ScaleRat(big.NewRat(1, 42))
	case 7:
		sq := m.Mul(m1)
		m2 := m.Mul(m)
		inner := m2.Mul(m2).ScaleInt(3).
			Add(m2.Mul(m).ScaleInt(6)).
			Sub(m2).
			Sub(m.ScaleInt(4)).
			Add(PolyInt(2)) // 3m^4+6m^3-m^2-4m+2
		return sq.Mul(sq).Mul(inner).ScaleRat(big.NewRat(1, 24))
	case 8:
		m2 := m.Mul(m)
		m4 := m2.Mul(m2)
		inner := m4.Mul(m2).ScaleInt(5).
			Add(m4.Mul(m).ScaleInt(15)).
			Add(m4.ScaleInt(5)).
			Sub(m2.Mul(m).ScaleInt(15)).
			Sub(m2).
			Add(m.ScaleInt(9)).
			Sub(PolyInt(3)) // 5m^6+15m^5+5m^4-15m^3-m^2+9m-3
		return m.Mul(m1).Mul(twoM1).Mul(inner).ScaleRat(big.NewRat(1, 90))
	}
	panic(fmt.Sprintf("poly: faulhaber power %d unsupported", k))
}

// SumOverVar computes sum_{x=lo}^{hi} p(x, ...) symbolically, where lo and hi
// are affine expressions not involving x. The result is valid on domains
// where hi >= lo - 1 (an empty sum yields 0 at hi = lo-1 by telescoping).
func SumOverVar(p Polynomial, x string, lo, hi LinExpr) (Polynomial, error) {
	coeffs := p.CoeffsByVar(x)
	if len(coeffs) > 9 {
		return Polynomial{}, fmt.Errorf("poly: summation degree %d exceeds supported range", len(coeffs)-1)
	}
	if lo.Uses(x) || hi.Uses(x) {
		return Polynomial{}, fmt.Errorf("poly: summation bounds must not involve %q", x)
	}
	total := PolyZero()
	const mv = "$m"
	for k, ck := range coeffs {
		if ck.IsZero() {
			continue
		}
		fk := faulhaber(k, mv)
		atHi := fk.SubstLin(mv, hi)
		atLoMinus1 := fk.SubstLin(mv, lo.AddConst(-1))
		total = total.Add(ck.Mul(atHi.Sub(atLoMinus1)))
	}
	return total, nil
}
