// Package chaos is the soak orchestrator: it runs a real defused child
// process under a seeded disturbance schedule — SIGKILL and SIGSTOP/SIGCONT
// at scheduled instants, torn WAL tails and disk bit flips applied between
// restarts, injected fsync/write faults armed inside the child's WAL layer,
// adversarial clients (stalled request bodies, mid-flight disconnects,
// duplicate IDs, malformed payloads, bursts past the admission queue) — while
// a continuous audit recomputes the injection schedule, verifies every
// response digest against a locally computed reference, and re-verifies the
// journal across every restart. The product is a bench.SoakRow whose
// zero-tolerance columns (silent corruptions, undetected faults, resume
// mismatches, audit failures) gate the build.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"defuse/internal/faults"
)

// Kind is one disturbance class in the soak schedule.
type Kind int

const (
	// KindKill SIGKILLs the child; the restart resumes over whatever the
	// dying process left on disk.
	KindKill Kind = iota
	// KindPause SIGSTOPs the child for a scheduled interval, then SIGCONTs
	// it. Requests issued during the pause must stall, not corrupt.
	KindPause
	// KindBurst fires a concurrent volley far past the admission queue; the
	// refusals must carry Retry-After and the ladder must be seen reacting.
	KindBurst
	// KindAdversary runs one adversarial-client volley: stalled body,
	// mid-flight disconnect, duplicate ID, malformed payload, oversized
	// dimensions.
	KindAdversary
)

var kindNames = map[Kind]string{
	KindKill: "kill", KindPause: "pause", KindBurst: "burst", KindAdversary: "adversary",
}

// String returns the lower-case disturbance name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// Event is one scheduled disturbance.
type Event struct {
	// At is the offset into the soak at which the event fires. Load rounds
	// run continuously between events.
	At   time.Duration
	Kind Kind
	// Flip (with KindKill) flips one seeded bit inside the active segment's
	// valid frames between the kill and the restart; Tear truncates the
	// active segment mid-frame. Both model a dying machine's half-finished
	// disk work, and both must surface in the restarted child's resume
	// report — never be accepted silently.
	Flip bool
	Tear bool
	// PauseFor is the SIGSTOP duration for KindPause events.
	PauseFor time.Duration
}

// Schedule is the full seeded disturbance plan. BuildSchedule is a pure
// function of (seed, duration): the audit side recomputes it and any
// disagreement is itself a soak failure.
type Schedule struct {
	Seed     uint64
	Duration time.Duration
	// Events in firing order.
	Events []Event
	// WALFaults[i] is the fault-injection spec armed in the WAL file layer
	// of child incarnation i (wal.NewFaultFS syntax, e.g. "sync:5");
	// incarnations past the end run with a clean FS.
	WALFaults []string
}

// Kills counts the schedule's SIGKILL events.
func (s Schedule) Kills() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == KindKill {
			n++
		}
	}
	return n
}

// BuildSchedule derives the disturbance plan from the seed. Every schedule
// carries the soak gate's minima regardless of duration: at least two kills
// (the first with a disk bit flip applied before restart, the second with a
// torn tail), one SIGSTOP/SIGCONT pause, one overload burst, and one
// adversarial-client volley. Longer durations add further seeded events, at
// most one per two seconds of soak.
func BuildSchedule(seed uint64, d time.Duration) Schedule {
	if d <= 0 {
		d = 30 * time.Second
	}
	in := faults.NewInjector(int64(seed))
	sched := Schedule{Seed: seed, Duration: d}

	// The mandatory spine. Order is seeded below; the flip rides the first
	// kill and the tear the second, so both mutations strike a journal that
	// load rounds have already populated.
	events := []Event{
		{Kind: KindBurst},
		{Kind: KindKill, Flip: true},
		{Kind: KindAdversary},
		{Kind: KindKill, Tear: true},
		{Kind: KindPause},
	}
	extra := int(d/(2*time.Second)) - len(events)
	for i := 0; i < extra; i++ {
		switch in.Intn(6) {
		case 0:
			events = append(events, Event{Kind: KindKill})
		case 1:
			events = append(events, Event{Kind: KindPause})
		case 2, 3:
			events = append(events, Event{Kind: KindBurst})
		default:
			events = append(events, Event{Kind: KindAdversary})
		}
	}

	// Seeded firing times. Events are spread over the middle of the soak:
	// the first 15% is reserved for the opening load rounds (so the first
	// kill finds a journal worth corrupting) and the last 10% for the final
	// drain and end-to-end verification.
	lo, hi := d*15/100, d*90/100
	span := hi - lo
	for i := range events {
		events[i].At = lo + time.Duration(in.Intn(int(span)))
		if events[i].Kind == KindPause {
			events[i].PauseFor = 300*time.Millisecond + time.Duration(in.Intn(int(700*time.Millisecond)))
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	sched.Events = events

	// Each incarnation gets one armed WAL fault at a small seeded ordinal —
	// early enough that ordinary load trips it. Alternating sync and write
	// faults exercises both failure paths of the append rollback.
	incarnations := sched.Kills() + 1
	for i := 0; i < incarnations; i++ {
		ordinal := 3 + in.Intn(6)
		if i%2 == 0 {
			sched.WALFaults = append(sched.WALFaults, fmt.Sprintf("sync:%d", ordinal))
		} else {
			sched.WALFaults = append(sched.WALFaults, fmt.Sprintf("write:%d", ordinal))
		}
	}
	return sched
}
