package rt

import (
	"sync"

	"defuse/internal/addrsum"
	"defuse/internal/checksum"
	"defuse/telemetry"
)

// This file is the runtime's concurrency layer. The paper's def/use
// checksums are order-independent folds (Section 3: the operator must be
// commutative and associative), so the global accumulators of Algorithm 3
// can be partitioned across threads and merged before the final def == use
// comparison without changing the verdict. A ShardedTracker hands out
// per-goroutine Shards — each a private Tracker whose hot fold path takes no
// locks — and folds them back into a root Tracker with a commutative Merge.
// The merge combines the hardened shadow copies by decode-combine-re-encode
// (checksum.Pair.Merge), so a detector fault that struck a shard before the
// merge still diverges the root's copies and is caught by ScrubDetector.

// ShardedTracker partitions global checksum state across per-goroutine
// shards. The root tracker holds the merged view; every method on
// ShardedTracker itself takes an internal lock and is safe for concurrent
// use. Shard hot paths (folds through the shard's Tracker) are lock-free
// because each shard is owned by exactly one goroutine.
type ShardedTracker struct {
	mu     sync.Mutex
	root   *Tracker
	kind   checksum.Kind
	shards []*Shard
	live   int
	// addrOn arms address-stream protection (see addr.go): shards handed
	// out while set carry a private addrsum tracker merged like the pair.
	addrOn bool

	// obs is installed into every shard handed out after SetObserver; it
	// must be safe for concurrent use, since all shards dispatch to it.
	obs   Observer
	trace telemetry.Sink

	// tracer/span, when armed via SetTracer, record spans for the locked
	// epoch-boundary operations (shard.merge, shard.drain, verify,
	// epoch.end, rollback). The lock-free fold path through a Shard never
	// consults them, so tracing cannot perturb the hot path (see the guard
	// in trace_bench_test.go).
	tracer *telemetry.Tracer
	span   telemetry.SpanContext

	liveGauge  *telemetry.Gauge
	mergeCount *telemetry.Counter
	drainCount *telemetry.Counter
}

// NewSharded returns a sharded tracker using the paper's modulo-addition
// operator.
func NewSharded() *ShardedTracker { return NewShardedWith(checksum.ModAdd) }

// NewShardedWith returns a sharded tracker using the given commutative
// operator.
func NewShardedWith(k checksum.Kind) *ShardedTracker {
	return &ShardedTracker{root: NewTrackerWith(k), kind: k}
}

// Kind returns the checksum operator shared by the root and every shard.
func (s *ShardedTracker) Kind() checksum.Kind { return s.kind }

// SetTelemetry installs observability hooks: shard.merge/shard.drain events
// stream to sink, and reg gains a live-shard gauge plus merge/drain
// counters. Either argument may be nil. Returns s for chaining.
func (s *ShardedTracker) SetTelemetry(sink telemetry.Sink, reg *telemetry.Registry) *ShardedTracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace = sink
	if reg != nil {
		s.liveGauge = reg.Gauge("defuse_rt_live_shards")
		s.mergeCount = reg.Counter("defuse_rt_shard_merges_total")
		s.drainCount = reg.Counter("defuse_rt_shard_drains_total")
	}
	return s
}

// SetTracer arms span recording for merges, drains, verifications, and
// epoch boundaries; spans attach to parent (typically the supervisor's run
// or epoch span). A nil tracer disables recording at the cost of one nil
// check per locked operation. Returns s for chaining.
func (s *ShardedTracker) SetTracer(t *telemetry.Tracer, parent telemetry.SpanContext) *ShardedTracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
	s.span = parent
	return s
}

// SetObserver installs o on the root tracker and on every shard handed out
// afterwards. Because all shards dispatch to the same observer concurrently,
// o must be safe for concurrent use (CountingObserver and TelemetryObserver
// both are; see observer.go). Install the observer before handing out
// shards: already-issued shards keep the observer they were created with.
func (s *ShardedTracker) SetObserver(o Observer) *ShardedTracker {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = o
	s.root.obs = o
	return s
}

// Root exposes the root tracker holding the merged view. The caller must not
// fold into it (or read it) concurrently with merges or drains; prefer the
// locked wrappers (Checksums, Verify, ScrubDetector, epoch methods) unless
// all shard owners are quiescent.
func (s *ShardedTracker) Root() *Tracker { return s.root }

// LiveShards returns the number of shards handed out and not yet closed.
func (s *ShardedTracker) LiveShards() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// Shard hands out a new shard: a private Tracker (plus a reusable
// dynamic-counter table) whose fold path takes no locks. The shard must be
// used by one goroutine at a time; its owner calls Merge to publish
// accumulated state and Close when done with it.
func (s *ShardedTracker) Shard() *Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := &Shard{parent: s, t: NewTrackerWith(s.kind)}
	sh.t.obs = s.obs
	if s.addrOn {
		sh.t.addr = addrsum.NewTracker()
	}
	s.shards = append(s.shards, sh)
	s.live++
	if s.liveGauge != nil {
		s.liveGauge.Set(float64(s.live))
	}
	return sh
}

// Shard is one goroutine's private slice of the global checksum state: a
// Tracker for the four accumulators (with their hardened shadow copies) and
// a reusable table of dynamic use counters. Folds into the shard take no
// locks; Merge folds the shard into the root under the parent's lock.
type Shard struct {
	parent   *ShardedTracker
	t        *Tracker
	counters []Counter
	closed   bool
}

// Tracker returns the shard's private tracker. All rt fold primitives (Def,
// DefDyn, Use, UseKnown, Final) apply to it directly.
func (sh *Shard) Tracker() *Tracker { return sh.t }

// Counters returns the shard's dynamic-counter table resized to n zeroed
// counters. The backing array is reused across calls, so trial loops that
// repeatedly need a counter table allocate only when n grows.
func (sh *Shard) Counters(n int) []Counter {
	if cap(sh.counters) < n {
		sh.counters = make([]Counter, n)
	}
	sh.counters = sh.counters[:n]
	for i := range sh.counters {
		sh.counters[i] = Counter{}
	}
	return sh.counters
}

// Merge folds the shard's accumulated state into the root tracker and resets
// the shard for further folding: checksum accumulators combine under the
// pair's commutative operator, shadow copies merge by
// decode-combine-re-encode (preserving any divergence a detector fault left
// in the shard), dynamic op counts add, and a latched counter fault
// propagates to the root (first fault wins). Merge must be called by the
// shard's owner (or after the owner has quiesced); concurrent merges of
// different shards are safe.
func (sh *Shard) Merge() {
	p := sh.parent
	p.mu.Lock()
	sh.mergeLocked(p)
	p.mu.Unlock()
}

// Close merges any remaining shard state into the root and retires the
// shard: it leaves the live set, and further use is a programmer error.
// Closing twice is a no-op.
func (sh *Shard) Close() {
	p := sh.parent
	p.mu.Lock()
	defer p.mu.Unlock()
	if sh.closed {
		return
	}
	sh.mergeLocked(p)
	sh.closed = true
	p.live--
	for i, other := range p.shards {
		if other == sh {
			p.shards = append(p.shards[:i], p.shards[i+1:]...)
			break
		}
	}
	if p.liveGauge != nil {
		p.liveGauge.Set(float64(p.live))
	}
}

// mergeLocked does the fold with the parent lock held.
func (sh *Shard) mergeLocked(p *ShardedTracker) {
	sp := p.tracer.Start(p.span, "shard.merge")
	defs, uses := sh.t.defs, sh.t.uses
	p.root.pair.Merge(sh.t.pair)
	p.root.defs += defs
	p.root.uses += uses
	if p.root.latched == nil && sh.t.latched != nil {
		p.root.latched = sh.t.latched
	}
	if p.root.addr != nil && sh.t.addr != nil {
		p.root.addr.Merge(sh.t.addr)
	}
	sh.t.Reset()
	if p.mergeCount != nil {
		p.mergeCount.Inc()
	}
	if p.trace != nil {
		telemetry.Emit(p.trace, telemetry.EvShardMerge, map[string]any{
			"defs": defs, "uses": uses, "live": p.live,
		})
	}
	sp.End(telemetry.Int64("defs", int64(defs)), telemetry.Int64("uses", int64(uses)))
}

// Drain merges every live shard into the root and reports how many were
// merged. The caller must have quiesced the shard owners first — a drain
// concurrent with a fold into the same shard is a data race. Drain is the
// epoch-boundary operation: after it, the root holds the complete merged
// view, so sealing or verifying the root covers all concurrent work.
func (s *ShardedTracker) Drain() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainLocked()
}

func (s *ShardedTracker) drainLocked() int {
	sp := s.tracer.Start(s.span, "shard.drain")
	n := 0
	for _, sh := range s.shards {
		if !sh.closed {
			sh.mergeLocked(s)
			n++
		}
	}
	if s.drainCount != nil {
		s.drainCount.Inc()
	}
	if s.trace != nil {
		telemetry.Emit(s.trace, telemetry.EvShardDrain, map[string]any{"shards": n})
	}
	sp.End(telemetry.Int("shards", n))
	return n
}

// Checksums drains nothing and exposes the root's current accumulators.
func (s *ShardedTracker) Checksums() (def, use, edef, euse uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.Checksums()
}

// Verify drains every live shard and then compares the merged def/use and
// e_def/e_use checksums — the sharded form of Tracker.Verify. Shard owners
// must be quiescent (see Drain).
func (s *ShardedTracker) Verify() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.tracer.Start(s.span, "verify")
	s.drainLocked()
	err := s.root.Verify()
	sp.EndErr(err)
	return err
}

// ScrubDetector cross-checks the root tracker's own state (latched counter
// faults, accumulators against their shadow copies). Because Merge combines
// shadows by decode-combine-re-encode, a detector fault that struck a shard
// before its merge is still visible here.
func (s *ShardedTracker) ScrubDetector() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root.ScrubDetector()
}

// BeginEpoch drains every live shard and seals a snapshot of the merged view
// at the entry of the current epoch. Shard owners must be quiescent.
func (s *ShardedTracker) BeginEpoch() EpochState {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainLocked()
	return s.root.BeginEpoch()
}

// EndEpoch drains every live shard, verifies the merged checksums at the
// epoch boundary, and seals the closing snapshot (see Tracker.EndEpoch for
// the advance-on-clean semantics). Shard owners must be quiescent and must
// have finalized their live dynamically counted variables.
func (s *ShardedTracker) EndEpoch() (EpochState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.tracer.Start(s.span, "epoch.end")
	s.drainLocked()
	st, err := s.root.EndEpoch()
	sp.EndErr(err)
	return st, err
}

// Rollback restores the merged view to a sealed snapshot and discards every
// live shard's unmerged state — the epoch being rolled back includes
// whatever the shards were accumulating, so their partial folds must not
// survive into the re-execution. Shard owners must be quiescent. On a
// rejected snapshot (unsealed or corrupt) nothing is modified.
func (s *ShardedTracker) Rollback(st EpochState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.tracer.Start(s.span, "rollback")
	if err := s.root.Rollback(st); err != nil {
		sp.EndErr(err)
		return err
	}
	for _, sh := range s.shards {
		if !sh.closed {
			sh.t.Reset()
		}
	}
	sp.EndErr(nil)
	return nil
}

// Reset clears the root and every live shard for reuse.
func (s *ShardedTracker) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.root.Reset()
	for _, sh := range s.shards {
		if !sh.closed {
			sh.t.Reset()
		}
	}
}

// Recycle returns the tracker to its post-NewSharded state for pool reuse:
// the root is reset (accumulators, shadow copies, epoch counter, any latched
// detector fault) and every outstanding shard is forcibly retired — not
// merged, since a previous request's unmerged residue must never leak into
// the next request's checksums. Retired shards' owners are gone (the request
// completed or was abandoned), so discarding is safe where merging would be
// wrong. Telemetry hooks and the observer survive recycling; the live-shard
// gauge drops to zero.
func (s *ShardedTracker) Recycle() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.closed = true
	}
	s.shards = s.shards[:0]
	s.live = 0
	if s.liveGauge != nil {
		s.liveGauge.Set(0)
	}
	s.root.Reset()
}
