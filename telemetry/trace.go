package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span layer of the telemetry substrate: a Tracer hands out
// causally linked spans (TraceID / SpanID / parent) with monotonic start and
// end times and typed attributes, so a run can be reconstructed as a tree —
// run → epoch → recovery attempt → verify/merge → WAL seal — instead of a
// flat event stream. Spans are exported two ways: as JSONL "span" events
// through the ordinary event Sink, and as Chrome trace-event JSON
// (SpanBuffer.WriteChromeTrace) loadable directly in Perfetto or
// chrome://tracing.
//
// The disabled path is a single nil check: a nil *Tracer hands out inert
// spans whose methods do nothing, so instrumented code threads the tracer
// unconditionally and an untraced run stays within noise of an untouched one
// (see the benchmark guard in rt/trace_bench_test.go).

// TraceID identifies one causal tree of spans (one run, one trial, ...).
type TraceID uint64

// SpanID identifies one span within the process.
type SpanID uint64

// SpanContext names a position in a trace: the trace and the span that any
// child should attach to. The zero SpanContext means "no parent": a span
// started against it becomes the root of a fresh trace.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Attr is one typed span attribute.
type Attr struct {
	Key   string
	Value any
}

// String, Int, Float, and Bool build typed attributes without the caller
// spelling out struct literals.
func String(k, v string) Attr        { return Attr{Key: k, Value: v} }
func Int(k string, v int) Attr       { return Attr{Key: k, Value: int64(v)} }
func Int64(k string, v int64) Attr   { return Attr{Key: k, Value: v} }
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }
func Bool(k string, v bool) Attr     { return Attr{Key: k, Value: v} }

// SpanData is one finished span as delivered to a SpanSink.
type SpanData struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"span"`
	Parent SpanID  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	// Start is the wall-clock start, for human-readable export.
	Start time.Time `json:"start"`
	// StartOff is the monotonic offset from the tracer's epoch; Duration is
	// the monotonic span length. Both come from the runtime's monotonic
	// clock, so exported timestamps never go backwards even across wall-clock
	// adjustments.
	StartOff time.Duration `json:"start_off_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// SpanSink consumes finished spans. Implementations must be safe for
// concurrent use.
type SpanSink interface {
	RecordSpan(SpanData)
}

// Tracer hands out spans. A nil tracer is fully functional and free: every
// method on it (and on the inert spans it returns) is a nil check.
type Tracer struct {
	epoch time.Time
	sink  SpanSink
	ids   atomic.Uint64
}

// NewTracer returns a tracer delivering finished spans to sink.
func NewTracer(sink SpanSink) *Tracer {
	return &Tracer{epoch: time.Now(), sink: sink}
}

// Enabled reports whether spans are actually recorded. Call sites only need
// it to skip expensive attribute construction; starting spans on a disabled
// tracer is already free.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// nextID hands out process-unique span identifiers (never zero).
func (t *Tracer) nextID() uint64 { return t.ids.Add(1) }

// Span is one in-flight operation. The zero Span (from a nil tracer) is
// inert: End and SetAttr do nothing and Context returns the zero context.
type Span struct {
	tracer *Tracer
	ctx    SpanContext
	parent SpanID
	name   string
	start  time.Time
	attrs  []Attr
}

// Start begins a span as a child of parent. A zero parent starts a new trace
// rooted at this span. On a nil tracer it returns an inert span.
func (t *Tracer) Start(parent SpanContext, name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	id := SpanID(t.nextID())
	trace := parent.Trace
	if trace == 0 {
		trace = TraceID(id)
	}
	return Span{
		tracer: t,
		ctx:    SpanContext{Trace: trace, Span: id},
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// Context returns the span's position for child spans to attach to.
func (s Span) Context() SpanContext { return s.ctx }

// SetAttr appends attributes to the span. It returns the updated span, so
// deferred Ends must be taken on the returned value (or use End's variadic
// attrs instead).
func (s Span) SetAttr(attrs ...Attr) Span {
	if s.tracer == nil {
		return s
	}
	s.attrs = append(s.attrs, attrs...)
	return s
}

// End finishes the span, stamping its monotonic duration and delivering it
// to the tracer's sink. Extra attributes (an outcome, an error) are appended
// before delivery. End on an inert span does nothing.
func (s Span) End(attrs ...Attr) {
	if s.tracer == nil || s.tracer.sink == nil {
		return
	}
	end := time.Now()
	data := SpanData{
		Trace:    s.ctx.Trace,
		ID:       s.ctx.Span,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		StartOff: s.start.Sub(s.tracer.epoch),
		Duration: end.Sub(s.start),
		Attrs:    append(s.attrs, attrs...),
	}
	s.tracer.sink.RecordSpan(data)
}

// EndErr finishes the span with an ok/error outcome attribute.
func (s Span) EndErr(err error) {
	if s.tracer == nil {
		return
	}
	if err != nil {
		s.End(Bool("ok", false), String("error", err.Error()))
		return
	}
	s.End(Bool("ok", true))
}

// multiSpanSink fans spans out to several sinks.
type multiSpanSink struct{ sinks []SpanSink }

// MultiSpan returns a span sink forwarding to every non-nil sink, or nil
// when none remain (preserving the nil-tracer fast path).
func MultiSpan(sinks ...SpanSink) SpanSink {
	var kept []SpanSink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multiSpanSink{sinks: kept}
}

func (m *multiSpanSink) RecordSpan(d SpanData) {
	for _, s := range m.sinks {
		s.RecordSpan(d)
	}
}

// EvSpan is the event name under which finished spans appear in a JSONL
// event stream (see SpanEvents).
const EvSpan = "span"

// spanEventSink adapts an event Sink into a SpanSink: each finished span
// becomes one EvSpan event, so the ordinary -trace JSONL file carries the
// span stream interleaved with the other events.
type spanEventSink struct{ sink Sink }

// SpanEvents returns a SpanSink emitting spans as EvSpan events on sink, or
// nil for a nil sink.
func SpanEvents(sink Sink) SpanSink {
	if sink == nil {
		return nil
	}
	return &spanEventSink{sink: sink}
}

func (s *spanEventSink) RecordSpan(d SpanData) {
	fields := map[string]any{
		"trace":       fmt.Sprintf("%016x", uint64(d.Trace)),
		"span":        fmt.Sprintf("%016x", uint64(d.ID)),
		"name":        d.Name,
		"start_us":    d.StartOff.Microseconds(),
		"duration_us": d.Duration.Microseconds(),
	}
	if d.Parent != 0 {
		fields["parent"] = fmt.Sprintf("%016x", uint64(d.Parent))
	}
	for _, a := range d.Attrs {
		fields["attr_"+a.Key] = a.Value
	}
	s.sink.Emit(Event{Name: EvSpan, Time: d.Start.UTC(), Fields: fields})
}

// SpanBuffer collects finished spans in memory for export as Chrome
// trace-event JSON. It is bounded: past Cap spans, new spans are dropped and
// counted (Dropped), so a long campaign cannot grow the buffer without
// bound — the flight recorder keeps the newest spans instead.
type SpanBuffer struct {
	mu      sync.Mutex
	spans   []SpanData
	cap     int
	dropped uint64
}

// DefaultSpanCap bounds a SpanBuffer built with NewSpanBuffer(0).
const DefaultSpanCap = 1 << 17

// NewSpanBuffer returns a buffer holding at most cap spans (0 means
// DefaultSpanCap).
func NewSpanBuffer(cap int) *SpanBuffer {
	if cap <= 0 {
		cap = DefaultSpanCap
	}
	return &SpanBuffer{cap: cap}
}

// RecordSpan implements SpanSink.
func (b *SpanBuffer) RecordSpan(d SpanData) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.spans) >= b.cap {
		b.dropped++
		return
	}
	b.spans = append(b.spans, d)
}

// Spans returns a copy of the collected spans in completion order.
func (b *SpanBuffer) Spans() []SpanData {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]SpanData(nil), b.spans...)
}

// Dropped returns how many spans were discarded after the buffer filled.
func (b *SpanBuffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// chromeEvent is one Chrome trace-event entry ("X" complete events).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds since tracer epoch
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the object form of the Chrome trace format, which both
// chrome://tracing and Perfetto load.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders spans as Chrome trace-event JSON. Each trace becomes
// one track (tid = trace id), so properly nested spans of one run render as
// a flame stack and concurrent traces (parallel workers, campaign trials)
// get their own lanes. Span and parent ids ride along in args for causal
// reconstruction.
func ChromeTrace(spans []SpanData) chromeDoc {
	out := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans)), DisplayTimeUnit: "ms"}
	sorted := append([]SpanData(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartOff < sorted[j].StartOff })
	for _, d := range sorted {
		args := map[string]any{
			"span_id": fmt.Sprintf("%016x", uint64(d.ID)),
		}
		if d.Parent != 0 {
			args["parent_id"] = fmt.Sprintf("%016x", uint64(d.Parent))
		}
		for _, a := range d.Attrs {
			args[a.Key] = a.Value
		}
		ts := d.StartOff.Microseconds()
		if ts < 0 {
			ts = 0
		}
		dur := d.Duration.Microseconds()
		if dur < 0 {
			dur = 0
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: d.Name, Cat: "defuse", Ph: "X",
			Ts: ts, Dur: dur,
			Pid: 1, Tid: uint64(d.Trace),
			Args: args,
		})
	}
	return out
}

// WriteChromeTrace writes the buffer's spans as Chrome trace-event JSON.
func (b *SpanBuffer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(ChromeTrace(b.Spans())); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the buffer's spans to path.
func (b *SpanBuffer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
