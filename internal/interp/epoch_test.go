package interp

import (
	"context"
	"testing"

	"defuse/internal/recovery"
)

// epochTestSrc has a prologue, an instrumented outer loop, and an epilogue,
// exercising all three parts of an epoch plan. Each iteration is
// checksum-complete, so every iteration-block boundary is quiescent.
const epochTestSrc = `
program t(n)
float A[n], first, last;
first = 123.0;
for i = 0 to n - 1 {
  A[i] = i * 3.0;
  add_to_chksm(def_cs, A[i], 1);
  add_to_chksm(use_cs, A[i], 1);
  A[i] = A[i] + 1.0;
}
last = 456.0;
`

func planFor(t *testing.T, src string, n int64, epochs int) (*Machine, *EpochPlan) {
	t.Helper()
	m := mustMachine(t, src, map[string]int64{"n": n})
	p, err := m.PlanEpochs(epochs)
	if err != nil {
		t.Fatal(err)
	}
	return m, p
}

// runAll executes every epoch of the plan in order.
func runAll(t *testing.T, p *EpochPlan) {
	t.Helper()
	for k := 0; k < p.Epochs(); k++ {
		if err := p.RunEpoch(k); err != nil {
			t.Fatalf("epoch %d: %v", k, err)
		}
	}
}

func TestRunEpochsEquivalentToRun(t *testing.T) {
	// Running epochs 0..n-1 must be indistinguishable from Run, for epoch
	// counts that divide the trip count, that don't, and that exceed it.
	const n = 10
	ref := mustMachine(t, epochTestSrc, map[string]int64{"n": n})
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	refA, _ := ref.SnapshotFloats("A")

	for _, epochs := range []int{1, 2, 3, 10, 16} {
		m, p := planFor(t, epochTestSrc, n, epochs)
		runAll(t, p)
		gotA, _ := m.SnapshotFloats("A")
		for i := range refA {
			if gotA[i] != refA[i] {
				t.Errorf("epochs=%d: A[%d] = %v, want %v", epochs, i, gotA[i], refA[i])
			}
		}
		for name, want := range map[string]float64{"first": 123.0, "last": 456.0} {
			if got, _ := m.Float(name); got != want {
				t.Errorf("epochs=%d: %s = %v, want %v (pre/post must run)", epochs, name, got, want)
			}
		}
		if *m.Pair() != *ref.Pair() {
			t.Errorf("epochs=%d: checksum pair diverged from plain Run", epochs)
		}
		if err := m.Pair().Verify(); err != nil {
			t.Errorf("epochs=%d: %v", epochs, err)
		}
	}
}

func TestPlanEpochsNoTopLevelLoop(t *testing.T) {
	m := mustMachine(t, `
program t()
float x;
x = 7.0;
`, nil)
	p, err := m.PlanEpochs(5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Epochs() != 1 {
		t.Fatalf("loopless program should collapse to 1 epoch, got %d", p.Epochs())
	}
	runAll(t, p)
	if x, _ := m.Float("x"); x != 7.0 {
		t.Errorf("x = %v", x)
	}
}

func TestPlanEpochsErrors(t *testing.T) {
	m := mustMachine(t, epochTestSrc, map[string]int64{"n": 4})
	if _, err := m.PlanEpochs(0); err == nil {
		t.Error("PlanEpochs(0) should fail")
	}
	p, err := m.PlanEpochs(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunEpoch(-1); err == nil {
		t.Error("RunEpoch(-1) should fail")
	}
	if err := p.RunEpoch(2); err == nil {
		t.Error("RunEpoch(out of range) should fail")
	}
	if err := p.RunEpoch(1); err == nil {
		t.Error("RunEpoch(1) before epoch 0 evaluated the loop bounds should fail")
	}
}

func TestEpochSuperviseCleanRun(t *testing.T) {
	m, p := planFor(t, epochTestSrc, 12, 4)
	out, err := p.Supervise(context.Background(), recovery.DefaultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if out.Detected || out.Tainted || out.Retries != 0 {
		t.Errorf("clean supervised run outcome = %+v", out)
	}
	if err := m.Pair().Verify(); err != nil {
		t.Error(err)
	}
	if got, _ := m.Float("A", 11); got != 11*3.0+1.0 {
		t.Errorf("A[11] = %v", got)
	}
}
