// Command tlint lints Prometheus text-format metrics read from standard
// input: every family must carry a TYPE line, histogram bucket series must be
// cumulative with a +Inf bucket matching _count, and _sum/_count pairs must
// be consistent. It is the CI check behind the live /metrics endpoint — a
// serving binary's scrape is piped through tlint to catch malformed output
// before a real Prometheus server would.
//
// Usage:
//
//	curl -s http://addr/metrics | tlint
package main

import (
	"fmt"
	"os"

	"defuse/telemetry"
)

func main() {
	if err := telemetry.Lint(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "tlint:", err)
		os.Exit(1)
	}
	fmt.Println("tlint: ok")
}
