package faults

import (
	"context"
	"math/bits"

	"defuse/internal/addrsum"
	"defuse/internal/checksum"
	"defuse/internal/memsim"
	"defuse/internal/recovery"
	"defuse/rt"
	"defuse/telemetry"
)

// This file runs one epoch-structured injection trial. Unlike the classic
// Table 1 experiment (one checksum over a dead array), the epoch trial keeps
// the array live: every epoch loads each word, advances it through a
// bijective update, and stores it back under the rt def/use discipline. At
// every epoch boundary the trial finalizes all live variables so the
// checksums are quiescent, verifies them, and re-registers the words for the
// next epoch — the paper's post-dominator verification placement applied per
// iteration block. A fault injected inside epoch k therefore either aliases
// (escapes, as in Table 1) or is detected at epoch k's own boundary:
// detection latency zero. With EndOnlyVerify the same trial verifies only at
// the final boundary, measuring the latency the epoch scheme removes, and
// with Recover the trial runs under the checkpoint/rollback supervisor and
// reports whether the corrupted run was steered back to the correct final
// state.
//
// With a non-data Target the same fault model is aimed at the detector
// itself (see the Target constants in coverage.go), and Hardened selects
// whether the trial runs the detector's self-checks — boundary scrubs and
// digest-verified checkpoint restores — or the unchecked baseline.

// update advances one word per epoch. It is a bijective (odd-multiplier) LCG
// step, so any corruption of a word propagates to a wrong final state rather
// than being coincidentally reconverged.
func update(v uint64) uint64 { return v*2862933555777941757 + 3037000493 }

// epochTrialSnap checkpoints everything an epoch mutates: the simulated
// memory, the tracker's sealed epoch state, and the shadow use counters. The
// injection plan is deliberately outside the snapshot — a transient fault
// does not recur when the epoch re-executes.
type epochTrialSnap struct {
	mem      memsim.Snapshot
	state    rt.EpochState
	addr     addrsum.EpochState // sealed address streams (addrsum backend only)
	counters []rt.Counter
}

// drawAddrFault resolves an address-fault cell's effective target index. Both
// underlying draws are consumed unconditionally and in a fixed order so every
// AddrFault value sees the same downstream random stream. The bool reports a
// skip: the region is too small to model the fault (tallied, not an error).
func drawAddrFault(in *Injector, af AddrFault, injWord, words int) (int, bool) {
	wrongIdx, wrongErr := in.WrongAddress(injWord, words)
	idxBitDraw := in.Intn(64)
	switch af {
	case AddrWrong, AddrAlias:
		if wrongErr != nil {
			return injWord, true
		}
		return wrongIdx, false
	case AddrIndexBit:
		return indexBitFlip(injWord, words, idxBitDraw)
	default: // AddrNone
		return injWord, false
	}
}

// indexBitFlip models a single bit flip in the index register: it flips one
// bit of idx, chosen from the draw, cycling positions until the result stays
// inside the region. For words >= 2 a valid bit always exists (the lowest set
// bit of idx maps downward; for idx 0, bit 0 maps to 1), so the only skip is
// the degenerate 1-word region.
func indexBitFlip(idx, words, draw int) (int, bool) {
	if words < 2 {
		return idx, true
	}
	nbits := bits.Len(uint(words - 1))
	for t := 0; t < nbits; t++ {
		b := (draw + t) % nbits
		if j := idx ^ (1 << uint(b)); j < words {
			return j, false
		}
	}
	return idx, true
}

// runEpochTrial executes one supervised epoch trial and tallies its outcome.
// The trial folds through the worker's reusable shard — its tracker is Reset
// on entry and its counter table recycled — so the campaign allocates one
// tracker per (worker, operator) instead of one per trial. inst carries the
// cell's pre-resolved telemetry instruments.
// span is the parent the supervisor's spans attach to (the campaign's
// per-trial span); pass the zero context when untraced.
func runEpochTrial(ctx context.Context, cfg CoverageConfig, trial int, sh *rt.Shard, inst cellInstruments, span telemetry.SpanContext) (trialTally, error) {
	words, epochs := cfg.Words, cfg.Epochs
	in := NewInjector(trialSeed(cfg.Seed, trial))

	init := make([]uint64, words)
	in.Fill(init, cfg.Pattern)
	injEpoch := in.Intn(epochs)
	injWord := in.Intn(words)
	flips := in.PickBits(words, cfg.BitFlips)
	// Detector-target coordinates, drawn unconditionally (after the draws
	// above) so every target's random stream is stable and the data-target
	// stream is unchanged from earlier campaign versions.
	accSel := checksum.Acc(in.Intn(4))
	accBit := uint(in.Intn(64))
	ctrBit := uint(in.Intn(64))
	ckPos := in.Intn(words + 4)
	ckBit := in.Intn(64)
	// Address-fault coordinates, appended after every earlier draw (same
	// discipline: new draws last, so pre-existing cells stay byte-stable).
	addrTarget, addrSkip := drawAddrFault(in, cfg.AddrFault, injWord, words)

	mem := memsim.New(words)
	tr := sh.Tracker()
	tr.Reset()
	counters := sh.Counters(words)
	// The addrsum backend folds address streams through the shard tracker's
	// attached addrsum.Tracker (one allocation per worker, reused across
	// trials) and never touches the data accumulators, so every verdict is
	// attributable to the address detector alone.
	isAddrBackend := cfg.Backend == BackendAddrsum
	var at *addrsum.Tracker
	if isAddrBackend {
		at = tr.Addr()
		if at == nil {
			at = addrsum.NewTracker()
			tr.AttachAddr(at)
		}
		at.Reset()
	}
	for i := 0; i < words; i++ {
		mem.Poke(i, init[i])
		if !isAddrBackend {
			rt.DefDyn(tr, &counters[i], uint64(0), init[i])
		}
	}
	injected := false
	// dataInjected records whether the trial corrupts the protected array at
	// all; detector-only targets must not count detections as data faults,
	// and a skipped address fault injects nothing.
	dataInjected := (cfg.Target == TargetData || cfg.Target == TargetMasking || cfg.Target == TargetCheckpoint) &&
		!(cfg.AddrFault != AddrNone && addrSkip)
	maskTried, masked := false, false
	sawInitial, ckDone := false, false

	inject := func(k int) {
		switch cfg.Target {
		case TargetAccumulator:
			tr.CorruptAccumulator(accSel, accBit)
		case TargetCounter:
			rt.CorruptCounter(&counters[injWord], ctrBit)
		default: // data, masking, checkpoint: corrupt the protected array
			for _, f := range flips {
				mem.FlipBit(f.Word, f.Bit)
			}
		}
		if cfg.Trace != nil {
			fields := map[string]any{
				"trial": trial, "epoch": k, "scheme": "epoch",
				"words": words, "target": cfg.Target.String(),
			}
			switch cfg.Target {
			case TargetAccumulator:
				fields["acc"] = accSel.String()
				fields["bit"] = accBit
			case TargetCounter:
				fields["word"] = injWord
				fields["bit"] = ctrBit
			default:
				coords := make([]map[string]any, len(flips))
				for fi, f := range flips {
					coords[fi] = map[string]any{"word": f.Word, "bit": f.Bit}
				}
				fields["flips"] = coords
			}
			telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, fields)
		}
	}

	run := func(k int) error {
		for i := 0; i < words; i++ {
			// loadIdx/storeIdx are the *effective* addresses; an address
			// fault diverges them from the intended index i for exactly one
			// iteration (the transient corrupted-register model).
			loadIdx, storeIdx := i, i
			if !injected && k == injEpoch && i == injWord {
				injected = true
				if cfg.AddrFault != AddrNone {
					if !addrSkip {
						loadIdx = addrTarget
						if cfg.AddrFault == AddrAlias {
							// The register was corrupted before the load and
							// reused for the store: the whole read-modify-write
							// lands on the wrong (valid) word.
							storeIdx = addrTarget
						}
						telemetry.Emit(cfg.Trace, telemetry.EvFaultInjected, map[string]any{
							"trial": trial, "epoch": k, "scheme": "epoch",
							"fault": cfg.AddrFault.String(), "intent": i, "effective": addrTarget,
						})
					}
				} else {
					inject(k)
				}
			}
			if isAddrBackend {
				v := mem.Load(loadIdx)
				at.Load(i, loadIdx)
				next := update(v)
				mem.Store(storeIdx, next)
				at.Store(i, storeIdx)
			} else {
				v := rt.Use(tr, &counters[i], mem.Load(loadIdx))
				next := update(v)
				mem.Store(storeIdx, next)
				rt.DefDyn(tr, &counters[i], v, next)
			}
		}
		return nil
	}

	verify := func(k int) error {
		last := k == epochs-1
		if cfg.EndOnlyVerify && !last {
			return nil
		}
		if isAddrBackend {
			// The address streams are quiescent at any boundary (no
			// finalize needed: every fold is complete when its access is).
			if cfg.Hardened {
				if serr := tr.ScrubDetector(); serr != nil {
					inst.scrubFail.Inc()
					return serr
				}
				inst.scrubPass.Inc()
			}
			_, err := at.EndEpoch()
			return err
		}
		// Finalize every live variable so the boundary is checksum-quiescent,
		// verify, then re-register the survivors for the next epoch.
		for i := 0; i < words; i++ {
			rt.Final(tr, &counters[i], mem.Peek(i))
		}
		if cfg.Target == TargetMasking && injected && !maskTried {
			// The adversarial second half of the masking fault: compensating
			// single-bit flips of the use and e_use accumulators that cancel
			// the data flip's imbalance, making verification pass on wrong
			// data. Only possible when the accumulator bit values line up
			// (always for XOR, about one trial in four for ModAdd).
			maskTried = true
			masked = tryMask(tr, cfg.Kind)
		}
		if cfg.Hardened {
			if serr := tr.ScrubDetector(); serr != nil {
				telemetry.Emit(cfg.Trace, telemetry.EvScrubFail, map[string]any{
					"trial": trial, "epoch": k, "error": serr.Error(),
				})
				inst.scrubFail.Inc()
				return serr
			}
			telemetry.Emit(cfg.Trace, telemetry.EvScrubPass, map[string]any{
				"trial": trial, "epoch": k,
			})
			inst.scrubPass.Inc()
		}
		_, err := tr.EndEpoch()
		if !last && err == nil {
			for i := 0; i < words; i++ {
				rt.DefDyn(tr, &counters[i], uint64(0), mem.Peek(i))
			}
		}
		return err
	}

	pol := recovery.Policy{}
	if cfg.Recover {
		retries := cfg.MaxRetries
		if retries <= 0 {
			retries = 2
		}
		// No backoff pause inside the simulation: a retry re-executes
		// immediately so campaigns stay fast and deterministic in wall time.
		pol = recovery.Policy{MaxRetries: retries, MaxRestarts: 1}
	}

	out, err := recovery.Supervise(ctx, recovery.Config{
		Epochs: epochs,
		Run:    run,
		Verify: verify,
		Checkpoint: func() any {
			snap := epochTrialSnap{
				mem:      mem.Snapshot(),
				state:    tr.BeginEpoch(),
				counters: append([]rt.Counter(nil), counters...),
			}
			if at != nil {
				snap.addr = at.BeginEpoch()
			}
			if cfg.Target == TargetCheckpoint {
				// The supervisor's very first Checkpoint call captures the
				// initial (whole-run) state; the fault targets the per-epoch
				// checkpoint parked for epoch injEpoch, once.
				if !sawInitial {
					sawInitial = true
				} else if !ckDone && tr.Epoch() == injEpoch {
					ckDone = true
					if ckPos < words {
						snap.mem.FlipBit(ckPos, ckBit)
					} else {
						flipEpochStateField(&snap.state, ckPos-words, uint(ckBit))
					}
				}
			}
			return snap
		},
		Restore: func(snap any) error {
			s := snap.(epochTrialSnap)
			if cfg.Hardened {
				if rerr := mem.Restore(s.mem); rerr != nil {
					return rerr
				}
				if rerr := tr.Rollback(s.state); rerr != nil {
					return rerr
				}
			} else {
				if rerr := mem.RestoreUnchecked(s.mem); rerr != nil {
					return rerr
				}
				if rerr := tr.RollbackUnchecked(s.state); rerr != nil {
					return rerr
				}
			}
			if at != nil {
				if cfg.Hardened {
					if rerr := at.Rollback(s.addr); rerr != nil {
						return rerr
					}
				} else {
					at.RollbackUnchecked(s.addr)
				}
			}
			copy(counters, s.counters)
			return nil
		},
		Policy:  pol,
		Trace:   cfg.Trace,
		Metrics: cfg.Metrics,
		Tracer:  cfg.Tracer,
		Span:    span,
	})
	if err != nil {
		return trialTally{}, err
	}

	// A skipped address fault injected nothing: the trial ran clean and
	// counts as neither detected nor undetected.
	skipped := cfg.AddrFault != AddrNone && addrSkip
	tally := trialTally{
		skipped:          skipped,
		undetected:       !out.Detected && !skipped,
		detected:         out.Detected,
		tainted:          out.Tainted,
		retries:          out.Retries,
		restarts:         out.Restarts,
		rebuilds:         out.Rebuilds,
		detectorFaults:   out.DetectorFaults,
		checkpointFaults: out.CheckpointFaults,
	}
	if out.Detected {
		tally.latency = out.FirstDetection - injEpoch
	}
	finalOK := finalStateCorrect(mem, init, epochs)
	if out.Recovered && finalOK {
		tally.recovered = true
	}
	// A false negative is a trial that finished with every check green and a
	// wrong final state; a false positive is recovery machinery acting on a
	// data-fault verdict when the protected data was never touched.
	tally.falseNegative = !out.Detected && !finalOK
	tally.falsePositive = !dataInjected && out.DataFaults > 0
	_ = masked // the mask either held (false negative) or was caught; tallies above cover both

	if !skipped {
		inst.record(tally.undetected)
	}
	if tally.detected {
		inst.latency.Observe(float64(tally.latency))
	}
	if tally.recovered {
		inst.recovered.Inc()
	}
	return tally, nil
}

// tryMask attempts the compensating accumulator corruption that hides a
// single-bit data fault: after the boundary finalize, a 1-bit data flip
// leaves use = def + d and e_use = e_def + d with d = ±2^b. Flipping bit b of
// both the use and e_use primaries subtracts d exactly when the current bit
// values have the right sense — always for XOR, and with the right bit
// polarity (about 1/4 of trials) for modular addition. It returns whether the
// mask was applied.
func tryMask(tr *rt.Tracker, kind checksum.Kind) bool {
	def, use, edef, euse := tr.Checksums()
	switch kind {
	case checksum.XOR:
		m := use ^ def
		if m != 0 && m == euse^edef && bits.OnesCount64(m) == 1 {
			b := uint(bits.TrailingZeros64(m))
			tr.CorruptAccumulator(checksum.AccUse, b)
			tr.CorruptAccumulator(checksum.AccEUse, b)
			return true
		}
	case checksum.ModAdd:
		d := use - def
		if d == 0 || d != euse-edef {
			return false
		}
		if bits.OnesCount64(d) == 1 {
			// Need to subtract 2^b: only a set bit flips downward.
			b := uint(bits.TrailingZeros64(d))
			if use&(1<<b) != 0 && euse&(1<<b) != 0 {
				tr.CorruptAccumulator(checksum.AccUse, b)
				tr.CorruptAccumulator(checksum.AccEUse, b)
				return true
			}
		} else if bits.OnesCount64(-d) == 1 {
			// Need to add 2^b: only a clear bit flips upward.
			b := uint(bits.TrailingZeros64(-d))
			if use&(1<<b) == 0 && euse&(1<<b) == 0 {
				tr.CorruptAccumulator(checksum.AccUse, b)
				tr.CorruptAccumulator(checksum.AccEUse, b)
				return true
			}
		}
	}
	return false
}

// flipEpochStateField flips one bit of a parked EpochState's accumulator
// fields without resealing its digest — the checkpoint-fault footprint on the
// tracker side. sel picks the accumulator (0..3).
func flipEpochStateField(s *rt.EpochState, sel int, bit uint) {
	mask := uint64(1) << (bit & 63)
	switch sel & 3 {
	case 0:
		s.Def ^= mask
	case 1:
		s.Use ^= mask
	case 2:
		s.EDef ^= mask
	default:
		s.EUse ^= mask
	}
}

// finalStateCorrect reports whether the memory holds exactly the state a
// fault-free run would have produced: every word advanced epochs times from
// its initial value.
func finalStateCorrect(mem *memsim.Memory, init []uint64, epochs int) bool {
	for i, v := range init {
		for e := 0; e < epochs; e++ {
			v = update(v)
		}
		if mem.Peek(i) != v {
			return false
		}
	}
	return true
}
