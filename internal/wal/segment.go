package wal

// Segmented logs bound the disk a long-uptime journal consumes. The active
// file at `path` receives appends; when the next frame would push it past
// SegmentBytes it is sealed — synced, closed, renamed to `path.sNNNNNN` —
// and a fresh active file opens with the sequence numbering continuing
// uninterrupted. When more than MaxSegments sealed files accumulate, the
// oldest folds into a summary file at `path.sum`: the caller's Summarize
// callback receives the previous summary payloads plus the folded records
// and returns the payloads that replace them (running stats, a retained
// newest record — whatever the application's resume needs).
//
// Compaction is crash-safe by sequence-number dedup. The new summary is
// written atomically (temp + fsync + rename) with frame sequence numbers
// ending at the highest folded sequence — the summary's high-water mark —
// and only then is the folded segment removed. A crash between those two
// steps leaves both on disk; recovery drops every sealed or active record at
// or below the high-water mark, so nothing is ever double-counted, and the
// stale segment (now fully shadowed) is deleted on the next open.

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
)

// segmentPattern matches sealed segment files but not the `.sum` summary.
const segmentPattern = ".s[0-9][0-9][0-9][0-9][0-9][0-9]"

// sealedName renders the sealed-segment path for a monotonic index.
func sealedName(path string, idx int) string {
	return fmt.Sprintf("%s.s%06d", path, idx)
}

// sumName is the summary file's path.
func sumName(path string) string { return path + ".sum" }

// SegmentOptions configures a segmented append handle.
type SegmentOptions struct {
	// SegmentBytes seals the active file before an append would push it past
	// this size (the frame that triggers the seal starts the next segment).
	// Zero means 1 MiB.
	SegmentBytes int64
	// MaxSegments is how many sealed segments are retained before the oldest
	// folds into the summary. Zero disables compaction (segments accumulate).
	MaxSegments int
	// FS is the file layer writes go through; nil means the real filesystem.
	FS FS
	// Summarize folds records out of the log: it receives the previous
	// summary's payloads and the records of the segment being folded (oldest
	// first), and returns the payloads of the replacement summary. Nil means
	// "retain only the newest folded payload".
	Summarize func(prev [][]byte, folded []Record) ([][]byte, error)
	// OnRotate, when non-nil, observes each seal (sealed path, bytes,
	// records).
	OnRotate func(path string, bytes int64, records int)
	// OnCompact, when non-nil, observes each fold (folded path, folded
	// record count, total disk bytes after).
	OnCompact func(path string, folded int, diskBytes int64)
}

func (o SegmentOptions) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 1 << 20
	}
	return o.SegmentBytes
}

func (o SegmentOptions) fs() FS {
	if o.FS == nil {
		return OSFS
	}
	return o.FS
}

// SegmentInfo describes one sealed segment found at recovery.
type SegmentInfo struct {
	// Path is the sealed file.
	Path string
	// Index is the monotonic segment number parsed from the name.
	Index int
	// Records is how many live (non-shadowed) records it contributes.
	Records int
	// Bytes is the file size.
	Bytes int64
	// Shadowed reports that every record sits at or below the summary's
	// high-water mark — a crash interrupted compaction after the summary
	// landed but before this file was removed. It is deleted on open.
	Shadowed bool
}

// SegmentedScan is the outcome of recovering a segmented log.
type SegmentedScan struct {
	// Path is the active file (segment and summary names derive from it).
	Path string
	// Summary holds the summary file's records in file order; the last one's
	// sequence number is the dedup high-water mark. Empty when no summary
	// exists.
	Summary []Record
	// Records are the live records — sealed segments oldest-first, then the
	// active file — with everything at or below the high-water mark dropped.
	Records []Record
	// Sealed describes the sealed segments found, oldest first.
	Sealed []SegmentInfo
	// TornTail / TornBytes report a truncated final frame on the ACTIVE file
	// (sealed segments and the summary must scan clean).
	TornTail  bool
	TornBytes int
	// ActiveCorrupt reports a complete CRC-failed frame on the active file: a
	// bit struck the in-progress segment at rest. The frame and everything
	// after it are dropped — detected, truncated on open, and flagged here so
	// the owner can declare the loss rather than accept it silently.
	ActiveCorrupt bool
	// Dropped counts records discarded by high-water dedup — evidence of a
	// crash between summary write and segment removal, not data loss.
	Dropped int
	// NextSeq is the sequence number the next append must use.
	NextSeq uint32
	// DiskBytes is the total on-disk footprint (summary + sealed + active).
	DiskBytes int64

	// active is the raw scan of the active file, nil when it does not exist
	// (a crash between seal-rename and fresh-create).
	active *Scan
}

// Newest returns the most recent live record, or nil when none survived.
func (s *SegmentedScan) Newest() *Record {
	if len(s.Records) == 0 {
		return nil
	}
	return &s.Records[len(s.Records)-1]
}

// highWater returns the summary's dedup threshold as int64 (-1 when no
// summary exists, so sequence 0 compares live).
func (s *SegmentedScan) highWater() int64 {
	if len(s.Summary) == 0 {
		return -1
	}
	return int64(s.Summary[len(s.Summary)-1].Seq)
}

// RecoverSegmented scans a segmented log: summary, sealed segments in index
// order, then the active file. Damage classification is position-aware — a
// torn tail is tolerated only on the active file (the process died
// mid-append); any damage to the summary or a sealed segment is at-rest
// corruption and returns ErrCheckpointCorrupt, because those files were
// complete and fsynced when written.
//
// ErrNoCheckpoint reports an absent or empty log (start fresh).
func RecoverSegmented(path string) (*SegmentedScan, error) {
	s := &SegmentedScan{Path: path}

	// Summary first: it defines the dedup high-water mark.
	sum, err := Recover(sumName(path))
	switch {
	case err == nil:
		if sum.TornTail || sum.Corrupt > 0 {
			return s, fmt.Errorf("wal: summary %s damaged (torn=%v corrupt=%d): %w",
				sumName(path), sum.TornTail, sum.Corrupt, ErrCheckpointCorrupt)
		}
		s.Summary = sum.Records
		s.DiskBytes += sum.ValidSize
	case errors.Is(err, ErrNoCheckpoint):
		if sum.TornTail {
			return s, fmt.Errorf("wal: summary %s truncated: %w", sumName(path), ErrCheckpointCorrupt)
		}
	default:
		return s, fmt.Errorf("wal: summary %s: %w", sumName(path), err)
	}
	high := s.highWater()
	nextSeq := int64(high) // highest sequence seen so far; NextSeq = this + 1

	// Sealed segments, oldest index first.
	names, err := filepath.Glob(path + segmentPattern)
	if err != nil {
		return s, err
	}
	sort.Strings(names)
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(name[len(path):], ".s%06d", &idx); err != nil {
			continue
		}
		seg, err := Recover(name)
		if err != nil && !errors.Is(err, ErrNoCheckpoint) {
			return s, fmt.Errorf("wal: sealed segment %s: %w", name, err)
		}
		if seg.TornTail || seg.Corrupt > 0 {
			return s, fmt.Errorf("wal: sealed segment %s damaged (torn=%v corrupt=%d): %w",
				name, seg.TornTail, seg.Corrupt, ErrCheckpointCorrupt)
		}
		info := SegmentInfo{Path: name, Index: idx, Bytes: seg.ValidSize}
		for _, r := range seg.Records {
			if int64(r.Seq) <= high {
				s.Dropped++
				continue
			}
			s.Records = append(s.Records, r)
			info.Records++
			if int64(r.Seq) > nextSeq {
				nextSeq = int64(r.Seq)
			}
		}
		info.Shadowed = len(seg.Records) > 0 && info.Records == 0
		s.Sealed = append(s.Sealed, info)
		s.DiskBytes += seg.ValidSize
	}

	// The active file: torn tails are tolerated, and a complete corrupt
	// frame is flagged (ActiveCorrupt) with its valid prefix kept — the
	// segment was mid-write, so its tail has weaker guarantees than sealed
	// state, but the damage is always surfaced, never silently resumed past.
	act, err := Recover(path)
	switch {
	case err == nil, errors.Is(err, ErrNoCheckpoint):
		s.active = act
		s.TornTail, s.TornBytes = act.TornTail, act.TornBytes
		s.ActiveCorrupt = act.Corrupt > 0
		s.DiskBytes += act.ValidSize
		for _, r := range act.Records {
			if int64(r.Seq) <= high {
				s.Dropped++
				continue
			}
			s.Records = append(s.Records, r)
			if int64(r.Seq) > nextSeq {
				nextSeq = int64(r.Seq)
			}
		}
	case errors.Is(err, ErrCheckpointCorrupt):
		// The header itself is unreadable: no frame boundary in the active
		// file can be trusted. Surface records from sealed state only; the
		// caller decides whether to refuse or start a fresh active file.
		s.active = act
		s.ActiveCorrupt = true
	default:
		return s, err
	}

	s.NextSeq = uint32(nextSeq + 1)
	if len(s.Records) == 0 && len(s.Summary) == 0 {
		return s, ErrNoCheckpoint
	}
	return s, nil
}

// SegmentedLog is an append handle over a segmented log. Like Log it is not
// safe for concurrent use; the journal serializes appends above it.
type SegmentedLog struct {
	path   string
	opts   SegmentOptions
	active *Log
	sealed []SegmentInfo
	// sum mirrors the on-disk summary payloads; sumHigh is its high-water
	// sequence (-1 when no summary exists).
	sum     [][]byte
	sumSize int64
	sumHigh int64
	nextIdx int
}

// CreateSegmented starts an empty segmented log at path, removing any
// previous segments and summary.
func CreateSegmented(path string, opts SegmentOptions) (*SegmentedLog, error) {
	fs := opts.fs()
	if names, err := filepath.Glob(path + segmentPattern); err == nil {
		for _, name := range names {
			_ = fs.Remove(name)
		}
	}
	_ = fs.Remove(sumName(path))
	active, err := Create(path, Options{FS: opts.FS})
	if err != nil {
		return nil, err
	}
	return &SegmentedLog{path: path, opts: opts, active: active, sumHigh: -1}, nil
}

// OpenSegmented continues a recovered segmented log: the active file is
// truncated to its valid prefix (or created fresh when the previous process
// died between seal and re-create), fully-shadowed segments left by an
// interrupted compaction are deleted, and the compaction loop is run so an
// open log always respects MaxSegments.
func OpenSegmented(s *SegmentedScan, opts SegmentOptions) (*SegmentedLog, error) {
	fs := opts.fs()
	l := &SegmentedLog{path: s.Path, opts: opts, sumHigh: s.highWater()}
	for _, r := range s.Summary {
		l.sum = append(l.sum, r.Payload)
		l.sumSize += int64(frameHeaderSize + len(r.Payload) + frameTrailerSize)
	}
	if l.sumSize > 0 {
		l.sumSize += int64(len(magic))
	}
	for _, seg := range s.Sealed {
		if seg.Shadowed {
			if err := fs.Remove(seg.Path); err != nil {
				return nil, fmt.Errorf("wal: removing shadowed segment %s: %w", seg.Path, err)
			}
			continue
		}
		l.sealed = append(l.sealed, seg)
		if seg.Index >= l.nextIdx {
			l.nextIdx = seg.Index + 1
		}
	}

	if s.active == nil || s.active.ValidSize < int64(len(magic)) {
		// The active file is missing (crash between seal-rename and fresh
		// create) or too short to hold a header: start it fresh. Create
		// truncates, so a torn partial header is discarded here.
		active, err := Create(s.Path, Options{FS: opts.FS})
		if err != nil {
			return nil, err
		}
		l.active = active
	} else {
		active, err := Open(s.active, Options{FS: opts.FS})
		if err != nil {
			return nil, err
		}
		l.active = active
	}
	l.active.nextSeq = s.NextSeq
	if err := l.compact(); err != nil {
		l.active.Close()
		return nil, err
	}
	return l, nil
}

// Append seals one record into the active segment, rotating first when the
// frame would push it past SegmentBytes. Errors from the underlying log are
// already rolled back (see Log.Append) and leave counts untouched.
func (l *SegmentedLog) Append(payload []byte) error {
	frameLen := int64(frameHeaderSize + len(payload) + frameTrailerSize)
	if l.active.records > 0 && l.active.size+frameLen > l.opts.segmentBytes() {
		if err := l.seal(); err != nil {
			return err
		}
	}
	return l.active.Append(payload)
}

// seal closes the active segment, renames it into the sealed series, opens a
// fresh active file continuing the sequence, and compacts if needed.
func (l *SegmentedLog) seal() error {
	nextSeq := l.active.nextSeq
	size, records := l.active.size, l.active.records
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: seal close: %w", err)
	}
	name := sealedName(l.path, l.nextIdx)
	if err := l.opts.fs().Rename(l.path, name); err != nil {
		return fmt.Errorf("wal: seal rename: %w", err)
	}
	l.sealed = append(l.sealed, SegmentInfo{Path: name, Index: l.nextIdx, Records: records, Bytes: size})
	l.nextIdx++
	active, err := Create(l.path, Options{FS: l.opts.FS})
	if err != nil {
		return fmt.Errorf("wal: seal reopen: %w", err)
	}
	active.nextSeq = nextSeq
	l.active = active
	if l.opts.OnRotate != nil {
		l.opts.OnRotate(name, size, records)
	}
	return l.compact()
}

// compact folds oldest sealed segments into the summary until at most
// MaxSegments remain. Write-then-remove ordering plus sequence-number dedup
// makes each fold idempotent across crashes.
func (l *SegmentedLog) compact() error {
	if l.opts.MaxSegments <= 0 {
		return nil
	}
	for len(l.sealed) > l.opts.MaxSegments {
		oldest := l.sealed[0]
		seg, err := Recover(oldest.Path)
		if err != nil && !errors.Is(err, ErrNoCheckpoint) {
			return fmt.Errorf("wal: compact read %s: %w", oldest.Path, err)
		}
		var folded []Record
		maxSeq := l.sumHigh
		for _, r := range seg.Records {
			if int64(r.Seq) <= l.sumHigh {
				continue
			}
			folded = append(folded, r)
			if int64(r.Seq) > maxSeq {
				maxSeq = int64(r.Seq)
			}
		}
		if len(folded) > 0 {
			next, err := l.summarize(folded)
			if err != nil {
				return fmt.Errorf("wal: compact summarize: %w", err)
			}
			// Assign the replacement summary frames sequence numbers ending
			// at the fold's high-water mark, and write it atomically BEFORE
			// removing the folded segment.
			buf := append([]byte(nil), magic[:]...)
			base := maxSeq - int64(len(next)) + 1
			for i, p := range next {
				buf = append(buf, frame(uint32(base+int64(i)), p)...)
			}
			if err := WriteFileAtomic(sumName(l.path), buf, 0o644); err != nil {
				return fmt.Errorf("wal: compact summary write: %w", err)
			}
			l.sum, l.sumHigh, l.sumSize = next, maxSeq, int64(len(buf))
		}
		if err := l.opts.fs().Remove(oldest.Path); err != nil {
			return fmt.Errorf("wal: compact remove %s: %w", oldest.Path, err)
		}
		l.sealed = l.sealed[1:]
		if l.opts.OnCompact != nil {
			l.opts.OnCompact(oldest.Path, len(folded), l.DiskBytes())
		}
	}
	return nil
}

// summarize applies the configured fold, defaulting to "retain only the
// newest folded payload".
func (l *SegmentedLog) summarize(folded []Record) ([][]byte, error) {
	if l.opts.Summarize != nil {
		next, err := l.opts.Summarize(l.sum, folded)
		if err != nil {
			return nil, err
		}
		if len(next) == 0 {
			return nil, errors.New("wal: Summarize returned no payloads")
		}
		return next, nil
	}
	return [][]byte{folded[len(folded)-1].Payload}, nil
}

// DiskBytes is the log's total on-disk footprint.
func (l *SegmentedLog) DiskBytes() int64 {
	n := l.sumSize + l.active.size
	for _, seg := range l.sealed {
		n += seg.Bytes
	}
	return n
}

// Segments counts on-disk files: sealed segments plus the active file.
func (l *SegmentedLog) Segments() int { return len(l.sealed) + 1 }

// SummaryPayloads returns the current summary payloads (nil when empty).
func (l *SegmentedLog) SummaryPayloads() [][]byte { return l.sum }

// ActiveRecords reports the live record count in the active segment.
func (l *SegmentedLog) ActiveRecords() int { return l.active.records }

// Close syncs and closes the active segment.
func (l *SegmentedLog) Close() error { return l.active.Close() }
