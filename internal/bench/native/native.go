// Package native provides hand-instrumented Go implementations of the
// paper's benchmarks, mirroring the code the defuse compiler generates for
// the lang versions. Where the interpreter-based harness measures overheads
// under a deterministic cost model, these kernels measure real wall-clock
// overheads under the Go compiler — the closest analogue of the paper's
// icc-compiled measurements.
//
// Each kernel comes in up to four variants:
//
//	Xxx            — original computation
//	XxxResilient   — Algorithm 3 instrumentation with per-iteration use-count
//	                 guards (the paper's "Resilient" bars)
//	XxxResilientOpt— index-set split / inspector-hoisted instrumentation
//	                 (the paper's "Resilient-Optimized" bars)
//	XxxHW          — the Section 6.2.2 estimate: checksum operations replaced
//	                 by a cheap counter bump (the nop stand-in), use-count
//	                 and prologue/epilogue work retained
//
// The resilient variants return a non-nil error iff the def/use checksums
// (or the auxiliary e_def/e_use pair) disagree — i.e., a memory error was
// detected. With no injected faults they must always return nil; the tests
// enforce this together with bit-exact numerical equivalence to the
// original variants, which pins down every hand-derived use count.
package native

import (
	"math"

	"defuse/internal/checksum"
)

// CS holds the four def-use checksums of the scheme (register-resident in
// the paper's sense: they live outside the protected data).
type CS struct {
	def, use, edef, euse uint64
}

func fb(v float64) uint64 { return math.Float64bits(v) }

// Def folds a defined value n times into the def checksum.
func (c *CS) Def(v float64, n int64) { c.def += fb(v) * uint64(n) }

// Use folds a consumed value into the use checksum.
func (c *CS) Use(v float64) { c.use += fb(v) }

// UseN folds a value into the use checksum n times (epilogue balancing for
// inspector-counted arrays whose final definitions go unused).
func (c *CS) UseN(v float64, n int64) { c.use += fb(v) * uint64(n) }

// DefI and UseI are the integer-value counterparts.
func (c *CS) DefI(v int64, n int64) { c.def += uint64(v) * uint64(n) }

// UseI folds a consumed integer value into the use checksum.
func (c *CS) UseI(v int64) { c.use += uint64(v) }

// EDef registers a dynamically counted definition (def and e_def once).
func (c *CS) EDef(v float64) { c.def += fb(v); c.edef += fb(v) }

// EDefI is the integer counterpart of EDef.
func (c *CS) EDefI(v int64) { c.def += uint64(v); c.edef += uint64(v) }

// Adjust performs the overwrite/epilogue adjustment for a dynamically
// counted value with observed count n.
func (c *CS) Adjust(v float64, n int64) {
	c.def += fb(v) * uint64(n-1)
	c.euse += fb(v)
}

// AdjustI is the integer counterpart of Adjust.
func (c *CS) AdjustI(v int64, n int64) {
	c.def += uint64(v) * uint64(n-1)
	c.euse += uint64(v)
}

// Verify reports a checksum mismatch as an error.
func (c *CS) Verify() error {
	if c.def != c.use {
		return &checksum.MismatchError{Which: "def/use", Expected: c.def, Observed: c.use}
	}
	if c.edef != c.euse {
		return &checksum.MismatchError{Which: "e_def/e_use", Expected: c.edef, Observed: c.euse}
	}
	return nil
}

// nop is the hardware-estimate stand-in: one cheap op per checksum point,
// accumulated so the compiler cannot elide it.
type nop struct{ n uint64 }

func (s *nop) tick() { s.n++ }
