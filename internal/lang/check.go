package lang

import "fmt"

// SemanticError reports a semantic (name/type/shape) problem.
type SemanticError struct {
	Pos Pos
	Msg string
}

func (e *SemanticError) Error() string {
	return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg)
}

// Check performs semantic analysis: every reference resolves to a parameter,
// declaration, or in-scope loop iterator; subscript arity matches the
// declaration; iterators and parameters are not assigned; subscripts and loop
// bounds are integer-typed.
func Check(p *Program) error {
	c := &checker{prog: p, scopes: []map[string]bool{{}}}
	seen := map[string]bool{}
	for _, q := range p.Params {
		if seen[q] {
			return &SemanticError{Msg: fmt.Sprintf("duplicate parameter %q", q)}
		}
		seen[q] = true
	}
	for _, d := range p.Decls {
		if seen[d.Name] {
			return &SemanticError{Pos: d.Pos, Msg: fmt.Sprintf("duplicate declaration of %q", d.Name)}
		}
		seen[d.Name] = true
		for _, dim := range d.Dims {
			if err := c.checkExpr(dim, true); err != nil {
				return err
			}
		}
	}
	return c.checkStmts(p.Body)
}

type checker struct {
	prog   *Program
	scopes []map[string]bool // loop iterators in scope
}

func (c *checker) iterInScope(name string) bool {
	for _, s := range c.scopes {
		if s[name] {
			return true
		}
	}
	return false
}

func (c *checker) checkStmts(ss []Stmt) error {
	for _, s := range ss {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch x := s.(type) {
	case *Assign:
		if err := c.checkRefTarget(x.LHS); err != nil {
			return err
		}
		return c.checkExpr(x.RHS, false)
	case *For:
		if c.prog.IsParam(x.Iter) || c.prog.Decl(x.Iter) != nil || c.iterInScope(x.Iter) {
			return &SemanticError{Pos: x.Pos, Msg: fmt.Sprintf("loop iterator %q shadows an existing name", x.Iter)}
		}
		if err := c.checkExpr(x.Lo, true); err != nil {
			return err
		}
		if err := c.checkExpr(x.Hi, true); err != nil {
			return err
		}
		c.scopes = append(c.scopes, map[string]bool{x.Iter: true})
		err := c.checkStmts(x.Body)
		c.scopes = c.scopes[:len(c.scopes)-1]
		return err
	case *While:
		if err := c.checkExpr(x.Cond, false); err != nil {
			return err
		}
		return c.checkStmts(x.Body)
	case *If:
		if err := c.checkExpr(x.Cond, false); err != nil {
			return err
		}
		if err := c.checkStmts(x.Then); err != nil {
			return err
		}
		return c.checkStmts(x.Else)
	case *AddToChecksum:
		if err := c.checkExpr(x.Value, false); err != nil {
			return err
		}
		return c.checkExpr(x.Count, false)
	case *AssertChecksums:
		return nil
	}
	return &SemanticError{Msg: fmt.Sprintf("unknown statement %T", s)}
}

func (c *checker) checkRefTarget(r *Ref) error {
	if c.prog.IsParam(r.Name) {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf("cannot assign to parameter %q", r.Name)}
	}
	if c.iterInScope(r.Name) {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf("cannot assign to loop iterator %q", r.Name)}
	}
	d := c.prog.Decl(r.Name)
	if d == nil {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf("assignment to undeclared variable %q", r.Name)}
	}
	if len(r.Indices) != len(d.Dims) {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf(
			"%q has %d dimension(s), reference uses %d subscript(s)", r.Name, len(d.Dims), len(r.Indices))}
	}
	for _, ix := range r.Indices {
		if err := c.checkExpr(ix, true); err != nil {
			return err
		}
	}
	return nil
}

// checkExpr validates an expression; wantInt demands integer type (subscript
// and bound positions).
func (c *checker) checkExpr(e Expr, wantInt bool) error {
	switch x := e.(type) {
	case *IntLit:
		return nil
	case *FloatLit:
		if wantInt {
			return &SemanticError{Pos: x.Pos, Msg: "float literal in integer context"}
		}
		return nil
	case *Ref:
		return c.checkRefRead(x, wantInt)
	case *Bin:
		if x.Op.IsComparison() || x.Op.IsLogical() {
			if wantInt {
				return &SemanticError{Pos: x.Pos, Msg: "boolean expression in integer context"}
			}
			return firstErr(c.checkExpr(x.L, false), c.checkExpr(x.R, false))
		}
		return firstErr(c.checkExpr(x.L, wantInt), c.checkExpr(x.R, wantInt))
	case *Un:
		if x.Op == UnNot && wantInt {
			return &SemanticError{Pos: x.Pos, Msg: "boolean expression in integer context"}
		}
		return c.checkExpr(x.X, wantInt && x.Op == UnNeg)
	case *Call:
		// min and max are usable in integer contexts (index-set split loop
		// bounds are expressions like min(hi, n-2)); other intrinsics are
		// floating-point only.
		if wantInt && x.Name != "min" && x.Name != "max" {
			return &SemanticError{Pos: x.Pos, Msg: fmt.Sprintf("call to %s in integer context", x.Name)}
		}
		arity, ok := Intrinsics[x.Name]
		if !ok {
			return &SemanticError{Pos: x.Pos, Msg: fmt.Sprintf("unknown intrinsic %q", x.Name)}
		}
		if len(x.Args) != arity {
			return &SemanticError{Pos: x.Pos, Msg: fmt.Sprintf("%s takes %d argument(s)", x.Name, arity)}
		}
		for _, a := range x.Args {
			if err := c.checkExpr(a, wantInt); err != nil {
				return err
			}
		}
		return nil
	}
	return &SemanticError{Msg: fmt.Sprintf("unknown expression %T", e)}
}

func (c *checker) checkRefRead(r *Ref, wantInt bool) error {
	if c.prog.IsParam(r.Name) || c.iterInScope(r.Name) {
		if len(r.Indices) != 0 {
			return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf("%q is not an array", r.Name)}
		}
		return nil
	}
	d := c.prog.Decl(r.Name)
	if d == nil {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf("undeclared identifier %q", r.Name)}
	}
	if len(r.Indices) != len(d.Dims) {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf(
			"%q has %d dimension(s), reference uses %d subscript(s)", r.Name, len(d.Dims), len(r.Indices))}
	}
	if wantInt && d.Type != TypeInt {
		return &SemanticError{Pos: r.Pos, Msg: fmt.Sprintf("float variable %q in integer context", r.Name)}
	}
	for _, ix := range r.Indices {
		if err := c.checkExpr(ix, true); err != nil {
			return err
		}
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// IsAffine reports whether e is an affine combination of integer literals,
// parameters, and variables accepted by isVar (typically loop iterators):
// sums/differences of terms, with multiplication restricted to a constant
// times an affine expression.
func IsAffine(e Expr, isVar func(name string) bool) bool {
	affine, _ := classifyAffine(e, isVar)
	return affine
}

// classifyAffine reports (affine, constant) for e.
func classifyAffine(e Expr, isVar func(string) bool) (affine, constant bool) {
	switch x := e.(type) {
	case *IntLit:
		return true, true
	case *FloatLit:
		return false, false
	case *Ref:
		if len(x.Indices) == 0 && isVar(x.Name) {
			return true, false
		}
		return false, false
	case *Un:
		if x.Op != UnNeg {
			return false, false
		}
		return classifyAffine(x.X, isVar)
	case *Bin:
		la, lc := classifyAffine(x.L, isVar)
		ra, rc := classifyAffine(x.R, isVar)
		switch x.Op {
		case BinAdd, BinSub:
			return la && ra, lc && rc
		case BinMul:
			// Affine iff one side is a constant.
			return la && ra && (lc || rc), lc && rc
		default:
			return false, false
		}
	}
	return false, false
}
