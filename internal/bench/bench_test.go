package bench

import (
	"math"
	"testing"

	"defuse/internal/instrument"
	"defuse/internal/lang"
)

// benchScale keeps interpreter runs fast in tests.
const benchScale = 0.004

func TestSuiteComplete(t *testing.T) {
	s := Suite()
	if len(s) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10 (Table 2)", len(s))
	}
	want := []string{"ADI", "CG", "cholesky", "dsyrk", "jacobi1d", "LU", "moldyn", "seidel", "strsm", "trisolv"}
	for i, name := range want {
		if s[i].Name != name {
			t.Errorf("suite[%d] = %s, want %s", i, s[i].Name, name)
		}
	}
	if _, err := ByName("cholesky"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown benchmark")
	}
}

func TestSourcesParseAndCheck(t *testing.T) {
	for _, b := range Suite() {
		prog, err := lang.Parse(b.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", b.Name, err)
			continue
		}
		if err := lang.Check(prog); err != nil {
			t.Errorf("%s: check: %v", b.Name, err)
		}
	}
}

func TestAllVariantsBuild(t *testing.T) {
	for _, b := range Suite() {
		for _, v := range []Variant{Original, Resilient, ResilientOpt} {
			if _, err := b.BuildVariant(v); err != nil {
				t.Errorf("%s/%s: %v", b.Name, v, err)
			}
		}
	}
}

// TestRunAllBenchmarks is the central evaluation smoke test: every benchmark
// runs all three variants fault-free (no false positives), produces
// bit-identical outputs, and exhibits the paper's overhead ordering under
// the operation-count model: original < optimized <= resilient.
func TestRunAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs 30 interpreted kernels")
	}
	for _, b := range Suite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			r10, r11, err := RunBenchmark(b, benchScale)
			if err != nil {
				t.Fatal(err)
			}
			if r10.ResilientOps <= 1.0 {
				t.Errorf("resilient ops ratio %.3f should exceed 1", r10.ResilientOps)
			}
			if r10.OptimizedOps <= 1.0 {
				t.Errorf("optimized ops ratio %.3f should exceed 1", r10.OptimizedOps)
			}
			// Optimization must not hurt (the paper's Figure 10 shape). A
			// small tolerance absorbs loop-bound bookkeeping.
			if r10.OptimizedOps > r10.ResilientOps*1.02 {
				t.Errorf("optimized (%.3f) worse than resilient (%.3f)", r10.OptimizedOps, r10.ResilientOps)
			}
			// Figure 11: hardware support must beat software checksums.
			if r11.HWEstimate >= r10.OptimizedOps {
				t.Errorf("hw estimate %.3f not better than software %.3f", r11.HWEstimate, r10.OptimizedOps)
			}
			if r11.HWEstimate < 1.0 {
				t.Errorf("hw estimate %.3f below 1: counters/prologue cannot be free", r11.HWEstimate)
			}
		})
	}
}

func TestCGInspectorHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The paper: CG's gains come entirely from inspector hoisting
	// (33.7s -> 81.1s resilient -> 52.7s hoisted). Verify the ops shape.
	b, err := ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	r10, _, err := RunBenchmark(b, benchScale)
	if err != nil {
		t.Fatal(err)
	}
	if r10.OptimizedOps >= r10.ResilientOps*0.95 {
		t.Errorf("CG optimized (%.3f) should be well below resilient (%.3f)",
			r10.OptimizedOps, r10.ResilientOps)
	}
}

func TestMoldynHighestOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The paper: moldyn has the highest overhead because its inspector
	// cannot be hoisted (counters remain).
	rows, _, err := figureRows(t, []string{"moldyn", "cholesky", "jacobi1d", "trisolv"})
	if err != nil {
		t.Fatal(err)
	}
	mold := rows["moldyn"]
	for name, r := range rows {
		if name == "moldyn" {
			continue
		}
		if mold.OptimizedOps < r.OptimizedOps {
			t.Errorf("moldyn optimized overhead (%.3f) should exceed %s's (%.3f)",
				mold.OptimizedOps, name, r.OptimizedOps)
		}
	}
}

func figureRows(t *testing.T, names []string) (map[string]Figure10Row, map[string]Figure11Row, error) {
	t.Helper()
	rows10 := map[string]Figure10Row{}
	rows11 := map[string]Figure11Row{}
	for _, name := range names {
		b, err := ByName(name)
		if err != nil {
			return nil, nil, err
		}
		r10, r11, err := RunBenchmark(b, benchScale)
		if err != nil {
			return nil, nil, err
		}
		rows10[name] = r10
		rows11[name] = r11
	}
	return rows10, rows11, nil
}

func TestCGPlansMatchPaper(t *testing.T) {
	b, err := ByName("CG")
	if err != nil {
		t.Fatal(err)
	}
	res, err := instrument.Instrument(b.Program(), instrument.Options{Split: true, Inspector: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Report.Plans
	if p["p"] != instrument.PlanInspector {
		t.Errorf("p plan = %v, want inspector", p["p"])
	}
	if p["cols"] != instrument.PlanInvariant || p["Aval"] != instrument.PlanInvariant {
		t.Errorf("cols/Aval plans = %v/%v, want invariant", p["cols"], p["Aval"])
	}
	if p["q"] != instrument.PlanDynamic || p["r"] != instrument.PlanDynamic {
		t.Errorf("q/r plans = %v/%v, want dynamic", p["q"], p["r"])
	}
	if res.Report.InspectorsHoisted != 1 {
		t.Errorf("inspectors = %d, want 1", res.Report.InspectorsHoisted)
	}
}

func TestMoldynPlansMatchPaper(t *testing.T) {
	b, err := ByName("moldyn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := instrument.Instrument(b.Program(), instrument.Options{Split: true, Inspector: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Report.Plans
	// The neighbor list is rebuilt each iteration: x cannot be
	// inspector-counted and falls back to dynamic counters.
	if p["x"] != instrument.PlanDynamic {
		t.Errorf("x plan = %v, want dynamic (inspector not hoistable)", p["x"])
	}
	if p["neigh"] != instrument.PlanDynamic {
		t.Errorf("neigh plan = %v, want dynamic", p["neigh"])
	}
}

func TestFormatters(t *testing.T) {
	rows := []Figure10Row{{Bench: "x", OriginalSeconds: 1, ResilientTime: 1.5, OptimizedTime: 1.2, ResilientOps: 1.6, OptimizedOps: 1.3}}
	if s := FormatFigure10(rows); s == "" || len(s) < 20 {
		t.Error("empty figure 10 format")
	}
	rows11 := []Figure11Row{{Bench: "x", HWEstimate: 1.05}}
	if s := FormatFigure11(rows11); s == "" {
		t.Error("empty figure 11 format")
	}
	r, o := GeoMeans(rows)
	if math.Abs(r-1.6) > 1e-9 || math.Abs(o-1.3) > 1e-9 {
		t.Errorf("geomeans = %v, %v", r, o)
	}
}
