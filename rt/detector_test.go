package rt

import (
	"errors"
	"testing"

	"defuse/internal/checksum"
)

func TestScrubDetectorCleanRun(t *testing.T) {
	tr := NewTracker()
	var c Counter
	DefDyn(tr, &c, 0.0, 1.5)
	Use(tr, &c, 1.5)
	Use(tr, &c, 1.5)
	Final(tr, &c, 1.5)
	if err := tr.ScrubDetector(); err != nil {
		t.Fatalf("clean run scrub: %v", err)
	}
	if err := tr.Verify(); err != nil {
		t.Fatalf("clean run verify: %v", err)
	}
}

func TestScrubDetectorCatchesAccumulatorFault(t *testing.T) {
	tr := NewTracker()
	Def(tr, 3.25, 1)
	UseKnown(tr, 3.25)
	tr.CorruptAccumulator(checksum.AccUse, 13)
	err := tr.ScrubDetector()
	var df *DetectorFaultError
	if !errors.As(err, &df) {
		t.Fatalf("ScrubDetector = %v, want *DetectorFaultError", err)
	}
	if df.Part != "accumulator" {
		t.Errorf("Part = %q, want accumulator", df.Part)
	}
	var se *checksum.ScrubError
	if !errors.As(err, &se) || se.Acc != checksum.AccUse {
		t.Errorf("underlying scrub error = %v, want use-accumulator divergence", err)
	}
	// The fault also breaks def == use, but Verify's verdict must not be
	// confusable with the detector fault: they are different error types.
	var mm *checksum.MismatchError
	if errors.As(err, &mm) {
		t.Error("detector fault unwraps to a data-fault MismatchError")
	}
}

func TestCounterFaultLatchedAtConsumption(t *testing.T) {
	tr := NewTracker()
	var c Counter
	DefDyn(tr, &c, 0.0, 2.0)
	Use(tr, &c, 2.0)
	CorruptCounter(&c, 3)
	// The fault sits in the counter but nothing has consumed it yet: the
	// tracker-level scrub (latch + accumulators) is still clean.
	if err := tr.ScrubDetector(); err != nil {
		t.Fatalf("fault not yet consumed, scrub = %v", err)
	}
	// Final consumes (and resets) the counter — the last moment the
	// divergence is observable — and must latch it.
	Final(tr, &c, 2.0)
	err := tr.ScrubDetector()
	var df *DetectorFaultError
	if !errors.As(err, &df) || df.Part != "counter" {
		t.Fatalf("ScrubDetector = %v, want latched counter fault", err)
	}
	// The latch is sticky until the state is rebuilt.
	if tr.ScrubDetector() == nil {
		t.Error("latched fault vanished on second scrub")
	}
	tr.Reset()
	if err := tr.ScrubDetector(); err != nil {
		t.Errorf("Reset must clear the latch: %v", err)
	}
}

func TestCounterLatchFirstFaultWins(t *testing.T) {
	tr := NewTracker()
	var c1, c2 Counter
	DefDyn(tr, &c1, 0.0, 1.0)
	DefDyn(tr, &c2, 0.0, 2.0)
	CorruptCounter(&c1, 4)
	CorruptCounter(&c2, 5)
	Final(tr, &c1, 1.0)
	first := tr.ScrubDetector()
	Final(tr, &c2, 2.0)
	second := tr.ScrubDetector()
	if first == nil || second == nil {
		t.Fatal("latch missing")
	}
	if first != second {
		t.Errorf("latch was overwritten: %v then %v", first, second)
	}
}

func TestCounterScrub(t *testing.T) {
	var c Counter
	if err := c.Scrub(); err != nil {
		t.Fatalf("zero Counter must scrub clean: %v", err)
	}
	tr := NewTracker()
	DefDyn(tr, &c, int64(0), int64(5))
	Use(tr, &c, int64(5))
	if err := c.Scrub(); err != nil {
		t.Fatalf("live counter scrub: %v", err)
	}
	CorruptCounter(&c, 1)
	err := c.Scrub()
	var df *DetectorFaultError
	if !errors.As(err, &df) || df.Part != "counter" {
		t.Fatalf("Scrub = %v, want counter DetectorFaultError", err)
	}
}

func TestCorruptCounterDefinedFlag(t *testing.T) {
	// Bit 0 of the packed form is the defined flag; flipping it is the
	// nastiest counter fault (it silently suppresses the epilogue adjustment).
	tr := NewTracker()
	var c Counter
	DefDyn(tr, &c, 0.0, 1.0)
	CorruptCounter(&c, 0)
	if c.defined {
		t.Fatal("bit 0 flip did not clear the defined flag")
	}
	if c.Scrub() == nil {
		t.Fatal("cleared defined flag escaped the counter scrub")
	}
}

func TestRollbackClearsLatchedFault(t *testing.T) {
	tr := NewTracker()
	snap := tr.BeginEpoch()
	var c Counter
	DefDyn(tr, &c, 0.0, 1.0)
	CorruptCounter(&c, 2)
	Final(tr, &c, 1.0)
	if tr.ScrubDetector() == nil {
		t.Fatal("expected a latched counter fault")
	}
	if err := tr.Rollback(snap); err != nil {
		t.Fatal(err)
	}
	if err := tr.ScrubDetector(); err != nil {
		t.Errorf("Rollback must clear the latch along with the state: %v", err)
	}
}

func TestRollbackAfterReset(t *testing.T) {
	// A snapshot sealed before Reset stays valid: its digest covers its own
	// fields, not the tracker's, so rolling back across a Reset reinstates
	// the sealed state exactly.
	tr := NewTracker()
	Def(tr, 4.0, 2)
	UseKnown(tr, 4.0)
	snap := tr.BeginEpoch()
	wd, wu, wed, weu := tr.Checksums()
	tr.Reset()
	if d, _, _, _ := tr.Checksums(); d != 0 {
		t.Fatal("Reset did not clear the tracker")
	}
	if err := tr.Rollback(snap); err != nil {
		t.Fatal(err)
	}
	d, u, ed, eu := tr.Checksums()
	if d != wd || u != wu || ed != wed || eu != weu {
		t.Errorf("rollback across Reset restored %#x/%#x/%#x/%#x, want %#x/%#x/%#x/%#x",
			d, u, ed, eu, wd, wu, wed, weu)
	}
	if err := tr.pair.Scrub(); err != nil {
		t.Errorf("restored pair shadows inconsistent: %v", err)
	}
}

func TestRollbackRefusesTamperedSnapshot(t *testing.T) {
	tr := NewTracker()
	Def(tr, 2.0, 1)
	UseKnown(tr, 2.0)
	snap := tr.BeginEpoch()
	snap.Use ^= 1 << 9 // a fault striking the parked checkpoint
	err := tr.Rollback(snap)
	if !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("Rollback = %v, want ErrCheckpointCorrupt", err)
	}
	// The refusal must leave the tracker untouched.
	if verr := tr.Verify(); verr != nil {
		t.Errorf("refused rollback still modified the tracker: %v", verr)
	}
	// The unhardened baseline resurrects the corruption.
	if uerr := tr.RollbackUnchecked(snap); uerr != nil {
		t.Fatalf("RollbackUnchecked = %v", uerr)
	}
	if verr := tr.Verify(); verr == nil {
		t.Error("unchecked restore of a tampered snapshot verified clean")
	}
}

func TestEpochStateVerify(t *testing.T) {
	var zero EpochState
	if zero.Sealed() {
		t.Error("zero EpochState claims to be sealed")
	}
	if err := zero.Verify(); err == nil {
		t.Error("zero EpochState verified")
	} else if errors.Is(err, ErrCheckpointCorrupt) {
		t.Error("unsealed is not the same failure as corrupt; keep the errors distinct")
	}
	tr := NewTracker()
	s := tr.BeginEpoch()
	if !s.Sealed() {
		t.Error("BeginEpoch snapshot not sealed")
	}
	if err := s.Verify(); err != nil {
		t.Errorf("fresh snapshot Verify = %v", err)
	}
	s.Defs++
	if err := s.Verify(); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("tampered snapshot Verify = %v, want ErrCheckpointCorrupt", err)
	}
}
