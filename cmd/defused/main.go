// Command defused is the resident detection service: a long-running HTTP
// server where each request — a def/use verify job or an instrumented kernel
// execution — runs under a per-request epoch on pooled detector state,
// supervised with deadlines, bounded retry+backoff, and checkpoint/rollback
// recovery. The paper's end-of-interval verification becomes a per-request
// contract: every response has been verified against its epoch checksums
// before it is sent, and every completed request is journaled to a
// crash-consistent WAL.
//
// Usage (serve):
//
//	defused -addr 127.0.0.1:9150 [-words 64] [-epochs 8] [-seed 1] \
//	        [-kernel name -scale 0.002] [-max-inflight 4] [-queue 8] \
//	        [-timeout 30s] [-fault-rate 0] [-fault-seed 1] [-wal serve.wal] \
//	        [-drain-timeout 30s] \
//	        [-trace events.jsonl] [-metrics out] [-flight dump.json] [-chrome t.json]
//
// The service and its telemetry share one port: /run and /stats alongside
// /metrics, /healthz (liveness), /readyz (readiness; flips unready the
// moment a drain starts), /events, /flight, and pprof. Admission control
// sheds load with 429 once the bounded queue is full and refuses with 503
// while draining. The first SIGINT/SIGTERM starts a graceful drain:
// in-flight epochs complete and verify, the WAL is sealed, and the process
// exits cleanly; a second signal forces immediate exit with telemetry
// flushed. A SIGKILLed server restarts over its WAL, re-verifying the newest
// record from first principles before resuming.
//
// -fault-rate R injects a transient single-bit fault into a deterministic
// R-fraction of live verify requests (sampled purely from the request ID, so
// an auditing client with the same -fault-seed knows exactly which requests
// were hit). The epoch discipline guarantees each injected fault is detected
// at its epoch boundary and rolled back; the response must carry the same
// digest a clean run produces.
//
// Usage (load generator):
//
//	defused -loadgen -target http://127.0.0.1:9150 [-streams 4] [-requests 200] \
//	        [-words 64] [-epochs 8] [-seed 1] [-fault-rate 0.05] [-fault-seed 1] \
//	        [-kernel-every 0] [-first-id 0] [-gate] [-json-out BENCH_overhead.json]
//
// The load generator drives concurrent streams against a running defused,
// independently recomputes which requests the server must have injected and
// what digest each must return, and reports p50/p99/p999 latency plus
// verified throughput. -gate exits non-zero unless every injected fault was
// detected and recovered and every clean request returned the exact
// reference digest. -json-out merges the result into an existing
// BENCH_overhead.json as its service block (current defuse/overhead schema).
//
// Usage (chaos soak):
//
//	defused -soak [-soak-duration 30s] [-soak-seed 1] [-soak-dir DIR] \
//	        [-gate] [-json-out BENCH_overhead.json]
//
// The soak re-execs this binary as a child service and runs it under a seeded
// disturbance schedule: SIGKILLs with torn tails and disk bit flips applied
// between restarts, SIGSTOP/SIGCONT pauses, injected WAL write/fsync faults,
// overload bursts, and adversarial clients — while auditing every response
// digest and re-verifying the journal across every restart. -gate exits
// non-zero unless the schedule's minima were all delivered with zero silent
// corruptions, undetected faults, resume mismatches, or audit failures.
// -json-out merges the soak row into BENCH_overhead.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"defuse/internal/bench"
	"defuse/internal/chaos"
	"defuse/internal/server"
	"defuse/internal/wal"
	"defuse/telemetry"
)

func main() {
	// A soak child must take its orders from the spec in the environment
	// before flag parsing can see the (orchestrator's) command line.
	if chaos.IsSoakChild() {
		chaos.SoakChildMain()
	}
	addr := flag.String("addr", "127.0.0.1:9150", "serve the service and its telemetry on this host:port")
	words := flag.Int("words", 64, "default words per verify request")
	epochs := flag.Int("epochs", 8, "default epochs per verify request")
	seed := flag.Uint64("seed", 1, "seed deriving verify requests' initial data")
	kernel := flag.String("kernel", "", "preload this Table 2 benchmark for kernel requests")
	scale := flag.Float64("scale", 0.002, "with -kernel: problem-size scale relative to the paper's sizes")
	maxInFlight := flag.Int("max-inflight", 4, "concurrently executing requests (also the pool sizes)")
	queue := flag.Int("queue", 0, "admission queue depth; arrivals beyond it are shed with 429 (0 = 2*max-inflight)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	faultRate := flag.Float64("fault-rate", 0, "inject a transient fault into this fraction of verify requests")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault sampler")
	faultAddrFrac := flag.Float64("fault-addr-frac", 0, "fraction of injected faults that are wrong-location loads instead of bit flips")
	walPath := flag.String("wal", "", "journal completed requests to this WAL for crash-consistent resume")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "rotate the WAL into sealed segments past this size (0 = 64 MiB)")
	walMaxSegs := flag.Int("wal-max-segments", 0, "compact oldest sealed segments beyond this count (0 = 8, negative = never)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain")

	loadgen := flag.Bool("loadgen", false, "run as load generator against -target instead of serving")
	target := flag.String("target", "http://127.0.0.1:9150", "with -loadgen: service base URL")
	streams := flag.Int("streams", 4, "with -loadgen: concurrent request streams")
	requests := flag.Int("requests", 200, "with -loadgen: total requests across all streams")
	kernelEvery := flag.Int("kernel-every", 0, "with -loadgen: make every Nth request a kernel job (0 = none)")
	firstID := flag.Uint64("first-id", 0, "with -loadgen: request ID offset (successive runs on one journal need disjoint IDs)")
	gate := flag.Bool("gate", false, "with -loadgen: exit non-zero unless every injected fault was detected and recovered cleanly")
	jsonOut := flag.String("json-out", "", "with -loadgen/-soak: merge the result row into this BENCH_overhead.json")

	soak := flag.Bool("soak", false, "run the chaos soak: re-exec this binary as a child service under a seeded disturbance schedule")
	soakDuration := flag.Duration("soak-duration", 30*time.Second, "with -soak: soak length")
	soakSeed := flag.Uint64("soak-seed", 1, "with -soak: seed deriving the disturbance schedule")
	soakDir := flag.String("soak-dir", "", "with -soak: scratch directory (empty = a fresh temp dir)")

	obsFlags := telemetry.ObsFlags(flag.CommandLine)
	flag.Parse()
	obsCfg := obsFlags()

	if err := validateFlags(flagValues{
		MaxInFlight: *maxInFlight, Queue: *queue,
		FaultRate: *faultRate, FaultAddrFrac: *faultAddrFrac,
		DrainTimeout: *drainTimeout, WALSegmentBytes: *walSegBytes,
		SoakDuration: *soakDuration,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "defused:", err)
		flag.Usage()
		os.Exit(2)
	}

	if *soak {
		if err := runSoak(*soakSeed, *soakDuration, *soakDir, *gate, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if *loadgen {
		if err := runLoadgen(*target, *streams, *requests, *words, *epochs, *seed,
			*faultRate, *faultSeed, *faultAddrFrac, *kernelEvery, *firstID, *timeout, *gate, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	if obsCfg.ServeAddr != "" {
		fatal(fmt.Errorf("-serve is implied: defused serves telemetry on the service port (-addr)"))
	}
	if *addr == "" {
		fatal(fmt.Errorf("-addr is required"))
	}
	obsCfg.ServeAddr = *addr
	// Boot unready: readiness is advertised only once the pools are built,
	// the kernel is warmed up, the journal is scanned, and the routes are
	// mounted.
	health := telemetry.NewHealth()
	health.SetReady(false)
	obsCfg.Health = health

	obs, err := telemetry.SetupObs(obsCfg)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		Words: *words, Epochs: *epochs, Seed: *seed,
		Kernel: *kernel, Scale: *scale,
		MaxInFlight: *maxInFlight, QueueDepth: *queue, Timeout: *timeout,
		FaultRate: *faultRate, FaultSeed: *faultSeed, FaultAddrFraction: *faultAddrFrac,
		WALPath: *walPath, WALSegmentBytes: *walSegBytes, WALMaxSegments: *walMaxSegs,
		Obs: obs,
	})
	if err != nil {
		_ = obs.Finish()
		fatal(err)
	}
	srv.Mount(obs.Server)
	health.SetReady(true)

	fmt.Fprintf(os.Stderr, "defused: serving on http://%s (POST /run; /stats /metrics /healthz /readyz)\n", obs.Server.Addr())
	if *walPath != "" {
		info := srv.Resume()
		if info.Records > 0 {
			fmt.Fprintf(os.Stderr, "defused: resumed journal %s: %d records (last ID %d, re-verified), torn tail: %v\n",
				*walPath, info.Records, info.LastID, info.TornTail)
		} else {
			fmt.Fprintf(os.Stderr, "defused: journaling to %s\n", *walPath)
		}
	}
	if *kernel != "" {
		fmt.Fprintf(os.Stderr, "defused: kernel %s warmed up, reference digest %x\n", *kernel, srv.KernelRef())
	}

	// First signal: start draining. Second signal: immediate exit with
	// telemetry flushed (GracefulSignals runs obs.Finish).
	ctx, stop := telemetry.GracefulSignals(obs)
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "defused: draining (in-flight requests completing; interrupt again to force exit)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	derr := srv.Drain(dctx)
	cancel()
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "defused: drained: %d completed (%d injected, %d recovered), %d shed, %d rejected\n",
		st.Requests, st.Injected, st.Recovered, st.Shed, st.Rejected)
	stop()
	if ferr := obs.Finish(); derr == nil {
		derr = ferr
	}
	if derr != nil {
		fatal(derr)
	}
}

func runLoadgen(target string, streams, requests, words, epochs int, seed uint64,
	faultRate float64, faultSeed uint64, faultAddrFrac float64, kernelEvery int, firstID uint64,
	timeout time.Duration, gate bool, jsonOut string) error {
	// The loadgen shares the CLI-wide signal discipline: first interrupt
	// cancels the run (partial results still reported), second forces exit.
	ctx, stop := telemetry.GracefulSignals(&telemetry.Obs{})
	defer stop()

	res, err := server.RunLoad(ctx, server.LoadConfig{
		Target: target, Streams: streams, Requests: requests,
		Words: words, Epochs: epochs, Seed: seed,
		FaultRate: faultRate, FaultSeed: faultSeed, FaultAddrFraction: faultAddrFrac,
		KernelEvery: kernelEvery, FirstID: firstID, Timeout: timeout,
	})
	if err != nil {
		return err
	}
	row := res.Row
	fmt.Printf("loadgen: %d streams, %d completed in %.2fs (%.1f req/s)\n",
		row.Streams, row.Requests, row.DurationSeconds, row.ThroughputRPS)
	fmt.Printf("loadgen: injected %d, detected %d, recovered %d; clean %d (mismatches %d)\n",
		row.Injected, row.Detected, row.Recovered, row.Clean, row.CleanMismatches)
	fmt.Printf("loadgen: shed %d, rejected %d, errors %d\n", row.Shed, row.Rejected, row.Errors)
	fmt.Printf("loadgen: latency p50 %.6fs  p99 %.6fs  p999 %.6fs\n",
		row.P50Seconds, row.P99Seconds, row.P999Seconds)
	for _, m := range res.Mismatches {
		fmt.Fprintln(os.Stderr, "loadgen: audit:", m)
	}

	if jsonOut != "" {
		err := bench.MergeServiceRow(jsonOut, row, func(path string, data []byte) error {
			return wal.WriteFileAtomic(path, data, 0o644)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: merged service row into %s\n", jsonOut)
	} else if gate {
		// A gated run with no merge target still prints the row for CI logs.
		raw, _ := json.Marshal(row)
		fmt.Printf("loadgen: row %s\n", raw)
	}
	if gate {
		return res.Gate()
	}
	return nil
}

func runSoak(seed uint64, duration time.Duration, dir string, gate bool, jsonOut string) error {
	ctx, stop := telemetry.GracefulSignals(&telemetry.Obs{})
	defer stop()

	res, err := chaos.Soak(ctx, chaos.Config{
		Seed: seed, Duration: duration, Dir: dir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	row := res.Row
	fmt.Printf("soak: %.0fs under seed %d: %d requests across %d incarnations\n",
		row.DurationSeconds, row.Seed, row.Requests, row.Restarts)
	fmt.Printf("soak: disturbances: %d kills, %d pauses, %d torn writes, %d bit flips, %d WAL write faults, %d bursts\n",
		row.Kills, row.Pauses, row.TornWrites, row.BitFlips, row.WriteFaults, row.Bursts)
	fmt.Printf("soak: injected %d, detected %d, recovered %d; shed %d, rejected %d, retries %d; degraded entered %d\n",
		row.Injected, row.Detected, row.Recovered, row.Shed, row.Rejected, row.Retries, row.DegradedN)
	fmt.Printf("soak: journal: %d live + %d compacted in %d segments, %d bytes on disk\n",
		row.JournalLive, row.JournalCompacted, row.JournalSegments, row.JournalDiskBytes)
	fmt.Printf("soak: violations: %d silent corruptions, %d undetected faults, %d resume mismatches, %d audit failures\n",
		row.SilentCorruptions, row.UndetectedFaults, row.ResumeMismatches, row.AuditFailures)
	for _, f := range res.Failures {
		fmt.Fprintln(os.Stderr, "soak: audit:", f)
	}

	if jsonOut != "" {
		err := bench.MergeSoakRow(jsonOut, row, func(path string, data []byte) error {
			return wal.WriteFileAtomic(path, data, 0o644)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "soak: merged soak row into %s\n", jsonOut)
	} else if gate {
		raw, _ := json.Marshal(row)
		fmt.Printf("soak: row %s\n", raw)
	}
	if gate {
		return res.Gate()
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "defused:", err)
	os.Exit(1)
}
