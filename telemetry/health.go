package telemetry

import (
	"sync/atomic"
	"time"
)

// Health is the liveness/readiness state a long-running process exposes at
// /healthz and /readyz. Liveness is unconditional — if the process can answer
// at all, it is alive. Readiness is an atomic flag the owner flips: a resident
// service marks itself unready while warming up and again while draining, so
// load balancers (and the loadgen harness) stop sending work before the
// process stops accepting it. The in-flight counter tracks requests currently
// executing; it is exported as a gauge when a registry is bound and reported
// by /readyz either way, so a drain can be observed from the outside.
type Health struct {
	ready    atomic.Bool
	draining atomic.Bool
	inflight atomic.Int64
	state    atomic.Value // string: degradation-ladder rung, "" when unset
	started  time.Time
	gauge    *Gauge
}

// NewHealth returns a Health that reports ready. Services that need a warmup
// phase call SetReady(false) before binding their listener (or pass the
// Health through ObsConfig before SetupObs serves it).
func NewHealth() *Health {
	h := &Health{started: time.Now()}
	h.ready.Store(true)
	return h
}

// SetReady flips the readiness flag. Marking unready does not abort in-flight
// work — it only tells pollers of /readyz to stop sending more.
func (h *Health) SetReady(ready bool) {
	if h == nil {
		return
	}
	h.ready.Store(ready)
}

// Ready reports the readiness flag.
func (h *Health) Ready() bool { return h != nil && h.ready.Load() }

// SetDraining marks the service as draining: unready, and refusing new work.
// The flag is separate from readiness so /readyz can say *why* it is unready.
func (h *Health) SetDraining() {
	if h == nil {
		return
	}
	h.draining.Store(true)
	h.ready.Store(false)
}

// Draining reports whether the service is draining.
func (h *Health) Draining() bool { return h != nil && h.draining.Load() }

// SetState publishes the owner's degradation-ladder rung (e.g. "healthy",
// "shedding", "degraded", "draining") for the /readyz body. Orthogonal to the
// ready flag: a shedding server is still ready, just telling clients why
// some requests bounce.
func (h *Health) SetState(state string) {
	if h == nil {
		return
	}
	h.state.Store(state)
}

// State returns the published ladder rung, "" when the owner never set one.
func (h *Health) State() string {
	if h == nil {
		return ""
	}
	s, _ := h.state.Load().(string)
	return s
}

// BindGauge exports the in-flight counter as defuse_server_in_flight in reg.
// Safe to call with a nil registry (no-op).
func (h *Health) BindGauge(reg *Registry) {
	if h == nil || reg == nil {
		return
	}
	h.gauge = reg.Gauge("defuse_server_in_flight")
	h.gauge.Set(float64(h.inflight.Load()))
}

// Add moves the in-flight counter by delta (typically +1 on request start,
// -1 on completion) and returns the new value.
func (h *Health) Add(delta int64) int64 {
	if h == nil {
		return 0
	}
	n := h.inflight.Add(delta)
	if h.gauge != nil {
		h.gauge.Set(float64(n))
	}
	return n
}

// InFlight returns the current in-flight count.
func (h *Health) InFlight() int64 {
	if h == nil {
		return 0
	}
	return h.inflight.Load()
}

// Uptime reports how long the Health has existed (process lifetime, for the
// /healthz body).
func (h *Health) Uptime() time.Duration {
	if h == nil {
		return 0
	}
	return time.Since(h.started)
}

// healthzBody is the /healthz response document.
type healthzBody struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// readyzBody is the /readyz response document.
type readyzBody struct {
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining"`
	InFlight int64  `json:"in_flight"`
	State    string `json:"state,omitempty"`
}
