package telemetry

import "flag"

// ObsFlags registers the observability flag set shared by every defuse CLI
// (-trace, -metrics, -serve, -flight, -chrome) on fs and returns a builder
// to call after parsing. Registering them in one place keeps the names,
// defaults, and help text uniform across binaries; pair the resulting
// ObsConfig with SetupObs and GracefulSignals for the full shared
// boilerplate.
func ObsFlags(fs *flag.FlagSet) func() ObsConfig {
	trace := fs.String("trace", "", "stream telemetry events to this JSON-lines file")
	metrics := fs.String("metrics", "", "write a metrics snapshot to this file (.json for JSON, else Prometheus text)")
	serve := fs.String("serve", "", "serve live telemetry (metrics, events, flight ring, pprof) on this host:port")
	flight := fs.String("flight", "", "arm the flight recorder: dump the recent span/event ring to this file on fault or exit")
	chrome := fs.String("chrome", "", "write recorded spans as Chrome trace-event JSON (Perfetto-loadable)")
	return func() ObsConfig {
		return ObsConfig{
			TracePath:   *trace,
			MetricsPath: *metrics,
			ServeAddr:   *serve,
			FlightPath:  *flight,
			ChromePath:  *chrome,
		}
	}
}
