package rt

import (
	"testing"

	"defuse/internal/checksum"
)

// The sharded fold path must cost the same as a plain Tracker fold: a Shard
// wraps an ordinary private Tracker, so the hot loop takes no locks, touches
// no shared state, and pays only on the infrequent Merge. These benchmarks
// and the guards below pin that contract.

// shardFoldLoop is the production sharded hot path: fold into the shard's
// private Tracker, merging once at the end (amortised to ~zero per op).
func shardFoldLoop(sh *Shard, n int) {
	tr := sh.Tracker()
	v := 1.5
	for i := 0; i < n; i++ {
		v = Def(tr, v, 1)
		_ = UseKnown(tr, v)
	}
	sh.Merge()
}

func BenchmarkShardedFold(b *testing.B) {
	st := NewShardedWith(checksum.ModAdd)
	sh := st.Shard()
	b.ReportAllocs()
	shardFoldLoop(sh, b.N)
}

func BenchmarkSingleTrackerFold(b *testing.B) {
	tr := NewTrackerWith(checksum.ModAdd)
	b.ReportAllocs()
	shadowedLoop(tr, b.N)
}

// TestShardedFoldOverheadGuard enforces the ISSUE budget: folding through a
// shard stays within 1.5x of folding into a bare Tracker. Since the shard
// fold IS a Tracker fold (same functions, private state, no locks), the real
// ratio is ~1.0; the 1.5x guard absorbs CI timer jitter while still catching
// any accidental lock, indirection, or allocation creeping onto the path.
func TestShardedFoldOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	best := func(f func(b *testing.B)) float64 {
		v := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(f)
			ns := float64(r.NsPerOp())
			if v == 0 || ns < v {
				v = ns
			}
		}
		return v
	}
	st := NewShardedWith(checksum.ModAdd)
	sh := st.Shard()
	sharded := best(func(b *testing.B) { shardFoldLoop(sh, b.N) })
	tr := NewTrackerWith(checksum.ModAdd)
	single := best(func(b *testing.B) { shadowedLoop(tr, b.N) })
	ratio := sharded / single
	t.Logf("sharded fold %.2f ns/op, single-tracker fold %.2f ns/op, ratio %.3f (guard 1.5x)", sharded, single, ratio)
	if ratio > 1.5 {
		t.Errorf("sharded fold overhead ratio %.3f exceeds the 1.5x guard", ratio)
	}
}

// TestShardedFoldZeroAllocs pins that the steady-state shard loop — fold,
// dynamic-counter lifecycle, merge — allocates nothing once the shard and
// its counter table exist. Telemetry is nil here by construction; the event
// emission is guarded so the nil-sink path stays allocation-free.
func TestShardedFoldZeroAllocs(t *testing.T) {
	st := NewShardedWith(checksum.ModAdd)
	sh := st.Shard()
	sh.Counters(4) // pre-size the backing array
	allocs := testing.AllocsPerRun(100, func() {
		tr := sh.Tracker()
		v := Def(tr, 1.25, 1)
		_ = UseKnown(tr, v)
		counters := sh.Counters(4)
		w := DefDyn(tr, &counters[0], uint64(0), uint64(7))
		w = Use(tr, &counters[0], w)
		Final(tr, &counters[0], w)
		sh.Merge()
	})
	if allocs != 0 {
		t.Errorf("sharded fold+merge allocates %.1f per run, want 0", allocs)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("verify after alloc probe: %v", err)
	}
}
