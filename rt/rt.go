// Package rt is the runtime library for checksum-instrumented Go code
// produced by the goinstr source instrumenter. It implements the paper's
// general (dynamic use count) scheme of Algorithm 3 and Section 4.1: each
// tracked variable carries a shadow use counter; definitions and uses fold
// the variable's bit pattern into global def/use checksums, and auxiliary
// e_def/e_use checksums close the persistent-corruption loophole.
//
// The checksums live in Tracker fields — ordinary Go variables that the
// instrumented code keeps "register-resident" in the paper's sense of being
// outside the protected data set.
package rt

import (
	"fmt"
	"math"

	"defuse/internal/addrsum"
	"defuse/internal/checksum"
)

// Word is the set of value types the instrumenter can track: their bit
// patterns are folded into the checksums. The constraint is deliberately
// exact (no ~): Bits must see the concrete type to pick the right bit
// extraction.
type Word interface {
	float64 | int | int64 | uint64 | int32 | uint32
}

// Bits returns the canonical 64-bit pattern of a tracked value.
func Bits[T Word](v T) uint64 {
	switch x := any(v).(type) {
	case float64:
		return math.Float64bits(x)
	case int:
		return uint64(x)
	case int64:
		return uint64(x)
	case uint64:
		return x
	case int32:
		return uint64(uint32(x))
	case uint32:
		return uint64(x)
	}
	panic("rt: unreachable: Word constraint admits only the types above")
}

// ctrRot is the rotation used for a Counter's redundant encoding. A pure
// rotation (no inversion, unlike the Pair shadows) keeps the zero Counter
// self-consistent, so `var c Counter` stays a valid starting state.
const ctrRot = 17

// encCounter produces the redundant copy of a counter's packed state.
func encCounter(packed uint64) uint64 { return rotl(packed, ctrRot) }

func rotl(v uint64, r int) uint64 { return v<<r | v>>(64-r) }
func rotr(v uint64, r int) uint64 { return v>>r | v<<(64-r) }

// Counter is a shadow dynamic use counter for one tracked variable. Like the
// checksum accumulators, it is ordinary memory rather than the paper's
// register-resident state, so it carries its own redundant copy: the count
// and defined flag packed into one word and stored rotated. Both copies are
// updated independently; a transient fault in either diverges them, which the
// consuming operation (DefDyn/Final) or an explicit Scrub detects.
type Counter struct {
	n       int64
	defined bool
	// enc is encCounter(packed()) when uncorrupted. Updated by
	// decode-op-encode, never recomputed from the primary fields on the hot
	// path (that would launder a corrupted primary into the copy).
	enc uint64
}

// packed is the canonical single-word form of the primary state.
func (c *Counter) packed() uint64 {
	p := uint64(c.n) << 1
	if c.defined {
		p |= 1
	}
	return p
}

// State returns both copies of the counter verbatim: the packed primary
// (count shifted left of the defined flag) and the rotated redundant copy.
// Durable checkpoints persist both so that a divergence — detector-fault
// evidence — survives a process restart exactly as it stood.
func (c *Counter) State() (packed, enc uint64) { return c.packed(), c.enc }

// SetState installs both copies verbatim, the inverse of State. It does not
// re-derive enc from packed: that would launder a corrupted primary into the
// redundant copy. The caller vouches for the bytes (checkpoint digest).
func (c *Counter) SetState(packed, enc uint64) {
	c.n = int64(packed >> 1)
	c.defined = packed&1 == 1
	c.enc = enc
}

// Scrub cross-checks the counter's two copies. A non-nil result is a
// *DetectorFaultError: a fault struck the detector's own bookkeeping.
func (c *Counter) Scrub() error {
	if c.enc != encCounter(c.packed()) {
		return &DetectorFaultError{
			Part: "counter",
			Err: fmt.Errorf("use counter diverged from its encoded copy: %#x != %#x",
				c.packed(), rotr(c.enc, ctrRot)),
		}
	}
	return nil
}

// DetectorFaultError reports a fault in the detector's own state — a checksum
// accumulator or shadow use counter diverged from its redundant copy — as
// opposed to a *checksum.MismatchError, which reports corruption of the
// protected data. Recovery treats the two differently: detector state is
// rebuilt from the last sealed epoch rather than rolled back and re-executed.
type DetectorFaultError struct {
	// Part names the corrupted piece: "accumulator" or "counter".
	Part string
	// Err carries the underlying divergence detail.
	Err error
}

func (e *DetectorFaultError) Error() string {
	return fmt.Sprintf("rt: detector fault in %s: %v", e.Part, e.Err)
}

func (e *DetectorFaultError) Unwrap() error { return e.Err }

// Tracker holds the global checksum state for one instrumented function
// activation.
type Tracker struct {
	pair *checksum.Pair
	// obs, when non-nil, observes every def/use/verify. The hot path is a
	// single nil check, so the uninstrumented case stays allocation-free
	// and within noise of the unobserved tracker (see the benchmark guard
	// in observer_test.go).
	obs Observer
	// defs/uses count dynamic def and use operations; epoch is the current
	// epoch index (see epoch.go). Plain increments, kept on the hot path
	// because epoch snapshots need them and they stay within the benchmark
	// guard's noise budget.
	defs, uses uint64
	epoch      int
	// latched records the first detector fault observed at a point where the
	// evidence is about to be erased (DefDyn/Final reset the counter they
	// consume). ScrubDetector surfaces it; Reset and Rollback clear it.
	latched *DetectorFaultError
	// addr, when non-nil, is the attached address-stream checksummer
	// (internal/addrsum): instrumented accesses additionally fold their
	// (intended, effective) index pairs so wrong-location accesses are
	// detected even when the observed value is a valid tracked word. The
	// data fold path never consults it; call sites fold via Addr().
	addr *addrsum.Tracker
}

// NewTracker returns a tracker using the paper's modulo-addition operator.
func NewTracker() *Tracker { return NewTrackerWith(checksum.ModAdd) }

// NewTrackerWith returns a tracker using the given commutative operator.
func NewTrackerWith(k checksum.Kind) *Tracker {
	return &Tracker{pair: checksum.NewPair(k)}
}

// Def records a definition with a compile-time-known use count n: the stored
// value is folded into the def-checksum n times (Algorithm 3, known path).
// It returns v so the call can wrap an assignment's right-hand side.
func Def[T Word](t *Tracker, v T, n int64) T {
	bits := Bits(v)
	t.pair.AddDef(bits, n)
	t.defs++
	if t.obs != nil {
		t.obs.ObserveDef(bits, n)
	}
	return v
}

// DefDyn records a definition whose use count is unknown at compile time
// (Algorithm 3 lines 13-16): first the variable's previous value prev is
// adjusted against its counter, then the new value v is folded into def and
// e_def and the counter reset. The first definition of a variable has no
// previous value to adjust; the counter tracks that.
func DefDyn[T Word](t *Tracker, c *Counter, prev, v T) T {
	t.checkCounter(c)
	if c.defined {
		t.pair.Adjust(Bits(prev), c.n)
	}
	t.pair.AddEDef(Bits(v))
	t.defs++
	c.n = 0
	c.defined = true
	c.enc = encCounter(1)
	if t.obs != nil {
		t.obs.ObserveDef(Bits(v), -1)
	}
	return v
}

// checkCounter validates a counter's redundant copy at the point where its
// value is consumed and then reset — the last moment the divergence is
// observable. A mismatch is latched on the tracker (first fault wins) rather
// than returned, keeping the instrumented call sites value-shaped; the
// boundary ScrubDetector surfaces it.
func (t *Tracker) checkCounter(c *Counter) {
	if c.enc != encCounter(c.packed()) && t.latched == nil {
		t.latched = &DetectorFaultError{
			Part: "counter",
			Err: fmt.Errorf("use counter diverged from its encoded copy at consumption: %#x != %#x",
				c.packed(), rotr(c.enc, ctrRot)),
		}
	}
}

// Use records a use of a dynamically counted variable: the observed value is
// folded into the use-checksum and the counter incremented. It returns v so
// reads can be wrapped in place.
func Use[T Word](t *Tracker, c *Counter, v T) T {
	bits := Bits(v)
	t.pair.AddUse(bits)
	t.uses++
	c.n++
	// Increment the redundant copy in its decoded domain (packed n sits one
	// bit left of the defined flag, so +1 to n is +2 packed). Recomputing the
	// encoding from c.n instead would mask a corrupted primary.
	c.enc = encCounter(rotr(c.enc, ctrRot) + 2)
	if t.obs != nil {
		t.obs.ObserveUse(bits)
	}
	return v
}

// UseKnown records a use of a statically counted value (no counter needed).
func UseKnown[T Word](t *Tracker, v T) T {
	bits := Bits(v)
	t.pair.AddUse(bits)
	t.uses++
	if t.obs != nil {
		t.obs.ObserveUse(bits)
	}
	return v
}

// Final performs the epilogue adjustment for a dynamically counted variable
// (Algorithm 3 lines 21-22): its current value joins the def-checksum
// count-1 times and the auxiliary use-checksum once.
func Final[T Word](t *Tracker, c *Counter, v T) {
	t.checkCounter(c)
	if !c.defined {
		return
	}
	t.pair.Adjust(Bits(v), c.n)
	c.n = 0
	c.defined = false
	c.enc = 0 // encCounter(0)
}

// Verify compares the def/use and e_def/e_use checksums; a non-nil error is
// a detected memory corruption (*checksum.MismatchError).
func (t *Tracker) Verify() error {
	err := t.pair.Verify()
	if t.obs != nil {
		t.obs.ObserveVerify(err)
	}
	return err
}

// MustVerify panics with the mismatch if a memory error was detected. The
// goinstr instrumenter inserts it in a deferred epilogue so that silent data
// corruption becomes a loud failure.
func (t *Tracker) MustVerify() {
	if err := t.Verify(); err != nil {
		panic(err)
	}
}

// ScrubDetector cross-checks the detector's own state: any counter fault
// latched by DefDyn/Final, then every checksum accumulator against its
// complement-encoded shadow copy. A non-nil result is a *DetectorFaultError —
// the detector itself was struck, so its verdicts (Verify, EndEpoch) cannot
// be trusted until the state is rebuilt from a sealed epoch snapshot.
func (t *Tracker) ScrubDetector() error {
	if t.latched != nil {
		return t.latched
	}
	if err := t.pair.Scrub(); err != nil {
		return &DetectorFaultError{Part: "accumulator", Err: err}
	}
	if t.addr != nil {
		if err := t.addr.Scrub(); err != nil {
			return &DetectorFaultError{Part: "addrsum", Err: err}
		}
	}
	return nil
}

// CorruptAccumulator flips one bit of the primary copy of the selected
// checksum accumulator, leaving its shadow copy intact. Fault-injection
// campaigns use it to aim a transient fault at the detector state.
func (t *Tracker) CorruptAccumulator(a checksum.Acc, bit uint) {
	t.pair.CorruptPrimary(a, bit)
}

// CorruptCounter flips one bit of a counter's primary (packed) state, leaving
// its encoded copy intact — the footprint of a transient fault striking the
// shadow use counter. Bit 0 is the defined flag; bits 1+ are the count.
func CorruptCounter(c *Counter, bit uint) {
	p := c.packed() ^ 1<<(bit&63)
	c.n = int64(p >> 1)
	c.defined = p&1 == 1
}

// Reset clears all checksums, dynamic operation counters, the epoch index,
// and any latched detector fault for reuse.
func (t *Tracker) Reset() {
	t.pair.Reset()
	t.defs, t.uses, t.epoch = 0, 0, 0
	t.latched = nil
	if t.addr != nil {
		t.addr.Reset()
	}
}

// Checksums exposes the four accumulators (def, use, e_def, e_use) for
// inspection and testing.
func (t *Tracker) Checksums() (def, use, edef, euse uint64) {
	return t.pair.Def, t.pair.Use, t.pair.EDef, t.pair.EUse
}

// Kind returns the checksum operator the tracker folds with.
func (t *Tracker) Kind() checksum.Kind { return t.pair.Kind() }

// ShadowCopies exposes the raw (encoded) shadow copies of the four
// accumulators, indexed by checksum.Acc. Tests use it to assert that sharded
// and sequential folds produce byte-identical detector state.
func (t *Tracker) ShadowCopies() [4]uint64 { return t.pair.Shadows() }

// CorruptBits is a test helper that flips the given bit of a float64's
// representation, simulating a memory error on a tracked variable.
func CorruptBits(v float64, bit uint) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ 1<<bit)
}
