package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"defuse/telemetry"
)

// This file defines the machine-readable overhead record written by
// cmd/overhead -json (BENCH_overhead.json): the repo's perf-trajectory
// format, so Figure 10/11 overhead claims can be regression-tracked across
// PRs instead of living only in terminal scrollback.

// OverheadSchema identifies the BENCH_overhead.json format version. v2 added
// the optional quantiles block (epoch-verify latency and detection latency
// distributions); v3 added the optional service block (sustained-load latency
// and fault-recovery results from the resident defused service); v4 added the
// optional native block (wall-clock overheads of the compiled codegen
// backend); v5 adds the optional soak block (chaos-soak survival results from
// defused -soak) and the service row's retry tallies. Every earlier field is
// carried forward unchanged, so v2 through v4 documents are still accepted on
// read.
const OverheadSchema = "defuse/overhead/v5"

// Earlier format versions, accepted on read: each is a valid v5 document
// with the later optional blocks absent.
const (
	overheadSchemaV2 = "defuse/overhead/v2"
	overheadSchemaV3 = "defuse/overhead/v3"
	overheadSchemaV4 = "defuse/overhead/v4"
)

// OverheadRow is one benchmark's measurements across the three variants.
type OverheadRow struct {
	Bench           string  `json:"bench"`
	OriginalSeconds float64 `json:"original_seconds"`
	ResilientTime   float64 `json:"resilient_time"`
	OptimizedTime   float64 `json:"optimized_time"`
	ResilientOps    float64 `json:"resilient_ops"`
	OptimizedOps    float64 `json:"optimized_ops"`
	HWEstimate      float64 `json:"hw_estimate"`
}

// OverheadGeomean summarizes the suite the way the paper does.
type OverheadGeomean struct {
	ResilientOps float64 `json:"resilient_ops"`
	OptimizedOps float64 `json:"optimized_ops"`
	HWEstimate   float64 `json:"hw_estimate"`
}

// OverheadQuantiles carries the latency distributions behind the headline
// geomeans: how long a boundary verification takes in wall-clock terms, and
// how many epochs a detection lags its injection, both summarized as
// histogram-derived p50/p99/p999. New in defuse/overhead/v2.
type OverheadQuantiles struct {
	EpochVerifySeconds     *telemetry.QuantileSummary `json:"epoch_verify_seconds,omitempty"`
	DetectionLatencyEpochs *telemetry.QuantileSummary `json:"detection_latency_epochs,omitempty"`
}

// ServiceRow is the sustained-load result block from a defused loadgen run:
// request latency quantiles and verified throughput measured while a sampled
// fraction of live requests had faults injected. The counts are the
// robustness gate's evidence — Injected == Detected == Recovered and
// CleanMismatches == 0 is what "detects and recovers without disturbing
// clean traffic" means, measured. New in defuse/overhead/v3.
type ServiceRow struct {
	// Streams is the number of concurrent request streams the loadgen drove.
	Streams int `json:"streams"`
	// Requests is the number of requests that completed successfully
	// (excluding shed and errored requests).
	Requests int `json:"requests"`
	// FaultRate is the configured sampled-injection fraction, and
	// FaultAddrFraction the fraction of hits injected as address faults
	// (wrong-location loads) rather than bit flips.
	FaultRate         float64 `json:"fault_rate"`
	FaultAddrFraction float64 `json:"fault_addr_fraction,omitempty"`
	// Injected / Detected / Recovered count the sampled requests that
	// received an injection, those whose fault was detected, and those that
	// additionally recovered to the correct result. InjectedAddr is the
	// subset of Injected that received an address fault.
	Injected     int `json:"injected"`
	InjectedAddr int `json:"injected_addr,omitempty"`
	Detected     int `json:"detected"`
	Recovered    int `json:"recovered"`
	// Clean counts un-injected requests; CleanMismatches counts those whose
	// result deviated from the locally computed reference (must be zero).
	Clean           int `json:"clean"`
	CleanMismatches int `json:"clean_mismatches"`
	// Shed counts requests refused by admission control (429), Rejected
	// counts requests refused because the server was draining or degraded
	// (503), and Errors counts other failures. Both are final outcomes: a
	// request that was refused, retried, and eventually served counts only
	// under Requests.
	Shed     int `json:"shed"`
	Rejected int `json:"rejected"`
	Errors   int `json:"errors"`
	// Retries counts individual 429/503 refusals that were retried (each
	// refused attempt is one retry), and RetriedOK counts requests that
	// succeeded only after at least one retry. Tallied separately from
	// Shed/Rejected so the robustness gate's arithmetic stays meaningful
	// under deliberate overload. New in v5.
	Retries   int `json:"retries,omitempty"`
	RetriedOK int `json:"retried_ok,omitempty"`
	// Latency quantiles over successful requests, in seconds.
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	P999Seconds float64 `json:"p999_seconds"`
	// ThroughputRPS is successful requests per wall-clock second.
	ThroughputRPS   float64 `json:"throughput_rps"`
	DurationSeconds float64 `json:"duration_seconds"`
}

// SoakRow is the chaos-soak survival block from a defused -soak run: a real
// defused child process driven under a seeded disturbance schedule (SIGKILL,
// SIGSTOP/SIGCONT, torn WAL tails, disk bit flips, injected append faults,
// adversarial clients, overload bursts) while an audit thread independently
// recomputes the schedule and re-verifies the journal across restarts. The
// zero-tolerance columns (SilentCorruptions, UndetectedFaults,
// ResumeMismatches, AuditFailures) are the soak gate's evidence. New in
// defuse/overhead/v5.
type SoakRow struct {
	// Seed and DurationSeconds identify the schedule: the same seed and
	// duration reproduce the same disturbance sequence.
	Seed            uint64  `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Disturbance tallies: process kills (SIGKILL), pauses
	// (SIGSTOP/SIGCONT), torn WAL tails and disk bit flips applied between
	// restarts, injected append-path I/O faults, and overload bursts.
	Kills       int `json:"kills"`
	Pauses      int `json:"pauses"`
	TornWrites  int `json:"torn_writes"`
	BitFlips    int `json:"bit_flips"`
	WriteFaults int `json:"write_faults"`
	Bursts      int `json:"bursts"`
	Restarts    int `json:"restarts"`
	DegradedN   int `json:"degraded_entered"`
	// Request-level tallies across the whole soak, audited client-side.
	Requests  int `json:"requests"`
	Injected  int `json:"injected"`
	Detected  int `json:"detected"`
	Recovered int `json:"recovered"`
	Shed      int `json:"shed"`
	Rejected  int `json:"rejected"`
	Retries   int `json:"retries"`
	// Journal accounting at the end of the soak: records surviving live,
	// records folded into compaction summaries, sealed segment count, and
	// the final on-disk footprint (bounded by rotation).
	JournalLive      int   `json:"journal_live"`
	JournalCompacted int   `json:"journal_compacted"`
	JournalSegments  int   `json:"journal_segments"`
	JournalDiskBytes int64 `json:"journal_disk_bytes"`
	// Zero-tolerance columns. SilentCorruptions counts responses or journal
	// records accepted with a wrong digest; UndetectedFaults counts injected
	// faults (live or I/O) the system failed to surface; ResumeMismatches
	// counts restarts where the surviving WAL bytes differed from the
	// pre-crash capture; AuditFailures counts every other audit violation.
	SilentCorruptions int `json:"silent_corruptions"`
	UndetectedFaults  int `json:"undetected_faults"`
	ResumeMismatches  int `json:"resume_mismatches"`
	AuditFailures     int `json:"audit_failures"`
}

// BackendRow is one detection backend's summary from the faultcov backend
// comparison (cmd/faultcov -backend all -bench-out): per-trial cost, mean
// detection latency, and the valid-word-aliasing cell's outcome — the fault
// shape that separates the backends, since data checksums provably cannot
// see it while the address-stream and dual-execution backends must. Optional
// block under the v3 schema.
type BackendRow struct {
	Backend string `json:"backend"`
	// NsPerTrial is the measured wall time per injection trial — the
	// comparison's overhead column.
	NsPerTrial float64 `json:"ns_per_trial"`
	// MeanDetectionLatency averages epochs-to-detection over detected trials.
	MeanDetectionLatency float64 `json:"mean_detection_latency_epochs"`
	// AliasEscapes and AliasDetected are the addr-alias cell's tallies:
	// escapes > 0 with zero detections for the checksum backend (structural
	// blindness), zero escapes for addrsum and dme.
	AliasEscapes  int `json:"alias_escapes"`
	AliasDetected int `json:"alias_detected"`
	// AllExpected is true when every comparison cell met its expectation.
	AllExpected bool `json:"all_expected"`
}

// NativeRow is one benchmark's wall-clock measurement on the compiled
// native backend (cmd/overhead -backend native): the committed generated
// kernels in internal/codegen/gennative, built by the Go compiler and run
// against codegen.Machine. Unlike OverheadRow there are no op-count columns —
// native code has no interpreter to count ops; wall clock on compiled code is
// the measurement, the closest analogue of the paper's icc numbers. Optional
// block, new in defuse/overhead/v4.
type NativeRow struct {
	Bench string `json:"bench"`
	// OriginalSeconds is the mean per-run wall time of the uninstrumented
	// kernel; Resilient/Optimized are normalized to it (Original = 1.0).
	OriginalSeconds float64 `json:"original_seconds"`
	ResilientTime   float64 `json:"resilient_time"`
	OptimizedTime   float64 `json:"optimized_time"`
	// Reps is how many timed repetitions each variant's mean averages over
	// (fresh machine and data per rep; only the kernel call is timed).
	Reps int `json:"reps"`
}

// NativeGeoMeans summarizes native rows the way GeoMeans summarizes the
// interpreter's Figure 10 rows.
func NativeGeoMeans(rows []NativeRow) (resilient, optimized float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	rs, os := 0.0, 0.0
	for _, r := range rows {
		rs += math.Log(r.ResilientTime)
		os += math.Log(r.OptimizedTime)
	}
	n := float64(len(rows))
	return math.Exp(rs / n), math.Exp(os / n)
}

// FormatNative renders native rows as the compiled-code analogue of the
// Figure 10 table.
func FormatNative(rows []NativeRow) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-10s %14s %12s %12s %8s\n",
		"Benchmark", "Orig(s/run)", "Resil(wall)", "Opt(wall)", "Reps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.6f %12.3f %12.3f %8d\n",
			r.Bench, r.OriginalSeconds, r.ResilientTime, r.OptimizedTime, r.Reps)
	}
	rg, og := NativeGeoMeans(rows)
	fmt.Fprintf(&b, "%-10s %14s %12.3f %12.3f %8s\n", "geomean", "", rg, og, "")
	return b.String()
}

// OverheadReport is the full BENCH_overhead.json document.
type OverheadReport struct {
	Schema      string          `json:"schema"`
	GeneratedAt time.Time       `json:"generated_at"`
	Scale       float64         `json:"scale"`
	Rows        []OverheadRow   `json:"rows"`
	Geomean     OverheadGeomean `json:"geomean"`
	// Scaling holds the parallel executor's scaling curve (one row per
	// benchmark × worker count), present when -parallel was requested.
	Scaling []ScalingRow `json:"scaling,omitempty"`
	// Quantiles is present when the run recorded the relevant histograms
	// (cmd/overhead -json runs a small supervised fault probe to fill it).
	Quantiles *OverheadQuantiles `json:"quantiles,omitempty"`
	// Service is the resident-service load result (defused -loadgen
	// -json-out merges it into the committed report). New in v3.
	Service *ServiceRow `json:"service,omitempty"`
	// Backends holds the detection-backend comparison rows (cmd/faultcov
	// -backend ... -bench-out merges them). Optional under v3.
	Backends []BackendRow `json:"backends,omitempty"`
	// Native holds the compiled-backend wall-clock rows (cmd/overhead
	// -backend native -json merges them). Optional, new in v4.
	Native []NativeRow `json:"native,omitempty"`
	// Soak is the chaos-soak survival result (defused -soak -json-out merges
	// it). Optional, new in v5.
	Soak *SoakRow `json:"soak,omitempty"`
}

// AttachQuantiles pulls the epoch-verify and detection-latency families out
// of a metrics snapshot and records their quantile summaries on the report.
// Families that recorded no observations are left out rather than reported
// as zeros.
func (r *OverheadReport) AttachQuantiles(snap telemetry.Snapshot) {
	q := &OverheadQuantiles{}
	if s, ok := snap.FamilyQuantiles("defuse_epoch_verify_seconds"); ok {
		q.EpochVerifySeconds = &s
	}
	if s, ok := snap.FamilyQuantiles("defuse_detection_latency_epochs"); ok {
		q.DetectionLatencyEpochs = &s
	}
	if q.EpochVerifySeconds != nil || q.DetectionLatencyEpochs != nil {
		r.Quantiles = q
	}
}

// BuildOverheadReport merges Figure 10 and Figure 11 rows into one report.
// The row slices must be parallel (as Figure10With returns them).
func BuildOverheadReport(rows10 []Figure10Row, rows11 []Figure11Row, scale float64) (OverheadReport, error) {
	if len(rows10) != len(rows11) {
		return OverheadReport{}, fmt.Errorf("bench: %d figure-10 rows vs %d figure-11 rows", len(rows10), len(rows11))
	}
	rep := OverheadReport{
		Schema:      OverheadSchema,
		GeneratedAt: time.Now().UTC(),
		Scale:       scale,
	}
	hwSum, hwN := 0.0, 0
	for i, r := range rows10 {
		if rows11[i].Bench != r.Bench {
			return OverheadReport{}, fmt.Errorf("bench: row %d mismatch: %s vs %s", i, r.Bench, rows11[i].Bench)
		}
		rep.Rows = append(rep.Rows, OverheadRow{
			Bench:           r.Bench,
			OriginalSeconds: r.OriginalSeconds,
			ResilientTime:   r.ResilientTime,
			OptimizedTime:   r.OptimizedTime,
			ResilientOps:    r.ResilientOps,
			OptimizedOps:    r.OptimizedOps,
			HWEstimate:      rows11[i].HWEstimate,
		})
		hwSum += math.Log(rows11[i].HWEstimate)
		hwN++
	}
	rg, og := GeoMeans(rows10)
	rep.Geomean = OverheadGeomean{ResilientOps: rg, OptimizedOps: og}
	if hwN > 0 {
		rep.Geomean.HWEstimate = math.Exp(hwSum / float64(hwN))
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r OverheadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseOverheadReport reads a report back, validating its schema tag — the
// consumer side of the perf trajectory.
func ParseOverheadReport(r io.Reader) (OverheadReport, error) {
	var rep OverheadReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return rep, fmt.Errorf("bench: parsing overhead report: %w", err)
	}
	if rep.Schema != OverheadSchema && rep.Schema != overheadSchemaV4 &&
		rep.Schema != overheadSchemaV3 && rep.Schema != overheadSchemaV2 {
		return rep, fmt.Errorf("bench: unexpected schema %q (want %q)", rep.Schema, OverheadSchema)
	}
	if len(rep.Rows) == 0 {
		return rep, fmt.Errorf("bench: overhead report has no rows")
	}
	return rep, nil
}

// MergeServiceRow installs a loadgen result into an existing report file:
// the document at path is parsed (v2 or v3), its schema is bumped to the
// current version, the service block is replaced, and the file is rewritten
// atomically via the writeFile callback (pass wal.WriteFileAtomic or
// os.WriteFile). This lets the committed BENCH_overhead.json accumulate the
// service row without re-running the whole overhead suite.
func MergeServiceRow(path string, row ServiceRow, writeFile func(string, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bench: merging service row: %w", err)
	}
	rep, err := ParseOverheadReport(f)
	f.Close()
	if err != nil {
		return err
	}
	rep.Schema = OverheadSchema
	rep.Service = &row
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	return writeFile(path, buf.Bytes())
}

// MergeSoakRow installs a chaos-soak result into an existing report file,
// replacing any previous soak block, following the same
// parse-replace-rewrite discipline as MergeServiceRow.
func MergeSoakRow(path string, row SoakRow, writeFile func(string, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bench: merging soak row: %w", err)
	}
	rep, err := ParseOverheadReport(f)
	f.Close()
	if err != nil {
		return err
	}
	rep.Schema = OverheadSchema
	rep.Soak = &row
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	return writeFile(path, buf.Bytes())
}

// MergeBackendRows installs the detection-backend comparison block into an
// existing report file, replacing any previous block, following the same
// parse-replace-rewrite discipline as MergeServiceRow.
func MergeBackendRows(path string, rows []BackendRow, writeFile func(string, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bench: merging backend rows: %w", err)
	}
	rep, err := ParseOverheadReport(f)
	f.Close()
	if err != nil {
		return err
	}
	rep.Schema = OverheadSchema
	rep.Backends = rows
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	return writeFile(path, buf.Bytes())
}

// MergeNativeRows installs the compiled-backend measurement block into an
// existing report file, replacing any previous block, following the same
// parse-replace-rewrite discipline as MergeServiceRow. The interpreter run
// remains the document's owner; the native backend only annotates it, so the
// service, backend, and quantile blocks survive a native re-measurement.
func MergeNativeRows(path string, rows []NativeRow, writeFile func(string, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("bench: merging native rows: %w", err)
	}
	rep, err := ParseOverheadReport(f)
	f.Close()
	if err != nil {
		return err
	}
	rep.Schema = OverheadSchema
	rep.Native = rows
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	return writeFile(path, buf.Bytes())
}
