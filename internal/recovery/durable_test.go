package recovery

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"defuse/internal/wal"
	"defuse/telemetry"
)

// durState is a minimal durable computation: epoch k adds k+1 to the value,
// so a run of n epochs ends at n(n+1)/2 regardless of where it resumed. Its
// binary form carries a multiplicative digest so tampered bytes are refused.
type durState struct {
	value uint64
	runs  []int
}

func (s *durState) encode() ([]byte, error) {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, s.value)
	binary.LittleEndian.PutUint64(b[8:], s.value*0x9e3779b97f4a7c15+1)
	return b, nil
}

var errBadDigest = errors.New("durState digest mismatch")

func (s *durState) decode(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("durState of %d bytes: %w", len(b), errBadDigest)
	}
	v := binary.LittleEndian.Uint64(b)
	if binary.LittleEndian.Uint64(b[8:]) != v*0x9e3779b97f4a7c15+1 {
		return errBadDigest
	}
	s.value = v
	return nil
}

const testFingerprint = 0xfeedc0de

// durable builds a DurableSupervisor over a durState. failAt, when >= 0,
// makes that epoch's Run return a terminal (ClassNone) error — simulating a
// process that dies mid-run as far as the log is concerned.
func durable(s *durState, path string, epochs, failAt int) *DurableSupervisor {
	return &DurableSupervisor{
		Config: Config{
			Epochs: epochs,
			Run: func(k int) error {
				if k == failAt {
					return fmt.Errorf("terminal failure at epoch %d", k)
				}
				s.runs = append(s.runs, k)
				s.value += uint64(k + 1)
				return nil
			},
			Checkpoint: func() any { return s.value },
			Restore: func(snap any) error {
				s.value = snap.(uint64)
				return nil
			},
		},
		Path:        path,
		Fingerprint: testFingerprint,
		EncodeState: s.encode,
		DecodeState: s.decode,
	}
}

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "epochs.wal")
}

func finalValue(epochs int) uint64 { return uint64(epochs * (epochs + 1) / 2) }

func TestDurableFreshRunSealsEveryEpoch(t *testing.T) {
	path := walPath(t)
	s := &durState{}
	trace := &telemetry.Collector{}
	d := durable(s, path, 5, -1)
	d.Trace = trace
	d.Metrics = telemetry.NewRegistry()
	out, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed || out.ResumeEpoch != 0 {
		t.Errorf("fresh run reported resume: %+v", out)
	}
	if out.Seals != 5 {
		t.Errorf("Seals = %d, want 5", out.Seals)
	}
	if s.value != finalValue(5) {
		t.Errorf("value = %d, want %d", s.value, finalValue(5))
	}
	if n := trace.Count(telemetry.EvWALSeal); n != 5 {
		t.Errorf("wal.seal events = %d, want 5", n)
	}
	if n := trace.Count(telemetry.EvWALRecover); n != 0 {
		t.Errorf("wal.recover events = %d on a fresh run", n)
	}
	// The log itself holds 5 sealed, scannable records.
	scan, err := wal.Recover(path)
	if err != nil || len(scan.Records) != 5 {
		t.Fatalf("scan: %d records, err %v", len(scan.Records), err)
	}
}

func TestDurableResumeAfterMidRunDeath(t *testing.T) {
	path := walPath(t)
	// First incarnation dies (terminal error) entering epoch 3: epochs 0-2
	// are sealed in the log.
	s1 := &durState{}
	if _, err := durable(s1, path, 6, 3).Run(context.Background()); err == nil {
		t.Fatal("first incarnation did not fail")
	}

	// Second incarnation starts from zero state, resumes from the log, and
	// must finish with the exact uninterrupted result without re-running
	// epochs 0-2.
	s2 := &durState{}
	trace := &telemetry.Collector{}
	d := durable(s2, path, 6, -1)
	d.Trace = trace
	out, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resumed || out.ResumeEpoch != 3 {
		t.Fatalf("Resumed=%v ResumeEpoch=%d, want resume at 3", out.Resumed, out.ResumeEpoch)
	}
	if s2.value != finalValue(6) {
		t.Errorf("resumed value = %d, want %d", s2.value, finalValue(6))
	}
	if want := []int{3, 4, 5}; len(s2.runs) != len(want) {
		t.Errorf("resumed incarnation ran epochs %v, want %v", s2.runs, want)
	}
	if n := trace.Count(telemetry.EvWALRecover); n != 1 {
		t.Errorf("wal.recover events = %d, want 1", n)
	}
	if out.Seals != 3 {
		t.Errorf("Seals = %d, want 3 (only the completed epochs)", out.Seals)
	}
}

func TestDurableResumeOfCompletedRunRunsNothing(t *testing.T) {
	path := walPath(t)
	s1 := &durState{}
	if _, err := durable(s1, path, 4, -1).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := &durState{}
	out, err := durable(s2, path, 4, -1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resumed || out.ResumeEpoch != 4 {
		t.Fatalf("Resumed=%v ResumeEpoch=%d, want 4", out.Resumed, out.ResumeEpoch)
	}
	if len(s2.runs) != 0 {
		t.Errorf("completed run re-executed epochs %v", s2.runs)
	}
	if s2.value != finalValue(4) {
		t.Errorf("value = %d, want %d", s2.value, finalValue(4))
	}
}

func TestDurableCorruptNewestRecordFallsBackOneEpoch(t *testing.T) {
	path := walPath(t)
	s1 := &durState{}
	if _, err := durable(s1, path, 5, -1).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A disk bit flip lands in the newest frame's CRC trailer.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := &durState{}
	trace := &telemetry.Collector{}
	d := durable(s2, path, 5, -1)
	d.Trace = trace
	out, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resumed || out.ResumeEpoch != 4 {
		t.Fatalf("Resumed=%v ResumeEpoch=%d, want fall back to epoch 4", out.Resumed, out.ResumeEpoch)
	}
	if out.CorruptRecords == 0 {
		t.Error("corrupt record not counted")
	}
	if n := trace.Count(telemetry.EvWALCorrupt); n == 0 {
		t.Error("no wal.corrupt event")
	}
	if s2.value != finalValue(5) {
		t.Errorf("value = %d, want %d (epoch 4 re-run from the older record)", s2.value, finalValue(5))
	}
	if want := []int{4}; len(s2.runs) != 1 || s2.runs[0] != want[0] {
		t.Errorf("resumed incarnation ran %v, want %v", s2.runs, want)
	}
}

func TestDurableDigestFailureFallsBackOlderRecord(t *testing.T) {
	// A record whose WAL frame CRC is intact but whose application payload
	// fails its own digest — the frame was written from already-corrupt
	// state, or the payload was tampered and the CRC recomputed. The decoder
	// refuses it and resume falls back to the strictly older sealed record.
	path := walPath(t)
	l, err := wal.Create(path, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := &durState{value: 3} // state after epochs 0,1 of the 3-epoch run
	app, _ := good.encode()
	payload := make([]byte, durableRecordHeader+len(app))
	binary.LittleEndian.PutUint64(payload, testFingerprint)
	binary.LittleEndian.PutUint64(payload[8:], 2)
	copy(payload[durableRecordHeader:], app)
	if err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	// Newest record: valid frame, poisoned app digest.
	bad := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint64(bad[8:], 3)
	bad[len(bad)-3] ^= 0x01
	if err := l.Append(bad); err != nil {
		t.Fatal(err)
	}
	l.Close()

	s := &durState{}
	out, err := durable(s, path, 3, -1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resumed || out.ResumeEpoch != 2 {
		t.Fatalf("Resumed=%v ResumeEpoch=%d, want the older record's epoch 2", out.Resumed, out.ResumeEpoch)
	}
	if out.CorruptRecords != 1 {
		t.Errorf("CorruptRecords = %d, want 1", out.CorruptRecords)
	}
	if s.value != finalValue(3) {
		t.Errorf("value = %d, want %d", s.value, finalValue(3))
	}
	// The refused record must have been rewritten away: a later scan sees
	// only sealed records that decode.
	scan, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range scan.Records {
		probe := &durState{}
		if len(r.Payload) < durableRecordHeader {
			t.Fatalf("short record survived rewrite")
		}
		if derr := probe.decode(r.Payload[durableRecordHeader:]); derr != nil {
			t.Fatalf("poisoned record survived rewrite: %v", derr)
		}
	}
}

func TestDurableFingerprintMismatchStartsFresh(t *testing.T) {
	path := walPath(t)
	s1 := &durState{}
	if _, err := durable(s1, path, 3, -1).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := &durState{}
	d := durable(s2, path, 3, -1)
	d.Fingerprint = testFingerprint + 1 // different program/params
	out, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed {
		t.Fatal("resumed from a foreign workload's checkpoint")
	}
	if out.CorruptRecords == 0 {
		t.Error("foreign records not reported")
	}
	if s2.value != finalValue(3) || len(s2.runs) != 3 {
		t.Errorf("fresh run: value=%d runs=%v", s2.value, s2.runs)
	}
}

func TestDurableTornTailResumesFromLastSeal(t *testing.T) {
	path := walPath(t)
	s1 := &durState{}
	if _, err := durable(s1, path, 4, 2).Run(context.Background()); err == nil {
		t.Fatal("first incarnation did not fail")
	}
	// The process died mid-append: a truncated frame sits at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0x02, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := &durState{}
	out, err := durable(s2, path, 4, -1).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.TornTail {
		t.Error("torn tail not reported")
	}
	if !out.Resumed || out.ResumeEpoch != 2 {
		t.Fatalf("Resumed=%v ResumeEpoch=%d, want 2", out.Resumed, out.ResumeEpoch)
	}
	if s2.value != finalValue(4) {
		t.Errorf("value = %d, want %d", s2.value, finalValue(4))
	}
}

func TestDurableValidation(t *testing.T) {
	s := &durState{}
	d := durable(s, "", 3, -1)
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("empty Path accepted")
	}
	d = durable(s, walPath(t), 3, -1)
	d.Config.Commit = func(int) error { return nil }
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("caller-supplied Commit accepted")
	}
	d = durable(s, walPath(t), 3, -1)
	d.Config.StartEpoch = 1
	if _, err := d.Run(context.Background()); err == nil {
		t.Error("caller-supplied StartEpoch accepted")
	}
}

func TestDurableRecoversDataFaultAndStillSeals(t *testing.T) {
	// A transient data fault inside an epoch rolls back and retries as usual;
	// the durable layer seals only the verified attempt.
	path := walPath(t)
	s := &durState{}
	d := durable(s, path, 4, -1)
	faulted := false
	d.Config.Verify = func(k int) error {
		if k == 2 && !faulted {
			faulted = true
			return mismatch()
		}
		return nil
	}
	d.Policy = Policy{MaxRetries: 2, MaxRestarts: 1}
	out, err := d.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Recovered || out.Retries != 1 {
		t.Errorf("Recovered=%v Retries=%d, want recovery with one retry", out.Recovered, out.Retries)
	}
	if out.Seals != 4 {
		t.Errorf("Seals = %d, want 4 (one per verified epoch)", out.Seals)
	}
	if s.value != finalValue(4) {
		t.Errorf("value = %d, want %d", s.value, finalValue(4))
	}
}
